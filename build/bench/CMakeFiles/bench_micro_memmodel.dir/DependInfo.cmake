
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro/bench_micro_memmodel.cc" "bench/CMakeFiles/bench_micro_memmodel.dir/micro/bench_micro_memmodel.cc.o" "gcc" "bench/CMakeFiles/bench_micro_memmodel.dir/micro/bench_micro_memmodel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roofline/CMakeFiles/biosim_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/biosim_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/biosim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/biosim_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/biosim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/biosim_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/biosim_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/biosim_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/biosim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
