# Empty dependencies file for bench_micro_memmodel.
# This may be replaced when dependencies are built.
