file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_memmodel.dir/micro/bench_micro_memmodel.cc.o"
  "CMakeFiles/bench_micro_memmodel.dir/micro/bench_micro_memmodel.cc.o.d"
  "bench_micro_memmodel"
  "bench_micro_memmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
