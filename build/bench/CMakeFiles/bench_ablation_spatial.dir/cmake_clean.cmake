file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spatial.dir/bench_ablation_spatial.cc.o"
  "CMakeFiles/bench_ablation_spatial.dir/bench_ablation_spatial.cc.o.d"
  "bench_ablation_spatial"
  "bench_ablation_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
