file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_force.dir/micro/bench_micro_force.cc.o"
  "CMakeFiles/bench_micro_force.dir/micro/bench_micro_force.cc.o.d"
  "bench_micro_force"
  "bench_micro_force.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
