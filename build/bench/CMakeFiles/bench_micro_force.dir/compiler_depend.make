# Empty compiler generated dependencies file for bench_micro_force.
# This may be replaced when dependencies are built.
