# Empty compiler generated dependencies file for bench_micro_morton.
# This may be replaced when dependencies are built.
