file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_morton.dir/micro/bench_micro_morton.cc.o"
  "CMakeFiles/bench_micro_morton.dir/micro/bench_micro_morton.cc.o.d"
  "bench_micro_morton"
  "bench_micro_morton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_morton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
