file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_fig11_benchmark_b.dir/bench_fig10_fig11_benchmark_b.cc.o"
  "CMakeFiles/bench_fig10_fig11_benchmark_b.dir/bench_fig10_fig11_benchmark_b.cc.o.d"
  "bench_fig10_fig11_benchmark_b"
  "bench_fig10_fig11_benchmark_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_fig11_benchmark_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
