# Empty dependencies file for bench_fig10_fig11_benchmark_b.
# This may be replaced when dependencies are built.
