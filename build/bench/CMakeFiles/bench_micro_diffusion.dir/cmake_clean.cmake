file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_diffusion.dir/micro/bench_micro_diffusion.cc.o"
  "CMakeFiles/bench_micro_diffusion.dir/micro/bench_micro_diffusion.cc.o.d"
  "bench_micro_diffusion"
  "bench_micro_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
