file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_spatial.dir/micro/bench_micro_spatial.cc.o"
  "CMakeFiles/bench_micro_spatial.dir/micro/bench_micro_spatial.cc.o.d"
  "bench_micro_spatial"
  "bench_micro_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
