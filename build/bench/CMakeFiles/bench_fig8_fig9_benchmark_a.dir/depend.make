# Empty dependencies file for bench_fig8_fig9_benchmark_a.
# This may be replaced when dependencies are built.
