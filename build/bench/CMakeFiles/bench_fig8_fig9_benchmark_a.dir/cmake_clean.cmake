file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fig9_benchmark_a.dir/bench_fig8_fig9_benchmark_a.cc.o"
  "CMakeFiles/bench_fig8_fig9_benchmark_a.dir/bench_fig8_fig9_benchmark_a.cc.o.d"
  "bench_fig8_fig9_benchmark_a"
  "bench_fig8_fig9_benchmark_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fig9_benchmark_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
