file(REMOVE_RECURSE
  "CMakeFiles/gpu_tests.dir/gpu/device_sort_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/device_sort_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/gpu_equivalence_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/gpu_equivalence_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/gpu_options_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/gpu_options_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/gpu_versions_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/gpu_versions_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/grid_build_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/grid_build_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/neighbor_parallel_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/neighbor_parallel_test.cc.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/persistent_state_test.cc.o"
  "CMakeFiles/gpu_tests.dir/gpu/persistent_state_test.cc.o.d"
  "gpu_tests"
  "gpu_tests.pdb"
  "gpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
