
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gpu/device_sort_test.cc" "tests/CMakeFiles/gpu_tests.dir/gpu/device_sort_test.cc.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/device_sort_test.cc.o.d"
  "/root/repo/tests/gpu/gpu_equivalence_test.cc" "tests/CMakeFiles/gpu_tests.dir/gpu/gpu_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/gpu_equivalence_test.cc.o.d"
  "/root/repo/tests/gpu/gpu_options_test.cc" "tests/CMakeFiles/gpu_tests.dir/gpu/gpu_options_test.cc.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/gpu_options_test.cc.o.d"
  "/root/repo/tests/gpu/gpu_versions_test.cc" "tests/CMakeFiles/gpu_tests.dir/gpu/gpu_versions_test.cc.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/gpu_versions_test.cc.o.d"
  "/root/repo/tests/gpu/grid_build_test.cc" "tests/CMakeFiles/gpu_tests.dir/gpu/grid_build_test.cc.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/grid_build_test.cc.o.d"
  "/root/repo/tests/gpu/neighbor_parallel_test.cc" "tests/CMakeFiles/gpu_tests.dir/gpu/neighbor_parallel_test.cc.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/neighbor_parallel_test.cc.o.d"
  "/root/repo/tests/gpu/persistent_state_test.cc" "tests/CMakeFiles/gpu_tests.dir/gpu/persistent_state_test.cc.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/persistent_state_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roofline/CMakeFiles/biosim_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/biosim_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/biosim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/biosim_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/biosim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/biosim_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/biosim_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/biosim_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/biosim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
