file(REMOVE_RECURSE
  "CMakeFiles/gpusim_tests.dir/gpusim/device_buffer_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/device_buffer_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/frontend_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/frontend_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/l2_cache_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/l2_cache_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/latency_model_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/latency_model_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/memory_model_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/memory_model_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/simt_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/simt_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/timing_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/timing_test.cc.o.d"
  "gpusim_tests"
  "gpusim_tests.pdb"
  "gpusim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
