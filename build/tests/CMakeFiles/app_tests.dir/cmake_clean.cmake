file(REMOVE_RECURSE
  "CMakeFiles/app_tests.dir/app/config_test.cc.o"
  "CMakeFiles/app_tests.dir/app/config_test.cc.o.d"
  "CMakeFiles/app_tests.dir/app/runner_test.cc.o"
  "CMakeFiles/app_tests.dir/app/runner_test.cc.o.d"
  "app_tests"
  "app_tests.pdb"
  "app_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
