file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/behaviors_test.cc.o"
  "CMakeFiles/core_tests.dir/core/behaviors_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/cell_test.cc.o"
  "CMakeFiles/core_tests.dir/core/cell_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/checkpoint_test.cc.o"
  "CMakeFiles/core_tests.dir/core/checkpoint_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/export_test.cc.o"
  "CMakeFiles/core_tests.dir/core/export_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/math_test.cc.o"
  "CMakeFiles/core_tests.dir/core/math_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/param_test.cc.o"
  "CMakeFiles/core_tests.dir/core/param_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/profiler_test.cc.o"
  "CMakeFiles/core_tests.dir/core/profiler_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/random_test.cc.o"
  "CMakeFiles/core_tests.dir/core/random_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/resource_manager_test.cc.o"
  "CMakeFiles/core_tests.dir/core/resource_manager_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/statistics_test.cc.o"
  "CMakeFiles/core_tests.dir/core/statistics_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/thread_pool_test.cc.o"
  "CMakeFiles/core_tests.dir/core/thread_pool_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/timeseries_test.cc.o"
  "CMakeFiles/core_tests.dir/core/timeseries_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
