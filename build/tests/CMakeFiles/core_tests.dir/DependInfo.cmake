
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/behaviors_test.cc" "tests/CMakeFiles/core_tests.dir/core/behaviors_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/behaviors_test.cc.o.d"
  "/root/repo/tests/core/cell_test.cc" "tests/CMakeFiles/core_tests.dir/core/cell_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cell_test.cc.o.d"
  "/root/repo/tests/core/checkpoint_test.cc" "tests/CMakeFiles/core_tests.dir/core/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/checkpoint_test.cc.o.d"
  "/root/repo/tests/core/export_test.cc" "tests/CMakeFiles/core_tests.dir/core/export_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/export_test.cc.o.d"
  "/root/repo/tests/core/math_test.cc" "tests/CMakeFiles/core_tests.dir/core/math_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/math_test.cc.o.d"
  "/root/repo/tests/core/param_test.cc" "tests/CMakeFiles/core_tests.dir/core/param_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/param_test.cc.o.d"
  "/root/repo/tests/core/profiler_test.cc" "tests/CMakeFiles/core_tests.dir/core/profiler_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/profiler_test.cc.o.d"
  "/root/repo/tests/core/random_test.cc" "tests/CMakeFiles/core_tests.dir/core/random_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/random_test.cc.o.d"
  "/root/repo/tests/core/resource_manager_test.cc" "tests/CMakeFiles/core_tests.dir/core/resource_manager_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/resource_manager_test.cc.o.d"
  "/root/repo/tests/core/statistics_test.cc" "tests/CMakeFiles/core_tests.dir/core/statistics_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/statistics_test.cc.o.d"
  "/root/repo/tests/core/thread_pool_test.cc" "tests/CMakeFiles/core_tests.dir/core/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/thread_pool_test.cc.o.d"
  "/root/repo/tests/core/timeseries_test.cc" "tests/CMakeFiles/core_tests.dir/core/timeseries_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/timeseries_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roofline/CMakeFiles/biosim_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/biosim_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/biosim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/biosim_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/biosim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/biosim_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/biosim_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/biosim_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/biosim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
