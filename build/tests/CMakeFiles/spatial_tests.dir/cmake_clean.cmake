file(REMOVE_RECURSE
  "CMakeFiles/spatial_tests.dir/spatial/environment_equivalence_test.cc.o"
  "CMakeFiles/spatial_tests.dir/spatial/environment_equivalence_test.cc.o.d"
  "CMakeFiles/spatial_tests.dir/spatial/kd_tree_test.cc.o"
  "CMakeFiles/spatial_tests.dir/spatial/kd_tree_test.cc.o.d"
  "CMakeFiles/spatial_tests.dir/spatial/morton_test.cc.o"
  "CMakeFiles/spatial_tests.dir/spatial/morton_test.cc.o.d"
  "CMakeFiles/spatial_tests.dir/spatial/torus_test.cc.o"
  "CMakeFiles/spatial_tests.dir/spatial/torus_test.cc.o.d"
  "CMakeFiles/spatial_tests.dir/spatial/uniform_grid_test.cc.o"
  "CMakeFiles/spatial_tests.dir/spatial/uniform_grid_test.cc.o.d"
  "CMakeFiles/spatial_tests.dir/spatial/zorder_sort_test.cc.o"
  "CMakeFiles/spatial_tests.dir/spatial/zorder_sort_test.cc.o.d"
  "spatial_tests"
  "spatial_tests.pdb"
  "spatial_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
