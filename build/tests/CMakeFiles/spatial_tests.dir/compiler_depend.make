# Empty compiler generated dependencies file for spatial_tests.
# This may be replaced when dependencies are built.
