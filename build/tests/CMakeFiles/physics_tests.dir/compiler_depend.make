# Empty compiler generated dependencies file for physics_tests.
# This may be replaced when dependencies are built.
