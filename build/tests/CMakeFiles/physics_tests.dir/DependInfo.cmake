
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/physics/displacement_test.cc" "tests/CMakeFiles/physics_tests.dir/physics/displacement_test.cc.o" "gcc" "tests/CMakeFiles/physics_tests.dir/physics/displacement_test.cc.o.d"
  "/root/repo/tests/physics/force_law_test.cc" "tests/CMakeFiles/physics_tests.dir/physics/force_law_test.cc.o" "gcc" "tests/CMakeFiles/physics_tests.dir/physics/force_law_test.cc.o.d"
  "/root/repo/tests/physics/interaction_force_test.cc" "tests/CMakeFiles/physics_tests.dir/physics/interaction_force_test.cc.o" "gcc" "tests/CMakeFiles/physics_tests.dir/physics/interaction_force_test.cc.o.d"
  "/root/repo/tests/physics/mechanical_forces_op_test.cc" "tests/CMakeFiles/physics_tests.dir/physics/mechanical_forces_op_test.cc.o" "gcc" "tests/CMakeFiles/physics_tests.dir/physics/mechanical_forces_op_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roofline/CMakeFiles/biosim_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/biosim_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/biosim_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/biosim_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/biosim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/biosim_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/biosim_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/biosim_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/biosim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
