file(REMOVE_RECURSE
  "CMakeFiles/physics_tests.dir/physics/displacement_test.cc.o"
  "CMakeFiles/physics_tests.dir/physics/displacement_test.cc.o.d"
  "CMakeFiles/physics_tests.dir/physics/force_law_test.cc.o"
  "CMakeFiles/physics_tests.dir/physics/force_law_test.cc.o.d"
  "CMakeFiles/physics_tests.dir/physics/interaction_force_test.cc.o"
  "CMakeFiles/physics_tests.dir/physics/interaction_force_test.cc.o.d"
  "CMakeFiles/physics_tests.dir/physics/mechanical_forces_op_test.cc.o"
  "CMakeFiles/physics_tests.dir/physics/mechanical_forces_op_test.cc.o.d"
  "physics_tests"
  "physics_tests.pdb"
  "physics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
