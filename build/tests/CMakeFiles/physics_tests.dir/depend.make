# Empty dependencies file for physics_tests.
# This may be replaced when dependencies are built.
