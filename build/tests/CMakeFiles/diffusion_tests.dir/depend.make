# Empty dependencies file for diffusion_tests.
# This may be replaced when dependencies are built.
