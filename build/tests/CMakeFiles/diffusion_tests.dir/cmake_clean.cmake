file(REMOVE_RECURSE
  "CMakeFiles/diffusion_tests.dir/diffusion/diffusion_grid_test.cc.o"
  "CMakeFiles/diffusion_tests.dir/diffusion/diffusion_grid_test.cc.o.d"
  "diffusion_tests"
  "diffusion_tests.pdb"
  "diffusion_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffusion_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
