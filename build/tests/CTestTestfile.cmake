# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/spatial_tests[1]_include.cmake")
include("/root/repo/build/tests/physics_tests[1]_include.cmake")
include("/root/repo/build/tests/diffusion_tests[1]_include.cmake")
include("/root/repo/build/tests/gpusim_tests[1]_include.cmake")
include("/root/repo/build/tests/gpu_tests[1]_include.cmake")
include("/root/repo/build/tests/model_tests[1]_include.cmake")
include("/root/repo/build/tests/app_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
