# Empty dependencies file for tumor_spheroid.
# This may be replaced when dependencies are built.
