file(REMOVE_RECURSE
  "CMakeFiles/tumor_spheroid.dir/tumor_spheroid.cpp.o"
  "CMakeFiles/tumor_spheroid.dir/tumor_spheroid.cpp.o.d"
  "tumor_spheroid"
  "tumor_spheroid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tumor_spheroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
