file(REMOVE_RECURSE
  "CMakeFiles/cell_division.dir/cell_division.cpp.o"
  "CMakeFiles/cell_division.dir/cell_division.cpp.o.d"
  "cell_division"
  "cell_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
