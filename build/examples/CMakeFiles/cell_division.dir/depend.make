# Empty dependencies file for cell_division.
# This may be replaced when dependencies are built.
