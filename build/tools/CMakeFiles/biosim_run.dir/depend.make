# Empty dependencies file for biosim_run.
# This may be replaced when dependencies are built.
