file(REMOVE_RECURSE
  "CMakeFiles/biosim_run.dir/biosim_run.cc.o"
  "CMakeFiles/biosim_run.dir/biosim_run.cc.o.d"
  "biosim_run"
  "biosim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
