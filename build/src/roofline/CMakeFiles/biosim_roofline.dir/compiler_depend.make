# Empty compiler generated dependencies file for biosim_roofline.
# This may be replaced when dependencies are built.
