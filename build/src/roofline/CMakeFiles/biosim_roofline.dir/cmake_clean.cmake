file(REMOVE_RECURSE
  "CMakeFiles/biosim_roofline.dir/ert.cc.o"
  "CMakeFiles/biosim_roofline.dir/ert.cc.o.d"
  "libbiosim_roofline.a"
  "libbiosim_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
