file(REMOVE_RECURSE
  "libbiosim_roofline.a"
)
