file(REMOVE_RECURSE
  "CMakeFiles/biosim_gpusim.dir/device.cc.o"
  "CMakeFiles/biosim_gpusim.dir/device.cc.o.d"
  "libbiosim_gpusim.a"
  "libbiosim_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
