# Empty dependencies file for biosim_gpusim.
# This may be replaced when dependencies are built.
