file(REMOVE_RECURSE
  "libbiosim_gpusim.a"
)
