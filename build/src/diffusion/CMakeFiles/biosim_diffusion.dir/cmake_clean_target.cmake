file(REMOVE_RECURSE
  "libbiosim_diffusion.a"
)
