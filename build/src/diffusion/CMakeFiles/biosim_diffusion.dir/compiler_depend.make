# Empty compiler generated dependencies file for biosim_diffusion.
# This may be replaced when dependencies are built.
