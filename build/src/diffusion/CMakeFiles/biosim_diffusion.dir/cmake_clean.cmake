file(REMOVE_RECURSE
  "CMakeFiles/biosim_diffusion.dir/diffusion_grid.cc.o"
  "CMakeFiles/biosim_diffusion.dir/diffusion_grid.cc.o.d"
  "libbiosim_diffusion.a"
  "libbiosim_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
