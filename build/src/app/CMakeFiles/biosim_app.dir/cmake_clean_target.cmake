file(REMOVE_RECURSE
  "libbiosim_app.a"
)
