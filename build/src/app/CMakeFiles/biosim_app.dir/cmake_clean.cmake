file(REMOVE_RECURSE
  "CMakeFiles/biosim_app.dir/config.cc.o"
  "CMakeFiles/biosim_app.dir/config.cc.o.d"
  "CMakeFiles/biosim_app.dir/runner.cc.o"
  "CMakeFiles/biosim_app.dir/runner.cc.o.d"
  "libbiosim_app.a"
  "libbiosim_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
