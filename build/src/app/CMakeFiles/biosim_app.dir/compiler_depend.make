# Empty compiler generated dependencies file for biosim_app.
# This may be replaced when dependencies are built.
