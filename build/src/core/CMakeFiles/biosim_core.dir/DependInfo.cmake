
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cell.cc" "src/core/CMakeFiles/biosim_core.dir/cell.cc.o" "gcc" "src/core/CMakeFiles/biosim_core.dir/cell.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/biosim_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/biosim_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/export.cc" "src/core/CMakeFiles/biosim_core.dir/export.cc.o" "gcc" "src/core/CMakeFiles/biosim_core.dir/export.cc.o.d"
  "/root/repo/src/core/resource_manager.cc" "src/core/CMakeFiles/biosim_core.dir/resource_manager.cc.o" "gcc" "src/core/CMakeFiles/biosim_core.dir/resource_manager.cc.o.d"
  "/root/repo/src/core/statistics.cc" "src/core/CMakeFiles/biosim_core.dir/statistics.cc.o" "gcc" "src/core/CMakeFiles/biosim_core.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
