# Empty dependencies file for biosim_core.
# This may be replaced when dependencies are built.
