file(REMOVE_RECURSE
  "CMakeFiles/biosim_core.dir/cell.cc.o"
  "CMakeFiles/biosim_core.dir/cell.cc.o.d"
  "CMakeFiles/biosim_core.dir/checkpoint.cc.o"
  "CMakeFiles/biosim_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/biosim_core.dir/export.cc.o"
  "CMakeFiles/biosim_core.dir/export.cc.o.d"
  "CMakeFiles/biosim_core.dir/resource_manager.cc.o"
  "CMakeFiles/biosim_core.dir/resource_manager.cc.o.d"
  "CMakeFiles/biosim_core.dir/statistics.cc.o"
  "CMakeFiles/biosim_core.dir/statistics.cc.o.d"
  "libbiosim_core.a"
  "libbiosim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
