file(REMOVE_RECURSE
  "libbiosim_core.a"
)
