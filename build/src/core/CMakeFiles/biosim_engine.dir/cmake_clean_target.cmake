file(REMOVE_RECURSE
  "libbiosim_engine.a"
)
