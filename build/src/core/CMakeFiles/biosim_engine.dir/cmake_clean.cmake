file(REMOVE_RECURSE
  "CMakeFiles/biosim_engine.dir/simulation.cc.o"
  "CMakeFiles/biosim_engine.dir/simulation.cc.o.d"
  "CMakeFiles/biosim_engine.dir/timeseries.cc.o"
  "CMakeFiles/biosim_engine.dir/timeseries.cc.o.d"
  "libbiosim_engine.a"
  "libbiosim_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
