# Empty dependencies file for biosim_engine.
# This may be replaced when dependencies are built.
