file(REMOVE_RECURSE
  "libbiosim_physics.a"
)
