# Empty dependencies file for biosim_physics.
# This may be replaced when dependencies are built.
