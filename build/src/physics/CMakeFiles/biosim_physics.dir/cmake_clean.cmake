file(REMOVE_RECURSE
  "CMakeFiles/biosim_physics.dir/mechanical_forces_op.cc.o"
  "CMakeFiles/biosim_physics.dir/mechanical_forces_op.cc.o.d"
  "libbiosim_physics.a"
  "libbiosim_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
