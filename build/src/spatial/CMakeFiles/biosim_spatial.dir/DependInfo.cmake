
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/kd_tree.cc" "src/spatial/CMakeFiles/biosim_spatial.dir/kd_tree.cc.o" "gcc" "src/spatial/CMakeFiles/biosim_spatial.dir/kd_tree.cc.o.d"
  "/root/repo/src/spatial/uniform_grid.cc" "src/spatial/CMakeFiles/biosim_spatial.dir/uniform_grid.cc.o" "gcc" "src/spatial/CMakeFiles/biosim_spatial.dir/uniform_grid.cc.o.d"
  "/root/repo/src/spatial/zorder_sort.cc" "src/spatial/CMakeFiles/biosim_spatial.dir/zorder_sort.cc.o" "gcc" "src/spatial/CMakeFiles/biosim_spatial.dir/zorder_sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/biosim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
