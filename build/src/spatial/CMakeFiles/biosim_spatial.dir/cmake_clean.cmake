file(REMOVE_RECURSE
  "CMakeFiles/biosim_spatial.dir/kd_tree.cc.o"
  "CMakeFiles/biosim_spatial.dir/kd_tree.cc.o.d"
  "CMakeFiles/biosim_spatial.dir/uniform_grid.cc.o"
  "CMakeFiles/biosim_spatial.dir/uniform_grid.cc.o.d"
  "CMakeFiles/biosim_spatial.dir/zorder_sort.cc.o"
  "CMakeFiles/biosim_spatial.dir/zorder_sort.cc.o.d"
  "libbiosim_spatial.a"
  "libbiosim_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
