file(REMOVE_RECURSE
  "libbiosim_spatial.a"
)
