# Empty dependencies file for biosim_spatial.
# This may be replaced when dependencies are built.
