# Empty compiler generated dependencies file for biosim_gpu.
# This may be replaced when dependencies are built.
