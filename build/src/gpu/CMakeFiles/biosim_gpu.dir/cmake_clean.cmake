file(REMOVE_RECURSE
  "CMakeFiles/biosim_gpu.dir/device_sort.cc.o"
  "CMakeFiles/biosim_gpu.dir/device_sort.cc.o.d"
  "CMakeFiles/biosim_gpu.dir/gpu_mechanical_op.cc.o"
  "CMakeFiles/biosim_gpu.dir/gpu_mechanical_op.cc.o.d"
  "libbiosim_gpu.a"
  "libbiosim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
