file(REMOVE_RECURSE
  "libbiosim_gpu.a"
)
