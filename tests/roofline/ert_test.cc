#include "roofline/ert.h"

#include <gtest/gtest.h>

namespace biosim::roofline {
namespace {

class ErtTest : public ::testing::Test {
 protected:
  // Small working set keeps the sweep fast; still >> the scaled L2.
  EmpiricalRoofline ert_{gpusim::DeviceSpec::TeslaV100(), 8ull << 20};
};

TEST_F(ErtTest, EmpiricalCeilingsApproachSpecSheet) {
  RooflineCeilings c = ert_.Measure();
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::TeslaV100();
  // Empirical peaks land within ~25% of the spec numbers (launch overhead
  // and cache effects keep them below the theoretical values).
  EXPECT_GT(c.fp32_peak_gflops, 0.75 * spec.fp32_gflops);
  EXPECT_LE(c.fp32_peak_gflops, 1.02 * spec.fp32_gflops);
  EXPECT_GT(c.dram_bandwidth_gbps, 0.6 * spec.dram_bandwidth_gbps);
  EXPECT_LE(c.dram_bandwidth_gbps, 1.3 * spec.dram_bandwidth_gbps);
  EXPECT_GT(c.fp64_peak_gflops, 0.75 * spec.fp64_gflops);
}

TEST_F(ErtTest, SweepShowsRooflineShape) {
  RooflineCeilings c = ert_.Measure();
  const auto& pts = ert_.sweep_points();
  ASSERT_GT(pts.size(), 5u);
  // Low-AI points are memory bound: gflops ~ AI * bandwidth.
  const auto& low = pts.front();
  EXPECT_NEAR(low.gflops, low.arithmetic_intensity * c.dram_bandwidth_gbps,
              0.3 * low.gflops);
  // High-AI points approach the compute roof.
  const auto& high = pts.back();
  EXPECT_GT(high.gflops, 0.7 * c.fp32_peak_gflops);
  // Achieved performance is monotone non-decreasing along the sweep.
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].gflops, pts[i - 1].gflops * 0.95);
  }
}

TEST_F(ErtTest, AttainableIsMinOfRoofs) {
  RooflineCeilings c;
  c.fp32_peak_gflops = 1000.0;
  c.dram_bandwidth_gbps = 100.0;
  EXPECT_DOUBLE_EQ(c.Attainable(1.0), 100.0);    // memory bound
  EXPECT_DOUBLE_EQ(c.Attainable(10.0), 1000.0);  // ridge point
  EXPECT_DOUBLE_EQ(c.Attainable(100.0), 1000.0);
}

TEST_F(ErtTest, TableRendersKernelPlacement) {
  RooflineCeilings c;
  c.fp32_peak_gflops = 15700.0;
  c.fp64_peak_gflops = 7800.0;
  c.dram_bandwidth_gbps = 900.0;
  std::vector<RooflinePoint> kernels{{"mech_n27", 0.8, 600.0}};
  std::string t = EmpiricalRoofline::Table(c, kernels);
  EXPECT_NE(t.find("mech_n27"), std::string::npos);
  EXPECT_NE(t.find("15700"), std::string::npos);
}

}  // namespace
}  // namespace biosim::roofline
