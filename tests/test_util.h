// Shared helpers for the test suite.
#ifndef BIOSIM_TESTS_TEST_UTIL_H_
#define BIOSIM_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "core/random.h"
#include "core/resource_manager.h"

namespace biosim::testutil {

/// Populate `rm` with `n` cells of the given diameter at uniform random
/// positions inside [lo, hi)^3.
inline void FillRandomCells(ResourceManager* rm, size_t n, double lo,
                            double hi, double diameter, uint64_t seed = 42) {
  Random rng(seed);
  rm->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    NewAgentSpec s;
    s.position = rng.UniformInCube(lo, hi);
    s.diameter = diameter;
    rm->AddAgent(std::move(s));
  }
}

/// Populate `rm` with a jittered cubic lattice of cells in x-major creation
/// order — the initial layout of the paper's benchmark A. Consecutive rows
/// are spatial neighbors, so warp accesses coalesce (the layout FP32's 2x
/// depends on).
inline void FillLatticeCells(ResourceManager* rm, size_t per_dim,
                             double spacing, double diameter,
                             double jitter = 0.0, uint64_t seed = 42) {
  Random rng(seed);
  rm->Reserve(per_dim * per_dim * per_dim);
  for (size_t x = 0; x < per_dim; ++x) {
    for (size_t y = 0; y < per_dim; ++y) {
      for (size_t z = 0; z < per_dim; ++z) {
        NewAgentSpec s;
        s.position = {(x + 0.5) * spacing + rng.Uniform(-jitter, jitter),
                      (y + 0.5) * spacing + rng.Uniform(-jitter, jitter),
                      (z + 0.5) * spacing + rng.Uniform(-jitter, jitter)};
        s.diameter = diameter;
        rm->AddAgent(std::move(s));
      }
    }
  }
}

/// Randomly permute the rows of `rm` — the memory layout benchmark A decays
/// into after many division steps (daughters append at the end), which is
/// what Improvement II's Z-order sort repairs.
inline void ShuffleAgents(ResourceManager* rm, uint64_t seed = 99) {
  Random rng(seed);
  std::vector<AgentIndex> perm(rm->size());
  for (size_t i = 0; i < perm.size(); ++i) {
    perm[i] = i;
  }
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.UniformInt(i)]);
  }
  rm->ApplyPermutation(perm);
}

/// O(n^2) reference neighbor search: sorted indices of all agents within
/// `radius` of `query` (exclusive).
inline std::vector<AgentIndex> BruteForceNeighbors(const ResourceManager& rm,
                                                   AgentIndex query,
                                                   double radius) {
  std::vector<AgentIndex> out;
  const auto& pos = rm.positions();
  double r2 = radius * radius;
  for (size_t j = 0; j < rm.size(); ++j) {
    if (j != query && SquaredDistance(pos[query], pos[j]) <= r2) {
      out.push_back(j);
    }
  }
  return out;
}

/// Collect an environment's neighbor set for `query`, sorted.
template <typename Env>
std::vector<AgentIndex> CollectNeighbors(const Env& env,
                                         const ResourceManager& rm,
                                         AgentIndex query, double radius) {
  std::vector<AgentIndex> out;
  env.ForEachNeighborWithinRadius(query, rm, radius,
                                  [&](AgentIndex j, double) { out.push_back(j); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace biosim::testutil

#endif  // BIOSIM_TESTS_TEST_UTIL_H_
