#include "physics/interaction_force.h"

#include <gtest/gtest.h>

#include "core/random.h"

namespace biosim {
namespace {

const ForceParams<double> kDefault{2.0, 1.0};  // kappa=2, gamma=1

TEST(InteractionForceTest, NoContactNoForce) {
  // Two radius-5 spheres, centers 11 apart: delta = -1.
  Double3 f = SphereSphereForce<double>({0, 0, 0}, 5.0, {11, 0, 0}, 5.0,
                                        kDefault);
  EXPECT_EQ(f, (Double3{0, 0, 0}));
}

TEST(InteractionForceTest, TouchingExactlyNoForce) {
  Double3 f = SphereSphereForce<double>({0, 0, 0}, 5.0, {10, 0, 0}, 5.0,
                                        kDefault);
  EXPECT_EQ(f, (Double3{0, 0, 0}));
}

TEST(InteractionForceTest, CoincidentCentersNoNaN) {
  Double3 f = SphereSphereForce<double>({3, 3, 3}, 5.0, {3, 3, 3}, 5.0,
                                        kDefault);
  EXPECT_EQ(f, (Double3{0, 0, 0}));
}

TEST(InteractionForceTest, HandComputedOverlap) {
  // r1 = r2 = 5, centers 8 apart along x:
  //   delta = 10 - 8 = 2, reduced r = 25/10 = 2.5
  //   |F| = kappa*2 - gamma*sqrt(2.5*2) = 4 - sqrt(5)
  // directed from p2 to p1 (repulsion on sphere 1 at origin-side).
  Double3 f = SphereSphereForce<double>({0, 0, 0}, 5.0, {8, 0, 0}, 5.0,
                                        kDefault);
  double expected = -(4.0 - std::sqrt(5.0));  // pushes sphere 1 to -x
  EXPECT_NEAR(f.x, expected, 1e-12);
  EXPECT_DOUBLE_EQ(f.y, 0.0);
  EXPECT_DOUBLE_EQ(f.z, 0.0);
}

TEST(InteractionForceTest, DeepOverlapRepels) {
  // Nearly concentric: strong repulsion dominates attraction.
  Double3 f = SphereSphereForce<double>({0, 0, 0}, 5.0, {1, 0, 0}, 5.0,
                                        kDefault);
  EXPECT_LT(f.x, 0.0);  // sphere 1 pushed away from sphere 2 (toward -x)
  EXPECT_GT(std::abs(f.x), 1.0);
}

TEST(InteractionForceTest, MildOverlapCanAttract) {
  // Near touching, the adhesive gamma*sqrt(r*delta) term wins over
  // kappa*delta (sqrt dominates for small delta): net attraction.
  Double3 f = SphereSphereForce<double>({0, 0, 0}, 5.0, {9.9, 0, 0}, 5.0,
                                        kDefault);
  // magnitude = 2*0.1 - sqrt(2.5*0.1) = 0.2 - 0.5 = -0.3 -> pulls toward p2.
  EXPECT_GT(f.x, 0.0);
  EXPECT_NEAR(f.x, 0.3, 1e-9);
}

TEST(InteractionForceTest, NewtonsThirdLaw) {
  Random rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    Double3 p1 = rng.UniformInCube(0, 10);
    Double3 p2 = rng.UniformInCube(0, 10);
    double r1 = rng.Uniform(2.0, 8.0);
    double r2 = rng.Uniform(2.0, 8.0);
    Double3 f12 = SphereSphereForce(p1, r1, p2, r2, kDefault);
    Double3 f21 = SphereSphereForce(p2, r2, p1, r1, kDefault);
    ASSERT_NEAR(f12.x, -f21.x, 1e-9);
    ASSERT_NEAR(f12.y, -f21.y, 1e-9);
    ASSERT_NEAR(f12.z, -f21.z, 1e-9);
  }
}

TEST(InteractionForceTest, ForceIsCentral) {
  // The force must be parallel to the center line.
  Random rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    Double3 p1 = rng.UniformInCube(0, 5);
    Double3 p2 = rng.UniformInCube(0, 5);
    Double3 f = SphereSphereForce(p1, 6.0, p2, 6.0, kDefault);
    Double3 axis = p1 - p2;
    ASSERT_LT(f.Cross(axis).Norm(), 1e-9 * (1.0 + f.Norm() * axis.Norm()));
  }
}

TEST(InteractionForceTest, RotationInvariance) {
  // Rotating both spheres by 90 deg about z rotates the force identically.
  Double3 p1{1.0, 2.0, 3.0}, p2{4.0, 1.0, 2.5};
  Double3 f = SphereSphereForce(p1, 4.0, p2, 4.0, kDefault);
  auto rot = [](const Double3& v) { return Double3{-v.y, v.x, v.z}; };
  Double3 fr = SphereSphereForce(rot(p1), 4.0, rot(p2), 4.0, kDefault);
  EXPECT_NEAR(fr.x, rot(f).x, 1e-12);
  EXPECT_NEAR(fr.y, rot(f).y, 1e-12);
  EXPECT_NEAR(fr.z, rot(f).z, 1e-12);
}

TEST(InteractionForceTest, PureRepulsionWithZeroGamma) {
  ForceParams<double> rep{2.0, 0.0};
  Random rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    Double3 p2 = rng.UniformInCube(-4, 4);
    Double3 f = SphereSphereForce<double>({0, 0, 0}, 5.0, p2, 5.0, rep);
    // Force on sphere 1 points away from p2 (same direction as -p2).
    ASSERT_LE(f.Dot(p2), 1e-12);
  }
}

TEST(InteractionForceTest, Fp32MatchesFp64WithinTolerance) {
  // Improvement I's premise: FP32 changes results far less than model
  // parameter uncertainty.
  Random rng(24);
  ForceParams<float> kf{2.0f, 1.0f};
  for (int trial = 0; trial < 500; ++trial) {
    Double3 p1 = rng.UniformInCube(0, 100);
    Double3 p2 = p1 + rng.UnitVector() * rng.Uniform(0.5, 12.0);
    double r1 = rng.Uniform(3.0, 8.0), r2 = rng.Uniform(3.0, 8.0);
    Double3 f64 = SphereSphereForce(p1, r1, p2, r2, kDefault);
    Float3 f32 = SphereSphereForce<float>(
        p1.As<float>(), static_cast<float>(r1), p2.As<float>(),
        static_cast<float>(r2), kf);
    double scale = std::max(1.0, f64.Norm());
    ASSERT_NEAR(f32.x, f64.x, 1e-3 * scale);
    ASSERT_NEAR(f32.y, f64.y, 1e-3 * scale);
    ASSERT_NEAR(f32.z, f64.z, 1e-3 * scale);
  }
}

}  // namespace
}  // namespace biosim
