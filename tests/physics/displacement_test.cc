#include "physics/displacement.h"

#include <gtest/gtest.h>

namespace biosim {
namespace {

TEST(DisplacementTest, BelowAdherenceNoMovement) {
  Double3 d = ComputeDisplacement<double>({0.1, 0.1, 0.1}, /*adherence=*/1.0,
                                          /*dt=*/0.01, /*max=*/3.0);
  EXPECT_EQ(d, (Double3{0, 0, 0}));
}

TEST(DisplacementTest, ExactlyAtAdherenceNoMovement) {
  Double3 d = ComputeDisplacement<double>({1.0, 0.0, 0.0}, 1.0, 0.01, 3.0);
  EXPECT_EQ(d, (Double3{0, 0, 0}));
}

TEST(DisplacementTest, AboveAdherenceIntegrates) {
  Double3 d = ComputeDisplacement<double>({10.0, 0.0, 0.0}, 1.0, 0.01, 3.0);
  EXPECT_NEAR(d.x, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(d.y, 0.0);
}

TEST(DisplacementTest, ClampsToMaxDisplacement) {
  Double3 d = ComputeDisplacement<double>({1000.0, 0.0, 0.0}, 1.0, 0.01, 3.0);
  EXPECT_NEAR(d.Norm(), 3.0, 1e-12);
  EXPECT_GT(d.x, 0.0);
}

TEST(DisplacementTest, ClampPreservesDirection) {
  Double3 f{300.0, 400.0, 0.0};
  Double3 d = ComputeDisplacement<double>(f, 1.0, 0.1, 3.0);
  EXPECT_NEAR(d.Norm(), 3.0, 1e-12);
  EXPECT_NEAR(d.x / d.y, f.x / f.y, 1e-12);
}

TEST(DisplacementTest, ZeroMaxDisplacementFreezesAgents) {
  // Benchmark B sets max displacement to zero so the density stays constant.
  Double3 d = ComputeDisplacement<double>({100.0, 50.0, 25.0}, 0.4, 0.01, 0.0);
  EXPECT_DOUBLE_EQ(d.Norm(), 0.0);
}

TEST(DisplacementTest, Fp32PathMatches) {
  Float3 d = ComputeDisplacement<float>({10.0f, 0.0f, 0.0f}, 1.0f, 0.01f, 3.0f);
  EXPECT_NEAR(d.x, 0.1f, 1e-6f);
}

TEST(BoundSpaceTest, ClampsIntoCube) {
  Param p;
  p.min_bound = 0.0;
  p.max_bound = 100.0;
  p.bound_space = true;
  EXPECT_EQ(ApplyBoundSpace({-5.0, 50.0, 105.0}, p), (Double3{0.0, 50.0, 100.0}));
  EXPECT_EQ(ApplyBoundSpace({50.0, 50.0, 50.0}, p), (Double3{50.0, 50.0, 50.0}));
}

TEST(BoundSpaceTest, DisabledLeavesPositionAlone) {
  Param p;
  p.bound_space = false;
  EXPECT_EQ(ApplyBoundSpace({-5.0, 500.0, 1e6}, p), (Double3{-5.0, 500.0, 1e6}));
}

}  // namespace
}  // namespace biosim
