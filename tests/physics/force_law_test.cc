#include "physics/force_law.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/random.h"
#include "physics/mechanical_forces_op.h"
#include "spatial/uniform_grid.h"

namespace biosim {
namespace {

const ForceParams<double> kParams{2.0, 1.0};

TEST(HertzForceTest, ZeroBeyondContactAndAtCoincidence) {
  EXPECT_EQ(HertzForce<double>({0, 0, 0}, 5.0, {11, 0, 0}, 5.0, kParams),
            (Double3{0, 0, 0}));
  EXPECT_EQ(HertzForce<double>({0, 0, 0}, 5.0, {10, 0, 0}, 5.0, kParams),
            (Double3{0, 0, 0}));
  EXPECT_EQ(HertzForce<double>({3, 3, 3}, 5.0, {3, 3, 3}, 5.0, kParams),
            (Double3{0, 0, 0}));
}

TEST(HertzForceTest, ThreeHalvesPowerScaling) {
  // F(2*delta) / F(delta) = 2^{1.5} for fixed radii.
  auto mag = [&](double separation) {
    return HertzForce<double>({0, 0, 0}, 5.0, {separation, 0, 0}, 5.0,
                              kParams)
        .Norm();
  };
  double f1 = mag(9.0);   // delta = 1
  double f2 = mag(8.0);   // delta = 2
  EXPECT_NEAR(f2 / f1, std::pow(2.0, 1.5), 1e-9);
}

TEST(HertzForceTest, HandComputedMagnitude) {
  // r1=r2=5 -> r_eff=2.5; separation 8 -> delta=2.
  // |F| = E * sqrt(2.5) * 2^{1.5}, E = 2.
  Double3 f = HertzForce<double>({0, 0, 0}, 5.0, {8, 0, 0}, 5.0, kParams);
  EXPECT_NEAR(f.Norm(), 2.0 * std::sqrt(2.5) * std::pow(2.0, 1.5), 1e-12);
  EXPECT_LT(f.x, 0.0);  // repulsive: pushes sphere 1 away
}

TEST(HertzForceTest, PurelyRepulsiveEverywhere) {
  Random rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    Double3 p2 = rng.UnitVector() * rng.Uniform(0.1, 9.9);
    Double3 f = HertzForce<double>({0, 0, 0}, 5.0, p2, 5.0, kParams);
    // Force on sphere 1 points away from sphere 2.
    ASSERT_LE(f.Dot(p2), 1e-12);
  }
}

TEST(HertzForceTest, NewtonsThirdLaw) {
  Random rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    Double3 p1 = rng.UniformInCube(0, 10);
    Double3 p2 = rng.UniformInCube(0, 10);
    Double3 f12 = HertzForce(p1, 6.0, p2, 6.0, kParams);
    Double3 f21 = HertzForce(p2, 6.0, p1, 6.0, kParams);
    ASSERT_LT((f12 + f21).Norm(), 1e-9);
  }
}

TEST(EvaluateForceTest, DispatchesOnLaw) {
  Double3 p2{8, 0, 0};
  Double3 cortex =
      EvaluateForce<double>(ForceLaw::kCortex3D, {0, 0, 0}, 5.0, p2, 5.0,
                            kParams);
  Double3 hertz = EvaluateForce<double>(ForceLaw::kHertz, {0, 0, 0}, 5.0, p2,
                                        5.0, kParams);
  EXPECT_EQ(cortex,
            SphereSphereForce<double>({0, 0, 0}, 5.0, p2, 5.0, kParams));
  EXPECT_EQ(hertz, HertzForce<double>({0, 0, 0}, 5.0, p2, 5.0, kParams));
  EXPECT_NE(cortex, hertz);
}

TEST(ForceLawOpTest, HertzOpRelaxesOverlapsWithoutAdhesion) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 200, 0.0, 40.0, 10.0);
  for (auto& a : rm.adherences()) {
    a = 0.001;
  }
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);

  MechanicalForcesOp cortex_op(ForceLaw::kCortex3D);
  MechanicalForcesOp hertz_op(ForceLaw::kHertz);
  cortex_op.ComputeDisplacements(rm, env, param, ExecMode::kSerial);
  hertz_op.ComputeDisplacements(rm, env, param, ExecMode::kSerial);

  // Same pairs evaluated, different physics.
  EXPECT_EQ(cortex_op.last_force_evaluations(),
            hertz_op.last_force_evaluations());
  bool any_differs = false;
  for (size_t i = 0; i < rm.size(); ++i) {
    if (cortex_op.displacements()[i] != hertz_op.displacements()[i]) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(ForceLawOpTest, HertzSimulationSeparatesOverlappingPair) {
  ResourceManager rm;
  NewAgentSpec a, b;
  a.position = {50, 50, 50};
  b.position = {56, 50, 50};
  a.diameter = b.diameter = 10.0;
  a.adherence = b.adherence = 0.001;
  rm.AddAgent(std::move(a));
  rm.AddAgent(std::move(b));
  Param param;
  UniformGridEnvironment env;
  MechanicalForcesOp op(ForceLaw::kHertz);
  for (int step = 0; step < 100; ++step) {
    env.Update(rm, param, ExecMode::kSerial);
    op.ComputeDisplacements(rm, env, param, ExecMode::kSerial);
    op.ApplyDisplacements(rm, param, ExecMode::kSerial);
  }
  // Purely repulsive: separates toward contact (asymptotically — the
  // Hertz force vanishes as delta^{3/2}, so the last fraction of overlap
  // resolves slowly and the adherence gate stops the creep).
  EXPECT_GE(Distance(rm.positions()[0], rm.positions()[1]), 9.8);
}

}  // namespace
}  // namespace biosim
