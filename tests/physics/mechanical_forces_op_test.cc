#include "physics/mechanical_forces_op.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "physics/interaction_force.h"
#include "spatial/kd_tree.h"
#include "spatial/uniform_grid.h"

namespace biosim {
namespace {

class MechanicalForcesOpTest : public ::testing::Test {
 protected:
  void SetUpPair(double separation) {
    NewAgentSpec a, b;
    a.position = {50.0, 50.0, 50.0};
    b.position = {50.0 + separation, 50.0, 50.0};
    a.diameter = b.diameter = 10.0;
    a.adherence = b.adherence = 0.001;  // negligible: everything moves
    rm_.AddAgent(std::move(a));
    rm_.AddAgent(std::move(b));
  }

  ResourceManager rm_;
  Param param_;
  UniformGridEnvironment env_;
  MechanicalForcesOp op_;
};

TEST_F(MechanicalForcesOpTest, OverlappingPairPushesApart) {
  SetUpPair(8.0);  // overlap of 2
  env_.Update(rm_, param_, ExecMode::kSerial);
  op_.ComputeDisplacements(rm_, env_, param_, ExecMode::kSerial);
  const auto& d = op_.displacements();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_LT(d[0].x, 0.0);  // agent 0 moves -x
  EXPECT_GT(d[1].x, 0.0);  // agent 1 moves +x
  EXPECT_NEAR(d[0].x, -d[1].x, 1e-12);  // symmetric
  EXPECT_NEAR(d[0].y, 0.0, 1e-15);
}

TEST_F(MechanicalForcesOpTest, DisplacementMatchesClosedForm) {
  SetUpPair(8.0);
  env_.Update(rm_, param_, ExecMode::kSerial);
  op_.ComputeDisplacements(rm_, env_, param_, ExecMode::kSerial);
  ForceParams<double> fp{param_.repulsion_coefficient,
                         param_.attraction_coefficient};
  Double3 f = SphereSphereForce<double>({50, 50, 50}, 5.0, {58, 50, 50}, 5.0, fp);
  EXPECT_NEAR(op_.displacements()[0].x, f.x * param_.simulation_time_step,
              1e-12);
}

TEST_F(MechanicalForcesOpTest, SeparatedPairDoesNotMove) {
  SetUpPair(20.0);
  env_.Update(rm_, param_, ExecMode::kSerial);
  op_.ComputeDisplacements(rm_, env_, param_, ExecMode::kSerial);
  EXPECT_EQ(op_.displacements()[0], (Double3{0, 0, 0}));
  EXPECT_EQ(op_.displacements()[1], (Double3{0, 0, 0}));
}

TEST_F(MechanicalForcesOpTest, HighAdherenceFreezes) {
  SetUpPair(8.0);
  rm_.adherences()[0] = 1e9;
  rm_.adherences()[1] = 1e9;
  env_.Update(rm_, param_, ExecMode::kSerial);
  op_.ComputeDisplacements(rm_, env_, param_, ExecMode::kSerial);
  EXPECT_EQ(op_.displacements()[0], (Double3{0, 0, 0}));
}

TEST_F(MechanicalForcesOpTest, TractorForceMovesIsolatedAgent) {
  NewAgentSpec a;
  a.position = {50.0, 50.0, 50.0};
  a.diameter = 10.0;
  a.adherence = 0.001;
  a.tractor_force = {5.0, 0.0, 0.0};
  rm_.AddAgent(std::move(a));
  env_.Update(rm_, param_, ExecMode::kSerial);
  op_.ComputeDisplacements(rm_, env_, param_, ExecMode::kSerial);
  EXPECT_NEAR(op_.displacements()[0].x, 5.0 * param_.simulation_time_step,
              1e-12);
}

TEST_F(MechanicalForcesOpTest, ApplyDisplacementsMovesAndBounds) {
  SetUpPair(8.0);
  rm_.positions()[0] = {0.5, 50.0, 50.0};  // near the min bound
  rm_.positions()[1] = {6.0, 50.0, 50.0};
  env_.Update(rm_, param_, ExecMode::kSerial);
  op_.ComputeDisplacements(rm_, env_, param_, ExecMode::kSerial);
  op_.ApplyDisplacements(rm_, param_, ExecMode::kSerial);
  EXPECT_GE(rm_.positions()[0].x, param_.min_bound);
}

TEST_F(MechanicalForcesOpTest, SerialAndParallelAgree) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 400, 0.0, 60.0, 10.0);
  UniformGridEnvironment env;
  env.Update(rm, param_, ExecMode::kSerial);
  MechanicalForcesOp serial_op, parallel_op;
  serial_op.ComputeDisplacements(rm, env, param_, ExecMode::kSerial);
  parallel_op.ComputeDisplacements(rm, env, param_, ExecMode::kParallel);
  for (size_t i = 0; i < rm.size(); ++i) {
    // Same environment -> same per-agent neighbor iteration -> identical
    // floating point results.
    ASSERT_EQ(serial_op.displacements()[i], parallel_op.displacements()[i]);
  }
}

TEST_F(MechanicalForcesOpTest, KdTreeAndGridGiveSameForces) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 300, 0.0, 50.0, 10.0);
  KdTreeEnvironment kd;
  UniformGridEnvironment ug;
  kd.Update(rm, param_, ExecMode::kSerial);
  ug.Update(rm, param_, ExecMode::kSerial);
  MechanicalForcesOp kd_op, ug_op;
  kd_op.ComputeDisplacements(rm, kd, param_, ExecMode::kSerial);
  ug_op.ComputeDisplacements(rm, ug, param_, ExecMode::kSerial);
  for (size_t i = 0; i < rm.size(); ++i) {
    // Iteration order differs, so allow FP reassociation noise.
    ASSERT_NEAR(kd_op.displacements()[i].x, ug_op.displacements()[i].x, 1e-9);
    ASSERT_NEAR(kd_op.displacements()[i].y, ug_op.displacements()[i].y, 1e-9);
    ASSERT_NEAR(kd_op.displacements()[i].z, ug_op.displacements()[i].z, 1e-9);
  }
}

TEST_F(MechanicalForcesOpTest, ForceEvaluationCountMatchesNeighborCount) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 200, 0.0, 40.0, 10.0);
  UniformGridEnvironment env;
  env.Update(rm, param_, ExecMode::kSerial);
  MechanicalForcesOp op;
  op.ComputeDisplacements(rm, env, param_, ExecMode::kSerial);
  size_t expected = 0;
  for (AgentIndex q = 0; q < rm.size(); ++q) {
    expected += testutil::BruteForceNeighbors(rm, q, env.interaction_radius())
                    .size();
  }
  EXPECT_EQ(op.last_force_evaluations(), expected);
}

TEST_F(MechanicalForcesOpTest, ThreeBodySymmetricConfiguration) {
  // Three overlapping cells on a line: the middle one feels balanced forces.
  for (double x : {40.0, 48.0, 56.0}) {
    NewAgentSpec s;
    s.position = {x, 50.0, 50.0};
    s.diameter = 10.0;
    s.adherence = 0.001;
    rm_.AddAgent(std::move(s));
  }
  env_.Update(rm_, param_, ExecMode::kSerial);
  op_.ComputeDisplacements(rm_, env_, param_, ExecMode::kSerial);
  EXPECT_NEAR(op_.displacements()[1].x, 0.0, 1e-12);  // middle balanced
  EXPECT_NEAR(op_.displacements()[0].x, -op_.displacements()[2].x, 1e-12);
}

}  // namespace
}  // namespace biosim
