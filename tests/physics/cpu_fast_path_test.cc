// Fused CPU fast-path tests (docs/perf.md): the fused CSR force kernel must
// produce a displacement buffer *bitwise identical* to the generic callback
// path — same neighbor visit order, same FP expressions — along with equal
// force-evaluation counts, at any exec mode, on clamped and torus
// boundaries. Also covers the dispatch rules: the fast path engages only on
// a UniformGridEnvironment and only when param.cpu_fast_path is set.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "../test_util.h"
#include "core/param.h"
#include "core/random.h"
#include "core/resource_manager.h"
#include "physics/mechanical_forces_op.h"
#include "spatial/kd_tree.h"
#include "spatial/uniform_grid.h"

namespace biosim {
namespace {

Param BaseParam(double hi, BoundaryMode boundary = BoundaryMode::kClamp) {
  Param p;
  p.min_bound = 0.0;
  p.max_bound = hi;
  p.boundary_mode = boundary;
  return p;
}

void FillClusteredBall(ResourceManager* rm, size_t n, Double3 center,
                       double ball_radius, double diameter, uint64_t seed) {
  Random rng(seed);
  rm->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    NewAgentSpec s;
    s.position = center + rng.UnitVector() * (ball_radius * rng.Uniform());
    s.diameter = diameter;
    rm->AddAgent(std::move(s));
  }
}

/// Run both paths over the same up-to-date grid and require bitwise-equal
/// displacement buffers and equal force-evaluation counts.
void ExpectFusedMatchesGeneric(const ResourceManager& rm, const Param& param,
                               ExecMode mode) {
  UniformGridEnvironment env;
  env.Update(rm, param, mode);

  Param generic_param = param;
  generic_param.cpu_fast_path = false;
  MechanicalForcesOp generic_op;
  generic_op.ComputeDisplacements(rm, env, generic_param, mode);
  EXPECT_FALSE(generic_op.last_used_fast_path());

  Param fused_param = param;
  fused_param.cpu_fast_path = true;
  MechanicalForcesOp fused_op;
  fused_op.ComputeDisplacements(rm, env, fused_param, mode);
  EXPECT_TRUE(fused_op.last_used_fast_path());

  EXPECT_EQ(generic_op.last_force_evaluations(),
            fused_op.last_force_evaluations());
  ASSERT_EQ(generic_op.displacements().size(), fused_op.displacements().size());
  for (size_t i = 0; i < generic_op.displacements().size(); ++i) {
    // EXPECT_EQ, not EXPECT_NEAR: the contract is bitwise, not approximate.
    EXPECT_EQ(generic_op.displacements()[i], fused_op.displacements()[i])
        << "agent " << i;
  }
}

TEST(CpuFastPathTest, RandomCloudMatchesGenericBitwise) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 80.0, 10.0, /*seed=*/7);
  ExpectFusedMatchesGeneric(rm, BaseParam(80.0), ExecMode::kSerial);
  ExpectFusedMatchesGeneric(rm, BaseParam(80.0), ExecMode::kParallel);
}

TEST(CpuFastPathTest, ClusteredBallMatchesGenericBitwise) {
  ResourceManager rm;
  FillClusteredBall(&rm, 400, {70.0, 70.0, 70.0}, 30.0, 10.0, /*seed=*/19);
  ExpectFusedMatchesGeneric(rm, BaseParam(200.0), ExecMode::kSerial);
  ExpectFusedMatchesGeneric(rm, BaseParam(200.0), ExecMode::kParallel);
}

TEST(CpuFastPathTest, TorusMatchesGenericBitwise) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 300, 0.0, 100.0, 12.0, /*seed=*/23);
  Param p = BaseParam(100.0, BoundaryMode::kTorus);
  ExpectFusedMatchesGeneric(rm, p, ExecMode::kSerial);
  ExpectFusedMatchesGeneric(rm, p, ExecMode::kParallel);
}

TEST(CpuFastPathTest, DegenerateTorusGridMatchesGenericBitwise) {
  // 100/40 -> 2 boxes per axis: the reduced periodic offset ranges.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 150, 0.0, 100.0, 40.0, /*seed=*/29);
  ExpectFusedMatchesGeneric(rm, BaseParam(100.0, BoundaryMode::kTorus),
                            ExecMode::kSerial);
}

TEST(CpuFastPathTest, ShuffledRowsMatchGenericBitwise) {
  // Row order is an input to both paths equally: a shuffled (division-aged)
  // layout must not break the equivalence.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 400, 0.0, 80.0, 10.0, /*seed=*/31);
  testutil::ShuffleAgents(&rm, /*seed=*/5);
  ExpectFusedMatchesGeneric(rm, BaseParam(80.0), ExecMode::kSerial);
}

TEST(CpuFastPathTest, EmptyPopulationIsHandled) {
  ResourceManager rm;
  UniformGridEnvironment env;
  Param p = BaseParam(100.0);
  env.Update(rm, p, ExecMode::kSerial);
  MechanicalForcesOp op;
  op.ComputeDisplacements(rm, env, p, ExecMode::kSerial);
  EXPECT_TRUE(op.last_used_fast_path());
  EXPECT_EQ(op.last_force_evaluations(), 0u);
  EXPECT_TRUE(op.displacements().empty());
}

TEST(CpuFastPathTest, KdTreeFallsBackToGenericPath) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 50.0, 10.0);
  KdTreeEnvironment env;
  Param p = BaseParam(50.0);
  p.cpu_fast_path = true;  // requested, but no uniform grid to consume
  env.Update(rm, p, ExecMode::kSerial);
  MechanicalForcesOp op;
  op.ComputeDisplacements(rm, env, p, ExecMode::kSerial);
  EXPECT_FALSE(op.last_used_fast_path());
  EXPECT_GT(op.last_force_evaluations(), 0u);
}

TEST(CpuFastPathTest, ConfigOffForcesGenericPathOnTheGrid) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 50.0, 10.0);
  UniformGridEnvironment env;
  Param p = BaseParam(50.0);
  p.cpu_fast_path = false;
  env.Update(rm, p, ExecMode::kSerial);
  MechanicalForcesOp op;
  op.ComputeDisplacements(rm, env, p, ExecMode::kSerial);
  EXPECT_FALSE(op.last_used_fast_path());
}

TEST(CpuFastPathTest, OversizedRadiusIsRejectedBeforeAnyPathRuns) {
  // A fixed box length below the interaction radius violates the 27-box
  // scheme both paths rely on; the grid rejects it at Update, so neither
  // force path can ever see an inconsistent grid (the fused kernel keeps a
  // defense-in-depth recheck of the same contract).
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 0.0, 50.0, 10.0);
  UniformGridEnvironment env(/*fixed_box_length=*/5.0);
  EXPECT_THROW(env.Update(rm, BaseParam(50.0), ExecMode::kSerial),
               std::invalid_argument);
}

}  // namespace
}  // namespace biosim
