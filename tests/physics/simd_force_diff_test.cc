// Differential battery for the vectorized force kernel
// (physics/simd_force_kernel.h): the SIMD and FP32 paths versus the
// scalar fused reference, across seeded populations chosen to exercise
// every branch of the sweep — clustered (dense boxes), uniform (sparse),
// torus wrap-around, coincident centers, single agents, empty worlds,
// both force laws. The contracts under test (docs/determinism.md):
//
//   * cpu_simd displacements stay within 1e-12 of the scalar fused path
//     per component (the only FP difference is the FMA-contracted d²);
//   * cpu_fp32 displacements stay within an absolute FP32 bound;
//   * every path — generic, fused, SIMD, FP32 — reports the *identical*
//     force-evaluation count (the hit decision is exact in every mode);
//   * results are bitwise independent of the dispatched vector width
//     (BIOSIM_SIMD=scalar == native, lane for lane);
//   * vector modes refuse non-uniform-grid environments and unknown
//     BIOSIM_SIMD values instead of silently falling back.
//
// Populations set adherence = 0 so the displacement gate (|F| must
// exceed adherence) cannot turn a sub-tolerance force difference into a
// whole displacement difference; the gate itself is covered by the
// parity rows, which run the full default-adherence pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/param.h"
#include "core/random.h"
#include "core/resource_manager.h"
#include "core/thread_pool.h"
#include "physics/force_law.h"
#include "physics/mechanical_forces_op.h"
#include "spatial/kd_tree.h"
#include "spatial/uniform_grid.h"

namespace biosim {
namespace {

struct PathResult {
  std::vector<Double3> displacements;
  size_t force_evals = 0;
  bool used_fast_path = false;
};

enum class Path { kGeneric, kFused, kSimd, kFp32 };

PathResult RunPath(const ResourceManager& rm, Param param, Path path,
                   ExecMode mode = ExecMode::kSerial,
                   ForceLaw law = ForceLaw::kCortex3D) {
  param.cpu_fast_path = path != Path::kGeneric;
  param.cpu_simd = path == Path::kSimd || path == Path::kFp32;
  param.precision =
      path == Path::kFp32 ? Precision::kFp32 : Precision::kFp64;
  UniformGridEnvironment env;
  env.Update(rm, param, mode);
  MechanicalForcesOp op(law);
  op.ComputeDisplacements(rm, env, param, mode);
  return {op.displacements(), op.last_force_evaluations(),
          op.last_used_fast_path()};
}

double MaxAbsComponentDiff(const std::vector<Double3>& a,
                           const std::vector<Double3>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i].x - b[i].x));
    max_diff = std::max(max_diff, std::fabs(a[i].y - b[i].y));
    max_diff = std::max(max_diff, std::fabs(a[i].z - b[i].z));
  }
  return max_diff;
}

constexpr double kSimdTol = 1e-12;  // one pass, FMA-contraction noise only
constexpr double kFp32Tol = 1e-3;   // one pass of narrowed pair math

void AddAgent(ResourceManager* rm, const Double3& pos, double diameter) {
  NewAgentSpec spec;
  spec.position = pos;
  spec.diameter = diameter;
  spec.adherence = 0.0;
  rm->AddAgent(std::move(spec));
}

/// Dense ball (bench-style): box occupancy from packed core to empty
/// corners, mixed diameters.
void FillClusteredBall(ResourceManager* rm, size_t n, uint64_t seed) {
  const double ball_radius = 8.0 * std::cbrt(static_cast<double>(n) / 16.0);
  const Double3 center{ball_radius + 10, ball_radius + 10, ball_radius + 10};
  Random rng(seed);
  rm->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double r = ball_radius * std::cbrt(rng.Uniform());
    AddAgent(rm, center + rng.UnitVector() * r, rng.Uniform(4.0, 8.0));
  }
}

void FillUniformCube(ResourceManager* rm, size_t n, double edge,
                     uint64_t seed) {
  Random rng(seed);
  rm->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    AddAgent(rm, rng.UniformInCube(0.0, edge), 8.0);
  }
}

class SimdForceDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The width override would silently change which kernel half these
    // tests exercise; pin it to the default and restore after.
    const char* prev = std::getenv("BIOSIM_SIMD");
    had_env_ = prev != nullptr;
    if (had_env_) {
      env_value_ = prev;
    }
    unsetenv("BIOSIM_SIMD");
  }
  void TearDown() override {
    if (had_env_) {
      setenv("BIOSIM_SIMD", env_value_.c_str(), 1);
    } else {
      unsetenv("BIOSIM_SIMD");
    }
  }

  /// The core differential: all four paths over one population; equal
  /// eval counts everywhere, displacement bounds per mode.
  void CheckAllPaths(const ResourceManager& rm, const Param& param,
                     ForceLaw law = ForceLaw::kCortex3D) {
    const PathResult generic =
        RunPath(rm, param, Path::kGeneric, ExecMode::kSerial, law);
    const PathResult fused =
        RunPath(rm, param, Path::kFused, ExecMode::kSerial, law);
    const PathResult simd =
        RunPath(rm, param, Path::kSimd, ExecMode::kSerial, law);
    const PathResult fp32 =
        RunPath(rm, param, Path::kFp32, ExecMode::kSerial, law);

    EXPECT_FALSE(generic.used_fast_path);
    EXPECT_TRUE(fused.used_fast_path);
    EXPECT_TRUE(simd.used_fast_path);
    EXPECT_TRUE(fp32.used_fast_path);

    EXPECT_EQ(generic.force_evals, fused.force_evals);
    EXPECT_EQ(fused.force_evals, simd.force_evals);
    EXPECT_EQ(fused.force_evals, fp32.force_evals);

    // fused == generic is the existing bitwise contract; the vector
    // modes owe their tolerance against that shared reference.
    EXPECT_EQ(MaxAbsComponentDiff(generic.displacements,
                                  fused.displacements),
              0.0);
    EXPECT_LE(MaxAbsComponentDiff(fused.displacements, simd.displacements),
              kSimdTol);
    EXPECT_LE(MaxAbsComponentDiff(fused.displacements, fp32.displacements),
              kFp32Tol);

    // Parallel execution of the vector modes is bitwise-identical to
    // their serial run (per-box accumulation; chunking changes nothing).
    const PathResult simd_mt =
        RunPath(rm, param, Path::kSimd, ExecMode::kParallel, law);
    EXPECT_EQ(simd.displacements, simd_mt.displacements);
    EXPECT_EQ(simd.force_evals, simd_mt.force_evals);
  }

 private:
  bool had_env_ = false;
  std::string env_value_;
};

TEST_F(SimdForceDiffTest, ClusteredBallAllPathsAgree) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    ResourceManager rm;
    FillClusteredBall(&rm, 2000, seed);
    Param param;
    param.bound_space = false;
    CheckAllPaths(rm, param);
  }
}

TEST_F(SimdForceDiffTest, UniformCubeAllPathsAgree) {
  ResourceManager rm;
  FillUniformCube(&rm, 1500, 120.0, 21);
  Param param;
  param.max_bound = 120.0;
  CheckAllPaths(rm, param);
}

TEST_F(SimdForceDiffTest, TorusWrapAllPathsAgree) {
  // Agents straddling every face, so minimum-image separations cross
  // the boundary in all three components.
  ResourceManager rm;
  Random rng(31);
  const double edge = 64.0;
  for (size_t i = 0; i < 800; ++i) {
    Double3 p = rng.UniformInCube(0.0, edge);
    // Pull a third of them onto the faces.
    if (i % 3 == 0) {
      const double face = rng.Uniform() < 0.5 ? 0.5 : edge - 0.5;
      if (i % 9 < 3) {
        p.x = face;
      } else if (i % 9 < 6) {
        p.y = face;
      } else {
        p.z = face;
      }
    }
    AddAgent(&rm, p, 8.0);
  }
  Param param;
  param.max_bound = edge;
  param.boundary_mode = BoundaryMode::kTorus;
  CheckAllPaths(rm, param);
}

TEST_F(SimdForceDiffTest, HertzLawAllPathsAgree) {
  ResourceManager rm;
  FillClusteredBall(&rm, 1000, 41);
  Param param;
  param.bound_space = false;
  CheckAllPaths(rm, param, ForceLaw::kHertz);
}

TEST_F(SimdForceDiffTest, DegeneratePopulations) {
  Param param;
  param.bound_space = false;

  {
    // Empty world: no evaluations, no crash, empty buffer.
    ResourceManager rm;
    const PathResult simd = RunPath(rm, param, Path::kSimd);
    EXPECT_EQ(simd.force_evals, 0u);
    EXPECT_TRUE(simd.displacements.empty());
  }
  {
    // Single agent: its self-slot must not count as an evaluation.
    ResourceManager rm;
    AddAgent(&rm, {50, 50, 50}, 8.0);
    for (Path p : {Path::kFused, Path::kSimd, Path::kFp32}) {
      const PathResult r = RunPath(rm, param, p);
      EXPECT_EQ(r.force_evals, 0u);
      ASSERT_EQ(r.displacements.size(), 1u);
      EXPECT_EQ(r.displacements[0].x, 0.0);
      EXPECT_EQ(r.displacements[0].y, 0.0);
      EXPECT_EQ(r.displacements[0].z, 0.0);
    }
  }
  {
    // Exactly coincident centers: direction undefined, force defined as
    // zero (physics/interaction_force.h) — but the pair still counts as
    // two evaluations, one per agent, in every mode.
    ResourceManager rm;
    AddAgent(&rm, {50, 50, 50}, 8.0);
    AddAgent(&rm, {50, 50, 50}, 8.0);
    for (Path p : {Path::kFused, Path::kSimd, Path::kFp32}) {
      const PathResult r = RunPath(rm, param, p);
      EXPECT_EQ(r.force_evals, 2u);
      EXPECT_EQ(MaxAbsComponentDiff(
                    r.displacements,
                    std::vector<Double3>{Double3{}, Double3{}}),
                0.0);
    }
  }
  {
    // Touching-but-not-overlapping and far-apart pairs: hit counting at
    // the radius boundary must agree across paths.
    ResourceManager rm;
    AddAgent(&rm, {20, 20, 20}, 8.0);
    AddAgent(&rm, {28, 20, 20}, 8.0);   // distance == interaction radius
    AddAgent(&rm, {100, 100, 100}, 8.0);  // isolated
    CheckAllPaths(rm, param);
  }
}

TEST_F(SimdForceDiffTest, ResultsAreBitwiseIndependentOfVectorWidth) {
  // The W-independence claim (physics/simd_force_kernel.h): the forced
  // W=1 kernel and the native-width kernel must produce identical bits,
  // not merely close ones — d² per candidate is a single correctly
  // rounded FMA chain regardless of grouping, and accumulation runs in
  // candidate order.
  ResourceManager rm;
  FillClusteredBall(&rm, 1200, 51);
  Param param;
  param.bound_space = false;

  setenv("BIOSIM_SIMD", "scalar", 1);
  const PathResult w1 = RunPath(rm, param, Path::kSimd);
  const PathResult w1_fp32 = RunPath(rm, param, Path::kFp32);
  setenv("BIOSIM_SIMD", "native", 1);
  const PathResult native = RunPath(rm, param, Path::kSimd);
  const PathResult native_fp32 = RunPath(rm, param, Path::kFp32);

  EXPECT_EQ(w1.displacements, native.displacements);
  EXPECT_EQ(w1.force_evals, native.force_evals);
  EXPECT_EQ(w1_fp32.displacements, native_fp32.displacements);
  EXPECT_EQ(w1_fp32.force_evals, native_fp32.force_evals);
}

TEST_F(SimdForceDiffTest, UnknownWidthOverrideThrows) {
  ResourceManager rm;
  AddAgent(&rm, {50, 50, 50}, 8.0);
  Param param;
  param.bound_space = false;
  setenv("BIOSIM_SIMD", "avx512", 1);
  EXPECT_THROW(RunPath(rm, param, Path::kSimd), std::invalid_argument);
  // The scalar paths never consult the override; a bad value must not
  // break them.
  EXPECT_NO_THROW(RunPath(rm, param, Path::kFused));
}

TEST_F(SimdForceDiffTest, VectorModesRequireTheUniformGrid) {
  ResourceManager rm;
  AddAgent(&rm, {50, 50, 50}, 8.0);
  Param param;
  param.cpu_fast_path = true;
  param.cpu_simd = true;
  KdTreeEnvironment kd;
  kd.Update(rm, param, ExecMode::kSerial);
  MechanicalForcesOp op;
  EXPECT_THROW(op.ComputeDisplacements(rm, kd, param, ExecMode::kSerial),
               std::invalid_argument);
  param.cpu_simd = false;
  param.precision = Precision::kFp32;
  EXPECT_THROW(op.ComputeDisplacements(rm, kd, param, ExecMode::kSerial),
               std::invalid_argument);
  // cpu_fast_path alone falls back to the generic path silently — that
  // contract predates the vector modes and must not change.
  param.precision = Precision::kFp64;
  EXPECT_NO_THROW(op.ComputeDisplacements(rm, kd, param, ExecMode::kSerial));
  EXPECT_FALSE(op.last_used_fast_path());
}

TEST_F(SimdForceDiffTest, ReusedOpOnShrinkingPopulationMatchesFreshOp) {
  // Stale-scratch regression: the kernels' gather buffers are
  // capacity-managed and deliberately uninitialized
  // (core/aligned_buffer.h), so a second pass over a *smaller*
  // population re-reads scratch that still holds the first population's
  // bytes beyond the new prefix. Any read past the freshly gathered
  // region shows up as a difference against a never-used op.
  Param param;
  param.bound_space = false;

  ResourceManager big;
  FillClusteredBall(&big, 3000, 61);
  ResourceManager small;
  FillClusteredBall(&small, 200, 62);

  for (Path path : {Path::kFused, Path::kSimd, Path::kFp32}) {
    UniformGridEnvironment env;
    Param p = param;
    p.cpu_fast_path = true;
    p.cpu_simd = path == Path::kSimd || path == Path::kFp32;
    p.precision = path == Path::kFp32 ? Precision::kFp32 : Precision::kFp64;

    MechanicalForcesOp reused;
    env.Update(big, p, ExecMode::kSerial);
    reused.ComputeDisplacements(big, env, p, ExecMode::kSerial);
    env.Update(small, p, ExecMode::kSerial);
    reused.ComputeDisplacements(small, env, p, ExecMode::kSerial);

    MechanicalForcesOp fresh;
    fresh.ComputeDisplacements(small, env, p, ExecMode::kSerial);

    EXPECT_EQ(reused.displacements(), fresh.displacements())
        << "path " << static_cast<int>(path);
    EXPECT_EQ(reused.last_force_evaluations(),
              fresh.last_force_evaluations());
  }
}

}  // namespace
}  // namespace biosim
