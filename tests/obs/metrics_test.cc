#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/profiler.h"
#include "obs/json.h"

namespace biosim::obs {
namespace {

TEST(MetricsRegistryTest, InstrumentsCreateOnFirstUseAndPersist) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("a/count");
  c->Add();
  c->Add(4);
  EXPECT_EQ(reg.GetCounter("a/count"), c);  // same instrument, same pointer
  EXPECT_EQ(c->value(), 5u);

  reg.GetGauge("a/gauge")->Set(2.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("a/gauge")->value(), 2.5);

  Histogram* h = reg.GetHistogram("a/hist");
  h->Add(1.0);
  h->Add(3.0);
  EXPECT_EQ(reg.GetHistogram("a/hist")->count(), 2u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, MergeAddsCounters) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("x")->Set(10);
  b.GetCounter("x")->Set(7);
  b.GetCounter("only_b")->Set(3);
  a.Merge(b);
  EXPECT_EQ(a.GetCounter("x")->value(), 17u);
  EXPECT_EQ(a.GetCounter("only_b")->value(), 3u);
}

TEST(MetricsRegistryTest, MergeOverwritesGaugesOnlyWhenSourceSetThem) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetGauge("g")->Set(1.0);
  b.GetGauge("g");  // created but never set
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.GetGauge("g")->value(), 1.0);  // untouched

  b.GetGauge("g")->Set(9.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.GetGauge("g")->value(), 9.0);  // overwritten
}

TEST(MetricsRegistryTest, MergeCombinesHistogramDistributions) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetHistogram("h")->Add(1.0);
  b.GetHistogram("h")->Add(100.0);
  a.Merge(b);
  EXPECT_EQ(a.GetHistogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.GetHistogram("h")->min(), 1.0);
  EXPECT_DOUBLE_EQ(a.GetHistogram("h")->max(), 100.0);
  EXPECT_DOUBLE_EQ(a.GetHistogram("h")->sum(), 101.0);
}

TEST(MetricsRegistryTest, ToJsonGroupsByKind) {
  MetricsRegistry reg;
  reg.GetCounter("steps")->Set(3);
  reg.GetGauge("ratio")->Set(0.5);
  reg.GetHistogram("lat")->Add(2.0);

  json::Value v = reg.ToJson();
  ASSERT_NE(v.Find("counters"), nullptr);
  ASSERT_NE(v.Find("gauges"), nullptr);
  ASSERT_NE(v.Find("histograms"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("counters")->Find("steps")->AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(v.Find("gauges")->Find("ratio")->AsDouble(), 0.5);
  const json::Value* h = v.Find("histograms")->Find("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->Find("count")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(h->Find("sum")->AsDouble(), 2.0);
  ASSERT_NE(h->Find("p50"), nullptr);
  ASSERT_NE(h->Find("p95"), nullptr);
}

TEST(MetricsRegistryTest, CollectOpProfileExportsHistogramsAndCalls) {
  OpProfile profile;
  profile.Add("forces", 2.0);
  profile.Add("forces", 4.0);
  MetricsRegistry reg;
  CollectOpProfile(profile, &reg);
  EXPECT_EQ(reg.GetCounter("op/forces/calls")->value(), 2u);
  EXPECT_DOUBLE_EQ(reg.GetHistogram("op/forces/ms")->sum(), 6.0);
}

TEST(MetricsRegistryTest, CollectRuntimeReportsThreads) {
  MetricsRegistry reg;
  CollectRuntime(&reg);
  EXPECT_GE(reg.GetGauge("runtime/hardware_threads")->value(), 1.0);
}

TEST(MetricsJsonlWriterTest, EmitsOneParseableObjectPerSnapshot) {
  std::string path = std::string(::testing::TempDir()) + "/metrics.jsonl";
  {
    MetricsJsonlWriter writer(path);
    ASSERT_TRUE(writer.ok());
    MetricsRegistry reg;
    reg.GetCounter("steps")->Set(1);
    ASSERT_TRUE(writer.WriteSnapshot(1, reg));
    reg.GetCounter("steps")->Set(2);
    ASSERT_TRUE(writer.WriteSnapshot(2, reg));
  }
  std::ifstream in(path);
  std::string line;
  uint64_t expect_step = 1;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    std::string error;
    auto v = json::Parse(line, &error);
    ASSERT_NE(v, nullptr) << error << " in: " << line;
    ASSERT_NE(v->Find("step"), nullptr);
    EXPECT_EQ(static_cast<uint64_t>(v->Find("step")->AsDouble()),
              expect_step++);
    EXPECT_NE(v->Find("counters"), nullptr);
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace biosim::obs
