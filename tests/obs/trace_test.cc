#include "obs/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"

namespace biosim::obs {
namespace {

// Collect all events of a given phase ("X" or "M") from a trace document.
std::vector<const json::Value*> EventsOfPhase(const json::Value& doc,
                                              const std::string& phase) {
  std::vector<const json::Value*> out;
  const json::Value* events = doc.Find("traceEvents");
  if (events == nullptr) {
    return out;
  }
  for (size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = (*events)[i];
    const json::Value* ph = e.Find("ph");
    if (ph != nullptr && ph->AsString() == phase) {
      out.push_back(&e);
    }
  }
  return out;
}

TEST(TraceSessionTest, DisabledByDefaultAndScopesAreNoOps) {
  ASSERT_EQ(TraceSession::current(), nullptr);
  { TRACE_SCOPE("ignored"); }  // must not crash without a session
}

TEST(TraceSessionTest, RecordsScopedSpansOnTheMainTrack) {
  TraceSession session;
  TraceSession::SetCurrent(&session);
  {
    TRACE_SCOPE("outer");
    { TRACE_SCOPE("inner"); }
  }
  TraceSession::SetCurrent(nullptr);

  EXPECT_EQ(session.event_count(), 2u);
  EXPECT_EQ(session.dropped(), 0u);

  std::string error;
  auto doc = json::Parse(session.ToChromeJson(), &error);
  ASSERT_NE(doc, nullptr) << error;

  // Metadata: host process plus a "main" thread label; no virtual process.
  bool saw_host = false;
  bool saw_main = false;
  for (const json::Value* m : EventsOfPhase(*doc, "M")) {
    const std::string what = m->Find("name")->AsString();
    const std::string label = m->Find("args")->Find("name")->AsString();
    if (what == "process_name") {
      EXPECT_EQ(label, "host");
      EXPECT_EQ(m->Find("pid")->AsDouble(), 1.0);
      saw_host = true;
    }
    if (what == "thread_name" && label == "main") {
      saw_main = true;
    }
  }
  EXPECT_TRUE(saw_host);
  EXPECT_TRUE(saw_main);

  // Spans: sorted by start, so "outer" (opened first) precedes "inner",
  // and "inner" nests inside it.
  auto spans = EventsOfPhase(*doc, "X");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0]->Find("name")->AsString(), "outer");
  EXPECT_EQ(spans[1]->Find("name")->AsString(), "inner");
  double outer_ts = spans[0]->Find("ts")->AsDouble();
  double outer_end = outer_ts + spans[0]->Find("dur")->AsDouble();
  double inner_ts = spans[1]->Find("ts")->AsDouble();
  double inner_end = inner_ts + spans[1]->Find("dur")->AsDouble();
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);

  EXPECT_EQ(doc->Find("otherData")->Find("dropped_events")->AsDouble(), 0.0);
}

TEST(TraceSessionTest, RingWrapsAndCountsDrops) {
  // Capacity is clamped to at least 16 events per thread.
  TraceSession session(/*events_per_thread=*/1);
  TraceSession::SetCurrent(&session);
  for (int i = 0; i < 20; ++i) {
    TRACE_SCOPE("span");
  }
  TraceSession::SetCurrent(nullptr);

  EXPECT_EQ(session.event_count(), 16u);
  EXPECT_EQ(session.dropped(), 4u);

  auto doc = json::Parse(session.ToChromeJson());
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->Find("otherData")->Find("dropped_events")->AsDouble(), 4.0);
  EXPECT_EQ(EventsOfPhase(*doc, "X").size(), 16u);
}

TEST(TraceSessionTest, VirtualSpansGetTheirOwnProcessAndCarryArgs) {
  TraceSession session;
  TraceSession::SetCurrent(&session);
  { TRACE_SCOPE("host work"); }
  TraceSession::SetCurrent(nullptr);

  session.AddVirtualSpan("gpu kernels", "ug_build", 10.0, 5.0,
                         {{"grid_dim", "128"}, {"simd_efficiency", "0.97"}});
  session.AddVirtualSpan("gpu kernels", "mech_interaction", 15.0, 20.0);

  std::string error;
  auto doc = json::Parse(session.ToChromeJson(), &error);
  ASSERT_NE(doc, nullptr) << error;

  bool saw_virtual_process = false;
  int gpu_tid = -1;
  for (const json::Value* m : EventsOfPhase(*doc, "M")) {
    const std::string what = m->Find("name")->AsString();
    const std::string label = m->Find("args")->Find("name")->AsString();
    if (what == "process_name" && label == "gpusim (virtual time)") {
      EXPECT_EQ(m->Find("pid")->AsDouble(), 2.0);
      saw_virtual_process = true;
    }
    if (what == "thread_name" && label == "gpu kernels") {
      gpu_tid = static_cast<int>(m->Find("tid")->AsDouble());
    }
  }
  EXPECT_TRUE(saw_virtual_process);
  // Virtual tids come after the host thread tids (one host thread here).
  EXPECT_EQ(gpu_tid, 1);

  const json::Value* ug_build = nullptr;
  for (const json::Value* e : EventsOfPhase(*doc, "X")) {
    if (e->Find("name")->AsString() == "ug_build") {
      ug_build = e;
    }
  }
  ASSERT_NE(ug_build, nullptr);
  EXPECT_EQ(ug_build->Find("pid")->AsDouble(), 2.0);
  EXPECT_EQ(ug_build->Find("tid")->AsDouble(), gpu_tid);
  EXPECT_DOUBLE_EQ(ug_build->Find("ts")->AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(ug_build->Find("dur")->AsDouble(), 5.0);
  const json::Value* args = ug_build->Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("grid_dim")->AsString(), "128");
  EXPECT_EQ(args->Find("simd_efficiency")->AsString(), "0.97");
}

TEST(TraceSessionTest, InternedNamesOutliveTheirSource) {
  TraceSession session;
  const char* name = nullptr;
  {
    std::string transient = "kernel_" + std::to_string(7);
    name = session.Intern(transient);
  }
  TraceSession::SetCurrent(&session);
  session.Record(name, 0, 100);
  TraceSession::SetCurrent(nullptr);

  auto doc = json::Parse(session.ToChromeJson());
  ASSERT_NE(doc, nullptr);
  auto spans = EventsOfPhase(*doc, "X");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0]->Find("name")->AsString(), "kernel_7");
}

TEST(TraceSessionTest, DestructorUninstallsItselfFromCurrent) {
  auto session = std::make_unique<TraceSession>();
  TraceSession::SetCurrent(session.get());
  EXPECT_EQ(TraceSession::current(), session.get());
  session.reset();
  EXPECT_EQ(TraceSession::current(), nullptr);
}

TEST(TraceSessionTest, BackToBackSessionsDoNotShareBuffers) {
  // A fresh session — possibly allocated where the previous one lived —
  // must re-register the thread instead of reusing a stale buffer.
  for (int round = 0; round < 4; ++round) {
    TraceSession session;
    TraceSession::SetCurrent(&session);
    { TRACE_SCOPE("round"); }
    TraceSession::SetCurrent(nullptr);
    EXPECT_EQ(session.event_count(), 1u) << "round " << round;
  }
}

}  // namespace
}  // namespace biosim::obs
