// Flight-recorder contract: ring semantics, JSON validity of normal and
// signal dumps, and the real crash path — a forked child raises SIGSEGV
// and the parent validates the postmortem document the handler wrote.
#include "obs/flight_recorder.h"

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fcntl.h>
#include <signal.h>

#include "gtest/gtest.h"
#include "obs/json.h"

namespace biosim::obs {
namespace {

FlightRecorder::StepRecord MakeRecord(uint64_t step) {
  FlightRecorder::StepRecord r;
  r.step = step;
  r.state_hash = 0xfeed000000000000ull | step;
  r.agents = 1000 + step;
  r.substances = 1;
  r.wall_ms = 2.25;
  r.op_ms = {{"mechanical forces", 1.5}, {"diffusion", 0.5}};
  return r;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

json::Value ReadJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  std::string body;
  if (f != nullptr) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      body.append(buf, n);
    }
    std::fclose(f);
  }
  std::string err;
  std::unique_ptr<json::Value> v = json::Parse(body, &err);
  EXPECT_NE(v, nullptr) << err << "\n" << body;
  return v != nullptr ? std::move(*v) : json::Value();
}

TEST(FlightRecorder, DumpIsValidJsonOldestToNewest) {
  FlightRecorder rec(8);
  for (uint64_t s = 1; s <= 5; ++s) {
    rec.RecordStep(MakeRecord(s));
  }
  EXPECT_EQ(rec.recorded_steps(), 5u);

  std::string path = TempPath("flight_manual.json");
  ASSERT_TRUE(rec.Dump(path, "manual"));
  json::Value doc = ReadJsonFile(path);
  ASSERT_NE(doc.Find("flight_recorder_version"), nullptr);
  EXPECT_EQ(doc.Find("flight_recorder_version")->AsDouble(), 1);
  EXPECT_EQ(doc.Find("reason")->AsString(), "manual");
  EXPECT_EQ(doc.Find("signal"), nullptr) << "non-signal dump has no signal";
  const json::Value* steps = doc.Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_EQ(steps->size(), 5u);
  for (size_t i = 0; i < steps->size(); ++i) {
    const json::Value& s = (*steps)[i];
    EXPECT_EQ(s.Find("step")->AsDouble(), static_cast<double>(i + 1));
    EXPECT_EQ(s.Find("agents")->AsDouble(), static_cast<double>(1001 + i));
    ASSERT_NE(s.Find("ops"), nullptr);
    EXPECT_NE(s.Find("ops")->Find("mechanical forces"), nullptr);
  }
}

TEST(FlightRecorder, RingWrapsKeepingTheNewest) {
  FlightRecorder rec(4);
  for (uint64_t s = 1; s <= 10; ++s) {
    rec.RecordStep(MakeRecord(s));
  }
  std::string path = TempPath("flight_wrap.json");
  ASSERT_TRUE(rec.Dump(path, "manual"));
  json::Value doc = ReadJsonFile(path);
  EXPECT_EQ(doc.Find("recorded_steps")->AsDouble(), 10);
  const json::Value* steps = doc.Find("steps");
  ASSERT_EQ(steps->size(), 4u);
  EXPECT_EQ((*steps)[0].Find("step")->AsDouble(), 7);
  EXPECT_EQ((*steps)[3].Find("step")->AsDouble(), 10);
}

TEST(FlightRecorder, CounterDeltaAppearsWhenRecorded) {
  FlightRecorder rec(2);
  FlightRecorder::StepRecord r = MakeRecord(1);
  r.has_counters = true;
  r.counters.cycles = 12345;
  r.counters.instructions = 67890;
  rec.RecordStep(r);
  std::string path = TempPath("flight_counters.json");
  ASSERT_TRUE(rec.Dump(path, "manual"));
  json::Value doc = ReadJsonFile(path);
  const json::Value* counters = (*doc.Find("steps"))[0].Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("cycles")->AsDouble(), 12345);
  EXPECT_EQ(counters->Find("instructions")->AsDouble(), 67890);
}

TEST(FlightRecorder, ContextObjectAttachesToNormalDumps) {
  FlightRecorder rec(2);
  rec.RecordStep(MakeRecord(1));
  json::Value ctx = json::Value::MakeObject();
  ctx.Set("expected_hash", "00000000deadbeef");
  ctx.Set("first_divergent_step", 1);
  std::string path = TempPath("flight_ctx.json");
  ASSERT_TRUE(rec.Dump(path, "determinism-divergence", &ctx));
  json::Value doc = ReadJsonFile(path);
  EXPECT_EQ(doc.Find("reason")->AsString(), "determinism-divergence");
  const json::Value* got = doc.Find("context");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->Find("expected_hash")->AsString(), "00000000deadbeef");
}

TEST(FlightRecorder, OverlongOpListTruncatesAtACompleteField) {
  // Enough ops to overflow the 1 KiB slot: the slot must stay valid JSON
  // (the whole ops block is dropped rather than torn mid-field).
  FlightRecorder rec(2);
  FlightRecorder::StepRecord r = MakeRecord(1);
  r.op_ms.clear();
  static char names[64][32];
  for (int i = 0; i < 64; ++i) {
    std::snprintf(names[i], sizeof(names[i]), "very long op name %02d", i);
    r.op_ms.emplace_back(names[i], 0.125 * i);
  }
  rec.RecordStep(r);
  std::string path = TempPath("flight_trunc.json");
  ASSERT_TRUE(rec.Dump(path, "manual"));
  json::Value doc = ReadJsonFile(path);  // Parse() fails on torn JSON
  ASSERT_EQ(doc.Find("steps")->size(), 1u);
  EXPECT_EQ((*doc.Find("steps"))[0].Find("step")->AsDouble(), 1);
}

TEST(FlightRecorder, SignalDumpFromForkedChild) {
  std::string path = TempPath("flight_sigsegv.json");
  std::remove(path.c_str());

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: record a few steps, install handlers, die by SIGSEGV. The
    // gtest machinery must not run in the child — raw _exit on any
    // unexpected path.
    FlightRecorder rec(8);
    for (uint64_t s = 1; s <= 3; ++s) {
      rec.RecordStep(MakeRecord(s));
    }
    if (!rec.InstallSignalHandlers(path)) {
      _exit(97);
    }
    raise(SIGSEGV);
    _exit(98);  // unreachable if the handler re-raises correctly
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child must die by the re-raised signal, status=" << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  json::Value doc = ReadJsonFile(path);
  EXPECT_EQ(doc.Find("reason")->AsString(), "signal");
  ASSERT_NE(doc.Find("signal"), nullptr);
  EXPECT_EQ(doc.Find("signal")->AsDouble(), SIGSEGV);
  ASSERT_EQ(doc.Find("steps")->size(), 3u);
  EXPECT_EQ((*doc.Find("steps"))[2].Find("step")->AsDouble(), 3);
}

TEST(FlightRecorder, UninstallRestoresDefaultDisposition) {
  std::string path = TempPath("flight_uninstall.json");
  std::remove(path.c_str());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FlightRecorder rec(4);
    rec.RecordStep(MakeRecord(1));
    if (!rec.InstallSignalHandlers(path)) {
      _exit(97);
    }
    rec.UninstallSignalHandlers();
    raise(SIGSEGV);
    _exit(98);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  // No dump: the handler was uninstalled before the crash.
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr) << "uninstalled recorder must not dump";
  if (f != nullptr) {
    std::fclose(f);
  }
}

}  // namespace
}  // namespace biosim::obs
