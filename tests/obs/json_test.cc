#include "obs/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace biosim::obs::json {
namespace {

TEST(JsonTest, ScalarsSerialize) {
  EXPECT_EQ(Value(nullptr).Dump(), "null");
  EXPECT_EQ(Value(true).Dump(), "true");
  EXPECT_EQ(Value(false).Dump(), "false");
  EXPECT_EQ(Value(42).Dump(), "42");
  EXPECT_EQ(Value(uint64_t{123456789012345}).Dump(), "123456789012345");
  EXPECT_EQ(Value("hello").Dump(), "\"hello\"");
  EXPECT_EQ(Value(1.5).Dump(), "1.5");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).Dump(), "null");
}

TEST(JsonTest, StringsEscape) {
  Value v(std::string("a\"b\\c\n\t\x01"));
  std::string out = v.Dump();
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndOverwrites) {
  Value obj = Value::MakeObject();
  obj.Set("z", 1);
  obj.Set("a", 2);
  obj.Set("z", 3);  // overwrite in place, not re-append
  EXPECT_EQ(obj.Dump(), "{\"z\": 3, \"a\": 2}");
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("a")->AsDouble(), 2.0);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonTest, NestedRoundTrip) {
  Value doc = Value::MakeObject();
  doc.Set("name", "run");
  doc.Set("ok", true);
  Value arr = Value::MakeArray();
  arr.Append(1);
  arr.Append("two");
  arr.Append(nullptr);
  doc.Set("items", std::move(arr));
  Value inner = Value::MakeObject();
  inner.Set("pi", 3.25);
  doc.Set("nested", std::move(inner));

  std::string text = doc.Dump(2);
  std::string error;
  auto parsed = Parse(text, &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->Dump(2), text);
  ASSERT_NE(parsed->Find("items"), nullptr);
  EXPECT_EQ(parsed->Find("items")->size(), 3u);
  EXPECT_EQ((*parsed->Find("items"))[1].AsString(), "two");
  EXPECT_DOUBLE_EQ(parsed->Find("nested")->Find("pi")->AsDouble(), 3.25);
}

TEST(JsonTest, ParseHandlesEscapesAndUnicode) {
  std::string error;
  auto v = Parse(R"("a\"b\\\nA")", &error);
  ASSERT_NE(v, nullptr) << error;
  EXPECT_EQ(v->AsString(), "a\"b\\\nA");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_EQ(Parse("{", &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(Parse("[1,]", &error), nullptr);
  EXPECT_EQ(Parse("tru", &error), nullptr);
  EXPECT_EQ(Parse("{} garbage", &error), nullptr);  // trailing junk
  EXPECT_EQ(Parse("\"unterminated", &error), nullptr);
}

TEST(JsonTest, IntegersRoundTripExactly) {
  // Counters are uint64 but serialized through double: exact up to 2^53.
  uint64_t big = (uint64_t{1} << 53) - 1;
  Value v(big);
  auto parsed = Parse(v.Dump());
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(parsed->AsDouble()), big);
}

}  // namespace
}  // namespace biosim::obs::json
