// Hardware-counter layer contract: graceful degradation, the null
// backend, session installation semantics, and sample arithmetic. Real
// counter values cannot be asserted portably (CI containers commonly
// forbid perf_event_open), so the tests pin the behavior that must hold
// on EVERY host: never crash, never lie about availability, zero-delta
// reads when unavailable, and well-formed JSON either way.
#include "obs/perf_counters.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace biosim::obs {
namespace {

TEST(CounterSample, SubtractClampsAndAccumulates) {
  CounterSample a;
  a.cycles = 100;
  a.instructions = 250;
  a.llc_misses = 5;
  a.task_clock_ns = 50;
  CounterSample b;
  b.cycles = 40;
  b.instructions = 50;
  b.llc_misses = 9;  // counter went backwards (multiplex glitch)
  CounterSample d = a - b;
  EXPECT_EQ(d.cycles, 60u);
  EXPECT_EQ(d.instructions, 200u);
  EXPECT_EQ(d.llc_misses, 0u) << "negative deltas must clamp, not wrap";

  CounterSample total;
  total.Accumulate(d);
  total.Accumulate(d);
  EXPECT_EQ(total.cycles, 120u);
  EXPECT_EQ(total.instructions, 400u);
}

TEST(CounterSample, DerivedRates) {
  CounterSample s;
  s.cycles = 1000;
  s.instructions = 2500;
  s.task_clock_ns = 500;
  s.time_enabled_ns = 100;
  s.time_running_ns = 50;
  EXPECT_DOUBLE_EQ(s.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(s.EffectiveGhz(), 2.0);
  EXPECT_DOUBLE_EQ(s.RunningFraction(), 0.5);

  CounterSample zero;
  EXPECT_DOUBLE_EQ(zero.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(zero.EffectiveGhz(), 0.0);
  EXPECT_DOUBLE_EQ(zero.RunningFraction(), 1.0) << "no data = no multiplex";
}

TEST(PerfSession, ForcedNullBackendNeverCrashes) {
  ::setenv("BIOSIM_PERF", "off", 1);
  {
    PerfSession session;
    EXPECT_FALSE(session.available());
    EXPECT_EQ(session.unavailable_reason(), "disabled by BIOSIM_PERF=off");

    // Reads are zero deltas, accumulation still works structurally.
    CounterSample s = session.Read();
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.instructions, 0u);

    PerfSession::SetCurrent(&session);
    {
      PERF_SCOPE("noop op");  // must not record: session unavailable
    }
    PerfSession::SetCurrent(nullptr);
    EXPECT_TRUE(session.entries().empty());

    json::Value v = session.ToJson();
    const json::Value* available = v.Find("available");
    ASSERT_NE(available, nullptr);
    EXPECT_FALSE(available->AsBool());
    const json::Value* reason = v.Find("reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_FALSE(reason->AsString().empty());
  }
  ::unsetenv("BIOSIM_PERF");
}

TEST(PerfSession, WhateverTheHostGivesIsReportedHonestly) {
  // On a counter-capable host this exercises the real backend; on a
  // restricted host (containers, perf_event_paranoid > 2, no PMU) it
  // exercises degradation. Both must produce a consistent session.
  PerfSession session;
  if (session.available()) {
    EXPECT_TRUE(session.unavailable_reason().empty());
    PerfSession::SetCurrent(&session);
    {
      PERF_SCOPE("spin");
      volatile uint64_t sink = 0;
      for (int i = 0; i < 100000; ++i) {
        sink += static_cast<uint64_t>(i);
      }
    }
    PerfSession::SetCurrent(nullptr);
    ASSERT_EQ(session.entries().size(), 1u);
    const PerfSession::OpEntry* e = session.Find("spin");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->samples, 1u);
    EXPECT_GT(e->total.cycles, 0u);
    EXPECT_GT(e->total.instructions, 0u);
    json::Value v = session.ToJson();
    ASSERT_NE(v.Find("ops"), nullptr);
    ASSERT_NE(v.Find("ops")->Find("spin"), nullptr);
  } else {
    EXPECT_FALSE(session.unavailable_reason().empty())
        << "unavailable sessions must say why";
    CounterSample s = session.Read();
    EXPECT_EQ(s.cycles, 0u);
  }
}

TEST(PerfScope, NoSessionIsAFastNoOp) {
  ASSERT_EQ(PerfSession::current(), nullptr);
  // The contract TRACE_SCOPE also honors: no session, no effect. This
  // must not touch any syscall (asserted by not crashing under the
  // restrictive default container policy).
  for (int i = 0; i < 1000; ++i) {
    PERF_SCOPE("unobserved");
  }
}

TEST(PerfSession, AccumulateGroupsByName) {
  PerfSession session;  // availability irrelevant: Accumulate is direct
  CounterSample d;
  d.cycles = 10;
  d.instructions = 20;
  session.Accumulate("a", d);
  session.Accumulate("b", d);
  session.Accumulate("a", d);
  ASSERT_EQ(session.entries().size(), 2u);
  EXPECT_EQ(session.entries()[0].name, "a");
  EXPECT_EQ(session.entries()[0].samples, 2u);
  EXPECT_EQ(session.entries()[0].total.cycles, 20u);
  EXPECT_EQ(session.entries()[1].name, "b");
  EXPECT_EQ(session.entries()[1].samples, 1u);
}

}  // namespace
}  // namespace biosim::obs
