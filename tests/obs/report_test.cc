// Report version contract: v2 skeleton shape, the v1/v2 reader policy,
// and the environment thread-capture fix (hardware vs worker threads).
#include "obs/report.h"

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "obs/json.h"

namespace biosim::obs {
namespace {

// A frozen v1 document as produced before the bump (BENCH_cpu.json shape):
// hardware_threads then meant "OpenMP workers" and worker_threads did not
// exist. Readers must still accept it.
constexpr const char* kV1Fixture = R"({
  "report_version": 1,
  "tool": "bench_micro_force",
  "environment": {
    "compiler": "gcc 12.2.0",
    "assertions": false,
    "openmp": true,
    "hardware_threads": 1,
    "cxx_standard": 202002
  },
  "bench": "bench_micro_force"
})";

TEST(Report, VersionConstantsAndPolicy) {
  EXPECT_EQ(kReportVersion, 2);
  EXPECT_EQ(kMinSupportedReportVersion, 1);
  EXPECT_TRUE(IsSupportedReportVersion(1));
  EXPECT_TRUE(IsSupportedReportVersion(2));
  EXPECT_FALSE(IsSupportedReportVersion(0));
  EXPECT_FALSE(IsSupportedReportVersion(3));
}

TEST(Report, V1FixtureIsStillReadable) {
  std::string err;
  std::unique_ptr<json::Value> doc = json::Parse(kV1Fixture, &err);
  ASSERT_NE(doc, nullptr) << err;
  int version = ReportVersionOf(*doc);
  EXPECT_EQ(version, 1);
  EXPECT_TRUE(IsSupportedReportVersion(version));
  // v1 lacks worker_threads — a reader must tolerate that.
  const json::Value* env = doc->Find("environment");
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env->Find("worker_threads"), nullptr);
  EXPECT_NE(env->Find("hardware_threads"), nullptr);
}

TEST(Report, VersionOfHandlesMissingAndMalformed) {
  json::Value no_version = json::Value::MakeObject();
  EXPECT_EQ(ReportVersionOf(no_version), -1);
  no_version.Set("report_version", "two");
  EXPECT_EQ(ReportVersionOf(no_version), -1);
}

TEST(Report, V2SkeletonRoundTrip) {
  json::Value report = MakeRunReport("unit_test", 3);
  report.Set("results", [] {
    json::Value r = json::Value::MakeObject();
    r.Set("answer", 42);
    return r;
  }());

  std::string dumped = report.Dump(2);
  std::string err;
  std::unique_ptr<json::Value> parsed = json::Parse(dumped, &err);
  ASSERT_NE(parsed, nullptr) << err;

  EXPECT_EQ(ReportVersionOf(*parsed), kReportVersion);
  EXPECT_EQ(parsed->Find("tool")->AsString(), "unit_test");
  const json::Value* env = parsed->Find("environment");
  ASSERT_NE(env, nullptr);
  // The v2 thread-capture contract: both fields present, worker_threads
  // echoes what the producer passed, hardware_threads is machine-wide
  // (>= 1 everywhere).
  ASSERT_NE(env->Find("hardware_threads"), nullptr);
  ASSERT_NE(env->Find("worker_threads"), nullptr);
  EXPECT_GE(env->Find("hardware_threads")->AsDouble(), 1.0);
  EXPECT_EQ(env->Find("worker_threads")->AsDouble(), 3.0);
  EXPECT_EQ(parsed->Find("results")->Find("answer")->AsDouble(), 42.0);
}

TEST(Report, DefaultWorkerThreadsFallsBackToRuntime) {
  json::Value env = EnvironmentJson();
  ASSERT_NE(env.Find("worker_threads"), nullptr);
  EXPECT_GE(env.Find("worker_threads")->AsDouble(), 1.0);
}

}  // namespace
}  // namespace biosim::obs
