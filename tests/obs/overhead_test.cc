// Guards the tracing zero-overhead contract: with no session installed,
// TRACE_SCOPE must cost one relaxed atomic load and a branch — no clock
// read, no allocation. The precise cost is measured by
// bench/micro/bench_micro_trace.cc; this test only asserts the disabled
// path stays within a generous multiple of an uninstrumented loop so CI
// catches an accidental mutex or clock call on the fast path.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "obs/trace.h"

namespace biosim::obs {
namespace {

// Cheap arithmetic the optimizer cannot remove.
uint64_t Work(uint64_t iterations) {
  uint64_t acc = 1;
  for (uint64_t i = 0; i < iterations; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

uint64_t TracedWork(uint64_t iterations) {
  uint64_t acc = 1;
  for (uint64_t i = 0; i < iterations; ++i) {
    TRACE_SCOPE("hot");
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

double BestOfNs(uint64_t (*fn)(uint64_t), uint64_t iterations, int repeats,
                uint64_t* sink) {
  double best = 1e30;
  for (int r = 0; r < repeats; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    *sink += fn(iterations);
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()));
  }
  return best;
}

TEST(TraceOverheadTest, DisabledScopesStayNearBaseline) {
  ASSERT_EQ(TraceSession::current(), nullptr);

  constexpr uint64_t kIters = 2'000'000;
  constexpr int kRepeats = 5;
  uint64_t sink = 0;

  // Warm both paths once so code and branch predictors are resident.
  sink += Work(kIters / 10) + TracedWork(kIters / 10);

  double baseline = BestOfNs(&Work, kIters, kRepeats, &sink);
  double traced = BestOfNs(&TracedWork, kIters, kRepeats, &sink);
  ASSERT_NE(sink, 0u);  // keep the work observable

  // Disabled TRACE_SCOPE measured at ~0 extra ns/iter; 3x leaves ample
  // headroom for noisy CI machines while still catching a clock read
  // (~20 ns) or a mutex on the fast path.
  EXPECT_LT(traced, baseline * 3.0 + 1e6)
      << "disabled tracing cost " << traced << " ns vs baseline " << baseline
      << " ns over " << kIters << " iterations";
}

}  // namespace
}  // namespace biosim::obs
