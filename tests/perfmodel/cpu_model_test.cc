#include "perfmodel/cpu_model.h"

#include <gtest/gtest.h>

namespace biosim::perfmodel {
namespace {

TEST(CpuSpecTest, TableOneTopology) {
  CpuSpec a = CpuSpec::XeonE5_2640v4_x2();
  EXPECT_EQ(a.total_cores(), 20);    // Table I: 20 cores
  EXPECT_EQ(a.total_threads(), 40);  // Table I: 40 threads
  CpuSpec b = CpuSpec::XeonGold6130_x2();
  EXPECT_EQ(b.total_cores(), 32);    // Table I: 32 cores
  EXPECT_EQ(b.total_threads(), 64);  // Table I: 64 threads
}

TEST(CpuModelTest, OneThreadIsIdentity) {
  CpuScalingModel m(CpuSpec::XeonGold6130_x2(),
                    WorkloadCharacter::KdTreeMechanics());
  EXPECT_DOUBLE_EQ(m.ProjectMs(1000.0, 1), 1000.0);
}

TEST(CpuModelTest, MoreThreadsNeverSlowerUpToSocketLimits) {
  CpuScalingModel m(CpuSpec::XeonGold6130_x2(),
                    WorkloadCharacter::KdTreeMechanics());
  double prev = m.ProjectMs(1000.0, 1);
  for (int t : {2, 4, 8, 16, 32}) {
    double cur = m.ProjectMs(1000.0, t, /*single_socket=*/false);
    EXPECT_LT(cur, prev) << t << " threads";
    prev = cur;
  }
}

TEST(CpuModelTest, SpeedupBoundedByAmdahl) {
  WorkloadCharacter w = WorkloadCharacter::KdTreeMechanics();  // 85% parallel
  CpuScalingModel m(CpuSpec::XeonGold6130_x2(), w);
  // Even infinite threads cannot beat 1/(1-p) = 6.67x.
  EXPECT_LT(m.ProjectSpeedup(64), 1.0 / (1.0 - w.parallel_fraction));
}

TEST(CpuModelTest, ThreadCountsAboveHardwareSaturate) {
  CpuScalingModel m(CpuSpec::XeonE5_2640v4_x2(),
                    WorkloadCharacter::UniformGridMechanics());
  EXPECT_DOUBLE_EQ(m.ProjectMs(100.0, 40), m.ProjectMs(100.0, 4000));
}

TEST(CpuModelTest, SmtYieldsLessThanPhysicalCores) {
  CpuScalingModel m(CpuSpec::XeonGold6130_x2(),
                    WorkloadCharacter::UniformGridMechanics());
  double t32 = m.ProjectMs(1000.0, 32);  // all physical cores
  double t64 = m.ProjectMs(1000.0, 64);  // + SMT siblings
  double gain = t32 / t64;
  EXPECT_GT(gain, 1.0);
  EXPECT_LT(gain, 1.5);  // far from 2x
}

TEST(CpuModelTest, NumaPenaltyAppliesOnlyWhenSpanningSockets) {
  // The paper pins with taskset precisely because crossing sockets hurts
  // memory-bound loops: the same thread count is slower when the workload
  // carries a NUMA penalty than when it does not.
  WorkloadCharacter with_numa = WorkloadCharacter::KdTreeMechanics();
  WorkloadCharacter no_numa = with_numa;
  no_numa.numa_penalty = 1.0;
  CpuSpec spec = CpuSpec::XeonE5_2640v4_x2();
  CpuScalingModel mw(spec, with_numa), mo(spec, no_numa);
  // 40 threads span both sockets: penalty visible.
  EXPECT_GT(mw.ProjectMs(1000.0, 40), mo.ProjectMs(1000.0, 40));
  // 16 threads fit within one socket's hardware threads: no penalty.
  EXPECT_DOUBLE_EQ(mw.ProjectMs(1000.0, 16), mo.ProjectMs(1000.0, 16));
  // Pinning suppresses the penalty at any thread count.
  EXPECT_DOUBLE_EQ(mw.ProjectMs(1000.0, 40, /*single_socket=*/true),
                   mo.ProjectMs(1000.0, 40, /*single_socket=*/true));
}

TEST(CpuModelTest, BenchmarkBScalingShape) {
  // Fig. 10/11's CPU-side message: on system B, 64 threads buy only ~2x
  // over 4 threads for the kd-tree baseline.
  CpuScalingModel m(CpuSpec::XeonGold6130_x2(),
                    WorkloadCharacter::KdTreeMechanics());
  double t4 = m.ProjectMs(1000.0, 4);
  double t64 = m.ProjectMs(1000.0, 64);
  double gain = t4 / t64;
  EXPECT_GT(gain, 1.6);
  EXPECT_LT(gain, 3.0);
}

TEST(CpuModelTest, UniformGridScalesBetterThanKdTree) {
  // The mechanism behind the paper's mt-UG = 4.3x mt-kd result: the UG
  // workload has a much smaller serial fraction.
  CpuSpec spec = CpuSpec::XeonE5_2640v4_x2();
  CpuScalingModel kd(spec, WorkloadCharacter::KdTreeMechanics());
  CpuScalingModel ug(spec, WorkloadCharacter::UniformGridMechanics());
  double kd20 = kd.ProjectSpeedup(20, /*single_socket=*/false);
  double ug20 = ug.ProjectSpeedup(20, /*single_socket=*/false);
  EXPECT_GT(ug20 / kd20, 1.5);
}

TEST(CpuModelTest, BandwidthCeilingCapsMemoryBoundScaling) {
  WorkloadCharacter w = WorkloadCharacter::UniformGridMechanics();
  w.single_thread_bw_gbps = 30.0;  // 1 socket saturates at ~4 threads
  CpuScalingModel m(CpuSpec::XeonGold6130_x2(), w);
  double ceiling = m.BandwidthCeiling(/*single_socket=*/true);
  EXPECT_NEAR(ceiling, 128.0 / 30.0, 1e-9);
  // Memory part stops improving beyond the ceiling.
  double t8 = m.ProjectMs(1000.0, 8, true);
  double t16 = m.ProjectMs(1000.0, 16, true);
  // Only the compute share still scales: limited improvement.
  EXPECT_LT(t8 / t16, 1.6);
}

TEST(CpuModelTest, EffectiveParallelismTopology) {
  CpuScalingModel m(CpuSpec::XeonGold6130_x2(),
                    WorkloadCharacter::KdTreeMechanics());
  EXPECT_DOUBLE_EQ(m.EffectiveParallelism(16, false), 16.0);
  EXPECT_DOUBLE_EQ(m.EffectiveParallelism(32, false), 32.0);
  EXPECT_DOUBLE_EQ(m.EffectiveParallelism(64, false), 32.0 + 0.25 * 32.0);
  // Pinned to one socket: 16 cores + 16 SMT.
  EXPECT_DOUBLE_EQ(m.EffectiveParallelism(64, true), 16.0 + 0.25 * 16.0);
}

}  // namespace
}  // namespace biosim::perfmodel
