#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "../test_util.h"
#include "core/behaviors/grow_divide.h"
#include "core/simulation.h"

namespace biosim {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointTest, RoundTripPreservesEveryAttribute) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 137, 0.0, 90.0, 8.5, /*seed=*/4);
  rm.adherences()[3] = 0.77;
  rm.tractor_forces()[5] = {1.0, -2.0, 3.0};

  std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(rm, path));

  ResourceManager restored;
  ASSERT_TRUE(LoadCheckpoint(&restored, path));
  ASSERT_EQ(restored.size(), rm.size());
  EXPECT_EQ(restored.positions(), rm.positions());
  EXPECT_EQ(restored.diameters(), rm.diameters());
  EXPECT_EQ(restored.volumes(), rm.volumes());
  EXPECT_EQ(restored.adherences(), rm.adherences());
  EXPECT_EQ(restored.densities(), rm.densities());
  EXPECT_EQ(restored.tractor_forces(), rm.tractor_forces());
  EXPECT_EQ(restored.uids(), rm.uids());
  EXPECT_EQ(restored.next_uid(), rm.next_uid());
  std::remove(path.c_str());
}

TEST(CheckpointTest, UidAssignmentContinuesAfterRestore) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 10, 0.0, 50.0, 10.0);
  std::string path = TempPath("uids.ckpt");
  ASSERT_TRUE(SaveCheckpoint(rm, path));

  ResourceManager restored;
  ASSERT_TRUE(LoadCheckpoint(&restored, path));
  AgentIndex i = restored.AddAgent(NewAgentSpec{});
  EXPECT_EQ(restored.uids()[i], 10u);  // continues, no collision
  std::remove(path.c_str());
}

TEST(CheckpointTest, EmptyPopulationRoundTrips) {
  ResourceManager rm;
  std::string path = TempPath("empty.ckpt");
  ASSERT_TRUE(SaveCheckpoint(rm, path));
  ResourceManager restored;
  testutil::FillRandomCells(&restored, 5, 0.0, 10.0, 5.0);  // pre-populated
  ASSERT_TRUE(LoadCheckpoint(&restored, path));
  EXPECT_EQ(restored.size(), 0u);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageAndLeavesTargetUntouched) {
  std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);

  ResourceManager rm;
  testutil::FillRandomCells(&rm, 7, 0.0, 10.0, 5.0);
  EXPECT_FALSE(LoadCheckpoint(&rm, path));
  EXPECT_EQ(rm.size(), 7u);  // unchanged
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsTruncatedFile) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 0.0, 50.0, 10.0);
  std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(SaveCheckpoint(rm, path));

  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  ResourceManager target;
  EXPECT_FALSE(LoadCheckpoint(&target, path));
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  ResourceManager rm;
  EXPECT_FALSE(LoadCheckpoint(&rm, "/nonexistent_dir_xyz/x.ckpt"));
  EXPECT_FALSE(SaveCheckpoint(rm, "/nonexistent_dir_xyz/x.ckpt"));
}

TEST(CheckpointTest, FullDeviceSaveReportsFailure) {
  // Regression: fwrite results were unchecked, so a full disk produced a
  // silently truncated checkpoint that only failed at load time. /dev/full
  // returns ENOSPC on write (possibly only at flush time, which is why
  // SaveCheckpoint must check the flush too).
  std::FILE* probe = std::fopen("/dev/full", "wb");
  if (probe == nullptr) {
    GTEST_SKIP() << "/dev/full not available";
  }
  std::fclose(probe);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 64, 0.0, 50.0, 10.0);
  EXPECT_FALSE(SaveCheckpoint(rm, "/dev/full"));
}

TEST(CheckpointTest, RejectsTruncationAtAnyPoint) {
  // A checkpoint cut off anywhere — inside the magic, a length word, or an
  // array — must fail the load and leave the target untouched.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 20, 0.0, 50.0, 10.0);
  std::string path = TempPath("trunc_points.ckpt");
  ASSERT_TRUE(SaveCheckpoint(rm, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);

  for (long cut : {0L, 4L, 8L, 15L, 16L, 24L, size / 4, size / 2, size - 1}) {
    ASSERT_TRUE(SaveCheckpoint(rm, path));
    ASSERT_EQ(truncate(path.c_str(), cut), 0);
    ResourceManager target;
    testutil::FillRandomCells(&target, 3, 0.0, 10.0, 5.0);
    EXPECT_FALSE(LoadCheckpoint(&target, path)) << "cut at " << cut;
    EXPECT_EQ(target.size(), 3u) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, ResumedSimulationEvolvesIdentically) {
  // Run 6 steps; checkpoint at 3; resume and compare to the uninterrupted
  // run. Behaviors are re-attached after restore (they are not serialized).
  auto make = [](ResourceManager* seed) {
    Param p;
    p.random_seed = 9;
    Simulation sim(p);
    if (seed != nullptr) {
      // Positions only; mechanics-only model (no behaviors).
      for (size_t i = 0; i < seed->size(); ++i) {
        NewAgentSpec s;
        s.position = seed->positions()[i];
        s.diameter = seed->diameters()[i];
        s.adherence = 0.001;
        sim.rm().AddAgent(std::move(s));
      }
    }
    return sim;
  };

  ResourceManager init;
  testutil::FillRandomCells(&init, 200, 200.0, 400.0, 10.0, /*seed=*/31);
  for (auto& a : init.adherences()) {
    a = 0.001;
  }

  // Uninterrupted: 6 steps.
  Simulation full = make(&init);
  full.Simulate(6);

  // Interrupted: 3 steps, save, load, 3 more.
  Simulation first = make(&init);
  first.Simulate(3);
  std::string path = TempPath("resume.ckpt");
  ASSERT_TRUE(SaveCheckpoint(first.rm(), path));

  Param p;
  p.random_seed = 9;
  Simulation resumed(p);
  ASSERT_TRUE(LoadCheckpoint(&resumed.rm(), path));
  resumed.Simulate(3);

  ASSERT_EQ(resumed.rm().size(), full.rm().size());
  for (size_t i = 0; i < full.rm().size(); ++i) {
    ASSERT_NEAR(resumed.rm().positions()[i].x, full.rm().positions()[i].x,
                1e-12);
    ASSERT_NEAR(resumed.rm().positions()[i].y, full.rm().positions()[i].y,
                1e-12);
    ASSERT_NEAR(resumed.rm().positions()[i].z, full.rm().positions()[i].z,
                1e-12);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, PopulationWithBehaviorsResumesIdentically) {
  // A proliferating (GrowDivide) population checkpointed mid-run must
  // evolve identically after restore: the behavior-derived state —
  // volumes/diameters mid-growth and the uid counter feeding the per-agent
  // division RNG streams — all live in the serialized arrays. Behaviors
  // themselves are code, not data (checkpoint.h): the resuming side
  // re-attaches them and restores the simulation clock, which the division
  // RNG also mixes.
  constexpr double kThreshold = 16.0;
  constexpr double kGrowthRate = 100000.0;  // divide within a few steps
  auto make = []() {
    Param p;
    p.random_seed = 17;
    p.max_bound = 400.0;
    Simulation sim(p);
    return sim;
  };
  auto attach_all = [&](Simulation* sim) {
    for (size_t i = 0; i < sim->rm().size(); ++i) {
      sim->rm().AttachBehavior(
          i, std::make_unique<GrowDivide>(kThreshold, kGrowthRate));
    }
  };

  // Uninterrupted: 6 steps of growth + division.
  Simulation full = make();
  full.Create3DCellGrid(4, 15.0, 8.0, kThreshold, kGrowthRate);
  const size_t initial = full.rm().size();
  full.Simulate(6);
  ASSERT_GT(full.rm().size(), initial) << "workload must actually divide";

  // Interrupted at step 3: save, load into a fresh simulation, re-attach
  // the behaviors, restore the clock, run the remaining 3 steps.
  Simulation first = make();
  first.Create3DCellGrid(4, 15.0, 8.0, kThreshold, kGrowthRate);
  first.Simulate(3);
  std::string path = TempPath("behaviors.ckpt");
  ASSERT_TRUE(SaveCheckpoint(first.rm(), path));
  const size_t at_checkpoint = first.rm().size();

  Simulation resumed = make();
  ASSERT_TRUE(LoadCheckpoint(&resumed.rm(), path));
  ASSERT_EQ(resumed.rm().size(), at_checkpoint);
  EXPECT_EQ(resumed.rm().diameters(), first.rm().diameters());
  EXPECT_EQ(resumed.rm().volumes(), first.rm().volumes());
  attach_all(&resumed);
  resumed.SetStep(first.step());
  resumed.Simulate(3);

  // Divisions continue across the restore (behavior state survived) and the
  // two runs are interchangeable agent by agent.
  EXPECT_GT(resumed.rm().size(), at_checkpoint)
      << "restored population stopped proliferating";
  ASSERT_EQ(resumed.rm().size(), full.rm().size());
  for (size_t i = 0; i < full.rm().size(); ++i) {
    ASSERT_EQ(resumed.rm().uids()[i], full.rm().uids()[i]);
    ASSERT_NEAR(resumed.rm().positions()[i].x, full.rm().positions()[i].x,
                1e-12);
    ASSERT_NEAR(resumed.rm().positions()[i].y, full.rm().positions()[i].y,
                1e-12);
    ASSERT_NEAR(resumed.rm().positions()[i].z, full.rm().positions()[i].z,
                1e-12);
    ASSERT_NEAR(resumed.rm().diameters()[i], full.rm().diameters()[i], 1e-12);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace biosim
