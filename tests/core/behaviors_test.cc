// Behavior-framework tests: the stock behaviors' contracts and their
// interaction with the simulation loop.
#include <gtest/gtest.h>

#include <vector>

#include "core/behaviors/apoptosis.h"
#include "core/behaviors/chemotaxis.h"
#include "core/behaviors/grow_divide.h"
#include "core/behaviors/random_walk.h"
#include "core/behaviors/secretion.h"
#include "core/simulation.h"

namespace biosim {
namespace {

TEST(RandomWalkTest, SetsUnitScaledTractorForce) {
  Param param;
  ResourceManager rm;
  SimContext ctx(param, rm, /*step=*/3);
  NewAgentSpec s;
  s.position = {50, 50, 50};
  AgentIndex i = rm.AddAgent(std::move(s));
  Cell cell(rm, i);
  RandomWalk walk(7.5);
  walk.Run(cell, ctx);
  EXPECT_NEAR(cell.tractor_force().Norm(), 7.5, 1e-12);
}

TEST(RandomWalkTest, DirectionChangesAcrossSteps) {
  Param param;
  ResourceManager rm;
  NewAgentSpec s;
  AgentIndex i = rm.AddAgent(std::move(s));
  Cell cell(rm, i);
  RandomWalk walk(1.0);
  SimContext ctx0(param, rm, 0);
  walk.Run(cell, ctx0);
  Double3 f0 = cell.tractor_force();
  SimContext ctx1(param, rm, 1);
  walk.Run(cell, ctx1);
  EXPECT_NE(cell.tractor_force(), f0);
}

TEST(RandomWalkTest, ReproducibleForSameUidAndStep) {
  Param param;
  ResourceManager rm1, rm2;
  rm1.AddAgent(NewAgentSpec{});
  rm2.AddAgent(NewAgentSpec{});
  Cell c1(rm1, 0), c2(rm2, 0);
  RandomWalk walk(1.0);
  SimContext a(param, rm1, 5), b(param, rm2, 5);
  walk.Run(c1, a);
  walk.Run(c2, b);
  EXPECT_EQ(c1.tractor_force(), c2.tractor_force());
}

TEST(RandomWalkTest, DiffusesCellsInSimulation) {
  Param p;
  p.default_adherence = 0.0;
  p.max_bound = 2000.0;
  Simulation sim(p);
  for (int k = 0; k < 20; ++k) {
    AgentIndex i = sim.AddCell({1000, 1000, 1000}, 10.0);
    sim.rm().AttachBehavior(i, std::make_unique<RandomWalk>(100.0));
  }
  sim.Simulate(50);
  double mean_sq = 0.0;
  for (const auto& pos : sim.rm().positions()) {
    mean_sq += SquaredDistance(pos, {1000, 1000, 1000});
  }
  mean_sq /= static_cast<double>(sim.rm().size());
  EXPECT_GT(mean_sq, 1.0);  // cells actually spread out
}

TEST(ApoptosisTest, ZeroRateNeverKills) {
  Param p;
  Simulation sim(p);
  for (int k = 0; k < 50; ++k) {
    AgentIndex i = sim.AddCell({100.0 + k, 100, 100}, 8.0);
    sim.rm().AttachBehavior(i, std::make_unique<Apoptosis>(0.0));
  }
  sim.Simulate(20);
  EXPECT_EQ(sim.rm().size(), 50u);
}

TEST(ApoptosisTest, HugeRateKillsEveryoneInOneStep) {
  Param p;
  Simulation sim(p);
  for (int k = 0; k < 50; ++k) {
    AgentIndex i = sim.AddCell({100.0 + k, 100, 100}, 8.0);
    // rate*dt >= 1 -> certain death.
    sim.rm().AttachBehavior(
        i, std::make_unique<Apoptosis>(2.0 / p.simulation_time_step));
  }
  sim.Simulate(1);
  EXPECT_EQ(sim.rm().size(), 0u);
}

TEST(ApoptosisTest, PopulationDecaysAtRoughlyTheHazardRate) {
  Param p;
  p.random_seed = 123;
  Simulation sim(p);
  const size_t n0 = 2000;
  for (size_t k = 0; k < n0; ++k) {
    AgentIndex i = sim.AddCell(
        {10.0 + static_cast<double>(k % 50) * 19.0,
         10.0 + static_cast<double>(k / 50) * 19.0, 100.0},
        8.0);
    sim.rm().AttachBehavior(i, std::make_unique<Apoptosis>(5.0));
  }
  // 100 steps of dt=0.01 at hazard 5/h: survival = exp(-5) * adjustments for
  // the discrete scheme; expected ~ (1 - 0.05)^100 ~ 0.0059 * n0 ~ 12.
  sim.Simulate(100);
  double expected = static_cast<double>(n0) * std::pow(1.0 - 0.05, 100);
  EXPECT_GT(sim.rm().size(), 0u);
  EXPECT_LT(sim.rm().size(), 5 * static_cast<size_t>(expected) + 20);
}

TEST(BehaviorCloneTest, ClonesPreserveParameters) {
  GrowDivide gd(17.0, 1234.0);
  auto gd2 = gd.Clone();
  EXPECT_DOUBLE_EQ(dynamic_cast<GrowDivide*>(gd2.get())->threshold_diameter(),
                   17.0);
  RandomWalk rw(3.5);
  auto rw2 = rw.Clone();
  EXPECT_DOUBLE_EQ(dynamic_cast<RandomWalk*>(rw2.get())->speed(), 3.5);
  Apoptosis ap(0.25);
  auto ap2 = ap.Clone();
  EXPECT_DOUBLE_EQ(dynamic_cast<Apoptosis*>(ap2.get())->death_rate(), 0.25);
}

TEST(BehaviorCloneTest, CopyToNewControlsInheritance) {
  Param p;
  ResourceManager rm;
  SimContext ctx(p, rm, 0);
  NewAgentSpec s;
  s.position = {100, 100, 100};
  s.diameter = 12.0;
  AgentIndex i = rm.AddAgent(std::move(s));
  auto inherited = std::make_unique<RandomWalk>(1.0);
  auto not_inherited = std::make_unique<Apoptosis>(0.1);
  not_inherited->copy_to_new = false;
  rm.AttachBehavior(i, std::move(inherited));
  rm.AttachBehavior(i, std::move(not_inherited));

  Cell(rm, i).Divide(ctx);
  rm.CommitStructuralChanges();
  ASSERT_EQ(rm.size(), 2u);
  EXPECT_EQ(rm.behaviors_of(0).size(), 2u);  // mother keeps both
  ASSERT_EQ(rm.behaviors_of(1).size(), 1u);  // daughter only the walk
  EXPECT_STREQ(rm.behaviors_of(1)[0]->name(), "RandomWalk");
}

TEST(SecretionTest, DepositsDeferThroughTheSinkWhenInstalled) {
  // The determinism contract for behaviors (docs/determinism.md): writes to
  // the field go through SimContext::DepositSubstance, which buffers while a
  // sink is installed (the parallel behaviors pass) and applies immediately
  // otherwise.
  Param p;
  ResourceManager rm;
  DiffusionGrid grid("s", 0.0, 100.0, 4, 1.0, 0.0);
  SimContext ctx(p, rm, 0);
  ctx.diffusion_grid = &grid;
  std::vector<PendingDeposit> sink;
  ctx.deposit_sink = &sink;

  NewAgentSpec s;
  s.position = {50, 50, 50};
  AgentIndex i = rm.AddAgent(std::move(s));
  Cell cell(rm, i);
  Secretion sec(5.0);
  sec.Run(cell, ctx);

  EXPECT_DOUBLE_EQ(grid.TotalAmount(), 0.0);  // deferred, not applied
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_DOUBLE_EQ(sink[0].amount, 5.0 * p.simulation_time_step);

  ctx.deposit_sink = nullptr;  // outside the parallel pass: immediate
  sec.Run(cell, ctx);
  EXPECT_DOUBLE_EQ(grid.TotalAmount(), 5.0 * p.simulation_time_step);
}

TEST(SecretionTest, SimulationAppliesEachDepositExactlyOncePerStep) {
  Param p;
  p.max_bound = 100.0;
  Simulation sim(p);
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "s", 0.0, 100.0, 4, 1.0, /*decay_constant=*/0.0));
  AgentIndex i = sim.AddCell({50, 50, 50}, 10.0);
  sim.rm().AttachBehavior(i, std::make_unique<Secretion>(4.0));
  sim.Simulate(1);
  // Closed boundary, no decay: the total is exactly the one deposit.
  EXPECT_NEAR(sim.diffusion_grid()->TotalAmount(),
              4.0 * p.simulation_time_step, 1e-12);
  sim.Simulate(1);
  EXPECT_NEAR(sim.diffusion_grid()->TotalAmount(),
              2.0 * 4.0 * p.simulation_time_step, 1e-12);
}

TEST(SecretionTest, NoGridIsSafeNoop) {
  Param p;
  ResourceManager rm;
  SimContext ctx(p, rm, 0);  // no diffusion grid attached
  AgentIndex i = rm.AddAgent(NewAgentSpec{});
  Cell cell(rm, i);
  Secretion sec(5.0);
  sec.Run(cell, ctx);  // must not crash
  Chemotaxis chem(2.0);
  chem.Run(cell, ctx);
  EXPECT_EQ(cell.tractor_force(), (Double3{0, 0, 0}));
}

}  // namespace
}  // namespace biosim
