// Property tests for the portable SIMD layer (core/simd.h): every
// operation must agree lane-for-lane, bit-for-bit, with the scalar
// expression that defines it — across widths (1, 2, 4, 8), across
// element types (double, float), for masked tails of every length, and
// on the unfriendly inputs (NaN, infinities, denormals, signed zero)
// that a branchless kernel feeds through its inactive lanes. The SIMD
// force kernel's differential tests (tests/physics/simd_force_diff_test)
// build on these per-op guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/simd.h"

namespace biosim::simd {
namespace {

// Bitwise equality: the only meaningful comparison when NaN payloads and
// signed zeros are part of the contract.
template <typename T>
bool BitEqual(T a, T b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

/// The unfriendly-value pool every lane combination draws from.
template <typename T>
std::vector<T> SpecialValues() {
  const T inf = std::numeric_limits<T>::infinity();
  const T nan = std::numeric_limits<T>::quiet_NaN();
  return {T{0},
          -T{0},
          T{1},
          -T{1},
          T{0.5},
          T{-2.5},
          std::numeric_limits<T>::denorm_min(),
          -std::numeric_limits<T>::denorm_min(),
          std::numeric_limits<T>::min(),
          std::numeric_limits<T>::max(),
          inf,
          -inf,
          nan,
          static_cast<T>(1e18),
          static_cast<T>(-3.7e-9)};
}

/// Two deterministic input vectors whose lanes cycle through the special
/// pool with different offsets, so every (special, special) pairing is
/// hit across the sweep, plus uniformly random fill.
template <typename T, int W>
void FillInputs(int round, Vec<T, W>* a, Vec<T, W>* b) {
  const std::vector<T> pool = SpecialValues<T>();
  if (round < static_cast<int>(pool.size())) {
    for (int i = 0; i < W; ++i) {
      a->lane[i] = pool[(i + round) % pool.size()];
      b->lane[i] = pool[(i * 3 + round * 7) % pool.size()];
    }
    return;
  }
  std::mt19937_64 rng(1234u + static_cast<unsigned>(round));
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (int i = 0; i < W; ++i) {
    a->lane[i] = static_cast<T>(dist(rng));
    b->lane[i] = static_cast<T>(dist(rng));
  }
}

constexpr int kRounds = 40;  // specials first, then random fills

template <typename T, int W>
void CheckArithmetic() {
  for (int round = 0; round < kRounds; ++round) {
    Vec<T, W> a;
    Vec<T, W> b;
    FillInputs(round, &a, &b);
    const Vec<T, W> sum = a + b;
    const Vec<T, W> diff = a - b;
    const Vec<T, W> prod = a * b;
    const Vec<T, W> quot = a / b;
    const Vec<T, W> neg = -a;
    for (int i = 0; i < W; ++i) {
      EXPECT_TRUE(BitEqual(sum.lane[i], static_cast<T>(a.lane[i] + b.lane[i])))
          << "lane " << i << " round " << round;
      EXPECT_TRUE(BitEqual(diff.lane[i], static_cast<T>(a.lane[i] - b.lane[i])));
      EXPECT_TRUE(BitEqual(prod.lane[i], static_cast<T>(a.lane[i] * b.lane[i])));
      EXPECT_TRUE(BitEqual(quot.lane[i], static_cast<T>(a.lane[i] / b.lane[i])));
      EXPECT_TRUE(BitEqual(neg.lane[i], static_cast<T>(-a.lane[i])));
    }
  }
}

template <typename T, int W>
void CheckFmaSqrtMinMax() {
  for (int round = 0; round < kRounds; ++round) {
    Vec<T, W> a;
    Vec<T, W> b;
    FillInputs(round, &a, &b);
    Vec<T, W> c;
    Vec<T, W> unused;
    FillInputs(round + 3, &c, &unused);
    const Vec<T, W> fma = Fma(a, b, c);
    const Vec<T, W> sq = Sqrt(a);
    const Vec<T, W> mn = Min(a, b);
    const Vec<T, W> mx = Max(a, b);
    for (int i = 0; i < W; ++i) {
      EXPECT_TRUE(BitEqual(fma.lane[i],
                           std::fma(a.lane[i], b.lane[i], c.lane[i])))
          << "lane " << i << " round " << round;
      EXPECT_TRUE(BitEqual(sq.lane[i], std::sqrt(a.lane[i])));
      // Min/Max: `b < a ? b : a` — NaN in either operand yields the
      // first operand, the x86 minpd/maxpd convention.
      EXPECT_TRUE(BitEqual(
          mn.lane[i],
          static_cast<T>(b.lane[i] < a.lane[i] ? b.lane[i] : a.lane[i])));
      EXPECT_TRUE(BitEqual(
          mx.lane[i],
          static_cast<T>(a.lane[i] < b.lane[i] ? b.lane[i] : a.lane[i])));
    }
  }
}

template <typename T, int W>
void CheckComparisonsAndSelect() {
  for (int round = 0; round < kRounds; ++round) {
    Vec<T, W> a;
    Vec<T, W> b;
    FillInputs(round, &a, &b);
    const Mask<W> lt = Lt(a, b);
    const Mask<W> le = Le(a, b);
    const Mask<W> gt = Gt(a, b);
    const Mask<W> ge = Ge(a, b);
    const Mask<W> eq = Eq(a, b);
    const Vec<T, W> sel = Select(lt, a, b);
    for (int i = 0; i < W; ++i) {
      // IEEE semantics: every ordered comparison involving NaN is false.
      EXPECT_EQ(lt.lane[i], a.lane[i] < b.lane[i]);
      EXPECT_EQ(le.lane[i], a.lane[i] <= b.lane[i]);
      EXPECT_EQ(gt.lane[i], a.lane[i] > b.lane[i]);
      EXPECT_EQ(ge.lane[i], a.lane[i] >= b.lane[i]);
      EXPECT_EQ(eq.lane[i], a.lane[i] == b.lane[i]);
      EXPECT_TRUE(BitEqual(sel.lane[i],
                           lt.lane[i] ? a.lane[i] : b.lane[i]));
    }
  }
}

template <typename T, int W>
void CheckLoadStoreAndTails() {
  alignas(kAlignment) T src[W];
  for (int i = 0; i < W; ++i) {
    src[i] = static_cast<T>(i + 1) * static_cast<T>(1.25);
  }
  const Vec<T, W> v = Vec<T, W>::Load(src);
  alignas(kAlignment) T dst[W];
  v.Store(dst);
  for (int i = 0; i < W; ++i) {
    EXPECT_TRUE(BitEqual(v.lane[i], src[i]));
    EXPECT_TRUE(BitEqual(dst[i], src[i]));
  }

  for (int n = 0; n <= W; ++n) {
    // Heap buffers of exactly n elements: under ASan, LoadN reading or
    // StoreN writing one element past `n` is a hard failure, which
    // pins the "reads/writes exactly n" contract.
    std::vector<T> tail_src(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      tail_src[static_cast<size_t>(i)] = static_cast<T>(10 + i);
    }
    const Vec<T, W> tv = Vec<T, W>::LoadN(tail_src.data(), n);
    for (int i = 0; i < W; ++i) {
      EXPECT_TRUE(BitEqual(tv.lane[i], i < n
                                           ? tail_src[static_cast<size_t>(i)]
                                           : T{0}))
          << "n=" << n << " lane " << i;
    }
    std::vector<T> tail_dst(static_cast<size_t>(n));
    tv.StoreN(tail_dst.data(), n);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(tail_dst[static_cast<size_t>(i)], tv.lane[i]));
    }
    // And with headroom: lanes at n.. must stay untouched.
    T guarded[W + 1];
    const T sentinel = static_cast<T>(-777);
    for (int i = 0; i < W + 1; ++i) {
      guarded[i] = sentinel;
    }
    tv.StoreN(guarded, n);
    for (int i = n; i < W + 1; ++i) {
      EXPECT_TRUE(BitEqual(guarded[i], sentinel)) << "n=" << n << " i=" << i;
    }
  }
}

template <typename T, int W>
void CheckMaskOps() {
  // Exhaustive over all 2^W lane patterns (W <= 8 -> <= 256).
  for (unsigned bits = 0; bits < (1u << W); ++bits) {
    Mask<W> m;
    int expect_count = 0;
    for (int i = 0; i < W; ++i) {
      m.lane[i] = (bits >> i) & 1u;
      expect_count += m.lane[i] ? 1 : 0;
    }
    EXPECT_EQ(m.CountTrue(), expect_count);
    EXPECT_EQ(m.AnyTrue(), bits != 0);
    EXPECT_EQ(m.AllTrue(), bits == (1u << W) - 1u);
    const Mask<W> inv = Not(m);
    for (unsigned other = 0; other < (1u << W); ++other) {
      Mask<W> o;
      for (int i = 0; i < W; ++i) {
        o.lane[i] = (other >> i) & 1u;
      }
      const Mask<W> both = And(m, o);
      const Mask<W> either = Or(m, o);
      for (int i = 0; i < W; ++i) {
        EXPECT_EQ(both.lane[i], m.lane[i] && o.lane[i]);
        EXPECT_EQ(either.lane[i], m.lane[i] || o.lane[i]);
        EXPECT_EQ(inv.lane[i], !m.lane[i]);
      }
    }
  }
  EXPECT_FALSE(Mask<W>::None().AnyTrue());
  EXPECT_EQ(Mask<W>::None().CountTrue(), 0);
}

template <typename T, int W>
void CheckReduceAddAndConvert() {
  // Strict left-to-right order, witnessed by catastrophic cancellation:
  // lanes {big, 1, -big, 1} sum to exactly 1 left-to-right (big + 1
  // rounds back to big: at 2^54 the ulp is 4 in double, so +1 is below
  // the halfway point and drops without even invoking the tie rule —
  // and float loses it long before), while a pairwise tree would
  // produce 0. Only meaningful at W >= 4; narrower widths still check
  // the plain sum.
  Vec<T, W> v = Vec<T, W>::Zero();
  if (W >= 4) {
    const T big = static_cast<T>(18014398509481984.0);  // 2^54
    v.lane[0] = big;
    v.lane[1] = T{1};
    v.lane[2] = -big;
    v.lane[3] = T{1};
    EXPECT_TRUE(BitEqual(ReduceAdd(v), T{1}));
  }
  for (int round = 0; round < kRounds; ++round) {
    Vec<T, W> a;
    Vec<T, W> b;
    FillInputs(round, &a, &b);
    T want = a.lane[0];
    for (int i = 1; i < W; ++i) {
      want += a.lane[i];
    }
    EXPECT_TRUE(BitEqual(ReduceAdd(a), want)) << "round " << round;

    using U = std::conditional_t<std::is_same_v<T, double>, float, double>;
    const Vec<U, W> conv = a.template ConvertTo<U>();
    for (int i = 0; i < W; ++i) {
      EXPECT_TRUE(BitEqual(conv.lane[i], static_cast<U>(a.lane[i])));
    }
  }
}

// One instantiation sweep shared by all the TEST bodies below: the
// layer must behave identically at every width a kernel TU can pick.
#define BIOSIM_SIMD_TEST_ALL_WIDTHS(fn)   \
  do {                                    \
    fn<double, 1>();                      \
    fn<double, 2>();                      \
    fn<double, 4>();                      \
    fn<double, 8>();                      \
    fn<float, 1>();                       \
    fn<float, 2>();                       \
    fn<float, 4>();                       \
    fn<float, 8>();                       \
  } while (0)

TEST(SimdVecTest, ArithmeticMatchesScalarLaneForLane) {
  BIOSIM_SIMD_TEST_ALL_WIDTHS(CheckArithmetic);
}

TEST(SimdVecTest, FmaSqrtMinMaxMatchScalarIncludingNaN) {
  BIOSIM_SIMD_TEST_ALL_WIDTHS(CheckFmaSqrtMinMax);
}

TEST(SimdVecTest, ComparisonsAndSelectAreIeeeLanewise) {
  BIOSIM_SIMD_TEST_ALL_WIDTHS(CheckComparisonsAndSelect);
}

TEST(SimdVecTest, LoadStoreAndMaskedTailsTouchExactlyN) {
  BIOSIM_SIMD_TEST_ALL_WIDTHS(CheckLoadStoreAndTails);
}

TEST(SimdMaskTest, MaskOpsExhaustiveOverAllPatterns) {
  BIOSIM_SIMD_TEST_ALL_WIDTHS(CheckMaskOps);
}

TEST(SimdVecTest, ReduceAddIsStrictlyLeftToRightAndConvertIsStaticCast) {
  BIOSIM_SIMD_TEST_ALL_WIDTHS(CheckReduceAddAndConvert);
}

TEST(SimdVecTest, BroadcastAndZeroFillEveryLane) {
  const auto v = Vec<double, 4>::Broadcast(-2.5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(v.lane[i], -2.5);
  }
  const auto z = Vec<float, 8>::Zero();
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(BitEqual(z.lane[i], 0.0f));
  }
}

TEST(SimdLayerTest, NativeLaneCountsMatchTheAvx2Registers) {
  EXPECT_EQ(kNativeLanes<double>, 4);  // 256-bit / 64-bit lanes
  EXPECT_EQ(kNativeLanes<float>, 8);   // 256-bit / 32-bit lanes
  EXPECT_EQ(kNativeLanes<int32_t>, 1); // only FP types are widened
  // The scratch alignment must cover the widest vector in use.
  EXPECT_GE(kAlignment, sizeof(double) * kNativeLanes<double>);
  EXPECT_EQ(kAlignment % 64, 0u);
}

class WidthModeEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("BIOSIM_SIMD");
    had_prev_ = prev != nullptr;
    if (had_prev_) {
      prev_ = prev;
    }
  }
  void TearDown() override {
    if (had_prev_) {
      setenv("BIOSIM_SIMD", prev_.c_str(), 1);
    } else {
      unsetenv("BIOSIM_SIMD");
    }
  }
  bool had_prev_ = false;
  std::string prev_;
};

TEST_F(WidthModeEnvTest, UnsetEmptyAndNativeAllMeanNative) {
  unsetenv("BIOSIM_SIMD");
  EXPECT_EQ(WidthModeFromEnv(), WidthMode::kNative);
  setenv("BIOSIM_SIMD", "", 1);
  EXPECT_EQ(WidthModeFromEnv(), WidthMode::kNative);
  setenv("BIOSIM_SIMD", "native", 1);
  EXPECT_EQ(WidthModeFromEnv(), WidthMode::kNative);
}

TEST_F(WidthModeEnvTest, ScalarSelectsScalarWidth) {
  setenv("BIOSIM_SIMD", "scalar", 1);
  EXPECT_EQ(WidthModeFromEnv(), WidthMode::kScalar);
}

TEST_F(WidthModeEnvTest, UnknownValueThrowsInsteadOfGuessing) {
  // A typo must not silently change which kernel a determinism run
  // exercised.
  for (const char* bad : {"avx2", "SCALAR", "1", "wide", "Native"}) {
    setenv("BIOSIM_SIMD", bad, 1);
    EXPECT_THROW(WidthModeFromEnv(), std::invalid_argument) << bad;
  }
}

}  // namespace
}  // namespace biosim::simd
