#include "core/timeseries.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/simulation.h"

namespace biosim {
namespace {

TEST(TimeSeriesTest, RecordsRegisteredMetricsEachInterval) {
  Param p;
  Simulation sim(p);
  sim.CreateRandomCells(20, 10.0);

  TimeSeriesRecorder rec(/*interval=*/2);
  rec.AddMetric("population", metrics::PopulationSize);
  rec.AddMetric("mean_d", metrics::MeanDiameter);

  for (int s = 0; s < 6; ++s) {
    rec.Record(sim);  // steps 0,1,2,3,4,5: records at 0,2,4
    sim.Simulate(1);
  }
  ASSERT_EQ(rec.num_rows(), 3u);
  EXPECT_EQ(rec.steps(), (std::vector<uint64_t>{0, 2, 4}));
  EXPECT_DOUBLE_EQ(rec.At(0, "population"), 20.0);
  EXPECT_DOUBLE_EQ(rec.At(0, "mean_d"), 10.0);
}

TEST(TimeSeriesTest, ColumnExtraction) {
  Param p;
  Simulation sim(p);
  sim.CreateRandomCells(5, 8.0);
  TimeSeriesRecorder rec;
  rec.AddMetric("volume", metrics::TotalVolume);
  rec.Record(sim);
  sim.Simulate(1);
  rec.Record(sim);
  auto col = rec.Column("volume");
  ASSERT_EQ(col.size(), 2u);
  EXPECT_NEAR(col[0], 5.0 * math::SphereVolume(8.0), 1e-9);
}

TEST(TimeSeriesTest, RejectsDuplicateAndUnknownNames) {
  TimeSeriesRecorder rec;
  rec.AddMetric("x", metrics::PopulationSize);
  EXPECT_THROW(rec.AddMetric("x", metrics::PopulationSize),
               std::invalid_argument);
  EXPECT_THROW(rec.Column("nope"), std::out_of_range);
}

TEST(TimeSeriesTest, CustomMetricSeesSimulationState) {
  Param p;
  Simulation sim(p);
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "oxygen", 0.0, 1000.0, 8, 10.0, 0.0));
  sim.diffusion_grid()->IncreaseConcentrationBy({500, 500, 500}, 42.0);
  TimeSeriesRecorder rec;
  rec.AddMetric("oxygen_total", [](Simulation& s) {
    return s.diffusion_grid()->TotalAmount();
  });
  rec.Record(sim);
  EXPECT_NEAR(rec.At(0, "oxygen_total"), 42.0, 1e-9);
}

TEST(TimeSeriesTest, CsvOutput) {
  Param p;
  Simulation sim(p);
  sim.CreateRandomCells(3, 10.0);
  TimeSeriesRecorder rec;
  rec.AddMetric("population", metrics::PopulationSize);
  rec.Record(sim);
  std::string path = std::string(::testing::TempDir()) + "/ts.csv";
  ASSERT_TRUE(rec.WriteCsv(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("step,population"), std::string::npos);
  EXPECT_NE(ss.str().find("0,3"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(rec.WriteCsv("/nonexistent_dir_xyz/ts.csv"));
}

TEST(TimeSeriesTest, GrowthCurveOfDivisionModel) {
  Param p;
  Simulation sim(p);
  sim.Create3DCellGrid(3, 20.0, 8.0, 16.0, 120000.0);
  TimeSeriesRecorder rec;
  rec.AddMetric("population", metrics::PopulationSize);
  rec.AddMetric("extent", metrics::BoundingBoxVolume);
  for (int s = 0; s < 10; ++s) {
    rec.Record(sim);
    sim.Simulate(1);
  }
  auto pop = rec.Column("population");
  EXPECT_GT(pop.back(), pop.front());           // growth
  auto ext = rec.Column("extent");
  EXPECT_GT(ext.back(), ext.front());           // tissue expands
  // Monotone non-decreasing population (no death in this model).
  for (size_t i = 1; i < pop.size(); ++i) {
    EXPECT_GE(pop[i], pop[i - 1]);
  }
}

}  // namespace
}  // namespace biosim
