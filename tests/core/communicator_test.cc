// Communicator: the in-process rank transport behind the sharded pipeline
// (core/communicator.h). Channels are per-(src, dst, tag) FIFOs with typed
// payloads; the barrier is a phase-counting rendezvous.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/communicator.h"

namespace biosim {
namespace {

TEST(CommunicatorTest, SendRecvRoundTripsTypedPayloads) {
  Communicator comm(4);
  comm.Send<int32_t>(0, 1, /*tag=*/7, {1, 2, 3});
  comm.Send<double>(2, 1, /*tag=*/7, {0.5});
  EXPECT_TRUE(comm.HasMessage(0, 1, 7));
  EXPECT_FALSE(comm.HasMessage(1, 0, 7));

  auto ints = comm.Recv<int32_t>(0, 1, 7);
  EXPECT_EQ(ints, (std::vector<int32_t>{1, 2, 3}));
  auto doubles = comm.Recv<double>(2, 1, 7);
  EXPECT_EQ(doubles, (std::vector<double>{0.5}));
  EXPECT_EQ(comm.PendingMessages(), 0u);
}

TEST(CommunicatorTest, ChannelsAreFifoPerSourceDestTag) {
  Communicator comm(2);
  comm.Send<int32_t>(0, 1, 0, {1});
  comm.Send<int32_t>(0, 1, 0, {2});
  EXPECT_EQ(comm.Recv<int32_t>(0, 1, 0), std::vector<int32_t>{1});
  EXPECT_EQ(comm.Recv<int32_t>(0, 1, 0), std::vector<int32_t>{2});
}

TEST(CommunicatorTest, TagsIsolateChannels) {
  // The K == 2 torus case: both halo messages travel between the same pair
  // of ranks and must stay distinguishable by direction tag.
  Communicator comm(2);
  comm.Send<int32_t>(0, 1, /*kTagToUpper=*/0, {10});
  comm.Send<int32_t>(0, 1, /*kTagToLower=*/1, {20});
  EXPECT_EQ(comm.Recv<int32_t>(0, 1, 1), std::vector<int32_t>{20});
  EXPECT_EQ(comm.Recv<int32_t>(0, 1, 0), std::vector<int32_t>{10});
}

TEST(CommunicatorTest, RecvOnEmptyChannelThrows) {
  Communicator comm(2);
  EXPECT_THROW(comm.Recv<int32_t>(0, 1, 0), std::logic_error);
}

TEST(CommunicatorTest, RecvTypeMismatchThrows) {
  Communicator comm(2);
  comm.Send<int32_t>(0, 1, 0, {1});
  EXPECT_THROW(comm.Recv<double>(0, 1, 0), std::logic_error);
}

TEST(CommunicatorTest, OutOfRangeRankThrows) {
  Communicator comm(2);
  EXPECT_THROW(comm.Send<int32_t>(2, 0, 0, {}), std::out_of_range);
  EXPECT_THROW(comm.Recv<int32_t>(0, 5, 0), std::out_of_range);
}

TEST(CommunicatorTest, CountsMessagesAndBytes) {
  Communicator comm(2);
  comm.Send<int32_t>(0, 1, 0, {1, 2, 3});        // 12 bytes
  comm.Send<double>(1, 0, 0, {1.0, 2.0});        // 16 bytes
  EXPECT_EQ(comm.messages_sent(), 2u);
  EXPECT_EQ(comm.bytes_sent(), 12u + 16u);
  EXPECT_EQ(comm.PendingMessages(), 2u);
}

TEST(CommunicatorTest, BarrierRendezvousesDedicatedRankThreads) {
  // Drive each rank on its own thread (the deployment Barrier() exists
  // for); every rank must observe all pre-barrier sends after the barrier.
  constexpr uint32_t kRanks = 4;
  Communicator comm(kRanks);
  std::vector<int32_t> sums(kRanks, 0);
  std::vector<std::thread> threads;
  for (uint32_t k = 0; k < kRanks; ++k) {
    threads.emplace_back([&, k] {
      const uint32_t next = (k + 1) % kRanks;
      comm.Send<int32_t>(k, next, 0, {static_cast<int32_t>(k)});
      comm.Barrier();
      const uint32_t prev = (k + kRanks - 1) % kRanks;
      auto got = comm.Recv<int32_t>(prev, k, 0);
      sums[k] = got.at(0);
      comm.Barrier();  // barrier is reusable across phases
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (uint32_t k = 0; k < kRanks; ++k) {
    EXPECT_EQ(sums[k], static_cast<int32_t>((k + kRanks - 1) % kRanks));
  }
  EXPECT_EQ(comm.PendingMessages(), 0u);
}

}  // namespace
}  // namespace biosim
