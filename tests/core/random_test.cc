#include "core/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace biosim {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.NextU64() == b.NextU64();
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, UniformInUnitInterval) {
  Random rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, UniformRangeRespectsBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RandomTest, UniformIntRespectsBound) {
  Random rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RandomTest, GaussianMoments) {
  Random rng(13);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(2.0, 3.0);
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RandomTest, UnitVectorHasUnitNorm) {
  Random rng(17);
  Double3 mean{};
  for (int i = 0; i < 5000; ++i) {
    Double3 v = rng.UnitVector();
    ASSERT_NEAR(v.Norm(), 1.0, 1e-12);
    mean += v;
  }
  // Isotropy: the average direction should be near zero.
  EXPECT_LT((mean / 5000.0).Norm(), 0.05);
}

TEST(RandomTest, UniformInBoxStaysInside) {
  Random rng(19);
  Double3 lo{-1.0, 0.0, 2.0}, hi{1.0, 5.0, 3.0};
  for (int i = 0; i < 1000; ++i) {
    Double3 p = rng.UniformInBox(lo, hi);
    ASSERT_GE(p.x, lo.x);
    ASSERT_LT(p.x, hi.x);
    ASSERT_GE(p.y, lo.y);
    ASSERT_LT(p.y, hi.y);
    ASSERT_GE(p.z, lo.z);
    ASSERT_LT(p.z, hi.z);
  }
}

TEST(RandomTest, StreamsAreIndependentOfEachOther) {
  // ForStream must decorrelate agent streams: adjacent (uid, step) pairs
  // should produce unrelated sequences.
  Random a = Random::ForStream(42, /*stream=*/1, /*counter=*/5);
  Random b = Random::ForStream(42, /*stream=*/2, /*counter=*/5);
  Random c = Random::ForStream(42, /*stream=*/1, /*counter=*/6);
  EXPECT_NE(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RandomTest, StreamsAreReproducible) {
  Random a = Random::ForStream(42, 7, 9);
  Random b = Random::ForStream(42, 7, 9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

}  // namespace
}  // namespace biosim
