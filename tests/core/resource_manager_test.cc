#include "core/resource_manager.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/behaviors/grow_divide.h"

namespace biosim {
namespace {

NewAgentSpec MakeSpec(double x, double diameter = 10.0) {
  NewAgentSpec s;
  s.position = {x, 0.0, 0.0};
  s.diameter = diameter;
  return s;
}

TEST(ResourceManagerTest, AddAgentPopulatesAllArrays) {
  ResourceManager rm;
  NewAgentSpec s = MakeSpec(1.0, 8.0);
  s.adherence = 0.3;
  s.density = 1.1;
  s.tractor_force = {0.1, 0.2, 0.3};
  AgentIndex i = rm.AddAgent(std::move(s));
  ASSERT_EQ(rm.size(), 1u);
  EXPECT_EQ(rm.positions()[i], (Double3{1.0, 0.0, 0.0}));
  EXPECT_DOUBLE_EQ(rm.diameters()[i], 8.0);
  EXPECT_NEAR(rm.volumes()[i], math::SphereVolume(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(rm.adherences()[i], 0.3);
  EXPECT_DOUBLE_EQ(rm.densities()[i], 1.1);
  EXPECT_EQ(rm.tractor_forces()[i], (Double3{0.1, 0.2, 0.3}));
  EXPECT_EQ(rm.uids()[i], 0u);
}

TEST(ResourceManagerTest, UidsAreUniqueAndMonotonic) {
  ResourceManager rm;
  for (int i = 0; i < 5; ++i) {
    rm.AddAgent(MakeSpec(i));
  }
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rm.uids()[i], i);
  }
}

TEST(ResourceManagerTest, DeferredAgentsAppearOnlyAfterCommit) {
  ResourceManager rm;
  rm.AddAgent(MakeSpec(0.0));
  rm.PushDeferredAgent(0, MakeSpec(5.0));
  EXPECT_EQ(rm.size(), 1u);
  EXPECT_EQ(rm.CommitStructuralChanges(), 1u);
  EXPECT_EQ(rm.size(), 2u);
  EXPECT_DOUBLE_EQ(rm.positions()[1].x, 5.0);
}

TEST(ResourceManagerTest, DeferredAgentsOrderedByMotherRow) {
  ResourceManager rm;
  for (int i = 0; i < 3; ++i) {
    rm.AddAgent(MakeSpec(i));
  }
  // Push out of order, as parallel behavior execution would.
  rm.PushDeferredAgent(2, MakeSpec(102.0));
  rm.PushDeferredAgent(0, MakeSpec(100.0));
  rm.PushDeferredAgent(1, MakeSpec(101.0));
  rm.CommitStructuralChanges();
  ASSERT_EQ(rm.size(), 6u);
  EXPECT_DOUBLE_EQ(rm.positions()[3].x, 100.0);
  EXPECT_DOUBLE_EQ(rm.positions()[4].x, 101.0);
  EXPECT_DOUBLE_EQ(rm.positions()[5].x, 102.0);
}

TEST(ResourceManagerTest, DeferredRemovalSwapsWithLast) {
  ResourceManager rm;
  for (int i = 0; i < 4; ++i) {
    rm.AddAgent(MakeSpec(i));
  }
  rm.PushDeferredRemoval(1);
  rm.CommitStructuralChanges();
  ASSERT_EQ(rm.size(), 3u);
  // Row 1 now holds what was row 3.
  EXPECT_DOUBLE_EQ(rm.positions()[1].x, 3.0);
  EXPECT_EQ(rm.uids()[1], 3u);
}

TEST(ResourceManagerTest, DuplicateRemovalIsIdempotent) {
  ResourceManager rm;
  for (int i = 0; i < 3; ++i) {
    rm.AddAgent(MakeSpec(i));
  }
  rm.PushDeferredRemoval(2);
  rm.PushDeferredRemoval(2);
  rm.CommitStructuralChanges();
  EXPECT_EQ(rm.size(), 2u);
}

TEST(ResourceManagerTest, RemoveMultipleHighestFirst) {
  ResourceManager rm;
  for (int i = 0; i < 5; ++i) {
    rm.AddAgent(MakeSpec(i));
  }
  rm.PushDeferredRemoval(4);
  rm.PushDeferredRemoval(0);
  rm.CommitStructuralChanges();
  ASSERT_EQ(rm.size(), 3u);
  // Surviving x values are {1, 2, 3} in some arrangement.
  double sum = 0.0;
  for (const auto& p : rm.positions()) {
    sum += p.x;
  }
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(ResourceManagerTest, ApplyPermutationReordersAllArrays) {
  ResourceManager rm;
  for (int i = 0; i < 4; ++i) {
    NewAgentSpec s = MakeSpec(i, 5.0 + i);
    s.adherence = 0.1 * i;
    rm.AddAgent(std::move(s));
  }
  std::vector<AgentIndex> perm{3, 1, 0, 2};
  rm.ApplyPermutation(perm);
  EXPECT_DOUBLE_EQ(rm.positions()[0].x, 3.0);
  EXPECT_DOUBLE_EQ(rm.diameters()[0], 8.0);
  EXPECT_DOUBLE_EQ(rm.adherences()[0], 0.3);
  EXPECT_EQ(rm.uids()[0], 3u);
  EXPECT_DOUBLE_EQ(rm.positions()[2].x, 0.0);
  EXPECT_EQ(rm.uids()[2], 0u);
}

TEST(ResourceManagerTest, PermutationPreservesBehaviors) {
  ResourceManager rm;
  rm.AddAgent(MakeSpec(0.0));
  rm.AddAgent(MakeSpec(1.0));
  rm.AttachBehavior(1, std::make_unique<GrowDivide>(30.0, 100.0));
  rm.ApplyPermutation({1, 0});
  EXPECT_EQ(rm.behaviors_of(0).size(), 1u);
  EXPECT_EQ(rm.behaviors_of(1).size(), 0u);
}

TEST(ResourceManagerTest, LargestDiameter) {
  ResourceManager rm;
  EXPECT_DOUBLE_EQ(rm.LargestDiameter(), 0.0);
  rm.AddAgent(MakeSpec(0.0, 5.0));
  rm.AddAgent(MakeSpec(1.0, 12.0));
  rm.AddAgent(MakeSpec(2.0, 7.0));
  EXPECT_DOUBLE_EQ(rm.LargestDiameter(), 12.0);
}

TEST(ResourceManagerTest, BoundsCoverAllAgents) {
  ResourceManager rm;
  rm.AddAgent(MakeSpec(-3.0));
  NewAgentSpec s;
  s.position = {10.0, 5.0, -2.0};
  rm.AddAgent(std::move(s));
  AABBd b = rm.Bounds();
  EXPECT_DOUBLE_EQ(b.min.x, -3.0);
  EXPECT_DOUBLE_EQ(b.max.x, 10.0);
  EXPECT_DOUBLE_EQ(b.min.z, -2.0);
}

TEST(ResourceManagerTest, TotalVolumeSums) {
  ResourceManager rm;
  rm.AddAgent(MakeSpec(0.0, 10.0));
  rm.AddAgent(MakeSpec(1.0, 10.0));
  EXPECT_NEAR(rm.TotalVolume(), 2.0 * math::SphereVolume(10.0), 1e-9);
}

}  // namespace
}  // namespace biosim
