#include "core/statistics.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "spatial/uniform_grid.h"

namespace biosim {
namespace {

TEST(ScalarStatsTest, EmptySeries) {
  ScalarStats s = ScalarStats::Of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(ScalarStatsTest, KnownSeries) {
  ScalarStats s = ScalarStats::Of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(StatisticsTest, DiameterStatsTracksPopulation) {
  ResourceManager rm;
  for (double d : {8.0, 10.0, 12.0}) {
    NewAgentSpec s;
    s.diameter = d;
    rm.AddAgent(std::move(s));
  }
  ScalarStats s = DiameterStats(rm);
  EXPECT_DOUBLE_EQ(s.mean, 10.0);
  EXPECT_DOUBLE_EQ(s.min, 8.0);
  EXPECT_DOUBLE_EQ(s.max, 12.0);
}

TEST(StatisticsTest, NeighborStatsOnKnownLattice) {
  // 3x3x3 lattice, spacing 10, radius 10: center has 6 face neighbors,
  // corners have 3.
  ResourceManager rm;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      for (int z = 0; z < 3; ++z) {
        NewAgentSpec s;
        s.position = {x * 10.0, y * 10.0, z * 10.0};
        s.diameter = 10.0;
        rm.AddAgent(std::move(s));
      }
    }
  }
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  NeighborStats nb = ComputeNeighborStats(rm, env);
  EXPECT_EQ(nb.counts.count, 27u);
  EXPECT_DOUBLE_EQ(nb.counts.max, 6.0);   // the center
  EXPECT_DOUBLE_EQ(nb.counts.min, 3.0);   // the 8 corners
  EXPECT_EQ(nb.histogram[3], 8u);         // corners
  EXPECT_EQ(nb.histogram[4], 12u);        // edges
  EXPECT_EQ(nb.histogram[5], 6u);         // faces
  EXPECT_EQ(nb.histogram[6], 1u);         // center
  // 3+4+5+6 neighbor counts weighted: (8*3+12*4+6*5+6)/27
  EXPECT_NEAR(nb.counts.mean, (8.0 * 3 + 12 * 4 + 6 * 5 + 6) / 27.0, 1e-12);
}

TEST(StatisticsTest, HistogramTailBucketAggregates) {
  // Dense clump: everyone neighbors everyone (49 neighbors each), above the
  // 8-bucket cap.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 0.0, 5.0, 10.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  NeighborStats nb = ComputeNeighborStats(rm, env, /*max_bucket=*/8);
  EXPECT_EQ(nb.histogram[8], 50u);
  EXPECT_DOUBLE_EQ(nb.counts.mean, 49.0);
}

TEST(StatisticsTest, RadialDistributionOfUniformGasIsFlatNearOne) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 20000, 0.0, 100.0, 10.0, /*seed=*/5);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  auto g = RadialDistribution(rm, env, /*r_max=*/10.0, /*bins=*/10);
  ASSERT_EQ(g.size(), 10u);
  // Ignore the first bins (few pairs, noisy); the rest of an ideal gas's
  // g(r) sits near 1.
  for (size_t b = 3; b < g.size(); ++b) {
    EXPECT_GT(g[b], 0.7) << "bin " << b;
    EXPECT_LT(g[b], 1.3) << "bin " << b;
  }
}

TEST(StatisticsTest, RadialDistributionSeesLatticeStructure) {
  // A lattice has no pairs below the spacing: g(r) = 0 there, with a peak
  // at the spacing.
  ResourceManager rm;
  testutil::FillLatticeCells(&rm, 12, 8.0, 10.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  auto g = RadialDistribution(rm, env, 10.0, 10);
  // bins cover [0,10): spacing 8 falls in bin 8.
  for (size_t b = 0; b < 7; ++b) {
    EXPECT_DOUBLE_EQ(g[b], 0.0) << "bin " << b;
  }
  EXPECT_GT(g[8], 1.5);  // strong first-shell peak
}

TEST(StatisticsTest, DegenerateInputsAreSafe) {
  ResourceManager rm;
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_EQ(ComputeNeighborStats(rm, env).counts.count, 0u);
  EXPECT_EQ(RadialDistribution(rm, env, 10.0, 5).size(), 5u);
  rm.AddAgent(NewAgentSpec{});
  env.Update(rm, param, ExecMode::kSerial);
  auto g = RadialDistribution(rm, env, 10.0, 5);  // single agent: no pairs
  for (double v : g) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(StatisticsTest, SummaryMentionsTheHeadlineNumbers) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 50.0, 10.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  std::string s = SummarizePopulation(rm, env);
  EXPECT_NE(s.find("n=100"), std::string::npos);
  EXPECT_NE(s.find("diameter=10.00"), std::string::npos);
  EXPECT_NE(s.find("neighbors="), std::string::npos);
}

}  // namespace
}  // namespace biosim
