#include "core/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace biosim {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NewAgentSpec a;
    a.position = {1.5, 2.5, 3.5};
    a.diameter = 10.0;
    a.adherence = 0.4;
    rm_.AddAgent(std::move(a));
    NewAgentSpec b;
    b.position = {-4.0, 5.0, 6.0};
    b.diameter = 8.0;
    rm_.AddAgent(std::move(b));
  }

  std::string ReadAll(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::string TempPath(const char* name) {
    return std::string(::testing::TempDir()) + "/" + name;
  }

  ResourceManager rm_;
};

TEST_F(ExportTest, CsvHasHeaderAndOneRowPerCell) {
  std::string path = TempPath("cells.csv");
  ASSERT_TRUE(ExportCellsCsv(rm_, path));
  std::string content = ReadAll(path);
  EXPECT_NE(content.find("uid,x,y,z,diameter,volume,adherence"),
            std::string::npos);
  EXPECT_NE(content.find("0,1.5,2.5,3.5,10,"), std::string::npos);
  EXPECT_NE(content.find("1,-4,5,6,8,"), std::string::npos);
  // header + 2 rows
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 3);
  std::remove(path.c_str());
}

TEST_F(ExportTest, VtkStructureIsValid) {
  std::string path = TempPath("cells.vtk");
  ASSERT_TRUE(ExportCellsVtk(rm_, path));
  std::string content = ReadAll(path);
  EXPECT_NE(content.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(content.find("DATASET POLYDATA"), std::string::npos);
  EXPECT_NE(content.find("POINTS 2 double"), std::string::npos);
  EXPECT_NE(content.find("POINT_DATA 2"), std::string::npos);
  EXPECT_NE(content.find("SCALARS diameter double 1"), std::string::npos);
  EXPECT_NE(content.find("SCALARS volume double 1"), std::string::npos);
  EXPECT_NE(content.find("SCALARS uid unsigned_long 1"), std::string::npos);
  EXPECT_NE(content.find("1.5 2.5 3.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ExportTest, EmptyPopulationStillWritesValidFiles) {
  ResourceManager empty;
  std::string csv = TempPath("empty.csv");
  std::string vtk = TempPath("empty.vtk");
  ASSERT_TRUE(ExportCellsCsv(empty, csv));
  ASSERT_TRUE(ExportCellsVtk(empty, vtk));
  EXPECT_NE(ReadAll(csv).find("uid,"), std::string::npos);
  EXPECT_NE(ReadAll(vtk).find("POINTS 0 double"), std::string::npos);
  std::remove(csv.c_str());
  std::remove(vtk.c_str());
}

TEST_F(ExportTest, UnwritablePathReturnsFalse) {
  EXPECT_FALSE(ExportCellsCsv(rm_, "/nonexistent_dir_xyz/cells.csv"));
  EXPECT_FALSE(ExportCellsVtk(rm_, "/nonexistent_dir_xyz/cells.vtk"));
}

}  // namespace
}  // namespace biosim
