#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace biosim {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (ExecMode mode : {ExecMode::kSerial, ExecMode::kParallel}) {
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(mode, hits.size(), [&](size_t i) { hits[i]++; });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  int calls = 0;
  ParallelFor(ExecMode::kParallel, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForChunksCoverRangeExactly) {
  for (ExecMode mode : {ExecMode::kSerial, ExecMode::kParallel}) {
    std::vector<std::atomic<int>> hits(777);
    ParallelForChunks(mode, hits.size(), [&](size_t b, size_t e) {
      ASSERT_LE(b, e);
      for (size_t i = b; i < e; ++i) {
        hits[i]++;
      }
    });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ThreadPoolTest, ParallelReduceSum) {
  for (ExecMode mode : {ExecMode::kSerial, ExecMode::kParallel}) {
    int64_t sum = ParallelReduce<int64_t>(
        mode, 1000, 0, [](size_t i) { return static_cast<int64_t>(i); },
        [](int64_t a, int64_t b) { return a + b; });
    EXPECT_EQ(sum, 999 * 1000 / 2);
  }
}

TEST(ThreadPoolTest, ParallelReduceMax) {
  std::vector<int> data{3, 1, 4, 1, 5, 9, 2, 6};
  int m = ParallelReduce<int>(
      ExecMode::kParallel, data.size(), 0, [&](size_t i) { return data[i]; },
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(m, 9);
}

TEST(ThreadPoolTest, HardwareThreadsPositive) {
  EXPECT_GE(HardwareThreads(), 1u);
}

}  // namespace
}  // namespace biosim
