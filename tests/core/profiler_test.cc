#include "core/profiler.h"

#include <gtest/gtest.h>

namespace biosim {
namespace {

TEST(OpProfileTest, AccumulatesByName) {
  OpProfile p;
  p.Add("mech", 10.0);
  p.Add("mech", 5.0);
  p.Add("grid", 3.0);
  EXPECT_DOUBLE_EQ(p.TotalMs("mech"), 15.0);
  EXPECT_DOUBLE_EQ(p.TotalMs("grid"), 3.0);
  EXPECT_DOUBLE_EQ(p.TotalMs("absent"), 0.0);
  EXPECT_DOUBLE_EQ(p.GrandTotalMs(), 18.0);
}

TEST(OpProfileTest, PreservesFirstSeenOrder) {
  OpProfile p;
  p.Add("b", 1.0);
  p.Add("a", 1.0);
  p.Add("b", 1.0);
  ASSERT_EQ(p.entries().size(), 2u);
  EXPECT_EQ(p.entries()[0].name, "b");
  EXPECT_EQ(p.entries()[1].name, "a");
  EXPECT_EQ(p.entries()[0].calls, 2u);
}

TEST(OpProfileTest, ToStringContainsPercentages) {
  OpProfile p;
  p.Add("half1", 50.0);
  p.Add("half2", 50.0);
  std::string s = p.ToString();
  EXPECT_NE(s.find("half1"), std::string::npos);
  EXPECT_NE(s.find("50.00%"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(OpProfileTest, ResetClears) {
  OpProfile p;
  p.Add("x", 1.0);
  p.Reset();
  EXPECT_TRUE(p.entries().empty());
  EXPECT_DOUBLE_EQ(p.GrandTotalMs(), 0.0);
}

}  // namespace
}  // namespace biosim
