#include "core/profiler.h"

#include <gtest/gtest.h>

namespace biosim {
namespace {

TEST(OpProfileTest, AccumulatesByName) {
  OpProfile p;
  p.Add("mech", 10.0);
  p.Add("mech", 5.0);
  p.Add("grid", 3.0);
  EXPECT_DOUBLE_EQ(p.TotalMs("mech"), 15.0);
  EXPECT_DOUBLE_EQ(p.TotalMs("grid"), 3.0);
  EXPECT_DOUBLE_EQ(p.TotalMs("absent"), 0.0);
  EXPECT_DOUBLE_EQ(p.GrandTotalMs(), 18.0);
}

TEST(OpProfileTest, PreservesFirstSeenOrder) {
  OpProfile p;
  p.Add("b", 1.0);
  p.Add("a", 1.0);
  p.Add("b", 1.0);
  ASSERT_EQ(p.entries().size(), 2u);
  EXPECT_EQ(p.entries()[0].name, "b");
  EXPECT_EQ(p.entries()[1].name, "a");
  EXPECT_EQ(p.entries()[0].calls(), 2u);
}

TEST(OpProfileTest, ManyDistinctNamesStayConsistent) {
  // The hash index must agree with the first-seen-order storage even when
  // the entry count is large (the old implementation scanned linearly).
  OpProfile p;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 200; ++i) {
      p.Add("op_" + std::to_string(i), static_cast<double>(i));
    }
  }
  ASSERT_EQ(p.entries().size(), 200u);
  EXPECT_EQ(p.entries()[0].name, "op_0");
  EXPECT_EQ(p.entries()[199].name, "op_199");
  EXPECT_DOUBLE_EQ(p.TotalMs("op_7"), 21.0);
  EXPECT_EQ(p.Find("op_7")->calls(), 3u);
  EXPECT_EQ(p.Find("missing"), nullptr);
}

TEST(OpProfileTest, EntriesCarryLatencyDistribution) {
  OpProfile p;
  for (int i = 1; i <= 100; ++i) {
    p.Add("op", static_cast<double>(i));
  }
  const OpProfile::Entry* e = p.Find("op");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->calls(), 100u);
  EXPECT_DOUBLE_EQ(e->hist.max(), 100.0);
  EXPECT_DOUBLE_EQ(e->hist.min(), 1.0);
  // Log-bucketed percentiles: exact to within one geometric bucket (~7%).
  EXPECT_NEAR(e->hist.Percentile(0.5), 50.0, 50.0 * 0.1);
  EXPECT_NEAR(e->hist.Percentile(0.95), 95.0, 95.0 * 0.1);
}

TEST(OpProfileTest, HistSinkMatchesAdd) {
  // The ScopedTimer histogram sink and Add feed the same entry.
  OpProfile p;
  p.Hist("op")->Add(2.0);
  p.Add("op", 3.0);
  EXPECT_DOUBLE_EQ(p.TotalMs("op"), 5.0);
  EXPECT_EQ(p.entries().size(), 1u);
}

TEST(OpProfileTest, ToStringContainsPercentages) {
  OpProfile p;
  p.Add("half1", 50.0);
  p.Add("half2", 50.0);
  std::string s = p.ToString();
  EXPECT_NE(s.find("half1"), std::string::npos);
  EXPECT_NE(s.find("50.00%"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(OpProfileTest, ResetClears) {
  OpProfile p;
  p.Add("x", 1.0);
  p.Reset();
  EXPECT_TRUE(p.entries().empty());
  EXPECT_DOUBLE_EQ(p.GrandTotalMs(), 0.0);
}

}  // namespace
}  // namespace biosim
