#include "core/cell.h"

#include <gtest/gtest.h>

#include "core/behaviors/grow_divide.h"
#include "core/sim_context.h"

namespace biosim {
namespace {

class CellTest : public ::testing::Test {
 protected:
  CellTest() : ctx_(param_, rm_, /*step=*/0) {}

  AgentIndex MakeCell(double diameter = 10.0) {
    NewAgentSpec s;
    s.position = {50.0, 50.0, 50.0};
    s.diameter = diameter;
    s.adherence = 0.4;
    s.density = 1.0;
    return rm_.AddAgent(std::move(s));
  }

  Param param_;
  ResourceManager rm_;
  SimContext ctx_;
};

TEST_F(CellTest, AccessorsReadThroughToSoA) {
  AgentIndex i = MakeCell(10.0);
  Cell c(rm_, i);
  EXPECT_DOUBLE_EQ(c.diameter(), 10.0);
  EXPECT_DOUBLE_EQ(c.radius(), 5.0);
  EXPECT_NEAR(c.volume(), math::SphereVolume(10.0), 1e-12);
  EXPECT_NEAR(c.mass(), c.density() * c.volume(), 1e-12);
  c.SetPosition({1.0, 2.0, 3.0});
  EXPECT_EQ(rm_.positions()[i], (Double3{1.0, 2.0, 3.0}));
}

TEST_F(CellTest, SetDiameterUpdatesVolume) {
  Cell c(rm_, MakeCell(10.0));
  c.SetDiameter(20.0);
  EXPECT_NEAR(c.volume(), math::SphereVolume(20.0), 1e-9);
}

TEST_F(CellTest, ChangeVolumeUpdatesDiameter) {
  Cell c(rm_, MakeCell(10.0));
  double v0 = c.volume();
  c.ChangeVolume(100.0);
  EXPECT_NEAR(c.volume(), v0 + 100.0, 1e-9);
  EXPECT_NEAR(c.diameter(), math::SphereDiameter(v0 + 100.0), 1e-9);
}

TEST_F(CellTest, ChangeVolumeClampsAtZero) {
  Cell c(rm_, MakeCell(1.0));
  c.ChangeVolume(-1e9);
  EXPECT_GT(c.volume(), 0.0);
  EXPECT_GT(c.diameter(), 0.0);
}

TEST_F(CellTest, DivideConservesVolume) {
  AgentIndex i = MakeCell(12.0);
  double v0 = rm_.volumes()[i];
  Cell c(rm_, i);
  c.Divide(ctx_);
  rm_.CommitStructuralChanges();
  ASSERT_EQ(rm_.size(), 2u);
  EXPECT_NEAR(rm_.volumes()[0] + rm_.volumes()[1], v0, 1e-9);
}

TEST_F(CellTest, DivideRatioWithinCortexRange) {
  AgentIndex i = MakeCell(12.0);
  Cell c(rm_, i);
  c.Divide(ctx_);
  rm_.CommitStructuralChanges();
  double ratio = rm_.volumes()[1] / rm_.volumes()[0];
  EXPECT_GE(ratio, 0.9 - 1e-9);
  EXPECT_LE(ratio, 1.1 + 1e-9);
}

TEST_F(CellTest, DivideAlongAxisPreservesCenterOfMass) {
  AgentIndex i = MakeCell(12.0);
  Double3 p0 = rm_.positions()[i];
  Cell c(rm_, i);
  c.Divide(ctx_, {1.0, 0.0, 0.0});
  rm_.CommitStructuralChanges();
  double vm = rm_.volumes()[0];
  double vd = rm_.volumes()[1];
  Double3 com =
      (rm_.positions()[0] * vm + rm_.positions()[1] * vd) / (vm + vd);
  EXPECT_NEAR(com.x, p0.x, 1e-9);
  EXPECT_NEAR(com.y, p0.y, 1e-9);
  EXPECT_NEAR(com.z, p0.z, 1e-9);
}

TEST_F(CellTest, DivideDaughterTouchesMother) {
  AgentIndex i = MakeCell(12.0);
  Cell c(rm_, i);
  c.Divide(ctx_, {0.0, 0.0, 1.0});
  rm_.CommitStructuralChanges();
  double dist = Distance(rm_.positions()[0], rm_.positions()[1]);
  double r_sum = (rm_.diameters()[0] + rm_.diameters()[1]) / 2.0;
  EXPECT_NEAR(dist, r_sum, 1e-9);
}

TEST_F(CellTest, DivideInheritsAttributesAndBehaviors) {
  AgentIndex i = MakeCell(12.0);
  rm_.adherences()[i] = 0.77;
  rm_.densities()[i] = 1.3;
  rm_.AttachBehavior(i, std::make_unique<GrowDivide>(30.0, 5000.0));
  Cell c(rm_, i);
  c.Divide(ctx_);
  rm_.CommitStructuralChanges();
  EXPECT_DOUBLE_EQ(rm_.adherences()[1], 0.77);
  EXPECT_DOUBLE_EQ(rm_.densities()[1], 1.3);
  ASSERT_EQ(rm_.behaviors_of(1).size(), 1u);
  auto* gd = dynamic_cast<GrowDivide*>(rm_.behaviors_of(1)[0].get());
  ASSERT_NE(gd, nullptr);
  EXPECT_DOUBLE_EQ(gd->threshold_diameter(), 30.0);
}

TEST_F(CellTest, DivideIsDeterministicPerUidAndStep) {
  // Two runs with identical setup must produce identical daughters.
  ResourceManager rm2;
  NewAgentSpec s;
  s.position = {50.0, 50.0, 50.0};
  s.diameter = 12.0;
  rm2.AddAgent(std::move(s));
  SimContext ctx2(param_, rm2, 0);

  AgentIndex i = MakeCell(12.0);
  Cell(rm_, i).Divide(ctx_);
  Cell(rm2, 0).Divide(ctx2);
  rm_.CommitStructuralChanges();
  rm2.CommitStructuralChanges();
  EXPECT_EQ(rm_.positions()[1], rm2.positions()[1]);
  EXPECT_DOUBLE_EQ(rm_.volumes()[1], rm2.volumes()[1]);
}

TEST_F(CellTest, RemoveFromSimulation) {
  AgentIndex i = MakeCell();
  Cell c(rm_, i);
  c.RemoveFromSimulation(ctx_);
  EXPECT_EQ(rm_.size(), 1u);
  rm_.CommitStructuralChanges();
  EXPECT_EQ(rm_.size(), 0u);
}

TEST_F(CellTest, GrowDivideGrowsBelowThreshold) {
  AgentIndex i = MakeCell(8.0);
  Cell c(rm_, i);
  GrowDivide gd(/*threshold=*/20.0, /*rate=*/3000.0);
  double v0 = c.volume();
  gd.Run(c, ctx_);
  EXPECT_NEAR(c.volume(), v0 + 3000.0 * param_.simulation_time_step, 1e-9);
  EXPECT_EQ(rm_.size(), 1u);  // no division yet
}

TEST_F(CellTest, GrowDivideDividesAtThreshold) {
  AgentIndex i = MakeCell(20.0);
  Cell c(rm_, i);
  GrowDivide gd(/*threshold=*/20.0, /*rate=*/3000.0);
  gd.Run(c, ctx_);
  rm_.CommitStructuralChanges();
  EXPECT_EQ(rm_.size(), 2u);
}

}  // namespace
}  // namespace biosim
