// AlignedBuffer (core/aligned_buffer.h): the capacity-managed scratch
// the fused and SIMD force kernels gather into. The contract under test:
// 64-byte alignment always, pointer and contents stable while requests
// fit the capacity, geometric growth (amortized O(1) allocations for the
// kernels' per-box EnsureCapacity calls), move-only ownership. The
// value-initialization regression this class exists to prevent — a
// std::vector::resize zeroing every element the gather overwrites — is
// covered behaviorally by the stale-scratch test in
// tests/physics/simd_force_diff_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>

#include "core/aligned_buffer.h"
#include "core/math.h"
#include "core/simd.h"

namespace biosim {
namespace {

template <typename T>
bool IsCacheLineAligned(const T* p) {
  return reinterpret_cast<uintptr_t>(p) % simd::kAlignment == 0;
}

TEST(AlignedBufferTest, EveryAllocationIsCacheLineAligned) {
  AlignedBuffer<double> buf;
  // Walk through several growth steps, including odd sizes that a plain
  // malloc would place on 16-byte boundaries.
  for (size_t n : {1u, 3u, 7u, 100u, 1001u, 5000u}) {
    double* p = buf.EnsureCapacity(n);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(IsCacheLineAligned(p)) << "n=" << n;
    EXPECT_GE(buf.capacity(), n);
  }
  AlignedBuffer<float> fbuf;
  EXPECT_TRUE(IsCacheLineAligned(fbuf.EnsureCapacity(13)));
  AlignedBuffer<int32_t> ibuf;
  EXPECT_TRUE(IsCacheLineAligned(ibuf.EnsureCapacity(27)));
  AlignedBuffer<Double3> vbuf;
  EXPECT_TRUE(IsCacheLineAligned(vbuf.EnsureCapacity(42)));
}

TEST(AlignedBufferTest, PointerAndContentsStableWithinCapacity) {
  AlignedBuffer<int32_t> buf;
  int32_t* p = buf.EnsureCapacity(64);
  const size_t cap = buf.capacity();
  for (int32_t i = 0; i < 64; ++i) {
    p[i] = i * 3;
  }
  // Any request that fits must return the same pointer and leave the
  // bytes alone — the kernels rely on this when a later box is smaller.
  for (size_t n : {64u, 32u, 1u, 0u}) {
    int32_t* q = buf.EnsureCapacity(n);
    EXPECT_EQ(q, p) << "n=" << n;
    EXPECT_EQ(buf.capacity(), cap);
  }
  for (int32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(p[i], i * 3);
  }
}

TEST(AlignedBufferTest, GrowthIsGeometric) {
  AlignedBuffer<double> buf;
  buf.EnsureCapacity(10);
  const size_t first = buf.capacity();
  EXPECT_GE(first, 10u);
  // Growing by one element must at least double, not reallocate to fit.
  buf.EnsureCapacity(first + 1);
  EXPECT_GE(buf.capacity(), first * 2);
}

TEST(AlignedBufferTest, FirstAllocationCoversAFullCacheLine) {
  // The minimum capacity keeps tiny first requests from thrashing the
  // allocator one element at a time.
  AlignedBuffer<double> buf;
  buf.EnsureCapacity(1);
  EXPECT_GE(buf.capacity() * sizeof(double), simd::kAlignment);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<double> a;
  double* p = a.EnsureCapacity(100);
  p[0] = 42.0;
  const size_t cap = a.capacity();

  AlignedBuffer<double> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.capacity(), cap);
  EXPECT_EQ(b.data()[0], 42.0);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.capacity(), 0u);

  AlignedBuffer<double> c;
  c.EnsureCapacity(8);  // must be released by the move assignment
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c.capacity(), cap);
  EXPECT_EQ(b.data(), nullptr);

  // The moved-from buffer is reusable.
  EXPECT_NE(a.EnsureCapacity(16), nullptr);
}

TEST(AlignedBufferTest, DefaultConstructedIsEmpty) {
  AlignedBuffer<float> buf;
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.capacity(), 0u);
}

}  // namespace
}  // namespace biosim
