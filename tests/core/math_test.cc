#include "core/math.h"

#include <gtest/gtest.h>

namespace biosim {
namespace {

TEST(Real3Test, ArithmeticOperators) {
  Double3 a{1.0, 2.0, 3.0};
  Double3 b{4.0, -5.0, 6.0};
  EXPECT_EQ((a + b), (Double3{5.0, -3.0, 9.0}));
  EXPECT_EQ((a - b), (Double3{-3.0, 7.0, -3.0}));
  EXPECT_EQ((a * 2.0), (Double3{2.0, 4.0, 6.0}));
  EXPECT_EQ((2.0 * a), (Double3{2.0, 4.0, 6.0}));
  EXPECT_EQ((a / 2.0), (Double3{0.5, 1.0, 1.5}));
  EXPECT_EQ((-a), (Double3{-1.0, -2.0, -3.0}));
}

TEST(Real3Test, CompoundAssignment) {
  Double3 a{1.0, 2.0, 3.0};
  a += {1.0, 1.0, 1.0};
  EXPECT_EQ(a, (Double3{2.0, 3.0, 4.0}));
  a -= {2.0, 2.0, 2.0};
  EXPECT_EQ(a, (Double3{0.0, 1.0, 2.0}));
  a *= 3.0;
  EXPECT_EQ(a, (Double3{0.0, 3.0, 6.0}));
}

TEST(Real3Test, DotCrossNorm) {
  Double3 a{1.0, 0.0, 0.0};
  Double3 b{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_EQ(a.Cross(b), (Double3{0.0, 0.0, 1.0}));
  Double3 c{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(c.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(c.SquaredNorm(), 25.0);
}

TEST(Real3Test, NormalizedHandlesZeroVector) {
  Double3 zero{};
  EXPECT_EQ(zero.Normalized(), (Double3{0.0, 0.0, 0.0}));
  Double3 v{0.0, 0.0, 2.0};
  EXPECT_EQ(v.Normalized(), (Double3{0.0, 0.0, 1.0}));
}

TEST(Real3Test, IndexAccess) {
  Double3 v{7.0, 8.0, 9.0};
  EXPECT_DOUBLE_EQ(v[0], 7.0);
  EXPECT_DOUBLE_EQ(v[1], 8.0);
  EXPECT_DOUBLE_EQ(v[2], 9.0);
  v[1] = -1.0;
  EXPECT_DOUBLE_EQ(v.y, -1.0);
}

TEST(Real3Test, PrecisionConversion) {
  Double3 d{1.5, 2.5, 3.5};
  Float3 f = d.As<float>();
  EXPECT_FLOAT_EQ(f.x, 1.5f);
  EXPECT_FLOAT_EQ(f.z, 3.5f);
}

TEST(Real3Test, DistanceFunctions) {
  Double3 a{0.0, 0.0, 0.0};
  Double3 b{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 9.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 3.0);
}

TEST(AABBTest, ExtendAndContains) {
  AABBd box;
  EXPECT_FALSE(box.Valid());
  box.Extend({1.0, 2.0, 3.0});
  EXPECT_TRUE(box.Valid());
  box.Extend({-1.0, 5.0, 0.0});
  EXPECT_EQ(box.min, (Double3{-1.0, 2.0, 0.0}));
  EXPECT_EQ(box.max, (Double3{1.0, 5.0, 3.0}));
  EXPECT_TRUE(box.Contains({0.0, 3.0, 1.0}));
  EXPECT_FALSE(box.Contains({2.0, 3.0, 1.0}));
}

TEST(AABBTest, SizeAndCenter) {
  AABBd box;
  box.Extend({0.0, 0.0, 0.0});
  box.Extend({2.0, 4.0, 6.0});
  EXPECT_EQ(box.Size(), (Double3{2.0, 4.0, 6.0}));
  EXPECT_EQ(box.Center(), (Double3{1.0, 2.0, 3.0}));
}

TEST(AABBTest, SquaredDistanceToPoint) {
  AABBd box;
  box.Extend({0.0, 0.0, 0.0});
  box.Extend({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({0.5, 0.5, 0.5}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({2.0, 0.5, 0.5}), 1.0);  // +x face
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({2.0, 2.0, 0.5}), 2.0);  // edge
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({-1.0, -1.0, -1.0}), 3.0);  // corner
}

TEST(MathTest, SphereVolumeDiameterRoundTrip) {
  for (double d : {0.1, 1.0, 7.3, 25.0}) {
    EXPECT_NEAR(math::SphereDiameter(math::SphereVolume(d)), d, 1e-12);
  }
  // V(10) = 4/3 pi 5^3
  EXPECT_NEAR(math::SphereVolume(10.0), 523.5987755982989, 1e-9);
}

TEST(MathTest, ClampNorm) {
  Double3 v{3.0, 4.0, 0.0};  // norm 5
  Double3 clamped = math::ClampNorm(v, 2.5);
  EXPECT_NEAR(clamped.Norm(), 2.5, 1e-12);
  EXPECT_NEAR(clamped.x / clamped.y, v.x / v.y, 1e-12);  // direction kept
  // Under the bound: unchanged.
  EXPECT_EQ(math::ClampNorm(v, 10.0), v);
  // Zero vector: unchanged (no NaN).
  EXPECT_EQ(math::ClampNorm(Double3{}, 1.0), (Double3{}));
}

TEST(MathTest, AlmostEqual) {
  EXPECT_TRUE(math::AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(math::AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(math::AlmostEqual(1e9, 1e9 + 1.0, 1e-8));
}

}  // namespace
}  // namespace biosim
