#include "core/param.h"

#include <gtest/gtest.h>

#include "core/simulation.h"

namespace biosim {
namespace {

TEST(ParamTest, DefaultsAreValid) {
  Param p;
  EXPECT_NO_THROW(p.Validate());
}

TEST(ParamTest, RejectsInvertedBounds) {
  Param p;
  p.min_bound = 10.0;
  p.max_bound = 10.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p.max_bound = 5.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(ParamTest, RejectsNonPositiveTimestep) {
  Param p;
  p.simulation_time_step = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p.simulation_time_step = -0.01;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(ParamTest, RejectsNegativePhysicsCoefficients) {
  Param p;
  p.repulsion_coefficient = -1.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = Param{};
  p.attraction_coefficient = -0.5;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = Param{};
  p.simulation_max_displacement = -3.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = Param{};
  p.default_adherence = -0.1;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = Param{};
  p.default_density = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = Param{};
  p.interaction_radius_margin = -1.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(ParamTest, ZeroMaxDisplacementIsValidBenchmarkBMode) {
  Param p;
  p.simulation_max_displacement = 0.0;
  EXPECT_NO_THROW(p.Validate());
}

TEST(ParamTest, ShardingRequiresTheFusedFastPath) {
  Param p;
  p.num_shards = 2;
  EXPECT_NO_THROW(p.Validate());  // cpu_fast_path defaults on
  p.cpu_fast_path = false;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(ParamTest, ShardingAndOverlapOpsRejectLoudly) {
  Param p;
  p.num_shards = 4;
  p.overlap_ops = true;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p.overlap_ops = false;
  EXPECT_NO_THROW(p.Validate());
}

TEST(ParamTest, SimulationConstructorValidates) {
  Param bad;
  bad.simulation_time_step = -1.0;
  EXPECT_THROW(Simulation sim(bad), std::invalid_argument);
}

}  // namespace
}  // namespace biosim
