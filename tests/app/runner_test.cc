#include "app/runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/checkpoint.h"
#include "gpu/gpu_mechanical_op.h"
#include "spatial/uniform_grid.h"

namespace biosim::app {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(RunnerTest, BuildsCellDivisionModelOnCpu) {
  RunConfig cfg;
  cfg.model_type = "cell_division";
  cfg.cells_per_dim = 4;
  auto sim = BuildSimulation(cfg);
  EXPECT_EQ(sim->rm().size(), 64u);
  EXPECT_STREQ(sim->mechanics_backend().name(), "cpu");
  EXPECT_STREQ(sim->environment().name(), "uniform-grid");
  // Every cell has the division behavior.
  EXPECT_EQ(sim->rm().behaviors_of(0).size(), 1u);
}

TEST(RunnerTest, BuildsRandomCloudSizedForDensity) {
  RunConfig cfg;
  cfg.model_type = "random_cloud";
  cfg.agents = 20000;
  cfg.density = 27.0;
  cfg.diameter = 10.0;
  auto sim = BuildSimulation(cfg);
  EXPECT_EQ(sim->rm().size(), 20000u);
  UniformGridEnvironment probe;
  probe.Update(sim->rm(), sim->param(), ExecMode::kSerial);
  double n = probe.MeanNeighborCount(sim->rm(), 20);
  EXPECT_GT(n, 18.0);
  EXPECT_LT(n, 30.0);
}

TEST(RunnerTest, BuildsGpuBackend) {
  RunConfig cfg;
  cfg.backend_type = "gpu";
  cfg.gpu_version = 2;
  cfg.gpu_device = "v100";
  cfg.cells_per_dim = 3;
  auto sim = BuildSimulation(cfg);
  auto* op = dynamic_cast<gpu::GpuMechanicalOp*>(&sim->mechanics_backend());
  ASSERT_NE(op, nullptr);
  EXPECT_TRUE(op->options().zorder_sort);
  EXPECT_EQ(op->options().device.name, "NVIDIA Tesla V100");
}

TEST(RunnerTest, ExecuteRunProducesOutputs) {
  RunConfig cfg;
  cfg.model_type = "cell_division";
  cfg.cells_per_dim = 3;
  cfg.steps = 5;
  cfg.timeseries_path = TempPath("run_ts.csv");
  cfg.vtk_path = TempPath("run.vtk");
  cfg.csv_path = TempPath("run.csv");
  cfg.checkpoint_path = TempPath("run.ckpt");

  RunSummary s = ExecuteRun(cfg);
  EXPECT_EQ(s.initial_agents, 27u);
  EXPECT_GE(s.final_agents, s.initial_agents);
  EXPECT_GT(s.wall_ms, 0.0);
  EXPECT_NE(s.profile.find("mechanical forces"), std::string::npos);

  // Timeseries has steps+1 rows (recorded before each step and after the
  // last) plus a header.
  std::ifstream ts(cfg.timeseries_path);
  ASSERT_TRUE(ts.good());
  std::string content((std::istreambuf_iterator<char>(ts)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 7);

  // Checkpoint restores to the final population.
  ResourceManager restored;
  ASSERT_TRUE(LoadCheckpoint(&restored, cfg.checkpoint_path));
  EXPECT_EQ(restored.size(), s.final_agents);

  for (const auto& p : {cfg.timeseries_path, cfg.vtk_path, cfg.csv_path,
                        cfg.checkpoint_path}) {
    std::remove(p.c_str());
  }
}

TEST(RunnerTest, TorusCloudRunsOnCpu) {
  RunConfig cfg;
  cfg.model_type = "random_cloud";
  cfg.agents = 2000;
  cfg.density = 27.0;
  cfg.boundary = "torus";
  cfg.steps = 3;
  RunSummary s = ExecuteRun(cfg);
  EXPECT_EQ(s.final_agents, 2000u);
}

TEST(RunnerTest, GpuRunReportsSimulatedTime) {
  RunConfig cfg;
  cfg.model_type = "random_cloud";
  cfg.agents = 2000;
  cfg.backend_type = "gpu";
  cfg.gpu_version = 1;
  cfg.steps = 2;
  RunSummary s = ExecuteRun(cfg);
  EXPECT_GT(s.gpu_simulated_ms, 0.0);
  EXPECT_NE(s.profile.find("gpu kernels (sim)"), std::string::npos);
}

TEST(RunnerTest, SanitizedGpuRunReportsCleanKernels) {
  RunConfig cfg;
  cfg.model_type = "random_cloud";
  cfg.agents = 1000;
  cfg.backend_type = "gpu";
  cfg.gpu_version = 3;  // shared-memory kernel: the hairiest hazard surface
  cfg.sanitize = true;
  cfg.steps = 2;
  RunSummary s = ExecuteRun(cfg);
  EXPECT_EQ(s.sanitizer_hazards, 0u) << s.sanitizer_report;
  EXPECT_NE(s.sanitizer_report.find("SANITIZER SUMMARY: 0 hazards"),
            std::string::npos);
}

TEST(RunnerTest, ReproducibleAcrossRuns) {
  RunConfig cfg;
  cfg.model_type = "cell_division";
  cfg.cells_per_dim = 3;
  cfg.steps = 6;
  RunSummary a = ExecuteRun(cfg);
  RunSummary b = ExecuteRun(cfg);
  EXPECT_EQ(a.final_agents, b.final_agents);
}

TEST(RunnerTest, UnwritableOutputFails) {
  RunConfig cfg;
  cfg.cells_per_dim = 2;
  cfg.steps = 1;
  cfg.vtk_path = "/nonexistent_dir_xyz/out.vtk";
  EXPECT_THROW(ExecuteRun(cfg), std::runtime_error);
}

}  // namespace
}  // namespace biosim::app
