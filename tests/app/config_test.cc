#include "app/config.h"

#include <gtest/gtest.h>

#include <fstream>

namespace biosim::app {
namespace {

TEST(ConfigTest, EmptyTextGivesDefaults) {
  RunConfig cfg = ParseConfigString("");
  EXPECT_EQ(cfg.steps, 10u);
  EXPECT_EQ(cfg.model_type, "cell_division");
  EXPECT_EQ(cfg.backend_type, "cpu");
}

TEST(ConfigTest, ParsesAllSections) {
  RunConfig cfg = ParseConfigString(R"(
[simulation]
steps = 123
seed = 9
max_bound = 500
timestep = 0.02
max_displacement = 1.5

[model]
type = random_cloud
agents = 777
density = 13
diameter = 12

[backend]
type = gpu
gpu_version = 3
gpu_device = v100
meter_stride = 4

[output]
timeseries = ts.csv
vtk = out.vtk
csv = out.csv
checkpoint = out.ckpt
)");
  EXPECT_EQ(cfg.steps, 123u);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_DOUBLE_EQ(cfg.max_bound, 500.0);
  EXPECT_DOUBLE_EQ(cfg.timestep, 0.02);
  EXPECT_DOUBLE_EQ(cfg.max_displacement, 1.5);
  EXPECT_EQ(cfg.model_type, "random_cloud");
  EXPECT_EQ(cfg.agents, 777u);
  EXPECT_DOUBLE_EQ(cfg.density, 13.0);
  EXPECT_DOUBLE_EQ(cfg.diameter, 12.0);
  EXPECT_EQ(cfg.backend_type, "gpu");
  EXPECT_EQ(cfg.gpu_version, 3);
  EXPECT_EQ(cfg.gpu_device, "v100");
  EXPECT_EQ(cfg.meter_stride, 4);
  EXPECT_EQ(cfg.timeseries_path, "ts.csv");
  EXPECT_EQ(cfg.vtk_path, "out.vtk");
  EXPECT_EQ(cfg.csv_path, "out.csv");
  EXPECT_EQ(cfg.checkpoint_path, "out.ckpt");
}

TEST(ConfigTest, CommentsAndWhitespaceIgnored) {
  RunConfig cfg = ParseConfigString(R"(
# full-line hash comment
; full-line semicolon comment
[simulation]
  steps   =   55   ; trailing comment
)");
  EXPECT_EQ(cfg.steps, 55u);
}

TEST(ConfigTest, UnknownSectionFailsWithLineNumber) {
  try {
    ParseConfigString("[nonsense]\nx = 1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("nonsense"), std::string::npos);
  }
}

TEST(ConfigTest, UnknownKeyFails) {
  EXPECT_THROW(ParseConfigString("[simulation]\nstepz = 5\n"),
               std::runtime_error);
}

TEST(ConfigTest, KeyOutsideSectionFails) {
  EXPECT_THROW(ParseConfigString("steps = 5\n"), std::runtime_error);
}

TEST(ConfigTest, MalformedNumberFails) {
  EXPECT_THROW(ParseConfigString("[simulation]\nsteps = five\n"),
               std::runtime_error);
  EXPECT_THROW(ParseConfigString("[simulation]\nsteps = 1.5\n"),
               std::runtime_error);  // integer key
}

TEST(ConfigTest, MissingEqualsFails) {
  EXPECT_THROW(ParseConfigString("[simulation]\nsteps 5\n"),
               std::runtime_error);
}

TEST(ConfigTest, BoundaryModes) {
  EXPECT_EQ(ParseConfigString("[simulation]\nboundary = torus\n").boundary,
            "torus");
  EXPECT_THROW(ParseConfigString("[simulation]\nboundary = moebius\n"),
               std::invalid_argument);
  // Torus + GPU is rejected at validation.
  EXPECT_THROW(ParseConfigString(
                   "[simulation]\nboundary = torus\n[backend]\ntype = gpu\n"),
               std::invalid_argument);
}

TEST(ConfigTest, SanitizeFlagParsesAndRequiresGpu) {
  RunConfig cfg = ParseConfigString(
      "[backend]\ntype = gpu\nsanitize = true\n");
  EXPECT_TRUE(cfg.sanitize);
  EXPECT_FALSE(ParseConfigString("[backend]\ntype = gpu\n").sanitize);
  // The sanitizer observes the simulated device: CPU runs reject it.
  EXPECT_THROW(ParseConfigString("[backend]\nsanitize = true\n"),
               std::invalid_argument);
  EXPECT_THROW(
      ParseConfigString("[backend]\ntype = gpu\nsanitize = maybe\n"),
      std::runtime_error);
}

TEST(ConfigTest, ParallelBlocksAndRacyGridBuildParseAndRequireGpu) {
  RunConfig cfg = ParseConfigString(
      "[backend]\ntype = gpu\nparallel_blocks = true\n"
      "racy_grid_build = true\n");
  EXPECT_TRUE(cfg.parallel_blocks);
  EXPECT_TRUE(cfg.racy_grid_build);
  EXPECT_FALSE(ParseConfigString("[backend]\ntype = gpu\n").parallel_blocks);
  EXPECT_FALSE(ParseConfigString("[backend]\ntype = gpu\n").racy_grid_build);
  // Both knobs configure the simulated device: CPU runs reject them.
  EXPECT_THROW(ParseConfigString("[backend]\nparallel_blocks = true\n"),
               std::invalid_argument);
  EXPECT_THROW(ParseConfigString("[backend]\nracy_grid_build = true\n"),
               std::invalid_argument);
}

TEST(ConfigTest, SimdAndPrecisionKeysParseAndValidate) {
  RunConfig cfg = ParseConfigString(
      "[simulation]\nsimd = true\nprecision = fp32\n");
  EXPECT_TRUE(cfg.simd);
  EXPECT_EQ(cfg.precision, "fp32");
  EXPECT_FALSE(ParseConfigString("").simd);
  EXPECT_EQ(ParseConfigString("").precision, "fp64");
  // The only precisions the kernel implements.
  EXPECT_THROW(ParseConfigString("[simulation]\nprecision = fp16\n"),
               std::invalid_argument);
  // Both knobs vectorize the *CPU* fused kernel: the GPU ladder has its
  // own FP32 versions, and without the fused path there is nothing to
  // vectorize.
  EXPECT_THROW(ParseConfigString(
                   "[simulation]\nsimd = true\n[backend]\ntype = gpu\n"),
               std::invalid_argument);
  EXPECT_THROW(ParseConfigString(
                   "[simulation]\nprecision = fp32\n[backend]\ntype = gpu\n"),
               std::invalid_argument);
  EXPECT_THROW(ParseConfigString(
                   "[simulation]\nsimd = true\ncpu_fast_path = false\n"),
               std::invalid_argument);
  EXPECT_THROW(
      ParseConfigString(
          "[simulation]\nprecision = fp32\ncpu_fast_path = false\n"),
      std::invalid_argument);
}

TEST(ConfigTest, SchedulerKnobsParseAndValidate) {
  RunConfig cfg = ParseConfigString(
      "[simulation]\nincremental_grid = false\noverlap_ops = true\n");
  EXPECT_FALSE(cfg.incremental_grid);
  EXPECT_TRUE(cfg.overlap_ops);
  // Defaults: incremental maintenance on (pure win), overlap opt-in.
  EXPECT_TRUE(ParseConfigString("").incremental_grid);
  EXPECT_FALSE(ParseConfigString("").overlap_ops);
  // The overlapped task graph schedules *host* ops; the simulated-GPU
  // backend runs its own pipeline.
  EXPECT_THROW(ParseConfigString(
                   "[simulation]\noverlap_ops = true\n[backend]\ntype = gpu\n"),
               std::invalid_argument);
}

TEST(ConfigTest, ShardKeysParseAndValidate) {
  RunConfig cfg = ParseConfigString(
      "[simulation]\nshards = 4\nshard_balance = adaptive\n");
  EXPECT_EQ(cfg.shards, 4u);
  EXPECT_EQ(cfg.shard_balance, "adaptive");
  // Defaults: unsharded, static plane split.
  EXPECT_EQ(ParseConfigString("").shards, 0u);
  EXPECT_EQ(ParseConfigString("").shard_balance, "static");
  // The only balance modes the partitioner implements.
  EXPECT_THROW(
      ParseConfigString("[simulation]\nshards = 2\nshard_balance = magic\n"),
      std::invalid_argument);
  // Sharding drives the fused CSR kernel per shard on the host: the GPU
  // backend and the non-fused path have no sharded pipeline.
  EXPECT_THROW(ParseConfigString(
                   "[simulation]\nshards = 2\n[backend]\ntype = gpu\n"),
               std::invalid_argument);
  EXPECT_THROW(ParseConfigString(
                   "[simulation]\nshards = 2\ncpu_fast_path = false\n"),
               std::invalid_argument);
  // The sharded pipeline schedules mechanics/diffusion itself; combining
  // it with the overlapped task graph must fail loudly, not race.
  EXPECT_THROW(ParseConfigString(
                   "[simulation]\nshards = 2\noverlap_ops = true\n"),
               std::invalid_argument);
}

TEST(ConfigTest, SubstanceKeysParseAndValidate) {
  RunConfig cfg = ParseConfigString(R"(
[model]
substance_resolution = 24
substance_diffusion = 80
substance_decay = 0.05
secretion_rate = 0.5
)");
  EXPECT_EQ(cfg.substance_resolution, 24u);
  EXPECT_DOUBLE_EQ(cfg.substance_diffusion, 80.0);
  EXPECT_DOUBLE_EQ(cfg.substance_decay, 0.05);
  EXPECT_DOUBLE_EQ(cfg.secretion_rate, 0.5);
  EXPECT_EQ(ParseConfigString("").substance_resolution, 0u);
  // A 1-voxel field cannot diffuse; 0 means "no substance".
  EXPECT_THROW(ParseConfigString("[model]\nsubstance_resolution = 1\n"),
               std::invalid_argument);
  EXPECT_THROW(ParseConfigString(
                   "[model]\nsubstance_resolution = 8\n"
                   "substance_diffusion = -1\n"),
               std::invalid_argument);
  // Secretion without a field to receive it is a config mistake, not a
  // silent no-op.
  EXPECT_THROW(ParseConfigString("[model]\nsecretion_rate = 0.5\n"),
               std::invalid_argument);
}

TEST(ConfigTest, ValidationRejectsBadEnumValues) {
  EXPECT_THROW(ParseConfigString("[model]\ntype = banana\n"),
               std::invalid_argument);
  EXPECT_THROW(ParseConfigString("[backend]\ntype = fpga\n"),
               std::invalid_argument);
  EXPECT_THROW(ParseConfigString("[backend]\ngpu_version = 9\n"),
               std::invalid_argument);
  EXPECT_THROW(ParseConfigString("[backend]\ngpu_device = 2080ti\n"),
               std::invalid_argument);
}

TEST(ConfigTest, ObservabilityOutputKeysParse) {
  RunConfig cfg = ParseConfigString(R"(
[output]
trace = trace.json
metrics = metrics.jsonl
metrics_every = 5
report = report.json
)");
  EXPECT_EQ(cfg.trace_path, "trace.json");
  EXPECT_EQ(cfg.metrics_path, "metrics.jsonl");
  EXPECT_EQ(cfg.metrics_every, 5u);
  EXPECT_EQ(cfg.report_path, "report.json");
  // Defaults: observability off, every-step snapshots when enabled.
  RunConfig defaults = ParseConfigString("");
  EXPECT_TRUE(defaults.trace_path.empty());
  EXPECT_TRUE(defaults.metrics_path.empty());
  EXPECT_EQ(defaults.metrics_every, 1u);
  EXPECT_TRUE(defaults.report_path.empty());
  // A zero snapshot interval would never emit anything: rejected.
  EXPECT_THROW(ParseConfigString("[output]\nmetrics_every = 0\n"),
               std::invalid_argument);
}

TEST(ConfigTest, FileRoundTrip) {
  std::string path = std::string(::testing::TempDir()) + "/cfg.ini";
  {
    std::ofstream out(path);
    out << "[simulation]\nsteps = 77\n";
  }
  RunConfig cfg = ParseConfigFile(path);
  EXPECT_EQ(cfg.steps, 77u);
  std::remove(path.c_str());
  EXPECT_THROW(ParseConfigFile("/nonexistent_xyz.ini"), std::runtime_error);
}

TEST(ConfigTest, ShippedExampleConfigsParse) {
  // The configs under examples/configs must stay valid.
  EXPECT_NO_THROW(ParseConfigFile(std::string(BIOSIM_SOURCE_DIR) +
                                  "/examples/configs/cell_division.ini"));
  EXPECT_NO_THROW(ParseConfigFile(std::string(BIOSIM_SOURCE_DIR) +
                                  "/examples/configs/gpu_random_cloud.ini"));
  EXPECT_NO_THROW(ParseConfigFile(std::string(BIOSIM_SOURCE_DIR) +
                                  "/examples/configs/steady_cloud.ini"));
}

}  // namespace
}  // namespace biosim::app
