// Sanitizer coverage of the production GPU pipeline: every kernel
// generation of the paper's version ladder (plus the grid build, device
// radix sort and persistent-mode apply kernel) must run hazard-free, while
// the deliberately-defective diagnostic kernels must each be caught.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "gpu/diagnostic_kernels.h"
#include "gpu/gpu_mechanical_op.h"
#include "gpusim/cuda_like.h"
#include "gpusim/sanitizer.h"
#include "spatial/null_environment.h"

namespace biosim::gpu {
namespace {

using gpusim::BlockCtx;
using gpusim::HazardKind;
using gpusim::Lane;

/// One mechanics step of the given paper version with the sanitizer
/// attached; returns the accumulated report.
gpusim::SanitizerReport RunSanitizedStep(int version,
                                         bool device_radix_sort = false,
                                         bool persistent = false) {
  ResourceManager rm;
  testutil::FillLatticeCells(&rm, 8, 10.0, 10.0, /*jitter=*/1.5);
  Param param;
  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(version);
  opts.sanitize = true;
  opts.device_radix_sort = device_radix_sort;
  if (persistent) {
    opts.zorder_sort = false;
    opts.persistent_device_state = true;
  }
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  if (persistent) {  // exercise the on-device apply kernel a second step
    op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  }
  return op.device().sanitizer()->report();
}

TEST(KernelSanitizerTest, BaselineFp64KernelIsClean) {
  gpusim::SanitizerReport r = RunSanitizedStep(0);
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(KernelSanitizerTest, Fp32KernelIsClean) {
  gpusim::SanitizerReport r = RunSanitizedStep(1);
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(KernelSanitizerTest, ZorderKernelIsClean) {
  gpusim::SanitizerReport r = RunSanitizedStep(2);
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(KernelSanitizerTest, SharedMemoryKernelIsClean) {
  gpusim::SanitizerReport r = RunSanitizedStep(3);
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(KernelSanitizerTest, NeighborParallelKernelIsClean) {
  gpusim::SanitizerReport r = RunSanitizedStep(4);
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(KernelSanitizerTest, DeviceRadixSortIsClean) {
  gpusim::SanitizerReport r = RunSanitizedStep(2, /*device_radix_sort=*/true);
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(KernelSanitizerTest, PersistentModeApplyKernelIsClean) {
  gpusim::SanitizerReport r = RunSanitizedStep(1, false, /*persistent=*/true);
  EXPECT_TRUE(r.clean()) << r.ToString();
}

// --- diagnostic kernels: each planted bug must be caught -----------------

class DiagnosticKernelTest : public ::testing::Test {
 protected:
  DiagnosticKernelTest() { san_ = rt_.device().EnableSanitizer(); }

  gpusim::cuda::Runtime rt_{gpusim::DeviceSpec::GTX1080Ti()};
  gpusim::Sanitizer* san_ = nullptr;
};

TEST_F(DiagnosticKernelTest, RacyGridBuildTriggersGlobalRacecheck) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 64, 0.0, 30.0, 10.0);
  Param param;
  auto g = ComputeGridParams<float>(rm, param, 0.0);
  size_t n = rm.size();
  size_t boxes = g.total_boxes();

  MechDeviceState<float> s;
  s.x = rt_.Malloc<float>(n);
  s.y = rt_.Malloc<float>(n);
  s.z = rt_.Malloc<float>(n);
  s.successors = rt_.Malloc<int32_t>(n);
  s.box_start = rt_.Malloc<int32_t>(boxes);
  s.box_count = rt_.Malloc<int32_t>(boxes);
  for (size_t i = 0; i < n; ++i) {
    s.x[i] = static_cast<float>(rm.positions()[i].x);
    s.y[i] = static_cast<float>(rm.positions()[i].y);
    s.z[i] = static_cast<float>(rm.positions()[i].z);
  }

  rt_.LaunchKernel("ug_reset", gpusim::cuda::Runtime::BlocksFor(boxes, 128),
                   128,
                   [&](BlockCtx& blk) { UgResetKernelBody(blk, s, boxes); });
  EXPECT_TRUE(san_->report().clean()) << san_->report().ToString();

  rt_.LaunchKernel("ug_build_racy", gpusim::cuda::Runtime::BlocksFor(n, 128),
                   128,
                   [&](BlockCtx& blk) { RacyUgBuildKernelBody(blk, s, g, n); });
  EXPECT_GE(san_->report().Count(HazardKind::kGlobalRace), 1u)
      << san_->report().ToString();
  EXPECT_EQ(san_->report().hazards()[0].kernel, "ug_build_racy");
}

TEST_F(DiagnosticKernelTest, NonAtomicSharedCounterTriggersRacecheck) {
  rt_.LaunchKernel("shared_race", 2, 64,
                   [&](BlockCtx& blk) { SharedRaceKernelBody(blk); });
  EXPECT_GE(san_->report().Count(HazardKind::kSharedRace), 1u)
      << san_->report().ToString();
}

TEST_F(DiagnosticKernelTest, OffByOneReadTriggersMemcheck) {
  const size_t n = 128;
  auto buf = rt_.Malloc<float>(n);
  auto out = rt_.Malloc<float>(n);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = 1.0f;
  }
  rt_.LaunchKernel("oob_walk", gpusim::cuda::Runtime::BlocksFor(n, 64), 64,
                   [&](BlockCtx& blk) {
                     OobReadKernelBody(blk, buf, out, n);
                   });
  ASSERT_EQ(san_->report().Count(HazardKind::kOutOfBounds), 1u)
      << san_->report().ToString();
  const gpusim::Hazard& h = san_->report().hazards()[0];
  EXPECT_EQ(h.addr, buf.addr(n));
  EXPECT_EQ(h.kernel, "oob_walk");
}

TEST_F(DiagnosticKernelTest, ZeroFillRelianceTriggersMemcheck) {
  auto out = rt_.Malloc<int32_t>(2);
  rt_.LaunchKernel("uninit_reduce", 2, 64, [&](BlockCtx& blk) {
    UninitSharedReadKernelBody(blk, out);
  });
  EXPECT_GE(san_->report().Count(HazardKind::kUninitializedRead), 1u)
      << san_->report().ToString();
}

TEST_F(DiagnosticKernelTest, ConditionalBarrierTriggersSynccheck) {
  auto out = rt_.Malloc<int32_t>(256);
  rt_.LaunchKernel("divergent_barrier", 4, 64, [&](BlockCtx& blk) {
    DivergentBarrierKernelBody(blk, out);
  });
  EXPECT_EQ(san_->report().Count(HazardKind::kBarrierDivergence), 1u)
      << san_->report().ToString();
}

}  // namespace
}  // namespace biosim::gpu
