// Option-combination tests for the GPU offload: the real device radix sort
// path, block-size independence of results, and FP64 variants of the
// optional kernels.
#include <gtest/gtest.h>

#include <map>

#include "../test_util.h"
#include "gpu/gpu_mechanical_op.h"
#include "gpusim/profiler.h"
#include "spatial/morton.h"
#include "spatial/null_environment.h"

namespace biosim::gpu {
namespace {

std::map<AgentUid, Double3> RunAndCollect(GpuMechanicsOptions opts,
                                          uint64_t seed = 21) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 700, 0.0, 55.0, 10.0, seed);
  Param param;
  GpuMechanicalOp op(std::move(opts));
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  std::map<AgentUid, Double3> out;
  for (size_t i = 0; i < rm.size(); ++i) {
    out[rm.uids()[i]] = op.last_displacements()[i];
  }
  return out;
}

TEST(GpuOptionsTest, DeviceRadixSortMatchesModeledSortResults) {
  GpuMechanicsOptions modeled = GpuMechanicsOptions::Version(2);
  GpuMechanicsOptions real = GpuMechanicsOptions::Version(2);
  real.device_radix_sort = true;
  auto a = RunAndCollect(modeled);
  auto b = RunAndCollect(real);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [uid, disp] : a) {
    const Double3& other = b.at(uid);
    // Both sorts order by the same Morton keys; ties may break differently
    // (stable vs stable over a different key computation path), which can
    // reorder FP sums.
    ASSERT_NEAR(disp.x, other.x, 1e-4);
    ASSERT_NEAR(disp.y, other.y, 1e-4);
    ASSERT_NEAR(disp.z, other.z, 1e-4);
  }
}

TEST(GpuOptionsTest, DeviceRadixSortLaunchesSortKernels) {
  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(2);
  opts.device_radix_sort = true;
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 50.0, 10.0);
  Param param;
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  gpusim::ProfileReport report(op.device());
  EXPECT_NE(report.Find("radix_count"), nullptr);
  EXPECT_NE(report.Find("radix_scan"), nullptr);
  EXPECT_NE(report.Find("radix_scatter"), nullptr);
  EXPECT_EQ(report.Find("zorder_sort (modeled)"), nullptr);
}

TEST(GpuOptionsTest, DeviceRadixSortActuallySortsTheAgents) {
  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(2);
  opts.device_radix_sort = true;
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 400, 0.0, 64.0, 8.0);
  Param param;
  // Freeze the agents so the post-step order is exactly the sorted order
  // (displacements would otherwise move agents across Morton bins).
  param.simulation_max_displacement = 0.0;
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);

  // The op sorts with cell = largest diameter (8.0 here).
  AABBd b = rm.Bounds();
  uint64_t prev = 0;
  for (size_t i = 0; i < rm.size(); ++i) {
    uint64_t key = MortonEncodePosition(rm.positions()[i], b.min,
                                        rm.LargestDiameter());
    ASSERT_GE(key, prev) << "row " << i;
    prev = key;
  }
}

TEST(GpuOptionsTest, ResultsIndependentOfBlockSize) {
  auto base = RunAndCollect(GpuMechanicsOptions::Version(1));
  for (size_t bd : {32, 64, 512}) {
    GpuMechanicsOptions opts = GpuMechanicsOptions::Version(1);
    opts.block_dim = bd;
    auto got = RunAndCollect(opts);
    for (const auto& [uid, disp] : base) {
      ASSERT_EQ(got.at(uid), disp) << "block_dim " << bd;
    }
  }
}

TEST(GpuOptionsTest, ResultsIndependentOfMeterStride) {
  // Sampling only affects counters, never functional results.
  auto exact = RunAndCollect(GpuMechanicsOptions::Version(2));
  GpuMechanicsOptions sampled_opts = GpuMechanicsOptions::Version(2);
  sampled_opts.meter_stride = 16;
  auto sampled = RunAndCollect(sampled_opts);
  for (const auto& [uid, disp] : exact) {
    ASSERT_EQ(sampled.at(uid), disp);
  }
}

TEST(GpuOptionsTest, SharedKernelWorksInFp64) {
  // v3 is FP32 in the paper's ladder, but the template must also hold for
  // FP64 (smaller shared staging capacity path). Compare against the plain
  // FP64 kernel on the identical population.
  GpuMechanicsOptions shared_opts = GpuMechanicsOptions::Version(3);
  shared_opts.precision = GpuPrecision::kFp64;
  shared_opts.zorder_sort = false;
  auto got = RunAndCollect(shared_opts, 77);
  auto ref = RunAndCollect(GpuMechanicsOptions::Version(0), 77);
  ASSERT_EQ(got.size(), ref.size());
  for (const auto& [uid, want] : ref) {
    ASSERT_NEAR(got.at(uid).x, want.x, 1e-9);
    ASSERT_NEAR(got.at(uid).y, want.y, 1e-9);
    ASSERT_NEAR(got.at(uid).z, want.z, 1e-9);
  }
}

TEST(GpuOptionsTest, NeighborParallelWorksInFp64) {
  GpuMechanicsOptions opts;
  opts.precision = GpuPrecision::kFp64;
  opts.neighbor_parallel = true;
  auto got = RunAndCollect(opts, 78);
  auto ref = RunAndCollect(GpuMechanicsOptions::Version(0), 78);
  for (const auto& [uid, disp] : ref) {
    ASSERT_NEAR(got.at(uid).x, disp.x, 1e-9);
    ASSERT_NEAR(got.at(uid).y, disp.y, 1e-9);
    ASSERT_NEAR(got.at(uid).z, disp.z, 1e-9);
  }
}

}  // namespace
}  // namespace biosim::gpu
