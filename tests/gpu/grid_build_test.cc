// Device-side uniform-grid construction must agree with the host-side grid.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "../test_util.h"
#include "gpu/grid_build_kernels.h"
#include "gpusim/cuda_like.h"
#include "gpusim/profiler.h"
#include "spatial/uniform_grid.h"

namespace biosim::gpu {
namespace {

using gpusim::BlockCtx;
using gpusim::Lane;

class GridBuildTest : public ::testing::Test {
 protected:
  void BuildOnDevice(const ResourceManager& rm, double fixed_box = 0.0) {
    Param param;
    g_ = ComputeGridParams<float>(rm, param, fixed_box);
    size_t n = rm.size();
    size_t boxes = g_.total_boxes();

    s_.x = rt_.Malloc<float>(n);
    s_.y = rt_.Malloc<float>(n);
    s_.z = rt_.Malloc<float>(n);
    s_.successors = rt_.Malloc<int32_t>(n);
    s_.box_start = rt_.Malloc<int32_t>(boxes);
    s_.box_count = rt_.Malloc<int32_t>(boxes);
    for (size_t i = 0; i < n; ++i) {
      s_.x[i] = static_cast<float>(rm.positions()[i].x);
      s_.y[i] = static_cast<float>(rm.positions()[i].y);
      s_.z[i] = static_cast<float>(rm.positions()[i].z);
    }

    rt_.LaunchKernel("ug_reset", gpusim::cuda::Runtime::BlocksFor(boxes, 128),
                     128, [&](BlockCtx& blk) {
                       UgResetKernelBody(blk, s_, boxes);
                     });
    rt_.LaunchKernel("ug_build", gpusim::cuda::Runtime::BlocksFor(n, 128),
                     128, [&](BlockCtx& blk) {
                       UgBuildKernelBody(blk, s_, g_, n);
                     });
  }

  gpusim::cuda::Runtime rt_{gpusim::DeviceSpec::GTX1080Ti()};
  MechDeviceState<float> s_;
  GridParams<float> g_;
};

TEST_F(GridBuildTest, ResetMarksAllBoxesEmpty) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 10, 0.0, 50.0, 10.0);
  BuildOnDevice(rm);
  // Rerun just the reset kernel and verify.
  size_t boxes = g_.total_boxes();
  rt_.LaunchKernel("ug_reset", gpusim::cuda::Runtime::BlocksFor(boxes, 128),
                   128,
                   [&](BlockCtx& blk) { UgResetKernelBody(blk, s_, boxes); });
  for (size_t b = 0; b < boxes; ++b) {
    ASSERT_EQ(s_.box_start[b], kEmptyBox);
    ASSERT_EQ(s_.box_count[b], 0);
  }
}

TEST_F(GridBuildTest, ChainsContainEveryAgentExactlyOnce) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 80.0, 10.0);
  BuildOnDevice(rm);

  std::set<int32_t> seen;
  for (size_t b = 0; b < g_.total_boxes(); ++b) {
    int32_t chain = 0;
    for (int32_t j = s_.box_start[b]; j != kEmptyBox; j = s_.successors[j]) {
      ASSERT_TRUE(seen.insert(j).second);
      ++chain;
    }
    ASSERT_EQ(chain, s_.box_count[b]);
  }
  EXPECT_EQ(seen.size(), rm.size());
}

TEST_F(GridBuildTest, AgentsLandInTheBoxOfTheirPosition) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 300, 0.0, 60.0, 12.0);
  BuildOnDevice(rm);
  for (size_t b = 0; b < g_.total_boxes(); ++b) {
    for (int32_t j = s_.box_start[b]; j != kEmptyBox; j = s_.successors[j]) {
      size_t expected = g_.BoxOf(s_.x[j], s_.y[j], s_.z[j]);
      ASSERT_EQ(expected, b);
    }
  }
}

TEST_F(GridBuildTest, MatchesHostGridOccupancy) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 400, 0.0, 100.0, 10.0);
  BuildOnDevice(rm);

  Param param;
  UniformGridEnvironment host;
  host.Update(rm, param, ExecMode::kSerial);

  // Same geometry?
  ASSERT_EQ(static_cast<int32_t>(host.num_boxes_axis().x), g_.nx);
  ASSERT_EQ(static_cast<int32_t>(host.num_boxes_axis().y), g_.ny);
  ASSERT_EQ(static_cast<int32_t>(host.num_boxes_axis().z), g_.nz);

  // Same membership per box (order may differ).
  for (size_t b = 0; b < g_.total_boxes(); ++b) {
    std::set<int32_t> device_members;
    for (int32_t j = s_.box_start[b]; j != kEmptyBox; j = s_.successors[j]) {
      device_members.insert(j);
    }
    std::set<int32_t> host_members;
    for (int32_t j = host.box_start(b); j != UniformGridEnvironment::kEmpty;
         j = host.successors()[j]) {
      host_members.insert(j);
    }
    ASSERT_EQ(device_members, host_members) << "box " << b;
  }
}

TEST_F(GridBuildTest, BuildKernelUsesAtomics) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 1000, 0.0, 30.0, 10.0);  // dense: conflicts
  BuildOnDevice(rm);
  gpusim::ProfileReport report(rt_.device());
  const auto* build = report.Find("ug_build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->atomic_ops, 2u * rm.size());  // exchange + count
  // Dense population: some warps must have had same-box conflicts.
  EXPECT_GT(build->atomic_serialized, 0u);
}

}  // namespace
}  // namespace biosim::gpu
