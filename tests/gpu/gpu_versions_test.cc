// Performance-shape properties of the GPU version ladder — the mechanisms
// behind the paper's Fig. 8/9, asserted on counters rather than times where
// possible so the tests are robust.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "gpu/gpu_mechanical_op.h"
#include "gpusim/profiler.h"
#include "spatial/null_environment.h"

namespace biosim::gpu {
namespace {

struct RunResult {
  double sim_ms;             // simulated device time for one step
  gpusim::KernelStats mech;  // aggregated mech kernel counters
  uint64_t h2d_bytes;
};

/// Test-scale device: the GTX 1080 Ti with L2 shrunk so that the test's
/// 20k-agent working set exceeds it, reproducing the benchmark-A regime
/// (262k+ agents vs 2.75 MB L2) at a size the suite can afford to simulate
/// exactly (meter stride 1).
gpusim::DeviceSpec TestScaleSpec() {
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::GTX1080Ti();
  spec.l2_capacity_bytes = 128 * 1024;
  // Fixed per-call overheads are scaled down with the problem (at 262k+
  // agents they are negligible next to the data; at 20k they would mask
  // the bandwidth effects the assertions are about).
  spec.pcie_latency_us = 1.0;
  spec.launch_overhead_us = 0.5;
  return spec;
}

enum class Layout {
  kLattice,    // benchmark A at creation: memory order == spatial order
  kScrambled,  // benchmark A after many divisions: order decayed
};

RunResult RunOneStep(int version, Layout layout, size_t per_dim = 28,
                     double spacing = 10.0) {
  ResourceManager rm;
  testutil::FillLatticeCells(&rm, per_dim, spacing, 10.0, /*jitter=*/1.5);
  if (layout == Layout::kScrambled) {
    testutil::ShuffleAgents(&rm);
  }
  Param param;
  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(version, TestScaleSpec());
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);

  gpusim::ProfileReport report(op.device());
  const auto* mech = report.Find("mech_interaction");
  if (mech == nullptr) {
    mech = report.Find("mech_shared");
  }
  RunResult r;
  r.sim_ms = op.SimulatedMs();
  r.mech = *mech;
  r.h2d_bytes = op.device().transfers().h2d_bytes;
  return r;
}

TEST(GpuVersionsTest, Fp32HalvesTransferAndKernelTraffic) {
  auto v0 = RunOneStep(0, Layout::kLattice);
  auto v1 = RunOneStep(1, Layout::kLattice);
  EXPECT_NEAR(static_cast<double>(v0.h2d_bytes) / v1.h2d_bytes, 2.0, 0.01);
  double traffic_ratio =
      static_cast<double>(v0.mech.requested_read_bytes) /
      static_cast<double>(v1.mech.requested_read_bytes);
  // Positions/diameters halve; successor/box_start loads stay int32, so the
  // ratio is slightly below 2.
  EXPECT_GT(traffic_ratio, 1.5);
  EXPECT_LE(traffic_ratio, 2.01);
}

TEST(GpuVersionsTest, Fp32IsRoughlyTwiceAsFast) {
  // The paper's Improvement I result: a memory-bound kernel speeds up ~2x
  // when the data shrinks from FP64 to FP32.
  // On benchmark A's coalescing-friendly layout the kernel is bandwidth
  // bound, so halving the element size halves the time.
  auto v0 = RunOneStep(0, Layout::kLattice);
  auto v1 = RunOneStep(1, Layout::kLattice);
  double speedup = v0.sim_ms / v1.sim_ms;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 2.8);
}

TEST(GpuVersionsTest, ZOrderSortingReducesTransactionsAndDramTraffic) {
  // Improvement II repairs the decayed layout of an aged population.
  auto v1 = RunOneStep(1, Layout::kScrambled);
  auto v2 = RunOneStep(2, Layout::kScrambled);
  // Same requested bytes (same algorithm, same data sizes)...
  EXPECT_NEAR(static_cast<double>(v2.mech.requested_read_bytes),
              static_cast<double>(v1.mech.requested_read_bytes),
              0.02 * static_cast<double>(v1.mech.requested_read_bytes));
  // ...but fewer coalesced transactions and fewer DRAM bytes.
  EXPECT_LT(v2.mech.read_transactions, v1.mech.read_transactions);
  EXPECT_LT(v2.mech.dram_read_bytes, v1.mech.dram_read_bytes);
}

TEST(GpuVersionsTest, ZOrderSortingSpeedsUpTheKernel) {
  auto v1 = RunOneStep(1, Layout::kScrambled);
  auto v2 = RunOneStep(2, Layout::kScrambled);
  // Paper: 2.6x on the full operation; we assert a solid kernel-level win.
  EXPECT_GT(v1.mech.total_ms / v2.mech.total_ms, 1.5);
}

TEST(GpuVersionsTest, SharedMemoryVersionIsSlower) {
  // The paper's negative result (Section VI): Improvement III *worsens*
  // performance because of append atomics and boundary divergence.
  auto v2 = RunOneStep(2, Layout::kScrambled);
  auto v3 = RunOneStep(3, Layout::kScrambled);
  EXPECT_GT(v3.sim_ms, v2.sim_ms);
  // And the mechanism is visible in the counters:
  EXPECT_GT(v3.mech.atomic_serialized, 100u);
  EXPECT_LT(v3.mech.SimdEfficiency(), v2.mech.SimdEfficiency());
}

TEST(GpuVersionsTest, SharedMemoryVersionUsesSharedTraffic) {
  auto v2 = RunOneStep(2, Layout::kScrambled);
  auto v3 = RunOneStep(3, Layout::kScrambled);
  EXPECT_EQ(v2.mech.shared_bytes, 0u);
  EXPECT_GT(v3.mech.shared_bytes, 0u);
}

TEST(GpuVersionsTest, KernelIsMemoryBoundNotComputeBound) {
  // Fig. 12's finding: the kernel sits near the bandwidth roof, an order of
  // magnitude under the FP32 peak.
  auto v2 = RunOneStep(2, Layout::kScrambled);
  EXPECT_GT(v2.mech.memory_ms, v2.mech.compute_ms);
  gpusim::DeviceSpec spec = TestScaleSpec();
  EXPECT_LT(v2.mech.AchievedGflops(), spec.fp32_gflops / 4.0);
}

TEST(GpuVersionsTest, L2HitFractionGrowsWithDensity) {
  // Paper: L2 read share 39.4% (n=6) -> 41.3% (n=47): denser neighborhoods
  // reuse neighbor data more.
  auto sparse = RunOneStep(2, Layout::kScrambled, 28, 16.0);
  auto dense = RunOneStep(2, Layout::kScrambled, 28, 9.0);
  EXPECT_GT(dense.mech.L2ReadHitFraction(), sparse.mech.L2ReadHitFraction());
}

TEST(GpuVersionsTest, VersionPresetsMatchTheLadder) {
  auto v0 = GpuMechanicsOptions::Version(0);
  EXPECT_EQ(v0.precision, GpuPrecision::kFp64);
  EXPECT_FALSE(v0.zorder_sort);
  EXPECT_FALSE(v0.use_shared_memory);
  auto v1 = GpuMechanicsOptions::Version(1);
  EXPECT_EQ(v1.precision, GpuPrecision::kFp32);
  EXPECT_FALSE(v1.zorder_sort);
  auto v2 = GpuMechanicsOptions::Version(2);
  EXPECT_TRUE(v2.zorder_sort);
  EXPECT_FALSE(v2.use_shared_memory);
  auto v3 = GpuMechanicsOptions::Version(3);
  EXPECT_TRUE(v3.zorder_sort);
  EXPECT_TRUE(v3.use_shared_memory);
}

}  // namespace
}  // namespace biosim::gpu
