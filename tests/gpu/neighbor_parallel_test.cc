// Tests for the neighbor-parallel (warp-per-cell) kernel — the paper's
// Section-VI future-work hypothesis, implemented as GPU version 4.
#include <gtest/gtest.h>

#include <map>

#include "../test_util.h"
#include "gpu/gpu_mechanical_op.h"
#include "gpusim/profiler.h"
#include "spatial/null_environment.h"
#include "spatial/uniform_grid.h"
#include "physics/mechanical_forces_op.h"

namespace biosim::gpu {
namespace {

std::map<AgentUid, Double3> CpuReference(const ResourceManager& rm,
                                         const Param& param) {
  ResourceManager copy;
  for (size_t i = 0; i < rm.size(); ++i) {
    NewAgentSpec s;
    s.position = rm.positions()[i];
    s.diameter = rm.diameters()[i];
    s.adherence = rm.adherences()[i];
    s.tractor_force = rm.tractor_forces()[i];
    copy.AddAgent(std::move(s));
  }
  UniformGridEnvironment env;
  env.Update(copy, param, ExecMode::kSerial);
  MechanicalForcesOp op;
  op.ComputeDisplacements(copy, env, param, ExecMode::kSerial);
  std::map<AgentUid, Double3> out;
  for (size_t i = 0; i < copy.size(); ++i) {
    out[rm.uids()[i]] = op.displacements()[i];
  }
  return out;
}

TEST(NeighborParallelTest, Version4PresetEnablesIt) {
  auto v4 = GpuMechanicsOptions::Version(4);
  EXPECT_TRUE(v4.neighbor_parallel);
  EXPECT_TRUE(v4.zorder_sort);
  EXPECT_FALSE(v4.use_shared_memory);
  EXPECT_EQ(v4.precision, GpuPrecision::kFp32);
}

TEST(NeighborParallelTest, MatchesCpuReference) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 800, 0.0, 60.0, 10.0, /*seed=*/41);
  Param param;
  auto expected = CpuReference(rm, param);

  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(4);
  opts.zorder_sort = false;  // keep rows aligned with the reference
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);

  for (size_t i = 0; i < rm.size(); ++i) {
    const Double3& want = expected.at(rm.uids()[i]);
    ASSERT_NEAR(op.last_displacements()[i].x, want.x, 2e-4);
    ASSERT_NEAR(op.last_displacements()[i].y, want.y, 2e-4);
    ASSERT_NEAR(op.last_displacements()[i].z, want.z, 2e-4);
  }
}

TEST(NeighborParallelTest, MatchesCpuReferenceDense) {
  // Very dense cloud: long chains per box, the case v4 exists for.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 2000, 0.0, 30.0, 10.0, /*seed=*/43);
  Param param;
  auto expected = CpuReference(rm, param);

  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(4);
  opts.zorder_sort = false;
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);

  for (size_t i = 0; i < rm.size(); ++i) {
    const Double3& want = expected.at(rm.uids()[i]);
    ASSERT_NEAR(op.last_displacements()[i].x, want.x, 5e-4);
    ASSERT_NEAR(op.last_displacements()[i].y, want.y, 5e-4);
    ASSERT_NEAR(op.last_displacements()[i].z, want.z, 5e-4);
  }
}

TEST(NeighborParallelTest, UsesTheDedicatedKernel) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 50.0, 10.0);
  Param param;
  GpuMechanicalOp op(GpuMechanicsOptions::Version(4));
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  gpusim::ProfileReport report(op.device());
  EXPECT_NE(report.Find("mech_neighbor_parallel"), nullptr);
  EXPECT_EQ(report.Find("mech_interaction"), nullptr);
}

TEST(NeighborParallelTest, BenefitGrowsWithDensity) {
  // The paper's hypothesis: "parallelizing the serial loop over the
  // neighborhood alleviates the bottleneck that is manifested [at high
  // density]" — i.e. the warp-per-cell kernel's advantage over
  // thread-per-cell must grow with neighborhood density.
  auto kernel_ms = [](int version, size_t n, double space) {
    ResourceManager rm;
    testutil::FillRandomCells(&rm, n, 0.0, space, 10.0, /*seed=*/11);
    Param param;
    GpuMechanicsOptions opts = GpuMechanicsOptions::Version(version);
    opts.zorder_sort = false;  // isolate the kernel difference
    GpuMechanicalOp op(opts);
    NullEnvironment env;
    env.Update(rm, param, ExecMode::kSerial);
    op.Step(rm, env, param, ExecMode::kSerial, nullptr);
    gpusim::ProfileReport report(op.device());
    const auto* k = report.Find("mech_interaction");
    if (k == nullptr) {
      k = report.Find("mech_neighbor_parallel");
    }
    return k->total_ms;
  };

  // Dense: hundreds of neighbors per agent -> the per-thread chain walk is
  // latency-bound in v1 and the population is too small to hide it with
  // other warps; v4's 27-way split shortens the chain.
  double dense_v1 = kernel_ms(1, 1500, 20.0);
  double dense_v4 = kernel_ms(4, 1500, 20.0);
  EXPECT_LT(dense_v4, dense_v1);

  EXPECT_GT(dense_v1 / dense_v4, 1.3);

  // Contrast case: a large, moderate-density population where v1 has
  // plenty of warps to hide latency and is bandwidth/issue-bound — there is
  // no serial-loop bottleneck to relieve, so v4 brings no meaningful win.
  double bw_v1 = kernel_ms(1, 40000, 100.0);
  double bw_v4 = kernel_ms(4, 40000, 100.0);
  EXPECT_LT(bw_v1 / bw_v4, 1.15);
}

}  // namespace
}  // namespace biosim::gpu
