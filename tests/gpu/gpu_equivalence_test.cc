// Functional equivalence: every GPU kernel generation, on both front-ends,
// must compute the same displacements as the CPU reference operation.
#include <gtest/gtest.h>

#include <map>

#include "../test_util.h"
#include "gpu/gpu_mechanical_op.h"
#include "physics/mechanical_forces_op.h"
#include "spatial/null_environment.h"
#include "spatial/uniform_grid.h"

namespace biosim::gpu {
namespace {

struct Config {
  int version;  // 0..3
  GpuBackendKind backend;
};

/// CPU-reference displacements keyed by agent uid.
std::map<AgentUid, Double3> CpuReference(const ResourceManager& rm,
                                         const Param& param) {
  // Work on a copy so the reference never perturbs the input.
  ResourceManager copy;
  for (size_t i = 0; i < rm.size(); ++i) {
    NewAgentSpec s;
    s.position = rm.positions()[i];
    s.diameter = rm.diameters()[i];
    s.adherence = rm.adherences()[i];
    s.density = rm.densities()[i];
    s.tractor_force = rm.tractor_forces()[i];
    copy.AddAgent(std::move(s));
  }
  UniformGridEnvironment env;
  env.Update(copy, param, ExecMode::kSerial);
  MechanicalForcesOp op;
  op.ComputeDisplacements(copy, env, param, ExecMode::kSerial);
  std::map<AgentUid, Double3> out;
  for (size_t i = 0; i < copy.size(); ++i) {
    // The copy re-assigns uids 0..n-1 in the same order as rm's rows, so
    // map through rm's uid at the same row.
    out[rm.uids()[i]] = op.displacements()[i];
  }
  return out;
}

class GpuEquivalenceTest : public ::testing::TestWithParam<Config> {};

TEST_P(GpuEquivalenceTest, DisplacementsMatchCpuReference) {
  const Config& cfg = GetParam();
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 600, 0.0, 60.0, 10.0, /*seed=*/31);
  Param param;

  auto expected = CpuReference(rm, param);

  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(cfg.version);
  opts.backend = cfg.backend;
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);

  // Snapshot positions to verify the applied displacement too.
  std::map<AgentUid, Double3> pos_before;
  for (size_t i = 0; i < rm.size(); ++i) {
    pos_before[rm.uids()[i]] = rm.positions()[i];
  }

  op.Step(rm, env, param, ExecMode::kSerial, nullptr);

  double tol = cfg.version == 0 ? 1e-12 : 2e-4;  // FP64 vs FP32 paths
  ASSERT_EQ(op.last_displacements().size(), rm.size());
  for (size_t i = 0; i < rm.size(); ++i) {
    AgentUid uid = rm.uids()[i];
    const Double3& got = op.last_displacements()[i];
    const Double3& want = expected.at(uid);
    ASSERT_NEAR(got.x, want.x, tol) << "uid " << uid;
    ASSERT_NEAR(got.y, want.y, tol) << "uid " << uid;
    ASSERT_NEAR(got.z, want.z, tol) << "uid " << uid;
    // And the op applied exactly that displacement.
    Double3 applied = rm.positions()[i] - pos_before.at(uid);
    ASSERT_NEAR(applied.x, got.x, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVersionsBothBackends, GpuEquivalenceTest,
    ::testing::Values(Config{0, GpuBackendKind::kCudaLike},
                      Config{1, GpuBackendKind::kCudaLike},
                      Config{2, GpuBackendKind::kCudaLike},
                      Config{3, GpuBackendKind::kCudaLike},
                      Config{0, GpuBackendKind::kOpenClLike},
                      Config{2, GpuBackendKind::kOpenClLike},
                      Config{3, GpuBackendKind::kOpenClLike}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return std::string("v") + std::to_string(info.param.version) +
             (info.param.backend == GpuBackendKind::kCudaLike ? "_cuda"
                                                              : "_opencl");
    });

TEST(GpuEquivalenceEdgeTest, EmptyPopulationIsNoop) {
  ResourceManager rm;
  Param param;
  GpuMechanicalOp op(GpuMechanicsOptions::Version(2));
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);  // must not crash
  EXPECT_EQ(rm.size(), 0u);
}

TEST(GpuEquivalenceEdgeTest, SingleAgentOnlyTractorForce) {
  ResourceManager rm;
  NewAgentSpec s;
  s.position = {50, 50, 50};
  s.diameter = 10.0;
  s.adherence = 0.001;
  s.tractor_force = {10.0, 0.0, 0.0};
  rm.AddAgent(std::move(s));
  Param param;
  GpuMechanicalOp op(GpuMechanicsOptions::Version(1));
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  EXPECT_NEAR(op.last_displacements()[0].x,
              10.0 * param.simulation_time_step, 1e-6);
}

TEST(GpuEquivalenceEdgeTest, DenseClusterSharedKernelOverflowFallback) {
  // More agents in one 4x4x4 box region than the shared staging capacity:
  // the v3 kernel must fall back to the global path and stay correct.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 3000, 0.0, 25.0, 10.0, /*seed=*/8);
  Param param;
  auto expected = CpuReference(rm, param);

  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(3);
  opts.zorder_sort = false;  // keep rows aligned with the reference
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);

  for (size_t i = 0; i < rm.size(); ++i) {
    const Double3& want = expected.at(rm.uids()[i]);
    ASSERT_NEAR(op.last_displacements()[i].x, want.x, 5e-4);
    ASSERT_NEAR(op.last_displacements()[i].y, want.y, 5e-4);
    ASSERT_NEAR(op.last_displacements()[i].z, want.z, 5e-4);
  }
}

TEST(GpuEquivalenceEdgeTest, MultiStepTrajectoriesStayClose) {
  // Run 5 steps CPU vs GPU v2 and compare final positions by uid.
  Param param;
  ResourceManager cpu_rm, gpu_rm;
  testutil::FillRandomCells(&cpu_rm, 300, 0.0, 50.0, 10.0, /*seed=*/77);
  testutil::FillRandomCells(&gpu_rm, 300, 0.0, 50.0, 10.0, /*seed=*/77);

  UniformGridEnvironment cpu_env;
  MechanicalForcesOp cpu_op;
  GpuMechanicalOp gpu_op(GpuMechanicsOptions::Version(2));
  NullEnvironment gpu_env;

  for (int step = 0; step < 5; ++step) {
    cpu_env.Update(cpu_rm, param, ExecMode::kSerial);
    cpu_op.ComputeDisplacements(cpu_rm, cpu_env, param, ExecMode::kSerial);
    cpu_op.ApplyDisplacements(cpu_rm, param, ExecMode::kSerial);

    gpu_env.Update(gpu_rm, param, ExecMode::kSerial);
    gpu_op.Step(gpu_rm, gpu_env, param, ExecMode::kSerial, nullptr);
  }

  std::map<AgentUid, Double3> cpu_pos;
  for (size_t i = 0; i < cpu_rm.size(); ++i) {
    cpu_pos[cpu_rm.uids()[i]] = cpu_rm.positions()[i];
  }
  for (size_t i = 0; i < gpu_rm.size(); ++i) {
    const Double3& want = cpu_pos.at(gpu_rm.uids()[i]);
    ASSERT_NEAR(gpu_rm.positions()[i].x, want.x, 5e-3);
    ASSERT_NEAR(gpu_rm.positions()[i].y, want.y, 5e-3);
    ASSERT_NEAR(gpu_rm.positions()[i].z, want.z, 5e-3);
  }
}

}  // namespace
}  // namespace biosim::gpu
