#include "gpu/device_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/random.h"
#include "gpusim/profiler.h"
#include "spatial/morton.h"

namespace biosim::gpu {
namespace {

using gpusim::Device;
using gpusim::DeviceSpec;

class DeviceSortTest : public ::testing::Test {
 protected:
  DeviceSortTest() : dev_(DeviceSpec::GTX1080Ti()), sorter_(&dev_) {}

  /// Upload, sort, download; returns (keys, values).
  std::pair<std::vector<uint64_t>, std::vector<int32_t>> Sort(
      std::vector<uint64_t> keys, int key_bits = 64) {
    size_t n = keys.size();
    auto dkeys = dev_.Alloc<uint64_t>(n);
    auto dvals = dev_.Alloc<int32_t>(n);
    std::vector<int32_t> identity(n);
    std::iota(identity.begin(), identity.end(), 0);
    dev_.CopyToDevice(dkeys, std::span<const uint64_t>(keys));
    dev_.CopyToDevice(dvals, std::span<const int32_t>(identity));
    sorter_.SortPairs(&dkeys, &dvals, n, key_bits);
    std::vector<uint64_t> out_k(n);
    std::vector<int32_t> out_v(n);
    dev_.CopyFromDevice(std::span<uint64_t>(out_k), dkeys);
    dev_.CopyFromDevice(std::span<int32_t>(out_v), dvals);
    return {out_k, out_v};
  }

  Device dev_;
  DeviceRadixSorter sorter_;
};

TEST_F(DeviceSortTest, SortsRandomKeys) {
  Random rng(3);
  std::vector<uint64_t> keys(5000);
  for (auto& k : keys) {
    k = rng.NextU64();
  }
  auto [sorted, perm] = Sort(keys);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  // The permutation maps back to the original keys.
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(sorted[i], keys[static_cast<size_t>(perm[i])]);
  }
}

TEST_F(DeviceSortTest, PermutationIsValid) {
  Random rng(4);
  std::vector<uint64_t> keys(1000);
  for (auto& k : keys) {
    k = rng.UniformInt(50);  // many duplicates
  }
  auto [sorted, perm] = Sort(keys);
  std::vector<int32_t> check = perm;
  std::sort(check.begin(), check.end());
  for (size_t i = 0; i < check.size(); ++i) {
    ASSERT_EQ(check[i], static_cast<int32_t>(i));
  }
}

TEST_F(DeviceSortTest, StableForEqualKeys) {
  // Equal keys must keep their original relative order.
  std::vector<uint64_t> keys(256);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i % 4;
  }
  auto [sorted, perm] = Sort(keys, /*key_bits=*/8);
  for (size_t i = 1; i < perm.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) {
      ASSERT_LT(perm[i - 1], perm[i]) << "stability violated at " << i;
    }
  }
}

TEST_F(DeviceSortTest, AlreadySortedStaysPut) {
  std::vector<uint64_t> keys(500);
  std::iota(keys.begin(), keys.end(), uint64_t{100});
  auto [sorted, perm] = Sort(keys, 16);
  EXPECT_EQ(sorted, keys);
  for (size_t i = 0; i < perm.size(); ++i) {
    ASSERT_EQ(perm[i], static_cast<int32_t>(i));
  }
}

TEST_F(DeviceSortTest, SingleElementAndEmpty) {
  auto [one_k, one_v] = Sort({42});
  EXPECT_EQ(one_k, (std::vector<uint64_t>{42}));
  EXPECT_EQ(one_v, (std::vector<int32_t>{0}));
}

TEST_F(DeviceSortTest, FewerPassesForNarrowKeys) {
  // 16-bit keys: only two radix passes should be launched.
  Random rng(5);
  std::vector<uint64_t> keys(2048);
  for (auto& k : keys) {
    k = rng.UniformInt(1 << 16);
  }
  size_t launches_before = dev_.history().size();
  auto [sorted, perm] = Sort(keys, /*key_bits=*/16);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  size_t launches = dev_.history().size() - launches_before;
  // Per pass: clear + count + scan + scatter = 4 launches; 2 passes, no
  // copy-back (even pass count) plus the two H2D copies are not launches.
  EXPECT_EQ(launches, 8u);
}

TEST_F(DeviceSortTest, OddPassCountCopiesBack) {
  Random rng(6);
  std::vector<uint64_t> keys(512);
  for (auto& k : keys) {
    k = rng.UniformInt(200);  // 8-bit keys -> 1 pass (odd)
  }
  auto [sorted, perm] = Sort(keys, /*key_bits=*/8);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  gpusim::ProfileReport report(dev_);
  EXPECT_NE(report.Find("radix_copyback"), nullptr);
}

TEST_F(DeviceSortTest, SortsMortonKeysOfACloud) {
  Random rng(7);
  std::vector<uint64_t> keys(4096);
  for (auto& k : keys) {
    Double3 p = rng.UniformInCube(0.0, 500.0);
    k = MortonEncodePosition(p, {0, 0, 0}, 10.0);
  }
  auto [sorted, perm] = Sort(keys, /*key_bits=*/33);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST_F(DeviceSortTest, AdvancesTheSimulatedClock) {
  Random rng(8);
  std::vector<uint64_t> keys(10000);
  for (auto& k : keys) {
    k = rng.NextU64();
  }
  double before = dev_.KernelMs();
  Sort(keys);
  EXPECT_GT(dev_.KernelMs(), before);
}

}  // namespace
}  // namespace biosim::gpu
