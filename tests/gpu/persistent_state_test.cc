// Tests for the persistent-device-state mode: agent state stays resident on
// the GPU across steps; transfers happen only at upload/sync points.
#include <gtest/gtest.h>

#include <map>

#include "../test_util.h"
#include "gpu/gpu_mechanical_op.h"
#include "gpusim/profiler.h"
#include "spatial/null_environment.h"

namespace biosim::gpu {
namespace {

GpuMechanicsOptions PersistentOpts(int version = 1) {
  GpuMechanicsOptions o = GpuMechanicsOptions::Version(version);
  o.zorder_sort = false;
  o.persistent_device_state = true;
  return o;
}

TEST(PersistentStateTest, IncompatibleWithPerStepSort) {
  GpuMechanicsOptions o = GpuMechanicsOptions::Version(2);  // sorts
  o.persistent_device_state = true;
  EXPECT_THROW(GpuMechanicalOp op(o), std::invalid_argument);
}

TEST(PersistentStateTest, MultiStepTrajectoryMatchesNonPersistent) {
  Param param;
  ResourceManager a, b;
  testutil::FillRandomCells(&a, 400, 100.0, 180.0, 10.0, /*seed=*/51);
  testutil::FillRandomCells(&b, 400, 100.0, 180.0, 10.0, /*seed=*/51);

  GpuMechanicalOp normal(GpuMechanicsOptions::Version(1));
  GpuMechanicalOp persistent(PersistentOpts(1));
  NullEnvironment env;

  for (int step = 0; step < 5; ++step) {
    env.Update(a, param, ExecMode::kSerial);
    normal.Step(a, env, param, ExecMode::kSerial, nullptr);
    env.Update(b, param, ExecMode::kSerial);
    persistent.Step(b, env, param, ExecMode::kSerial, nullptr);
  }
  persistent.SyncToHost(b);

  for (size_t i = 0; i < a.size(); ++i) {
    // The persistent path keeps positions in FP32 on the device across
    // steps (the non-persistent path re-rounds from FP64 each upload), so
    // allow single-precision accumulation noise.
    ASSERT_NEAR(a.positions()[i].x, b.positions()[i].x, 1e-2);
    ASSERT_NEAR(a.positions()[i].y, b.positions()[i].y, 1e-2);
    ASSERT_NEAR(a.positions()[i].z, b.positions()[i].z, 1e-2);
  }
}

TEST(PersistentStateTest, TransfersOnlyOnFirstStep) {
  Param param;
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 100.0, 180.0, 10.0);
  GpuMechanicalOp op(PersistentOpts());
  NullEnvironment env;

  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  uint64_t h2d_after_first = op.device().transfers().h2d_bytes;
  uint64_t d2h_after_first = op.device().transfers().d2h_bytes;
  EXPECT_GT(h2d_after_first, 0u);
  EXPECT_EQ(d2h_after_first, 0u);  // nothing comes back per step

  for (int step = 0; step < 4; ++step) {
    env.Update(rm, param, ExecMode::kSerial);
    op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  }
  EXPECT_EQ(op.device().transfers().h2d_bytes, h2d_after_first);

  op.SyncToHost(rm);
  EXPECT_GT(op.device().transfers().d2h_bytes, 0u);
}

TEST(PersistentStateTest, AppliesDisplacementsOnDevice) {
  Param param;
  ResourceManager rm;
  // Two overlapping cells away from the walls.
  NewAgentSpec a, b;
  a.position = {500, 500, 500};
  b.position = {506, 500, 500};
  a.diameter = b.diameter = 10.0;
  a.adherence = b.adherence = 0.001;
  rm.AddAgent(std::move(a));
  rm.AddAgent(std::move(b));

  GpuMechanicalOp op(PersistentOpts());
  NullEnvironment env;
  Double3 host_before = rm.positions()[0];
  for (int step = 0; step < 3; ++step) {
    env.Update(rm, param, ExecMode::kSerial);
    op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  }
  // Host mirror is stale until synced.
  EXPECT_EQ(rm.positions()[0], host_before);
  op.SyncToHost(rm);
  EXPECT_LT(rm.positions()[0].x, host_before.x);  // pushed apart
  gpusim::ProfileReport report(op.device());
  EXPECT_NE(report.Find("apply_displacement"), nullptr);
}

TEST(PersistentStateTest, PopulationChangeTriggersReupload) {
  Param param;
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 300, 100.0, 180.0, 10.0);
  GpuMechanicalOp op(PersistentOpts());
  NullEnvironment env;

  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  uint64_t h2d1 = op.device().transfers().h2d_bytes;

  // Structural change: a new agent appears.
  NewAgentSpec s;
  s.position = {150, 150, 150};
  s.diameter = 10.0;
  rm.AddAgent(std::move(s));
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  EXPECT_GT(op.device().transfers().h2d_bytes, h2d1);  // re-uploaded
}

TEST(PersistentStateTest, BoundSpaceEnforcedOnDevice) {
  Param param;
  param.min_bound = 0.0;
  param.max_bound = 100.0;
  ResourceManager rm;
  // Cell overlapping another, pressed against the wall.
  NewAgentSpec a, b;
  a.position = {1.0, 50, 50};
  b.position = {6.0, 50, 50};
  a.diameter = b.diameter = 10.0;
  a.adherence = b.adherence = 0.001;
  rm.AddAgent(std::move(a));
  rm.AddAgent(std::move(b));
  GpuMechanicalOp op(PersistentOpts());
  NullEnvironment env;
  for (int step = 0; step < 10; ++step) {
    env.Update(rm, param, ExecMode::kSerial);
    op.Step(rm, env, param, ExecMode::kSerial, nullptr);
  }
  op.SyncToHost(rm);
  EXPECT_GE(rm.positions()[0].x, 0.0);
}

TEST(PersistentStateTest, SyncIsNoopForNonPersistentOp) {
  Param param;
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 100.0, 150.0, 10.0);
  GpuMechanicsOptions o = GpuMechanicsOptions::Version(1);
  GpuMechanicalOp op(o);
  uint64_t d2h_before = op.device().transfers().d2h_bytes;
  op.SyncToHost(rm);
  EXPECT_EQ(op.device().transfers().d2h_bytes, d2h_before);
}

}  // namespace
}  // namespace biosim::gpu
