// Property sweeps (TEST_P) over the performance models: invariants that must
// hold for *any* input, not just the calibrated benchmark points. These
// guard the substitution layer (DESIGN.md §1): if a model violates basic
// monotonicity or bounds, every projected figure is suspect.
#include <gtest/gtest.h>

#include "core/random.h"
#include "gpusim/timing.h"
#include "perfmodel/cpu_model.h"
#include "physics/interaction_force.h"

namespace biosim {
namespace {

// ---------------------------------------------------------------------------
// GPU timing model properties over random counter vectors.
// ---------------------------------------------------------------------------

struct TimingCase {
  uint64_t seed;
  const char* device;  // "1080ti" or "v100"
};

class TimingModelPropertyTest : public ::testing::TestWithParam<TimingCase> {
 protected:
  gpusim::DeviceSpec Spec() const {
    return std::string(GetParam().device) == "v100"
               ? gpusim::DeviceSpec::TeslaV100()
               : gpusim::DeviceSpec::GTX1080Ti();
  }

  gpusim::KernelStats RandomStats(Random* rng) const {
    gpusim::KernelStats st;
    st.fp32_flops = rng->UniformInt(1'000'000'000);
    st.fp64_flops = rng->UniformInt(100'000'000);
    st.dram_read_bytes = rng->UniformInt(1'000'000'000);
    st.dram_write_bytes = rng->UniformInt(100'000'000);
    st.l2_read_hit_bytes = rng->UniformInt(1'000'000'000);
    st.l1_read_hit_bytes = rng->UniformInt(1'000'000'000);
    st.shared_bytes = rng->UniformInt(100'000'000);
    st.read_transactions = st.dram_read_bytes / 128 + st.l2_read_hit_bytes / 128;
    st.write_transactions = st.dram_write_bytes / 128;
    st.atomic_serialized = rng->UniformInt(1'000'000);
    st.lane_ops_sum = 1 + rng->UniformInt(1'000'000);
    st.warp_ops_slots = st.lane_ops_sum + rng->UniformInt(1'000'000);
    st.max_lane_mem_ops = rng->UniformInt(10'000);
    st.total_threads = 1 + rng->UniformInt(10'000'000);
    return st;
  }
};

TEST_P(TimingModelPropertyTest, TotalBoundsEachComponent) {
  Random rng(GetParam().seed);
  for (int trial = 0; trial < 50; ++trial) {
    gpusim::KernelStats st = RandomStats(&rng);
    gpusim::ApplyTimingModel(Spec(), &st);
    ASSERT_GE(st.total_ms,
              st.launch_ms + st.compute_ms + st.atomic_ms - 1e-12);
    ASSERT_GE(st.total_ms, st.memory_ms);
    ASSERT_GE(st.total_ms, st.lsu_ms);
    ASSERT_GE(st.total_ms, st.latency_ms);
    ASSERT_GE(st.total_ms, 0.0);
  }
}

TEST_P(TimingModelPropertyTest, MonotoneInEveryCounter) {
  Random rng(GetParam().seed + 1);
  for (int trial = 0; trial < 30; ++trial) {
    gpusim::KernelStats base = RandomStats(&rng);
    gpusim::ApplyTimingModel(Spec(), &base);

    auto grows = [&](auto mutate) {
      gpusim::KernelStats st = base;
      mutate(&st);
      gpusim::ApplyTimingModel(Spec(), &st);
      ASSERT_GE(st.total_ms, base.total_ms - 1e-12);
    };
    grows([](gpusim::KernelStats* s) { s->dram_read_bytes *= 2; });
    grows([](gpusim::KernelStats* s) { s->fp64_flops *= 2; });
    grows([](gpusim::KernelStats* s) { s->atomic_serialized *= 2; });
    grows([](gpusim::KernelStats* s) { s->read_transactions *= 2; });
    grows([](gpusim::KernelStats* s) { s->max_lane_mem_ops *= 2; });
  }
}

TEST_P(TimingModelPropertyTest, FasterDeviceNeverSlower) {
  // The V100 dominates the 1080 Ti in every spec dimension, so any counter
  // vector must run at least as fast on it.
  Random rng(GetParam().seed + 2);
  for (int trial = 0; trial < 30; ++trial) {
    gpusim::KernelStats a = RandomStats(&rng);
    gpusim::KernelStats b = a;
    gpusim::ApplyTimingModel(gpusim::DeviceSpec::GTX1080Ti(), &a);
    gpusim::ApplyTimingModel(gpusim::DeviceSpec::TeslaV100(), &b);
    ASSERT_LE(b.total_ms, a.total_ms + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TimingModelPropertyTest,
    ::testing::Values(TimingCase{1, "1080ti"}, TimingCase{2, "1080ti"},
                      TimingCase{3, "v100"}, TimingCase{4, "v100"}),
    [](const ::testing::TestParamInfo<TimingCase>& info) {
      return std::string(info.param.device) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// CPU scaling model properties over workload-parameter sweeps.
// ---------------------------------------------------------------------------

struct CpuCase {
  double parallel_fraction;
  double bandwidth_bound_fraction;
};

class CpuModelPropertyTest : public ::testing::TestWithParam<CpuCase> {
 protected:
  perfmodel::WorkloadCharacter Workload() const {
    perfmodel::WorkloadCharacter w;
    w.parallel_fraction = GetParam().parallel_fraction;
    w.bandwidth_bound_fraction = GetParam().bandwidth_bound_fraction;
    return w;
  }
};

TEST_P(CpuModelPropertyTest, SpeedupBoundedByThreadsAndAmdahl) {
  for (const auto& spec : {perfmodel::CpuSpec::XeonE5_2640v4_x2(),
                           perfmodel::CpuSpec::XeonGold6130_x2()}) {
    perfmodel::CpuScalingModel m(spec, Workload());
    for (int t : {2, 4, 8, 16, 32, 64}) {
      double s = m.ProjectSpeedup(t);
      ASSERT_GE(s, 1.0) << t;
      ASSERT_LE(s, static_cast<double>(t) + 1e-9) << t;
      double amdahl = 1.0 / (1.0 - Workload().parallel_fraction + 1e-12);
      ASSERT_LE(s, amdahl + 1e-9) << t;
    }
  }
}

TEST_P(CpuModelPropertyTest, MonotoneNonIncreasingInThreads) {
  perfmodel::CpuScalingModel m(perfmodel::CpuSpec::XeonGold6130_x2(),
                               Workload());
  double prev = m.ProjectMs(500.0, 1);
  for (int t = 2; t <= 32; ++t) {
    double cur = m.ProjectMs(500.0, t);
    ASSERT_LE(cur, prev + 1e-9) << t << " threads";
    prev = cur;
  }
}

TEST_P(CpuModelPropertyTest, ProjectionIsLinearInSerialTime) {
  perfmodel::CpuScalingModel m(perfmodel::CpuSpec::XeonE5_2640v4_x2(),
                               Workload());
  for (int t : {4, 20, 40}) {
    double unit = m.ProjectMs(1.0, t);
    ASSERT_NEAR(m.ProjectMs(123.0, t), 123.0 * unit, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadSweep, CpuModelPropertyTest,
    ::testing::Values(CpuCase{0.5, 0.2}, CpuCase{0.85, 0.55},
                      CpuCase{0.95, 0.65}, CpuCase{0.99, 0.9},
                      CpuCase{0.7, 0.0}, CpuCase{0.9, 1.0}),
    [](const ::testing::TestParamInfo<CpuCase>& info) {
      return "par" +
             std::to_string(static_cast<int>(info.param.parallel_fraction * 100)) +
             "_bw" +
             std::to_string(
                 static_cast<int>(info.param.bandwidth_bound_fraction * 100));
    });

// ---------------------------------------------------------------------------
// Force-law properties over coefficient sweeps.
// ---------------------------------------------------------------------------

struct ForceCase {
  double kappa;
  double gamma;
};

class ForcePropertyTest : public ::testing::TestWithParam<ForceCase> {};

TEST_P(ForcePropertyTest, AntisymmetryHoldsForAllCoefficients) {
  ForceParams<double> fp{GetParam().kappa, GetParam().gamma};
  Random rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    Double3 p1 = rng.UniformInCube(0, 20);
    Double3 p2 = rng.UniformInCube(0, 20);
    double r1 = rng.Uniform(2, 9), r2 = rng.Uniform(2, 9);
    Double3 f12 = SphereSphereForce(p1, r1, p2, r2, fp);
    Double3 f21 = SphereSphereForce(p2, r2, p1, r1, fp);
    ASSERT_LT((f12 + f21).Norm(), 1e-9);
  }
}

TEST_P(ForcePropertyTest, RepulsionScalesWithKappaAtDeepOverlap) {
  // At delta large the kappa term dominates: doubling kappa roughly doubles
  // the repulsion for fixed geometry.
  ForceParams<double> fp{GetParam().kappa, GetParam().gamma};
  ForceParams<double> fp2{2.0 * GetParam().kappa, GetParam().gamma};
  Double3 f1 = SphereSphereForce<double>({0, 0, 0}, 6.0, {2, 0, 0}, 6.0, fp);
  Double3 f2 = SphereSphereForce<double>({0, 0, 0}, 6.0, {2, 0, 0}, 6.0, fp2);
  // f = -kappa*delta + gamma*sqrt(..) in x<0 direction; kappa-part doubles.
  double delta = 10.0;
  ASSERT_NEAR(f2.x - f1.x, -GetParam().kappa * delta, 1e-9);
}

TEST_P(ForcePropertyTest, NoForceBeyondContactForAnyCoefficients) {
  ForceParams<double> fp{GetParam().kappa, GetParam().gamma};
  Random rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    double r1 = rng.Uniform(1, 8), r2 = rng.Uniform(1, 8);
    Double3 dir = rng.UnitVector();
    Double3 p2 = dir * (r1 + r2 + rng.Uniform(0.001, 10.0));
    ASSERT_EQ(SphereSphereForce<double>({0, 0, 0}, r1, p2, r2, fp),
              (Double3{0, 0, 0}));
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoefficientSweep, ForcePropertyTest,
    ::testing::Values(ForceCase{2.0, 1.0}, ForceCase{1.0, 0.0},
                      ForceCase{0.0, 1.0}, ForceCase{10.0, 3.0},
                      ForceCase{0.5, 2.0}),
    [](const ::testing::TestParamInfo<ForceCase>& info) {
      return "k" + std::to_string(static_cast<int>(info.param.kappa * 10)) +
             "_g" + std::to_string(static_cast<int>(info.param.gamma * 10));
    });

}  // namespace
}  // namespace biosim
