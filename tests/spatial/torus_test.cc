// Tests for periodic (torus) boundaries: wrapped grid neighbor search,
// minimum-image distances/forces, and the density edge-effect fix.
#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"
#include "core/simulation.h"
#include "physics/displacement.h"
#include "physics/mechanical_forces_op.h"
#include "spatial/kd_tree.h"
#include "spatial/uniform_grid.h"

namespace biosim {
namespace {

Param TorusParam(double edge) {
  Param p;
  p.min_bound = 0.0;
  p.max_bound = edge;
  p.boundary_mode = BoundaryMode::kTorus;
  return p;
}

/// Brute-force torus neighbor reference with minimum-image distances.
std::vector<AgentIndex> BruteForceTorusNeighbors(const ResourceManager& rm,
                                                 AgentIndex query,
                                                 double radius, double edge) {
  std::vector<AgentIndex> out;
  double r2 = radius * radius;
  for (size_t j = 0; j < rm.size(); ++j) {
    if (j != query &&
        MinImageVector(rm.positions()[query], rm.positions()[j], edge)
                .SquaredNorm() <= r2) {
      out.push_back(j);
    }
  }
  return out;
}

TEST(WrapCoordinateTest, WrapsBothDirections) {
  EXPECT_DOUBLE_EQ(WrapCoordinate(105.0, 0.0, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(WrapCoordinate(-3.0, 0.0, 100.0), 97.0);
  EXPECT_DOUBLE_EQ(WrapCoordinate(50.0, 0.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(WrapCoordinate(250.0, 0.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(WrapCoordinate(12.0, 10.0, 100.0), 12.0);
  EXPECT_DOUBLE_EQ(WrapCoordinate(8.0, 10.0, 100.0), 98.0 + 10.0);
}

TEST(MinImageTest, PicksTheNearestImage) {
  double edge = 100.0;
  // Across the face: 2 and 98 are 4 apart through the boundary.
  Double3 d = MinImageVector({2, 50, 50}, {98, 50, 50}, edge);
  EXPECT_DOUBLE_EQ(d.x, 4.0);
  EXPECT_DOUBLE_EQ(d.y, 0.0);
  // Interior pair: plain difference.
  d = MinImageVector({30, 50, 50}, {60, 50, 50}, edge);
  EXPECT_DOUBLE_EQ(d.x, -30.0);
  // Antisymmetry.
  Double3 a = MinImageVector({10, 20, 30}, {90, 80, 70}, edge);
  Double3 b = MinImageVector({90, 80, 70}, {10, 20, 30}, edge);
  EXPECT_EQ(a, -b);
}

TEST(TorusBoundaryTest, ApplyBoundSpaceWraps) {
  Param p = TorusParam(100.0);
  EXPECT_EQ(ApplyBoundSpace({105.0, -3.0, 50.0}, p), (Double3{5.0, 97.0, 50.0}));
}

TEST(TorusGridTest, GridCoversTheDomainExactly) {
  Param p = TorusParam(100.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 100.0, 12.0);
  UniformGridEnvironment env;
  env.Update(rm, p, ExecMode::kSerial);
  EXPECT_TRUE(env.is_torus());
  // 100/12 -> 8 boxes of 12.5 (>= the 12 interaction radius).
  EXPECT_EQ(env.num_boxes_axis().x, 8);
  EXPECT_DOUBLE_EQ(env.box_length(), 12.5);
  EXPECT_GE(env.box_length(), env.interaction_radius());
}

TEST(TorusGridTest, NeighborsAcrossFacesAreFound) {
  Param p = TorusParam(100.0);
  ResourceManager rm;
  NewAgentSpec a, b;
  a.position = {1.0, 50.0, 50.0};
  b.position = {97.0, 50.0, 50.0};  // 4 apart through the face
  a.diameter = b.diameter = 10.0;
  rm.AddAgent(std::move(a));
  rm.AddAgent(std::move(b));
  UniformGridEnvironment env;
  env.Update(rm, p, ExecMode::kSerial);
  auto n = testutil::CollectNeighbors(env, rm, 0, 10.0);
  ASSERT_EQ(n, (std::vector<AgentIndex>{1}));
  // And the reported distance is the minimum-image one.
  env.ForEachNeighborWithinRadius(0, rm, 10.0, [&](AgentIndex, double d2) {
    EXPECT_DOUBLE_EQ(d2, 16.0);
  });
}

TEST(TorusGridTest, MatchesBruteForceOnRandomCloud) {
  Param p = TorusParam(80.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 400, 0.0, 80.0, 10.0, /*seed=*/17);
  UniformGridEnvironment env;
  env.Update(rm, p, ExecMode::kSerial);
  double r = env.interaction_radius();
  for (AgentIndex q = 0; q < rm.size(); q += 7) {
    EXPECT_EQ(testutil::CollectNeighbors(env, rm, q, r),
              BruteForceTorusNeighbors(rm, q, r, 80.0))
        << "query " << q;
  }
}

TEST(TorusGridTest, TinyDomainFewBoxesNoDoubleVisits) {
  // Edge barely over one box: periodic offsets must not revisit boxes.
  Param p = TorusParam(25.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 40, 0.0, 25.0, 10.0, /*seed=*/3);
  UniformGridEnvironment env;
  env.Update(rm, p, ExecMode::kSerial);
  ASSERT_LT(env.num_boxes_axis().x, 3);
  for (AgentIndex q = 0; q < rm.size(); q += 3) {
    // Exactly the brute-force set, each neighbor exactly once.
    std::vector<AgentIndex> seen;
    env.ForEachNeighborWithinRadius(q, rm, 10.0, [&](AgentIndex j, double) {
      seen.push_back(j);
    });
    std::set<AgentIndex> unique(seen.begin(), seen.end());
    EXPECT_EQ(unique.size(), seen.size()) << "duplicate visits, query " << q;
    std::vector<AgentIndex> sorted(seen.begin(), seen.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, BruteForceTorusNeighbors(rm, q, 10.0, 25.0));
  }
}

TEST(TorusMechanicsTest, ForcesActAcrossFaces) {
  Param p = TorusParam(100.0);
  p.default_adherence = 0.001;
  ResourceManager rm;
  NewAgentSpec a, b;
  a.position = {2.0, 50.0, 50.0};
  b.position = {96.0, 50.0, 50.0};  // overlap of 4 through the face
  a.diameter = b.diameter = 10.0;
  a.adherence = b.adherence = 0.001;
  rm.AddAgent(std::move(a));
  rm.AddAgent(std::move(b));
  UniformGridEnvironment env;
  env.Update(rm, p, ExecMode::kSerial);
  MechanicalForcesOp op;
  op.ComputeDisplacements(rm, env, p, ExecMode::kSerial);
  // Agent 0 sits at x=2 with its partner behind the x=0 face: it must be
  // pushed in +x, the partner in -x (Newton's third law across the wrap).
  EXPECT_GT(op.displacements()[0].x, 0.0);
  EXPECT_NEAR(op.displacements()[0].x, -op.displacements()[1].x, 1e-12);
}

TEST(TorusMechanicsTest, RelaxationWrapsPositions) {
  Param p = TorusParam(60.0);
  p.default_adherence = 0.001;
  Simulation sim(p);
  // Overlapping pair at the face: relaxation pushes one across x=0.
  AgentIndex i = sim.AddCell({1.0, 30.0, 30.0}, 10.0);
  sim.AddCell({7.0, 30.0, 30.0}, 10.0);
  sim.rm().adherences()[0] = 0.001;
  sim.rm().adherences()[1] = 0.001;
  sim.Simulate(120);
  (void)i;
  for (const auto& pos : sim.rm().positions()) {
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LT(pos.x, 60.0);
  }
  // They separated toward the Cortex3D adhesive equilibrium
  // (delta* = 2.5*gamma^2/kappa^2 = 0.625 -> distance 9.375), measured
  // minimum-image.
  double d = MinImageVector(sim.rm().positions()[0], sim.rm().positions()[1],
                            60.0)
                 .Norm();
  EXPECT_GT(d, 9.0);
  EXPECT_LT(d, 9.75);
}

TEST(TorusDensityTest, RemovesTheEdgeEffect) {
  // In a clamped box, boundary agents see fewer neighbors, dragging the
  // measured density below the target; the torus removes that bias.
  size_t agents = 8000;
  double target_n = 27.0;
  double sphere = 4.0 / 3.0 * math::kPi * 1000.0;
  double edge = std::cbrt(static_cast<double>(agents) * sphere / target_n);

  auto measure = [&](BoundaryMode mode) {
    Param p;
    p.min_bound = 0.0;
    p.max_bound = edge;
    p.boundary_mode = mode;
    ResourceManager rm;
    testutil::FillRandomCells(&rm, agents, 0.0, edge, 10.0, /*seed=*/23);
    UniformGridEnvironment env;
    env.Update(rm, p, ExecMode::kSerial);
    return env.MeanNeighborCount(rm, 3);
  };

  double clamped = measure(BoundaryMode::kClamp);
  double torus = measure(BoundaryMode::kTorus);
  EXPECT_LT(clamped, target_n * 0.97);       // visible edge deficit
  EXPECT_NEAR(torus, target_n, target_n * 0.07);  // bias gone
  EXPECT_GT(torus, clamped);
}

TEST(TorusUnsupportedTest, KdTreeAndGpuReject) {
  Param p = TorusParam(100.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 10, 0.0, 100.0, 10.0);
  KdTreeEnvironment kd;
  EXPECT_THROW(kd.Update(rm, p, ExecMode::kSerial), std::invalid_argument);
}

TEST(ParamTest2, TorusRequiresBoundSpace) {
  Param p;
  p.boundary_mode = BoundaryMode::kTorus;
  p.bound_space = false;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace biosim
