// Property battery for the incremental grid rebuild (docs/perf.md
// "Incremental grid rebuilds"): after every Update, an incrementally
// maintained environment must be byte-identical — chains, counts, successor
// links AND the CSR flattening — to a from-scratch build of the same
// population. Anything less would break PR 4's bitwise determinism
// contract, because the fused force kernel streams the CSR runs directly.
//
// Each scenario steps a population under a different motion regime and
// compares the patched grid against a fresh reference environment after
// every step. The stats counters double as path assertions: scenarios that
// are supposed to exercise the patch path assert incremental_updates
// advanced, and scenarios that must fall back (population change, mass
// motion) assert full_rebuilds advanced.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/param.h"
#include "core/random.h"
#include "core/resource_manager.h"
#include "spatial/uniform_grid.h"

#include "../test_util.h"

namespace biosim {
namespace {

/// Assert every queryable structure of `inc` equals `ref` bit for bit.
/// gtest prints vector diffs, so the raw arrays are compared directly.
void ExpectGridsIdentical(const UniformGridEnvironment& inc,
                          const UniformGridEnvironment& ref,
                          const char* where) {
  ASSERT_EQ(inc.total_boxes(), ref.total_boxes()) << where;
  EXPECT_EQ(inc.box_length(), ref.box_length()) << where;
  EXPECT_EQ(inc.grid_min().x, ref.grid_min().x) << where;
  EXPECT_EQ(inc.grid_min().y, ref.grid_min().y) << where;
  EXPECT_EQ(inc.grid_min().z, ref.grid_min().z) << where;
  EXPECT_EQ(inc.is_torus(), ref.is_torus()) << where;
  // The CSR pair is what the fused kernel consumes.
  EXPECT_EQ(inc.box_starts(), ref.box_starts()) << where;
  EXPECT_EQ(inc.box_agents(), ref.box_agents()) << where;
  // The linked-chain view must stay in lockstep with it.
  EXPECT_EQ(inc.successors(), ref.successors()) << where;
  for (size_t b = 0; b < inc.total_boxes(); ++b) {
    ASSERT_EQ(inc.box_start(b), ref.box_start(b)) << where << " box " << b;
    ASSERT_EQ(inc.box_count(b), ref.box_count(b)) << where << " box " << b;
  }
}

/// Step `rm` `steps` times through `move`, updating `inc` in place (the
/// incremental path) and rebuilding a fresh environment as reference after
/// each move. `move(step)` mutates positions (or the population) arbitrarily.
template <typename MoveFn>
void RunMotionProperty(ResourceManager& rm, const Param& param,
                       UniformGridEnvironment& inc, uint64_t steps,
                       MoveFn move) {
  inc.Update(rm, param, ExecMode::kSerial);
  for (uint64_t s = 0; s < steps; ++s) {
    move(s);
    inc.Update(rm, param, ExecMode::kParallel);
    UniformGridEnvironment ref;
    ref.Update(rm, param, ExecMode::kSerial);
    std::string where = "step " + std::to_string(s);
    ExpectGridsIdentical(inc, ref, where.c_str());
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

Param TorusParam(double edge) {
  Param p;
  p.boundary_mode = BoundaryMode::kTorus;
  p.min_bound = 0.0;
  p.max_bound = edge;
  return p;
}

TEST(IncrementalGridTest, TorusRandomWalkMatchesFullRebuildEveryStep) {
  // The design workload: periodic space, fixed geometry, a slow drift that
  // re-bins a few percent of agents per step.
  Param param = TorusParam(96.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 400, 0.0, 96.0, 8.0, /*seed=*/7);
  UniformGridEnvironment inc;
  Random rng(11);
  RunMotionProperty(rm, param, inc, 12, [&](uint64_t) {
    for (auto& p : rm.positions()) {
      for (double* c : {&p.x, &p.y, &p.z}) {
        *c += rng.Uniform(-1.5, 1.5);
        // Torus wrap, exactly as displacement does it.
        if (*c < 0.0) *c += 96.0;
        if (*c >= 96.0) *c -= 96.0;
      }
    }
  });
  // The whole run must have been served by the patch path (after the
  // initial build), else the property held vacuously.
  EXPECT_EQ(inc.update_stats().full_rebuilds, 1u);
  EXPECT_EQ(inc.update_stats().incremental_updates, 12u);
  EXPECT_GT(inc.update_stats().rebinned_agents, 0u);
}

TEST(IncrementalGridTest, BoundedCloudWithCornerSentinelsStaysIncremental) {
  // Non-torus grids derive grid_min from rm.Bounds(), so the patch path
  // only engages while the bounding box is bit-stable. Eight stationary
  // sentinel agents pin the corners; everyone else jitters inside.
  Param param;  // open boundary
  ResourceManager rm;
  for (double x : {0.0, 80.0}) {
    for (double y : {0.0, 80.0}) {
      for (double z : {0.0, 80.0}) {
        NewAgentSpec s;
        s.position = {x, y, z};
        s.diameter = 8.0;
        rm.AddAgent(std::move(s));
      }
    }
  }
  testutil::FillRandomCells(&rm, 300, 4.0, 76.0, 8.0, /*seed=*/13);
  UniformGridEnvironment inc;
  Random rng(5);
  RunMotionProperty(rm, param, inc, 10, [&](uint64_t) {
    auto& pos = rm.positions();
    for (size_t i = 8; i < pos.size(); ++i) {  // sentinels stay put
      for (double* c : {&pos[i].x, &pos[i].y, &pos[i].z}) {
        *c = std::min(79.0, std::max(1.0, *c + rng.Uniform(-2.0, 2.0)));
      }
    }
  });
  EXPECT_EQ(inc.update_stats().full_rebuilds, 1u);
  EXPECT_EQ(inc.update_stats().incremental_updates, 10u);
}

TEST(IncrementalGridTest, ClusteredHoppingMatchesFullRebuild) {
  // Two dense clusters and a trickle of agents teleporting between them:
  // per-box deltas with several arrivals/departures at once, far apart in
  // the flat box order.
  Param param = TorusParam(128.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 150, 10.0, 20.0, 8.0, /*seed=*/3);
  testutil::FillRandomCells(&rm, 150, 100.0, 110.0, 8.0, /*seed=*/4);
  UniformGridEnvironment inc;
  Random rng(17);
  RunMotionProperty(rm, param, inc, 10, [&](uint64_t s) {
    auto& pos = rm.positions();
    // Five hoppers per step swap clusters; everyone else is stationary
    // (in-box moves and no-op boxes must both be handled).
    for (int k = 0; k < 5; ++k) {
      size_t i = rng.UniformInt(pos.size());
      double shift = pos[i].x < 64.0 ? 90.0 : -90.0;
      pos[i].x += shift;
    }
    (void)s;
  });
  EXPECT_EQ(inc.update_stats().full_rebuilds, 1u);
  EXPECT_GT(inc.update_stats().rebinned_agents, 0u);
}

TEST(IncrementalGridTest, DegenerateSingleBoxDomainIsHandled) {
  // Everything lives in one box (domain smaller than the interaction
  // radius): deltas degenerate to one box's chain rewritten in place.
  Param param = TorusParam(16.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 24, 0.0, 16.0, 8.0, /*seed=*/9);
  UniformGridEnvironment inc;
  Random rng(23);
  RunMotionProperty(rm, param, inc, 6, [&](uint64_t) {
    for (auto& p : rm.positions()) {
      p.x += rng.Uniform(-1.0, 1.0);
      if (p.x < 0.0) p.x += 16.0;
      if (p.x >= 16.0) p.x -= 16.0;
    }
  });
  EXPECT_EQ(inc.update_stats().full_rebuilds, 1u);
  EXPECT_EQ(inc.update_stats().incremental_updates, 6u);
}

TEST(IncrementalGridTest, PopulationGrowthForcesFullRebuild) {
  // A division (deferred insertion committed between steps) changes the
  // agent count; the patch path must refuse and the full rebuild must
  // produce the reference structures.
  Param param = TorusParam(64.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 64.0, 8.0, /*seed=*/21);
  UniformGridEnvironment inc;
  Random rng(29);
  RunMotionProperty(rm, param, inc, 6, [&](uint64_t s) {
    if (s == 2 || s == 4) {
      NewAgentSpec spec;
      spec.position = rng.UniformInCube(0.0, 64.0);
      spec.diameter = 8.0;
      rm.PushDeferredAgent(/*mother=*/0, std::move(spec));
      rm.CommitStructuralChanges();
    } else {
      rm.positions()[s].x = 32.0;  // keep some motion in the quiet steps
    }
  });
  // Initial build + the two growth steps rebuilt; the rest patched.
  EXPECT_EQ(inc.update_stats().full_rebuilds, 3u);
  EXPECT_EQ(inc.update_stats().incremental_updates, 4u);
}

TEST(IncrementalGridTest, RemovalForcesFullRebuild) {
  // Swap-with-last removal renumbers rows, so the previous agent->box map
  // is meaningless; the count gate catches it before any stale patch.
  Param param = TorusParam(64.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 64.0, 8.0, /*seed=*/31);
  UniformGridEnvironment inc;
  RunMotionProperty(rm, param, inc, 4, [&](uint64_t s) {
    if (s == 1) {
      rm.PushDeferredRemoval(7);
      rm.PushDeferredRemoval(42);
      rm.CommitStructuralChanges();
    }
  });
  EXPECT_EQ(inc.update_stats().full_rebuilds, 2u);
}

TEST(IncrementalGridTest, MassMotionFallsBackToFullRebuild) {
  // When most agents cross boxes, patching costs more than rebuilding; the
  // fallback threshold must hand the step to the full path — and the
  // structures must still match the reference afterwards.
  Param param = TorusParam(64.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 200, 0.0, 64.0, 8.0, /*seed=*/37);
  UniformGridEnvironment inc;
  RunMotionProperty(rm, param, inc, 2, [&](uint64_t) {
    for (auto& p : rm.positions()) {  // everyone shifts one full box
      p.x += 8.0;
      if (p.x >= 64.0) p.x -= 64.0;
    }
  });
  EXPECT_EQ(inc.update_stats().full_rebuilds, 3u);
  EXPECT_EQ(inc.update_stats().incremental_updates, 0u);
}

TEST(IncrementalGridTest, StationaryPopulationIsANoOpPatch) {
  Param param = TorusParam(64.0);
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 64.0, 8.0, /*seed=*/41);
  UniformGridEnvironment inc;
  RunMotionProperty(rm, param, inc, 3, [&](uint64_t) {});
  EXPECT_EQ(inc.update_stats().full_rebuilds, 1u);
  EXPECT_EQ(inc.update_stats().incremental_updates, 3u);
  EXPECT_EQ(inc.update_stats().rebinned_agents, 0u);
}

TEST(IncrementalGridTest, DisablingTheKnobAlwaysRebuilds) {
  Param param = TorusParam(64.0);
  param.incremental_grid = false;
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 0.0, 64.0, 8.0, /*seed=*/43);
  UniformGridEnvironment inc;
  RunMotionProperty(rm, param, inc, 3, [&](uint64_t) {});
  EXPECT_EQ(inc.update_stats().full_rebuilds, 4u);
  EXPECT_EQ(inc.update_stats().incremental_updates, 0u);
}

TEST(IncrementalGridTest, CsrAgentCountGuardThrowsPastInt32) {
  // The CSR offsets are int32 (shared with the GPU layout); the scan would
  // wrap silently past 2^31-1 agents. The guard is static so it is testable
  // without allocating 16 GiB of agents.
  EXPECT_NO_THROW(UniformGridEnvironment::CheckCsrAgentCount(0));
  EXPECT_NO_THROW(UniformGridEnvironment::CheckCsrAgentCount(1u << 20));
  EXPECT_NO_THROW(UniformGridEnvironment::CheckCsrAgentCount(
      static_cast<size_t>(INT32_MAX)));
  EXPECT_THROW(UniformGridEnvironment::CheckCsrAgentCount(
                   static_cast<size_t>(INT32_MAX) + 1),
               std::length_error);
  EXPECT_THROW(
      UniformGridEnvironment::CheckCsrAgentCount(size_t{1} << 40),
      std::length_error);
}

}  // namespace
}  // namespace biosim
