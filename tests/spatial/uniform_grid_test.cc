#include "spatial/uniform_grid.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "../test_util.h"

namespace biosim {
namespace {

TEST(UniformGridTest, BoxLengthIsInteractionRadius) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 0.0, 100.0, 12.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_DOUBLE_EQ(env.box_length(), 12.0);
  EXPECT_DOUBLE_EQ(env.interaction_radius(), 12.0);
}

TEST(UniformGridTest, FixedBoxLengthOverrides) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 0.0, 100.0, 12.0);
  Param param;
  UniformGridEnvironment env(/*fixed_box_length=*/25.0);
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_DOUBLE_EQ(env.box_length(), 25.0);
}

TEST(UniformGridTest, EveryAgentIsInItsBoxChain) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 200, 0.0, 50.0, 8.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);

  // Walk all box chains and check each agent appears exactly once, in the
  // box its position maps to.
  std::set<int32_t> seen;
  size_t total = 0;
  for (size_t b = 0; b < env.total_boxes(); ++b) {
    size_t chain_len = 0;
    for (int32_t j = env.box_start(b); j != UniformGridEnvironment::kEmpty;
         j = env.successors()[j]) {
      EXPECT_TRUE(seen.insert(j).second) << "agent " << j << " linked twice";
      EXPECT_EQ(env.BoxIndexOf(rm.positions()[j]), b);
      ++chain_len;
      ++total;
    }
    EXPECT_EQ(static_cast<int32_t>(chain_len), env.box_count(b));
  }
  EXPECT_EQ(total, rm.size());
}

TEST(UniformGridTest, ParallelBuildFindsSameSets) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 300, 0.0, 60.0, 10.0);
  Param param;
  UniformGridEnvironment serial, parallel;
  serial.Update(rm, param, ExecMode::kSerial);
  parallel.Update(rm, param, ExecMode::kParallel);
  double r = serial.interaction_radius();
  for (AgentIndex q = 0; q < rm.size(); q += 17) {
    EXPECT_EQ(testutil::CollectNeighbors(serial, rm, q, r),
              testutil::CollectNeighbors(parallel, rm, q, r));
  }
}

TEST(UniformGridTest, MatchesBruteForceOnRandomCloud) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 100.0, 10.0, /*seed=*/99);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  double radius = env.interaction_radius();
  for (AgentIndex q = 0; q < rm.size(); q += 11) {
    EXPECT_EQ(testutil::CollectNeighbors(env, rm, q, radius),
              testutil::BruteForceNeighbors(rm, q, radius))
        << "query " << q;
  }
}

TEST(UniformGridTest, SmallerQueryRadiusFiltersCorrectly) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 300, 0.0, 40.0, 10.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  // Query at half the box length must still be exact.
  for (AgentIndex q = 0; q < rm.size(); q += 23) {
    EXPECT_EQ(testutil::CollectNeighbors(env, rm, q, 5.0),
              testutil::BruteForceNeighbors(rm, q, 5.0));
  }
}

TEST(UniformGridTest, AgentsOnDomainFaces) {
  // Agents exactly on the grid's min/max corners exercise the clamping.
  ResourceManager rm;
  for (double x : {0.0, 100.0}) {
    for (double y : {0.0, 100.0}) {
      for (double z : {0.0, 100.0}) {
        NewAgentSpec s;
        s.position = {x, y, z};
        s.diameter = 10.0;
        rm.AddAgent(std::move(s));
      }
    }
  }
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  for (AgentIndex q = 0; q < rm.size(); ++q) {
    EXPECT_EQ(testutil::CollectNeighbors(env, rm, q, 10.0),
              testutil::BruteForceNeighbors(rm, q, 10.0));
  }
}

TEST(UniformGridTest, DenseClusterInOneBox) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 64, 10.0, 11.0, 10.0);  // all in one box
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  auto n = testutil::CollectNeighbors(env, rm, 0, env.interaction_radius());
  EXPECT_EQ(n.size(), 63u);
}

TEST(UniformGridTest, MeanNeighborCountOnLattice) {
  // 5x5x5 lattice with spacing 10 and diameter 10: interior agents have
  // exactly 6 face neighbors at distance 10 == radius.
  ResourceManager rm;
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      for (int z = 0; z < 5; ++z) {
        NewAgentSpec s;
        s.position = {x * 10.0, y * 10.0, z * 10.0};
        s.diameter = 10.0;
        rm.AddAgent(std::move(s));
      }
    }
  }
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  // Center agent: 6 face neighbors within radius 10 (diagonals are at 14.1).
  AgentIndex center = 2 * 25 + 2 * 5 + 2;
  EXPECT_EQ(
      testutil::CollectNeighbors(env, rm, center, env.interaction_radius())
          .size(),
      6u);
  double mean = env.MeanNeighborCount(rm);
  EXPECT_GT(mean, 4.0);  // boundary agents pull the mean below 6
  EXPECT_LT(mean, 6.0);
}

TEST(UniformGridTest, UpdateAfterGrowthResizesBoxes) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 20, 0.0, 50.0, 8.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_DOUBLE_EQ(env.box_length(), 8.0);
  rm.diameters()[3] = 16.0;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_DOUBLE_EQ(env.box_length(), 16.0);
}

TEST(UniformGridTest, MeanNeighborCountStrideZeroIsClampedNotInfinite) {
  // Regression: stride 0 used to hang the sampling loop (`q += 0`). It now
  // clamps to 1, i.e. an exact (all-agents) mean.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 40.0, 10.0, /*seed=*/12);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_DOUBLE_EQ(env.MeanNeighborCount(rm, 0), env.MeanNeighborCount(rm, 1));
}

TEST(UniformGridTest, OversizedQueryRadiusThrows) {
  // Regression: a radius beyond the box length used to be a debug-only
  // assert — release builds silently dropped neighbors outside the 27
  // surrounding boxes. It is a real error now.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 0.0, 40.0, 10.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_THROW(env.ForEachNeighborWithinRadius(
                   0, rm, env.box_length() * 1.5, [](AgentIndex, double) {}),
               std::invalid_argument);
  // At or below the box length stays fine (the +epsilon tolerance).
  EXPECT_NO_THROW(env.ForEachNeighborWithinRadius(
      0, rm, env.box_length(), [](AgentIndex, double) {}));
}

TEST(UniformGridTest, UpdateRejectsFixedBoxSmallerThanInteractionRadius) {
  // The same contract enforced at build time: a fixed box edge below the
  // interaction radius would make every force query drop neighbors.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 50, 0.0, 40.0, /*diameter=*/12.0);
  Param param;
  UniformGridEnvironment env(/*fixed_box_length=*/5.0);
  EXPECT_THROW(env.Update(rm, param, ExecMode::kSerial),
               std::invalid_argument);
}

TEST(UniformGridTest, BoxChainsAreCanonicalAscendingAfterParallelBuild) {
  // The determinism tentpole's spatial half: whatever interleaving built
  // the linked lists, Update leaves every chain sorted by agent index.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 30.0, 10.0, /*seed=*/3);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kParallel);
  for (size_t b = 0; b < env.total_boxes(); ++b) {
    int32_t prev = -1;
    for (int32_t j = env.box_start(b); j != UniformGridEnvironment::kEmpty;
         j = env.successors()[j]) {
      EXPECT_GT(j, prev) << "box " << b << " chain is not ascending";
      prev = j;
    }
  }
}

TEST(UniformGridTest, TraversalOrderIsIdenticalSerialVsParallel) {
  // Stronger than equal neighbor *sets*: the *sequence* each query visits
  // must match, because force accumulation order is what determinism
  // rests on (docs/determinism.md).
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 400, 0.0, 35.0, 10.0, /*seed=*/21);
  Param param;
  UniformGridEnvironment serial, parallel;
  serial.Update(rm, param, ExecMode::kSerial);
  parallel.Update(rm, param, ExecMode::kParallel);
  double r = serial.interaction_radius();
  for (AgentIndex q = 0; q < rm.size(); ++q) {
    std::vector<AgentIndex> order_serial, order_parallel;
    serial.ForEachNeighborWithinRadius(
        q, rm, r, [&](AgentIndex j, double) { order_serial.push_back(j); });
    parallel.ForEachNeighborWithinRadius(
        q, rm, r, [&](AgentIndex j, double) { order_parallel.push_back(j); });
    ASSERT_EQ(order_serial, order_parallel) << "query " << q;
  }
}

TEST(UniformGridTest, MeanAgentsPerBoxDiagnostic) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 1000, 0.0, 100.0, 10.0);
  Param param;
  UniformGridEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  // 1000 agents over 10x10x10 boxes: about 1 agent per box.
  EXPECT_GT(env.MeanAgentsPerBox(), 0.9);
  EXPECT_LT(env.MeanAgentsPerBox(), 2.5);
}

}  // namespace
}  // namespace biosim
