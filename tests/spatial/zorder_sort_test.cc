#include "spatial/zorder_sort.h"

#include <gtest/gtest.h>

#include <numeric>

#include "../test_util.h"
#include "spatial/morton.h"

namespace biosim {
namespace {

TEST(ZOrderSortTest, PermutationIsValid) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 100.0, 10.0);
  auto perm = ZOrderPermutation(rm.positions(), {0, 0, 0}, 10.0);
  ASSERT_EQ(perm.size(), rm.size());
  std::vector<AgentIndex> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], i);  // a permutation of 0..n-1
  }
}

TEST(ZOrderSortTest, ResultIsSortedByMortonKey) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 300, 0.0, 64.0, 8.0);
  SortAgentsByZOrder(rm, 8.0);
  AABBd b = rm.Bounds();
  uint64_t prev = 0;
  for (size_t i = 0; i < rm.size(); ++i) {
    uint64_t key = MortonEncodePosition(rm.positions()[i], b.min, 8.0);
    ASSERT_GE(key, prev) << "row " << i;
    prev = key;
  }
}

TEST(ZOrderSortTest, SortIsIdempotent) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 200, 0.0, 50.0, 10.0);
  SortAgentsByZOrder(rm, 10.0);
  auto positions_once = rm.positions();
  auto uids_once = rm.uids();
  SortAgentsByZOrder(rm, 10.0);
  EXPECT_EQ(rm.positions(), positions_once);
  EXPECT_EQ(rm.uids(), uids_once);
}

TEST(ZOrderSortTest, PreservesTheMultisetOfAgents) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 100, 0.0, 30.0, 7.0);
  double vol_before = rm.TotalVolume();
  auto uids_before = rm.uids();
  std::sort(uids_before.begin(), uids_before.end());
  SortAgentsByZOrder(rm, 7.0);
  EXPECT_NEAR(rm.TotalVolume(), vol_before, 1e-9);
  auto uids_after = rm.uids();
  std::sort(uids_after.begin(), uids_after.end());
  EXPECT_EQ(uids_after, uids_before);
}

TEST(ZOrderSortTest, EmptyPopulationIsNoop) {
  ResourceManager rm;
  auto perm = SortAgentsByZOrder(rm, 10.0);
  EXPECT_TRUE(perm.empty());
}

TEST(ZOrderSortTest, ImprovesNeighborRowLocality) {
  // The whole point of Improvement II: after sorting, agents within the
  // interaction radius sit much closer together in the arrays.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 2000, 0.0, 100.0, 10.0, /*seed=*/3);
  double before = MeanNeighborRowDistance(rm.positions(), 10.0);
  SortAgentsByZOrder(rm, 10.0);
  double after = MeanNeighborRowDistance(rm.positions(), 10.0);
  // Random order: mean row distance ~ n/3 ~ 667. Z-order: tens.
  EXPECT_LT(after, before / 4.0);
}

TEST(ZOrderSortTest, SerialAndParallelPermutationsAgree) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 100.0, 10.0);
  auto serial =
      ZOrderPermutation(rm.positions(), {0, 0, 0}, 10.0, ExecMode::kSerial);
  auto parallel =
      ZOrderPermutation(rm.positions(), {0, 0, 0}, 10.0, ExecMode::kParallel);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace biosim
