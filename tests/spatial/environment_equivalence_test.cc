// Property sweep: the kd-tree and the uniform grid are interchangeable
// implementations of the same Environment contract, across densities,
// population sizes, and agent layouts. This is the invariant the paper's
// swap (Section IV-A) rests on.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "../test_util.h"
#include "spatial/kd_tree.h"
#include "spatial/uniform_grid.h"
#include "spatial/zorder_sort.h"

namespace biosim {
namespace {

struct Scenario {
  size_t num_agents;
  double space;     // cube edge
  double diameter;  // == interaction radius
  uint64_t seed;
};

class EnvironmentEquivalenceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(EnvironmentEquivalenceTest, KdTreeEqualsUniformGridEqualsBruteForce) {
  const Scenario& sc = GetParam();
  ResourceManager rm;
  testutil::FillRandomCells(&rm, sc.num_agents, 0.0, sc.space, sc.diameter,
                            sc.seed);
  Param param;
  KdTreeEnvironment kd;
  UniformGridEnvironment ug;
  kd.Update(rm, param, ExecMode::kSerial);
  ug.Update(rm, param, ExecMode::kParallel);
  ASSERT_DOUBLE_EQ(kd.interaction_radius(), ug.interaction_radius());
  double r = kd.interaction_radius();

  size_t stride = std::max<size_t>(1, rm.size() / 50);
  for (AgentIndex q = 0; q < rm.size(); q += stride) {
    auto expected = testutil::BruteForceNeighbors(rm, q, r);
    EXPECT_EQ(testutil::CollectNeighbors(kd, rm, q, r), expected)
        << "kd-tree query " << q;
    EXPECT_EQ(testutil::CollectNeighbors(ug, rm, q, r), expected)
        << "uniform-grid query " << q;
  }
}

TEST_P(EnvironmentEquivalenceTest, NeighborSetsSurviveZOrderSorting) {
  // Sorting permutes rows; the *set of neighbor UIDs* per agent UID must be
  // unchanged.
  const Scenario& sc = GetParam();
  ResourceManager rm;
  testutil::FillRandomCells(&rm, sc.num_agents, 0.0, sc.space, sc.diameter,
                            sc.seed);
  Param param;
  UniformGridEnvironment ug;
  ug.Update(rm, param, ExecMode::kSerial);
  double r = ug.interaction_radius();

  // Record neighbor UID sets before sorting.
  std::map<AgentUid, std::set<AgentUid>> before;
  for (AgentIndex q = 0; q < rm.size(); ++q) {
    std::set<AgentUid>& s = before[rm.uids()[q]];
    ug.ForEachNeighborWithinRadius(
        q, rm, r, [&](AgentIndex j, double) { s.insert(rm.uids()[j]); });
  }

  SortAgentsByZOrder(rm, r);
  ug.Update(rm, param, ExecMode::kSerial);
  for (AgentIndex q = 0; q < rm.size(); ++q) {
    std::set<AgentUid> s;
    ug.ForEachNeighborWithinRadius(
        q, rm, r, [&](AgentIndex j, double) { s.insert(rm.uids()[j]); });
    EXPECT_EQ(s, before[rm.uids()[q]]) << "uid " << rm.uids()[q];
  }
}

TEST_P(EnvironmentEquivalenceTest, ReportedDistancesAreExact) {
  const Scenario& sc = GetParam();
  ResourceManager rm;
  testutil::FillRandomCells(&rm, sc.num_agents, 0.0, sc.space, sc.diameter,
                            sc.seed);
  Param param;
  UniformGridEnvironment ug;
  ug.Update(rm, param, ExecMode::kSerial);
  double r = ug.interaction_radius();
  size_t stride = std::max<size_t>(1, rm.size() / 20);
  for (AgentIndex q = 0; q < rm.size(); q += stride) {
    ug.ForEachNeighborWithinRadius(q, rm, r, [&](AgentIndex j, double d2) {
      EXPECT_DOUBLE_EQ(
          d2, SquaredDistance(rm.positions()[q], rm.positions()[j]));
      EXPECT_LE(d2, r * r);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, EnvironmentEquivalenceTest,
    ::testing::Values(
        Scenario{100, 200.0, 10.0, 1},   // sparse: ~0 neighbors
        Scenario{500, 100.0, 10.0, 2},   // moderate
        Scenario{500, 40.0, 10.0, 3},    // dense: tens of neighbors
        Scenario{1000, 25.0, 10.0, 4},   // very dense
        Scenario{64, 10.0, 10.0, 5},     // everyone neighbors everyone
        Scenario{300, 100.0, 3.0, 6},    // small radius
        Scenario{300, 100.0, 33.3, 7}),  // radius ~ space/3
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "n" + std::to_string(info.param.num_agents) + "_space" +
             std::to_string(static_cast<int>(info.param.space)) + "_d" +
             std::to_string(static_cast<int>(info.param.diameter));
    });

}  // namespace
}  // namespace biosim
