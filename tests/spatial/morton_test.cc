#include "spatial/morton.h"

#include <gtest/gtest.h>

#include "core/random.h"

namespace biosim {
namespace {

TEST(MortonTest, SpreadCompactRoundTrip) {
  for (uint64_t v : {0ull, 1ull, 2ull, 0xABCDEull, 0x1FFFFFull}) {
    EXPECT_EQ(MortonCompactBits(MortonSpreadBits(v)), v & 0x1FFFFF);
  }
}

TEST(MortonTest, SpreadPlacesBitsThreeApart) {
  // bit i of input -> bit 3i of output
  for (int i = 0; i < 21; ++i) {
    EXPECT_EQ(MortonSpreadBits(uint64_t{1} << i), uint64_t{1} << (3 * i));
  }
}

TEST(MortonTest, KnownInterleavings) {
  EXPECT_EQ(MortonEncode(0, 0, 0), 0u);
  EXPECT_EQ(MortonEncode(1, 0, 0), 0b001u);
  EXPECT_EQ(MortonEncode(0, 1, 0), 0b010u);
  EXPECT_EQ(MortonEncode(0, 0, 1), 0b100u);
  EXPECT_EQ(MortonEncode(1, 1, 1), 0b111u);
  EXPECT_EQ(MortonEncode(2, 0, 0), 0b001000u);
  EXPECT_EQ(MortonEncode(3, 5, 7), 0b110101111u);  // x=011,y=101,z=111
}

TEST(MortonTest, EncodeDecodeRoundTripRandom) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.UniformInt(1u << 21));
    uint32_t y = static_cast<uint32_t>(rng.UniformInt(1u << 21));
    uint32_t z = static_cast<uint32_t>(rng.UniformInt(1u << 21));
    uint32_t dx, dy, dz;
    MortonDecode(MortonEncode(x, y, z), &dx, &dy, &dz);
    ASSERT_EQ(dx, x);
    ASSERT_EQ(dy, y);
    ASSERT_EQ(dz, z);
  }
}

TEST(MortonTest, ZOrderIsMonotonicAlongEachAxis) {
  // Increasing one coordinate (others fixed) must increase the Z-value.
  for (uint32_t base : {0u, 5u, 100u, 4000u}) {
    EXPECT_LT(MortonEncode(base, 7, 9), MortonEncode(base + 1, 7, 9));
    EXPECT_LT(MortonEncode(7, base, 9), MortonEncode(7, base + 1, 9));
    EXPECT_LT(MortonEncode(7, 9, base), MortonEncode(7, 9, base + 1));
  }
}

TEST(MortonTest, PositionEncodingQuantizes) {
  Double3 origin{0.0, 0.0, 0.0};
  // Same cell -> same key.
  EXPECT_EQ(MortonEncodePosition({1.0, 2.0, 3.0}, origin, 10.0),
            MortonEncodePosition({9.0, 2.0, 3.0}, origin, 10.0));
  // Next cell in x -> larger key with y=z=0 cells.
  EXPECT_LT(MortonEncodePosition({1.0, 1.0, 1.0}, origin, 10.0),
            MortonEncodePosition({11.0, 1.0, 1.0}, origin, 10.0));
}

TEST(MortonTest, PositionEncodingClampsBelowOrigin) {
  Double3 origin{10.0, 10.0, 10.0};
  // Slightly below the origin must clamp to bin 0, not wrap around.
  EXPECT_EQ(MortonEncodePosition({9.999, 10.5, 10.5}, origin, 1.0),
            MortonEncodePosition({10.0, 10.5, 10.5}, origin, 1.0));
}

TEST(MortonTest, LocalityBeatsRowMajorOrder) {
  // The defining property of the curve: consecutive Z-order indices are
  // spatially closer on average than consecutive row-major indices.
  const uint32_t n = 16;
  auto row_major_pos = [&](uint32_t idx) {
    return Double3{static_cast<double>(idx % n),
                   static_cast<double>((idx / n) % n),
                   static_cast<double>(idx / (n * n))};
  };
  // Build the inverse Z-order: sorted list of (code, (x,y,z)).
  std::vector<std::pair<uint64_t, Double3>> cells;
  for (uint32_t x = 0; x < n; ++x) {
    for (uint32_t y = 0; y < n; ++y) {
      for (uint32_t z = 0; z < n; ++z) {
        cells.push_back({MortonEncode(x, y, z),
                         Double3{static_cast<double>(x), static_cast<double>(y),
                                 static_cast<double>(z)}});
      }
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  double z_dist = 0.0, rm_dist = 0.0;
  for (uint32_t i = 1; i < n * n * n; ++i) {
    z_dist += Distance(cells[i].second, cells[i - 1].second);
    rm_dist += Distance(row_major_pos(i), row_major_pos(i - 1));
  }
  EXPECT_LT(z_dist, rm_dist);
}

}  // namespace
}  // namespace biosim
