#include "spatial/kd_tree.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace biosim {
namespace {

TEST(KdTreeTest, EmptyPopulation) {
  ResourceManager rm;
  Param param;
  KdTreeEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  // Query on empty tree must not crash (no agents, nothing to call).
  int calls = 0;
  if (rm.size() > 0) {
    env.ForEachNeighborWithinRadius(0, rm, 10.0,
                                    [&](AgentIndex, double) { ++calls; });
  }
  EXPECT_EQ(calls, 0);
}

TEST(KdTreeTest, SingleAgentHasNoNeighbors) {
  ResourceManager rm;
  NewAgentSpec s;
  s.position = {5.0, 5.0, 5.0};
  rm.AddAgent(std::move(s));
  Param param;
  KdTreeEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_TRUE(testutil::CollectNeighbors(env, rm, 0, 100.0).empty());
}

TEST(KdTreeTest, TwoAgentsWithinRadius) {
  ResourceManager rm;
  NewAgentSpec a, b;
  a.position = {0.0, 0.0, 0.0};
  b.position = {3.0, 0.0, 0.0};
  rm.AddAgent(std::move(a));
  rm.AddAgent(std::move(b));
  Param param;
  KdTreeEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_EQ(testutil::CollectNeighbors(env, rm, 0, 5.0),
            (std::vector<AgentIndex>{1}));
  EXPECT_EQ(testutil::CollectNeighbors(env, rm, 1, 5.0),
            (std::vector<AgentIndex>{0}));
  EXPECT_TRUE(testutil::CollectNeighbors(env, rm, 0, 2.0).empty());
}

TEST(KdTreeTest, MatchesBruteForceOnRandomCloud) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 100.0, 10.0, /*seed=*/7);
  Param param;
  KdTreeEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  double radius = env.interaction_radius();
  ASSERT_DOUBLE_EQ(radius, 10.0);
  for (AgentIndex q = 0; q < rm.size(); q += 13) {
    EXPECT_EQ(testutil::CollectNeighbors(env, rm, q, radius),
              testutil::BruteForceNeighbors(rm, q, radius))
        << "query " << q;
  }
}

TEST(KdTreeTest, RadiusIsInclusive) {
  ResourceManager rm;
  NewAgentSpec a, b;
  a.position = {0.0, 0.0, 0.0};
  b.position = {4.0, 0.0, 0.0};
  rm.AddAgent(std::move(a));
  rm.AddAgent(std::move(b));
  Param param;
  KdTreeEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_EQ(testutil::CollectNeighbors(env, rm, 0, 4.0).size(), 1u);
}

TEST(KdTreeTest, DegenerateAllSamePosition) {
  // All agents at one point: the splitter cannot separate them; the build
  // must terminate and queries must return everyone.
  ResourceManager rm;
  for (int i = 0; i < 100; ++i) {
    NewAgentSpec s;
    s.position = {1.0, 1.0, 1.0};
    rm.AddAgent(std::move(s));
  }
  Param param;
  KdTreeEnvironment env(/*leaf_size=*/4);
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_EQ(testutil::CollectNeighbors(env, rm, 0, 0.5).size(), 99u);
}

TEST(KdTreeTest, CollinearPoints) {
  ResourceManager rm;
  for (int i = 0; i < 64; ++i) {
    NewAgentSpec s;
    s.position = {static_cast<double>(i), 0.0, 0.0};
    rm.AddAgent(std::move(s));
  }
  Param param;
  KdTreeEnvironment env(4);
  env.Update(rm, param, ExecMode::kSerial);
  auto n = testutil::CollectNeighbors(env, rm, 32, 2.5);
  EXPECT_EQ(n, (std::vector<AgentIndex>{30, 31, 33, 34}));
}

TEST(KdTreeTest, RebuildReflectsMovedAgents) {
  ResourceManager rm;
  NewAgentSpec a, b;
  a.position = {0.0, 0.0, 0.0};
  b.position = {50.0, 0.0, 0.0};
  rm.AddAgent(std::move(a));
  rm.AddAgent(std::move(b));
  Param param;
  KdTreeEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_TRUE(testutil::CollectNeighbors(env, rm, 0, 10.0).empty());
  rm.positions()[1] = {5.0, 0.0, 0.0};
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_EQ(testutil::CollectNeighbors(env, rm, 0, 10.0).size(), 1u);
}

TEST(KdTreeTest, DepthIsLogarithmic) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 4096, 0.0, 100.0, 1.0);
  Param param;
  KdTreeEnvironment env(16);
  env.Update(rm, param, ExecMode::kSerial);
  // 4096/16 = 256 leaves -> ideal depth 9; allow slack for median noise.
  EXPECT_LE(env.Depth(), 14u);
  EXPECT_GE(env.Depth(), 8u);
}

TEST(KdTreeTest, InteractionRadiusTracksLargestDiameter) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 10, 0.0, 100.0, 8.0);
  NewAgentSpec big;
  big.position = {50.0, 50.0, 50.0};
  big.diameter = 22.0;
  rm.AddAgent(std::move(big));
  Param param;
  param.interaction_radius_margin = 1.5;
  KdTreeEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  EXPECT_DOUBLE_EQ(env.interaction_radius(), 23.5);
}

}  // namespace
}  // namespace biosim
