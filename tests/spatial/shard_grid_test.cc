// ShardGrid: the per-shard occupancy-compacted CSR must present, for every
// owned box, exactly the candidate runs the global uniform grid's CSR
// presents — same rows, same ascending order, same canonical 27-block
// enumeration — while storing only occupied boxes (spatial/shard_grid.h).
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/param.h"
#include "core/random.h"
#include "core/resource_manager.h"
#include "spatial/grid_geometry.h"
#include "spatial/shard_grid.h"
#include "spatial/shard_partition.h"
#include "spatial/uniform_grid.h"

namespace biosim {
namespace {

ResourceManager MakePopulation(size_t n, double lo, double hi, uint64_t seed,
                               double diameter = 8.0) {
  ResourceManager rm;
  Random rng(seed);
  for (size_t i = 0; i < n; ++i) {
    NewAgentSpec spec;
    spec.position = rng.UniformInCube(lo, hi);
    spec.diameter = diameter;
    rm.AddAgent(std::move(spec));
  }
  return rm;
}

TEST(ShardGridTest, SingleShardReproducesTheGlobalCsrRuns) {
  Param p;
  p.max_bound = 200.0;
  auto rm = MakePopulation(300, 0.0, 200.0, 42);

  UniformGridEnvironment grid;
  grid.Update(rm, p, ExecMode::kSerial);
  const GridGeometry& g = grid.geometry();

  ShardGrid sg;
  sg.Configure(g, 0, g.num_boxes_axis.z);
  std::vector<int32_t> members(rm.size());
  std::iota(members.begin(), members.end(), 0);
  sg.Update(members, rm.positions().data());

  // Every agent present exactly once, in a box-run that matches the global
  // grid's run for the same box.
  EXPECT_EQ(sg.box_agents().size(), rm.size());
  ASSERT_EQ(sg.owned_boxes().size(), sg.occupied_boxes());
  for (const auto& [wb, slot] : sg.owned_boxes()) {
    const int32_t begin = sg.box_starts()[slot];
    const int32_t end = sg.box_starts()[slot + 1];
    ASSERT_LT(begin, end);
    // Rows ascending within the run.
    for (int32_t i = begin + 1; i < end; ++i) {
      EXPECT_LT(sg.box_agents()[i - 1], sg.box_agents()[i]);
    }
    // The global grid bins the first resident into the same box as the rest.
    const auto c = g.BoxCoordinatesOf(
        rm.positions()[static_cast<size_t>(sg.box_agents()[begin])]);
    const size_t global_box = g.FlatBoxIndex(c);
    const auto& starts = grid.box_starts();
    const auto& agents = grid.box_agents();
    const int32_t gb = starts[global_box];
    const int32_t ge = starts[global_box + 1];
    ASSERT_EQ(ge - gb, end - begin) << "run length mismatch";
    for (int32_t i = 0; i < end - begin; ++i) {
      EXPECT_EQ(agents[gb + i], sg.box_agents()[begin + i]);
    }
  }
}

TEST(ShardGridTest, NeighborSlotsEnumerateCanonicalOrderSkippingEmpties) {
  Param p;
  p.max_bound = 120.0;
  auto rm = MakePopulation(80, 0.0, 120.0, 7);

  UniformGridEnvironment grid;
  grid.Update(rm, p, ExecMode::kSerial);
  const GridGeometry& g = grid.geometry();

  ShardGrid sg;
  sg.Configure(g, 0, g.num_boxes_axis.z);
  std::vector<int32_t> members(rm.size());
  std::iota(members.begin(), members.end(), 0);
  sg.Update(members, rm.positions().data());

  CsrGridView view = sg.View();
  for (const auto& [wb, slot] : sg.owned_boxes()) {
    size_t shard_slots[27];
    const int shard_count = view.neighbor_slots(view.self, slot, shard_slots);

    // Global enumeration of the same box, filtered to non-empty boxes, must
    // match the shard's slot sequence element-wise (mapped through the
    // shard's runs).
    const auto c = g.BoxCoordinatesOf(
        rm.positions()[static_cast<size_t>(sg.box_agents()[sg.box_starts()[slot]])]);
    size_t global_boxes[27];
    const int global_count = g.NeighborBoxesOf(c, global_boxes);
    int matched = 0;
    for (int b = 0; b < global_count; ++b) {
      const int32_t gb = grid.box_starts()[global_boxes[b]];
      const int32_t ge = grid.box_starts()[global_boxes[b] + 1];
      if (gb == ge) {
        continue;  // empty in the global grid -> shard has no slot for it
      }
      ASSERT_LT(matched, shard_count);
      const size_t s2 = shard_slots[matched++];
      // Same resident run.
      const int32_t sb = sg.box_starts()[s2];
      const int32_t se = sg.box_starts()[s2 + 1];
      ASSERT_EQ(se - sb, ge - gb);
      for (int32_t i = 0; i < ge - gb; ++i) {
        EXPECT_EQ(sg.box_agents()[sb + i], grid.box_agents()[gb + i]);
      }
    }
    EXPECT_EQ(matched, shard_count);
  }
}

TEST(ShardGridTest, PartitionedShardsCoverEveryGlobalRunExactlyOnce) {
  Param p;
  p.max_bound = 160.0;
  p.boundary_mode = BoundaryMode::kTorus;
  auto rm = MakePopulation(240, 0.0, 160.0, 99);

  UniformGridEnvironment grid;
  grid.Update(rm, p, ExecMode::kSerial);
  const GridGeometry& g = grid.geometry();
  const int32_t planes = g.num_boxes_axis.z;

  for (uint32_t shards : {2u, 3u, 4u}) {
    auto part = ShardPartition::Split(shards, planes, ShardBalance::kStatic,
                                      {});
    // Owner-assigned members plus one-plane halos, as the runtime builds.
    std::vector<std::vector<int32_t>> members(shards);
    for (size_t i = 0; i < rm.size(); ++i) {
      const auto c = g.BoxCoordinatesOf(rm.positions()[i]);
      for (uint32_t k = 0; k < shards; ++k) {
        const int32_t lo = part.first_plane(k) - 1;
        const int32_t hi = part.end_plane(k);  // inclusive halo above
        const int32_t z = c.z;
        const bool in_window =
            (z >= lo && z <= hi) ||
            // torus wrap of the window edges
            (lo < 0 && z == planes + lo) || (hi >= planes && z == hi - planes);
        if (in_window) {
          members[k].push_back(static_cast<int32_t>(i));
        }
      }
    }

    size_t rows_covered = 0;
    for (uint32_t k = 0; k < shards; ++k) {
      ShardGrid sg;
      sg.Configure(g, part.first_plane(k), part.end_plane(k));
      sg.Update(members[k], rm.positions().data());
      for (const auto& [wb, slot] : sg.owned_boxes()) {
        rows_covered += static_cast<size_t>(sg.box_starts()[slot + 1] -
                                            sg.box_starts()[slot]);
      }
    }
    // The owned boxes of all shards partition the population: every row in
    // exactly one owned run.
    EXPECT_EQ(rows_covered, rm.size()) << "shards=" << shards;
  }
}

TEST(ShardGridTest, MemberOutsideWindowThrows) {
  Param p;
  p.max_bound = 120.0;
  auto rm = MakePopulation(50, 0.0, 120.0, 3);

  UniformGridEnvironment grid;
  grid.Update(rm, p, ExecMode::kSerial);
  const GridGeometry& g = grid.geometry();
  if (g.num_boxes_axis.z < 4) {
    GTEST_SKIP() << "domain too flat to have an out-of-window plane";
  }
  ShardGrid sg;
  sg.Configure(g, 0, 1);  // window = planes {0, 1} (clamped below)
  // Find a row binned far outside the window.
  int32_t outside = -1;
  for (size_t i = 0; i < rm.size(); ++i) {
    if (g.BoxCoordinatesOf(rm.positions()[i]).z >= 3) {
      outside = static_cast<int32_t>(i);
      break;
    }
  }
  ASSERT_GE(outside, 0);
  std::vector<int32_t> members{outside};
  EXPECT_THROW(sg.Update(members, rm.positions().data()), std::logic_error);
}

TEST(ShardGridTest, UpdateIsIdempotentAcrossRebuilds) {
  Param p;
  p.max_bound = 120.0;
  auto rm = MakePopulation(100, 0.0, 120.0, 5);
  UniformGridEnvironment grid;
  grid.Update(rm, p, ExecMode::kSerial);
  const GridGeometry& g = grid.geometry();

  ShardGrid sg;
  sg.Configure(g, 0, g.num_boxes_axis.z);
  std::vector<int32_t> members(rm.size());
  std::iota(members.begin(), members.end(), 0);
  sg.Update(members, rm.positions().data());
  const auto starts = sg.box_starts();
  const auto agents = sg.box_agents();
  const auto owned = sg.owned_boxes();
  sg.Update(members, rm.positions().data());
  EXPECT_EQ(sg.box_starts(), starts);
  EXPECT_EQ(sg.box_agents(), agents);
  EXPECT_EQ(sg.owned_boxes(), owned);
}

TEST(ShardPartitionTest, StaticSplitCoversAllPlanesContiguously) {
  auto part = ShardPartition::Split(4, 10, ShardBalance::kStatic, {});
  EXPECT_EQ(part.plane_begin.front(), 0);
  EXPECT_EQ(part.plane_begin.back(), 10);
  for (uint32_t k = 0; k < 4; ++k) {
    EXPECT_LT(part.first_plane(k), part.end_plane(k));  // >= 1 plane each
    for (int32_t z = part.first_plane(k); z < part.end_plane(k); ++z) {
      EXPECT_EQ(part.OwnerOfPlane(z), static_cast<int32_t>(k));
    }
  }
}

TEST(ShardPartitionTest, AdaptiveSplitFollowsTheLoadHistogram) {
  // All the load in the last two planes: the first shards should take most
  // of the empty planes, the loaded planes should split across shards.
  std::vector<uint64_t> load(10, 0);
  load[8] = 500;
  load[9] = 500;
  auto part = ShardPartition::Split(2, 10, ShardBalance::kAdaptive, load);
  // Shard 0 keeps taking planes until it holds ~half the load -> it must
  // own plane 8 (load 500 = half) and stop there.
  EXPECT_EQ(part.end_plane(0), 9);
  EXPECT_EQ(part.first_plane(1), 9);
}

TEST(ShardPartitionTest, RejectsMoreShardsThanPlanes) {
  try {
    ShardPartition::Split(8, 3, ShardBalance::kStatic, {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("8 shards exceed the 3 z-planes"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(ShardPartition::Split(0, 3, ShardBalance::kStatic, {}),
               std::invalid_argument);
}

TEST(ShardPartitionTest, AdaptiveAlwaysGivesEveryShardAPlane) {
  // Degenerate: every agent in plane 0. Adaptive must still hand planes
  // 1..3 out so each shard owns >= 1 plane.
  std::vector<uint64_t> load(4, 0);
  load[0] = 1000;
  auto part = ShardPartition::Split(4, 4, ShardBalance::kAdaptive, load);
  for (uint32_t k = 0; k < 4; ++k) {
    EXPECT_GE(part.end_plane(k) - part.first_plane(k), 1);
  }
}

}  // namespace
}  // namespace biosim
