// CSR traversal property tests (docs/perf.md): the CSR flattening of the
// canonical box chains must be structurally exact, and the CSR-based
// neighbor traversal must visit *exactly* the same (neighbor, d²) sequence
// as the linked-chain traversal — same order, same indices, equal distances
// — on random, clustered, torus-wrapped, and degenerate (1–2 boxes per
// axis) inputs. This is the contract the fused force kernel's bitwise
// equality rests on.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "../test_util.h"
#include "core/param.h"
#include "core/random.h"
#include "core/resource_manager.h"
#include "spatial/uniform_grid.h"

namespace biosim {
namespace {

using Visit = std::pair<AgentIndex, double>;

std::vector<Visit> CollectChain(const UniformGridEnvironment& env,
                                const ResourceManager& rm, AgentIndex q,
                                double radius) {
  std::vector<Visit> out;
  env.ForEachNeighborWithinRadius(
      q, rm, radius, [&](AgentIndex j, double d2) { out.emplace_back(j, d2); });
  return out;
}

std::vector<Visit> CollectCsr(const UniformGridEnvironment& env,
                              const ResourceManager& rm, AgentIndex q,
                              double radius) {
  std::vector<Visit> out;
  env.ForEachNeighborWithinRadiusCsr(
      q, rm, radius, [&](AgentIndex j, double d2) { out.emplace_back(j, d2); });
  return out;
}

/// The property: for every agent, the two traversals produce the identical
/// visit sequence (order, indices, and d² values all equal).
void ExpectIdenticalSequences(const UniformGridEnvironment& env,
                              const ResourceManager& rm) {
  const double radius = env.interaction_radius();
  for (AgentIndex q = 0; q < rm.size(); ++q) {
    std::vector<Visit> chain = CollectChain(env, rm, q, radius);
    std::vector<Visit> csr = CollectCsr(env, rm, q, radius);
    ASSERT_EQ(chain.size(), csr.size()) << "agent " << q;
    for (size_t k = 0; k < chain.size(); ++k) {
      EXPECT_EQ(chain[k].first, csr[k].first) << "agent " << q << " visit " << k;
      EXPECT_EQ(chain[k].second, csr[k].second)
          << "agent " << q << " visit " << k;
    }
  }
}

/// CSR structural invariants: a valid exclusive prefix sum over box
/// occupancy, rows ascending, and row contents identical to the chains.
void ExpectValidCsr(const UniformGridEnvironment& env, size_t n) {
  const auto& starts = env.box_starts();
  const auto& agents = env.box_agents();
  ASSERT_EQ(starts.size(), env.total_boxes() + 1);
  ASSERT_EQ(agents.size(), n);
  EXPECT_EQ(starts.front(), 0);
  EXPECT_EQ(static_cast<size_t>(starts.back()), n);
  std::vector<bool> seen(n, false);
  for (size_t b = 0; b < env.total_boxes(); ++b) {
    ASSERT_LE(starts[b], starts[b + 1]);
    EXPECT_EQ(starts[b + 1] - starts[b], env.box_count(b)) << "box " << b;
    int32_t chain = env.box_start(b);
    for (int32_t t = starts[b]; t < starts[b + 1]; ++t) {
      if (t > starts[b]) {
        EXPECT_LT(agents[t - 1], agents[t]) << "box " << b;  // ascending
      }
      ASSERT_EQ(agents[t], chain) << "box " << b;  // same content as chain
      ASSERT_FALSE(seen[static_cast<size_t>(agents[t])]);
      seen[static_cast<size_t>(agents[t])] = true;
      chain = env.successors()[static_cast<size_t>(chain)];
    }
    EXPECT_EQ(chain, UniformGridEnvironment::kEmpty) << "box " << b;
  }
  // Every agent appears exactly once: a permutation of 0..n-1.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(seen[i]) << "agent " << i << " missing from box_agents";
  }
}

Param ClampParam(double hi) {
  Param p;
  p.min_bound = 0.0;
  p.max_bound = hi;
  return p;
}

Param TorusParam(double edge) {
  Param p = ClampParam(edge);
  p.boundary_mode = BoundaryMode::kTorus;
  return p;
}

TEST(CsrTraversalTest, RandomUniformMatchesChain) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 400, 0.0, 100.0, 10.0, /*seed=*/7);
  UniformGridEnvironment env;
  env.Update(rm, ClampParam(100.0), ExecMode::kSerial);
  ExpectValidCsr(env, rm.size());
  ExpectIdenticalSequences(env, rm);
}

TEST(CsrTraversalTest, ClusteredBallMatchesChain) {
  // Dense ball in a mostly empty domain: occupancy ranges from packed core
  // boxes to empty corners, so CSR rows of very different lengths meet the
  // clamped boundary blocks.
  ResourceManager rm;
  Random rng(21);
  const size_t n = 300;
  rm.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    NewAgentSpec s;
    s.position = Double3{60.0, 60.0, 60.0} + rng.UnitVector() * (25.0 * rng.Uniform());
    s.diameter = 10.0;
    rm.AddAgent(std::move(s));
  }
  UniformGridEnvironment env;
  env.Update(rm, ClampParam(200.0), ExecMode::kSerial);
  ExpectValidCsr(env, rm.size());
  ExpectIdenticalSequences(env, rm);
}

TEST(CsrTraversalTest, TorusWrapMatchesChain) {
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 250, 0.0, 100.0, 12.0, /*seed=*/13);
  UniformGridEnvironment env;
  env.Update(rm, TorusParam(100.0), ExecMode::kSerial);
  ASSERT_TRUE(env.is_torus());
  ExpectValidCsr(env, rm.size());
  ExpectIdenticalSequences(env, rm);
}

TEST(CsrTraversalTest, DegenerateTwoBoxTorusAxesMatchChain) {
  // 100/40 -> 2 boxes per axis: the periodic offset range collapses to
  // {-1, 0} so boxes are not visited twice. The traversals must agree on
  // that reduction.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 120, 0.0, 100.0, 40.0, /*seed=*/3);
  UniformGridEnvironment env;
  env.Update(rm, TorusParam(100.0), ExecMode::kSerial);
  ASSERT_EQ(env.num_boxes_axis().x, 2);
  ExpectValidCsr(env, rm.size());
  ExpectIdenticalSequences(env, rm);
}

TEST(CsrTraversalTest, DegenerateSingleBoxTorusAxesMatchChain) {
  // 100/60 -> 1 box per axis: the only box is its own neighborhood exactly
  // once (offset range {0}).
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 60, 0.0, 100.0, 60.0, /*seed=*/5);
  UniformGridEnvironment env;
  env.Update(rm, TorusParam(100.0), ExecMode::kSerial);
  ASSERT_EQ(env.num_boxes_axis().x, 1);
  ExpectValidCsr(env, rm.size());
  ExpectIdenticalSequences(env, rm);
}

TEST(CsrTraversalTest, SmallClampedDomainMatchesChain) {
  // Non-periodic degenerate shape: 1-2 boxes per axis with clamped faces.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 80, 0.0, 50.0, 30.0, /*seed=*/11);
  UniformGridEnvironment env;
  env.Update(rm, ClampParam(50.0), ExecMode::kSerial);
  ASSERT_LE(env.num_boxes_axis().x, 2);
  ExpectValidCsr(env, rm.size());
  ExpectIdenticalSequences(env, rm);
}

TEST(CsrTraversalTest, ParallelBuildProducesIdenticalCsr) {
  // The CSR arrays are part of the determinism contract: serial and
  // parallel builds must flatten to byte-identical layouts.
  ResourceManager rm;
  testutil::FillRandomCells(&rm, 500, 0.0, 100.0, 10.0, /*seed=*/17);
  UniformGridEnvironment serial_env;
  serial_env.Update(rm, ClampParam(100.0), ExecMode::kSerial);
  UniformGridEnvironment parallel_env;
  parallel_env.Update(rm, ClampParam(100.0), ExecMode::kParallel);
  EXPECT_EQ(serial_env.box_starts(), parallel_env.box_starts());
  EXPECT_EQ(serial_env.box_agents(), parallel_env.box_agents());
}

TEST(CsrTraversalTest, EmptyPopulationHasEmptyCsr) {
  ResourceManager rm;
  UniformGridEnvironment env;
  env.Update(rm, ClampParam(100.0), ExecMode::kSerial);
  EXPECT_EQ(env.box_agents().size(), 0u);
  ASSERT_GE(env.box_starts().size(), 2u);
  EXPECT_EQ(env.box_starts().front(), 0);
  EXPECT_EQ(env.box_starts().back(), 0);
}

}  // namespace
}  // namespace biosim
