// Fixture: shard scope that buffers its effects; the deposit applies
// OUTSIDE the region in global row order, and the one sanctioned in-scope
// write carries an allow() marker. No findings expected.
#include <utility>
#include <vector>

#define BIOSIM_SHARD_SCOPE_BEGIN() static_cast<void>(0)
#define BIOSIM_SHARD_SCOPE_END() static_cast<void>(0)

namespace fixture {
struct Grid {
  void IncreaseConcentrationBy(int, double) {}
};

void StepShard(Grid* grid, const std::vector<int>& rows,
               std::vector<std::pair<int, double>>* pending) {
  BIOSIM_SHARD_SCOPE_BEGIN();
  for (int row : rows) {
    pending->emplace_back(row, 0.5);  // buffered for the global merge
  }
  // A reviewed exception stays visible at the call site:
  // biosim-lint: allow(cross-shard-write, direct-deposit)
  grid->IncreaseConcentrationBy(0, 0.0);
  BIOSIM_SHARD_SCOPE_END();
  // The sanctioned apply site: serial, ascending row order.
  for (const auto& [row, amount] : *pending) {
    // biosim-lint: allow(direct-deposit)
    grid->IncreaseConcentrationBy(row, amount);
  }
}
}  // namespace fixture
