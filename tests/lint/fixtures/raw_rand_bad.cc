// Fixture: raw-rand violations. Expected findings on lines 8, 9, 12.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {
double JitteredDelay() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  double jitter = static_cast<double>(rand()) / RAND_MAX;
  return jitter;
}
std::mt19937 shared_engine;  // shared mutable generator
}  // namespace fixture
