// Fixture: direct-deposit violations. Expected findings on lines 14, 15.
namespace fixture {
struct Double3 {
  double x, y, z;
};
struct DiffusionGrid {
  void IncreaseConcentrationBy(const Double3& pos, double amount);
};

struct SecretionBehavior {
  DiffusionGrid* grid = nullptr;
  void Run(const Double3& pos) {
    // Writing the field from a (possibly parallel) behavior pass:
    grid->IncreaseConcentrationBy(pos, 1.0);
    (*grid).IncreaseConcentrationBy(pos, 2.0);
  }
};
}  // namespace fixture
