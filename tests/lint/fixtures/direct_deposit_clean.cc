// Fixture: the sanctioned deposit path — behaviors go through the buffered
// SimContext sink; declaring IncreaseConcentrationBy (no receiver) is fine.
namespace fixture {
struct Double3 {
  double x, y, z;
};
struct DiffusionGrid {
  // Declaration only; not a receiver-qualified call.
  void IncreaseConcentrationBy(const Double3& pos, double amount);
};
struct SimContext {
  void DepositSubstance(const Double3& pos, double amount);
};

struct SecretionBehavior {
  void Run(SimContext& ctx, const Double3& pos) {
    ctx.DepositSubstance(pos, 1.0);  // buffered, merged in agent-index order
  }
};
}  // namespace fixture
