// Fixture: deterministic reductions — chunk-ordered partial merge (the
// ParallelReduce idiom) and integer atomics, which carry no FP ordering.
#include <atomic>
#include <cstddef>
#include <vector>

namespace fixture {
double SumForces(const double* f, size_t n, size_t nchunks) {
  std::vector<double> partials(nchunks, 0.0);
  // (Each chunk runs on its own worker; the loop here stands in for the
  // parallel region.)
  for (size_t c = 0; c < nchunks; ++c) {
    size_t chunk = (n + nchunks - 1) / nchunks;
    size_t begin = c * chunk;
    size_t end = begin + chunk < n ? begin + chunk : n;
    for (size_t i = begin; i < end; ++i) {
      partials[c] += f[i];
    }
  }
  double total = 0.0;
  for (double p : partials) {  // combined in chunk order: deterministic
    total += p;
  }
  return total;
}
std::atomic<size_t> g_eval_count{0};  // integer atomic: order-independent
}  // namespace fixture
