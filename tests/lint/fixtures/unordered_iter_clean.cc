// Fixture: unordered containers used only for O(1) lookup (the profiler /
// metrics-registry idiom: a hash index beside first-seen-ordered storage).
#include <cstdio>
#include <deque>
#include <string>
#include <unordered_map>

namespace fixture {
struct Entry {
  std::string name;
  double ms = 0.0;
};

class Profile {
 public:
  void Add(const std::string& name, double ms) {
    auto it = index_.find(name);
    if (it == index_.end()) {
      it = index_.emplace(name, entries_.size()).first;
      entries_.push_back(Entry{name, 0.0});
    }
    entries_[it->second].ms += ms;
  }
  void Emit() const {
    // Iteration happens over the deque (first-seen order), never the map.
    for (const Entry& e : entries_) {
      std::printf("%s %f\n", e.name.c_str(), e.ms);
    }
  }

 private:
  std::deque<Entry> entries_;
  std::unordered_map<std::string, size_t> index_;
};
}  // namespace fixture
