// Fixture: every violation carries a `biosim-lint: allow(<rule>)` escape
// hatch — same-line or line-above form. Expected: zero findings.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <unordered_map>

namespace fixture {
void Seeded() {
  // Same-line suppression:
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // biosim-lint: allow(raw-rand)
  // Line-above suppression:
  // biosim-lint: allow(raw-rand)
  int jitter = std::rand();
  static_cast<void>(jitter);
}

int SumValues(const std::unordered_map<int, int>& m) {
  int total = 0;
  // biosim-lint: allow(unordered-iter) -- order-independent integer sum
  for (const auto& kv : m) {
    total += kv.second;
  }
  return total;
}

void BestEffortLog(std::FILE* f) {
  const char msg[] = "done\n";
  // Best-effort trailer, loss is acceptable here:
  std::fwrite(msg, 1, sizeof(msg) - 1, f);  // biosim-lint: allow(unchecked-io)
}
}  // namespace fixture
