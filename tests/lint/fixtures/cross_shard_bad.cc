// Fixture: cross-shard-write violations. A shard scope may not apply
// domain-global effects directly, and must not call Barrier in-scope.
// Expected findings: line 15 (also direct-deposit), 16, 17, 18.
#define BIOSIM_SHARD_SCOPE_BEGIN() static_cast<void>(0)
#define BIOSIM_SHARD_SCOPE_END() static_cast<void>(0)

namespace fixture {
struct Grid { void IncreaseConcentrationBy(const double*, double) {} };
struct Rm { void AddAgent(int) {} void RemoveAgent(int) {} };
struct Comm { void Barrier() {} };

void StepShard(Grid* grid, Rm& rm, Comm& comm, const double* pos) {
  BIOSIM_SHARD_SCOPE_BEGIN();
  // Each of these must be buffered and merged after the phase join:
  grid->IncreaseConcentrationBy(pos, 0.5);
  rm.AddAgent(1);
  rm.RemoveAgent(2);
  comm.Barrier();
  BIOSIM_SHARD_SCOPE_END();
}
}  // namespace fixture
