// Fixture: fp-omp-reduction violations. Expected findings on lines 9, 16,
// 21.
#include <atomic>
#include <cstddef>

namespace fixture {
double SumForces(const double* f, size_t n) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total)
  for (size_t i = 0; i < n; ++i) {
    total += f[i];
  }
  double piecewise = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Schedule-ordered FP accumulation:
#pragma omp atomic
    piecewise += f[i];
  }
  return total + piecewise;
}
std::atomic<double> g_accumulator{0.0};
}  // namespace fixture
