// Fixture: the sanctioned pattern — counter-based streams from
// core/random.h. Mentions of rand() or time() in comments or strings must
// not trip the rule: "never call rand() here".
#include <cstdint>

namespace fixture {
struct Random {
  static Random ForStream(uint64_t seed, uint64_t stream, uint64_t counter);
  double Uniform();
};

double JitteredDelay(uint64_t seed, uint64_t uid, uint64_t step) {
  Random rng = Random::ForStream(seed, uid, step);
  const char* doc = "rand() and srand() are banned; see docs";
  (void)doc;
  return rng.Uniform();  // reproducible at any thread count
}
}  // namespace fixture
