// Fixture: unordered-iter violations. Expected findings on lines 11, 16.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {
void EmitReport(const std::unordered_map<std::string, double>& totals) {
  std::unordered_set<int> seen;
  seen.insert(1);
  for (const auto& [name, ms] : totals) {
    std::printf("%s %f\n", name.c_str(), ms);
  }
  // Iterator-loop form over the set:
  double sum = 0.0;
  for (auto it = seen.begin(); it != seen.end(); ++it) {
    sum += *it;
  }
  (void)sum;
}
}  // namespace fixture
