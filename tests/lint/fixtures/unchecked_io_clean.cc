// Fixture: every I/O result is consumed — assigned, compared, or returned.
#include <cstdio>

namespace fixture {
bool SaveHeader(std::FILE* f) {
  const char magic[8] = {'B', 'I', 'O', 'S', 'I', 'M', 'C', 'K'};
  if (std::fwrite(magic, 1, sizeof(magic), f) != sizeof(magic)) {
    return false;
  }
  unsigned char buf[8];
  size_t got = std::fread(buf, 1, sizeof(buf), f);
  return got == sizeof(buf) && fread(buf, 1, 1, f) == 1;
}
}  // namespace fixture
