// Fixture: hot-loop-virtual violations. Expected findings on lines 21, 24.
#include <cstddef>
#include <typeinfo>

#define BIOSIM_HOT_LOOP_BEGIN() static_cast<void>(0)
#define BIOSIM_HOT_LOOP_END() static_cast<void>(0)

namespace fixture {
struct Force {
  virtual ~Force() = default;  // outside the region: fine
  virtual double Eval(double d) const = 0;
};
struct Linear : Force {
  double Eval(double d) const override { return d * 2.0; }
};

double Accumulate(Force* base, const double* dist, size_t n) {
  double sum = 0.0;
  BIOSIM_HOT_LOOP_BEGIN();
  for (size_t i = 0; i < n; ++i) {
    if (auto* lin = dynamic_cast<Linear*>(base)) {
      sum += lin->Eval(dist[i]);
    }
    if (typeid(*base) == typeid(Linear)) {
      sum += 1.0;
    }
  }
  BIOSIM_HOT_LOOP_END();
  return sum;
}
}  // namespace fixture
