// Fixture: hot-loop markers present, but dispatch is resolved OUTSIDE the
// region — the per-agent loop body is monomorphic. No findings expected.
#include <cstddef>

#define BIOSIM_HOT_LOOP_BEGIN() static_cast<void>(0)
#define BIOSIM_HOT_LOOP_END() static_cast<void>(0)

namespace fixture {
struct Force {
  virtual ~Force() = default;
  virtual double Coefficient() const = 0;
};
struct Linear : Force {
  double Coefficient() const override { return 2.0; }
};

double Accumulate(const Force& f, const double* dist, size_t n) {
  // One virtual call, hoisted out of the loop.
  const double k = f.Coefficient();
  double sum = 0.0;
  BIOSIM_HOT_LOOP_BEGIN();
  for (size_t i = 0; i < n; ++i) {
    sum += k * dist[i];
  }
  BIOSIM_HOT_LOOP_END();
  return sum;
}
}  // namespace fixture
