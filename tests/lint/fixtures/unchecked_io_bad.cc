// Fixture: unchecked-io violations. Expected findings on lines 9, 11.
#include <cstdio>

namespace fixture {
void SaveHeader(std::FILE* f) {
  const char magic[8] = {'B', 'I', 'O', 'S', 'I', 'M', 'C', 'K'};
  double version = 1.0;
  // Both results discarded — a full disk truncates the checkpoint silently:
  std::fwrite(magic, 1, sizeof(magic), f);
  unsigned char buf[8];
  fread(buf, 1, sizeof(buf), f);
}
}  // namespace fixture
