// Fixture-driven contract tests for biosim-lint (tools/biosim_lint/).
//
// Two layers:
//  - library level: LintFile() over the fixture corpus in
//    tests/lint/fixtures/, asserting exact rule ids and 1-based line
//    numbers for every known-violation fixture and zero findings for every
//    clean fixture (including the allow-comment suppression fixture);
//  - binary level: the installed `biosim-lint` executable is spawned to pin
//    down the CLI contract (exit 0 = clean, 1 = findings, 2 = usage error;
//    `file:line: error: [rule-id]` output format).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

#ifndef BIOSIM_LINT_BIN
#error "BIOSIM_LINT_BIN must point at the biosim-lint binary"
#endif
#ifndef BIOSIM_LINT_FIXTURES
#error "BIOSIM_LINT_FIXTURES must point at tests/lint/fixtures"
#endif

namespace biosimlint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(BIOSIM_LINT_FIXTURES) + "/" + name;
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::vector<Finding> LintFixture(const std::string& name,
                                 const Options& opts = {}) {
  return LintFile(name, ReadFixture(name), opts);
}

// (rule, line) pairs, sorted — the shape every expectation below uses.
std::vector<std::pair<std::string, int>> RuleLines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  for (const auto& f : findings) {
    out.emplace_back(f.rule, f.line);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  return out;
}

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

RunResult RunLint(const std::string& args) {
  RunResult r;
  std::string cmd = std::string(BIOSIM_LINT_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to spawn " << cmd;
  if (pipe == nullptr) {
    return r;
  }
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    r.output.append(buf, got);
  }
  int status = ::pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status)) << "abnormal termination of " << cmd;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string FixturePath(const std::string& name) {
  return std::string(BIOSIM_LINT_FIXTURES) + "/" + name;
}

// ---------------------------------------------------------------------------
// Library level: one known-violation fixture per rule, exact lines.

TEST(BiosimLintTest, RawRandFixtureViolations) {
  auto got = RuleLines(LintFixture("raw_rand_bad.cc"));
  std::vector<std::pair<std::string, int>> want = {
      {kRawRand, 8},  // srand(...)
      {kRawRand, 8},  // ...time(nullptr) on the same line
      {kRawRand, 9},  // rand()
      {kRawRand, 12},  // std::mt19937
  };
  EXPECT_EQ(got, want);
}

TEST(BiosimLintTest, UnorderedIterFixtureViolations) {
  auto got = RuleLines(LintFixture("unordered_iter_bad.cc"));
  std::vector<std::pair<std::string, int>> want = {
      {kUnorderedIter, 11},  // range-for over unordered_map
      {kUnorderedIter, 16},  // iterator loop over unordered_set
  };
  EXPECT_EQ(got, want);
}

TEST(BiosimLintTest, DirectDepositFixtureViolations) {
  auto got = RuleLines(LintFixture("direct_deposit_bad.cc"));
  std::vector<std::pair<std::string, int>> want = {
      {kDirectDeposit, 14},  // grid->IncreaseConcentrationBy
      {kDirectDeposit, 15},  // (*grid).IncreaseConcentrationBy
  };
  EXPECT_EQ(got, want);
}

TEST(BiosimLintTest, FpOmpReductionFixtureViolations) {
  auto got = RuleLines(LintFixture("fp_omp_reduction_bad.cc"));
  std::vector<std::pair<std::string, int>> want = {
      {kFpOmpReduction, 9},  // #pragma omp ... reduction(+ : total)
      {kFpOmpReduction, 16},  // #pragma omp atomic
      {kFpOmpReduction, 21},  // std::atomic<double>
  };
  EXPECT_EQ(got, want);
}

TEST(BiosimLintTest, UncheckedIoFixtureViolations) {
  auto got = RuleLines(LintFixture("unchecked_io_bad.cc"));
  std::vector<std::pair<std::string, int>> want = {
      {kUncheckedIo, 9},  // discarded std::fwrite
      {kUncheckedIo, 11},  // discarded fread
  };
  EXPECT_EQ(got, want);
}

TEST(BiosimLintTest, HotLoopVirtualFixtureViolations) {
  auto got = RuleLines(LintFixture("hot_loop_virtual_bad.cc"));
  std::vector<std::pair<std::string, int>> want = {
      {kHotLoopVirtual, 21},  // dynamic_cast inside the marked region
      {kHotLoopVirtual, 24},  // typeid inside the marked region
  };
  EXPECT_EQ(got, want);
}

TEST(BiosimLintTest, CrossShardWriteFixtureViolations) {
  auto got = RuleLines(LintFixture("cross_shard_bad.cc"));
  std::vector<std::pair<std::string, int>> want = {
      // The in-scope deposit trips both the shard rule and the global
      // deposit-discipline rule.
      {kCrossShardWrite, 15},
      {kDirectDeposit, 15},
      {kCrossShardWrite, 16},  // AddAgent
      {kCrossShardWrite, 17},  // RemoveAgent
      {kCrossShardWrite, 18},  // Communicator::Barrier
  };
  EXPECT_EQ(got, want);
}

TEST(BiosimLintTest, UnclosedShardScopeIsAFinding) {
  std::string code =
      "#define BIOSIM_SHARD_SCOPE_BEGIN() static_cast<void>(0)\n"
      "void f() {\n"
      "  BIOSIM_SHARD_SCOPE_BEGIN();\n"
      "}\n";
  auto findings = LintFile("unclosed.cc", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kCrossShardWrite);
  EXPECT_EQ(findings[0].line, 3);
}

// ---------------------------------------------------------------------------
// Library level: the clean twin of every rule must produce zero findings.

TEST(BiosimLintTest, CleanFixturesHaveNoFindings) {
  const char* clean[] = {
      "raw_rand_clean.cc",        "unordered_iter_clean.cc",
      "direct_deposit_clean.cc",  "fp_omp_reduction_clean.cc",
      "unchecked_io_clean.cc",    "hot_loop_virtual_clean.cc",
      "cross_shard_clean.cc",
  };
  for (const char* name : clean) {
    auto findings = LintFixture(name);
    EXPECT_TRUE(findings.empty())
        << name << ": unexpected [" << (findings.empty() ? "" : findings[0].rule)
        << "] at line " << (findings.empty() ? 0 : findings[0].line);
  }
}

// The corpus as a whole exercises every rule the checker knows about.
TEST(BiosimLintTest, CorpusCoversAllRules) {
  std::set<std::string> fired;
  const char* bad[] = {
      "raw_rand_bad.cc",        "unordered_iter_bad.cc",
      "direct_deposit_bad.cc",  "fp_omp_reduction_bad.cc",
      "unchecked_io_bad.cc",    "hot_loop_virtual_bad.cc",
      "cross_shard_bad.cc",
  };
  for (const char* name : bad) {
    for (const auto& f : LintFixture(name)) {
      fired.insert(f.rule);
    }
  }
  EXPECT_EQ(fired.size(), Rules().size()) << "a rule has no firing fixture";
  for (const auto& rule : Rules()) {
    EXPECT_TRUE(fired.count(rule.id)) << "no fixture fires " << rule.id;
  }
}

// ---------------------------------------------------------------------------
// Suppression: allow() comments silence exactly the named rule.

TEST(BiosimLintTest, AllowCommentsSuppressFindings) {
  EXPECT_TRUE(LintFixture("allow_suppression.cc").empty());
}

TEST(BiosimLintTest, AllowCommentsAreLoadBearing) {
  // Strip every allow() marker from the suppression fixture: the violations
  // underneath must resurface, proving the comments (not scanner blind
  // spots) are what keep the fixture clean.
  std::string content = ReadFixture("allow_suppression.cc");
  std::string marker = "biosim-lint: allow";
  std::string neutered = "biosim-lint: noted";
  size_t pos = 0;
  int replaced = 0;
  while ((pos = content.find(marker, pos)) != std::string::npos) {
    content.replace(pos, marker.size(), neutered);
    ++replaced;
  }
  ASSERT_GE(replaced, 3) << "fixture lost its allow() comments";
  auto findings = LintFile("allow_suppression.cc", content);
  std::set<std::string> rules;
  for (const auto& f : findings) {
    rules.insert(f.rule);
  }
  EXPECT_TRUE(rules.count(kRawRand));
  EXPECT_TRUE(rules.count(kUnorderedIter));
  EXPECT_TRUE(rules.count(kUncheckedIo));
}

TEST(BiosimLintTest, AllowOnlySilencesTheNamedRule) {
  // allow(unordered-iter) must not excuse a raw-rand hit on the same line.
  std::string code =
      "#include <cstdlib>\n"
      "int f() {\n"
      "  return std::rand();  // biosim-lint: allow(unordered-iter)\n"
      "}\n";
  auto findings = LintFile("mismatch.cc", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRawRand);
  EXPECT_EQ(findings[0].line, 3);
}

// ---------------------------------------------------------------------------
// Rule selection and the comment/string stripper.

TEST(BiosimLintTest, RuleFilterRestrictsFindings) {
  Options opts;
  opts.rules.insert(kRawRand);
  EXPECT_FALSE(LintFixture("raw_rand_bad.cc", opts).empty());
  EXPECT_TRUE(LintFixture("unordered_iter_bad.cc", opts).empty())
      << "disabled rule still fired";
}

TEST(BiosimLintTest, StripperBlanksCommentsAndStrings) {
  std::string code =
      "int a; // rand()\n"
      "const char* s = \"rand()\"; /* time(\n"
      "rand() */ int b;\n";
  auto lines = StripCommentsAndStrings(code);
  ASSERT_GE(lines.size(), 3u);  // a trailing empty line after the final \n is fine
  EXPECT_EQ(lines[0].find("rand"), std::string::npos);
  EXPECT_EQ(lines[1].find("rand"), std::string::npos);
  EXPECT_EQ(lines[2].find("rand"), std::string::npos);
  EXPECT_NE(lines[0].find("int a;"), std::string::npos);
  EXPECT_NE(lines[2].find("int b;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Binary level: exit codes and output format of the installed checker.

TEST(BiosimLintCliTest, FixtureDirectoryExitsOneWithFormattedFindings) {
  RunResult r = RunLint(FixturePath(""));
  EXPECT_EQ(r.exit_code, 1);
  // `file:line: error: [rule-id] message` — the format editors and CI
  // annotations parse.
  EXPECT_NE(r.output.find("raw_rand_bad.cc:9: error: [raw-rand]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unchecked_io_bad.cc:9: error: [unchecked-io]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("hot_loop_virtual_bad.cc:21: error:"
                          " [hot-loop-virtual]"),
            std::string::npos)
      << r.output;
}

TEST(BiosimLintCliTest, CleanFileExitsZero) {
  RunResult r = RunLint(FixturePath("raw_rand_clean.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(BiosimLintCliTest, SuppressedFileExitsZero) {
  RunResult r = RunLint(FixturePath("allow_suppression.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(BiosimLintCliTest, UnknownRuleIsAUsageError) {
  RunResult r = RunLint("--rule=no-such-rule " + FixturePath("raw_rand_clean.cc"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(BiosimLintCliTest, ListRulesNamesAllSix) {
  RunResult r = RunLint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const auto& rule : Rules()) {
    EXPECT_NE(r.output.find(rule.id), std::string::npos)
        << "--list-rules missing " << rule.id;
  }
}

TEST(BiosimLintCliTest, RuleFilterOnCli) {
  // Restricted to unordered-iter, the raw-rand fixture is clean...
  RunResult r =
      RunLint("--rule=unordered-iter " + FixturePath("raw_rand_bad.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // ...and the unordered-iter fixture still fails.
  r = RunLint("--rule=unordered-iter " + FixturePath("unordered_iter_bad.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
}

}  // namespace
}  // namespace biosimlint
