// The CUDA-like and OpenCL-like front-ends must be interchangeable: same
// results, same counters, same simulated time (they drive one engine).
#include <gtest/gtest.h>

#include "gpusim/cuda_like.h"
#include "gpusim/opencl_like.h"
#include "gpusim/profiler.h"

namespace biosim::gpusim {
namespace {

TEST(FrontendTest, CudaVocabularyRoundTrip) {
  cuda::Runtime rt(DeviceSpec::GTX1080Ti());
  const size_t n = 300;
  auto buf = rt.Malloc<float>(n);
  std::vector<float> host(n, 3.0f);
  rt.MemcpyHostToDevice(buf, std::span<const float>(host));
  rt.LaunchKernel("square", cuda::Runtime::BlocksFor(n, 128), 128,
                  [&](BlockCtx& blk) {
                    blk.for_each_lane([&](Lane& t) {
                      if (t.gtid() < n) {
                        float v = t.ld(buf, t.gtid());
                        t.st(buf, t.gtid(), v * v);
                      }
                    });
                  });
  std::vector<float> out(n);
  rt.MemcpyDeviceToHost(std::span<float>(out), buf);
  for (float v : out) {
    ASSERT_FLOAT_EQ(v, 9.0f);
  }
}

TEST(FrontendTest, OpenClVocabularyRoundTrip) {
  opencl::CommandQueue q(DeviceSpec::GTX1080Ti());
  const size_t n = 300;
  auto buf = q.CreateBuffer<float>(n);
  std::vector<float> host(n, 2.0f);
  q.EnqueueWriteBuffer(buf, std::span<const float>(host));
  q.EnqueueNDRangeKernel("triple", n, 64, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      size_t gid = opencl::get_global_id(t);
      if (gid < n) {
        t.st(buf, gid, t.ld(buf, gid) * 3.0f);
      }
    });
  });
  std::vector<float> out(n);
  q.EnqueueReadBuffer(std::span<float>(out), buf);
  for (float v : out) {
    ASSERT_FLOAT_EQ(v, 6.0f);
  }
}

TEST(FrontendTest, OpenClWorkItemFunctions) {
  opencl::CommandQueue q(DeviceSpec::TeslaV100());
  auto ids = q.CreateBuffer<int32_t>(128);
  q.EnqueueNDRangeKernel("ids", 128, 64, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      EXPECT_EQ(opencl::get_local_size(t), 64u);
      EXPECT_EQ(opencl::get_global_id(t),
                opencl::get_group_id(t) * 64 + opencl::get_local_id(t));
      t.st(ids, opencl::get_global_id(t),
           static_cast<int32_t>(opencl::get_local_id(t)));
    });
  });
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[64], 0);
  EXPECT_EQ(ids[127], 63);
}

TEST(FrontendTest, OpenClRoundsGlobalSizeUp) {
  opencl::CommandQueue q(DeviceSpec::GTX1080Ti());
  auto buf = q.CreateBuffer<int32_t>(1);
  buf[0] = 0;
  // 100 items at local size 64 -> 2 groups (128 slots), guarded to 100.
  auto stats = q.EnqueueNDRangeKernel("tail", 100, 64, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      if (t.gtid() < 100) {
        (void)t.atomic_add(buf, 0, int32_t{1});
      }
    });
  });
  EXPECT_EQ(stats.grid_dim, 2u);
  EXPECT_EQ(buf[0], 100);
}

TEST(FrontendTest, BothFrontEndsProduceIdenticalCountersAndTiming) {
  auto kernel = [](auto& buf, size_t n) {
    return [&buf, n](BlockCtx& blk) {
      blk.for_each_lane([&](Lane& t) {
        size_t i = t.gtid();
        if (i >= n) {
          return;
        }
        float v = t.ld(buf, i);
        t.flops32(4);
        t.st(buf, i, v * 1.5f + 2.0f);
      });
    };
  };

  const size_t n = 10000;
  std::vector<float> host(n);
  for (size_t i = 0; i < n; ++i) {
    host[i] = static_cast<float>(i % 31);
  }

  cuda::Runtime rt(DeviceSpec::TeslaV100());
  auto cbuf = rt.Malloc<float>(n);
  rt.MemcpyHostToDevice(cbuf, std::span<const float>(host));
  auto cstats = rt.LaunchKernel("k", cuda::Runtime::BlocksFor(n, 128), 128,
                                kernel(cbuf, n));

  opencl::CommandQueue q(DeviceSpec::TeslaV100());
  auto obuf = q.CreateBuffer<float>(n);
  q.EnqueueWriteBuffer(obuf, std::span<const float>(host));
  auto ostats = q.EnqueueNDRangeKernel("k", n, 128, kernel(obuf, n));

  EXPECT_EQ(cstats.fp32_flops, ostats.fp32_flops);
  EXPECT_EQ(cstats.read_transactions, ostats.read_transactions);
  EXPECT_EQ(cstats.dram_read_bytes, ostats.dram_read_bytes);
  EXPECT_DOUBLE_EQ(cstats.total_ms, ostats.total_ms);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(cbuf[i], obuf[i]);
  }
}

TEST(FrontendTest, ProfileReportAggregatesLaunches) {
  cuda::Runtime rt(DeviceSpec::GTX1080Ti());
  auto buf = rt.Malloc<float>(1024);
  for (int rep = 0; rep < 3; ++rep) {
    rt.LaunchKernel("repeated", 8, 128, [&](BlockCtx& blk) {
      blk.for_each_lane([&](Lane& t) {
        t.flops32(2);
        t.st(buf, t.gtid(), 1.0f);
      });
    });
  }
  rt.LaunchKernel("other", 1, 32, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) { t.st(buf, t.lane(), 0.0f); });
  });

  ProfileReport report(rt.device());
  ASSERT_EQ(report.kernels().size(), 2u);
  const auto* rep = report.Find("repeated");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->launches, 3u);
  EXPECT_EQ(rep->fp32_flops, 3u * 1024 * 2);
  EXPECT_EQ(report.Find("nonexistent"), nullptr);
  std::string table = report.ToString();
  EXPECT_NE(table.find("repeated"), std::string::npos);
  EXPECT_NE(table.find("other"), std::string::npos);
}

TEST(FrontendTest, MeterSamplingApproximatesExactCounters) {
  auto run = [](int stride) {
    cuda::Runtime rt(DeviceSpec::TeslaV100());
    rt.device().SetMeterStride(stride);
    const size_t n = 100000;
    auto buf = rt.Malloc<float>(n);
    return rt.LaunchKernel("k", cuda::Runtime::BlocksFor(n, 128), 128,
                           [&](BlockCtx& blk) {
                             blk.for_each_lane([&](Lane& t) {
                               size_t i = t.gtid();
                               if (i >= n) {
                                 return;
                               }
                               float v = t.ld(buf, i);
                               t.flops32(8);
                               t.st(buf, i, v + 1.0f);
                             });
                           });
  };
  auto exact = run(1);
  auto sampled = run(8);
  EXPECT_NEAR(static_cast<double>(sampled.fp32_flops),
              static_cast<double>(exact.fp32_flops),
              0.05 * static_cast<double>(exact.fp32_flops));
  EXPECT_NEAR(static_cast<double>(sampled.dram_read_bytes),
              static_cast<double>(exact.dram_read_bytes),
              0.15 * static_cast<double>(exact.dram_read_bytes));
  EXPECT_NEAR(sampled.total_ms, exact.total_ms, 0.2 * exact.total_ms);
}

}  // namespace
}  // namespace biosim::gpusim
