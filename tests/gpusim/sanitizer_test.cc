// Unit tests for the GPU sanitizer engine (gpusim/sanitizer.h): every
// hazard class detected with kernel/block/lane/address attribution, no
// false positives on barrier-ordered or atomic patterns, and a byte-exact
// no-stats-drift guarantee for the off path.
#include <gtest/gtest.h>

#include <string>

#include "gpusim/device.h"
#include "gpusim/sanitizer.h"

namespace biosim::gpusim {
namespace {

DeviceSpec TestSpec() { return DeviceSpec::GTX1080Ti(); }

// --- racecheck -----------------------------------------------------------

TEST(SanitizerRacecheckTest, SharedMemoryRaceDetectedWithAttribution) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  KernelStats st = dev.Launch({"shared_race", 1, 64}, [&](BlockCtx& blk) {
    auto counter = blk.shared<int32_t>(1);
    blk.for_each_lane([&](Lane& t) {
      t.shared_st(counter, 0, static_cast<int32_t>(t.lane()));
    });
  });

  const SanitizerReport& report = san->report();
  ASSERT_GE(report.Count(HazardKind::kSharedRace), 1u);
  EXPECT_EQ(st.sanitizer_hazards, report.total());

  const Hazard& h = report.hazards()[0];
  EXPECT_EQ(h.kind, HazardKind::kSharedRace);
  EXPECT_EQ(h.kernel, "shared_race");
  EXPECT_EQ(h.space, MemSpace::kShared);
  EXPECT_EQ(h.block, 0u);
  EXPECT_NE(h.lane, h.other_lane);  // two distinct lanes named
  EXPECT_EQ(h.access, AccessKind::kWrite);
  // The report carries the colliding shared address.
  EXPECT_GE(h.addr, uint64_t{1} << 62);
  EXPECT_NE(std::string::npos, h.ToString().find("shared_race"));
}

TEST(SanitizerRacecheckTest, ReadWriteSharedConflictIsARace) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  dev.Launch({"rw_race", 1, 64}, [&](BlockCtx& blk) {
    auto cell = blk.shared<int32_t>(1);
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() == 0) {
        t.shared_st(cell, 0, 7);
      } else if (t.lane() == 1) {
        (void)t.shared_ld(cell, 0);  // unordered read of lane 0's write
      }
    });
  });
  EXPECT_GE(san->report().Count(HazardKind::kSharedRace), 1u);
}

TEST(SanitizerRacecheckTest, CrossBlockGlobalWriteConflictDetected) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  auto buf = dev.Alloc<int32_t>(4);
  dev.Launch({"global_race", 2, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() == 0) {
        t.st(buf, 0, static_cast<int32_t>(t.block()));
      }
    });
  });
  ASSERT_GE(san->report().Count(HazardKind::kGlobalRace), 1u);
  const Hazard& h = san->report().hazards()[0];
  EXPECT_NE(h.block, h.other_block);
  EXPECT_EQ(h.addr, buf.addr(0));
}

TEST(SanitizerRacecheckTest, BarrierOrderedAccessesDoNotRace) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  dev.Launch({"ordered", 1, 64}, [&](BlockCtx& blk) {
    auto cell = blk.shared<int32_t>(1);
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() == 0) {
        t.shared_st(cell, 0, 1);
      }
    });
    // __syncthreads(): every lane may now read lane 0's value.
    blk.for_each_lane([&](Lane& t) { (void)t.shared_ld(cell, 0); });
  });
  EXPECT_TRUE(san->report().clean()) << san->report().ToString();
}

TEST(SanitizerRacecheckTest, AtomicContentionIsNotARace) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  auto sum = dev.Alloc<int32_t>(1);
  sum[0] = 0;  // host-initialized
  dev.Launch({"atomic_sum", 2, 64}, [&](BlockCtx& blk) {
    auto local = blk.shared<int32_t>(1);
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() == 0) {
        t.shared_st(local, 0, 0);
      }
    });
    blk.for_each_lane([&](Lane& t) {
      t.atomic_add_shared(local, 0, int32_t{1});
    });
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() == 0) {
        t.atomic_add(sum, 0, t.shared_ld(local, 0));
      }
    });
  });
  EXPECT_TRUE(san->report().clean()) << san->report().ToString();
  EXPECT_EQ(sum[0], 128);
}

TEST(SanitizerRacecheckTest, DistinctPerLaneAddressesAreClean) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  auto buf = dev.Alloc<float>(256);
  dev.Launch({"disjoint", 2, 128}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      t.st(buf, t.gtid(), static_cast<float>(t.gtid()));
    });
    blk.for_each_lane([&](Lane& t) {
      t.st(buf, t.gtid(), t.ld(buf, t.gtid()) * 2.0f);
    });
  });
  EXPECT_TRUE(san->report().clean()) << san->report().ToString();
}

// --- memcheck ------------------------------------------------------------

TEST(SanitizerMemcheckTest, OutOfBoundsReadDetectedAndSuppressed) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  const size_t n = 64;
  auto buf = dev.Alloc<float>(n);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = 1.0f;
  }
  dev.Launch({"oob_read", 1, 64}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      // Off-by-one: lane 63 reads buf[64].
      (void)t.ld(buf, t.gtid() + 1);
    });
  });
  ASSERT_EQ(san->report().Count(HazardKind::kOutOfBounds), 1u);
  const Hazard& h = san->report().hazards()[0];
  EXPECT_EQ(h.kernel, "oob_read");
  EXPECT_EQ(h.lane, 63u);
  EXPECT_EQ(h.block, 0u);
  EXPECT_EQ(h.addr, buf.addr(n));  // one element past the end
  EXPECT_EQ(h.access, AccessKind::kRead);
  EXPECT_NE(std::string::npos, h.detail.find("index 64"));
}

TEST(SanitizerMemcheckTest, OutOfBoundsWriteSuppressedNotExecuted) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  auto buf = dev.Alloc<int32_t>(32);
  dev.Launch({"oob_write", 1, 64}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      t.st(buf, t.gtid(), static_cast<int32_t>(t.gtid()));
    });
  });
  // Lanes 32..63 were suppressed; the 32 valid stores landed.
  EXPECT_GE(san->report().Count(HazardKind::kOutOfBounds), 1u);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(buf[i], static_cast<int32_t>(i));
  }
}

TEST(SanitizerMemcheckTest, NeverWrittenGlobalReadDetected) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  auto buf = dev.Alloc<float>(64);  // allocated, never written
  dev.Launch({"uninit_global", 1, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) { (void)t.ld(buf, t.gtid()); });
  });
  EXPECT_GE(san->report().Count(HazardKind::kUninitializedRead), 1u);
  EXPECT_EQ(san->report().hazards()[0].kernel, "uninit_global");
}

TEST(SanitizerMemcheckTest, H2DCopyInitializesPrefixOnly) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  auto buf = dev.Alloc<float>(64);
  std::vector<float> host(32, 1.0f);
  dev.CopyToDevice(buf, std::span<const float>(host));
  dev.Launch({"read_prefix", 1, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) { (void)t.ld(buf, t.gtid()); });
  });
  EXPECT_TRUE(san->report().clean());
  dev.Launch({"read_tail", 1, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) { (void)t.ld(buf, 32 + t.gtid()); });
  });
  EXPECT_GE(san->report().Count(HazardKind::kUninitializedRead), 1u);
}

TEST(SanitizerMemcheckTest, UninitializedSharedReadDetected) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  dev.Launch({"uninit_shared", 1, 32}, [&](BlockCtx& blk) {
    auto scratch = blk.shared<float>(32);
    blk.for_each_lane([&](Lane& t) {
      // Relies on the simulator's zero-fill — garbage on real hardware.
      (void)t.shared_ld(scratch, t.lane());
    });
  });
  EXPECT_GE(san->report().Count(HazardKind::kUninitializedRead), 1u);
  EXPECT_EQ(san->report().hazards()[0].space, MemSpace::kShared);
}

TEST(SanitizerMemcheckTest, SharedOverAllocationReported) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  size_t limit = TestSpec().shared_mem_per_block;
  dev.Launch({"shared_overflow", 1, 32}, [&](BlockCtx& blk) {
    auto big = blk.shared<char>(limit + 1);
    (void)big;
    blk.for_each_lane([&](Lane&) {});
  });
  ASSERT_EQ(san->report().Count(HazardKind::kSharedOverflow), 1u);
  EXPECT_NE(std::string::npos,
            san->report().hazards()[0].detail.find(std::to_string(limit)));
}

// --- synccheck -----------------------------------------------------------

TEST(SanitizerSynccheckTest, BarrierCountDivergenceDetected) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  auto buf = dev.Alloc<int32_t>(128);
  dev.Launch({"divergent_sync", 2, 64}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      t.st(buf, t.gtid(), 1);
    });
    if (blk.block() == 0) {  // barrier under block-dependent control flow
      blk.for_each_lane([&](Lane& t) {
        t.st(buf, t.gtid(), 2);
      });
    }
  });
  ASSERT_EQ(san->report().Count(HazardKind::kBarrierDivergence), 1u);
  const Hazard& h = san->report().hazards()[0];
  EXPECT_EQ(h.kernel, "divergent_sync");
  EXPECT_NE(std::string::npos, h.detail.find("barrier intervals"));
}

TEST(SanitizerSynccheckTest, SharedAllocationDivergenceDetected) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  dev.Launch({"divergent_shared", 2, 32}, [&](BlockCtx& blk) {
    auto a = blk.shared<float>(blk.block() == 0 ? 64 : 32);
    (void)a;
    blk.for_each_lane([&](Lane&) {});
  });
  EXPECT_EQ(san->report().Count(HazardKind::kSharedAllocDivergence), 1u);
}

TEST(SanitizerSynccheckTest, UniformBlocksAreClean) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  auto buf = dev.Alloc<int32_t>(256);
  dev.Launch({"uniform", 4, 64}, [&](BlockCtx& blk) {
    auto s = blk.shared<int32_t>(64);
    blk.for_each_lane([&](Lane& t) {
      t.shared_st(s, t.lane(), static_cast<int32_t>(t.lane()));
    });
    blk.for_each_lane([&](Lane& t) {
      t.st(buf, t.gtid(), t.shared_ld(s, t.lane()));
    });
  });
  EXPECT_TRUE(san->report().clean()) << san->report().ToString();
}

// --- report / config -----------------------------------------------------

TEST(SanitizerReportTest, TextReportNamesToolsAndSummarizes) {
  Device dev(TestSpec());
  Sanitizer* san = dev.EnableSanitizer();
  dev.Launch({"reported_race", 1, 64}, [&](BlockCtx& blk) {
    auto c = blk.shared<int32_t>(1);
    blk.for_each_lane([&](Lane& t) {
      t.shared_st(c, 0, static_cast<int32_t>(t.lane()));
    });
  });
  std::string text = san->report().ToString();
  EXPECT_NE(std::string::npos, text.find("RACECHECK"));
  EXPECT_NE(std::string::npos, text.find("reported_race"));
  EXPECT_NE(std::string::npos, text.find("SANITIZER SUMMARY"));
  EXPECT_GE(san->report().CountTool("RACECHECK"), 1u);
  EXPECT_EQ(san->report().CountTool("MEMCHECK"), 0u);
}

TEST(SanitizerReportTest, MaxHazardsCapsStorageNotCounts) {
  Device dev(TestSpec());
  SanitizerConfig cfg;
  cfg.max_hazards = 2;
  Sanitizer* san = dev.EnableSanitizer(cfg);
  auto buf = dev.Alloc<float>(8);
  dev.Launch({"many_oob", 1, 64}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      (void)t.ld(buf, 100 + t.lane());  // 64 distinct OOB reads
    });
  });
  EXPECT_EQ(san->report().hazards().size(), 2u);
  EXPECT_EQ(san->report().total(), 64u);
  EXPECT_EQ(san->report().dropped(), 62u);
}

TEST(SanitizerConfigTest, DisabledToolsReportNothing) {
  Device dev(TestSpec());
  SanitizerConfig cfg;
  cfg.racecheck = false;
  Sanitizer* san = dev.EnableSanitizer(cfg);
  dev.Launch({"race_ignored", 1, 64}, [&](BlockCtx& blk) {
    auto c = blk.shared<int32_t>(1);
    blk.for_each_lane([&](Lane& t) {
      t.shared_st(c, 0, static_cast<int32_t>(t.lane()));
    });
  });
  EXPECT_TRUE(san->report().clean());
}

// --- interaction with metering / stats -----------------------------------

TEST(SanitizerStatsTest, HooksFireOnUnmeteredWarps) {
  // With a metering stride of 4 only warp 0 of 4 is metered, but the
  // sanitizer must still see the race in warp 3.
  Device dev(TestSpec());
  dev.SetMeterStride(4);
  Sanitizer* san = dev.EnableSanitizer();
  dev.Launch({"unmetered_race", 1, 128}, [&](BlockCtx& blk) {
    auto c = blk.shared<int32_t>(1);
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() >= 96) {  // lanes of warp 3 only
        t.shared_st(c, 0, static_cast<int32_t>(t.lane()));
      }
    });
  });
  ASSERT_GE(san->report().Count(HazardKind::kSharedRace), 1u);
  EXPECT_GE(san->report().hazards()[0].lane, 96u);
}

TEST(SanitizerStatsTest, EnablingSanitizerDoesNotDriftCleanKernelStats) {
  auto run = [](bool sanitize) {
    Device dev(TestSpec());
    if (sanitize) {
      dev.EnableSanitizer();
    }
    const size_t n = 4096;
    auto in = dev.Alloc<float>(n);
    auto out = dev.Alloc<float>(n);
    std::vector<float> host(n, 1.5f);
    dev.CopyToDevice(in, std::span<const float>(host));
    return dev.Launch({"saxpy", n / 128, 128}, [&](BlockCtx& blk) {
      blk.for_each_lane([&](Lane& t) {
        t.flops32(2);
        t.st(out, t.gtid(), 2.0f * t.ld(in, t.gtid()) + 1.0f);
      });
    });
  };
  KernelStats off = run(false);
  KernelStats on = run(true);
  EXPECT_EQ(on.fp32_flops, off.fp32_flops);
  EXPECT_EQ(on.read_transactions, off.read_transactions);
  EXPECT_EQ(on.write_transactions, off.write_transactions);
  EXPECT_EQ(on.dram_read_bytes, off.dram_read_bytes);
  EXPECT_EQ(on.lane_ops_sum, off.lane_ops_sum);
  EXPECT_EQ(on.warp_ops_slots, off.warp_ops_slots);
  EXPECT_EQ(on.max_lane_mem_ops, off.max_lane_mem_ops);
  EXPECT_DOUBLE_EQ(on.total_ms, off.total_ms);
  EXPECT_EQ(off.sanitizer_hazards, 0u);
  EXPECT_EQ(on.sanitizer_hazards, 0u);
}

TEST(SanitizerStatsTest, GlobalAtomicsCountAsLaneMemOps) {
  // Satellite fix: atomic_add/atomic_exch extend the per-lane dependent
  // memory-op chain (they round-trip to L2/DRAM); shared atomics do not.
  Device dev(TestSpec());
  auto sum = dev.Alloc<int32_t>(1);
  sum[0] = 0;
  KernelStats global_st = dev.Launch({"global_atomics", 1, 32},
                                     [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      for (int i = 0; i < 5; ++i) {
        t.atomic_add(sum, 0, int32_t{1});
      }
    });
  });
  EXPECT_EQ(global_st.max_lane_mem_ops, 5u);

  KernelStats shared_st = dev.Launch({"shared_atomics", 1, 32},
                                     [&](BlockCtx& blk) {
    auto c = blk.shared<int32_t>(1);
    blk.for_each_lane([&](Lane& t) {
      for (int i = 0; i < 5; ++i) {
        t.atomic_add_shared(c, 0, int32_t{1});
      }
    });
  });
  EXPECT_EQ(shared_st.max_lane_mem_ops, 0u);
}

}  // namespace
}  // namespace biosim::gpusim
