#include "gpusim/timing.h"

#include <gtest/gtest.h>

namespace biosim::gpusim {
namespace {

KernelStats MemBoundStats() {
  KernelStats st;
  st.fp32_flops = 1'000'000;            // 1 MFLOP
  st.dram_read_bytes = 100'000'000;     // 100 MB
  st.lane_ops_sum = 1000;
  st.warp_ops_slots = 1000;             // no divergence
  return st;
}

TEST(TimingModelTest, MemoryBoundKernelTimeIsBandwidthBytes) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  KernelStats st = MemBoundStats();
  ApplyTimingModel(spec, &st);
  // 100 MB / 484 GB/s = 0.2066 ms; compute (1 MFLOP / 11.3 TFLOPS) ~ 88 ns.
  EXPECT_GT(st.memory_ms, st.compute_ms);
  EXPECT_NEAR(st.total_ms, st.launch_ms + st.memory_ms, 1e-9);
  EXPECT_NEAR(st.memory_ms, 100e6 / (484e9) * 1e3, 1e-4);
}

TEST(TimingModelTest, ComputeBoundKernelUsesFlopRate) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  KernelStats st;
  st.fp32_flops = 10'000'000'000ull;  // 10 GFLOP
  st.dram_read_bytes = 1000;
  st.lane_ops_sum = 100;
  st.warp_ops_slots = 100;
  ApplyTimingModel(spec, &st);
  EXPECT_GT(st.compute_ms, st.memory_ms);
  EXPECT_NEAR(st.compute_ms, 10e9 / 11.34e12 * 1e3, 1e-3);
}

TEST(TimingModelTest, Fp64IsThirtyTwoTimesSlowerOnConsumerCard) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  KernelStats a, b;
  a.fp32_flops = 1'000'000'000;
  b.fp64_flops = 1'000'000'000;
  ApplyTimingModel(spec, &a);
  ApplyTimingModel(spec, &b);
  EXPECT_NEAR(b.compute_ms / a.compute_ms, 32.0, 0.1);
}

TEST(TimingModelTest, V100Fp64IsOnlyTwoTimesSlower) {
  DeviceSpec spec = DeviceSpec::TeslaV100();
  KernelStats a, b;
  a.fp32_flops = 1'000'000'000;
  b.fp64_flops = 1'000'000'000;
  ApplyTimingModel(spec, &a);
  ApplyTimingModel(spec, &b);
  EXPECT_NEAR(b.compute_ms / a.compute_ms, 15.7 / 7.8, 0.05);
}

TEST(TimingModelTest, MoreBytesNeverFaster) {
  DeviceSpec spec = DeviceSpec::TeslaV100();
  KernelStats st = MemBoundStats();
  ApplyTimingModel(spec, &st);
  double t1 = st.total_ms;
  st.dram_read_bytes *= 2;
  ApplyTimingModel(spec, &st);
  EXPECT_GT(st.total_ms, t1);
}

TEST(TimingModelTest, L2HitsAreCheaperThanDram) {
  DeviceSpec spec = DeviceSpec::TeslaV100();
  KernelStats dram = MemBoundStats();
  KernelStats l2 = MemBoundStats();
  l2.l2_read_hit_bytes = l2.dram_read_bytes;
  l2.dram_read_bytes = 0;
  ApplyTimingModel(spec, &dram);
  ApplyTimingModel(spec, &l2);
  EXPECT_LT(l2.total_ms, dram.total_ms);
  EXPECT_NEAR(dram.memory_ms / l2.memory_ms,
              spec.l2_bandwidth_gbps / spec.dram_bandwidth_gbps, 0.01);
}

TEST(TimingModelTest, DivergenceInflatesComputeTime) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  KernelStats full, half;
  full.fp32_flops = half.fp32_flops = 1'000'000'000;
  full.lane_ops_sum = 3200;
  full.warp_ops_slots = 3200;
  half.lane_ops_sum = 1600;
  half.warp_ops_slots = 3200;  // 50% SIMD efficiency
  ApplyTimingModel(spec, &full);
  ApplyTimingModel(spec, &half);
  EXPECT_NEAR(half.compute_ms / full.compute_ms, 2.0, 0.01);
}

TEST(TimingModelTest, AtomicSerializationAddsTime) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  KernelStats st = MemBoundStats();
  ApplyTimingModel(spec, &st);
  double base = st.total_ms;
  st.atomic_serialized = 10'000'000;
  ApplyTimingModel(spec, &st);
  EXPECT_GT(st.total_ms, base);
  EXPECT_NEAR(st.atomic_ms,
              10e6 * spec.atomic_serialize_ns * 1e-9 /
                  spec.atomic_parallelism() * 1e3,
              1e-6);
}

TEST(TimingModelTest, HigherBandwidthDeviceIsFasterOnMemBound) {
  KernelStats a = MemBoundStats();
  KernelStats b = MemBoundStats();
  ApplyTimingModel(DeviceSpec::GTX1080Ti(), &a);
  ApplyTimingModel(DeviceSpec::TeslaV100(), &b);
  EXPECT_LT(b.total_ms, a.total_ms);
}

TEST(TimingModelTest, TransferTimeScalesWithBytes) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  double t1 = TransferMs(spec, 1'000'000);
  double t2 = TransferMs(spec, 2'000'000);
  EXPECT_GT(t2, t1);
  // Latency floor for tiny transfers.
  EXPECT_GE(TransferMs(spec, 1), spec.pcie_latency_us * 1e-3);
}

TEST(TimingModelTest, DerivedMetrics) {
  KernelStats st;
  st.fp32_flops = 2'000'000;
  st.dram_read_bytes = 500'000;
  st.dram_write_bytes = 500'000;
  st.l2_read_hit_bytes = 1'000'000;
  st.total_ms = 2.0;
  EXPECT_DOUBLE_EQ(st.ArithmeticIntensity(), 2.0);
  EXPECT_DOUBLE_EQ(st.AchievedGflops(), 2e6 / (2.0 * 1e6));
  EXPECT_DOUBLE_EQ(st.L2ReadHitFraction(), 1e6 / 1.5e6);
}

}  // namespace
}  // namespace biosim::gpusim
