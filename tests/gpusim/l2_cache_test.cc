#include "gpusim/l2_cache.h"

#include <gtest/gtest.h>

namespace biosim::gpusim {
namespace {

TEST(L2CacheTest, ColdMissThenHit) {
  L2Cache l2(4096, 128, 4);
  EXPECT_FALSE(l2.Access(0));
  EXPECT_TRUE(l2.Access(0));
  EXPECT_TRUE(l2.Access(64));  // same line
  EXPECT_FALSE(l2.Access(128));  // next line
}

TEST(L2CacheTest, LruEvictionWithinSet) {
  // 4-way set: fill a set with 4 lines, touch the first again, insert a
  // fifth; the least-recently-used (second) line must be the victim.
  L2Cache l2(/*capacity=*/128 * 4 * 8, /*line=*/128, /*assoc=*/4);  // 8 sets
  size_t sets = l2.num_sets();
  auto addr_for_set0 = [&](uint64_t k) { return k * sets * 128; };
  for (uint64_t k = 0; k < 4; ++k) {
    EXPECT_FALSE(l2.Access(addr_for_set0(k)));
  }
  EXPECT_TRUE(l2.Access(addr_for_set0(0)));   // refresh line 0
  EXPECT_FALSE(l2.Access(addr_for_set0(4)));  // evicts line 1
  EXPECT_TRUE(l2.Access(addr_for_set0(0)));   // still resident
  EXPECT_FALSE(l2.Access(addr_for_set0(1)));  // was evicted
}

TEST(L2CacheTest, DistinctSetsDoNotInterfere) {
  L2Cache l2(128 * 4 * 8, 128, 4);
  // Lines in different sets never evict each other.
  for (uint64_t s = 0; s < 8; ++s) {
    EXPECT_FALSE(l2.Access(s * 128));
  }
  for (uint64_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(l2.Access(s * 128));
  }
}

TEST(L2CacheTest, ResetEmptiesCache) {
  L2Cache l2(4096, 128, 4);
  l2.Access(0);
  l2.Reset();
  EXPECT_FALSE(l2.Access(0));
}

TEST(L2CacheTest, TinyCapacityStillWorks) {
  L2Cache l2(/*capacity=*/64, /*line=*/128, /*assoc=*/16);  // degenerate
  EXPECT_GE(l2.num_sets(), 1u);
  EXPECT_FALSE(l2.Access(0));
}

}  // namespace
}  // namespace biosim::gpusim
