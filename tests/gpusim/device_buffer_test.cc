// Device allocation and transfer-accounting tests.
#include <gtest/gtest.h>

#include "gpusim/device.h"

namespace biosim::gpusim {
namespace {

TEST(DeviceBufferTest, AllocationsAreDisjointAndAligned) {
  Device dev(DeviceSpec::GTX1080Ti());
  auto a = dev.Alloc<float>(100);   // 400 B
  auto b = dev.Alloc<double>(10);   // 80 B
  auto c = dev.Alloc<int32_t>(1);
  // 256-byte alignment.
  EXPECT_EQ(a.addr(0) % 256, 0u);
  EXPECT_EQ(b.addr(0) % 256, 0u);
  EXPECT_EQ(c.addr(0) % 256, 0u);
  // Disjoint, increasing address ranges.
  EXPECT_GE(b.addr(0), a.addr(0) + 100 * sizeof(float));
  EXPECT_GE(c.addr(0), b.addr(0) + 10 * sizeof(double));
}

TEST(DeviceBufferTest, ElementAddressesAreContiguous) {
  Device dev(DeviceSpec::GTX1080Ti());
  auto buf = dev.Alloc<double>(16);
  for (size_t i = 1; i < 16; ++i) {
    EXPECT_EQ(buf.addr(i) - buf.addr(i - 1), sizeof(double));
  }
}

TEST(DeviceBufferTest, CopiesMoveDataAndMeterBytes) {
  Device dev(DeviceSpec::TeslaV100());
  auto buf = dev.Alloc<int32_t>(256);
  std::vector<int32_t> host(256);
  for (int i = 0; i < 256; ++i) {
    host[i] = i * 3;
  }
  dev.CopyToDevice(buf, std::span<const int32_t>(host));
  EXPECT_EQ(buf[100], 300);
  EXPECT_EQ(dev.transfers().h2d_bytes, 256u * 4);
  EXPECT_EQ(dev.transfers().h2d_count, 1u);

  std::vector<int32_t> back(256);
  dev.CopyFromDevice(std::span<int32_t>(back), buf);
  EXPECT_EQ(back, host);
  EXPECT_EQ(dev.transfers().d2h_bytes, 256u * 4);
}

TEST(DeviceBufferTest, PartialCopiesRespectSpanSize) {
  Device dev(DeviceSpec::GTX1080Ti());
  auto buf = dev.Alloc<float>(100);
  std::vector<float> four{1, 2, 3, 4};
  dev.CopyToDevice(buf, std::span<const float>(four));
  EXPECT_EQ(dev.transfers().h2d_bytes, 16u);
  EXPECT_FLOAT_EQ(buf[3], 4.0f);
}

TEST(DeviceBufferTest, TransferTimeOnSimulatedClock) {
  Device dev(DeviceSpec::GTX1080Ti());
  auto buf = dev.Alloc<float>(3'000'000);
  std::vector<float> host(3'000'000, 1.0f);
  double before = dev.ElapsedMs();
  dev.CopyToDevice(buf, std::span<const float>(host));
  // 12 MB over 12 GB/s = 1 ms (+10 us latency).
  EXPECT_NEAR(dev.ElapsedMs() - before, 1.0, 0.1);
}

TEST(DeviceBufferTest, ResetClockKeepsData) {
  Device dev(DeviceSpec::GTX1080Ti());
  auto buf = dev.Alloc<float>(4);
  buf[2] = 7.0f;
  dev.ResetClock();
  EXPECT_DOUBLE_EQ(dev.ElapsedMs(), 0.0);
  EXPECT_FLOAT_EQ(buf[2], 7.0f);
}

}  // namespace
}  // namespace biosim::gpusim
