#include <gtest/gtest.h>

#include <numeric>

#include "gpusim/device.h"

namespace biosim::gpusim {
namespace {

DeviceSpec TestSpec() { return DeviceSpec::GTX1080Ti(); }

TEST(SimtTest, ThreadIndexingCoversGrid) {
  Device dev(TestSpec());
  const size_t n = 1000;
  auto out = dev.Alloc<int32_t>(n);
  dev.Launch({"ids", 8, 128}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      if (t.gtid() < n) {
        t.st(out, t.gtid(), static_cast<int32_t>(t.gtid()));
      }
    });
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<int32_t>(i));
  }
}

TEST(SimtTest, LaneAndBlockGeometry) {
  Device dev(TestSpec());
  auto lanes = dev.Alloc<int32_t>(256);
  auto blocks = dev.Alloc<int32_t>(256);
  dev.Launch({"geom", 4, 64}, [&](BlockCtx& blk) {
    EXPECT_EQ(blk.block_dim(), 64u);
    EXPECT_EQ(blk.grid_dim(), 4u);
    blk.for_each_lane([&](Lane& t) {
      t.st(lanes, t.gtid(), static_cast<int32_t>(t.lane()));
      t.st(blocks, t.gtid(), static_cast<int32_t>(t.block()));
    });
  });
  EXPECT_EQ(lanes[0], 0);
  EXPECT_EQ(lanes[63], 63);
  EXPECT_EQ(lanes[64], 0);
  EXPECT_EQ(blocks[63], 0);
  EXPECT_EQ(blocks[64], 1);
  EXPECT_EQ(blocks[255], 3);
}

TEST(SimtTest, FunctionalLoadStoreRoundTrip) {
  Device dev(TestSpec());
  const size_t n = 512;
  auto in = dev.Alloc<float>(n);
  auto out = dev.Alloc<float>(n);
  for (size_t i = 0; i < n; ++i) {
    in[i] = static_cast<float>(i) * 0.5f;
  }
  dev.Launch({"copy2x", 2, 256}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      t.st(out, t.gtid(), t.ld(in, t.gtid()) * 2.0f);
    });
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out[i], static_cast<float>(i));
  }
}

TEST(SimtTest, SharedMemoryVisibleAcrossPhases) {
  // Classic block reverse through shared memory: needs the barrier between
  // the two for_each_lane phases to be a real barrier.
  Device dev(TestSpec());
  const size_t n = 256;
  auto in = dev.Alloc<int32_t>(n);
  auto out = dev.Alloc<int32_t>(n);
  for (size_t i = 0; i < n; ++i) {
    in[i] = static_cast<int32_t>(i);
  }
  dev.Launch({"reverse", 2, 128}, [&](BlockCtx& blk) {
    auto cache = blk.shared<int32_t>(128);
    blk.for_each_lane([&](Lane& t) {
      t.shared_st(cache, t.lane(), t.ld(in, t.gtid()));
    });
    // __syncthreads()
    blk.for_each_lane([&](Lane& t) {
      int32_t v = t.shared_ld(cache, blk.block_dim() - 1 - t.lane());
      t.st(out, t.gtid(), v);
    });
  });
  for (size_t b = 0; b < 2; ++b) {
    for (size_t l = 0; l < 128; ++l) {
      ASSERT_EQ(out[b * 128 + l], static_cast<int32_t>(b * 128 + 127 - l));
    }
  }
}

TEST(SimtTest, SharedMemoryZeroInitialized) {
  Device dev(TestSpec());
  auto out = dev.Alloc<float>(32);
  dev.Launch({"zeroinit", 1, 32}, [&](BlockCtx& blk) {
    auto sm = blk.shared<float>(32);
    blk.for_each_lane(
        [&](Lane& t) { t.st(out, t.lane(), t.shared_ld(sm, t.lane())); });
  });
  for (size_t i = 0; i < 32; ++i) {
    ASSERT_EQ(out[i], 0.0f);
  }
}

TEST(SimtTest, GlobalAtomicAddAccumulates) {
  Device dev(TestSpec());
  auto counter = dev.Alloc<int32_t>(1);
  counter[0] = 0;
  dev.Launch({"count", 10, 100}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      (void)t.atomic_add(counter, 0, int32_t{1});
    });
  });
  EXPECT_EQ(counter[0], 1000);
}

TEST(SimtTest, SharedAtomicAppendProducesDenseSlots) {
  Device dev(TestSpec());
  const size_t n = 200;
  auto out = dev.Alloc<int32_t>(n);
  dev.Launch({"append", 1, 256}, [&](BlockCtx& blk) {
    auto count = blk.shared<int32_t>(1);
    auto slots = blk.shared<int32_t>(256);
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() < n) {
        int32_t slot = t.atomic_add_shared(count, 0, int32_t{1});
        t.shared_st(slots, slot, static_cast<int32_t>(t.lane()));
      }
    });
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() < n) {
        t.st(out, t.lane(), t.shared_ld(slots, t.lane()));
      }
    });
  });
  // Every lane id 0..n-1 appears exactly once among the slots.
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_GE(out[i], 0);
    ASSERT_LT(out[i], static_cast<int32_t>(n));
    ASSERT_FALSE(seen[out[i]]);
    seen[out[i]] = true;
  }
}

TEST(SimtTest, AtomicExchangeBuildsLinkedList) {
  // The exact pattern of the ug_build kernel.
  Device dev(TestSpec());
  const size_t n = 100;
  auto head = dev.Alloc<int32_t>(1);
  auto next = dev.Alloc<int32_t>(n);
  head[0] = -1;
  dev.Launch({"list", 1, 128}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      if (t.lane() < n) {
        int32_t old = t.atomic_exch(head, 0, static_cast<int32_t>(t.lane()));
        t.st(next, t.lane(), old);
      }
    });
  });
  std::vector<bool> seen(n, false);
  size_t count = 0;
  for (int32_t j = head[0]; j != -1; j = next[j]) {
    ASSERT_FALSE(seen[j]);
    seen[j] = true;
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST(SimtTest, DivergenceLowersSimdEfficiency) {
  Device dev(TestSpec());
  const size_t n = 32 * 64;
  auto buf = dev.Alloc<float>(n);
  auto out = dev.Alloc<float>(n);

  auto uniform = dev.Launch({"uniform", 64, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      float v = t.ld(buf, t.gtid());
      t.flops32(64);
      t.st(out, t.gtid(), v);
    });
  });

  auto divergent = dev.Launch({"divergent", 64, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      float v = t.ld(buf, t.gtid());
      // Only lane 0 of each warp does the heavy loop.
      if (t.lane() % 32 == 0) {
        t.flops32(64 * 31);
      }
      t.flops32(64);
      t.st(out, t.gtid(), v);
    });
  });

  EXPECT_GT(uniform.SimdEfficiency(), 0.95);
  EXPECT_LT(divergent.SimdEfficiency(), 0.25);
}

TEST(SimtTest, PartialWarpCountsAsIdleLanes) {
  Device dev(TestSpec());
  auto out = dev.Alloc<float>(8);
  auto stats = dev.Launch({"partial", 1, 8}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      t.flops32(10);
      t.st(out, t.lane(), 1.0f);
    });
  });
  // 8 of 32 lanes active -> efficiency ~ 0.25
  EXPECT_NEAR(stats.SimdEfficiency(), 0.25, 0.05);
}

TEST(SimtTest, FlopCountersSeparatePrecision) {
  Device dev(TestSpec());
  auto out = dev.Alloc<float>(32);
  auto stats = dev.Launch({"flops", 1, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      t.flops32(7);
      t.flops64(3);
      t.st(out, t.lane(), 0.0f);
    });
  });
  EXPECT_EQ(stats.fp32_flops, 32u * 7);
  EXPECT_EQ(stats.fp64_flops, 32u * 3);
}

TEST(SimtTest, AtomicConflictCounting) {
  Device dev(TestSpec());
  auto target = dev.Alloc<int32_t>(64);

  // All 32 lanes of one warp update the same address: 31 serialized steps.
  auto conflicted = dev.Launch({"conflict", 1, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      (void)t.atomic_add(target, 0, int32_t{1});
    });
  });
  EXPECT_EQ(conflicted.atomic_ops, 32u);
  EXPECT_EQ(conflicted.atomic_serialized, 31u);

  // Each lane updates its own address: no serialization.
  auto clean = dev.Launch({"noconflict", 1, 32}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      (void)t.atomic_add(target, t.lane(), int32_t{1});
    });
  });
  EXPECT_EQ(clean.atomic_ops, 32u);
  EXPECT_EQ(clean.atomic_serialized, 0u);
}

TEST(SimtTest, ExecutionIsDeterministic) {
  auto run = [] {
    Device dev(TestSpec());
    const size_t n = 4096;
    auto a = dev.Alloc<float>(n);
    auto b = dev.Alloc<float>(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(i % 17);
    }
    auto st = dev.Launch({"k", (n + 127) / 128, 128}, [&](BlockCtx& blk) {
      blk.for_each_lane([&](Lane& t) {
        size_t i = t.gtid();
        if (i >= n) {
          return;
        }
        float v = t.ld(a, i);
        t.flops32(2);
        t.st(b, i, v * 2.0f + 1.0f);
      });
    });
    return std::make_tuple(st.dram_read_bytes, st.l2_read_hit_bytes,
                           st.total_ms, b[1234]);
  };
  EXPECT_EQ(run(), run());
}

TEST(SimtTest, DeviceClockAccumulates) {
  Device dev(TestSpec());
  auto buf = dev.Alloc<float>(1024);
  EXPECT_DOUBLE_EQ(dev.ElapsedMs(), 0.0);
  dev.Launch({"a", 8, 128}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) { t.st(buf, t.gtid(), 1.0f); });
  });
  double after_one = dev.ElapsedMs();
  EXPECT_GT(after_one, 0.0);
  std::vector<float> host(1024);
  dev.CopyFromDevice(std::span<float>(host), buf);
  EXPECT_GT(dev.ElapsedMs(), after_one);
  EXPECT_EQ(dev.transfers().d2h_bytes, 4096u);
  dev.ResetClock();
  EXPECT_DOUBLE_EQ(dev.ElapsedMs(), 0.0);
}

}  // namespace
}  // namespace biosim::gpusim
