// Property test for warp-sampled metering (Device::SetMeterStride).
//
// Sampling meters every k-th warp and rescales the counters (with the cache
// capacities seen by the sampled stream scaled by 1/k so hit rates stay
// representative). The contract is statistical, not exact: for every stride
// in {1,2,4,8,16} the rescaled counters must stay within a bounded relative
// error of the stride-1 exact counters, across random workloads. The golden
// harness (golden_counters_test.cc) pins stride-1 exactness; this test pins
// the sampling quality the figure benches rely on at --meter-stride 8.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/random.h"
#include "gpusim/device.h"

namespace biosim::gpusim {
namespace {

/// A random mechanics-shaped workload: every lane walks a seeded number of
/// gather reads (divergent trip counts, like per-cell neighbor loops), does
/// some FLOPs per element, and writes one result. `locality` in [0,1] blends
/// neighbor-coherent gathers (coalescing-friendly) into uniform-random ones.
struct Workload {
  size_t n_threads = 1u << 14;
  size_t block_dim = 128;
  size_t table_size = 1u << 16;
  double locality = 0.5;
  uint64_t seed = 1;
};

KernelStats RunWorkload(const Workload& w, int stride) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  spec.l2_capacity_bytes = 256 * 1024;  // working set must exceed the L2
  spec.l1_capacity_bytes = 32 * 1024;
  Device dev(spec);
  dev.SetMeterStride(stride);

  auto table = dev.Alloc<float>(w.table_size);
  auto out = dev.Alloc<float>(w.n_threads);
  for (size_t i = 0; i < w.table_size; ++i) {
    table[i] = static_cast<float>(i % 113);
  }

  // Per-lane trip counts and gather targets, fixed before the launch so
  // every stride sees the same functional workload.
  Random rng(w.seed);
  std::vector<uint32_t> trips(w.n_threads);
  std::vector<uint32_t> targets(w.n_threads);
  for (size_t i = 0; i < w.n_threads; ++i) {
    trips[i] = 4 + static_cast<uint32_t>(rng.UniformInt(24));
    bool local = rng.Uniform(0.0, 1.0) < w.locality;
    targets[i] = local ? static_cast<uint32_t>(i % w.table_size)
                       : static_cast<uint32_t>(rng.UniformInt(w.table_size));
  }

  size_t blocks = (w.n_threads + w.block_dim - 1) / w.block_dim;
  dev.Launch({"random_gather", blocks, w.block_dim}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      size_t i = t.gtid();
      if (i >= w.n_threads) {
        return;
      }
      float acc = 0.0f;
      uint32_t base = targets[i];
      for (uint32_t k = 0; k < trips[i]; ++k) {
        acc += t.ld(table, (base + k * 7) % w.table_size);
        t.flops32(2);
      }
      t.st(out, i, acc);
    });
  });
  return dev.history().back();
}

double RelErr(uint64_t sampled, uint64_t exact) {
  if (exact == 0) {
    return sampled == 0 ? 0.0 : 1.0;
  }
  double d = static_cast<double>(sampled) - static_cast<double>(exact);
  return std::abs(d) / static_cast<double>(exact);
}

class MeterStrideProperty : public ::testing::TestWithParam<int> {};

TEST_P(MeterStrideProperty, RescaledCountersTrackExactCounters) {
  const int stride = GetParam();
  const Workload workloads[] = {
      {1u << 14, 128, 1u << 16, 0.9, 11},  // mostly coherent (lattice-like)
      {1u << 14, 128, 1u << 16, 0.5, 22},  // mixed
      {1u << 14, 256, 1u << 17, 0.1, 33},  // mostly scattered (aged layout)
  };
  for (const Workload& w : workloads) {
    KernelStats exact = RunWorkload(w, 1);
    KernelStats sampled = RunWorkload(w, stride);

    // Issue-side counters (what the lanes requested): the sampled warps are
    // an unbiased 1-in-k systematic sample of a statistically homogeneous
    // stream, so the rescale lands close.
    EXPECT_LT(RelErr(sampled.requested_read_bytes, exact.requested_read_bytes),
              0.10)
        << "stride " << stride << " seed " << w.seed;
    EXPECT_LT(
        RelErr(sampled.requested_write_bytes, exact.requested_write_bytes),
        0.10);
    EXPECT_LT(RelErr(sampled.fp32_flops, exact.fp32_flops), 0.10);
    EXPECT_LT(RelErr(sampled.lane_ops_sum, exact.lane_ops_sum), 0.10);
    EXPECT_LT(RelErr(sampled.warp_ops_slots, exact.warp_ops_slots), 0.10);
    EXPECT_LT(
        RelErr(sampled.read_transactions + sampled.write_transactions,
               exact.read_transactions + exact.write_transactions),
        0.15);

    // Cache-split counters additionally depend on the 1/k-scaled caches
    // keeping the hit rate representative — a modeling approximation. The
    // meaningful property is the *fraction* of traffic served by DRAM (the
    // absolute bytes can be tiny when a workload caches well, making any
    // relative-error bound degenerate), so bound the absolute error of the
    // DRAM share of post-coalescing traffic.
    auto dram_share = [](const KernelStats& s) {
      uint64_t total = s.DramBytes() + s.L2HitBytes() + s.L1HitBytes();
      return total == 0 ? 0.0
                        : static_cast<double>(s.DramBytes()) /
                              static_cast<double>(total);
    };
    EXPECT_NEAR(dram_share(sampled), dram_share(exact), 0.25)
        << "stride " << stride << " seed " << w.seed
        << " sampled dram " << sampled.DramBytes() << "/" << exact.DramBytes();

    // SimdEfficiency is a ratio of two sampled counters; it must stay a
    // valid efficiency and close to the exact one.
    EXPECT_NEAR(sampled.SimdEfficiency(), exact.SimdEfficiency(), 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, MeterStrideProperty,
                         ::testing::Values(2, 4, 8, 16));

TEST(MeterStrideProperty, StrideOneIsExactlyReproducible) {
  Workload w{1u << 13, 128, 1u << 15, 0.5, 7};
  KernelStats a = RunWorkload(w, 1);
  KernelStats b = RunWorkload(w, 1);
  EXPECT_EQ(a.requested_read_bytes, b.requested_read_bytes);
  EXPECT_EQ(a.read_transactions, b.read_transactions);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
  EXPECT_EQ(a.l2_read_hit_bytes, b.l2_read_hit_bytes);
  EXPECT_EQ(a.fp32_flops, b.fp32_flops);
  EXPECT_EQ(a.atomic_ops, b.atomic_ops);
}

}  // namespace
}  // namespace biosim::gpusim
