// Tests for the latency-exposure term and the modeled-kernel API — the
// pieces of the timing model behind the dynamic-parallelism exploration and
// the sort-cost accounting.
#include <gtest/gtest.h>

#include "gpusim/device.h"
#include "gpusim/timing.h"

namespace biosim::gpusim {
namespace {

TEST(LatencyModelTest, DeepLoadChainRaisesLatencyTime) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  KernelStats shallow, deep;
  shallow.total_threads = deep.total_threads = 1000;
  shallow.max_lane_mem_ops = 10;
  deep.max_lane_mem_ops = 1000;
  ApplyTimingModel(spec, &shallow);
  ApplyTimingModel(spec, &deep);
  EXPECT_NEAR(deep.latency_ms / shallow.latency_ms, 100.0, 0.01);
}

TEST(LatencyModelTest, LatencyScalesWithWaves) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  uint64_t resident =
      static_cast<uint64_t>(spec.num_sms) * spec.max_threads_per_sm;
  KernelStats one_wave, three_waves;
  one_wave.max_lane_mem_ops = three_waves.max_lane_mem_ops = 100;
  one_wave.total_threads = resident;
  three_waves.total_threads = 2 * resident + 1;  // ceil -> 3
  ApplyTimingModel(spec, &one_wave);
  ApplyTimingModel(spec, &three_waves);
  EXPECT_NEAR(three_waves.latency_ms / one_wave.latency_ms, 3.0, 1e-9);
}

TEST(LatencyModelTest, LatencyEntersTheMax) {
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  KernelStats st;
  st.total_threads = 1000;
  st.max_lane_mem_ops = 10000;  // enormous dependent chain
  st.dram_read_bytes = 1000;    // negligible traffic
  ApplyTimingModel(spec, &st);
  EXPECT_GT(st.latency_ms, st.memory_ms);
  EXPECT_NEAR(st.total_ms, st.launch_ms + st.latency_ms, 1e-9);
}

TEST(LatencyModelTest, ExpectedMagnitude) {
  // depth/MLP * latency: 400 ops / 4 * 350 ns = 35 us for one wave.
  DeviceSpec spec = DeviceSpec::GTX1080Ti();
  KernelStats st;
  st.total_threads = 1;
  st.max_lane_mem_ops = 400;
  ApplyTimingModel(spec, &st);
  EXPECT_NEAR(st.latency_ms, 400.0 / 4.0 * 350e-9 * 1e3, 1e-9);
}

TEST(LatencyModelTest, EngineTracksDeepestLaneChain) {
  Device dev(DeviceSpec::GTX1080Ti());
  const size_t n = 256;
  auto buf = dev.Alloc<float>(n);
  auto stats = dev.Launch({"chains", 1, 64}, [&](BlockCtx& blk) {
    blk.for_each_lane([&](Lane& t) {
      // Lane 5 walks a 50-load chain; everyone else loads once.
      size_t loads = t.lane() == 5 ? 50 : 1;
      float acc = 0.0f;
      for (size_t k = 0; k < loads; ++k) {
        acc += t.ld(buf, (t.lane() + k) % n);
      }
      t.st(buf, t.lane(), acc);
    });
  });
  EXPECT_EQ(stats.max_lane_mem_ops, 51u);  // 50 loads + 1 store
  EXPECT_EQ(stats.total_threads, 64u);
}

TEST(LatencyModelTest, SharedAccessesDoNotCountAsLatencyOps) {
  Device dev(DeviceSpec::GTX1080Ti());
  auto stats = dev.Launch({"sharedonly", 1, 32}, [&](BlockCtx& blk) {
    auto sm = blk.shared<float>(32);
    blk.for_each_lane([&](Lane& t) {
      for (int k = 0; k < 100; ++k) {
        t.shared_st(sm, t.lane(), t.shared_ld(sm, t.lane()) + 1.0f);
      }
    });
  });
  EXPECT_EQ(stats.max_lane_mem_ops, 0u);
}

TEST(ModeledKernelTest, AddsTimeAndHistory) {
  Device dev(DeviceSpec::TeslaV100());
  double before = dev.KernelMs();
  KernelStats st = dev.AddModeledKernel("lib_sort", /*read=*/900'000'000,
                                        /*write=*/900'000'000);
  // 1.8 GB at 900 GB/s = 2 ms of streaming.
  EXPECT_NEAR(st.memory_ms, 2.0, 0.05);
  EXPECT_GT(dev.KernelMs(), before);
  EXPECT_EQ(dev.history().back().name, "lib_sort");
}

TEST(ModeledKernelTest, StreamingIsCoalesced) {
  Device dev(DeviceSpec::TeslaV100());
  KernelStats st = dev.AddModeledKernel("lib", 128 * 1000, 0);
  EXPECT_EQ(st.read_transactions, 1000u);
  EXPECT_DOUBLE_EQ(st.SimdEfficiency(), 1.0);
  EXPECT_EQ(st.dram_read_bytes, 128u * 1000);
}

TEST(ModeledKernelTest, FlopsOptionallyCharged) {
  Device dev(DeviceSpec::TeslaV100());
  KernelStats st =
      dev.AddModeledKernel("lib_gemm", 1000, 1000, /*fp32=*/15'700'000'000ull);
  // 15.7 GFLOP at 15.7 TFLOP/s = 1 ms, compute bound.
  EXPECT_NEAR(st.compute_ms, 1.0, 0.01);
  EXPECT_GT(st.compute_ms, st.memory_ms);
}

}  // namespace
}  // namespace biosim::gpusim
