#include "gpusim/memory_model.h"

#include <gtest/gtest.h>

#include "gpusim/device.h"

namespace biosim::gpusim {
namespace {

DeviceSpec SmallCacheSpec() {
  DeviceSpec s = DeviceSpec::GTX1080Ti();
  s.l2_capacity_bytes = 64 * 1024;
  // Disable the L1 (one line of capacity) so these tests isolate the L2;
  // L1-specific behavior is covered below.
  s.l1_capacity_bytes = 128;
  s.l1_associativity = 1;
  return s;
}

TEST(MemoryModelTest, CoalescedWarpLoadIsOneTransactionPerLine) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  // 32 lanes loading consecutive floats starting at a line boundary:
  // 32*4 = 128 bytes = exactly one 128B transaction.
  std::vector<LaneAccess> warp;
  for (uint32_t l = 0; l < 32; ++l) {
    warp.push_back({uint64_t{1} << 20 | (l * 4), 4});
  }
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.read_transactions, 1u);
  EXPECT_EQ(st.requested_read_bytes, 128u);
  EXPECT_EQ(st.dram_read_bytes, 128u);  // cold cache
}

TEST(MemoryModelTest, CoalescedDoubleLoadIsTwoTransactions) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  std::vector<LaneAccess> warp;
  for (uint32_t l = 0; l < 32; ++l) {
    warp.push_back({uint64_t{1} << 20 | (l * 8), 8});
  }
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.read_transactions, 2u);  // 256 bytes = 2 lines
  EXPECT_EQ(st.requested_read_bytes, 256u);
}

TEST(MemoryModelTest, ScatteredWarpLoadIsOneTransactionPerLane) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  std::vector<LaneAccess> warp;
  for (uint32_t l = 0; l < 32; ++l) {
    warp.push_back({(uint64_t{1} << 20) + l * 4096, 4});  // 4KB stride
  }
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.read_transactions, 32u);
  EXPECT_EQ(st.requested_read_bytes, 128u);
  EXPECT_EQ(st.dram_read_bytes, 32u * 128);  // 32 full lines fetched
}

TEST(MemoryModelTest, DuplicateAddressesWithinWarpDeduplicate) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  std::vector<LaneAccess> warp(32, LaneAccess{uint64_t{1} << 20, 4});
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.read_transactions, 1u);  // broadcast
}

TEST(MemoryModelTest, AccessSpanningTwoLines) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  // 8-byte access at offset 124 crosses the 128B boundary.
  std::vector<LaneAccess> warp{{(uint64_t{1} << 20) + 124, 8}};
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.read_transactions, 2u);
}

TEST(MemoryModelTest, RepeatedLineHitsInCache) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  std::vector<LaneAccess> warp{{uint64_t{1} << 20, 4}};
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.dram_read_bytes, 128u);
  EXPECT_EQ(st.l2_read_hit_bytes + st.l1_read_hit_bytes, 0u);
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.dram_read_bytes, 128u);  // unchanged: second access hits L1
  EXPECT_EQ(st.l1_read_hit_bytes, 128u);
}

TEST(MemoryModelTest, AlternatingLinesHitInL2BehindTinyL1) {
  // Two lines ping-pong: they evict each other from the 1-line L1 but both
  // stay resident in the L2.
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  std::vector<LaneAccess> a{{uint64_t{1} << 20, 4}};
  std::vector<LaneAccess> b{{(uint64_t{1} << 20) + 4096, 4}};
  mm.AccessWarp(a, false, &st);
  mm.AccessWarp(b, false, &st);
  for (int i = 0; i < 3; ++i) {
    mm.AccessWarp(a, false, &st);
    mm.AccessWarp(b, false, &st);
  }
  EXPECT_EQ(st.dram_read_bytes, 256u);        // two cold misses only
  EXPECT_EQ(st.l2_read_hit_bytes, 6u * 128);  // all revisits hit L2
  EXPECT_DOUBLE_EQ(st.L2ReadHitFraction(), 0.75);
}

TEST(MemoryModelTest, CacheResetForgetsLines) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  std::vector<LaneAccess> warp{{uint64_t{1} << 20, 4}};
  mm.AccessWarp(warp, false, &st);
  mm.ResetCache();
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.dram_read_bytes, 256u);  // both missed
  EXPECT_EQ(st.l2_read_hit_bytes, 0u);
}

TEST(MemoryModelTest, WorkingSetLargerThanL2Thrashes) {
  MemoryModel mm(SmallCacheSpec());  // 64 KiB L2 = 512 lines
  KernelStats st;
  // Stream 4x the capacity twice; the second pass must still miss (LRU).
  const uint64_t base = uint64_t{1} << 20;
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t line = 0; line < 2048; ++line) {
      std::vector<LaneAccess> warp{{base + line * 128, 4}};
      mm.AccessWarp(warp, false, &st);
    }
  }
  EXPECT_GT(st.dram_read_bytes, 3 * st.l2_read_hit_bytes);
}

TEST(MemoryModelTest, WorkingSetSmallerThanL2IsCaptured) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  const uint64_t base = uint64_t{1} << 20;
  for (int pass = 0; pass < 4; ++pass) {
    for (uint64_t line = 0; line < 256; ++line) {  // 32 KiB working set
      std::vector<LaneAccess> warp{{base + line * 128, 4}};
      mm.AccessWarp(warp, false, &st);
    }
  }
  // First pass misses to DRAM; the other three passes hit on-chip (the
  // streaming working set exceeds the 1-line L1, so they hit in L2).
  EXPECT_EQ(st.dram_read_bytes, 256u * 128);
  EXPECT_EQ(st.l2_read_hit_bytes, 3u * 256 * 128);
}

TEST(MemoryModelTest, WritesTrackedSeparately) {
  MemoryModel mm(SmallCacheSpec());
  KernelStats st;
  std::vector<LaneAccess> warp{{uint64_t{1} << 20, 4}};
  mm.AccessWarp(warp, true, &st);
  EXPECT_EQ(st.write_transactions, 1u);
  EXPECT_EQ(st.dram_write_bytes, 128u);
  EXPECT_EQ(st.read_transactions, 0u);
  // A read of the just-written line hits on-chip (write-allocate).
  mm.AccessWarp(warp, false, &st);
  EXPECT_EQ(st.l1_read_hit_bytes + st.l2_read_hit_bytes, 128u);
}

TEST(MemoryModelTest, L1CapturesShortReuseWindows) {
  // Default spec (48 KiB L1): a small hot set revisited immediately stays in
  // L1; the same revisits never reach L2 or DRAM after the cold pass.
  MemoryModel mm(DeviceSpec::GTX1080Ti());
  KernelStats st;
  const uint64_t base = uint64_t{1} << 22;
  for (int pass = 0; pass < 8; ++pass) {
    for (uint64_t line = 0; line < 64; ++line) {  // 8 KiB hot set
      std::vector<LaneAccess> warp{{base + line * 128, 8}};
      mm.AccessWarp(warp, false, &st);
    }
  }
  EXPECT_EQ(st.dram_read_bytes, 64u * 128);
  EXPECT_EQ(st.l1_read_hit_bytes, 7u * 64 * 128);
  EXPECT_EQ(st.l2_read_hit_bytes, 0u);
}

TEST(L2GeometryTest, SpecGeometryIsRespected) {
  L2Cache l2(/*capacity=*/16 * 1024, /*line=*/128, /*assoc=*/4);
  EXPECT_EQ(l2.num_sets(), 32u);
  EXPECT_EQ(l2.ways(), 4u);
}

}  // namespace
}  // namespace biosim::gpusim
