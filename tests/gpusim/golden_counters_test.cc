// Golden-counter regression harness: pins the exact KernelStats integer
// counters the simulator produces for the paper's four kernel generations
// (v0..v3) on a fixed-seed 4k-agent workload.
//
// The source paper's argument rests on counter fidelity — DRAM bytes, L2
// hits, transactions, FLOPs and atomic conflicts are what every figure is
// derived from — so any change to the metered path (coalescer, cache
// simulation, warp accounting) must reproduce these numbers *byte-
// identically*. The goldens in golden_counters.json were recorded before
// the batched access-stream refactor and assert that the refactor (and any
// future one) is counter-exact.
//
// Updating the goldens (only when the *model* intentionally changes — never
// to paper over an accidental diff):
//
//   BIOSIM_UPDATE_GOLDENS=1 ./build/tests/gpusim_tests \
//       --gtest_filter=GoldenCountersTest.SerialModeMatchesGoldens
//
// then re-run the suite without the env var and commit the JSON with an
// explanation of why the counters legitimately moved.
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "gpu/gpu_mechanical_op.h"
#include "gpusim/profiler.h"
#include "spatial/null_environment.h"

namespace biosim::gpu {
namespace {

constexpr const char* kGoldenRelPath = "/tests/gpusim/golden_counters.json";
constexpr int kVersions = 4;

/// Counters of one kernel (or the transfer pseudo-kernel), by name. All
/// integers: these must match the goldens exactly, bit for bit.
using CounterMap = std::map<std::string, uint64_t>;
/// kernel name -> counters.
using KernelMap = std::map<std::string, CounterMap>;
/// "v0".."v3" -> kernels.
using GoldenMap = std::map<std::string, KernelMap>;

/// GTX 1080 Ti with the L2 shrunk so the 4k-agent working set exceeds it —
/// the benchmark-A regime (262k+ agents vs 2.75 MB) at a size the suite can
/// meter exactly (stride 1) in milliseconds.
gpusim::DeviceSpec GoldenSpec() {
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::GTX1080Ti();
  spec.l2_capacity_bytes = 64 * 1024;
  spec.l1_capacity_bytes = 16 * 1024;
  return spec;
}

CounterMap Counters(const gpusim::AggregatedKernel& k) {
  return CounterMap{
      {"launches", k.launches},
      {"total_threads", k.total_threads},
      {"fp32_flops", k.fp32_flops},
      {"fp64_flops", k.fp64_flops},
      {"read_transactions", k.read_transactions},
      {"write_transactions", k.write_transactions},
      {"dram_read_bytes", k.dram_read_bytes},
      {"dram_write_bytes", k.dram_write_bytes},
      {"l2_read_hit_bytes", k.l2_read_hit_bytes},
      {"l2_write_hit_bytes", k.l2_write_hit_bytes},
      {"l1_read_hit_bytes", k.l1_read_hit_bytes},
      {"l1_write_hit_bytes", k.l1_write_hit_bytes},
      {"requested_read_bytes", k.requested_read_bytes},
      {"requested_write_bytes", k.requested_write_bytes},
      {"shared_bytes", k.shared_bytes},
      {"atomic_ops", k.atomic_ops},
      {"atomic_serialized", k.atomic_serialized},
      {"lane_ops_sum", k.lane_ops_sum},
      {"warp_ops_slots", k.warp_ops_slots},
      {"max_lane_mem_ops", k.max_lane_mem_ops},
  };
}

/// One step of the version-v pipeline on the fixed-seed 4k-agent workload
/// (16^3 jittered lattice, shuffled into the aged-population layout), with
/// exact metering. Returns every launched kernel's aggregated counters plus
/// the host<->device transfer totals.
KernelMap RunVersion(int v, bool parallel_blocks) {
  ResourceManager rm;
  testutil::FillLatticeCells(&rm, 16, 10.0, 10.0, /*jitter=*/1.5,
                             /*seed=*/42);
  testutil::ShuffleAgents(&rm, /*seed=*/99);

  Param param;
  GpuMechanicsOptions opts = GpuMechanicsOptions::Version(v, GoldenSpec());
  opts.meter_stride = 1;
  opts.parallel_blocks = parallel_blocks;
  GpuMechanicalOp op(opts);
  NullEnvironment env;
  env.Update(rm, param, ExecMode::kSerial);
  op.Step(rm, env, param, ExecMode::kSerial, nullptr);

  KernelMap out;
  gpusim::ProfileReport report(op.device());
  for (const auto& k : report.kernels()) {
    out[k.name] = Counters(k);
  }
  const gpusim::TransferStats& t = op.device().transfers();
  out["_transfers"] = CounterMap{
      {"h2d_bytes", t.h2d_bytes},
      {"d2h_bytes", t.d2h_bytes},
      {"h2d_count", t.h2d_count},
      {"d2h_count", t.d2h_count},
  };
  return out;
}

GoldenMap RunAllVersions(bool parallel_blocks) {
  GoldenMap all;
  for (int v = 0; v < kVersions; ++v) {
    all["v" + std::to_string(v)] = RunVersion(v, parallel_blocks);
  }
  return all;
}

std::string GoldenPath() {
  return std::string(BIOSIM_SOURCE_DIR) + kGoldenRelPath;
}

// --- minimal JSON (de)serialization for the fixed 3-level schema ----------

void WriteGoldens(const GoldenMap& all, const std::string& path) {
  std::ofstream f(path);
  f << "{\n";
  f << "  \"_workload\": \"16^3 lattice spacing 10 diam 10 jitter 1.5 seed "
       "42, shuffled seed 99, 1 step, meter stride 1, L2 64KiB L1 16KiB\",\n";
  size_t vi = 0;
  for (const auto& [version, kernels] : all) {
    f << "  \"" << version << "\": {\n";
    size_t ki = 0;
    for (const auto& [kernel, counters] : kernels) {
      f << "    \"" << kernel << "\": {";
      size_t ci = 0;
      for (const auto& [name, value] : counters) {
        f << "\"" << name << "\": " << value;
        if (++ci < counters.size()) {
          f << ", ";
        }
      }
      f << (++ki < kernels.size() ? "},\n" : "}\n");
    }
    f << (++vi < all.size() ? "  },\n" : "  }\n");
  }
  f << "}\n";
}

/// Parser for the subset written above: nested string-keyed objects whose
/// leaves are unsigned integers; string values (the _workload note) are
/// skipped. Hard-fails the test on malformed input.
class GoldenParser {
 public:
  explicit GoldenParser(std::string text) : text_(std::move(text)) {}

  GoldenMap Parse() {
    GoldenMap all;
    Expect('{');
    while (PeekNonSpace() != '}') {
      std::string version = ParseString();
      Expect(':');
      if (PeekNonSpace() == '"') {
        ParseString();  // metadata note
      } else {
        all[version] = ParseKernels();
      }
      if (PeekNonSpace() == ',') {
        Expect(',');
      }
    }
    Expect('}');
    return all;
  }

 private:
  KernelMap ParseKernels() {
    KernelMap kernels;
    Expect('{');
    while (PeekNonSpace() != '}') {
      std::string kernel = ParseString();
      Expect(':');
      kernels[kernel] = ParseCounters();
      if (PeekNonSpace() == ',') {
        Expect(',');
      }
    }
    Expect('}');
    return kernels;
  }

  CounterMap ParseCounters() {
    CounterMap counters;
    Expect('{');
    while (PeekNonSpace() != '}') {
      std::string name = ParseString();
      Expect(':');
      counters[name] = ParseUint();
      if (PeekNonSpace() == ',') {
        Expect(',');
      }
    }
    Expect('}');
    return counters;
  }

  char PeekNonSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    EXPECT_LT(pos_, text_.size()) << "unexpected end of golden JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Expect(char c) {
    char got = PeekNonSpace();
    ASSERT_EQ(got, c) << "golden JSON parse error at offset " << pos_;
    ++pos_;
  }

  std::string ParseString() {
    Expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      s += text_[pos_++];
    }
    Expect('"');
    return s;
  }

  uint64_t ParseUint() {
    PeekNonSpace();
    uint64_t v = 0;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<uint64_t>(text_[pos_++] - '0');
      any = true;
    }
    EXPECT_TRUE(any) << "expected integer at offset " << pos_;
    return v;
  }

  std::string text_;
  size_t pos_ = 0;
};

GoldenMap LoadGoldens() {
  std::ifstream f(GoldenPath());
  EXPECT_TRUE(f.good()) << "missing golden file " << GoldenPath()
                        << " — record it with BIOSIM_UPDATE_GOLDENS=1";
  std::stringstream ss;
  ss << f.rdbuf();
  return GoldenParser(ss.str()).Parse();
}

/// Byte-identical comparison with a readable per-counter diff.
void ExpectMatchesGoldens(const GoldenMap& got, const GoldenMap& want,
                          const char* mode) {
  ASSERT_EQ(want.size(), static_cast<size_t>(kVersions))
      << "golden file does not cover v0..v3";
  for (const auto& [version, want_kernels] : want) {
    auto vit = got.find(version);
    ASSERT_NE(vit, got.end()) << mode << ": missing version " << version;
    const KernelMap& got_kernels = vit->second;
    EXPECT_EQ(got_kernels.size(), want_kernels.size())
        << mode << " " << version << ": kernel set changed";
    for (const auto& [kernel, want_counters] : want_kernels) {
      auto kit = got_kernels.find(kernel);
      ASSERT_NE(kit, got_kernels.end())
          << mode << " " << version << ": kernel '" << kernel
          << "' no longer launched";
      for (const auto& [name, want_value] : want_counters) {
        auto cit = kit->second.find(name);
        ASSERT_NE(cit, kit->second.end())
            << mode << " " << version << " " << kernel
            << ": counter '" << name << "' missing";
        EXPECT_EQ(cit->second, want_value)
            << mode << " " << version << " kernel '" << kernel
            << "' counter '" << name << "' drifted from the golden";
      }
    }
  }
}

TEST(GoldenCountersTest, SerialModeMatchesGoldens) {
  GoldenMap got = RunAllVersions(/*parallel_blocks=*/false);
  if (std::getenv("BIOSIM_UPDATE_GOLDENS") != nullptr) {
    WriteGoldens(got, GoldenPath());
    GTEST_SKIP() << "goldens re-recorded at " << GoldenPath();
  }
  ExpectMatchesGoldens(got, LoadGoldens(), "serial");
}

TEST(GoldenCountersTest, ParallelBlockModeMatchesGoldens) {
  // The parallel-block mode must be *counter-invisible*: per-block shards
  // merged in block order reproduce the serial counters byte-identically,
  // whatever the worker count (including 1).
  if (std::getenv("BIOSIM_UPDATE_GOLDENS") != nullptr) {
    GTEST_SKIP() << "goldens are recorded from the serial mode";
  }
  GoldenMap got = RunAllVersions(/*parallel_blocks=*/true);
  ExpectMatchesGoldens(got, LoadGoldens(), "parallel-block");
}

TEST(GoldenCountersTest, ParallelAndSerialModesAgreeExactly) {
  // Mode-vs-mode comparison that holds even while goldens are being
  // re-recorded: the two execution modes are always interchangeable.
  GoldenMap serial = RunAllVersions(/*parallel_blocks=*/false);
  GoldenMap parallel = RunAllVersions(/*parallel_blocks=*/true);
  EXPECT_EQ(serial == parallel, true)
      << "parallel-block metering diverged from serial";
}

}  // namespace
}  // namespace biosim::gpu
