// Golden-file test for the observability pipeline: a short traced run must
// produce a Chrome-trace JSON Perfetto can load (host + simulated-GPU
// tracks), per-step metrics JSONL, and a versioned run report — all
// parseable by obs::json and structurally sound.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "app/runner.h"
#include "obs/json.h"
#include "obs/report.h"

namespace biosim::app {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class TraceGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.model_type = "cell_division";
    cfg_.cells_per_dim = 3;
    cfg_.backend_type = "gpu";
    cfg_.gpu_version = 2;
    cfg_.steps = 2;
    cfg_.trace_path = TempPath("golden_trace.json");
    cfg_.metrics_path = TempPath("golden_metrics.jsonl");
    cfg_.report_path = TempPath("golden_report.json");
  }
  void TearDown() override {
    for (const auto& p : {cfg_.trace_path, cfg_.metrics_path,
                          cfg_.report_path}) {
      std::remove(p.c_str());
    }
  }
  RunConfig cfg_;
};

TEST_F(TraceGoldenTest, TwoStepRunEmitsValidTraceMetricsAndReport) {
  RunSummary s = ExecuteRun(cfg_);
  EXPECT_GT(s.trace_events, 0u);
  EXPECT_EQ(s.trace_dropped, 0u);

  // --- Trace: parseable, expected structure. ---
  std::string error;
  auto trace = obs::json::Parse(Slurp(cfg_.trace_path), &error);
  ASSERT_NE(trace, nullptr) << error;
  const obs::json::Value* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> span_names;
  std::set<std::string> track_labels;
  // Per-(pid, tid) last start timestamp, to check per-track monotonicity.
  std::map<std::pair<int, int>, double> last_ts;
  size_t gpu_spans_with_args = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const obs::json::Value& e = (*events)[i];
    const std::string ph = e.Find("ph")->AsString();
    if (ph == "M") {
      track_labels.insert(e.Find("args")->Find("name")->AsString());
      continue;
    }
    ASSERT_EQ(ph, "X");
    span_names.insert(e.Find("name")->AsString());
    int pid = static_cast<int>(e.Find("pid")->AsDouble());
    int tid = static_cast<int>(e.Find("tid")->AsDouble());
    double ts = e.Find("ts")->AsDouble();
    EXPECT_GE(e.Find("dur")->AsDouble(), 0.0);
    auto key = std::make_pair(pid, tid);
    auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "timestamps regress on track " << pid
                                << "/" << tid;
    }
    last_ts[key] = ts;
    if (pid == 2 && e.Find("args") != nullptr) {
      ++gpu_spans_with_args;
      EXPECT_NE(e.Find("args")->Find("grid_dim"), nullptr);
    }
  }

  // Host scheduler spans.
  for (const char* expected :
       {"step", "cell behaviors", "commit", "neighborhood update",
        "mechanical forces", "gpu kernels", "gpu h2d", "gpu d2h"}) {
    EXPECT_TRUE(span_names.count(expected)) << "missing span: " << expected;
  }
  // Simulated-GPU kernel spans reconstructed from Device launch history.
  EXPECT_TRUE(span_names.count("ug_build"));
  EXPECT_TRUE(span_names.count("mech_interaction"));
  EXPECT_GT(gpu_spans_with_args, 0u);

  // Track metadata: host process, virtual GPU process, main thread.
  EXPECT_TRUE(track_labels.count("host"));
  EXPECT_TRUE(track_labels.count("gpusim (virtual time)"));
  EXPECT_TRUE(track_labels.count("main"));
  EXPECT_TRUE(track_labels.count("gpu kernels"));

  EXPECT_EQ(trace->Find("otherData")->Find("dropped_events")->AsDouble(),
            0.0);

  // --- Metrics: one parseable object per step, steps increasing. ---
  std::ifstream metrics(cfg_.metrics_path);
  ASSERT_TRUE(metrics.good());
  std::string line;
  uint64_t expect_step = 1;
  size_t lines = 0;
  while (std::getline(metrics, line)) {
    ++lines;
    auto v = obs::json::Parse(line, &error);
    ASSERT_NE(v, nullptr) << error << " in: " << line;
    EXPECT_EQ(static_cast<uint64_t>(v->Find("step")->AsDouble()),
              expect_step++);
    ASSERT_NE(v->Find("histograms"), nullptr);
    EXPECT_NE(v->Find("histograms")->Find("op/mechanical forces/ms"),
              nullptr);
    ASSERT_NE(v->Find("counters"), nullptr);
    EXPECT_NE(
        v->Find("counters")->Find("gpusim/kernel/mech_interaction/launches"),
        nullptr);
  }
  EXPECT_EQ(lines, 2u);

  // --- Report: versioned, echoes config, carries the summary. ---
  auto report = obs::json::Parse(Slurp(cfg_.report_path), &error);
  ASSERT_NE(report, nullptr) << error;
  EXPECT_EQ(report->Find("report_version")->AsDouble(),
            static_cast<double>(obs::kReportVersion));
  EXPECT_EQ(report->Find("tool")->AsString(), "biosim_run");
  ASSERT_NE(report->Find("config"), nullptr);
  EXPECT_EQ(report->Find("config")->Find("model_type")->AsString(),
            "cell_division");
  EXPECT_EQ(report->Find("config")->Find("backend_type")->AsString(), "gpu");
  ASSERT_NE(report->Find("environment"), nullptr);
  EXPECT_NE(report->Find("environment")->Find("compiler"), nullptr);
  const obs::json::Value* summary = report->Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("steps")->AsDouble(), 2.0);
  EXPECT_EQ(static_cast<uint64_t>(summary->Find("final_agents")->AsDouble()),
            s.final_agents);
  ASSERT_NE(summary->Find("trace"), nullptr);
  EXPECT_EQ(
      static_cast<uint64_t>(summary->Find("trace")->Find("events")->AsDouble()),
      s.trace_events);
  EXPECT_NE(report->Find("metrics"), nullptr);

  // The in-memory report the CLI prints under --json matches the file.
  EXPECT_EQ(s.report_json + "\n", Slurp(cfg_.report_path));
}

TEST_F(TraceGoldenTest, MetricsEveryThinsSnapshotsButKeepsFinalStep) {
  cfg_.steps = 5;
  cfg_.metrics_every = 2;
  cfg_.trace_path.clear();
  cfg_.report_path.clear();
  ExecuteRun(cfg_);

  std::ifstream metrics(cfg_.metrics_path);
  std::vector<uint64_t> steps;
  std::string line;
  while (std::getline(metrics, line)) {
    auto v = obs::json::Parse(line);
    ASSERT_NE(v, nullptr);
    steps.push_back(static_cast<uint64_t>(v->Find("step")->AsDouble()));
  }
  EXPECT_EQ(steps, (std::vector<uint64_t>{2, 4, 5}));
}

}  // namespace
}  // namespace biosim::app
