// Sharded pipeline property battery (docs/sharding.md): for every scenario,
// the sharded run must be BYTE-FOR-BYTE the unsharded run — identical
// per-step StateHash sequence for every shard count, every thread count, and
// every balance mode. Sharding is a work-assignment optimisation; if any bit
// of any trajectory moves, the halo protocol or the merge discipline broke.
//
// The scenarios pin the protocol's edge cases: agents sitting exactly on
// shard face planes, divisions whose daughters land across a boundary,
// torus wrap (including the K == 2 duplicate-ghost case), the degenerate
// K == 1 shard, clustered occupancy under adaptive balancing, and a
// mass-migration step where the whole population teleports across the
// domain between steps.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/behaviors/grow_divide.h"
#include "core/behaviors/random_walk.h"
#include "core/behaviors/secretion.h"
#include "core/simulation.h"
#include "diffusion/diffusion_grid.h"

namespace biosim {
namespace {

enum class Population {
  kRandom,     // benchmark-B uniform fill
  kClustered,  // all agents in a thin central slab (skewed plane loads)
  kLattice,    // benchmark-A grid with divisions
};

struct Scenario {
  Population population = Population::kRandom;
  BoundaryMode boundary = BoundaryMode::kClamp;
  uint32_t shards = 0;
  uint32_t threads = 1;
  ShardBalance balance = ShardBalance::kStatic;
  uint64_t steps = 8;
  bool diffusion = true;
};

std::vector<uint64_t> HashTrajectory(const Scenario& sc) {
  Param p;
  p.random_seed = 42;
  p.num_threads = sc.threads;
  p.num_shards = sc.shards;
  p.shard_balance = sc.balance;
  p.boundary_mode = sc.boundary;
  p.max_bound = 240.0;
  Simulation sim(p);
  switch (sc.population) {
    case Population::kRandom:
      sim.CreateRandomCells(160, 8.0);
      break;
    case Population::kClustered:
      // Three thin z-slabs: most planes empty, so static and adaptive
      // splits produce very different plane ranges — the hash must not care.
      for (int i = 0; i < 120; ++i) {
        double t = static_cast<double>(i);
        sim.AddCell({10.0 + 1.8 * t, 120.0 + 0.4 * (i % 17),
                     10.0 + 100.0 * (i % 3) + 0.05 * t},
                    8.0);
      }
      break;
    case Population::kLattice:
      sim.Create3DCellGrid(4, 48.0, 8.0, 16.0, /*growth_rate=*/120000.0);
      break;
  }
  if (sc.diffusion) {
    auto grid = std::make_unique<DiffusionGrid>("oxygen", 0.0, 240.0, 12, 80.0,
                                                /*decay_constant=*/0.01);
    grid->Initialize([](const Double3&) { return 1.0; });
    sim.AddDiffusionGrid(std::move(grid));
  }
  for (AgentIndex i = 0; i < sim.rm().size(); ++i) {
    if (sc.population != Population::kLattice) {
      sim.rm().AttachBehavior(i, std::make_unique<RandomWalk>(60.0));
    }
    if (sc.diffusion) {
      sim.rm().AttachBehavior(
          i, std::make_unique<Secretion>(i % 2 == 0 ? -0.4 : 0.7));
    }
  }
  std::vector<uint64_t> hashes;
  hashes.push_back(sim.StateHash());
  for (uint64_t s = 0; s < sc.steps; ++s) {
    sim.Simulate(1);
    hashes.push_back(sim.StateHash());
  }
  return hashes;
}

/// Reference (shards = 0) vs sharded trajectories for one population.
void ExpectShardCountInvariant(Population pop, BoundaryMode boundary,
                               ShardBalance balance = ShardBalance::kStatic) {
  Scenario ref;
  ref.population = pop;
  ref.boundary = boundary;
  const auto reference = HashTrajectory(ref);
  for (uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
    Scenario sc = ref;
    sc.shards = shards;
    sc.balance = balance;
    EXPECT_EQ(HashTrajectory(sc), reference)
        << "shards=" << shards << " diverged from the unsharded run";
  }
}

TEST(ShardingTest, RandomPopulationClampIsShardCountInvariant) {
  ExpectShardCountInvariant(Population::kRandom, BoundaryMode::kClamp);
}

TEST(ShardingTest, RandomPopulationTorusIsShardCountInvariant) {
  // Torus wrap: shard 0 and shard K-1 are halo neighbors; K == 2 delivers
  // both face planes of each shard to the *same* peer on distinct channels.
  ExpectShardCountInvariant(Population::kRandom, BoundaryMode::kTorus);
}

TEST(ShardingTest, ClusteredPopulationAdaptiveBalanceIsShardCountInvariant) {
  ExpectShardCountInvariant(Population::kClustered, BoundaryMode::kClamp,
                            ShardBalance::kAdaptive);
}

TEST(ShardingTest, DivisionAcrossShardBoundaryIsShardCountInvariant) {
  // GrowDivide: daughters spawn at random offsets, some across the plane a
  // shard boundary sits on; the deferred commit + next-step repartition must
  // hand them to the right owner without disturbing a single bit.
  ExpectShardCountInvariant(Population::kLattice, BoundaryMode::kClamp);
}

TEST(ShardingTest, FaceStraddlingAgentsAreShardCountInvariant) {
  // Agents placed exactly ON the box-plane z-coordinates that become shard
  // faces: ownership must tie-break identically (floor binning) no matter
  // how many shards the plane separates.
  Scenario ref;
  ref.population = Population::kClustered;
  ref.steps = 6;
  auto make = [&](uint32_t shards) {
    Param p;
    p.random_seed = 7;
    p.num_shards = shards;
    p.max_bound = 240.0;
    Simulation sim(p);
    // interaction radius = diameter 8 -> box planes at z = 0, 8, 16, ...
    for (int i = 0; i < 96; ++i) {
      double z = 8.0 * static_cast<double>(i % 30);  // exactly on plane faces
      sim.AddCell({2.0 + 2.4 * (i % 97), 120.0, z}, 8.0);
      sim.rm().AttachBehavior(i, std::make_unique<RandomWalk>(40.0));
    }
    std::vector<uint64_t> hashes;
    for (uint64_t s = 0; s < ref.steps; ++s) {
      sim.Simulate(1);
      hashes.push_back(sim.StateHash());
    }
    return hashes;
  };
  const auto reference = make(0);
  EXPECT_EQ(make(1), reference);
  EXPECT_EQ(make(2), reference);
  EXPECT_EQ(make(5), reference);
}

TEST(ShardingTest, MassMigrationFallbackIsShardCountInvariant) {
  // Teleport the whole population to the far end of the domain mid-run: the
  // per-step repartition recomputes ownership from scratch, so even a 100%
  // migration step must stay bitwise (no incremental-ownership shortcut to
  // fall out of sync with).
  auto run = [](uint32_t shards) {
    Param p;
    p.random_seed = 13;
    p.num_shards = shards;
    p.max_bound = 240.0;
    Simulation sim(p);
    sim.CreateRandomCells(120, 8.0);
    for (AgentIndex i = 0; i < sim.rm().size(); ++i) {
      sim.rm().AttachBehavior(i, std::make_unique<RandomWalk>(60.0));
    }
    sim.Simulate(3);
    for (auto& pos : sim.rm().positions()) {
      pos.z = 239.0 - 0.9 * pos.z;  // everyone crosses most shard boundaries
    }
    sim.Simulate(3);
    return sim.StateHash();
  };
  const uint64_t reference = run(0);
  EXPECT_EQ(run(1), reference);
  EXPECT_EQ(run(4), reference);
  EXPECT_EQ(run(8), reference);
}

TEST(ShardingTest, ThreadByShardSweepIsBitwiseIdentical) {
  // The full matrix the CI job sweeps: hash must be a function of the
  // scenario only, never of the worker count or the shard count.
  Scenario ref;
  ref.population = Population::kRandom;
  ref.boundary = BoundaryMode::kTorus;
  const auto reference = HashTrajectory(ref);
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      Scenario sc = ref;
      sc.shards = shards;
      sc.threads = threads;
      EXPECT_EQ(HashTrajectory(sc), reference)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardingTest, ShardedRunIsRepeatable) {
  Scenario sc;
  sc.population = Population::kRandom;
  sc.shards = 4;
  sc.threads = 8;
  EXPECT_EQ(HashTrajectory(sc), HashTrajectory(sc));
}

TEST(ShardingTest, MoreShardsThanPlanesIsRejectedLoudly) {
  // Satellite fix: an over-sharded domain must fail with the descriptive
  // ShardPartition error, not run with silently empty shards.
  Param p;
  p.num_shards = 64;
  p.max_bound = 100.0;  // diameter 20 boxes -> 5 z-planes on the torus
  p.boundary_mode = BoundaryMode::kTorus;
  Simulation sim(p);
  sim.CreateRandomCells(32, 20.0);
  try {
    sim.Simulate(1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shards exceed"), std::string::npos)
        << e.what();
  }
}

TEST(ShardingTest, OverlapOpsComposeIsRejectedLoudly) {
  Param p;
  p.num_shards = 2;
  p.overlap_ops = true;
  EXPECT_THROW({ Simulation sim(p); }, std::invalid_argument);
}

TEST(ShardingTest, ShardRuntimeExposesLoadAndHaloStats) {
  Param p;
  p.num_shards = 4;
  p.max_bound = 240.0;
  Simulation sim(p);
  sim.CreateRandomCells(200, 8.0);
  for (AgentIndex i = 0; i < sim.rm().size(); ++i) {
    sim.rm().AttachBehavior(i, std::make_unique<RandomWalk>(80.0));
  }
  sim.Simulate(3);
  const ShardRuntime* rt = sim.shard_runtime();
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->shards(), 4u);
  size_t owned_total = 0;
  for (uint32_t k = 0; k < rt->shards(); ++k) {
    owned_total += rt->owned_rows(k).size();
  }
  EXPECT_EQ(owned_total, sim.rm().size());  // ownership is a partition
  uint64_t ghosts = 0;
  for (uint64_t g : rt->ghosts_received()) {
    ghosts += g;
  }
  EXPECT_GT(ghosts, 0u);  // random fill always populates face planes
  EXPECT_GT(rt->communicator().messages_sent(), 0u);
  EXPECT_EQ(rt->communicator().PendingMessages(), 0u);  // no protocol leaks
}

}  // namespace
}  // namespace biosim
