// Exit-code contract of `biosim_run --sanitize` (tools/biosim_run.cc),
// exercised end to end by spawning the real binary:
//
//   0  clean run (sanitized or not)
//   1  usage / config errors
//   2  the sanitizer found hazards (compute-sanitizer convention)
//
// The hazardous workload is the deliberately racy grid-build kernel
// (gpu/diagnostic_kernels.h) selected with `racy_grid_build = true` — the
// same simulation exits 0 without --sanitize and 2 with it, which is
// exactly the CLI promise documented in docs/sanitizer.md.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#ifndef BIOSIM_RUN_BIN
#error "BIOSIM_RUN_BIN must point at the biosim_run binary"
#endif

namespace biosim {
namespace {

std::string WriteConfig(const char* name, const std::string& extra_backend) {
  std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::ofstream f(path);
  f << "[simulation]\n"
       "steps = 1\n"
       "seed = 7\n"
       "max_displacement = 0\n"
       "\n"
       "[model]\n"
       "type = random_cloud\n"
       "agents = 512\n"
       "density = 27\n"
       "diameter = 10\n"
       "\n"
       "[backend]\n"
       "type = gpu\n"
       "gpu_version = 2\n"
       "meter_stride = 4\n"
    << extra_backend;
  return path;
}

int RunBiosim(const std::string& args) {
  std::string cmd =
      std::string(BIOSIM_RUN_BIN) + " " + args + " > /dev/null 2>&1";
  int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "failed to spawn " << cmd;
  EXPECT_TRUE(WIFEXITED(status)) << "abnormal termination of " << cmd;
  return WEXITSTATUS(status);
}

TEST(SanitizeCliTest, CleanConfigExitsZeroUnderSanitizer) {
  std::string cfg = WriteConfig("clean.ini", "");
  EXPECT_EQ(RunBiosim(cfg + " --sanitize"), 0);
  std::remove(cfg.c_str());
}

TEST(SanitizeCliTest, RacyKernelExitsTwoUnderSanitizer) {
  std::string cfg = WriteConfig("racy.ini", "racy_grid_build = true\n");
  EXPECT_EQ(RunBiosim(cfg + " --sanitize"), 2);
  std::remove(cfg.c_str());
}

TEST(SanitizeCliTest, RacyKernelExitsZeroWithoutSanitizer) {
  // The race is a *hazard*, not a functional failure of the sequential
  // simulator: unsanitized runs complete normally. Only --sanitize turns it
  // into a non-zero exit.
  std::string cfg = WriteConfig("racy_nosan.ini", "racy_grid_build = true\n");
  EXPECT_EQ(RunBiosim(cfg), 0);
  std::remove(cfg.c_str());
}

TEST(SanitizeCliTest, ConfigErrorExitsOne) {
  // racy_grid_build swaps a device kernel: rejected on the CPU backend.
  std::string path = std::string(::testing::TempDir()) + "/bad.ini";
  std::ofstream f(path);
  f << "[model]\ntype = random_cloud\nagents = 16\n"
       "[backend]\ntype = cpu\nracy_grid_build = true\n";
  f.close();
  EXPECT_EQ(RunBiosim(path), 1);
  EXPECT_EQ(RunBiosim(std::string()), 1);  // no config at all: usage error
  std::remove(path.c_str());
}

}  // namespace
}  // namespace biosim
