// End-to-end contract of the PR-8 observability surface, exercised by
// spawning the real biosim_run binary:
//
//   --perf-counters        report gains "perf_counters" (+"roofline" on the
//                          CPU backend) whether or not the host allows
//                          perf_event_open; BIOSIM_PERF=off pins the
//                          degraded shape deterministically
//   --flight-recorder      a --verify-determinism divergence (forced via
//                          the BIOSIM_INJECT_DIVERGENCE test hook) exits 3
//                          AND leaves a parseable postmortem dump
//   --progress             heartbeat lines appear on stderr
//   report v2              environment carries hardware_threads AND
//                          worker_threads (the v1 ambiguity fix)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

#ifndef BIOSIM_RUN_BIN
#error "BIOSIM_RUN_BIN must point at the biosim_run binary"
#endif

namespace biosim {
namespace {

int RunBiosim(const std::string& args, const std::string& env = "") {
  std::string cmd = env + (env.empty() ? "" : " ") + BIOSIM_RUN_BIN + " " +
                    args + " > /dev/null 2>&1";
  int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "failed to spawn " << cmd;
  EXPECT_TRUE(WIFEXITED(status)) << "abnormal termination of " << cmd;
  return WEXITSTATUS(status);
}

std::unique_ptr<obs::json::Value> ReadJson(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  std::string err;
  auto doc = obs::json::Parse(ss.str(), &err);
  EXPECT_NE(doc, nullptr) << path << ": " << err;
  return doc;
}

TEST(ObservabilityCliTest, ReportV2CarriesBothThreadCounts) {
  std::string report = ::testing::TempDir() + "obs_report_v2.json";
  ASSERT_EQ(RunBiosim("--steps 2 --threads 2 --report " + report), 0);
  auto doc = ReadJson(report);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->Find("report_version")->AsDouble(), 2.0);
  const obs::json::Value* env = doc->Find("environment");
  ASSERT_NE(env, nullptr);
  ASSERT_NE(env->Find("hardware_threads"), nullptr);
  ASSERT_NE(env->Find("worker_threads"), nullptr);
  EXPECT_EQ(env->Find("worker_threads")->AsDouble(), 2.0)
      << "--threads 2 must be recorded as the worker count";
  std::remove(report.c_str());
}

TEST(ObservabilityCliTest, PerfCountersSectionDegradedShape) {
  // BIOSIM_PERF=off forces the null backend, making the degraded shape
  // testable on any host (counter-capable ones included). 10 steps: the
  // default scenario's agents need a few divisions before any contact
  // forces (and thus roofline model flops) exist.
  std::string report = ::testing::TempDir() + "obs_report_perf_off.json";
  ASSERT_EQ(RunBiosim("--steps 10 --perf-counters --report " + report,
                      "BIOSIM_PERF=off"),
            0);
  auto doc = ReadJson(report);
  ASSERT_NE(doc, nullptr);
  const obs::json::Value* perf = doc->Find("perf_counters");
  ASSERT_NE(perf, nullptr) << "--perf-counters must always emit the section";
  ASSERT_NE(perf->Find("available"), nullptr);
  EXPECT_FALSE(perf->Find("available")->AsBool());
  ASSERT_NE(perf->Find("reason"), nullptr);
  EXPECT_EQ(perf->Find("reason")->AsString(), "disabled by BIOSIM_PERF=off");
  // The roofline join still emits the model columns on the CPU backend.
  const obs::json::Value* roofline = doc->Find("roofline");
  ASSERT_NE(roofline, nullptr);
  const obs::json::Value* force =
      roofline->Find("ops")->Find("mechanical forces");
  ASSERT_NE(force, nullptr);
  ASSERT_NE(force->Find("model"), nullptr);
  EXPECT_GT(force->Find("model")->Find("flops")->AsDouble(), 0.0);
  std::remove(report.c_str());
}

TEST(ObservabilityCliTest, PerfCountersHostBehavior) {
  // Whatever this host permits, the run must succeed and the section must
  // be internally consistent (available:true => per-op table with the
  // scheduler's op names; available:false => a reason).
  std::string report = ::testing::TempDir() + "obs_report_perf_host.json";
  ASSERT_EQ(RunBiosim("--steps 2 --perf-counters --report " + report), 0);
  auto doc = ReadJson(report);
  ASSERT_NE(doc, nullptr);
  const obs::json::Value* perf = doc->Find("perf_counters");
  ASSERT_NE(perf, nullptr);
  if (perf->Find("available")->AsBool()) {
    const obs::json::Value* ops = perf->Find("ops");
    ASSERT_NE(ops, nullptr);
    const obs::json::Value* force = ops->Find("mechanical forces");
    ASSERT_NE(force, nullptr);
    EXPECT_GT(force->Find("cycles")->AsDouble(), 0.0);
    EXPECT_GT(force->Find("instructions")->AsDouble(), 0.0);
    EXPECT_GT(force->Find("samples")->AsDouble(), 0.0);
  } else {
    EXPECT_FALSE(perf->Find("reason")->AsString().empty());
  }
  std::remove(report.c_str());
}

TEST(ObservabilityCliTest, InjectedDivergenceExitsThreeAndDumps) {
  std::string dump = ::testing::TempDir() + "obs_divergence_dump.json";
  std::remove(dump.c_str());
  EXPECT_EQ(RunBiosim("--steps 4 --verify-determinism --flight-recorder " +
                          dump,
                      "BIOSIM_INJECT_DIVERGENCE=2"),
            3);
  auto doc = ReadJson(dump);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->Find("flight_recorder_version")->AsDouble(), 1.0);
  EXPECT_EQ(doc->Find("reason")->AsString(), "determinism-divergence");
  const obs::json::Value* ctx = doc->Find("context");
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->Find("first_divergent_step")->AsDouble(), 2.0);
  ASSERT_NE(ctx->Find("expected_hash"), nullptr);
  ASSERT_NE(ctx->Find("actual_hash"), nullptr);
  EXPECT_NE(ctx->Find("expected_hash")->AsString(),
            ctx->Find("actual_hash")->AsString());
  // The ring ends exactly at the divergent step.
  const obs::json::Value* steps = doc->Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_GT(steps->size(), 0u);
  EXPECT_EQ((*steps)[steps->size() - 1].Find("step")->AsDouble(), 2.0);
  std::remove(dump.c_str());
}

TEST(ObservabilityCliTest, CleanVerifyWithRecorderWritesNothing) {
  std::string dump = ::testing::TempDir() + "obs_no_dump.json";
  std::remove(dump.c_str());
  EXPECT_EQ(
      RunBiosim("--steps 3 --verify-determinism --flight-recorder " + dump),
      0);
  std::ifstream f(dump);
  EXPECT_FALSE(f.is_open()) << "clean runs must not leave a dump";
  std::remove(dump.c_str());
}

TEST(ObservabilityCliTest, ProgressHeartbeatOnStderr) {
  std::string err_file = ::testing::TempDir() + "obs_progress.err";
  std::string cmd = std::string(BIOSIM_RUN_BIN) +
                    " --steps 3 --progress 0.001 > /dev/null 2> " + err_file;
  int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::ifstream f(err_file);
  ASSERT_TRUE(f.is_open());
  std::string line;
  bool saw_heartbeat = false;
  while (std::getline(f, line)) {
    if (line.find("[biosim] step ") != std::string::npos &&
        line.find("steps/s") != std::string::npos &&
        line.find("hash ") != std::string::npos) {
      saw_heartbeat = true;
    }
  }
  EXPECT_TRUE(saw_heartbeat) << "no heartbeat line on stderr";
  std::remove(err_file.c_str());
}

}  // namespace
}  // namespace biosim
