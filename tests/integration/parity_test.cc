// Cross-backend parity: every backend's trajectory must stay within its
// documented bound of the uniform-grid serial reference (src/app/parity.h,
// docs/determinism.md). This is the test CI runs; tools/biosim_parity is the
// same harness as a standalone diff driver.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "app/parity.h"

namespace biosim::app {
namespace {

class ParityHarnessTest : public ::testing::Test {
 protected:
  // One run shared by all assertions: the harness is the expensive part
  // (twelve backends, five steps each).
  static void SetUpTestSuite() { report_ = new ParityReport(RunParity({})); }
  static void TearDownTestSuite() {
    delete report_;
    report_ = nullptr;
  }

  static const ParityResult& Result(const std::string& backend) {
    for (const ParityResult& r : report_->results) {
      if (r.backend == backend) {
        return r;
      }
    }
    ADD_FAILURE() << "no result for backend " << backend;
    static ParityResult missing;
    return missing;
  }

  static ParityReport* report_;
};

ParityReport* ParityHarnessTest::report_ = nullptr;

TEST_F(ParityHarnessTest, CoversEveryBackend) {
  std::set<std::string> names;
  for (const ParityResult& r : report_->results) {
    names.insert(r.backend);
  }
  EXPECT_EQ(names, (std::set<std::string>{
                       "ug_serial", "ug_parallel", "cpu_fast", "cpu_fast_mt",
                       "cpu_sharded", "cpu_simd", "cpu_fp32", "kdtree",
                       "gpu_v0", "gpu_v1", "gpu_v2", "gpu_v3"}));
}

TEST_F(ParityHarnessTest, AllBackendsWithinBounds) {
  for (const ParityResult& r : report_->results) {
    EXPECT_TRUE(r.pass) << report_->ToString();
  }
  EXPECT_TRUE(report_->all_pass);
}

TEST_F(ParityHarnessTest, UniformGridParallelIsBitwise) {
  // The tentpole claim: thread count never changes the FP operation order,
  // so the parallel grid owes hash-for-hash identity, not just closeness.
  const ParityResult& r = Result("ug_parallel");
  EXPECT_TRUE(r.bitwise_required);
  EXPECT_TRUE(r.hashes_equal) << report_->ToString();
  EXPECT_EQ(r.max_abs_delta, 0.0);
  EXPECT_EQ(r.final_hash, Result("ug_serial").final_hash);
}

TEST_F(ParityHarnessTest, CpuFastPathIsBitwise) {
  // The fused CSR kernel claim (docs/perf.md): same neighbor visit order,
  // same FP expressions — so it owes hash-for-hash identity against the
  // legacy callback reference, serial and parallel alike.
  for (const char* name : {"cpu_fast", "cpu_fast_mt"}) {
    const ParityResult& r = Result(name);
    EXPECT_TRUE(r.bitwise_required) << name;
    EXPECT_TRUE(r.hashes_equal) << name << "\n" << report_->ToString();
    EXPECT_EQ(r.max_abs_delta, 0.0) << name;
    EXPECT_EQ(r.final_hash, Result("ug_serial").final_hash) << name;
  }
}

TEST_F(ParityHarnessTest, ShardedPipelineIsBitwise) {
  // The sharding claim (docs/sharding.md): partitioning only assigns work;
  // the merge discipline (canonical traversal, one global displacement
  // epilogue, row-ordered deposit merge) keeps the output bitwise-equal to
  // the unsharded reference at any shard count.
  const ParityResult& r = Result("cpu_sharded");
  EXPECT_TRUE(r.bitwise_required);
  EXPECT_TRUE(r.hashes_equal) << report_->ToString();
  EXPECT_EQ(r.max_abs_delta, 0.0);
  EXPECT_EQ(r.final_hash, Result("ug_serial").final_hash);
}

TEST_F(ParityHarnessTest, SimdRowsOweToleranceNotBitwise) {
  // The vectorized kernel regroups the per-agent pair sum into lane
  // partials (physics/simd_force_kernel.h), so it owes a tolerance, not
  // hashes — and the FP64 SIMD row must sit at summation-order noise,
  // orders under the FP32 row's bound (same taxonomy as kdtree vs gpu_v1).
  const ParityResult& simd = Result("cpu_simd");
  EXPECT_FALSE(simd.bitwise_required);
  EXPECT_LE(simd.max_abs_delta, 1e-9) << report_->ToString();
  const ParityResult& fp32 = Result("cpu_fp32");
  EXPECT_FALSE(fp32.bitwise_required);
  EXPECT_LE(fp32.max_abs_delta, 2e-2) << report_->ToString();
  EXPECT_LT(simd.tolerance, fp32.tolerance);
}

TEST_F(ParityHarnessTest, Fp64BackendsFarTighterThanFp32Bound) {
  // kd-tree and GPU v0 differ from the reference only by FP64 summation
  // order; their divergence must sit orders of magnitude under the FP32
  // bound, or the tolerance taxonomy is meaningless.
  EXPECT_LE(Result("kdtree").max_abs_delta, 1e-9);
  EXPECT_LE(Result("gpu_v0").max_abs_delta, 1e-9);
  EXPECT_LT(Result("gpu_v0").tolerance, Result("gpu_v1").tolerance);
}

TEST_F(ParityHarnessTest, ReportListsEveryBackendWithStatus)  {
  std::string text = report_->ToString();
  for (const ParityResult& r : report_->results) {
    EXPECT_NE(text.find(r.backend), std::string::npos) << text;
  }
  EXPECT_NE(text.find("OK"), std::string::npos) << text;
}

}  // namespace
}  // namespace biosim::app
