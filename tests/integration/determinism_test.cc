// The determinism tentpole (docs/determinism.md): the same seeded scenario
// must produce bitwise-identical per-step state hashes at any worker count
// and across repeated runs. The scenario deliberately exercises every
// order-sensitive subsystem at once — growth + division (deferred
// structural changes), the parallel uniform-grid rebuild (canonicalized box
// chains), force accumulation, and substance deposits from behaviors
// (chunk-ordered deposit sink) on a diffusing field.
//
// The CLI contract rides along: `biosim_run --verify-determinism` exits 0
// on a deterministic config and prints the final state hash, which the CI
// thread sweep compares across BIOSIM_THREADS values.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/runner.h"
#include "core/behaviors/secretion.h"
#include "core/simulation.h"
#include "diffusion/diffusion_grid.h"

#ifndef BIOSIM_RUN_BIN
#error "BIOSIM_RUN_BIN must point at the biosim_run binary"
#endif

namespace biosim {
namespace {

/// Hash after construction and after each of `steps` steps, for one run of
/// the full-pipeline scenario at the given worker count. `zorder_cadence`
/// and `cpu_fast_path` plumb through the fused-kernel knobs (docs/perf.md).
std::vector<uint64_t> HashTrajectory(uint32_t num_threads, uint64_t steps,
                                     uint64_t seed = 42,
                                     uint32_t zorder_cadence = 0,
                                     bool cpu_fast_path = true,
                                     bool cpu_simd = false, bool fp32 = false,
                                     bool incremental_grid = true,
                                     bool overlap_ops = false) {
  Param p;
  p.random_seed = seed;
  p.num_threads = num_threads;
  p.zorder_cadence = zorder_cadence;
  p.cpu_fast_path = cpu_fast_path;
  p.cpu_simd = cpu_simd;
  p.precision = fp32 ? Precision::kFp32 : Precision::kFp64;
  p.incremental_grid = incremental_grid;
  p.overlap_ops = overlap_ops;
  p.max_bound = 120.0;
  Simulation sim(p);
  // Benchmark-A lattice: diameter 8 with threshold 16 so cells roughly
  // double in volume before dividing (several divisions over the run).
  sim.Create3DCellGrid(3, 20.0, 8.0, 16.0, /*growth_rate=*/120000.0);
  auto grid = std::make_unique<DiffusionGrid>("oxygen", 0.0, 120.0, 12, 80.0,
                                              /*decay_constant=*/0.01);
  grid->Initialize([](const Double3&) { return 1.0; });
  sim.AddDiffusionGrid(std::move(grid));
  // Mixed secretion/consumption so the deposit order actually matters:
  // re-ordered FP additions into a shared voxel would change the hash.
  for (AgentIndex i = 0; i < sim.rm().size(); ++i) {
    sim.rm().AttachBehavior(
        i, std::make_unique<Secretion>(i % 2 == 0 ? -0.4 : 0.7));
  }

  std::vector<uint64_t> hashes;
  hashes.push_back(sim.StateHash());
  for (uint64_t s = 0; s < steps; ++s) {
    sim.Simulate(1);
    hashes.push_back(sim.StateHash());
  }
  return hashes;
}

TEST(DeterminismTest, SameSeedThreadSweepIsBitwiseIdentical) {
  auto reference = HashTrajectory(1, 10);
  EXPECT_EQ(HashTrajectory(2, 10), reference);
  EXPECT_EQ(HashTrajectory(8, 10), reference);
}

TEST(DeterminismTest, FastPathWithZOrderSortThreadSweepIsBitwiseIdentical) {
  // The fused CSR kernel plus periodic Z-order row permutation — the full
  // perf configuration (docs/perf.md) — owes the same thread-count
  // invariance as the baseline pipeline: the permutation is a pure function
  // of positions and the fused traversal fixes each agent's FP order.
  auto reference = HashTrajectory(1, 10, 42, /*zorder_cadence=*/2);
  EXPECT_EQ(HashTrajectory(2, 10, 42, 2), reference);
  EXPECT_EQ(HashTrajectory(8, 10, 42, 2), reference);
}

TEST(DeterminismTest, FusedPathMatchesCallbackPathBitwise) {
  // Cross-path equality over the full pipeline, divisions included: turning
  // the fast path off must not change a single state hash (the parity
  // harness proves the same on the benchmark-B scenario).
  EXPECT_EQ(HashTrajectory(8, 10, 42, 0, /*cpu_fast_path=*/true),
            HashTrajectory(8, 10, 42, 0, /*cpu_fast_path=*/false));
}

TEST(DeterminismTest, SimdPathThreadSweepIsBitwiseSelfConsistent) {
  // The vectorized kernel owes a *tolerance* against the scalar reference
  // (FMA-contracted distances; docs/determinism.md), but against itself it
  // owes the full contract: per-agent candidate-order accumulation makes
  // the trajectory bitwise independent of the worker count and the run.
  auto reference = HashTrajectory(1, 10, 42, 0, true, /*cpu_simd=*/true);
  EXPECT_EQ(HashTrajectory(2, 10, 42, 0, true, true), reference);
  EXPECT_EQ(HashTrajectory(8, 10, 42, 0, true, true), reference);
  EXPECT_EQ(HashTrajectory(8, 10, 42, 0, true, true), reference);
}

TEST(DeterminismTest, Fp32PathThreadSweepIsBitwiseSelfConsistent) {
  // Same self-consistency for the FP32 compute mode (the paper's
  // Improvement I on the host): narrowed arithmetic, unchanged ordering.
  auto reference =
      HashTrajectory(1, 10, 42, 0, true, /*cpu_simd=*/true, /*fp32=*/true);
  EXPECT_EQ(HashTrajectory(2, 10, 42, 0, true, true, true), reference);
  EXPECT_EQ(HashTrajectory(8, 10, 42, 0, true, true, true), reference);
}

TEST(DeterminismTest, OverlappedOpsThreadSweepIsBitwiseIdentical) {
  // Both scheduler knobs on — incremental grid maintenance plus the
  // overlapped mechanics/diffusion task graph. Mechanics and diffusion
  // touch disjoint state after the deposit-merge barrier, and the patched
  // grid is byte-identical to a rebuild, so the full contract must survive.
  auto reference = HashTrajectory(1, 10, 42, 0, true, false, false,
                                  /*incremental_grid=*/true,
                                  /*overlap_ops=*/true);
  EXPECT_EQ(HashTrajectory(2, 10, 42, 0, true, false, false, true, true),
            reference);
  EXPECT_EQ(HashTrajectory(8, 10, 42, 0, true, false, false, true, true),
            reference);
}

TEST(DeterminismTest, SchedulerKnobsAreBitwiseNeutral) {
  // The knobs are pure performance switches: turning either off must not
  // change a single per-step hash. This is the cross-path equality the
  // steady bench re-checks on every CI run.
  auto baseline = HashTrajectory(8, 10, 42, 0, true, false, false,
                                 /*incremental_grid=*/false,
                                 /*overlap_ops=*/false);
  EXPECT_EQ(HashTrajectory(8, 10, 42, 0, true, false, false, true, false),
            baseline);
  EXPECT_EQ(HashTrajectory(8, 10, 42, 0, true, false, false, true, true),
            baseline);
}

TEST(DeterminismTest, RunToRunRepeatIsBitwiseIdentical) {
  // Same thread count twice: catches scheduling-dependent nondeterminism
  // that a thread sweep alone could miss.
  EXPECT_EQ(HashTrajectory(8, 10), HashTrajectory(8, 10));
}

TEST(DeterminismTest, HashDetectsSeedAndStepChanges) {
  // The sweep above is only meaningful if the hash is sensitive: different
  // seeds (division axes) and different step counts must not collide.
  auto a = HashTrajectory(1, 6, /*seed=*/1);
  auto b = HashTrajectory(1, 6, /*seed=*/2);
  EXPECT_NE(a.back(), b.back());
  EXPECT_NE(a[5], a[6]);  // one more step changes the state
}

TEST(VerifyDeterminismTest, DefaultConfigPassesWithForcedSerialRun) {
  app::RunConfig cfg;
  cfg.steps = 5;
  cfg.cells_per_dim = 3;
  cfg.num_threads = 8;
  app::DeterminismReport r = app::VerifyDeterminism(cfg);
  EXPECT_TRUE(r.deterministic);
  // Two runs at 8 workers plus the forced single-thread run.
  EXPECT_EQ(r.runs, 3);
  EXPECT_NE(r.final_hash, 0u);
}

TEST(VerifyDeterminismTest, FinalHashIndependentOfConfiguredThreads) {
  app::RunConfig cfg;
  cfg.steps = 4;
  cfg.cells_per_dim = 3;
  cfg.num_threads = 2;
  uint64_t h2 = app::VerifyDeterminism(cfg).final_hash;
  cfg.num_threads = 8;
  uint64_t h8 = app::VerifyDeterminism(cfg).final_hash;
  EXPECT_EQ(h2, h8);
}

int RunBiosim(const std::string& args, std::string* stdout_text = nullptr) {
  std::string out_path =
      std::string(::testing::TempDir()) + "/determinism_cli.out";
  std::string cmd = std::string(BIOSIM_RUN_BIN) + " " + args + " > " +
                    out_path + " 2>/dev/null";
  int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "failed to spawn " << cmd;
  EXPECT_TRUE(WIFEXITED(status)) << "abnormal termination of " << cmd;
  if (stdout_text != nullptr) {
    std::FILE* f = std::fopen(out_path.c_str(), "rb");
    if (f == nullptr) {
      ADD_FAILURE() << "cannot read " << out_path;
      return -1;
    }
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    *stdout_text = buf;
  }
  std::remove(out_path.c_str());
  return status == -1 ? -1 : WEXITSTATUS(status);
}

TEST(VerifyDeterminismCliTest, ExitsZeroAndPrintsTheFinalHash) {
  std::string out;
  int code = RunBiosim("--steps 3 --verify-determinism", &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("determinism: OK"), std::string::npos) << out;
  EXPECT_NE(out.find("final state hash"), std::string::npos) << out;
}

TEST(VerifyDeterminismCliTest, ThreadsFlagDoesNotChangeTheHash) {
  // The CI sweep's contract in miniature: the printed final hash must be
  // identical across worker counts. (The run *count* legitimately differs:
  // --threads 1 skips the forced extra single-thread run.)
  auto hash_of = [](const std::string& out) {
    size_t at = out.find("final state hash ");
    return at == std::string::npos ? std::string()
                                   : out.substr(at, std::string::npos);
  };
  std::string out1;
  std::string out8;
  EXPECT_EQ(RunBiosim("--steps 3 --threads 1 --verify-determinism", &out1), 0);
  EXPECT_EQ(RunBiosim("--steps 3 --threads 8 --verify-determinism", &out8), 0);
  ASSERT_NE(hash_of(out1), "") << out1;
  EXPECT_EQ(hash_of(out1), hash_of(out8)) << out1 << out8;
}

}  // namespace
}  // namespace biosim
