// The paper's benchmark A model (Section III): a 3D grid of cells that grow
// and divide for 10 iterations — here at reduced scale, checking the model's
// biological invariants.
#include <gtest/gtest.h>

#include "core/simulation.h"

namespace biosim {
namespace {

Simulation MakeDivisionSim(size_t cells_per_dim, uint64_t seed = 42) {
  Param p;
  p.random_seed = seed;
  p.max_bound = 1000.0;
  Simulation sim(p);
  // Diameter 8 with threshold 16: cells must roughly double in volume
  // before dividing.
  sim.Create3DCellGrid(cells_per_dim, 20.0, 8.0, 16.0,
                       /*growth_rate=*/120000.0);
  return sim;
}

TEST(CellDivisionBenchmarkTest, PopulationGrowsMonotonically) {
  Simulation sim = MakeDivisionSim(4);
  size_t prev = sim.rm().size();
  for (int i = 0; i < 10; ++i) {
    sim.Simulate(1);
    EXPECT_GE(sim.rm().size(), prev);
    prev = sim.rm().size();
  }
  EXPECT_GT(sim.rm().size(), 64u);  // divisions happened
}

TEST(CellDivisionBenchmarkTest, PopulationAboutDoublesPerCycle) {
  Simulation sim = MakeDivisionSim(4);
  sim.Simulate(10);
  // growth 120000*0.01 = 1200 um^3/step; volume from d=8 (268) to d=16
  // (2145) takes ~2 steps, then divide -> several doublings in 10 steps.
  EXPECT_GE(sim.rm().size(), 4u * 64u);
  EXPECT_LE(sim.rm().size(), 64u * 64u);
}

TEST(CellDivisionBenchmarkTest, AllDiametersStayInModelRange) {
  Simulation sim = MakeDivisionSim(4);
  sim.Simulate(10);
  for (double d : sim.rm().diameters()) {
    EXPECT_GT(d, 4.0);
    EXPECT_LT(d, 17.5);  // threshold + one growth step of slack
  }
}

TEST(CellDivisionBenchmarkTest, PositionsStayInBoundedSpace) {
  Simulation sim = MakeDivisionSim(4);
  sim.Simulate(10);
  const Param& p = sim.param();
  for (const auto& pos : sim.rm().positions()) {
    EXPECT_GE(pos.x, p.min_bound);
    EXPECT_LE(pos.x, p.max_bound);
    EXPECT_GE(pos.y, p.min_bound);
    EXPECT_LE(pos.y, p.max_bound);
    EXPECT_GE(pos.z, p.min_bound);
    EXPECT_LE(pos.z, p.max_bound);
  }
}

TEST(CellDivisionBenchmarkTest, UidsRemainUnique) {
  Simulation sim = MakeDivisionSim(3);
  sim.Simulate(10);
  std::set<AgentUid> uids(sim.rm().uids().begin(), sim.rm().uids().end());
  EXPECT_EQ(uids.size(), sim.rm().size());
}

TEST(CellDivisionBenchmarkTest, RunIsReproducible) {
  Simulation a = MakeDivisionSim(3, /*seed=*/9);
  Simulation b = MakeDivisionSim(3, /*seed=*/9);
  a.Simulate(8);
  b.Simulate(8);
  ASSERT_EQ(a.rm().size(), b.rm().size());
  EXPECT_EQ(a.rm().positions(), b.rm().positions());
  EXPECT_EQ(a.rm().uids(), b.rm().uids());
}

TEST(CellDivisionBenchmarkTest, DifferentSeedsDiverge) {
  Simulation a = MakeDivisionSim(3, 1);
  Simulation b = MakeDivisionSim(3, 2);
  a.Simulate(8);
  b.Simulate(8);
  // Division axes differ, so positions must differ even if counts match.
  EXPECT_NE(a.rm().positions(), b.rm().positions());
}

TEST(CellDivisionBenchmarkTest, MechanicalForcesDominateTheProfile) {
  // Fig. 3's headline: mechanics (forces + neighborhood) is the bulk of the
  // runtime once the population is dense.
  Simulation sim = MakeDivisionSim(6);
  sim.Simulate(10);
  const OpProfile& prof = sim.profile();
  double mech = prof.TotalMs("mechanical forces") +
                prof.TotalMs("neighborhood update");
  EXPECT_GT(mech / prof.GrandTotalMs(), 0.4);
}

TEST(CellDivisionBenchmarkTest, GrowthPhaseConservesVolumeAcrossDivision) {
  // Between consecutive steps, total volume increases by at most
  // growth_rate*dt per cell (division itself conserves volume).
  Param p;
  Simulation sim(p);
  sim.Create3DCellGrid(3, 20.0, 16.0, 16.0, /*growth=*/100.0);
  double before = sim.rm().TotalVolume();
  size_t n_before = sim.rm().size();
  sim.Simulate(1);
  double after = sim.rm().TotalVolume();
  double max_growth = static_cast<double>(n_before) * 100.0 *
                      sim.param().simulation_time_step;
  EXPECT_GT(sim.rm().size(), n_before);  // divisions happened (d >= 16)
  EXPECT_LE(after, before + max_growth + 1e-6);
  EXPECT_GE(after, before - 1e-6);
}

}  // namespace
}  // namespace biosim
