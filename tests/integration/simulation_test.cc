#include "core/simulation.h"

#include <gtest/gtest.h>

#include "core/behaviors/chemotaxis.h"
#include "core/behaviors/secretion.h"
#include "spatial/kd_tree.h"

namespace biosim {
namespace {

TEST(SimulationTest, DefaultWiring) {
  Param p;
  Simulation sim(p);
  EXPECT_STREQ(sim.environment().name(), "uniform-grid");
  EXPECT_STREQ(sim.mechanics_backend().name(), "cpu");
  EXPECT_EQ(sim.step(), 0u);
  EXPECT_EQ(sim.diffusion_grid(), nullptr);
}

TEST(SimulationTest, AddCellUsesParamDefaults) {
  Param p;
  p.default_adherence = 0.9;
  p.default_density = 1.7;
  Simulation sim(p);
  AgentIndex i = sim.AddCell({10, 20, 30}, 8.0);
  EXPECT_DOUBLE_EQ(sim.rm().adherences()[i], 0.9);
  EXPECT_DOUBLE_EQ(sim.rm().densities()[i], 1.7);
}

TEST(SimulationTest, Create3DCellGridCountsAndLayout) {
  Param p;
  Simulation sim(p);
  sim.Create3DCellGrid(4, 20.0, 10.0, 16.0, 1000.0);
  EXPECT_EQ(sim.rm().size(), 64u);
  // All cells have a GrowDivide behavior.
  for (size_t i = 0; i < sim.rm().size(); ++i) {
    EXPECT_EQ(sim.rm().behaviors_of(i).size(), 1u);
  }
  AABBd b = sim.rm().Bounds();
  EXPECT_DOUBLE_EQ(b.min.x, 10.0);  // (0+0.5)*20
  EXPECT_DOUBLE_EQ(b.max.x, 70.0);  // (3+0.5)*20
}

TEST(SimulationTest, CreateRandomCellsStaysInBounds) {
  Param p;
  p.min_bound = 0;
  p.max_bound = 200;
  Simulation sim(p);
  sim.CreateRandomCells(500, 10.0);
  EXPECT_EQ(sim.rm().size(), 500u);
  for (const auto& pos : sim.rm().positions()) {
    EXPECT_TRUE(sim.rm().Bounds().Contains(pos));
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LT(pos.x, 200.0);
  }
}

TEST(SimulationTest, StepAdvancesAndProfiles) {
  Param p;
  Simulation sim(p);
  sim.CreateRandomCells(100, 10.0);
  sim.Simulate(3);
  EXPECT_EQ(sim.step(), 3u);
  EXPECT_GT(sim.profile().TotalMs("mechanical forces"), 0.0);
  EXPECT_GT(sim.profile().TotalMs("neighborhood update"), 0.0);
  EXPECT_EQ(sim.profile().entries()[0].calls(), 3u);
}

TEST(SimulationTest, OverlappingCellsRelaxApart) {
  Param p;
  p.random_seed = 5;
  Simulation sim(p);
  // Two heavily overlapping cells.
  sim.AddCell({50, 50, 50}, 10.0);
  sim.AddCell({54, 50, 50}, 10.0);
  double d0 = Distance(sim.rm().positions()[0], sim.rm().positions()[1]);
  sim.Simulate(50);
  double d1 = Distance(sim.rm().positions()[0], sim.rm().positions()[1]);
  EXPECT_GT(d1, d0);
  EXPECT_LE(d1, 10.5);  // they stop separating once contact is resolved
}

TEST(SimulationTest, MaxDisplacementZeroFreezesPositions) {
  Param p;
  p.simulation_max_displacement = 0.0;  // benchmark B trick
  Simulation sim(p);
  sim.CreateRandomCells(200, 12.0);
  auto before = sim.rm().positions();
  sim.Simulate(5);
  EXPECT_EQ(sim.rm().positions(), before);
}

TEST(SimulationTest, KdTreeEnvironmentIsDropInReplacement) {
  Param p;
  Simulation sim(p);
  sim.SetEnvironment(std::make_unique<KdTreeEnvironment>());
  sim.CreateRandomCells(200, 10.0);
  sim.Simulate(2);
  EXPECT_EQ(sim.step(), 2u);
  EXPECT_STREQ(sim.environment().name(), "kd-tree");
}

TEST(SimulationTest, SerialAndParallelRunsMatchExactly) {
  auto run = [](ExecMode mode) {
    Param p;
    p.random_seed = 11;
    Simulation sim(p);
    sim.SetExecMode(mode);
    sim.Create3DCellGrid(3, 20.0, 10.0, 11.0, 4000.0);
    sim.Simulate(5);
    return sim.rm().positions();
  };
  auto serial = run(ExecMode::kSerial);
  auto parallel = run(ExecMode::kParallel);
  ASSERT_EQ(serial.size(), parallel.size());
  // Same division decisions and same grid-neighbor sets; only the
  // environment's linked-list order may differ, which reorders FP sums.
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i].x, parallel[i].x, 1e-9);
    EXPECT_NEAR(serial[i].y, parallel[i].y, 1e-9);
    EXPECT_NEAR(serial[i].z, parallel[i].z, 1e-9);
  }
}

TEST(SimulationTest, DiffusionGridIntegration) {
  Param p;
  Simulation sim(p);
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "oxygen", p.min_bound, p.max_bound, 16, 100.0, 0.0));
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "glucose", p.min_bound, p.max_bound, 16, 50.0, 0.0));
  EXPECT_NE(sim.diffusion_grid(), nullptr);
  EXPECT_EQ(sim.diffusion_grid("glucose")->substance_name(), "glucose");
  EXPECT_EQ(sim.diffusion_grid("unknown"), nullptr);

  // A secreting cell raises the local concentration over time.
  AgentIndex i = sim.AddCell({500, 500, 500}, 10.0);
  sim.rm().AttachBehavior(i, std::make_unique<Secretion>(10.0));
  sim.Simulate(10);
  EXPECT_GT(sim.diffusion_grid("oxygen")->TotalAmount(), 0.0);
  EXPECT_GT(sim.profile().TotalMs("diffusion"), 0.0);
}

TEST(SimulationTest, RepeatedRandomFillsDoNotStackCells) {
  // Regression: CreateRandomCells re-seeded its RNG from param.random_seed
  // on every call, so a second fill replayed the first call's positions and
  // stacked each new cell exactly onto an existing one (explosive overlap
  // forces). Each call must draw from a fresh seed-derived stream.
  Param p;
  p.min_bound = 0;
  p.max_bound = 100;
  Simulation sim(p);
  sim.CreateRandomCells(50, 8.0);
  sim.CreateRandomCells(50, 8.0);
  const auto& pos = sim.rm().positions();
  ASSERT_EQ(pos.size(), 100u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_GT(SquaredDistance(pos[i], pos[50 + i]), 0.0)
        << "cell " << 50 + i << " stacked onto cell " << i;
  }
  // Call 0 keeps the historical stream: a one-call sim is unchanged.
  Simulation fresh(p);
  fresh.CreateRandomCells(50, 8.0);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(fresh.rm().positions()[i], pos[i]);
  }
}

TEST(SimulationTest, NamedSecretionRoutesToItsOwnGrid) {
  // Regression: the deposit-merge loop applied every buffered deposit to
  // the *first* grid, so multi-substance models silently cross-fed. Each
  // deposit now carries its target grid through the sink.
  Param p;
  Simulation sim(p);
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "oxygen", p.min_bound, p.max_bound, 16, 0.0, 0.0));
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "glucose", p.min_bound, p.max_bound, 16, 0.0, 0.0));
  AgentIndex i = sim.AddCell({500, 500, 500}, 10.0);
  sim.rm().AttachBehavior(i, std::make_unique<Secretion>("glucose", 10.0));
  AgentIndex j = sim.AddCell({200, 200, 200}, 10.0);
  sim.rm().AttachBehavior(j, std::make_unique<Secretion>(4.0));  // default
  sim.Simulate(5);
  // The named secretion landed only in glucose; the default-grid secretion
  // landed only in oxygen.
  EXPECT_GT(sim.diffusion_grid("glucose")->GetConcentration({500, 500, 500}),
            0.0);
  EXPECT_DOUBLE_EQ(
      sim.diffusion_grid("oxygen")->GetConcentration({500, 500, 500}), 0.0);
  EXPECT_GT(sim.diffusion_grid("oxygen")->GetConcentration({200, 200, 200}),
            0.0);
  EXPECT_DOUBLE_EQ(
      sim.diffusion_grid("glucose")->GetConcentration({200, 200, 200}), 0.0);
  // An unknown substance name is a silent no-op, not a crash.
  sim.rm().AttachBehavior(j, std::make_unique<Secretion>("unknown", 1.0));
  EXPECT_NO_THROW(sim.Simulate(1));
}

TEST(SimulationTest, OverlapOpsRunsTheSamePipeline) {
  // Smoke-level: with the overlap knob on, a diffusing + secreting + moving
  // scenario produces the identical final state hash as the serial
  // schedule. (The determinism suite sweeps threads; this pins the flag's
  // wiring through Param.)
  auto run = [](bool overlap) {
    Param p;
    p.random_seed = 7;
    p.overlap_ops = overlap;
    p.max_bound = 120.0;
    Simulation sim(p);
    sim.Create3DCellGrid(3, 20.0, 8.0, 16.0, 120000.0);
    sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
        "oxygen", 0.0, 120.0, 12, 80.0, 0.01));
    for (AgentIndex i = 0; i < sim.rm().size(); ++i) {
      sim.rm().AttachBehavior(i, std::make_unique<Secretion>(0.5));
    }
    sim.Simulate(8);
    return sim.StateHash();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SimulationTest, ChemotaxisPullsCellUpGradient) {
  Param p;
  p.default_adherence = 0.0;
  Simulation sim(p);
  auto grid = std::make_unique<DiffusionGrid>("attractant", 0.0, 1000.0, 20,
                                              0.0, 0.0);
  grid->Initialize([](const Double3& pos) { return pos.x; });  // ramp in +x
  sim.AddDiffusionGrid(std::move(grid));
  AgentIndex i = sim.AddCell({500, 500, 500}, 10.0);
  sim.rm().AttachBehavior(i, std::make_unique<Chemotaxis>(50.0));
  double x0 = sim.rm().positions()[i].x;
  sim.Simulate(20);
  EXPECT_GT(sim.rm().positions()[i].x, x0 + 1.0);
}

}  // namespace
}  // namespace biosim
