#include "core/simulation.h"

#include <gtest/gtest.h>

#include "core/behaviors/chemotaxis.h"
#include "core/behaviors/secretion.h"
#include "spatial/kd_tree.h"

namespace biosim {
namespace {

TEST(SimulationTest, DefaultWiring) {
  Param p;
  Simulation sim(p);
  EXPECT_STREQ(sim.environment().name(), "uniform-grid");
  EXPECT_STREQ(sim.mechanics_backend().name(), "cpu");
  EXPECT_EQ(sim.step(), 0u);
  EXPECT_EQ(sim.diffusion_grid(), nullptr);
}

TEST(SimulationTest, AddCellUsesParamDefaults) {
  Param p;
  p.default_adherence = 0.9;
  p.default_density = 1.7;
  Simulation sim(p);
  AgentIndex i = sim.AddCell({10, 20, 30}, 8.0);
  EXPECT_DOUBLE_EQ(sim.rm().adherences()[i], 0.9);
  EXPECT_DOUBLE_EQ(sim.rm().densities()[i], 1.7);
}

TEST(SimulationTest, Create3DCellGridCountsAndLayout) {
  Param p;
  Simulation sim(p);
  sim.Create3DCellGrid(4, 20.0, 10.0, 16.0, 1000.0);
  EXPECT_EQ(sim.rm().size(), 64u);
  // All cells have a GrowDivide behavior.
  for (size_t i = 0; i < sim.rm().size(); ++i) {
    EXPECT_EQ(sim.rm().behaviors_of(i).size(), 1u);
  }
  AABBd b = sim.rm().Bounds();
  EXPECT_DOUBLE_EQ(b.min.x, 10.0);  // (0+0.5)*20
  EXPECT_DOUBLE_EQ(b.max.x, 70.0);  // (3+0.5)*20
}

TEST(SimulationTest, CreateRandomCellsStaysInBounds) {
  Param p;
  p.min_bound = 0;
  p.max_bound = 200;
  Simulation sim(p);
  sim.CreateRandomCells(500, 10.0);
  EXPECT_EQ(sim.rm().size(), 500u);
  for (const auto& pos : sim.rm().positions()) {
    EXPECT_TRUE(sim.rm().Bounds().Contains(pos));
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LT(pos.x, 200.0);
  }
}

TEST(SimulationTest, StepAdvancesAndProfiles) {
  Param p;
  Simulation sim(p);
  sim.CreateRandomCells(100, 10.0);
  sim.Simulate(3);
  EXPECT_EQ(sim.step(), 3u);
  EXPECT_GT(sim.profile().TotalMs("mechanical forces"), 0.0);
  EXPECT_GT(sim.profile().TotalMs("neighborhood update"), 0.0);
  EXPECT_EQ(sim.profile().entries()[0].calls(), 3u);
}

TEST(SimulationTest, OverlappingCellsRelaxApart) {
  Param p;
  p.random_seed = 5;
  Simulation sim(p);
  // Two heavily overlapping cells.
  sim.AddCell({50, 50, 50}, 10.0);
  sim.AddCell({54, 50, 50}, 10.0);
  double d0 = Distance(sim.rm().positions()[0], sim.rm().positions()[1]);
  sim.Simulate(50);
  double d1 = Distance(sim.rm().positions()[0], sim.rm().positions()[1]);
  EXPECT_GT(d1, d0);
  EXPECT_LE(d1, 10.5);  // they stop separating once contact is resolved
}

TEST(SimulationTest, MaxDisplacementZeroFreezesPositions) {
  Param p;
  p.simulation_max_displacement = 0.0;  // benchmark B trick
  Simulation sim(p);
  sim.CreateRandomCells(200, 12.0);
  auto before = sim.rm().positions();
  sim.Simulate(5);
  EXPECT_EQ(sim.rm().positions(), before);
}

TEST(SimulationTest, KdTreeEnvironmentIsDropInReplacement) {
  Param p;
  Simulation sim(p);
  sim.SetEnvironment(std::make_unique<KdTreeEnvironment>());
  sim.CreateRandomCells(200, 10.0);
  sim.Simulate(2);
  EXPECT_EQ(sim.step(), 2u);
  EXPECT_STREQ(sim.environment().name(), "kd-tree");
}

TEST(SimulationTest, SerialAndParallelRunsMatchExactly) {
  auto run = [](ExecMode mode) {
    Param p;
    p.random_seed = 11;
    Simulation sim(p);
    sim.SetExecMode(mode);
    sim.Create3DCellGrid(3, 20.0, 10.0, 11.0, 4000.0);
    sim.Simulate(5);
    return sim.rm().positions();
  };
  auto serial = run(ExecMode::kSerial);
  auto parallel = run(ExecMode::kParallel);
  ASSERT_EQ(serial.size(), parallel.size());
  // Same division decisions and same grid-neighbor sets; only the
  // environment's linked-list order may differ, which reorders FP sums.
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i].x, parallel[i].x, 1e-9);
    EXPECT_NEAR(serial[i].y, parallel[i].y, 1e-9);
    EXPECT_NEAR(serial[i].z, parallel[i].z, 1e-9);
  }
}

TEST(SimulationTest, DiffusionGridIntegration) {
  Param p;
  Simulation sim(p);
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "oxygen", p.min_bound, p.max_bound, 16, 100.0, 0.0));
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "glucose", p.min_bound, p.max_bound, 16, 50.0, 0.0));
  EXPECT_NE(sim.diffusion_grid(), nullptr);
  EXPECT_EQ(sim.diffusion_grid("glucose")->substance_name(), "glucose");
  EXPECT_EQ(sim.diffusion_grid("unknown"), nullptr);

  // A secreting cell raises the local concentration over time.
  AgentIndex i = sim.AddCell({500, 500, 500}, 10.0);
  sim.rm().AttachBehavior(i, std::make_unique<Secretion>(10.0));
  sim.Simulate(10);
  EXPECT_GT(sim.diffusion_grid("oxygen")->TotalAmount(), 0.0);
  EXPECT_GT(sim.profile().TotalMs("diffusion"), 0.0);
}

TEST(SimulationTest, ChemotaxisPullsCellUpGradient) {
  Param p;
  p.default_adherence = 0.0;
  Simulation sim(p);
  auto grid = std::make_unique<DiffusionGrid>("attractant", 0.0, 1000.0, 20,
                                              0.0, 0.0);
  grid->Initialize([](const Double3& pos) { return pos.x; });  // ramp in +x
  sim.AddDiffusionGrid(std::move(grid));
  AgentIndex i = sim.AddCell({500, 500, 500}, 10.0);
  sim.rm().AttachBehavior(i, std::make_unique<Chemotaxis>(50.0));
  double x0 = sim.rm().positions()[i].x;
  sim.Simulate(20);
  EXPECT_GT(sim.rm().positions()[i].x, x0 + 1.0);
}

}  // namespace
}  // namespace biosim
