// End-to-end: a Simulation whose mechanics backend is the GPU offload —
// the deployment mode the paper proposes (host engine + GPU co-processing).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/simulation.h"
#include "gpu/gpu_mechanical_op.h"
#include "spatial/null_environment.h"

namespace biosim {
namespace {

Simulation MakeGpuSim(int version, uint64_t seed = 42) {
  Param p;
  p.random_seed = seed;
  Simulation sim(p);
  sim.SetEnvironment(std::make_unique<NullEnvironment>());
  sim.SetMechanicsBackend(std::make_unique<gpu::GpuMechanicalOp>(
      gpu::GpuMechanicsOptions::Version(version)));
  return sim;
}

TEST(GpuPipelineTest, FullDivisionModelRunsOnGpuBackend) {
  Simulation sim = MakeGpuSim(2);
  sim.Create3DCellGrid(4, 20.0, 8.0, 16.0, 120000.0);
  sim.Simulate(10);
  EXPECT_GT(sim.rm().size(), 64u);
  // GPU sub-operations appear in the profile.
  EXPECT_GT(sim.profile().TotalMs("gpu kernels (sim)"), 0.0);
  EXPECT_GT(sim.profile().TotalMs("gpu h2d (sim)"), 0.0);
  EXPECT_GT(sim.profile().TotalMs("gpu z-order sort (sim)"), 0.0);
}

TEST(GpuPipelineTest, GpuAndCpuBackendsProduceTheSameBiology) {
  // Same model on both backends. Growth and division decisions depend only
  // on per-uid volumes (deterministic), so the *biology* — population size,
  // uid set, per-uid volume — must match exactly. Positions are chaotic
  // (post-division contacts amplify FP32 noise), so they are compared only
  // in aggregate.
  Param p;
  p.random_seed = 7;
  Simulation cpu(p);
  cpu.Create3DCellGrid(3, 20.0, 8.0, 16.0, 120000.0);
  cpu.Simulate(5);

  Simulation gpu_sim = MakeGpuSim(2, 7);
  gpu_sim.Create3DCellGrid(3, 20.0, 8.0, 16.0, 120000.0);
  gpu_sim.Simulate(5);

  // The GPU pipeline's Z-order sort permutes rows before divisions commit,
  // so cells end up with different uid labels (and hence different division
  // RNG draws) — individual identities cannot be matched one-to-one. The
  // population-level biology must still agree: the same cells divide on the
  // same steps, so counts match exactly and total volume matches up to the
  // +/-10% division-ratio noise.
  ASSERT_EQ(cpu.rm().size(), gpu_sim.rm().size());
  EXPECT_NEAR(cpu.rm().TotalVolume(), gpu_sim.rm().TotalVolume(),
              0.02 * cpu.rm().TotalVolume());
  // Diameters stay inside the model's envelope on both backends.
  for (double d : gpu_sim.rm().diameters()) {
    ASSERT_GT(d, 4.0);
    ASSERT_LT(d, 17.5);
  }
}

TEST(GpuPipelineTest, SimulatedClockAdvancesWithSteps) {
  Simulation sim = MakeGpuSim(1);
  sim.CreateRandomCells(1000, 10.0);
  auto* op =
      dynamic_cast<gpu::GpuMechanicalOp*>(&sim.mechanics_backend());
  ASSERT_NE(op, nullptr);
  sim.Simulate(1);
  double after_one = op->SimulatedMs();
  EXPECT_GT(after_one, 0.0);
  sim.Simulate(1);
  EXPECT_GT(op->SimulatedMs(), after_one);
}

TEST(GpuPipelineTest, DiffusionRunsOnHostAlongsideGpuMechanics) {
  // The paper's Section II argument: co-processing keeps CPU capacity free
  // for substance diffusion. Both must advance in one pipeline.
  Simulation sim = MakeGpuSim(2);
  sim.AddDiffusionGrid(std::make_unique<DiffusionGrid>(
      "oxygen", 0.0, 1000.0, 16, 100.0, 0.0));
  sim.diffusion_grid()->IncreaseConcentrationBy({500, 500, 500}, 100.0);
  sim.CreateRandomCells(500, 10.0);
  double peak0 = sim.diffusion_grid()->MaxConcentration();
  sim.Simulate(5);
  EXPECT_LT(sim.diffusion_grid()->MaxConcentration(), peak0);  // diffused
  EXPECT_GT(sim.profile().TotalMs("gpu kernels (sim)"), 0.0);
}

TEST(GpuPipelineTest, GrowingPopulationReallocatesDeviceBuffers) {
  // Start small, grow past the initial capacity: the offload must resize
  // its device buffers without losing correctness.
  Simulation sim = MakeGpuSim(1);
  sim.Create3DCellGrid(2, 20.0, 8.0, 16.0, 240000.0);  // divide every 2 steps
  for (int i = 0; i < 8; ++i) {
    sim.Simulate(1);
  }
  // 8 cells through ~4 division cycles: well past the initial capacity of 8.
  EXPECT_GE(sim.rm().size(), 64u);
}

}  // namespace
}  // namespace biosim
