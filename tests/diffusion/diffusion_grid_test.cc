#include "diffusion/diffusion_grid.h"

#include <gtest/gtest.h>

#include <cmath>

namespace biosim {
namespace {

TEST(DiffusionGridTest, ConstructionValidation) {
  EXPECT_THROW(DiffusionGrid("x", 0, 100, 1, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(DiffusionGrid("x", 100, 0, 8, 1.0, 0.0), std::invalid_argument);
  DiffusionGrid g("oxygen", 0, 100, 8, 1.0, 0.0);
  EXPECT_EQ(g.substance_name(), "oxygen");
  EXPECT_EQ(g.resolution(), 8u);
  EXPECT_DOUBLE_EQ(g.voxel_length(), 12.5);
  EXPECT_EQ(g.num_voxels(), 512u);
}

TEST(DiffusionGridTest, ClosedBoundaryConservesMass) {
  DiffusionGrid g("s", 0, 100, 10, 50.0, /*decay=*/0.0,
                  BoundaryCondition::kClosed);
  g.IncreaseConcentrationBy({50, 50, 50}, 1000.0);
  double before = g.TotalAmount();
  for (int i = 0; i < 50; ++i) {
    g.Step(0.05);
  }
  EXPECT_NEAR(g.TotalAmount(), before, 1e-6 * before);
}

TEST(DiffusionGridTest, DirichletBoundaryLeaks) {
  DiffusionGrid g("s", 0, 100, 10, 50.0, 0.0, BoundaryCondition::kDirichlet);
  g.IncreaseConcentrationBy({50, 50, 50}, 1000.0);
  double before = g.TotalAmount();
  // Lowest diffusion mode decays with tau = (L/pi)^2 / D ~ 20 h; run 20 h.
  for (int i = 0; i < 400; ++i) {
    g.Step(0.05);
  }
  EXPECT_LT(g.TotalAmount(), 0.5 * before);
}

TEST(DiffusionGridTest, DiffusionSpreadsAndFlattens) {
  DiffusionGrid g("s", 0, 100, 10, 50.0, 0.0);
  g.IncreaseConcentrationBy({55, 55, 55}, 1000.0);
  double peak0 = g.MaxConcentration();
  for (int i = 0; i < 100; ++i) {
    g.Step(0.05);
  }
  EXPECT_LT(g.MaxConcentration(), 0.2 * peak0);
  // In the long-time closed-box limit the field is uniform.
  for (int i = 0; i < 2000; ++i) {
    g.Step(0.05);
  }
  double uniform = g.TotalAmount() / static_cast<double>(g.num_voxels());
  EXPECT_NEAR(g.MaxConcentration(), uniform, 0.02 * uniform);
}

TEST(DiffusionGridTest, DecayIsExponential) {
  double mu = 2.0;
  DiffusionGrid g("s", 0, 100, 6, /*D=*/0.0, mu);
  g.Initialize([](const Double3&) { return 100.0; });
  double t = 0.5;
  // Step in small increments so the forward-Euler decay error stays small.
  for (int i = 0; i < 500; ++i) {
    g.Step(t / 500);
  }
  EXPECT_NEAR(g.MaxConcentration(), 100.0 * std::exp(-mu * t),
              0.01 * 100.0 * std::exp(-mu * t));
}

TEST(DiffusionGridTest, StepSubdividesUnstableTimesteps) {
  // dt far above the stability limit must still produce a bounded,
  // non-negative field (the solver sub-steps internally).
  DiffusionGrid g("s", 0, 10, 8, 100.0, 0.0);
  g.IncreaseConcentrationBy({5, 5, 5}, 100.0);
  EXPECT_LT(g.MaxStableTimestep(), 0.01);
  g.Step(1.0);
  EXPECT_GE(g.MaxConcentration(), 0.0);
  EXPECT_LT(g.MaxConcentration(), 100.1);
  EXPECT_FALSE(std::isnan(g.TotalAmount()));
}

TEST(DiffusionGridTest, GradientPointsUphill) {
  DiffusionGrid g("s", 0, 100, 10, 1.0, 0.0);
  // Linear ramp in x: c = x.
  g.Initialize([](const Double3& p) { return p.x; });
  Double3 grad = g.GetGradient({50, 50, 50});
  EXPECT_NEAR(grad.x, 1.0, 1e-9);
  EXPECT_NEAR(grad.y, 0.0, 1e-9);
  EXPECT_NEAR(grad.z, 0.0, 1e-9);
}

TEST(DiffusionGridTest, GradientAtFacesUsesOneSidedDifference) {
  DiffusionGrid g("s", 0, 100, 10, 1.0, 0.0);
  g.Initialize([](const Double3& p) { return 2.0 * p.x; });
  Double3 at_min = g.GetGradient({1, 50, 50});
  Double3 at_max = g.GetGradient({99, 50, 50});
  EXPECT_NEAR(at_min.x, 2.0, 1e-9);
  EXPECT_NEAR(at_max.x, 2.0, 1e-9);
}

TEST(DiffusionGridTest, QueriesOutsideDomainAreSafe) {
  DiffusionGrid g("s", 0, 100, 8, 1.0, 0.0);
  g.Initialize([](const Double3&) { return 5.0; });
  EXPECT_DOUBLE_EQ(g.GetConcentration({-1, 50, 50}), 0.0);
  EXPECT_DOUBLE_EQ(g.GetConcentration({50, 101, 50}), 0.0);
  EXPECT_EQ(g.GetGradient({200, 200, 200}), (Double3{0, 0, 0}));
  g.IncreaseConcentrationBy({-5, 0, 0}, 100.0);  // silently dropped
  EXPECT_NEAR(g.TotalAmount(), 5.0 * 512, 1e-9);
}

TEST(DiffusionGridTest, DepositOnMaxFaceLandsInLastVoxel) {
  // Regression: the voxel lookup used `pos >= max` as out-of-domain, so a
  // deposit exactly on the max face — a legal agent position, and exactly
  // where a clamped torus image can land — was silently discarded. The face
  // belongs to the last voxel (the same clamp GetConcentration applies).
  DiffusionGrid g("s", 0, 80, 8, 1.0, 0.0);
  g.IncreaseConcentrationBy({80, 80, 80}, 4.0);
  EXPECT_DOUBLE_EQ(g.GetConcentration({79, 79, 79}), 4.0);
  EXPECT_EQ(g.dropped_deposits(), 0u);
  EXPECT_NEAR(g.TotalAmount(), 4.0, 1e-12);
  // Mixed-face corner: one coordinate interior, two on the face.
  g.IncreaseConcentrationBy({35, 80, 0}, 1.0);
  EXPECT_DOUBLE_EQ(g.GetConcentration({35, 79, 0}), 1.0);
}

TEST(DiffusionGridTest, OutOfDomainDepositsAreCountedNotSilent) {
  DiffusionGrid g("s", 0, 80, 8, 1.0, 0.0);
  EXPECT_EQ(g.dropped_deposits(), 0u);
  g.IncreaseConcentrationBy({-1, 40, 40}, 2.0);
  g.IncreaseConcentrationBy({40, 80.001, 40}, 2.0);
  EXPECT_EQ(g.dropped_deposits(), 2u);
  EXPECT_DOUBLE_EQ(g.TotalAmount(), 0.0);  // nothing landed
}

TEST(DiffusionGridTest, SecretionAccumulatesInVoxel) {
  DiffusionGrid g("s", 0, 80, 8, 1.0, 0.0);
  g.IncreaseConcentrationBy({35, 35, 35}, 2.0);
  g.IncreaseConcentrationBy({35, 35, 35}, 3.0);
  EXPECT_DOUBLE_EQ(g.GetConcentration({35, 35, 35}), 5.0);
}

TEST(DiffusionGridTest, SerialAndParallelStepsAgree) {
  DiffusionGrid a("s", 0, 100, 12, 30.0, 0.5);
  DiffusionGrid b("s", 0, 100, 12, 30.0, 0.5);
  auto init = [](const Double3& p) { return p.x * 0.1 + p.y * 0.05; };
  a.Initialize(init);
  b.Initialize(init);
  for (int i = 0; i < 20; ++i) {
    a.Step(0.02, ExecMode::kSerial);
    b.Step(0.02, ExecMode::kParallel);
  }
  for (size_t i = 0; i < a.num_voxels(); ++i) {
    ASSERT_EQ(a.raw()[i], b.raw()[i]);
  }
}

TEST(DiffusionGridTest, PointSourceApproachesGaussianProfile) {
  // Compare the solver against the analytic infinite-domain Green's
  // function at short times (boundaries far away).
  double d_coef = 20.0;
  DiffusionGrid g("s", 0, 200, 40, d_coef, 0.0);
  double q = 1000.0;
  g.IncreaseConcentrationBy({100, 100, 100}, q);
  // Run long enough that the Gaussian width (sigma = sqrt(2 D t) = 10)
  // spans two voxels; below that the lattice cannot resolve the profile.
  double t = 2.5;
  int steps = 250;
  for (int i = 0; i < steps; ++i) {
    g.Step(t / steps);
  }
  double h = g.voxel_length();
  double voxel_vol = h * h * h;
  // The deposited "concentration" q in one voxel is mass q*voxel_vol.
  auto analytic = [&](double r2) {
    return q * voxel_vol / std::pow(4.0 * math::kPi * d_coef * t, 1.5) *
           std::exp(-r2 / (4.0 * d_coef * t));
  };
  // Check the profile at radial sample points spanning 1-3 sigma. The
  // lattice Green's function has a slightly heavier tail than the continuum
  // Gaussian, so the tolerance widens with radius.
  for (double r : {10.0, 20.0, 30.0}) {
    double measured = g.GetConcentration({100 + r, 100, 100});
    double expected = analytic(r * r);
    EXPECT_NEAR(measured, expected, (0.1 + 0.01 * r) * expected + 1e-3)
        << "at r=" << r;
  }
}

}  // namespace
}  // namespace biosim
