// Cell division (the paper's Fig. 2 scenario and benchmark A model).
//
// A 3D lattice of cells with a grow-and-divide behavior proliferates for a
// number of steps while mechanical interactions push the growing tissue
// apart. Prints population and extent over time plus the final operation
// profile — at scale, this is the workload whose profile (paper Fig. 3)
// motivates the GPU offload.
//
//   ./build/examples/cell_division [cells_per_dim] [steps]
#include <cstdio>
#include <cstdlib>

#include "core/simulation.h"

int main(int argc, char** argv) {
  using namespace biosim;

  size_t cells_per_dim = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 8;
  uint64_t steps = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 20;

  Param param;
  param.max_bound = static_cast<double>(cells_per_dim) * 20.0 + 200.0;
  Simulation sim(param);

  // Lattice of 8 µm cells, 20 µm apart; grow to 16 µm, then divide (the
  // colors in the paper's Fig. 2 are exactly this diameter progression).
  sim.Create3DCellGrid(cells_per_dim, 20.0, 8.0, 16.0,
                       /*growth_rate=*/40000.0);

  std::printf("step  cells    mean_diameter  extent_um\n");
  for (uint64_t s = 0; s < steps; ++s) {
    sim.Simulate(1);
    if ((s + 1) % 5 == 0 || s == 0) {
      double mean_d = 0.0;
      for (double d : sim.rm().diameters()) {
        mean_d += d;
      }
      mean_d /= static_cast<double>(sim.rm().size());
      std::printf("%4zu  %7zu %10.2f %12.1f\n", static_cast<size_t>(s + 1),
                  sim.rm().size(), mean_d, sim.rm().Bounds().Size().x);
    }
  }

  std::printf("\noperation profile (cf. paper Fig. 3):\n%s",
              sim.profile().ToString().c_str());
  return 0;
}
