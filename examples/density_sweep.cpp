// Density sweep: explore how neighborhood density drives the cost of the
// mechanical-interaction operation (the knob behind the paper's benchmark B,
// Figs. 10-12).
//
// Spawns random frozen populations at a range of densities and reports, for
// each: the realized mean neighbor count, the CPU cost of one mechanics
// step for both environments, and the simulated GPU cost.
//
//   ./build/examples/density_sweep [agents]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/simulation.h"
#include "core/timer.h"
#include "gpu/gpu_mechanical_op.h"
#include "spatial/kd_tree.h"
#include "spatial/null_environment.h"
#include "spatial/uniform_grid.h"

namespace {

double SpaceForDensity(size_t agents, double radius, double n) {
  double sphere = 4.0 / 3.0 * biosim::math::kPi * radius * radius * radius;
  return std::cbrt(static_cast<double>(agents) * sphere / n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace biosim;
  size_t agents = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20000;

  std::printf(
      "%8s %8s | %12s %12s %12s\n", "n(tgt)", "n(meas)", "kdtree_ms",
      "unigrid_ms", "gpu_ms(sim)");

  for (double n : {2.0, 6.0, 13.0, 27.0, 47.0, 80.0}) {
    Param param;
    param.simulation_max_displacement = 0.0;  // freeze: density stays put
    param.max_bound = SpaceForDensity(agents, 10.0, n);

    // Measure one mechanics step on each CPU environment.
    double kd_ms = 0.0, ug_ms = 0.0, measured_n = 0.0;
    for (bool kdtree : {true, false}) {
      Simulation sim(param);
      if (kdtree) {
        sim.SetEnvironment(std::make_unique<KdTreeEnvironment>());
      }
      sim.SetExecMode(ExecMode::kSerial);
      sim.CreateRandomCells(agents, 10.0);
      Timer t;
      sim.Simulate(3);
      double ms = (sim.profile().TotalMs("neighborhood update") +
                   sim.profile().TotalMs("mechanical forces")) /
                  3.0;
      if (kdtree) {
        kd_ms = ms;
      } else {
        ug_ms = ms;
        UniformGridEnvironment probe;
        probe.Update(sim.rm(), sim.param(), ExecMode::kSerial);
        measured_n = probe.MeanNeighborCount(
            sim.rm(), std::max<size_t>(1, agents / 2000));
      }
    }

    // Simulated GPU (version 2 on the V100).
    double gpu_ms;
    {
      Simulation sim(param);
      sim.SetEnvironment(std::make_unique<NullEnvironment>());
      gpu::GpuMechanicsOptions opts =
          gpu::GpuMechanicsOptions::Version(2, gpusim::DeviceSpec::TeslaV100());
      opts.meter_stride = 4;
      opts.fixed_box_length = 10.0;
      auto op = std::make_unique<gpu::GpuMechanicalOp>(opts);
      gpu::GpuMechanicalOp* op_ptr = op.get();
      sim.SetMechanicsBackend(std::move(op));
      sim.CreateRandomCells(agents, 10.0);
      sim.Simulate(3);
      gpu_ms = op_ptr->SimulatedMs() / 3.0;
    }

    std::printf("%8.0f %8.1f | %12.2f %12.2f %12.3f\n", n, measured_n, kd_ms,
                ug_ms, gpu_ms);
  }

  std::printf(
      "\nBoth CPU environments scale with density; the uniform grid stays\n"
      "ahead of the kd-tree, and the simulated GPU stays 1-2 orders below\n"
      "both (cf. paper Figs. 10-11).\n");
  return 0;
}
