// Quickstart: the smallest complete biosim model.
//
// Creates a handful of overlapping cells, lets the mechanical interactions
// relax them apart, and prints the population before and after — the
// "hello world" of the engine. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/random.h"
#include "core/simulation.h"

int main() {
  using namespace biosim;

  // 1. Configure the simulation space and physics (µm / hours).
  Param param;
  param.min_bound = 0.0;
  param.max_bound = 200.0;
  param.simulation_time_step = 0.01;

  Simulation sim(param);

  // 2. Populate: a small clump of overlapping cells around the center.
  Random rng(1);
  for (int i = 0; i < 64; ++i) {
    Double3 pos = Double3{100, 100, 100} + rng.UnitVector() * rng.Uniform(0, 12);
    sim.AddCell(pos, /*diameter=*/10.0);
  }

  auto describe = [&](const char* when) {
    AABBd bounds = sim.rm().Bounds();
    std::printf("%-7s %zu cells, bounding box %.1f x %.1f x %.1f um\n", when,
                sim.rm().size(), bounds.Size().x, bounds.Size().y,
                bounds.Size().z);
  };
  describe("before:");

  // 3. Simulate: each step rebuilds the neighborhood index (uniform grid by
  //    default), computes the Eq.-1 collision forces and applies the
  //    displacements.
  sim.Simulate(200);

  describe("after:");
  std::printf("\noperation profile:\n%s", sim.profile().ToString().c_str());
  return 0;
}
