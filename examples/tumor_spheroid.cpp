// Tumor spheroid with nutrient limitation — a domain model that exercises
// the whole engine: mechanics + growth/division + extracellular diffusion +
// chemotaxis, the combination the paper's related-work section argues for
// (mechanics offloadable to GPU while diffusion stays on the host CPU).
//
// A small clump of tumor cells consumes oxygen from a diffusing field and
// only proliferates where enough oxygen remains, producing the classic
// rim-proliferation pattern; cells also creep up the oxygen gradient.
//
//   ./build/examples/tumor_spheroid [steps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/behaviors/chemotaxis.h"
#include "core/random.h"
#include "core/simulation.h"

namespace {

using namespace biosim;

/// Grow and divide only where the local oxygen exceeds a threshold; consume
/// oxygen while alive.
class OxygenLimitedGrowth : public Behavior {
 public:
  OxygenLimitedGrowth(double threshold_diameter, double growth_rate,
                      double oxygen_threshold, double uptake_rate)
      : threshold_diameter_(threshold_diameter),
        growth_rate_(growth_rate),
        oxygen_threshold_(oxygen_threshold),
        uptake_rate_(uptake_rate) {}

  void Run(Cell& cell, SimContext& ctx) override {
    DiffusionGrid* oxygen = ctx.diffusion_grid;
    if (oxygen == nullptr) {
      return;
    }
    double dt = ctx.param().simulation_time_step;
    // Deferred deposit: applied after the behaviors pass in agent order
    // (direct IncreaseConcentrationBy is not safe from parallel behaviors).
    // All agents therefore decide against the same pre-uptake field.
    ctx.DepositSubstance(cell.position(), -uptake_rate_ * dt);
    if (oxygen->GetConcentration(cell.position()) < oxygen_threshold_) {
      return;  // quiescent in the hypoxic core
    }
    if (cell.diameter() >= threshold_diameter_) {
      cell.Divide(ctx);
    } else {
      cell.ChangeVolume(growth_rate_ * dt);
    }
  }

  std::unique_ptr<Behavior> Clone() const override {
    return std::make_unique<OxygenLimitedGrowth>(*this);
  }
  const char* name() const override { return "OxygenLimitedGrowth"; }

 private:
  double threshold_diameter_;
  double growth_rate_;
  double oxygen_threshold_;
  double uptake_rate_;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t steps = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 150;

  Param param;
  param.min_bound = 0.0;
  param.max_bound = 400.0;
  Simulation sim(param);

  // Oxygen field: high everywhere initially, replenished only by diffusion
  // from the (closed) domain bulk.
  auto oxygen = std::make_unique<DiffusionGrid>("oxygen", 0.0, 400.0,
                                                /*resolution=*/20,
                                                /*D=*/2000.0, /*decay=*/0.0);
  oxygen->Initialize([](const Double3&) { return 30.0; });
  sim.AddDiffusionGrid(std::move(oxygen));

  // Seed spheroid.
  Random rng(7);
  for (int i = 0; i < 30; ++i) {
    Double3 pos = Double3{200, 200, 200} + rng.UnitVector() * rng.Uniform(0, 15);
    AgentIndex idx = sim.AddCell(pos, 9.0);
    sim.rm().AttachBehavior(
        idx, std::make_unique<OxygenLimitedGrowth>(
                 /*threshold_diameter=*/14.0, /*growth=*/30000.0,
                 /*oxygen_threshold=*/10.0, /*uptake=*/120.0));
    sim.rm().AttachBehavior(idx, std::make_unique<Chemotaxis>(/*speed=*/1.0));
  }

  std::printf("step  cells   o2_center  o2_rim   spheroid_radius\n");
  for (uint64_t s = 0; s < steps; ++s) {
    sim.Simulate(1);
    if ((s + 1) % 25 == 0) {
      DiffusionGrid* o2 = sim.diffusion_grid();
      AABBd b = sim.rm().Bounds();
      double radius = (b.Size().x + b.Size().y + b.Size().z) / 6.0;
      std::printf("%4zu  %5zu %10.2f %8.2f %12.1f\n",
                  static_cast<size_t>(s + 1), sim.rm().size(),
                  o2->GetConcentration({200, 200, 200}),
                  o2->GetConcentration({200 + radius + 10, 200, 200}), radius);
    }
  }

  std::printf(
      "\nThe hypoxic core (low o2_center) stops dividing while the rim keeps\n"
      "proliferating -- the expected spheroid growth pattern.\n");
  std::printf("\noperation profile:\n%s", sim.profile().ToString().c_str());
  return 0;
}
