// GPU offload: the paper's deployment mode, end to end.
//
// Runs the same proliferating-tissue model twice — once on the CPU backend
// and once with the mechanical interactions offloaded to the (simulated)
// GPU, stepping through the paper's kernel generations — and reports the
// per-version simulated device time plus the nvprof-style kernel profile.
//
//   ./build/examples/gpu_offload [cells_per_dim] [steps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/simulation.h"
#include "core/timer.h"
#include "gpu/gpu_mechanical_op.h"
#include "gpusim/profiler.h"
#include "spatial/null_environment.h"

int main(int argc, char** argv) {
  using namespace biosim;

  size_t cells_per_dim = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 16;
  uint64_t steps = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 10;

  auto make_sim = [&]() {
    Param param;
    param.max_bound = static_cast<double>(cells_per_dim) * 15.0 + 200.0;
    auto sim = std::make_unique<Simulation>(param);
    sim->Create3DCellGrid(cells_per_dim, 15.0, 8.0, 16.0, 40000.0);
    return sim;
  };

  // --- CPU reference ------------------------------------------------------
  {
    auto sim = make_sim();
    Timer t;
    sim->Simulate(steps);
    std::printf("CPU backend: %zu cells after %zu steps, wall %.1f ms\n",
                sim->rm().size(), static_cast<size_t>(steps), t.ElapsedMs());
  }

  // --- GPU versions 0..3 ---------------------------------------------------
  std::printf(
      "\nGPU offload on the simulated GTX 1080 Ti (paper version ladder):\n");
  std::printf("%-10s %14s %12s\n", "version", "device_ms(sim)", "final_cells");
  for (int v = 0; v <= 3; ++v) {
    auto sim = make_sim();
    sim->SetEnvironment(std::make_unique<NullEnvironment>());
    gpu::GpuMechanicsOptions opts = gpu::GpuMechanicsOptions::Version(v);
    opts.meter_stride = 4;
    auto op = std::make_unique<gpu::GpuMechanicalOp>(opts);
    gpu::GpuMechanicalOp* op_ptr = op.get();
    sim->SetMechanicsBackend(std::move(op));
    sim->Simulate(steps);
    std::printf("%-10d %14.3f %12zu\n", v, op_ptr->SimulatedMs(),
                sim->rm().size());
    if (v == 2) {
      std::printf("\nnvprof-style profile of version 2 (the best one):\n%s\n",
                  gpusim::ProfileReport(op_ptr->device()).ToString().c_str());
    }
  }

  std::printf(
      "Expect: v1 (FP32) beats v0 (FP64); v2 (+Z-order sort) beats v1;\n"
      "v3 (+shared memory) loses ground again -- the paper's Fig. 8 ladder.\n");
  return 0;
}
