# gnuplot script for the Fig. 11 speedup curves.
#   ./build/bench/bench_fig10_fig11_benchmark_b --csv plots/data
#   gnuplot -c plots/fig11.gnuplot
set terminal pngcairo size 900,500
set output "plots/fig11.png"
set datafile separator ","
set xlabel "mean neighborhood density n"
set ylabel "GPU speedup vs multithreaded baseline"
set key top left
plot "plots/data_fig10_fig11.csv" using 2:9  skip 1 with linespoints title "vs 4 threads", \
     ""                            using 2:10 skip 1 with linespoints title "vs 8 threads", \
     ""                            using 2:11 skip 1 with linespoints title "vs 16 threads", \
     ""                            using 2:12 skip 1 with linespoints title "vs 32 threads", \
     ""                            using 2:13 skip 1 with linespoints title "vs 64 threads"
