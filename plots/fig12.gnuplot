# gnuplot script for the Fig. 12 roofline.
#   ./build/bench/bench_fig12_roofline --csv plots/data
#   gnuplot -c plots/fig12.gnuplot
set terminal pngcairo size 900,500
set output "plots/fig12.png"
set datafile separator ","
set logscale xy
set xlabel "arithmetic intensity [FLOP/byte]"
set ylabel "performance [GFLOP/s]"
set key bottom right
plot "< grep '^ert,' plots/data_fig12.csv"    using 3:4 with linespoints title "ERT ceilings (simulated V100)", \
     "< grep '^kernel,' plots/data_fig12.csv" using 3:4 with points pt 7 ps 2 title "mech kernel (n = 6/27/47)"
