# gnuplot script for the Fig. 8 runtime bars.
# Generate data first:
#   ./build/bench/bench_fig8_fig9_benchmark_a --csv plots/data
#   gnuplot -c plots/fig8.gnuplot
set terminal pngcairo size 900,500
set output "plots/fig8.png"
set datafile separator ","
set style data histogram
set style fill solid 0.8
set logscale y
set ylabel "runtime of the mechanical interaction operation [ms]"
set xtics rotate by -30
set key off
plot "plots/data_fig8.csv" using 2:xtic(1) skip 1 lc rgb "#4477AA"
