#include "spatial/shard_grid.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace biosim {

void ShardGrid::Configure(const GridGeometry& geometry, int32_t owned_begin,
                          int32_t owned_end) {
  geometry_ = geometry;
  owned_begin_ = owned_begin;
  owned_end_ = owned_end;
  const int32_t nx = geometry_.num_boxes_axis.x;
  const int32_t ny = geometry_.num_boxes_axis.y;
  const int32_t nz = geometry_.num_boxes_axis.z;
  plane_size_ = static_cast<size_t>(nx) * static_cast<size_t>(ny);

  plane_to_window_.assign(static_cast<size_t>(nz), -1);
  window_planes_.clear();
  // Window = owned planes plus one halo plane on each side. On a torus the
  // halo wraps; on an open domain out-of-range planes are skipped. Duplicate
  // planes (e.g. a torus so small the halo wraps onto an owned plane) are
  // kept once: plane_to_window_ assignment is first-wins.
  for (int32_t zz = owned_begin - 1; zz <= owned_end; ++zz) {
    int32_t z = zz;
    if (geometry_.torus) {
      z = ((zz % nz) + nz) % nz;
    } else if (z < 0 || z >= nz) {
      continue;
    }
    if (plane_to_window_[static_cast<size_t>(z)] >= 0) {
      continue;
    }
    plane_to_window_[static_cast<size_t>(z)] =
        static_cast<int32_t>(window_planes_.size());
    window_planes_.push_back(z);
  }

  slot_of_.assign(window_planes_.size() * plane_size_, -1);
  occupied_wb_.clear();
  starts_.clear();
  agents_.clear();
  owned_boxes_.clear();
}

void ShardGrid::Update(const std::vector<int32_t>& members,
                       const Double3* positions) {
  // Reset only the slots that were occupied last step — O(occupied), not
  // O(window boxes).
  for (uint64_t wb : occupied_wb_) {
    slot_of_[static_cast<size_t>(wb)] = -1;
  }
  occupied_wb_.clear();
  starts_.clear();
  agents_.clear();
  owned_boxes_.clear();

  const int32_t nx = geometry_.num_boxes_axis.x;
  bins_.clear();
  bins_.reserve(members.size());
  for (int32_t row : members) {
    const auto c = geometry_.BoxCoordinatesOf(positions[row]);
    const int32_t wz = plane_to_window_[static_cast<size_t>(c.z)];
    if (wz < 0) {
      throw std::logic_error(
          "ShardGrid: agent row " + std::to_string(row) + " binned to plane " +
          std::to_string(c.z) + " outside the shard window [" +
          std::to_string(owned_begin_) + ", " + std::to_string(owned_end_) +
          ") + halo — halo exchange or migration dropped a transfer");
    }
    const uint64_t wb = static_cast<uint64_t>(wz) * plane_size_ +
                        static_cast<uint64_t>(c.y) * nx +
                        static_cast<uint64_t>(c.x);
    bins_.emplace_back(wb, row);
  }
  // Lexicographic sort: boxes ascending, rows ascending within a box (rows
  // are unique) — the canonical resident order of the global grid.
  std::sort(bins_.begin(), bins_.end());

  agents_.reserve(bins_.size());
  for (const auto& [wb, row] : bins_) {
    if (occupied_wb_.empty() || occupied_wb_.back() != wb) {
      slot_of_[static_cast<size_t>(wb)] =
          static_cast<int32_t>(occupied_wb_.size());
      occupied_wb_.push_back(wb);
      starts_.push_back(static_cast<int32_t>(agents_.size()));
    }
    agents_.push_back(row);
  }
  starts_.push_back(static_cast<int32_t>(agents_.size()));

  for (uint32_t slot = 0; slot < occupied_wb_.size(); ++slot) {
    const uint64_t wb = occupied_wb_[slot];
    const int32_t z = window_planes_[static_cast<size_t>(wb / plane_size_)];
    if (z >= owned_begin_ && z < owned_end_) {
      owned_boxes_.emplace_back(wb, slot);
    }
  }
}

int ShardGrid::NeighborSlots(const void* self, uint32_t slot,
                             size_t out[27]) {
  const auto* grid = static_cast<const ShardGrid*>(self);
  const uint64_t wb = grid->occupied_wb_[slot];
  const int32_t nx = grid->geometry_.num_boxes_axis.x;
  const uint64_t rem = wb % grid->plane_size_;
  Int3 c;
  c.z = grid->window_planes_[static_cast<size_t>(wb / grid->plane_size_)];
  c.y = static_cast<int32_t>(rem / static_cast<uint64_t>(nx));
  c.x = static_cast<int32_t>(rem % static_cast<uint64_t>(nx));
  int count = 0;
  grid->geometry_.ForEachNeighborCoord(
      c, [&](const Int3& nc) {
        const int32_t wz = grid->plane_to_window_[static_cast<size_t>(nc.z)];
        if (wz < 0) {
          return;  // Outside the window: no occupied box there can exist.
        }
        const int32_t s2 =
            grid->slot_of_[static_cast<size_t>(wz) * grid->plane_size_ +
                           static_cast<size_t>(nc.y) * nx +
                           static_cast<size_t>(nc.x)];
        if (s2 >= 0) {
          out[count++] = static_cast<size_t>(s2);
        }
      });
  return count;
}

}  // namespace biosim
