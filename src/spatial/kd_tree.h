// kd-tree environment: the baseline the paper replaces.
//
// Median-split balanced kd-tree over agent centers, rebuilt from scratch
// every step (agents move every step, so incremental maintenance does not
// pay off — this matches the BioDynaMo v0.0.9 baseline). Like that
// baseline, Update() runs in the two steps the paper's Section III
// describes: (1) build the kd-tree — inherently serial top-down — and
// (2) search every agent's neighbors within the interaction radius and
// cache the lists (parallelizable). The serial build step is exactly why
// the multithreaded kd-tree falls behind the uniform grid in Fig. 8.
#ifndef BIOSIM_SPATIAL_KD_TREE_H_
#define BIOSIM_SPATIAL_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "spatial/environment.h"

namespace biosim {

class KdTreeEnvironment : public Environment {
 public:
  /// `leaf_size`: stop splitting below this many agents per node.
  /// `cache_neighbor_lists`: perform the baseline's second update step
  /// (precompute every agent's neighbor list); disable to query the tree
  /// lazily instead.
  explicit KdTreeEnvironment(size_t leaf_size = 16,
                             bool cache_neighbor_lists = true)
      : leaf_size_(leaf_size), cache_neighbor_lists_(cache_neighbor_lists) {}

  void Update(const ResourceManager& rm, const Param& param,
              ExecMode mode) override;

  void ForEachNeighborWithinRadius(AgentIndex query,
                                   const ResourceManager& rm, double radius,
                                   NeighborFn fn) const override;

  double interaction_radius() const override { return interaction_radius_; }
  const char* name() const override { return "kd-tree"; }

  /// Tree depth (diagnostics / tests).
  size_t Depth() const;

  bool caches_neighbor_lists() const { return cache_neighbor_lists_; }

 private:
  struct CachedNeighbor {
    uint32_t index;
    double squared_distance;
  };

  /// Query the tree directly (used to build the cache, and for lazy mode).
  void QueryTree(AgentIndex query, const ResourceManager& rm, double radius,
                 NeighborFn fn) const;

  struct Node {
    // Leaf when right == kNoChild: points are indices_[begin, end).
    // Internal: left child is node i+1 (preorder layout), right child is
    // `right`; split plane is `split` on `axis`.
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t right = kNoChild;
    uint8_t axis = 0;
    double split = 0.0;
  };
  static constexpr uint32_t kNoChild = ~uint32_t{0};

  /// Recursively build the subtree over indices_[begin, end); returns the
  /// index of the created node.
  uint32_t BuildNode(const std::vector<Double3>& pos, uint32_t begin,
                     uint32_t end);

  size_t leaf_size_;
  bool cache_neighbor_lists_;
  double interaction_radius_ = 0.0;
  std::vector<Node> nodes_;
  std::vector<uint32_t> indices_;
  // Cached per-agent neighbor lists (flattened: offsets_[i]..offsets_[i+1]).
  std::vector<CachedNeighbor> neighbors_;
  std::vector<size_t> offsets_;
  // Per-agent scratch for the cache build; member so its capacity amortizes
  // across steps (reallocation would otherwise dominate the search phase).
  std::vector<std::vector<CachedNeighbor>> scratch_;
};

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_KD_TREE_H_
