#include "spatial/uniform_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "physics/displacement.h"

namespace biosim {

namespace {

// Atomic vectors cannot be resized through assign(); rebuild in place.
void ResetAtomicVector(std::vector<std::atomic<int32_t>>& v, size_t n,
                       int32_t value, ExecMode mode) {
  if (v.size() != n) {
    std::vector<std::atomic<int32_t>> fresh(n);
    v.swap(fresh);
  }
  ParallelFor(mode, n, [&](size_t i) {
    v[i].store(value, std::memory_order_relaxed);
  });
}

}  // namespace

void UniformGridEnvironment::Update(const ResourceManager& rm,
                                    const Param& param, ExecMode mode) {
  size_t n = rm.size();
  interaction_radius_ = rm.LargestDiameter() + param.interaction_radius_margin;

  if (n == 0) {
    // Degenerate population: a single empty box (a zero interaction radius
    // would otherwise explode the box count over the fallback bounds).
    grid_min_ = {0, 0, 0};
    box_length_ = fixed_box_length_ > 0.0 ? fixed_box_length_ : 1.0;
    inv_box_length_ = 1.0 / box_length_;
    num_boxes_axis_ = {1, 1, 1};
    torus_ = false;
    off_lo_[0] = off_lo_[1] = off_lo_[2] = -1;
    off_hi_[0] = off_hi_[1] = off_hi_[2] = 1;
    ResetAtomicVector(box_start_, 1, kEmpty, mode);
    ResetAtomicVector(box_count_, 1, 0, mode);
    successors_.clear();
    box_starts_.assign(2, 0);
    box_agents_.clear();
    return;
  }

  box_length_ = fixed_box_length_ > 0.0
                    ? fixed_box_length_
                    : std::max(interaction_radius_, 1e-6);

  torus_ = param.EffectiveBoundary() == BoundaryMode::kTorus;
  if (torus_) {
    // Periodic grid: cover [min_bound, max_bound) exactly with boxes no
    // smaller than the interaction radius, so the wrapped 27-box scheme
    // still sees every neighbor.
    edge_ = param.SpaceEdge();
    int32_t nb = std::max<int32_t>(
        1, static_cast<int32_t>(std::floor(edge_ / box_length_)));
    box_length_ = edge_ / static_cast<double>(nb);
    grid_min_ = {param.min_bound, param.min_bound, param.min_bound};
    num_boxes_axis_ = {nb, nb, nb};
  } else {
    AABBd bounds = rm.Bounds();
    grid_min_ = bounds.min;
    Double3 size = bounds.Size();
    auto axis_boxes = [&](double extent) {
      return static_cast<int32_t>(std::floor(extent / box_length_)) + 1;
    };
    num_boxes_axis_ = {axis_boxes(size.x), axis_boxes(size.y),
                       axis_boxes(size.z)};
  }

  inv_box_length_ = 1.0 / box_length_;

  // Hoist the per-axis offset ranges ({-1,0,1} normally, reduced when a
  // periodic axis has fewer than 3 boxes so a wrapped offset cannot revisit
  // the same box) out of the traversals: they are grid-shape constants.
  auto axis_offsets = [&](int axis, int32_t nb) {
    if (!torus_ || nb >= 3) {
      off_lo_[axis] = -1;
      off_hi_[axis] = 1;
    } else if (nb == 2) {
      off_lo_[axis] = -1;
      off_hi_[axis] = 0;
    } else {
      off_lo_[axis] = 0;
      off_hi_[axis] = 0;
    }
  };
  axis_offsets(0, num_boxes_axis_.x);
  axis_offsets(1, num_boxes_axis_.y);
  axis_offsets(2, num_boxes_axis_.z);

  size_t total = static_cast<size_t>(num_boxes_axis_.x) *
                 static_cast<size_t>(num_boxes_axis_.y) *
                 static_cast<size_t>(num_boxes_axis_.z);

  if (fixed_box_length_ > 0.0 &&
      interaction_radius_ > fixed_box_length_ + 1e-12) {
    // The 27-box scheme only covers queries up to one box length. A fixed
    // box edge smaller than the interaction radius would silently drop
    // neighbors in every force evaluation; fail fast instead.
    throw std::invalid_argument(
        "UniformGridEnvironment: fixed_box_length " +
        std::to_string(fixed_box_length_) +
        " is smaller than the interaction radius " +
        std::to_string(interaction_radius_) +
        "; queries would drop neighbors outside the 27 surrounding boxes");
  }

  ResetAtomicVector(box_start_, total, kEmpty, mode);
  ResetAtomicVector(box_count_, total, 0, mode);
  successors_.resize(n);

  // Parallel insert: each agent atomically pushes itself onto its box's
  // linked list. The resulting per-box order depends on thread interleaving;
  // the canonicalization pass below rewrites every chain into ascending
  // agent index so traversal order is identical for any interleaving, any
  // thread count, and serial vs parallel builds. MechanicalForcesOp
  // accumulates forces in traversal order, so this is what makes CPU
  // trajectories bitwise reproducible (FP addition is not associative).
  const auto& pos = rm.positions();
  ParallelFor(mode, n, [&](size_t i) {
    size_t b = BoxIndexOf(pos[i]);
    int32_t prev = box_start_[b].exchange(static_cast<int32_t>(i),
                                          std::memory_order_relaxed);
    successors_[i] = prev;
    box_count_[b].fetch_add(1, std::memory_order_relaxed);
  });

  // Canonicalize: sort each box's chain ascending. Boxes touch disjoint
  // successors_ entries (an agent lives in exactly one box), so the pass
  // parallelizes over boxes without synchronization. Chains of length 0/1
  // are already canonical and skipped.
  ParallelFor(mode, total, [&](size_t b) {
    int32_t head = box_start_[b].load(std::memory_order_relaxed);
    if (head == kEmpty || successors_[head] == kEmpty) {
      return;
    }
    thread_local std::vector<int32_t> chain;
    chain.clear();
    for (int32_t j = head; j != kEmpty; j = successors_[j]) {
      chain.push_back(j);
    }
    std::sort(chain.begin(), chain.end());
    box_start_[b].store(chain.front(), std::memory_order_relaxed);
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      successors_[chain[k]] = chain[k + 1];
    }
    successors_[chain.back()] = kEmpty;
  });

  // CSR flatten: exclusive scan of box occupancy, then each canonical chain
  // written into its contiguous run. Chains are already ascending, so every
  // run is ascending and the CSR traversal order equals the chain traversal
  // order. The scan is a serial O(total) stream (deterministic and cheap:
  // one add per box); the fill parallelizes over boxes, which own disjoint
  // runs.
  box_starts_.resize(total + 1);
  int32_t running = 0;
  for (size_t b = 0; b < total; ++b) {
    box_starts_[b] = running;
    running += box_count_[b].load(std::memory_order_relaxed);
  }
  box_starts_[total] = running;
  box_agents_.resize(n);
  ParallelFor(mode, total, [&](size_t b) {
    int32_t w = box_starts_[b];
    for (int32_t j = box_start_[b].load(std::memory_order_relaxed);
         j != kEmpty; j = successors_[j]) {
      box_agents_[w++] = j;
    }
  });
}

Int3 UniformGridEnvironment::BoxCoordinatesOf(const Double3& pos) const {
  auto coord = [&](double v, double lo, int32_t n) {
    int32_t c = static_cast<int32_t>(std::floor((v - lo) * inv_box_length_));
    return std::clamp(c, 0, n - 1);
  };
  return {coord(pos.x, grid_min_.x, num_boxes_axis_.x),
          coord(pos.y, grid_min_.y, num_boxes_axis_.y),
          coord(pos.z, grid_min_.z, num_boxes_axis_.z)};
}

int UniformGridEnvironment::NeighborBoxesOf(const Int3& c,
                                            size_t out[27]) const {
  int count = 0;
  for (int32_t dz = off_lo_[2]; dz <= off_hi_[2]; ++dz) {
    int32_t z = c.z + dz;
    if (torus_) {
      z = (z + num_boxes_axis_.z) % num_boxes_axis_.z;
    } else if (z < 0 || z >= num_boxes_axis_.z) {
      continue;
    }
    for (int32_t dy = off_lo_[1]; dy <= off_hi_[1]; ++dy) {
      int32_t y = c.y + dy;
      if (torus_) {
        y = (y + num_boxes_axis_.y) % num_boxes_axis_.y;
      } else if (y < 0 || y >= num_boxes_axis_.y) {
        continue;
      }
      for (int32_t dx = off_lo_[0]; dx <= off_hi_[0]; ++dx) {
        int32_t x = c.x + dx;
        if (torus_) {
          x = (x + num_boxes_axis_.x) % num_boxes_axis_.x;
        } else if (x < 0 || x >= num_boxes_axis_.x) {
          continue;
        }
        out[count++] = FlatBoxIndex({x, y, z});
      }
    }
  }
  return count;
}

size_t UniformGridEnvironment::BoxIndexOf(const Double3& pos) const {
  return FlatBoxIndex(BoxCoordinatesOf(pos));
}

void UniformGridEnvironment::ForEachNeighborWithinRadius(
    AgentIndex query, const ResourceManager& rm, double radius,
    NeighborFn fn) const {
  if (radius > box_length_ + 1e-12) {
    // Out of contract in any build type: the traversal only visits the 27
    // surrounding boxes, so a larger radius would silently miss neighbors
    // (previously only a debug assert; with fixed_box_length_ set, release
    // builds dropped neighbors without a trace).
    throw std::invalid_argument(
        "UniformGridEnvironment: query radius " + std::to_string(radius) +
        " exceeds the box length " + std::to_string(box_length_) +
        "; the uniform grid only covers the 27 surrounding boxes");
  }
  const auto& pos = rm.positions();
  const Double3 q = pos[query];
  const double r2 = radius * radius;

  // The 3x3x3 block around the query's box (Fig. 4): clamped at the domain
  // faces normally, wrapped around them on a torus. The per-axis offset
  // bounds and the wrap arithmetic are resolved once per query here (and
  // once per *box* in the fused kernel), not per neighbor.
  size_t blocks[27];
  const int block_count = NeighborBoxesOf(BoxCoordinatesOf(q), blocks);
  for (int k = 0; k < block_count; ++k) {
    const size_t b = blocks[k];
    for (int32_t j = box_start(b); j != kEmpty; j = successors_[j]) {
      if (static_cast<AgentIndex>(j) == query) {
        continue;
      }
      double d2 = torus_ ? MinImageVector(q, pos[j], edge_).SquaredNorm()
                         : SquaredDistance(q, pos[j]);
      if (d2 <= r2) {
        fn(static_cast<AgentIndex>(j), d2);
      }
    }
  }
}

void UniformGridEnvironment::ForEachNeighborWithinRadiusCsr(
    AgentIndex query, const ResourceManager& rm, double radius,
    NeighborFn fn) const {
  if (radius > box_length_ + 1e-12) {
    throw std::invalid_argument(
        "UniformGridEnvironment: query radius " + std::to_string(radius) +
        " exceeds the box length " + std::to_string(box_length_) +
        "; the uniform grid only covers the 27 surrounding boxes");
  }
  const auto& pos = rm.positions();
  const Double3 q = pos[query];
  const double r2 = radius * radius;

  size_t blocks[27];
  const int block_count = NeighborBoxesOf(BoxCoordinatesOf(q), blocks);
  for (int k = 0; k < block_count; ++k) {
    const size_t b = blocks[k];
    const int32_t end = box_starts_[b + 1];
    for (int32_t t = box_starts_[b]; t < end; ++t) {
      const int32_t j = box_agents_[t];
      if (static_cast<AgentIndex>(j) == query) {
        continue;
      }
      double d2 = torus_ ? MinImageVector(q, pos[j], edge_).SquaredNorm()
                         : SquaredDistance(q, pos[j]);
      if (d2 <= r2) {
        fn(static_cast<AgentIndex>(j), d2);
      }
    }
  }
}

double UniformGridEnvironment::MeanAgentsPerBox() const {
  size_t occupied = 0;
  size_t agents = 0;
  for (size_t b = 0; b < box_count_.size(); ++b) {
    int32_t c = box_count(b);
    if (c > 0) {
      ++occupied;
      agents += static_cast<size_t>(c);
    }
  }
  return occupied == 0 ? 0.0
                       : static_cast<double>(agents) / static_cast<double>(occupied);
}

double UniformGridEnvironment::MeanNeighborCount(const ResourceManager& rm,
                                                 size_t sample_stride) const {
  if (rm.empty()) {
    return 0.0;
  }
  // A zero stride would loop forever on the first agent; treat it as "sample
  // everything" instead.
  sample_stride = std::max<size_t>(1, sample_stride);
  size_t count = 0;
  size_t samples = 0;
  for (size_t i = 0; i < rm.size(); i += sample_stride) {
    ++samples;
    ForEachNeighborWithinRadius(
        i, rm, interaction_radius_,
        [&](AgentIndex, double) { ++count; });
  }
  return static_cast<double>(count) / static_cast<double>(samples);
}

}  // namespace biosim
