#include "spatial/uniform_grid.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/analysis.h"
#include "physics/displacement.h"

namespace biosim {

namespace {

// Atomic vectors cannot be resized through assign(); rebuild in place.
void ResetAtomicVector(std::vector<std::atomic<int32_t>>& v, size_t n,
                       int32_t value, ExecMode mode) {
  if (v.size() != n) {
    std::vector<std::atomic<int32_t>> fresh(n);
    v.swap(fresh);
  }
  ParallelFor(mode, n, [&](size_t i) {
    v[i].store(value, std::memory_order_relaxed);
  });
}

}  // namespace

void UniformGridEnvironment::Update(const ResourceManager& rm,
                                    const Param& param, ExecMode mode) {
  size_t n = rm.size();
  CheckCsrAgentCount(n);

  // Candidate geometry in a local: geometry_ is only overwritten on the
  // full-rebuild path, so the incremental gate below can compare the
  // candidate against the live grid. Incremental maintenance is only valid
  // when every geometric input matches EXACTLY — no snapping, no tolerance —
  // because a box lattice that differs in any bit re-bins agents
  // differently. (Without a torus or fixed bounds, grid_min tracks
  // rm.Bounds() and drifts with motion, so the patch path mostly serves
  // periodic and steady-state populations; that is the workload it is for.)
  // Derive is the same function spatial shards bin with (grid_geometry.h).
  GridGeometry candidate = GridGeometry::Derive(rm, param, fixed_box_length_);
  interaction_radius_ = candidate.interaction_radius;

  if (n == 0) {
    geometry_ = candidate;
    ResetAtomicVector(box_start_, 1, kEmpty, mode);
    ResetAtomicVector(box_count_, 1, 0, mode);
    successors_.clear();
    box_starts_.assign(2, 0);
    box_agents_.clear();
    agent_box_.clear();
    ++update_stats_.full_rebuilds;
    return;
  }

  const bool same_geometry =
      n == agent_box_.size() && candidate.SameLattice(geometry_);
  if (param.incremental_grid && same_geometry &&
      TryIncrementalUpdate(rm, mode)) {
    ++update_stats_.incremental_updates;
    return;
  }

  ++update_stats_.full_rebuilds;
  geometry_ = candidate;

  size_t total = geometry_.TotalBoxes();

  ResetAtomicVector(box_start_, total, kEmpty, mode);
  ResetAtomicVector(box_count_, total, 0, mode);
  successors_.resize(n);
  agent_box_.resize(n);

  // Parallel insert: each agent atomically pushes itself onto its box's
  // linked list. The resulting per-box order depends on thread interleaving;
  // the canonicalization pass below rewrites every chain into ascending
  // agent index so traversal order is identical for any interleaving, any
  // thread count, and serial vs parallel builds. MechanicalForcesOp
  // accumulates forces in traversal order, so this is what makes CPU
  // trajectories bitwise reproducible (FP addition is not associative).
  // Each agent's box is also recorded for the next Update's mover diff.
  const auto& pos = rm.positions();
  ParallelFor(mode, n, [&](size_t i) {
    size_t b = BoxIndexOf(pos[i]);
    agent_box_[i] = static_cast<int32_t>(b);
    int32_t prev = box_start_[b].exchange(static_cast<int32_t>(i),
                                          std::memory_order_relaxed);
    successors_[i] = prev;
    box_count_[b].fetch_add(1, std::memory_order_relaxed);
  });

  // Canonicalize: sort each box's chain ascending. Boxes touch disjoint
  // successors_ entries (an agent lives in exactly one box), so the pass
  // parallelizes over boxes without synchronization. Chains of length 0/1
  // are already canonical and skipped.
  ParallelFor(mode, total, [&](size_t b) {
    int32_t head = box_start_[b].load(std::memory_order_relaxed);
    if (head == kEmpty || successors_[head] == kEmpty) {
      return;
    }
    thread_local std::vector<int32_t> chain;
    chain.clear();
    for (int32_t j = head; j != kEmpty; j = successors_[j]) {
      chain.push_back(j);
    }
    std::sort(chain.begin(), chain.end());
    box_start_[b].store(chain.front(), std::memory_order_relaxed);
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      successors_[chain[k]] = chain[k + 1];
    }
    successors_[chain.back()] = kEmpty;
  });

  // CSR flatten: exclusive scan of box occupancy, then each canonical chain
  // written into its contiguous run. Chains are already ascending, so every
  // run is ascending and the CSR traversal order equals the chain traversal
  // order. The scan is a serial O(total) stream (deterministic and cheap:
  // one add per box); the fill parallelizes over boxes, which own disjoint
  // runs.
  box_starts_.resize(total + 1);
  int32_t running = 0;
  for (size_t b = 0; b < total; ++b) {
    box_starts_[b] = running;
    running += box_count_[b].load(std::memory_order_relaxed);
  }
  box_starts_[total] = running;
  box_agents_.resize(n);
  ParallelFor(mode, total, [&](size_t b) {
    int32_t w = box_starts_[b];
    for (int32_t j = box_start_[b].load(std::memory_order_relaxed);
         j != kEmpty; j = successors_[j]) {
      box_agents_[w++] = j;
    }
  });
}

bool UniformGridEnvironment::TryIncrementalUpdate(const ResourceManager& rm,
                                                  ExecMode mode) {
  const size_t n = rm.size();
  const auto& pos = rm.positions();

  // 1) Mover detection, merged in chunk order. ParallelForChunks hands out
  // contiguous ascending index ranges, so concatenating the per-chunk lists
  // by begin yields every box-crosser in ascending agent order — the
  // canonical order all the membership deltas below inherit. agent_box_ is
  // only read here; it is patched after the fallback decision so a rejected
  // attempt leaves every structure untouched.
  struct Move {
    int32_t agent;
    int32_t from;
    int32_t to;
  };
  Mutex merge_mutex;
  std::vector<std::pair<size_t, std::vector<Move>>> chunks;
  ParallelForChunks(mode, n, [&](size_t begin, size_t end) {
    std::vector<Move> local;
    for (size_t i = begin; i < end; ++i) {
      int32_t to = static_cast<int32_t>(BoxIndexOf(pos[i]));
      if (to != agent_box_[i]) {
        local.push_back({static_cast<int32_t>(i), agent_box_[i], to});
      }
    }
    if (!local.empty()) {
      MutexLock lock(merge_mutex);
      chunks.emplace_back(begin, std::move(local));
    }
  });
  if (chunks.empty()) {
    return true;  // no box boundary crossed: the grid is already exact
  }
  std::sort(chunks.begin(), chunks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t movers = 0;
  for (const auto& [begin, moves] : chunks) {
    (void)begin;
    movers += moves.size();
  }
  if (movers > n / 2) {
    // Patching cost approaches a rebuild's; let the caller rebuild. Either
    // path produces identical bytes, so the threshold is purely a cost
    // heuristic — it cannot change any result.
    return false;
  }
  update_stats_.rebinned_agents += movers;

  // 2) Per-box membership deltas. std::map gives the deterministic
  // ascending-box iteration order the serial patch pass below relies on
  // (and keeps biosim-lint's unordered-iteration rule happy); the
  // removes/adds vectors stay ascending because movers arrive in ascending
  // agent order.
  struct BoxDelta {
    std::vector<int32_t> removes;
    std::vector<int32_t> adds;
  };
  std::map<size_t, BoxDelta> deltas;
  for (auto& [begin, moves] : chunks) {
    (void)begin;
    for (const Move& m : moves) {
      deltas[static_cast<size_t>(m.from)].removes.push_back(m.agent);
      deltas[static_cast<size_t>(m.to)].adds.push_back(m.agent);
      agent_box_[m.agent] = m.to;
    }
  }

  // 3) Retire the live CSR into the previous-generation buffers (swap, no
  // allocation churn): affected boxes read their old runs from there while
  // the new arrays are rewritten below.
  prev_box_starts_.swap(box_starts_);
  prev_box_agents_.swap(box_agents_);

  // 4) Patch each affected box: new member run = (old run minus leavers)
  // merged with arrivals — three ascending sequences, so the result is the
  // ascending member set a full rebuild's canonicalization would produce.
  // The chain is rewritten to exactly those bytes (head = min, successors
  // ascending, kEmpty terminator). Boxes own disjoint chain entries, and a
  // mover's successors_ slot is written only by its destination box.
  std::vector<int32_t> kept;
  std::vector<int32_t> merged;
  for (const auto& [b, delta] : deltas) {
    const int32_t* old_begin = prev_box_agents_.data() + prev_box_starts_[b];
    const int32_t* old_end = prev_box_agents_.data() + prev_box_starts_[b + 1];
    kept.clear();
    merged.clear();
    std::set_difference(old_begin, old_end, delta.removes.begin(),
                        delta.removes.end(), std::back_inserter(kept));
    std::merge(kept.begin(), kept.end(), delta.adds.begin(), delta.adds.end(),
               std::back_inserter(merged));
    box_count_[b].store(static_cast<int32_t>(merged.size()),
                        std::memory_order_relaxed);
    if (merged.empty()) {
      box_start_[b].store(kEmpty, std::memory_order_relaxed);
      continue;
    }
    box_start_[b].store(merged.front(), std::memory_order_relaxed);
    for (size_t k = 0; k + 1 < merged.size(); ++k) {
      successors_[merged[k]] = merged[k + 1];
    }
    successors_[merged.back()] = kEmpty;
  }

  // 5) Re-derive box_starts_ from the patched occupancy with the identical
  // serial exclusive scan the full rebuild runs — same inputs, same loop,
  // same bytes. (A count change in one box shifts every downstream offset,
  // so the scan cannot be localized; it is one add per box.)
  const size_t total = box_start_.size();
  box_starts_.resize(total + 1);
  int32_t running = 0;
  for (size_t b = 0; b < total; ++b) {
    box_starts_[b] = running;
    running += box_count_[b].load(std::memory_order_relaxed);
  }
  box_starts_[total] = running;

  // 6) Refill box_agents_ at the shifted offsets: affected boxes walk their
  // freshly patched chains (the same loop as the full rebuild's fill);
  // untouched boxes bulk-copy their old run from the retired arrays. Each
  // chunk sweeps its boxes in ascending order, so membership in the (sorted)
  // affected list is a resumable merge walk — O(boxes + movers), not a
  // per-box binary search. Every box_agents_ slot is written by exactly one
  // box regardless of chunking.
  std::vector<size_t> affected;
  affected.reserve(deltas.size());
  for (const auto& [b, delta] : deltas) {
    (void)delta;
    affected.push_back(b);
  }
  box_agents_.resize(n);
  ParallelForChunks(mode, total, [&](size_t begin, size_t end) {
    auto next = std::lower_bound(affected.begin(), affected.end(), begin);
    for (size_t b = begin; b < end; ++b) {
      const int32_t w = box_starts_[b];
      if (next != affected.end() && *next == b) {
        ++next;
        int32_t at = w;
        for (int32_t j = box_start_[b].load(std::memory_order_relaxed);
             j != kEmpty; j = successors_[j]) {
          box_agents_[at++] = j;
        }
      } else {
        std::copy_n(prev_box_agents_.data() + prev_box_starts_[b],
                    box_count_[b].load(std::memory_order_relaxed),
                    box_agents_.data() + w);
      }
    }
  });
  return true;
}

void UniformGridEnvironment::CheckCsrAgentCount(size_t n) {
  if (n > static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    throw std::length_error(
        "UniformGridEnvironment: population " + std::to_string(n) +
        " exceeds the 2^31-1 agents the int32 CSR offsets can address "
        "(box_starts_/box_agents_, mirrored by the GPU offload); the "
        "exclusive scan would silently wrap");
  }
}

int UniformGridEnvironment::NeighborBoxesOf(const Int3& c,
                                            size_t out[27]) const {
  return geometry_.NeighborBoxesOf(c, out);
}

size_t UniformGridEnvironment::BoxIndexOf(const Double3& pos) const {
  return FlatBoxIndex(BoxCoordinatesOf(pos));
}

void UniformGridEnvironment::ForEachNeighborWithinRadius(
    AgentIndex query, const ResourceManager& rm, double radius,
    NeighborFn fn) const {
  if (radius > geometry_.box_length + 1e-12) {
    // Out of contract in any build type: the traversal only visits the 27
    // surrounding boxes, so a larger radius would silently miss neighbors
    // (previously only a debug assert; with fixed_box_length_ set, release
    // builds dropped neighbors without a trace).
    throw std::invalid_argument(
        "UniformGridEnvironment: query radius " + std::to_string(radius) +
        " exceeds the box length " + std::to_string(geometry_.box_length) +
        "; the uniform grid only covers the 27 surrounding boxes");
  }
  const auto& pos = rm.positions();
  const Double3 q = pos[query];
  const double r2 = radius * radius;

  // The 3x3x3 block around the query's box (Fig. 4): clamped at the domain
  // faces normally, wrapped around them on a torus. The per-axis offset
  // bounds and the wrap arithmetic are resolved once per query here (and
  // once per *box* in the fused kernel), not per neighbor.
  size_t blocks[27];
  const int block_count = NeighborBoxesOf(BoxCoordinatesOf(q), blocks);
  for (int k = 0; k < block_count; ++k) {
    const size_t b = blocks[k];
    for (int32_t j = box_start(b); j != kEmpty; j = successors_[j]) {
      if (static_cast<AgentIndex>(j) == query) {
        continue;
      }
      double d2 = geometry_.torus
                         ? MinImageVector(q, pos[j], geometry_.edge).SquaredNorm()
                         : SquaredDistance(q, pos[j]);
      if (d2 <= r2) {
        fn(static_cast<AgentIndex>(j), d2);
      }
    }
  }
}

void UniformGridEnvironment::ForEachNeighborWithinRadiusCsr(
    AgentIndex query, const ResourceManager& rm, double radius,
    NeighborFn fn) const {
  if (radius > geometry_.box_length + 1e-12) {
    throw std::invalid_argument(
        "UniformGridEnvironment: query radius " + std::to_string(radius) +
        " exceeds the box length " + std::to_string(geometry_.box_length) +
        "; the uniform grid only covers the 27 surrounding boxes");
  }
  const auto& pos = rm.positions();
  const Double3 q = pos[query];
  const double r2 = radius * radius;

  size_t blocks[27];
  const int block_count = NeighborBoxesOf(BoxCoordinatesOf(q), blocks);
  for (int k = 0; k < block_count; ++k) {
    const size_t b = blocks[k];
    const int32_t end = box_starts_[b + 1];
    for (int32_t t = box_starts_[b]; t < end; ++t) {
      const int32_t j = box_agents_[t];
      if (static_cast<AgentIndex>(j) == query) {
        continue;
      }
      double d2 = geometry_.torus
                         ? MinImageVector(q, pos[j], geometry_.edge).SquaredNorm()
                         : SquaredDistance(q, pos[j]);
      if (d2 <= r2) {
        fn(static_cast<AgentIndex>(j), d2);
      }
    }
  }
}

double UniformGridEnvironment::MeanAgentsPerBox() const {
  size_t occupied = 0;
  size_t agents = 0;
  for (size_t b = 0; b < box_count_.size(); ++b) {
    int32_t c = box_count(b);
    if (c > 0) {
      ++occupied;
      agents += static_cast<size_t>(c);
    }
  }
  return occupied == 0 ? 0.0
                       : static_cast<double>(agents) / static_cast<double>(occupied);
}

double UniformGridEnvironment::MeanNeighborCount(const ResourceManager& rm,
                                                 size_t sample_stride) const {
  if (rm.empty()) {
    return 0.0;
  }
  // A zero stride would loop forever on the first agent; treat it as "sample
  // everything" instead.
  sample_stride = std::max<size_t>(1, sample_stride);
  size_t count = 0;
  size_t samples = 0;
  for (size_t i = 0; i < rm.size(); i += sample_stride) {
    ++samples;
    ForEachNeighborWithinRadius(
        i, rm, interaction_radius_,
        [&](AgentIndex, double) { ++count; });
  }
  return static_cast<double>(count) / static_cast<double>(samples);
}

}  // namespace biosim
