// Spatial shard partition: contiguous z-plane ranges of the box lattice.
//
// The domain is split along the grid's z axis (FlatBoxIndex is x-fastest, so
// a plane is a contiguous run of boxes) into K contiguous plane ranges, one
// per shard. Ownership of an agent is ownership of the plane its box lies
// in. Contiguity means every shard has at most two neighbors (above/below,
// wrapping on a torus), so the halo exchange is two messages per shard per
// step (docs/sharding.md).
//
// The split is a pure function of (K, plane count, balance mode, per-plane
// load histogram) — no agent data, no RNG — and it never affects any
// simulation result: partitioning only assigns work, the merge discipline
// makes the outcome shard-count independent.
#ifndef BIOSIM_SPATIAL_SHARD_PARTITION_H_
#define BIOSIM_SPATIAL_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "core/param.h"  // ShardBalance

namespace biosim {

struct ShardPartition {
  /// Shard k owns planes [plane_begin[k], plane_begin[k+1]); size K + 1,
  /// plane_begin[0] == 0, plane_begin[K] == planes.
  std::vector<int32_t> plane_begin;
  /// plane -> owning shard; size = planes.
  std::vector<int32_t> plane_owner;
  uint32_t shards = 0;
  int32_t planes = 0;

  /// Split `planes` z-planes across `shards`. `plane_load` is the per-plane
  /// agent histogram (may be empty for kStatic; must have `planes` entries
  /// for kAdaptive). Throws std::invalid_argument when shards == 0 or when
  /// shards exceeds the plane count — a shard cannot own less than one
  /// plane (the halo protocol ships exactly the face planes).
  static ShardPartition Split(uint32_t shards, int32_t planes,
                              ShardBalance balance,
                              const std::vector<uint64_t>& plane_load);

  int32_t first_plane(uint32_t k) const { return plane_begin[k]; }
  /// One past the last owned plane.
  int32_t end_plane(uint32_t k) const { return plane_begin[k + 1]; }
  int32_t OwnerOfPlane(int32_t z) const { return plane_owner[z]; }
};

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_SHARD_PARTITION_H_
