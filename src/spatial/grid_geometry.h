// Geometry of the uniform box lattice, factored out of the grid environment.
//
// The lattice (box edge length, origin, per-axis box counts, torus wrap and
// the reduced neighbor-offset ranges on short periodic axes) used to be
// derived inline in UniformGridEnvironment::Update. Spatial sharding needs
// the identical derivation without a grid instance — every shard bins its
// members with the same lattice the unsharded grid would use, which is what
// makes the per-shard CSR runs byte-identical to the global grid's runs
// (docs/sharding.md). Deriving it twice from two copies of the same code
// would invite bit-level drift; both the environment and ShardGrid call
// Derive() and the shared coordinate helpers below.
//
// Everything here is pure integer/FP-comparison logic on the lattice — no
// agent state, no CSR — so sharing it cannot change any force bits.
#ifndef BIOSIM_SPATIAL_GRID_GEOMETRY_H_
#define BIOSIM_SPATIAL_GRID_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/math.h"

namespace biosim {

class ResourceManager;
struct Param;

struct GridGeometry {
  /// Largest agent diameter + param.interaction_radius_margin, the radius
  /// the 27-box scheme must cover.
  double interaction_radius = 0.0;
  double box_length = 1.0;
  /// 1 / box_length, precomputed so binning costs a multiply per axis.
  double inv_box_length = 1.0;
  Double3 grid_min{};
  Int3 num_boxes_axis{1, 1, 1};
  /// Periodic space: neighbor enumeration wraps across faces.
  bool torus = false;
  double edge = 0.0;
  /// Per-axis neighbor-offset bounds ({-1,1} normally; reduced on periodic
  /// axes with < 3 boxes so a wrapped offset cannot revisit a box).
  /// Indexed x=0, y=1, z=2.
  int32_t off_lo[3] = {-1, -1, -1};
  int32_t off_hi[3] = {1, 1, 1};

  /// Derive the lattice for the current population, exactly as
  /// UniformGridEnvironment::Update historically did: fixed box edge when
  /// `fixed_box_length` > 0 (throws std::invalid_argument when it is smaller
  /// than the interaction radius), else max(interaction radius, 1e-6);
  /// periodic grids cover [min_bound, max_bound) exactly, open/clamped grids
  /// cover rm.Bounds(). An empty population yields the degenerate single-box
  /// lattice.
  static GridGeometry Derive(const ResourceManager& rm, const Param& param,
                             double fixed_box_length = 0.0);

  /// Whether two derivations produce the same box lattice — the incremental
  /// grid's reuse gate. EXACT comparison, no tolerance: a lattice differing
  /// in any bit bins agents differently. (interaction_radius is deliberately
  /// not compared: with a fixed box edge the radius can grow without moving
  /// any box boundary.)
  bool SameLattice(const GridGeometry& o) const {
    return torus == o.torus && box_length == o.box_length &&
           num_boxes_axis.x == o.num_boxes_axis.x &&
           num_boxes_axis.y == o.num_boxes_axis.y &&
           num_boxes_axis.z == o.num_boxes_axis.z &&
           grid_min.x == o.grid_min.x && grid_min.y == o.grid_min.y &&
           grid_min.z == o.grid_min.z && (!torus || edge == o.edge);
  }

  size_t TotalBoxes() const {
    return static_cast<size_t>(num_boxes_axis.x) *
           static_cast<size_t>(num_boxes_axis.y) *
           static_cast<size_t>(num_boxes_axis.z);
  }

  Int3 BoxCoordinatesOf(const Double3& pos) const {
    auto coord = [&](double v, double lo, int32_t n) {
      int32_t c = static_cast<int32_t>(std::floor((v - lo) * inv_box_length));
      return std::clamp(c, 0, n - 1);
    };
    return {coord(pos.x, grid_min.x, num_boxes_axis.x),
            coord(pos.y, grid_min.y, num_boxes_axis.y),
            coord(pos.z, grid_min.z, num_boxes_axis.z)};
  }

  size_t FlatBoxIndex(const Int3& c) const {
    return (static_cast<size_t>(c.z) * static_cast<size_t>(num_boxes_axis.y) +
            static_cast<size_t>(c.y)) *
               static_cast<size_t>(num_boxes_axis.x) +
           static_cast<size_t>(c.x);
  }

  /// Inverse of FlatBoxIndex.
  Int3 BoxCoordinatesOfIndex(size_t b) const {
    int32_t x =
        static_cast<int32_t>(b % static_cast<size_t>(num_boxes_axis.x));
    size_t rest = b / static_cast<size_t>(num_boxes_axis.x);
    int32_t y =
        static_cast<int32_t>(rest % static_cast<size_t>(num_boxes_axis.y));
    int32_t z =
        static_cast<int32_t>(rest / static_cast<size_t>(num_boxes_axis.y));
    return {x, y, z};
  }

  /// Enumerate the (up to 27) neighbor-box coordinates of box `c` in the
  /// canonical (dz, dy, dx) order every traversal uses: clamped at the
  /// domain faces, wrapped on a torus. This single enumeration is what both
  /// the global grid's NeighborBoxesOf and each shard's slot resolver derive
  /// their block order from, so their candidate sequences — and therefore
  /// their FP accumulation orders — are identical by construction.
  template <typename Fn>
  void ForEachNeighborCoord(const Int3& c, Fn&& fn) const {
    for (int32_t dz = off_lo[2]; dz <= off_hi[2]; ++dz) {
      int32_t z = c.z + dz;
      if (torus) {
        z = (z + num_boxes_axis.z) % num_boxes_axis.z;
      } else if (z < 0 || z >= num_boxes_axis.z) {
        continue;
      }
      for (int32_t dy = off_lo[1]; dy <= off_hi[1]; ++dy) {
        int32_t y = c.y + dy;
        if (torus) {
          y = (y + num_boxes_axis.y) % num_boxes_axis.y;
        } else if (y < 0 || y >= num_boxes_axis.y) {
          continue;
        }
        for (int32_t dx = off_lo[0]; dx <= off_hi[0]; ++dx) {
          int32_t x = c.x + dx;
          if (torus) {
            x = (x + num_boxes_axis.x) % num_boxes_axis.x;
          } else if (x < 0 || x >= num_boxes_axis.x) {
            continue;
          }
          fn(Int3{x, y, z});
        }
      }
    }
  }

  /// Flat indices of the 3x3x3 block around `c`, canonical order. `out`
  /// must hold 27 entries; returns the number filled.
  int NeighborBoxesOf(const Int3& c, size_t out[27]) const {
    int count = 0;
    ForEachNeighborCoord(c, [&](const Int3& nc) {
      out[count++] = FlatBoxIndex(nc);
    });
    return count;
  }
};

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_GRID_GEOMETRY_H_
