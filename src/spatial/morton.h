// 3D Morton (Z-order) encoding — the space-filling curve of the paper's
// Improvement II (Section IV-D, Fig. 6).
//
// The Z-value of a 3D point is the bitwise interleave of its (quantized)
// coordinates: x0 y0 z0 x1 y1 z1 ... Sorting agents by Z-value makes
// spatially-adjacent agents memory-adjacent, which is what turns the GPU
// kernel's scattered neighbor loads into coalesced, cache-friendly ones.
#ifndef BIOSIM_SPATIAL_MORTON_H_
#define BIOSIM_SPATIAL_MORTON_H_

#include <cstdint>

#include "core/math.h"

namespace biosim {

/// Spread the low 21 bits of `v` so that bit i moves to bit 3i
/// ("magic-number" bit tricks; 21 bits per axis fills a 63-bit key).
constexpr uint64_t MortonSpreadBits(uint64_t v) {
  v &= 0x1FFFFF;  // 21 bits
  v = (v | (v << 32)) & 0x1F00000000FFFFull;
  v = (v | (v << 16)) & 0x1F0000FF0000FFull;
  v = (v | (v << 8)) & 0x100F00F00F00F00Full;
  v = (v | (v << 4)) & 0x10C30C30C30C30C3ull;
  v = (v | (v << 2)) & 0x1249249249249249ull;
  return v;
}

/// Inverse of MortonSpreadBits.
constexpr uint64_t MortonCompactBits(uint64_t v) {
  v &= 0x1249249249249249ull;
  v = (v ^ (v >> 2)) & 0x10C30C30C30C30C3ull;
  v = (v ^ (v >> 4)) & 0x100F00F00F00F00Full;
  v = (v ^ (v >> 8)) & 0x1F0000FF0000FFull;
  v = (v ^ (v >> 16)) & 0x1F00000000FFFFull;
  v = (v ^ (v >> 32)) & 0x1FFFFF;
  return v;
}

/// Interleave three 21-bit coordinates into a 63-bit Z-value.
constexpr uint64_t MortonEncode(uint32_t x, uint32_t y, uint32_t z) {
  return MortonSpreadBits(x) | (MortonSpreadBits(y) << 1) |
         (MortonSpreadBits(z) << 2);
}

/// Recover the three coordinates from a Z-value.
constexpr void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y,
                            uint32_t* z) {
  *x = static_cast<uint32_t>(MortonCompactBits(code));
  *y = static_cast<uint32_t>(MortonCompactBits(code >> 1));
  *z = static_cast<uint32_t>(MortonCompactBits(code >> 2));
}

/// Z-value of a point: coordinates are quantized to `cell`-sized bins
/// relative to `origin`. Using the uniform-grid box length as `cell` makes
/// the curve order agents box-by-box along the Z-curve.
inline uint64_t MortonEncodePosition(const Double3& p, const Double3& origin,
                                     double cell) {
  auto q = [&](double v, double o) {
    double r = (v - o) / cell;
    return r <= 0.0 ? uint32_t{0} : static_cast<uint32_t>(r);
  };
  return MortonEncode(q(p.x, origin.x), q(p.y, origin.y), q(p.z, origin.z));
}

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_MORTON_H_
