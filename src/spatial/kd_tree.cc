#include "spatial/kd_tree.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace biosim {

void KdTreeEnvironment::Update(const ResourceManager& rm, const Param& param,
                               ExecMode mode) {
  if (param.EffectiveBoundary() == BoundaryMode::kTorus) {
    throw std::invalid_argument(
        "kd-tree environment does not support torus boundaries; use the "
        "uniform grid");
  }
  interaction_radius_ = rm.LargestDiameter() + param.interaction_radius_margin;

  // Step 1: build. Serial regardless of `mode` — this is the structural
  // property of the baseline that the paper's uniform grid removes. (A
  // parallel kd-tree build exists in the literature, but the baseline under
  // study does not have one.)
  size_t n = rm.size();
  indices_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    indices_[i] = i;
  }
  nodes_.clear();
  nodes_.reserve(n / leaf_size_ * 2 + 2);
  if (n > 0) {
    BuildNode(rm.positions(), 0, static_cast<uint32_t>(n));
  }

  // Step 2: search all agents' neighbors within the interaction radius and
  // cache the lists (the baseline's "searching" half of the neighborhood
  // update; parallel over agents).
  if (!cache_neighbor_lists_) {
    return;
  }
  scratch_.resize(n);
  ParallelFor(mode, n, [&](size_t i) {
    scratch_[i].clear();
    QueryTree(i, rm, interaction_radius_, [&](AgentIndex j, double d2) {
      scratch_[i].push_back({static_cast<uint32_t>(j), d2});
    });
  });
  offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + scratch_[i].size();
  }
  neighbors_.resize(offsets_[n]);
  ParallelFor(mode, n, [&](size_t i) {
    std::copy(scratch_[i].begin(), scratch_[i].end(),
              neighbors_.begin() + static_cast<ptrdiff_t>(offsets_[i]));
  });
}

uint32_t KdTreeEnvironment::BuildNode(const std::vector<Double3>& pos,
                                      uint32_t begin, uint32_t end) {
  uint32_t node_idx = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back({begin, end, kNoChild, 0, 0.0});

  if (end - begin <= leaf_size_) {
    return node_idx;  // leaf
  }

  // Split on the widest axis at the median.
  AABBd box;
  for (uint32_t i = begin; i < end; ++i) {
    box.Extend(pos[indices_[i]]);
  }
  Double3 size = box.Size();
  uint8_t axis = 0;
  if (size.y > size.x) {
    axis = 1;
  }
  if (size.z > size[axis]) {
    axis = 2;
  }

  uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(indices_.begin() + begin, indices_.begin() + mid,
                   indices_.begin() + end,
                   [&](uint32_t a, uint32_t b) { return pos[a][axis] < pos[b][axis]; });

  // Degenerate case: all coordinates equal on this axis -> keep as leaf to
  // guarantee termination.
  if (pos[indices_[mid]][axis] == pos[indices_[begin]][axis] &&
      pos[indices_[mid]][axis] == pos[indices_[end - 1]][axis]) {
    return node_idx;
  }

  nodes_[node_idx].axis = axis;
  nodes_[node_idx].split = pos[indices_[mid]][axis];

  // Preorder layout: left subtree immediately follows this node.
  BuildNode(pos, begin, mid);
  uint32_t right = BuildNode(pos, mid, end);
  nodes_[node_idx].right = right;
  return node_idx;
}

void KdTreeEnvironment::ForEachNeighborWithinRadius(AgentIndex query,
                                                    const ResourceManager& rm,
                                                    double radius,
                                                    NeighborFn fn) const {
  if (cache_neighbor_lists_ && query + 1 < offsets_.size()) {
    double r2 = radius * radius;
    for (size_t k = offsets_[query]; k < offsets_[query + 1]; ++k) {
      const CachedNeighbor& cn = neighbors_[k];
      if (cn.squared_distance <= r2) {
        fn(cn.index, cn.squared_distance);
      }
    }
    return;
  }
  QueryTree(query, rm, radius, fn);
}

void KdTreeEnvironment::QueryTree(AgentIndex query, const ResourceManager& rm,
                                  double radius, NeighborFn fn) const {
  if (nodes_.empty()) {
    return;
  }
  const auto& pos = rm.positions();
  const Double3 q = pos[query];
  const double r2 = radius * radius;

  // Explicit stack; depth is O(log n) but degenerate inputs are bounded by
  // 64 levels of median splits on 2^32 max agents anyway.
  uint32_t stack[96];
  size_t top = 0;
  stack[top++] = 0;

  while (top > 0) {
    const Node& node = nodes_[stack[--top]];
    if (node.right == kNoChild) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        uint32_t j = indices_[i];
        if (j == query) {
          continue;
        }
        double d2 = SquaredDistance(q, pos[j]);
        if (d2 <= r2) {
          fn(j, d2);
        }
      }
      continue;
    }
    double delta = q[node.axis] - node.split;
    // Visit the near side always; the far side only if the splitting plane
    // is within the radius.
    uint32_t left = static_cast<uint32_t>(&node - nodes_.data()) + 1;
    uint32_t near_child = delta < 0.0 ? left : node.right;
    uint32_t far_child = delta < 0.0 ? node.right : left;
    if (delta * delta <= r2) {
      assert(top < 95);
      stack[top++] = far_child;
    }
    assert(top < 95);
    stack[top++] = near_child;
  }
}

size_t KdTreeEnvironment::Depth() const {
  // Compute depth by walking the preorder layout.
  if (nodes_.empty()) {
    return 0;
  }
  struct Item {
    uint32_t node;
    size_t depth;
  };
  std::vector<Item> stack{{0, 1}};
  size_t max_depth = 1;
  while (!stack.empty()) {
    auto [ni, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[ni];
    if (node.right != kNoChild) {
      stack.push_back({ni + 1, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace biosim
