// Uniform grid environment: the paper's core CPU contribution (Section IV-A,
// Fig. 4 and Fig. 5).
//
// The simulation AABB is covered by cubic boxes of edge >= the interaction
// radius, so the neighborhood of any agent is contained in the 3x3x3 block of
// boxes around it. Per Fig. 5, each Box stores {start, length} and agents in
// the same box are chained through the grid-wide `successors_` linked list:
//
//     box.start -> successors_[box.start] -> ... (length hops)
//
// Insertion is one atomic exchange on box.start plus one atomic increment of
// box.length, so the build — unlike the kd-tree's — parallelizes perfectly.
// The same four arrays (box starts, box lengths, successors, box coordinates)
// are what the GPU kernels consume after a single H2D copy.
//
// Determinism contract (docs/determinism.md): after Update(), every box chain
// is canonicalized to ascending agent index, so ForEachNeighborWithinRadius
// visits neighbors in an order independent of thread interleaving and of the
// serial/parallel build mode. Downstream order-sensitive reductions (force
// accumulation in MechanicalForcesOp) are therefore bitwise reproducible
// across runs and thread counts.
//
// After canonicalization the chains are additionally flattened into a CSR
// layout (box_starts_ / box_agents_): box b's agents are the contiguous,
// ascending run box_agents_[box_starts_[b] .. box_starts_[b+1]). The fused
// CPU force kernel (docs/perf.md) streams these runs instead of chasing the
// linked chains; because the flattening preserves the canonical order, both
// traversals visit the identical (neighbor, d²) sequence.
//
// Incremental maintenance (docs/perf.md "Incremental grid rebuilds"): when
// the grid geometry and population are unchanged since the previous Update,
// only the agents that crossed a box boundary are re-binned — their boxes'
// chains are re-canonicalized from sorted membership deltas and the CSR is
// re-derived from the patched occupancy. Every patched structure is
// byte-identical to what a from-scratch rebuild would produce (the chains,
// the scan and the runs are all functions of the canonical per-box member
// sets alone), so PR 4's bitwise determinism contract is preserved; the
// property battery in tests/spatial/incremental_grid_test.cc compares the
// two paths structure-by-structure under random motion.
#ifndef BIOSIM_SPATIAL_UNIFORM_GRID_H_
#define BIOSIM_SPATIAL_UNIFORM_GRID_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "spatial/csr_grid_view.h"
#include "spatial/environment.h"
#include "spatial/grid_geometry.h"

namespace biosim {

class UniformGridEnvironment : public Environment {
 public:
  static constexpr int32_t kEmpty = -1;

  /// If `fixed_box_length` > 0, the grid always uses that box edge length
  /// instead of deriving it from the largest agent diameter (benchmark B
  /// keeps it fixed so the measured density sweep is exact).
  explicit UniformGridEnvironment(double fixed_box_length = 0.0)
      : fixed_box_length_(fixed_box_length) {}

  void Update(const ResourceManager& rm, const Param& param,
              ExecMode mode) override;

  void ForEachNeighborWithinRadius(AgentIndex query,
                                   const ResourceManager& rm, double radius,
                                   NeighborFn fn) const override;

  double interaction_radius() const override { return interaction_radius_; }
  const char* name() const override { return "uniform-grid"; }

  // --- raw grid state, consumed by the GPU offload and by tests ----------
  double box_length() const { return geometry_.box_length; }
  const Int3& num_boxes_axis() const { return geometry_.num_boxes_axis; }
  size_t total_boxes() const { return box_start_.size(); }
  const Double3& grid_min() const { return geometry_.grid_min; }

  /// The box lattice of the last Update (spatial/grid_geometry.h). Shards
  /// derive the identical lattice independently; tests compare the two.
  const GridGeometry& geometry() const { return geometry_; }

  /// First agent in box b, or kEmpty. Chains are canonical: ascending agent
  /// index, regardless of the build's thread interleaving.
  int32_t box_start(size_t b) const {
    return box_start_[b].load(std::memory_order_relaxed);
  }
  /// Number of agents in box b.
  int32_t box_count(size_t b) const {
    return box_count_[b].load(std::memory_order_relaxed);
  }
  const std::vector<int32_t>& successors() const { return successors_; }

  // --- CSR view of the canonicalized chains ------------------------------
  /// Exclusive prefix sum of box occupancy; size total_boxes() + 1.
  const std::vector<int32_t>& box_starts() const { return box_starts_; }
  /// Agent indices grouped by box, ascending within each box; size == number
  /// of agents. Box b owns [box_starts()[b], box_starts()[b + 1]).
  const std::vector<int32_t>& box_agents() const { return box_agents_; }

  /// Flat indices of the boxes covering the 3x3x3 block around box `c`, in
  /// the canonical (dz, dy, dx) enumeration order ForEachNeighborWithinRadius
  /// traverses them in: clamped at the domain faces, wrapped on a torus, and
  /// reduced on periodic axes with fewer than 3 boxes. `out` must hold 27
  /// entries; returns the number filled. Both neighbor traversals and the
  /// fused force kernel derive their box order from this single function, so
  /// their FP accumulation order is identical by construction.
  int NeighborBoxesOf(const Int3& c, size_t out[27]) const;

  /// CSR-based twin of ForEachNeighborWithinRadius: visits exactly the same
  /// (neighbor, d²) sequence, but by streaming box_agents_ runs instead of
  /// chasing the linked chains. Tests compare the two; the fused force
  /// kernel inlines this traversal.
  void ForEachNeighborWithinRadiusCsr(AgentIndex query,
                                      const ResourceManager& rm, double radius,
                                      NeighborFn fn) const;

  /// Flat box index of a position (clamped into the grid).
  size_t BoxIndexOf(const Double3& pos) const;
  Int3 BoxCoordinatesOf(const Double3& pos) const {
    return geometry_.BoxCoordinatesOf(pos);
  }
  /// Inverse of FlatBoxIndex.
  Int3 BoxCoordinatesOfIndex(size_t b) const {
    return geometry_.BoxCoordinatesOfIndex(b);
  }
  size_t FlatBoxIndex(const Int3& c) const {
    return geometry_.FlatBoxIndex(c);
  }

  /// Mean number of agents per non-empty box (diagnostics; benchmark B's
  /// density knob is validated against this).
  double MeanAgentsPerBox() const;

  /// Average neighbor count over a sample of agents at the interaction
  /// radius; this is the paper's "neighborhood density" n. A
  /// `sample_stride` of 0 is clamped to 1 (sample every agent).
  double MeanNeighborCount(const ResourceManager& rm,
                           size_t sample_stride = 1) const;

  /// Whether the current Update built a periodic (torus) grid.
  bool is_torus() const { return geometry_.torus; }

  /// Cumulative Update outcomes since construction (obs exports these as
  /// grid/* counters; the steady-state bench asserts the patched path
  /// actually ran).
  struct UpdateStats {
    /// Updates that rebuilt every box from scratch (geometry, bounds or
    /// population changed, the mover fraction crossed the fallback
    /// threshold, or incremental maintenance is disabled).
    uint64_t full_rebuilds = 0;
    /// Updates served by the incremental path (including no-op updates
    /// where no agent crossed a box boundary).
    uint64_t incremental_updates = 0;
    /// Box-crossing agents re-binned by the incremental path.
    uint64_t rebinned_agents = 0;
  };
  const UpdateStats& update_stats() const { return update_stats_; }

  /// The CSR arrays address agents with int32 offsets (the GPU offload
  /// consumes the same layout), so the exclusive scan's running accumulator
  /// would silently wrap past 2^31-1 agents. Throws std::length_error
  /// beyond that; called at the top of every Update and static so the guard
  /// path is unit-testable without allocating 2^31 agents.
  static void CheckCsrAgentCount(size_t n);

 private:
  /// Patch the existing grid for a population whose geometry is unchanged:
  /// detect box-crossers, rewrite only their boxes' chains from sorted
  /// membership deltas, and re-derive the CSR from the patched occupancy.
  /// Returns false (leaving all structures untouched) when the mover
  /// fraction makes a full rebuild cheaper; the caller then falls back.
  bool TryIncrementalUpdate(const ResourceManager& rm, ExecMode mode);

  double fixed_box_length_ = 0.0;
  double interaction_radius_ = 0.0;
  // The box lattice of the last Update (edge length, origin, axis counts,
  // torus wrap, reduced offsets): derived by GridGeometry::Derive — the same
  // function every spatial shard uses, so the two can never drift.
  GridGeometry geometry_;

  // Box::start and Box::length of Fig. 5, stored as parallel arrays (SoA, as
  // everywhere else) so they copy to the device as two flat buffers.
  std::vector<std::atomic<int32_t>> box_start_;
  std::vector<std::atomic<int32_t>> box_count_;
  std::vector<int32_t> successors_;
  // CSR flattening of the canonical chains (built by Update; see box_starts()).
  std::vector<int32_t> box_starts_;
  std::vector<int32_t> box_agents_;

  // Box of each agent row as of the previous Update (empty until the first
  // build); the incremental path diffs current positions against this.
  std::vector<int32_t> agent_box_;
  // Previous-generation CSR arrays: the incremental path retires the live
  // CSR into these (a swap, no allocation churn) so untouched boxes can
  // copy their old runs while the new offsets are being written.
  std::vector<int32_t> prev_box_starts_;
  std::vector<int32_t> prev_box_agents_;
  UpdateStats update_stats_;
};

/// CsrGridView neighbor resolver over the global grid: slot == flat box
/// index, so the resolver is exactly NeighborBoxesOf. Pure integer code —
/// safe to emit (and for the linker to fold) from any translation unit.
inline int GlobalGridNeighborSlots(const void* self, uint32_t slot,
                                   size_t out[27]) {
  const auto* grid = static_cast<const UniformGridEnvironment*>(self);
  return grid->NeighborBoxesOf(grid->BoxCoordinatesOfIndex(slot), out);
}

/// The fused kernels' view of the global grid (spatial/csr_grid_view.h).
/// Valid until the next Update reallocates the CSR arrays.
inline CsrGridView MakeCsrGridView(const UniformGridEnvironment& grid) {
  CsrGridView v;
  v.box_starts = grid.box_starts().data();
  v.box_agents = grid.box_agents().data();
  v.neighbor_slots = &GlobalGridNeighborSlots;
  v.self = &grid;
  return v;
}

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_UNIFORM_GRID_H_
