// Per-shard occupancy-compacted CSR over the shared box lattice.
//
// Each spatial shard bins its members — owned agents plus halo ghosts — with
// the SAME GridGeometry the global uniform grid derives, but stores only the
// occupied boxes: slot s is the s-th occupied window box, box_starts/
// box_agents are indexed by slot, and a dense slot map resolves a window box
// to its slot (or -1). Rebuilding therefore costs
// O(members log members + occupied boxes) per step, independent of the total
// box count — the global grid's CSR derivation pays O(total boxes) for the
// exclusive scan and refill every step, which at steady state (7M boxes for
// 128k agents in the shard bench) dominates the whole pipeline. This
// compaction is where the sharded speedup comes from (docs/sharding.md).
//
// Bitwise contract: within a box, members are stored ascending by global
// row — exactly the global grid's canonical run — and NeighborSlots
// enumerates the 3x3x3 block in the canonical (dz, dy, dx) order via the
// shared GridGeometry::ForEachNeighborCoord, skipping unoccupied boxes
// (which contribute no candidates). A fused force pass over this CSR
// therefore streams, for every owned box, the identical candidate values in
// the identical order as a pass over the global grid: the displacement of
// every owned row is bit-for-bit the unsharded one.
//
// The window covers the owned plane range plus one halo plane on each side
// (wrapped on a torus, clamped at open faces): every 27-block of an owned
// box resolves inside the window by construction.
#ifndef BIOSIM_SPATIAL_SHARD_GRID_H_
#define BIOSIM_SPATIAL_SHARD_GRID_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/math.h"
#include "spatial/csr_grid_view.h"
#include "spatial/grid_geometry.h"

namespace biosim {

class ShardGrid {
 public:
  /// (Re)build the window structures for the lattice and owned plane range
  /// [owned_begin, owned_end). O(window boxes); the shard runtime calls this
  /// only when the lattice or the partition changed — steady-state steps pay
  /// only Update().
  void Configure(const GridGeometry& geometry, int32_t owned_begin,
                 int32_t owned_end);

  /// Rebuild the compacted CSR for `members` (global agent rows, ascending,
  /// deduplicated: the shard's owned rows merged with its halo ghosts).
  /// Every member must bin into the shard window — a row outside it means
  /// the halo/migration protocol broke; throws std::logic_error.
  void Update(const std::vector<int32_t>& members, const Double3* positions);

  /// CSR view for the fused force kernels. Valid until the next Update().
  CsrGridView View() const {
    CsrGridView v;
    v.box_starts = starts_.data();
    v.box_agents = agents_.data();
    v.neighbor_slots = &ShardGrid::NeighborSlots;
    v.self = this;
    return v;
  }

  /// Occupied boxes in owned planes, as (window box, slot) pairs in
  /// ascending window-box order — the force pass's traversal list. Their
  /// resident runs contain exactly the shard's owned rows.
  const std::vector<std::pair<uint64_t, uint32_t>>& owned_boxes() const {
    return owned_boxes_;
  }

  size_t occupied_boxes() const { return occupied_wb_.size(); }
  const std::vector<int32_t>& box_starts() const { return starts_; }
  const std::vector<int32_t>& box_agents() const { return agents_; }
  const GridGeometry& geometry() const { return geometry_; }
  int32_t owned_begin() const { return owned_begin_; }
  int32_t owned_end() const { return owned_end_; }
  /// Number of z-planes in the window (owned + halo).
  size_t window_planes() const { return window_planes_.size(); }

  /// CsrGridView resolver: slots of the occupied boxes in the 3x3x3 block
  /// around `slot`'s box, canonical (dz, dy, dx) order.
  static int NeighborSlots(const void* self, uint32_t slot, size_t out[27]);

 private:
  GridGeometry geometry_;
  int32_t owned_begin_ = 0;
  int32_t owned_end_ = 0;
  /// Boxes per plane (nx * ny).
  size_t plane_size_ = 0;
  /// Global z-plane -> window plane index, -1 when outside the window.
  std::vector<int32_t> plane_to_window_;
  /// Window plane index -> global z-plane.
  std::vector<int32_t> window_planes_;
  /// Window box -> slot, -1 when empty. Only entries in occupied_wb_ are
  /// ever non-negative, so the per-step reset touches occupied boxes only.
  std::vector<int32_t> slot_of_;
  /// Slot -> window box, ascending.
  std::vector<uint64_t> occupied_wb_;
  std::vector<int32_t> starts_;
  std::vector<int32_t> agents_;
  std::vector<std::pair<uint64_t, uint32_t>> owned_boxes_;
  /// Binning scratch: (window box, row), reused across steps.
  std::vector<std::pair<uint64_t, int32_t>> bins_;
};

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_SHARD_GRID_H_
