// NullEnvironment: placeholder for pipelines whose mechanics backend builds
// its own spatial index (the GPU offload ports the uniform-grid construction
// to the device, so a host-side index would be dead work). Querying it is a
// programming error.
#ifndef BIOSIM_SPATIAL_NULL_ENVIRONMENT_H_
#define BIOSIM_SPATIAL_NULL_ENVIRONMENT_H_

#include <cassert>

#include "spatial/environment.h"

namespace biosim {

class NullEnvironment : public Environment {
 public:
  void Update(const ResourceManager& rm, const Param& param,
              ExecMode mode) override {
    (void)mode;
    interaction_radius_ = rm.LargestDiameter() + param.interaction_radius_margin;
  }

  void ForEachNeighborWithinRadius(AgentIndex, const ResourceManager&, double,
                                   NeighborFn) const override {
    assert(false &&
           "NullEnvironment cannot answer neighbor queries; use a kd-tree or "
           "uniform-grid environment");
  }

  double interaction_radius() const override { return interaction_radius_; }
  const char* name() const override { return "null"; }

 private:
  double interaction_radius_ = 0.0;
};

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_NULL_ENVIRONMENT_H_
