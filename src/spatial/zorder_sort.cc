#include "spatial/zorder_sort.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace biosim {

std::vector<AgentIndex> ZOrderPermutation(const std::vector<Double3>& positions,
                                          const Double3& origin, double cell,
                                          ExecMode mode) {
  size_t n = positions.size();
  std::vector<uint64_t> keys(n);
  ParallelFor(mode, n, [&](size_t i) {
    keys[i] = MortonEncodePosition(positions[i], origin, cell);
  });

  std::vector<AgentIndex> perm(n);
  std::iota(perm.begin(), perm.end(), AgentIndex{0});
  std::stable_sort(perm.begin(), perm.end(), [&](AgentIndex a, AgentIndex b) {
    return keys[a] < keys[b];
  });
  return perm;
}

std::vector<AgentIndex> SortAgentsByZOrder(ResourceManager& rm, double cell,
                                           ExecMode mode) {
  AABBd bounds = rm.Bounds();
  if (!bounds.Valid() || cell <= 0.0) {
    // Nothing to sort (empty population) or degenerate cell size.
    std::vector<AgentIndex> identity(rm.size());
    std::iota(identity.begin(), identity.end(), AgentIndex{0});
    return identity;
  }
  auto perm = ZOrderPermutation(rm.positions(), bounds.min, cell, mode);
  rm.ApplyPermutation(perm);
  return perm;
}

double MeanNeighborRowDistance(const std::vector<Double3>& positions,
                               double radius) {
  size_t n = positions.size();
  double r2 = radius * radius;
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (SquaredDistance(positions[i], positions[j]) <= r2) {
        sum += static_cast<double>(j - i);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

}  // namespace biosim
