#include "spatial/shard_partition.h"

#include <stdexcept>
#include <string>

namespace biosim {

ShardPartition ShardPartition::Split(uint32_t shards, int32_t planes,
                                     ShardBalance balance,
                                     const std::vector<uint64_t>& plane_load) {
  if (shards == 0) {
    throw std::invalid_argument("ShardPartition: shard count must be >= 1");
  }
  if (static_cast<int64_t>(shards) > static_cast<int64_t>(planes)) {
    // The domain cannot be cut finer than the box lattice: each shard owns
    // at least one full z-plane (the halo protocol ships face planes).
    // Satellite fix of ISSUE 10 — reject loudly instead of producing empty
    // shards whose halo exchange would silently drop neighbors.
    throw std::invalid_argument(
        "ShardPartition: " + std::to_string(shards) +
        " shards exceed the " + std::to_string(planes) +
        " z-planes of the box lattice (domain extent / box length); reduce "
        "the shard count or enlarge the domain");
  }

  ShardPartition p;
  p.shards = shards;
  p.planes = planes;
  p.plane_begin.resize(shards + 1);
  p.plane_begin[0] = 0;
  p.plane_begin[shards] = planes;

  if (balance == ShardBalance::kStatic || plane_load.empty()) {
    for (uint32_t k = 1; k < shards; ++k) {
      p.plane_begin[k] = static_cast<int32_t>(
          static_cast<int64_t>(k) * static_cast<int64_t>(planes) /
          static_cast<int64_t>(shards));
    }
  } else {
    if (plane_load.size() != static_cast<size_t>(planes)) {
      throw std::invalid_argument(
          "ShardPartition: plane_load has " +
          std::to_string(plane_load.size()) + " entries for " +
          std::to_string(planes) + " planes");
    }
    // Greedy prefix walk: shard k keeps taking planes until it reaches its
    // equal share of the load not yet assigned, clamped so every remaining
    // shard still gets at least one plane. Deterministic: a pure function
    // of the histogram.
    uint64_t remaining_load = 0;
    for (uint64_t v : plane_load) {
      remaining_load += v;
    }
    int32_t plane = 0;
    for (uint32_t k = 0; k + 1 < shards; ++k) {
      const uint32_t shards_left = shards - k;
      const int32_t max_end =
          planes - static_cast<int32_t>(shards_left - 1);
      const uint64_t target =
          (remaining_load + shards_left - 1) / shards_left;
      uint64_t taken = 0;
      int32_t end = plane;
      while (end < max_end && (end == plane || taken < target)) {
        taken += plane_load[static_cast<size_t>(end)];
        ++end;
      }
      remaining_load -= taken;
      plane = end;
      p.plane_begin[k + 1] = end;
    }
  }

  p.plane_owner.resize(static_cast<size_t>(planes));
  for (uint32_t k = 0; k < shards; ++k) {
    for (int32_t z = p.plane_begin[k]; z < p.plane_begin[k + 1]; ++z) {
      p.plane_owner[static_cast<size_t>(z)] = static_cast<int32_t>(k);
    }
  }
  return p;
}

}  // namespace biosim
