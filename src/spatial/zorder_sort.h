// Z-order sorting of the agent SoA arrays (host side of Improvement II).
//
// Computes the Morton key of every agent, argsorts, and applies the
// permutation to the ResourceManager. Also provides a locality metric used
// by tests and the ablation bench to show that the sort actually improves
// spatial-to-memory locality.
#ifndef BIOSIM_SPATIAL_ZORDER_SORT_H_
#define BIOSIM_SPATIAL_ZORDER_SORT_H_

#include <vector>

#include "core/resource_manager.h"
#include "core/thread_pool.h"
#include "spatial/morton.h"

namespace biosim {

/// Permutation that sorts agents by the Morton key of their position,
/// quantized to `cell`-sized bins from `origin`. Ties (same box) keep their
/// relative order (stable), so repeated sorting is idempotent.
std::vector<AgentIndex> ZOrderPermutation(const std::vector<Double3>& positions,
                                          const Double3& origin, double cell,
                                          ExecMode mode = ExecMode::kParallel);

/// Sort all agent attribute arrays by Z-order in place. Returns the applied
/// permutation (new row i held old row perm[i]). Invalidates row indices.
std::vector<AgentIndex> SortAgentsByZOrder(ResourceManager& rm, double cell,
                                           ExecMode mode = ExecMode::kParallel);

/// Mean |row(i) - row(j)| over all neighbor pairs within `radius`, brute
/// force — a direct measure of how memory-far neighbors are. Lower is
/// better; Z-order sorting should reduce it by a large factor. O(n²): tests
/// and ablations only.
double MeanNeighborRowDistance(const std::vector<Double3>& positions,
                               double radius);

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_ZORDER_SORT_H_
