#include "spatial/grid_geometry.h"

#include <stdexcept>
#include <string>

#include "core/param.h"
#include "core/resource_manager.h"

namespace biosim {

GridGeometry GridGeometry::Derive(const ResourceManager& rm,
                                  const Param& param,
                                  double fixed_box_length) {
  GridGeometry g;
  g.interaction_radius =
      rm.LargestDiameter() + param.interaction_radius_margin;

  if (rm.size() == 0) {
    // Degenerate population: a single empty box (a zero interaction radius
    // would otherwise explode the box count over the fallback bounds).
    g.grid_min = {0, 0, 0};
    g.box_length = fixed_box_length > 0.0 ? fixed_box_length : 1.0;
    g.inv_box_length = 1.0 / g.box_length;
    g.num_boxes_axis = {1, 1, 1};
    g.torus = false;
    return g;
  }

  g.box_length = fixed_box_length > 0.0
                     ? fixed_box_length
                     : std::max(g.interaction_radius, 1e-6);

  g.torus = param.EffectiveBoundary() == BoundaryMode::kTorus;
  if (g.torus) {
    // Periodic grid: cover [min_bound, max_bound) exactly with boxes no
    // smaller than the interaction radius, so the wrapped 27-box scheme
    // still sees every neighbor.
    g.edge = param.SpaceEdge();
    int32_t nb = std::max<int32_t>(
        1, static_cast<int32_t>(std::floor(g.edge / g.box_length)));
    g.box_length = g.edge / static_cast<double>(nb);
    g.grid_min = {param.min_bound, param.min_bound, param.min_bound};
    g.num_boxes_axis = {nb, nb, nb};
  } else {
    AABBd bounds = rm.Bounds();
    g.grid_min = bounds.min;
    Double3 size = bounds.Size();
    auto axis_boxes = [&](double extent) {
      return static_cast<int32_t>(std::floor(extent / g.box_length)) + 1;
    };
    g.num_boxes_axis = {axis_boxes(size.x), axis_boxes(size.y),
                        axis_boxes(size.z)};
  }
  g.inv_box_length = 1.0 / g.box_length;

  if (fixed_box_length > 0.0 &&
      g.interaction_radius > fixed_box_length + 1e-12) {
    // The 27-box scheme only covers queries up to one box length. A fixed
    // box edge smaller than the interaction radius would silently drop
    // neighbors in every force evaluation; fail fast instead.
    throw std::invalid_argument(
        "GridGeometry: fixed_box_length " + std::to_string(fixed_box_length) +
        " is smaller than the interaction radius " +
        std::to_string(g.interaction_radius) +
        "; queries would drop neighbors outside the 27 surrounding boxes");
  }

  // Hoist the per-axis offset ranges ({-1,0,1} normally, reduced when a
  // periodic axis has fewer than 3 boxes so a wrapped offset cannot revisit
  // the same box) out of the traversals: they are grid-shape constants.
  auto axis_offsets = [&](int axis, int32_t nb) {
    if (!g.torus || nb >= 3) {
      g.off_lo[axis] = -1;
      g.off_hi[axis] = 1;
    } else if (nb == 2) {
      g.off_lo[axis] = -1;
      g.off_hi[axis] = 0;
    } else {
      g.off_lo[axis] = 0;
      g.off_hi[axis] = 0;
    }
  };
  axis_offsets(0, g.num_boxes_axis.x);
  axis_offsets(1, g.num_boxes_axis.y);
  axis_offsets(2, g.num_boxes_axis.z);
  return g;
}

}  // namespace biosim
