// A minimal, backend-neutral view of a CSR box layout for the fused force
// kernels.
//
// The scalar and SIMD force passes only ever touch three things: the
// exclusive-scan offsets, the member rows, and "which slots form the 3x3x3
// block around slot s". The global uniform grid satisfies that with slot ==
// flat box index; a spatial shard satisfies it with slot == occupied-box
// index into its occupancy-compacted CSR (spatial/shard_grid.h). Handing the
// kernels this view instead of a UniformGridEnvironment& means ONE compiled
// kernel body serves both — which is precisely what makes the sharded force
// pass bitwise-identical to the unsharded one: same instructions, same
// candidate values in the same canonical order (docs/sharding.md).
//
// The neighbor resolver is a plain function pointer (not std::function, not
// virtual — biosim-lint's hot-loop rule stays happy), called once per box,
// never per candidate. It must enumerate present slots in the canonical
// (dz, dy, dx) block order of GridGeometry::ForEachNeighborCoord; resolvers
// may skip boxes with no members, since an empty box contributes nothing to
// the candidate stream.
#ifndef BIOSIM_SPATIAL_CSR_GRID_VIEW_H_
#define BIOSIM_SPATIAL_CSR_GRID_VIEW_H_

#include <cstddef>
#include <cstdint>

namespace biosim {

struct CsrGridView {
  /// Exclusive prefix sum over slots; size = slot count + 1.
  const int32_t* box_starts = nullptr;
  /// Agent rows grouped by slot, ascending within each slot.
  const int32_t* box_agents = nullptr;
  /// Fill `out` with the slots of the (up to 27) neighbor boxes of `slot`,
  /// canonical (dz, dy, dx) order; returns the count. `self` is the backing
  /// structure the resolver reads.
  int (*neighbor_slots)(const void* self, uint32_t slot,
                        size_t out[27]) = nullptr;
  const void* self = nullptr;
};

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_CSR_GRID_VIEW_H_
