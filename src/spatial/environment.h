// Environment: the neighborhood-search abstraction.
//
// BioDynaMo calls the spatial index the "environment". The paper swaps one
// implementation (kd-tree) for another (uniform grid) behind exactly this
// interface, then moves the uniform-grid traversal onto the GPU. Both CPU
// implementations live in this module; the device-side one in src/gpu/.
#ifndef BIOSIM_SPATIAL_ENVIRONMENT_H_
#define BIOSIM_SPATIAL_ENVIRONMENT_H_

#include <cstddef>

#include "core/agent_uid.h"
#include "core/function_ref.h"
#include "core/param.h"
#include "core/resource_manager.h"
#include "core/thread_pool.h"

namespace biosim {

/// Callback invoked per neighbor: (neighbor row index, squared distance).
using NeighborFn = FunctionRef<void(AgentIndex, double)>;

class Environment {
 public:
  virtual ~Environment() = default;

  /// Rebuild the index from the current agent positions. Called once per
  /// timestep, after structural changes are committed and before the
  /// mechanical operation runs. `mode` selects serial vs parallel build —
  /// the serial-kd-tree vs parallel-UG build difference is a headline result
  /// of the paper (the 4.3x multithreaded gap of Fig. 8).
  virtual void Update(const ResourceManager& rm, const Param& param,
                      ExecMode mode) = 0;

  /// Invoke `fn` for every agent within `radius` of agent `query` (excluding
  /// `query` itself). Requires Update() to have been called for the current
  /// agent configuration.
  virtual void ForEachNeighborWithinRadius(AgentIndex query,
                                           const ResourceManager& rm,
                                           double radius,
                                           NeighborFn fn) const = 0;

  /// Interaction radius the index was built for (= largest agent diameter +
  /// margin). Queries with a larger radius are out of contract for the
  /// uniform grid (it only visits the 27 surrounding boxes) and throw
  /// std::invalid_argument rather than silently dropping neighbors.
  virtual double interaction_radius() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace biosim

#endif  // BIOSIM_SPATIAL_ENVIRONMENT_H_
