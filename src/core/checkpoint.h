// Binary checkpoint / restore of a simulation population.
//
// Saves the full SoA state (all attribute arrays + uid counter) so long
// runs can be resumed or benchmark populations shipped. The format is a
// small versioned binary layout — magic, version, count, then each array —
// with explicit little-endian 64-bit sizes so files are portable between
// builds.
//
// Behaviors are *not* serialized (they are arbitrary code); after restore,
// re-attach behaviors model-side. This matches how agent-based frameworks
// usually treat checkpoints: state is data, programs are code.
#ifndef BIOSIM_CORE_CHECKPOINT_H_
#define BIOSIM_CORE_CHECKPOINT_H_

#include <string>

#include "core/resource_manager.h"

namespace biosim {

/// Write the population to `path`. Returns false on I/O failure.
bool SaveCheckpoint(const ResourceManager& rm, const std::string& path);

/// Replace `rm`'s population with the checkpoint's. Returns false on I/O
/// failure or format mismatch (in which case `rm` is left unchanged).
bool LoadCheckpoint(ResourceManager* rm, const std::string& path);

}  // namespace biosim

#endif  // BIOSIM_CORE_CHECKPOINT_H_
