#include "core/export.h"

#include <cstdio>

namespace biosim {

namespace {

/// fopen/fclose RAII so every early return still closes the stream.
struct File {
  explicit File(const std::string& path) : f(std::fopen(path.c_str(), "w")) {}
  ~File() {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
  std::FILE* f;
};

}  // namespace

bool ExportCellsCsv(const ResourceManager& rm, const std::string& path) {
  File out(path);
  if (out.f == nullptr) {
    return false;
  }
  std::fprintf(out.f, "uid,x,y,z,diameter,volume,adherence\n");
  for (size_t i = 0; i < rm.size(); ++i) {
    const Double3& p = rm.positions()[i];
    std::fprintf(out.f, "%llu,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                 static_cast<unsigned long long>(rm.uids()[i]), p.x, p.y, p.z,
                 rm.diameters()[i], rm.volumes()[i], rm.adherences()[i]);
  }
  return std::ferror(out.f) == 0;
}

bool ExportCellsVtk(const ResourceManager& rm, const std::string& path) {
  File out(path);
  if (out.f == nullptr) {
    return false;
  }
  size_t n = rm.size();
  std::fprintf(out.f,
               "# vtk DataFile Version 3.0\n"
               "biosim cell population\n"
               "ASCII\n"
               "DATASET POLYDATA\n"
               "POINTS %zu double\n",
               n);
  for (size_t i = 0; i < n; ++i) {
    const Double3& p = rm.positions()[i];
    std::fprintf(out.f, "%.9g %.9g %.9g\n", p.x, p.y, p.z);
  }
  std::fprintf(out.f, "POINT_DATA %zu\n", n);

  std::fprintf(out.f, "SCALARS diameter double 1\nLOOKUP_TABLE default\n");
  for (size_t i = 0; i < n; ++i) {
    std::fprintf(out.f, "%.9g\n", rm.diameters()[i]);
  }
  std::fprintf(out.f, "SCALARS volume double 1\nLOOKUP_TABLE default\n");
  for (size_t i = 0; i < n; ++i) {
    std::fprintf(out.f, "%.9g\n", rm.volumes()[i]);
  }
  std::fprintf(out.f, "SCALARS uid unsigned_long 1\nLOOKUP_TABLE default\n");
  for (size_t i = 0; i < n; ++i) {
    std::fprintf(out.f, "%llu\n",
                 static_cast<unsigned long long>(rm.uids()[i]));
  }
  return std::ferror(out.f) == 0;
}

}  // namespace biosim
