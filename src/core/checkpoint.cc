#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>

namespace biosim {

namespace {

constexpr char kMagic[8] = {'B', 'I', 'O', 'S', 'I', 'M', 'C', 'K'};
constexpr uint64_t kVersion = 1;

struct Writer {
  explicit Writer(const std::string& path)
      : f(std::fopen(path.c_str(), "wb")) {}
  ~Writer() {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
  bool ok() const { return f != nullptr && !failed; }

  /// Every write is checked: a short fwrite (full disk, I/O error) latches
  /// `failed`, so SaveCheckpoint reports the error instead of leaving a
  /// silently truncated file that only fails at load time.
  void Bytes(const void* data, size_t size, size_t count) {
    if (failed || f == nullptr) {
      return;
    }
    if (count != 0 && std::fwrite(data, size, count, f) != count) {
      failed = true;
    }
  }
  void U64(uint64_t v) {
    // Explicit little-endian bytes: files are portable across hosts.
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    Bytes(b, 1, 8);
  }
  void Doubles(const std::vector<double>& v) {
    U64(v.size());
    // Empty vector data() may be null; Bytes skips the null fwrite (UB).
    Bytes(v.data(), sizeof(double), v.size());
  }
  void Vec3s(const std::vector<Double3>& v) {
    U64(v.size());
    Bytes(v.data(), sizeof(Double3), v.size());
  }

  /// Flush and close, surfacing errors the buffered writes deferred (an
  /// ENOSPC often only shows up at fflush/fclose). Returns overall success.
  bool Close() {
    if (f == nullptr) {
      return false;
    }
    if (std::fflush(f) != 0 || std::ferror(f) != 0) {
      failed = true;
    }
    if (std::fclose(f) != 0) {
      failed = true;
    }
    f = nullptr;
    return !failed;
  }

  std::FILE* f;
  bool failed = false;
};

struct Reader {
  explicit Reader(const std::string& path)
      : f(std::fopen(path.c_str(), "rb")) {}
  ~Reader() {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
  bool ok() const { return f != nullptr && !failed; }

  uint64_t U64() {
    unsigned char b[8];
    if (std::fread(b, 1, 8, f) != 8) {
      failed = true;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(b[i]) << (8 * i);
    }
    return v;
  }
  std::vector<double> Doubles(uint64_t expected) {
    uint64_t n = U64();
    if (failed || n != expected) {
      failed = true;
      return {};
    }
    std::vector<double> v(n);
    if (n != 0 && std::fread(v.data(), sizeof(double), n, f) != n) {
      failed = true;
    }
    return v;
  }
  std::vector<Double3> Vec3s(uint64_t expected) {
    uint64_t n = U64();
    if (failed || n != expected) {
      failed = true;
      return {};
    }
    std::vector<Double3> v(n);
    if (n != 0 && std::fread(v.data(), sizeof(Double3), n, f) != n) {
      failed = true;
    }
    return v;
  }

  std::FILE* f;
  bool failed = false;
};

}  // namespace

bool SaveCheckpoint(const ResourceManager& rm, const std::string& path) {
  Writer w(path);
  if (!w.ok()) {
    return false;
  }
  w.Bytes(kMagic, 1, sizeof(kMagic));
  w.U64(kVersion);
  w.U64(rm.size());
  w.Vec3s(rm.positions());
  w.Doubles(rm.diameters());
  w.Doubles(rm.volumes());
  w.Doubles(rm.adherences());
  w.Doubles(rm.densities());
  w.Vec3s(rm.tractor_forces());
  w.U64(rm.uids().size());
  w.Bytes(rm.uids().data(), sizeof(AgentUid), rm.uids().size());
  w.U64(rm.next_uid());
  return w.Close();
}

bool LoadCheckpoint(ResourceManager* rm, const std::string& path) {
  Reader r(path);
  if (!r.ok()) {
    return false;
  }
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), r.f) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  if (r.U64() != kVersion) {
    return false;
  }
  uint64_t n = r.U64();

  auto positions = r.Vec3s(n);
  auto diameters = r.Doubles(n);
  auto volumes = r.Doubles(n);
  auto adherences = r.Doubles(n);
  auto densities = r.Doubles(n);
  auto tractor = r.Vec3s(n);
  uint64_t uid_count = r.U64();
  if (r.failed || uid_count != n) {
    return false;
  }
  std::vector<AgentUid> uids(n);
  if (n != 0 && std::fread(uids.data(), sizeof(AgentUid), n, r.f) != n) {
    return false;
  }
  AgentUid next_uid = r.U64();
  if (r.failed) {
    return false;
  }

  rm->RestorePopulation(std::move(positions), std::move(diameters),
                        std::move(volumes), std::move(adherences),
                        std::move(densities), std::move(tractor),
                        std::move(uids), next_uid);
  return true;
}

}  // namespace biosim
