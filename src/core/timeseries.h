// Per-step metric recording.
//
// Models register named metric callbacks; the recorder samples them each
// step (or every k steps) and writes a CSV for plotting. Used by the
// examples to trace population growth, substance levels, etc. without
// hand-rolled printf loops.
#ifndef BIOSIM_CORE_TIMESERIES_H_
#define BIOSIM_CORE_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace biosim {

class Simulation;

class TimeSeriesRecorder {
 public:
  using Metric = std::function<double(Simulation&)>;

  /// Record every `interval` steps (1 = every step).
  explicit TimeSeriesRecorder(uint64_t interval = 1) : interval_(interval) {}

  /// Register a metric column. Names must be unique and CSV-safe.
  void AddMetric(std::string name, Metric metric);

  /// Sample all metrics if `sim.step()` is on the interval.
  void Record(Simulation& sim);

  size_t num_rows() const { return steps_.size(); }
  const std::vector<std::string>& metric_names() const { return names_; }
  const std::vector<uint64_t>& steps() const { return steps_; }
  /// Values of column `metric` across rows.
  std::vector<double> Column(const std::string& metric) const;
  /// Value at (row, column-name); throws std::out_of_range on bad names.
  double At(size_t row, const std::string& metric) const;

  /// Write "step,<metric...>" CSV; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  size_t IndexOf(const std::string& metric) const;

  uint64_t interval_;
  std::vector<std::string> names_;
  std::vector<Metric> metrics_;
  std::vector<uint64_t> steps_;
  std::vector<std::vector<double>> rows_;
};

/// Stock metrics.
namespace metrics {
double PopulationSize(Simulation& sim);
double MeanDiameter(Simulation& sim);
double TotalVolume(Simulation& sim);
double BoundingBoxVolume(Simulation& sim);
}  // namespace metrics

}  // namespace biosim

#endif  // BIOSIM_CORE_TIMESERIES_H_
