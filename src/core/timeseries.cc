#include "core/timeseries.h"

#include <cstdio>
#include <stdexcept>

#include "core/simulation.h"

namespace biosim {

void TimeSeriesRecorder::AddMetric(std::string name, Metric metric) {
  for (const auto& existing : names_) {
    if (existing == name) {
      throw std::invalid_argument("duplicate metric name: " + name);
    }
  }
  names_.push_back(std::move(name));
  metrics_.push_back(std::move(metric));
}

void TimeSeriesRecorder::Record(Simulation& sim) {
  if (interval_ == 0 || sim.step() % interval_ != 0) {
    return;
  }
  steps_.push_back(sim.step());
  std::vector<double> row;
  row.reserve(metrics_.size());
  for (auto& m : metrics_) {
    row.push_back(m(sim));
  }
  rows_.push_back(std::move(row));
}

size_t TimeSeriesRecorder::IndexOf(const std::string& metric) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == metric) {
      return i;
    }
  }
  throw std::out_of_range("unknown metric: " + metric);
}

std::vector<double> TimeSeriesRecorder::Column(
    const std::string& metric) const {
  size_t idx = IndexOf(metric);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    out.push_back(row[idx]);
  }
  return out;
}

double TimeSeriesRecorder::At(size_t row, const std::string& metric) const {
  return rows_.at(row)[IndexOf(metric)];
}

bool TimeSeriesRecorder::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "step");
  for (const auto& name : names_) {
    std::fprintf(f, ",%s", name.c_str());
  }
  std::fprintf(f, "\n");
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::fprintf(f, "%llu", static_cast<unsigned long long>(steps_[r]));
    for (double v : rows_[r]) {
      std::fprintf(f, ",%.9g", v);
    }
    std::fprintf(f, "\n");
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

namespace metrics {

double PopulationSize(Simulation& sim) {
  return static_cast<double>(sim.rm().size());
}

double MeanDiameter(Simulation& sim) {
  if (sim.rm().empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double d : sim.rm().diameters()) {
    sum += d;
  }
  return sum / static_cast<double>(sim.rm().size());
}

double TotalVolume(Simulation& sim) { return sim.rm().TotalVolume(); }

double BoundingBoxVolume(Simulation& sim) {
  AABBd b = sim.rm().Bounds();
  if (!b.Valid()) {
    return 0.0;
  }
  Double3 s = b.Size();
  return s.x * s.y * s.z;
}

}  // namespace metrics
}  // namespace biosim
