// Rank-style in-process message transport for the sharded pipeline.
//
// The sharded step is written as if each shard were an MPI rank: shards
// exchange typed buffers (halo ghosts, migration payloads) through Send/Recv
// on (source, destination, tag) channels and synchronize with Barrier().
// This keeps the halo protocol explicit — a shard can only learn about
// another shard's agents through a message it can count and byte-size — so
// the cross-shard data flow is auditable (shard/<k>/ghosts_shipped metrics)
// and a future distributed backend can drop in a real transport behind the
// same calls.
//
// Delivery is deterministic: each (src, dst, tag) channel is an independent
// FIFO, so a receiver always drains messages in the sender's send order, and
// which messages exist depends only on simulation state, never on thread
// scheduling. The mutex serializes map access only; it cannot reorder a
// channel.
#ifndef BIOSIM_CORE_COMMUNICATOR_H_
#define BIOSIM_CORE_COMMUNICATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace biosim {

class Communicator {
 public:
  explicit Communicator(uint32_t ranks) : ranks_(ranks) {}

  uint32_t ranks() const { return ranks_; }

  /// Enqueue `payload` on the (src, dst, tag) channel. The payload is moved
  /// into a type-erased slot; Recv with a mismatched T throws.
  template <typename T>
  void Send(uint32_t src, uint32_t dst, int tag, std::vector<T> payload) {
    CheckRank(src, "Send src");
    CheckRank(dst, "Send dst");
    Message m;
    m.type = TypeTag<T>();
    m.bytes = payload.size() * sizeof(T);
    const size_t bytes = m.bytes;
    m.payload = std::make_shared<std::vector<T>>(std::move(payload));
    {
      std::lock_guard<std::mutex> lock(mu_);
      channels_[Key(src, dst, tag)].push_back(std::move(m));
    }
    ++messages_sent_;
    bytes_sent_ += bytes;
  }

  /// Dequeue the oldest message on the (src, dst, tag) channel. Throws
  /// std::logic_error when the channel is empty (the sharded step's phases
  /// are barrier-separated, so a missing message is a protocol bug, not a
  /// race) or when the payload type differs from the Send.
  template <typename T>
  std::vector<T> Recv(uint32_t src, uint32_t dst, int tag) {
    CheckRank(src, "Recv src");
    CheckRank(dst, "Recv dst");
    Message m;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = channels_.find(Key(src, dst, tag));
      if (it == channels_.end() || it->second.empty()) {
        throw std::logic_error("Communicator: Recv on empty channel " +
                               std::to_string(src) + "->" +
                               std::to_string(dst) + " tag " +
                               std::to_string(tag));
      }
      m = std::move(it->second.front());
      it->second.pop_front();
    }
    if (m.type != TypeTag<T>()) {
      throw std::logic_error("Communicator: Recv type mismatch on channel " +
                             std::to_string(src) + "->" + std::to_string(dst) +
                             " tag " + std::to_string(tag));
    }
    auto* vec = static_cast<std::vector<T>*>(m.payload.get());
    return std::move(*vec);
  }

  /// Whether a message is pending on the channel.
  bool HasMessage(uint32_t src, uint32_t dst, int tag) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(Key(src, dst, tag));
    return it != channels_.end() && !it->second.empty();
  }

  /// Rendezvous for all ranks. The sharded step drives shards from a
  /// ParallelFor, so each rank's lambda calls Barrier() at phase edges; the
  /// caller must guarantee all ranks reach it (spin-wait, 1-CPU safe via
  /// yield).
  void Barrier();

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  /// Undelivered messages across all channels (protocol leak detector).
  size_t PendingMessages() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [key, q] : channels_) {
      n += q.size();
    }
    return n;
  }

 private:
  struct Message {
    const void* type = nullptr;
    std::shared_ptr<void> payload;
    size_t bytes = 0;
  };

  /// Unique per-T address, stable across TUs (inline variable).
  template <typename T>
  static const void* TypeTag() {
    static const char tag = 0;
    return &tag;
  }

  static uint64_t Key(uint32_t src, uint32_t dst, int tag) {
    return (static_cast<uint64_t>(src) << 40) |
           (static_cast<uint64_t>(dst) << 16) |
           static_cast<uint64_t>(static_cast<uint16_t>(tag));
  }

  void CheckRank(uint32_t r, const char* what) const {
    if (r >= ranks_) {
      throw std::out_of_range("Communicator: " + std::string(what) + " " +
                              std::to_string(r) + " >= ranks " +
                              std::to_string(ranks_));
    }
  }

  const uint32_t ranks_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::deque<Message>> channels_;
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};

  // Phase-counting barrier state.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  uint32_t barrier_arrived_ = 0;
  uint64_t barrier_phase_ = 0;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_COMMUNICATOR_H_
