// Non-owning callable reference (std::function_ref is C++26; this is the
// usual minimal backport). Used for neighbor-iteration callbacks, which run
// millions of times per step and must not allocate or type-erase through
// std::function.
#ifndef BIOSIM_CORE_FUNCTION_REF_H_
#define BIOSIM_CORE_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace biosim {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): by design
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace biosim

#endif  // BIOSIM_CORE_FUNCTION_REF_H_
