// Population export for visualization and post-processing.
//
// The paper's Fig. 2 is a rendered snapshot of the cell-division model
// (colored by diameter); these writers produce the equivalent data in two
// portable formats:
//
//   CSV         -- one row per cell (position, diameter, volume, uid), for
//                  pandas/R post-processing of benchmark populations.
//   legacy VTK  -- POLYDATA points with diameter/volume/uid point data,
//                  loadable directly in ParaView (use a Glyph/sphere filter
//                  scaled by the "diameter" array to reproduce Fig. 2).
#ifndef BIOSIM_CORE_EXPORT_H_
#define BIOSIM_CORE_EXPORT_H_

#include <string>

#include "core/resource_manager.h"

namespace biosim {

/// Write the population as CSV; returns false on I/O failure.
bool ExportCellsCsv(const ResourceManager& rm, const std::string& path);

/// Write the population as a legacy-VTK point cloud; returns false on I/O
/// failure.
bool ExportCellsVtk(const ResourceManager& rm, const std::string& path);

}  // namespace biosim

#endif  // BIOSIM_CORE_EXPORT_H_
