// Fixed-footprint log-bucketed histogram for latency/size distributions.
//
// Shared by the scheduler profiler (per-operation step times) and the
// observability metrics registry (src/obs/metrics.h): one Add per sample,
// no allocation, and percentiles that are exact to within one geometric
// bucket (~7% relative error) — plenty for p50/p95 of wall times while
// keeping the hot path to an increment.
#ifndef BIOSIM_CORE_HISTOGRAM_H_
#define BIOSIM_CORE_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace biosim {

/// Non-negative samples land in geometric buckets: bucket 0 holds
/// [0, kFirstBound), bucket i holds [kFirstBound*G^(i-1), kFirstBound*G^i).
/// With kFirstBound = 1e-6 and G = 2^(1/4) the 128 buckets span 1e-6 .. ~3e3
/// (microseconds to tens of minutes when samples are milliseconds).
class Histogram {
 public:
  static constexpr size_t kBuckets = 128;

  void Add(double v) {
    if (!(v >= 0.0)) {  // negative or NaN: clamp, a timer can't go back
      v = 0.0;
    }
    count_ += 1;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    buckets_[BucketOf(v)] += 1;
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at quantile q in [0,1] (q=0.5 is the median). Interpolated at the
  /// geometric midpoint of the bucket the rank falls in, clamped to the
  /// exact observed min/max so single-sample histograms report exactly.
  double Percentile(double q) const {
    if (count_ == 0) {
      return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) {
        return std::clamp(BucketMid(i), min_, max_);
      }
    }
    return max_;
  }

  /// Combine another histogram's distribution into this one (registry merge
  /// semantics: counts add, extrema widen, buckets add element-wise).
  void Merge(const Histogram& o) {
    if (o.count_ == 0) {
      return;
    }
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    for (size_t i = 0; i < kBuckets; ++i) {
      buckets_[i] += o.buckets_[i];
    }
  }

  void Reset() { *this = Histogram(); }

 private:
  static constexpr double kFirstBound = 1e-6;

  static size_t BucketOf(double v) {
    if (v < kFirstBound) {
      return 0;
    }
    // log2(v / kFirstBound) * 4 buckets per octave.
    double idx = std::log2(v / kFirstBound) * 4.0;
    size_t i = static_cast<size_t>(idx) + 1;
    return std::min(i, kBuckets - 1);
  }

  static double BucketMid(size_t i) {
    if (i == 0) {
      return kFirstBound / 2.0;
    }
    double lo = kFirstBound * std::exp2(static_cast<double>(i - 1) / 4.0);
    double hi = lo * std::exp2(0.25);
    return std::sqrt(lo * hi);  // geometric midpoint
  }

  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  uint64_t buckets_[kBuckets] = {};
};

}  // namespace biosim

#endif  // BIOSIM_CORE_HISTOGRAM_H_
