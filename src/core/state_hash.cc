#include "core/state_hash.h"

#include "core/resource_manager.h"

namespace biosim {

namespace {
constexpr uint64_t kFnv1aPrime = 1099511628211ull;
}  // namespace

uint64_t HashBytes(const void* data, size_t len, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

uint64_t HashDoubles(const std::vector<double>& v, uint64_t h) {
  return v.empty() ? h : HashBytes(v.data(), v.size() * sizeof(double), h);
}

uint64_t HashVec3s(const std::vector<Double3>& v, uint64_t h) {
  return v.empty() ? h : HashBytes(v.data(), v.size() * sizeof(Double3), h);
}

uint64_t HashPopulation(const ResourceManager& rm, uint64_t h) {
  uint64_t n = rm.size();
  h = HashBytes(&n, sizeof(n), h);
  h = HashVec3s(rm.positions(), h);
  h = HashDoubles(rm.diameters(), h);
  h = HashDoubles(rm.volumes(), h);
  h = HashDoubles(rm.adherences(), h);
  h = HashDoubles(rm.densities(), h);
  h = HashVec3s(rm.tractor_forces(), h);
  if (!rm.uids().empty()) {
    h = HashBytes(rm.uids().data(), rm.uids().size() * sizeof(AgentUid), h);
  }
  return h;
}

}  // namespace biosim
