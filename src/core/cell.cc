#include "core/cell.h"

namespace biosim {

void Cell::Divide(SimContext& ctx, const Double3& axis) {
  Random rng = ctx.RandomFor(uid());

  // Daughter/mother volume ratio uniform in [0.9, 1.1] (Cortex3D rule used
  // by BioDynaMo's cell-division module).
  double ratio = rng.Uniform(0.9, 1.1);

  double total_volume = volume();
  double daughter_volume = total_volume * ratio / (1.0 + ratio);
  double mother_volume = total_volume - daughter_volume;

  double mother_radius = math::SphereDiameter(mother_volume) / 2.0;
  double daughter_radius = math::SphereDiameter(daughter_volume) / 2.0;

  // Place the two cells along `axis` with their surfaces just touching,
  // keeping the joint center of mass at the mother's old position (masses
  // are proportional to volumes since density is inherited).
  Double3 dir = axis.Normalized();
  double separation = mother_radius + daughter_radius;
  double mother_shift = separation * daughter_volume / total_volume;
  double daughter_shift = separation * mother_volume / total_volume;

  Double3 old_position = position();

  NewAgentSpec daughter;
  daughter.position = old_position + dir * daughter_shift;
  daughter.diameter = 2.0 * daughter_radius;
  daughter.adherence = adherence();
  daughter.density = density();
  daughter.tractor_force = tractor_force();
  for (const auto& b : rm_->behaviors_of(index_)) {
    if (b->copy_to_new) {
      daughter.behaviors.push_back(b->Clone());
    }
  }

  // Shrink the mother in place.
  SetPosition(old_position - dir * mother_shift);
  rm_->volumes()[index_] = mother_volume;
  rm_->diameters()[index_] = 2.0 * mother_radius;

  rm_->PushDeferredAgent(index_, std::move(daughter));
}

}  // namespace biosim
