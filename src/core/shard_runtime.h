// Spatial shard runtime: ownership, halo exchange, per-shard grids.
//
// Orchestrates the sharded step (docs/sharding.md). The domain is cut into K
// contiguous z-plane ranges of the SAME box lattice the global uniform grid
// would derive (spatial/grid_geometry.h). Each step:
//
//   Repartition   -- re-derive the lattice, split the planes (static or
//                    load-adaptive), and bin every agent row to its owner:
//                    ownership is a pure function of position, so
//                    boundary-crossers "migrate" simply by being owned by
//                    the neighbor next step — their state (including
//                    behaviors) lives in the global SoA and needs no copy.
//   ExchangeHalos -- every shard ships the rows of its two face planes to
//                    the adjacent shards through the Communicator (one
//                    interaction radius = one box plane, by lattice
//                    construction). Ghost lists are sorted + deduplicated,
//                    so shard membership is canonical regardless of message
//                    arrival order.
//   UpdateGrids   -- each shard rebuilds its occupancy-compacted CSR
//                    (spatial/shard_grid.h) over owned + ghost members.
//
// The phases run shard-parallel with a join between phases — the join IS the
// barrier of the rank protocol (Communicator::Barrier exists for drivers
// that run ranks on dedicated threads; a work-stealing ParallelFor may run
// two ranks on one worker, where an in-phase barrier would self-deadlock).
//
// Nothing here touches force math: the runtime only decides which shard
// computes which rows and which ghosts it can see. The merge discipline
// (ascending rows in every CSR run, canonical block order, one global
// displacement epilogue, row-sorted deposit merge) makes the step's output
// bitwise-identical for every shard count — docs/sharding.md walks the
// argument, the parity harness and the CI shard×thread sweep enforce it.
#ifndef BIOSIM_CORE_SHARD_RUNTIME_H_
#define BIOSIM_CORE_SHARD_RUNTIME_H_

#include <cstdint>
#include <vector>

#include "core/communicator.h"
#include "core/param.h"
#include "core/resource_manager.h"
#include "core/thread_pool.h"
#include "physics/mechanical_forces_op.h"
#include "spatial/grid_geometry.h"
#include "spatial/shard_grid.h"
#include "spatial/shard_partition.h"

namespace biosim {

class ShardRuntime {
 public:
  ShardRuntime(uint32_t shards, ShardBalance balance);

  uint32_t shards() const { return shards_; }

  /// Phase A (also rerun as phase B after commit/z-order): derive the
  /// lattice for the current population and assign every row to its owning
  /// shard. Throws std::invalid_argument (via ShardPartition::Split) when
  /// the shard count exceeds the lattice's z-plane count. O(n + planes).
  void Repartition(const ResourceManager& rm, const Param& param);

  /// Ship face-plane rows to the adjacent shards and build each shard's
  /// member list (owned ++ ghosts, ascending, deduplicated). Must follow
  /// Repartition on the same population snapshot.
  void ExchangeHalos(const ResourceManager& rm, ExecMode mode);

  /// Rebuild each shard's compacted CSR from its member list. Reconfigures
  /// the shard windows only when the lattice or the partition changed.
  void UpdateGrids(const ResourceManager& rm, ExecMode mode);

  /// Per-shard force inputs for ComputeDisplacementsSharded. Valid until
  /// the next UpdateGrids.
  std::vector<ShardForceInput> ForceInputs() const;

  const GridGeometry& geometry() const { return geometry_; }
  const ShardPartition& partition() const { return partition_; }
  /// Rows owned by shard k, ascending. Valid until the next Repartition.
  const std::vector<int32_t>& owned_rows(uint32_t k) const {
    return owned_rows_[k];
  }
  const ShardGrid& grid(uint32_t k) const { return grids_[k]; }
  Communicator& communicator() { return comm_; }
  const Communicator& communicator() const { return comm_; }

  // --- observability (obs/metrics.h CollectShards consumes these) --------
  /// Ghost rows received into shard k's halo last ExchangeHalos.
  const std::vector<uint64_t>& ghosts_received() const {
    return ghosts_received_;
  }
  /// Agents whose owning shard changed since the previous Repartition.
  /// Row-stable approximation: rows whose uid is unchanged are compared,
  /// permuted/new rows are skipped — exact whenever rows are stable (no
  /// z-order resort, no division), documented in docs/sharding.md.
  uint64_t last_migrations() const { return last_migrations_; }

 private:
  const uint32_t shards_;
  const ShardBalance balance_;
  Communicator comm_;

  GridGeometry geometry_;
  ShardPartition partition_;
  std::vector<ShardGrid> grids_;
  /// Owning z-plane of each row (scratch, rebuilt by Repartition).
  std::vector<int32_t> row_plane_;
  std::vector<std::vector<int32_t>> owned_rows_;
  /// Owned ++ halo ghosts, per shard.
  std::vector<std::vector<int32_t>> members_;
  std::vector<uint64_t> ghosts_received_;

  // Migration tracking (previous step's owner per row + uid guard).
  std::vector<int32_t> prev_owner_;
  std::vector<AgentUid> prev_uids_;
  uint64_t last_migrations_ = 0;

  // Window reconfiguration gate.
  bool grids_configured_ = false;
  GridGeometry configured_geometry_;
  std::vector<int32_t> configured_begin_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_SHARD_RUNTIME_H_
