// Static-analysis annotations for the concurrency contract.
//
// Two kinds of machine-checkable markers live here (docs/static-analysis.md):
//
//   1. Clang -Wthread-safety capability annotations (BIOSIM_GUARDED_BY et
//      al.) plus a minimally annotated Mutex/MutexLock pair. Under GCC (the
//      container toolchain) every attribute expands to nothing and Mutex is a
//      zero-cost veneer over std::mutex, so behavior and codegen are
//      unchanged; under Clang the lock discipline around the obs ring
//      buffers, the resource manager's deferred-change queues and the
//      deposit merge becomes a compile-time check.
//
//   2. BIOSIM_HOT_LOOP_BEGIN/END region markers consumed by biosim-lint
//      (tools/biosim_lint): inside a marked region the linter rejects
//      dynamic_cast, typeid, std::function and virtual dispatch — the
//      dispatch mechanisms the fused kernels exist to avoid. The markers
//      compile to nothing; they only scope the lint rule.
//      BIOSIM_SHARD_SCOPE_BEGIN/END work the same way for the sharded
//      pipeline's per-shard code (rule `cross-shard-write`): inside a shard
//      scope the linter rejects direct writes to domain-global state
//      (IncreaseConcentrationBy, AddAgent/RemoveAgent) and in-scope
//      Communicator::Barrier calls, which self-deadlock when a
//      work-stealing ParallelFor runs two ranks on one worker.
//
//   3. TsanAcquire/TsanRelease happens-before bridges for
//      -fsanitize=thread builds (BIOSIM_SANITIZE=thread). GCC's libgomp is
//      not TSan-instrumented, so the end-of-parallel-region barrier is
//      invisible to the race detector and everything a pool worker touched
//      looks unsynchronized with the issuing thread afterwards. The
//      parallel primitives in core/thread_pool.h re-publish that edge
//      explicitly through these calls; they compile to nothing when TSan is
//      off.
#ifndef BIOSIM_CORE_ANALYSIS_H_
#define BIOSIM_CORE_ANALYSIS_H_

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define BIOSIM_TS_ATTR(x) __attribute__((x))
#else
#define BIOSIM_TS_ATTR(x)  // no-op outside clang
#endif

#define BIOSIM_CAPABILITY(x) BIOSIM_TS_ATTR(capability(x))
#define BIOSIM_SCOPED_CAPABILITY BIOSIM_TS_ATTR(scoped_lockable)
#define BIOSIM_GUARDED_BY(x) BIOSIM_TS_ATTR(guarded_by(x))
#define BIOSIM_PT_GUARDED_BY(x) BIOSIM_TS_ATTR(pt_guarded_by(x))
#define BIOSIM_REQUIRES(...) BIOSIM_TS_ATTR(requires_capability(__VA_ARGS__))
#define BIOSIM_ACQUIRE(...) BIOSIM_TS_ATTR(acquire_capability(__VA_ARGS__))
#define BIOSIM_RELEASE(...) BIOSIM_TS_ATTR(release_capability(__VA_ARGS__))
#define BIOSIM_TRY_ACQUIRE(...) \
  BIOSIM_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define BIOSIM_EXCLUDES(...) BIOSIM_TS_ATTR(locks_excluded(__VA_ARGS__))
#define BIOSIM_RETURN_CAPABILITY(x) BIOSIM_TS_ATTR(lock_returned(x))
#define BIOSIM_NO_THREAD_SAFETY_ANALYSIS \
  BIOSIM_TS_ATTR(no_thread_safety_analysis)

#if defined(__SANITIZE_THREAD__)
#define BIOSIM_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BIOSIM_TSAN_ENABLED 1
#endif
#endif

#ifdef BIOSIM_TSAN_ENABLED
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#endif

namespace biosim {

/// Publish this thread's memory accesses on `token` (a release in TSan's
/// happens-before model). Pair with TsanAcquire on the observing thread.
/// No-op outside -fsanitize=thread builds.
inline void TsanRelease(void* token) {
#ifdef BIOSIM_TSAN_ENABLED
  __tsan_release(token);
#else
  static_cast<void>(token);
#endif
}

/// Observe every access published on `token` by prior TsanRelease calls.
inline void TsanAcquire(void* token) {
#ifdef BIOSIM_TSAN_ENABLED
  __tsan_acquire(token);
#else
  static_cast<void>(token);
#endif
}

/// std::mutex with the capability annotation -Wthread-safety needs to track
/// acquire/release. Same layout and cost as std::mutex; satisfies the
/// Lockable named requirements, so it drops into std::lock_guard too.
class BIOSIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BIOSIM_ACQUIRE() { mu_.lock(); }
  void unlock() BIOSIM_RELEASE() { mu_.unlock(); }
  bool try_lock() BIOSIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, annotated as a scoped capability so clang knows the
/// guarded members are accessible for the guard's lifetime.
class BIOSIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BIOSIM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() BIOSIM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace biosim

// Hot-loop region markers (biosim-lint rule `hot-loop-virtual`). Wrap the
// innermost per-agent/per-voxel loops of a fast path:
//
//   BIOSIM_HOT_LOOP_BEGIN();
//   for (...) { ... no dynamic_cast/typeid/std::function/virtual ... }
//   BIOSIM_HOT_LOOP_END();
//
// Every marked region must be closed in the same file; biosim-lint reports
// an unterminated region as a violation.
#define BIOSIM_HOT_LOOP_BEGIN() static_cast<void>(0)
#define BIOSIM_HOT_LOOP_END() static_cast<void>(0)

// Shard-scope region markers (biosim-lint rule `cross-shard-write`). Wrap
// the body of code that executes per-shard under the sharded pipeline
// (docs/sharding.md):
//
//   BIOSIM_SHARD_SCOPE_BEGIN();
//   ... a shard may read anything but write only its own rows; effects on
//   ... domain-global state (substance deposits, agent creation/removal)
//   ... must be buffered and merged globally in row order afterwards, and
//   ... Communicator::Barrier must not be called (the phase join is the
//   ... barrier; an in-scope Barrier self-deadlocks under work stealing).
//   BIOSIM_SHARD_SCOPE_END();
//
// Every marked region must be closed in the same file; biosim-lint reports
// an unterminated region as a violation. Sanctioned exceptions carry
// `// biosim-lint: allow(cross-shard-write)`.
#define BIOSIM_SHARD_SCOPE_BEGIN() static_cast<void>(0)
#define BIOSIM_SHARD_SCOPE_END() static_cast<void>(0)

#endif  // BIOSIM_CORE_ANALYSIS_H_
