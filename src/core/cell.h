// Cell: the spherical agent the paper models (Section III).
//
// Cell is a non-owning *view* onto one row of the ResourceManager's SoA
// arrays — the modeler-facing handle BioDynaMo calls a "simulation object".
// Mutations write straight through to the attribute arrays; Divide() defers
// the structural insertion of the daughter to the commit phase.
#ifndef BIOSIM_CORE_CELL_H_
#define BIOSIM_CORE_CELL_H_

#include "core/agent_uid.h"
#include "core/math.h"
#include "core/resource_manager.h"
#include "core/sim_context.h"

namespace biosim {

class Cell {
 public:
  Cell(ResourceManager& rm, AgentIndex index) : rm_(&rm), index_(index) {}

  AgentIndex index() const { return index_; }
  AgentUid uid() const { return rm_->uids()[index_]; }

  const Double3& position() const { return rm_->positions()[index_]; }
  void SetPosition(const Double3& p) { rm_->positions()[index_] = p; }

  double diameter() const { return rm_->diameters()[index_]; }
  double radius() const { return diameter() / 2.0; }
  double volume() const { return rm_->volumes()[index_]; }
  double adherence() const { return rm_->adherences()[index_]; }
  void SetAdherence(double a) { rm_->adherences()[index_] = a; }
  double density() const { return rm_->densities()[index_]; }
  double mass() const { return density() * volume(); }

  const Double3& tractor_force() const {
    return rm_->tractor_forces()[index_];
  }
  void SetTractorForce(const Double3& f) {
    rm_->tractor_forces()[index_] = f;
  }

  /// Set the diameter; volume is kept consistent.
  void SetDiameter(double d) {
    rm_->diameters()[index_] = d;
    rm_->volumes()[index_] = math::SphereVolume(d);
  }

  /// Add `dv` to the volume (growth); diameter is kept consistent. Volume is
  /// clamped to stay positive.
  void ChangeVolume(double dv) {
    double v = std::max(rm_->volumes()[index_] + dv, 1e-9);
    rm_->volumes()[index_] = v;
    rm_->diameters()[index_] = math::SphereDiameter(v);
  }

  /// Divide this cell into two: the mother keeps a fraction of the volume and
  /// a daughter with the remainder is enqueued next to it along a random
  /// axis. Total volume is conserved. The daughter inherits adherence,
  /// density, and every behavior marked copy_to_new.
  ///
  /// `volume_ratio_range` follows the classic Cortex3D rule: the
  /// daughter/mother volume ratio is uniform in [0.9, 1.1].
  void Divide(SimContext& ctx) { Divide(ctx, ctx.RandomFor(uid()).UnitVector()); }
  void Divide(SimContext& ctx, const Double3& axis);

  /// Enqueue removal of this cell (apoptosis).
  void RemoveFromSimulation(SimContext& ctx) {
    (void)ctx;
    rm_->PushDeferredRemoval(index_);
  }

 private:
  ResourceManager* rm_;
  AgentIndex index_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_CELL_H_
