// Simulation parameters.
//
// Default values follow the BioDynaMo v0.0.9 defaults the paper benchmarks
// against: κ = 2 (repulsion), γ = 1 (attraction), timestep 0.01, maximum
// per-step displacement 3 µm. Length unit is micrometers, time unit is hours.
#ifndef BIOSIM_CORE_PARAM_H_
#define BIOSIM_CORE_PARAM_H_

#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace biosim {

/// What happens at the simulation-cube faces.
enum class BoundaryMode : uint8_t {
  kClamp,  // positions clamp to the faces (the BioDynaMo default)
  kOpen,   // unbounded: agents may leave the cube
  kTorus,  // periodic: positions wrap, distances are minimum-image
};

/// Floating-point width of the CPU force kernel's pair math (the paper's
/// Improvement I applied to the host). kFp32 narrows positions/diameters
/// into the gather scratch and evaluates Eq. (1) in float; accumulation
/// stays double. Tolerance contract, not bitwise (docs/determinism.md).
enum class Precision : uint8_t {
  kFp64,
  kFp32,
};

/// How the spatial shard partition sizes its z-plane ranges
/// (docs/sharding.md). Lives here rather than in spatial/ because Param
/// carries it and core cannot depend on spatial.
enum class ShardBalance : uint8_t {
  /// Equal plane counts per shard, ignoring where the agents are.
  kStatic,
  /// Greedy prefix over the per-plane agent histogram, recomputed every
  /// step: each shard takes planes until it holds its share of the
  /// remaining load. Never changes results — only which shard does the
  /// work.
  kAdaptive,
};

struct Param {
  // --- space -----------------------------------------------------------
  /// Simulation space is the cube [min_bound, max_bound]^3.
  double min_bound = 0.0;
  double max_bound = 1000.0;
  /// Face behavior. kTorus is supported by the uniform-grid environment and
  /// the CPU mechanics; the kd-tree baseline and the GPU kernels implement
  /// the paper's clamped space only.
  BoundaryMode boundary_mode = BoundaryMode::kClamp;
  /// Legacy switch: false is shorthand for kOpen. Kept because the paper's
  /// benchmarks phrase it this way.
  bool bound_space = true;

  BoundaryMode EffectiveBoundary() const {
    return bound_space ? boundary_mode : BoundaryMode::kOpen;
  }
  double SpaceEdge() const { return max_bound - min_bound; }

  // --- time ------------------------------------------------------------
  /// Integration timestep (hours).
  double simulation_time_step = 0.01;
  /// Upper bound on the length of the displacement applied to an agent in a
  /// single step (µm); Eq. (1) text: "the length of the final displacement
  /// vector is generally limited by an upper bound".
  double simulation_max_displacement = 3.0;

  // --- mechanics (Eq. 1) -------------------------------------------------
  /// Repulsion coefficient κ.
  double repulsion_coefficient = 2.0;
  /// Attraction coefficient γ.
  double attraction_coefficient = 1.0;
  /// Default adherence of newly created cells; the net force must exceed an
  /// agent's adherence before any displacement is applied.
  double default_adherence = 0.4;
  /// Default mass density of cells (used for the diameter/volume/mass link).
  double default_density = 1.0;

  // --- neighborhood -------------------------------------------------------
  /// Extra margin added to the largest agent diameter when sizing uniform
  /// grid boxes / the kd-tree query radius, so that agents that will touch
  /// within one step are already seen as neighborhood candidates.
  double interaction_radius_margin = 0.0;

  // --- reproducibility ------------------------------------------------------
  uint64_t random_seed = 42;

  // --- execution --------------------------------------------------------
  /// Worker threads for CPU-parallel operations; 0 = hardware concurrency.
  uint32_t num_threads = 0;

  /// Use the fused CSR force kernel when the environment is a uniform grid
  /// (docs/perf.md): box-by-box Morton-ordered traversal over the flattened
  /// box_starts/box_agents layout instead of the virtual per-query callback
  /// path. Bitwise-identical displacements by construction (the parity
  /// harness's cpu_fast backend enforces this); kd-tree and null
  /// environments always take the generic path.
  bool cpu_fast_path = true;

  /// Vectorize the fused force kernel's per-agent candidate sweep
  /// (physics/simd_force_kernel.h): width-padded SoA gather + vector
  /// distance pass, dispatched to the widest ISA the CPU supports
  /// (BIOSIM_SIMD=scalar forces width 1). Opt-in because the vector pass
  /// FMA-contracts the squared distance, changing the last bits vs the
  /// scalar reference — the cpu_simd parity row bounds the divergence at
  /// 1e-9. Results are bitwise independent of the dispatched width and of
  /// the thread count. Requires cpu_fast_path and the uniform-grid
  /// environment.
  bool cpu_simd = false;

  /// Pair-math precision of the CPU force kernel. kFp32 implies the
  /// vectorized kernel (same requirements as cpu_simd) and owes the
  /// cpu_fp32 parity bound of 2e-2, mirroring the FP32 GPU rows.
  Precision precision = Precision::kFp64;

  /// Maintain the uniform grid incrementally (spatial/uniform_grid.h): when
  /// the grid geometry and population are unchanged since the previous
  /// step, only agents that crossed a box boundary are re-binned and the
  /// CSR is re-derived from the patched occupancy. Byte-identical to a full
  /// rebuild by construction (property-tested in
  /// tests/spatial/incremental_grid_test.cc), with an automatic full-rebuild
  /// fallback when the grid shape, bounds or population changed — so this
  /// knob only trades speed, never results. Ignored by non-grid
  /// environments.
  bool incremental_grid = true;

  /// Run mechanical forces and substance diffusion as a two-node task graph
  /// (core/thread_pool.h TaskGraph) instead of back-to-back: once the
  /// behaviors pass's deposit merge has retired, mechanics touches only
  /// positions/grid while diffusion touches only concentration fields, so
  /// the two may overlap. Bitwise-neutral (each op runs unchanged, exactly
  /// once; docs/determinism.md) and gated by the thread-sweep determinism
  /// test. CPU pipeline only — the runner's config validation enforces
  /// backend cpu — and a no-op without diffusion grids. Off by default:
  /// per-op hardware-counter attribution collapses into one combined
  /// "mechanics+diffusion" scope while overlapped.
  bool overlap_ops = false;

  /// Re-sort agents into Z-order (spatial/zorder_sort.h) every N steps of
  /// the CPU pipeline; 0 disables. The paper's Improvement II applied to
  /// host cache locality: spatially adjacent agents become memory-adjacent,
  /// so the fused kernel's position streams hit cache. Permutes SoA rows
  /// (uid-stable); runs stay bitwise reproducible across thread counts, but
  /// trajectories are only uid-comparable — not row- or hash-comparable —
  /// with runs at a different cadence.
  uint32_t zorder_cadence = 0;

  /// Partition the domain into this many spatial shards along the grid's
  /// z-plane lattice (docs/sharding.md): each shard owns the agents binned
  /// into its plane range, builds a private occupancy-compacted CSR, and
  /// runs behaviors + forces over its owned rows, with ghost agents within
  /// one interaction radius of the shard faces exchanged through the
  /// in-process Communicator before every force pass. 0 disables sharding
  /// (the classic single-grid pipeline); 1 runs the sharded pipeline with a
  /// degenerate single shard (useful to isolate the machinery). StateHash
  /// is bitwise-identical for every shard count — verified by the parity
  /// harness's cpu_sharded row and the CI shard×thread determinism sweep.
  /// Requires cpu_fast_path and the uniform-grid environment; rejected when
  /// the shard count exceeds the lattice's z-plane count.
  uint32_t num_shards = 0;

  /// Plane-range sizing policy when num_shards > 0.
  ShardBalance shard_balance = ShardBalance::kStatic;

  /// Throw std::invalid_argument on inconsistent settings. Called by the
  /// Simulation constructor so misconfiguration fails fast, before any
  /// agents exist.
  void Validate() const {
    auto fail = [](const std::string& what) {
      throw std::invalid_argument("Param: " + what);
    };
    if (!(max_bound > min_bound)) {
      fail("max_bound must exceed min_bound");
    }
    if (!(simulation_time_step > 0.0)) {
      fail("simulation_time_step must be positive");
    }
    if (simulation_max_displacement < 0.0) {
      fail("simulation_max_displacement must be non-negative");
    }
    if (repulsion_coefficient < 0.0 || attraction_coefficient < 0.0) {
      fail("force coefficients must be non-negative");
    }
    if (default_adherence < 0.0) {
      fail("default_adherence must be non-negative");
    }
    if (!(default_density > 0.0)) {
      fail("default_density must be positive");
    }
    if (interaction_radius_margin < 0.0) {
      fail("interaction_radius_margin must be non-negative");
    }
    if (boundary_mode == BoundaryMode::kTorus && !bound_space) {
      fail("torus boundaries require bound_space");
    }
    if ((cpu_simd || precision == Precision::kFp32) && !cpu_fast_path) {
      fail("cpu_simd / fp32 precision vectorize the fused kernel and "
           "require cpu_fast_path");
    }
    if (num_shards > 0 && !cpu_fast_path) {
      fail("spatial sharding drives the fused CSR kernel per shard and "
           "requires cpu_fast_path");
    }
    if (num_shards > 0 && overlap_ops) {
      // The sharded step already interleaves its phases around the halo
      // barriers; composing it with the overlap task graph would run
      // diffusion concurrently with per-shard force passes whose merge
      // discipline assumes exclusive SoA access. Reject loudly rather than
      // silently ignoring one of the knobs (ISSUE 10 satellite).
      fail("overlap_ops and num_shards cannot be combined: the sharded "
           "pipeline schedules mechanics/diffusion itself; disable one");
    }
  }
};

}  // namespace biosim

#endif  // BIOSIM_CORE_PARAM_H_
