// Behavior framework: per-agent programs executed once per timestep.
//
// This is the modeler-facing extension point: a model is defined by attaching
// behaviors (grow-and-divide, secretion, chemotaxis, ...) to agents. Concrete
// behaviors shipped with the library live in core/behaviors/.
#ifndef BIOSIM_CORE_BEHAVIOR_H_
#define BIOSIM_CORE_BEHAVIOR_H_

#include <memory>

namespace biosim {

class Cell;
class SimContext;

/// Base class for agent behaviors. Run() may mutate the agent it is attached
/// to and enqueue structural changes (division, death) through the context;
/// structural changes are applied after all behaviors of the step have run.
class Behavior {
 public:
  virtual ~Behavior() = default;

  /// Execute one timestep of this behavior for `cell`.
  virtual void Run(Cell& cell, SimContext& ctx) = 0;

  /// Deep copy; used when a dividing cell passes its behaviors to the
  /// daughter.
  virtual std::unique_ptr<Behavior> Clone() const = 0;

  /// Human-readable name for profiling and diagnostics.
  virtual const char* name() const = 0;

  /// Whether a daughter cell created by division inherits this behavior.
  bool copy_to_new = true;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_BEHAVIOR_H_
