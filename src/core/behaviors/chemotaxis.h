// Chemotaxis: the agent biases its motion along (or against) the gradient of
// an extracellular substance by writing into its tractor force, which the
// mechanical operation adds to the collision force before integrating the
// displacement.
#ifndef BIOSIM_CORE_BEHAVIORS_CHEMOTAXIS_H_
#define BIOSIM_CORE_BEHAVIORS_CHEMOTAXIS_H_

#include <memory>

#include "core/behavior.h"
#include "core/cell.h"
#include "diffusion/diffusion_grid.h"

namespace biosim {

class Chemotaxis : public Behavior {
 public:
  /// `speed` scales the normalized gradient into a tractor force; negative
  /// values flee the substance.
  explicit Chemotaxis(double speed) : speed_(speed) {}

  void Run(Cell& cell, SimContext& ctx) override {
    if (ctx.diffusion_grid == nullptr) {
      return;
    }
    Double3 grad = ctx.diffusion_grid->GetGradient(cell.position());
    cell.SetTractorForce(grad.Normalized() * speed_);
  }

  std::unique_ptr<Behavior> Clone() const override {
    return std::make_unique<Chemotaxis>(*this);
  }

  const char* name() const override { return "Chemotaxis"; }

 private:
  double speed_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_BEHAVIORS_CHEMOTAXIS_H_
