// Apoptosis: probabilistic programmed cell death.
//
// Each step the cell dies with probability rate*dt (a discretized
// exponential lifetime). Removal is deferred to the commit phase like all
// structural changes, so it is safe under parallel behavior execution.
#ifndef BIOSIM_CORE_BEHAVIORS_APOPTOSIS_H_
#define BIOSIM_CORE_BEHAVIORS_APOPTOSIS_H_

#include <memory>

#include "core/behavior.h"
#include "core/cell.h"

namespace biosim {

class Apoptosis : public Behavior {
 public:
  /// `death_rate`: expected deaths per hour (hazard rate).
  explicit Apoptosis(double death_rate) : death_rate_(death_rate) {}

  void Run(Cell& cell, SimContext& ctx) override {
    Random rng = ctx.RandomFor(cell.uid());
    // Skip one draw so Apoptosis and a coexisting division behavior (which
    // uses draw 0 for its ratio) do not consume the same variate.
    rng.NextU64();
    if (rng.Uniform() < death_rate_ * ctx.param().simulation_time_step) {
      cell.RemoveFromSimulation(ctx);
    }
  }

  std::unique_ptr<Behavior> Clone() const override {
    return std::make_unique<Apoptosis>(*this);
  }
  const char* name() const override { return "Apoptosis"; }

  double death_rate() const { return death_rate_; }

 private:
  double death_rate_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_BEHAVIORS_APOPTOSIS_H_
