// RandomWalk: unbiased Brownian-style cell migration.
//
// Each step the agent receives a tractor force in a fresh uniform-random
// direction. Drawn from the agent's (uid, step)-keyed stream, so
// trajectories are reproducible across thread counts.
#ifndef BIOSIM_CORE_BEHAVIORS_RANDOM_WALK_H_
#define BIOSIM_CORE_BEHAVIORS_RANDOM_WALK_H_

#include <memory>

#include "core/behavior.h"
#include "core/cell.h"

namespace biosim {

class RandomWalk : public Behavior {
 public:
  /// `speed`: magnitude of the random tractor force.
  explicit RandomWalk(double speed) : speed_(speed) {}

  void Run(Cell& cell, SimContext& ctx) override {
    Random rng = ctx.RandomFor(cell.uid());
    cell.SetTractorForce(rng.UnitVector() * speed_);
  }

  std::unique_ptr<Behavior> Clone() const override {
    return std::make_unique<RandomWalk>(*this);
  }
  const char* name() const override { return "RandomWalk"; }

  double speed() const { return speed_; }

 private:
  double speed_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_BEHAVIORS_RANDOM_WALK_H_
