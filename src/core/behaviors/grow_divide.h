// GrowDivide: the paper's "cell division module" (benchmark A workload).
//
// Each step the cell grows by a fixed volume rate until it reaches a
// threshold diameter, then divides. With the default parameters a population
// roughly doubles every few steps, which is what makes benchmark A's
// neighborhoods dense and the mechanical operation dominant (Fig. 3).
#ifndef BIOSIM_CORE_BEHAVIORS_GROW_DIVIDE_H_
#define BIOSIM_CORE_BEHAVIORS_GROW_DIVIDE_H_

#include <memory>

#include "core/behavior.h"
#include "core/cell.h"

namespace biosim {

class GrowDivide : public Behavior {
 public:
  /// `threshold_diameter`: divide once the diameter reaches this (µm).
  /// `growth_rate`: volume increase per hour (µm³/h).
  GrowDivide(double threshold_diameter = 8.0, double growth_rate = 1500.0)
      : threshold_diameter_(threshold_diameter), growth_rate_(growth_rate) {}

  void Run(Cell& cell, SimContext& ctx) override {
    if (cell.diameter() >= threshold_diameter_) {
      cell.Divide(ctx);
    } else {
      cell.ChangeVolume(growth_rate_ * ctx.param().simulation_time_step);
    }
  }

  std::unique_ptr<Behavior> Clone() const override {
    return std::make_unique<GrowDivide>(*this);
  }

  const char* name() const override { return "GrowDivide"; }

  double threshold_diameter() const { return threshold_diameter_; }
  double growth_rate() const { return growth_rate_; }

 private:
  double threshold_diameter_;
  double growth_rate_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_BEHAVIORS_GROW_DIVIDE_H_
