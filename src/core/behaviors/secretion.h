// Secretion: the agent deposits a substance into the extracellular
// diffusion grid each step (e.g. a tumor cell consuming oxygen is modeled as
// a negative rate).
#ifndef BIOSIM_CORE_BEHAVIORS_SECRETION_H_
#define BIOSIM_CORE_BEHAVIORS_SECRETION_H_

#include <memory>

#include "core/behavior.h"
#include "core/cell.h"
#include "diffusion/diffusion_grid.h"

namespace biosim {

class Secretion : public Behavior {
 public:
  /// `rate`: concentration units added to the agent's voxel per hour.
  explicit Secretion(double rate) : rate_(rate) {}

  void Run(Cell& cell, SimContext& ctx) override {
    // Routed through the context's deposit sink: applied after the parallel
    // behaviors pass in agent-index order, so the field stays bitwise
    // reproducible at any thread count.
    ctx.DepositSubstance(cell.position(),
                         rate_ * ctx.param().simulation_time_step);
  }

  std::unique_ptr<Behavior> Clone() const override {
    return std::make_unique<Secretion>(*this);
  }

  const char* name() const override { return "Secretion"; }

 private:
  double rate_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_BEHAVIORS_SECRETION_H_
