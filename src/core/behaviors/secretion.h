// Secretion: the agent deposits a substance into the extracellular
// diffusion grid each step (e.g. a tumor cell consuming oxygen is modeled as
// a negative rate).
#ifndef BIOSIM_CORE_BEHAVIORS_SECRETION_H_
#define BIOSIM_CORE_BEHAVIORS_SECRETION_H_

#include <memory>
#include <string>
#include <utility>

#include "core/behavior.h"
#include "core/cell.h"
#include "diffusion/diffusion_grid.h"

namespace biosim {

class Secretion : public Behavior {
 public:
  /// `rate`: concentration units added to the agent's voxel per hour.
  /// Deposits into the context's default substance (the first grid).
  explicit Secretion(double rate) : rate_(rate) {}

  /// Deposit into the named substance instead of the default grid. A
  /// missing name is a silent no-op (same contract as a grid-less context).
  Secretion(std::string substance, double rate)
      : substance_(std::move(substance)), rate_(rate) {}

  void Run(Cell& cell, SimContext& ctx) override {
    // Routed through the context's deposit sink: applied after the parallel
    // behaviors pass in agent-index order, so the field stays bitwise
    // reproducible at any thread count. Name-routed secretion resolves its
    // own grid — every substance keeps its own field (the pre-fix merge
    // dumped all deposits into the first grid).
    DiffusionGrid* grid = substance_.empty() ? ctx.diffusion_grid
                                             : ctx.FindSubstance(substance_);
    ctx.DepositSubstance(cell.position(),
                         rate_ * ctx.param().simulation_time_step, grid);
  }

  std::unique_ptr<Behavior> Clone() const override {
    return std::make_unique<Secretion>(*this);
  }

  const char* name() const override { return "Secretion"; }

 private:
  std::string substance_;  // empty = default (first) grid
  double rate_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_BEHAVIORS_SECRETION_H_
