#include "core/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/math.h"
#include "spatial/environment.h"

namespace biosim {

ScalarStats ScalarStats::Of(const std::vector<double>& values) {
  ScalarStats s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : values) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

ScalarStats DiameterStats(const ResourceManager& rm) {
  return ScalarStats::Of(rm.diameters());
}

NeighborStats ComputeNeighborStats(const ResourceManager& rm,
                                   const Environment& env,
                                   size_t max_bucket) {
  NeighborStats out;
  out.histogram.assign(max_bucket + 1, 0);
  std::vector<double> counts(rm.size(), 0.0);
  for (size_t i = 0; i < rm.size(); ++i) {
    size_t k = 0;
    env.ForEachNeighborWithinRadius(i, rm, env.interaction_radius(),
                                    [&](AgentIndex, double) { ++k; });
    counts[i] = static_cast<double>(k);
    out.histogram[std::min(k, max_bucket)] += 1;
  }
  out.counts = ScalarStats::Of(counts);
  return out;
}

std::vector<double> RadialDistribution(const ResourceManager& rm,
                                       const Environment& env, double r_max,
                                       size_t bins, size_t max_samples) {
  std::vector<double> g(bins, 0.0);
  size_t n = rm.size();
  if (n < 2 || bins == 0 || r_max <= 0.0) {
    return g;
  }

  size_t stride = std::max<size_t>(1, n / max_samples);
  size_t samples = 0;
  std::vector<size_t> pair_counts(bins, 0);
  for (size_t i = 0; i < n; i += stride) {
    ++samples;
    env.ForEachNeighborWithinRadius(
        i, rm, r_max, [&](AgentIndex, double d2) {
          double r = std::sqrt(d2);
          size_t bin = std::min(bins - 1, static_cast<size_t>(
                                              r / r_max *
                                              static_cast<double>(bins)));
          pair_counts[bin] += 1;
        });
  }

  // Normalize by the ideal-gas expectation for each shell.
  AABBd bounds = rm.Bounds();
  Double3 size = bounds.Size();
  double volume = std::max(size.x * size.y * size.z, 1e-12);
  double rho = static_cast<double>(n) / volume;
  double dr = r_max / static_cast<double>(bins);
  for (size_t b = 0; b < bins; ++b) {
    double r_lo = static_cast<double>(b) * dr;
    double r_hi = r_lo + dr;
    double shell = 4.0 / 3.0 * math::kPi *
                   (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    double expected = rho * shell * static_cast<double>(samples);
    g[b] = expected > 0.0 ? static_cast<double>(pair_counts[b]) / expected
                          : 0.0;
  }
  return g;
}

std::string SummarizePopulation(const ResourceManager& rm,
                                const Environment& env) {
  ScalarStats d = DiameterStats(rm);
  NeighborStats nb = ComputeNeighborStats(rm, env);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu diameter=%.2f+-%.2f [%.2f,%.2f] neighbors=%.1f+-%.1f "
                "max=%zu",
                rm.size(), d.mean, d.stddev, d.min, d.max, nb.counts.mean,
                nb.counts.stddev, static_cast<size_t>(nb.counts.max));
  return buf;
}

}  // namespace biosim
