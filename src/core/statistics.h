// Population statistics for model analysis and benchmark validation.
//
// The paper's benchmark B is parameterized by "the average number of
// neighboring agents per agent"; these helpers compute that and related
// structure metrics (neighbor-count histogram, radial distribution
// function, diameter statistics) so models and benches can verify the
// populations they construct.
#ifndef BIOSIM_CORE_STATISTICS_H_
#define BIOSIM_CORE_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/resource_manager.h"

namespace biosim {

class Environment;
struct Param;

/// Simple accumulator: count/mean/min/max/stddev of a scalar series.
struct ScalarStats {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static ScalarStats Of(const std::vector<double>& values);
};

/// Diameter distribution of the population.
ScalarStats DiameterStats(const ResourceManager& rm);

/// Per-agent neighbor counts at the environment's interaction radius
/// (requires env.Update to have run), plus their histogram.
struct NeighborStats {
  ScalarStats counts;
  /// histogram[k] = number of agents with exactly k neighbors; the last
  /// bucket aggregates >= histogram.size()-1.
  std::vector<size_t> histogram;
};
NeighborStats ComputeNeighborStats(const ResourceManager& rm,
                                   const Environment& env,
                                   size_t max_bucket = 64);

/// Radial distribution function g(r): the density of pairwise distances
/// relative to an ideal gas, over [0, r_max) in `bins` buckets. Uses a
/// random sample of at most `max_samples` agents against the environment
/// (r_max must be <= the interaction radius, which bounds what the spatial
/// index can answer).
std::vector<double> RadialDistribution(const ResourceManager& rm,
                                       const Environment& env, double r_max,
                                       size_t bins,
                                       size_t max_samples = 2000);

/// Render a one-line summary ("n=... mean_d=... mean_neighbors=...").
std::string SummarizePopulation(const ResourceManager& rm,
                                const Environment& env);

}  // namespace biosim

#endif  // BIOSIM_CORE_STATISTICS_H_
