// Structs-of-arrays agent storage.
//
// Every agent attribute lives in its own contiguous array, exactly like the
// BioDynaMo v0.0.9 backend the paper builds on. The paper relies on this
// layout twice: (a) the mechanical-interaction offload copies only the
// attribute arrays it needs to the device, without gathering per-agent
// structs first, and (b) Improvement II sorts these arrays by Z-order so
// spatially local agents become memory-local.
//
// Structural changes (division, death) are *deferred*: behaviors enqueue
// them and CommitStructuralChanges() applies them between operations, so
// attribute arrays are stable while an operation iterates them in parallel.
#ifndef BIOSIM_CORE_RESOURCE_MANAGER_H_
#define BIOSIM_CORE_RESOURCE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/agent_uid.h"
#include "core/analysis.h"
#include "core/behavior.h"
#include "core/math.h"

namespace biosim {

/// Plain-data description of an agent to be inserted. Behaviors are attached
/// by the caller after insertion or travel inside the spec.
struct NewAgentSpec {
  Double3 position;
  double diameter = 10.0;
  double adherence = 0.4;
  double density = 1.0;
  Double3 tractor_force;
  std::vector<std::unique_ptr<Behavior>> behaviors;
};

class ResourceManager {
 public:
  ResourceManager() = default;

  // Movable, not copyable (behaviors are unique_ptr).
  ResourceManager(ResourceManager&&) = default;
  ResourceManager& operator=(ResourceManager&&) = default;

  /// Number of live agents (excludes pending insertions/removals).
  size_t size() const { return positions_.size(); }
  bool empty() const { return positions_.empty(); }

  /// Preallocate capacity for `n` agents across all attribute arrays.
  void Reserve(size_t n);

  /// Insert an agent immediately. Only safe outside parallel operations
  /// (model setup, commit phase). Returns the row index.
  AgentIndex AddAgent(NewAgentSpec spec);

  /// Thread-safe deferred insertion; applied by CommitStructuralChanges().
  /// `mother` orders deferred agents deterministically regardless of thread
  /// scheduling.
  void PushDeferredAgent(AgentIndex mother, NewAgentSpec spec);

  /// Thread-safe deferred removal by row index.
  void PushDeferredRemoval(AgentIndex idx);

  /// Apply pending insertions and removals. Removal uses swap-with-last, so
  /// row indices held across a commit are invalidated. Returns the number of
  /// structural changes applied.
  size_t CommitStructuralChanges();

  /// Reorder all attribute arrays so that new_row i holds old_row perm[i].
  /// `perm` must be a permutation of [0, size). Used by Z-order sorting.
  void ApplyPermutation(const std::vector<AgentIndex>& perm);

  // --- attribute arrays (SoA) ------------------------------------------
  std::vector<Double3>& positions() { return positions_; }
  const std::vector<Double3>& positions() const { return positions_; }
  std::vector<double>& diameters() { return diameters_; }
  const std::vector<double>& diameters() const { return diameters_; }
  std::vector<double>& volumes() { return volumes_; }
  const std::vector<double>& volumes() const { return volumes_; }
  std::vector<double>& adherences() { return adherences_; }
  const std::vector<double>& adherences() const { return adherences_; }
  std::vector<double>& densities() { return densities_; }
  const std::vector<double>& densities() const { return densities_; }
  std::vector<Double3>& tractor_forces() { return tractor_forces_; }
  const std::vector<Double3>& tractor_forces() const { return tractor_forces_; }
  const std::vector<AgentUid>& uids() const { return uids_; }

  const std::vector<std::unique_ptr<Behavior>>& behaviors_of(
      AgentIndex i) const {
    return behaviors_[i];
  }
  void AttachBehavior(AgentIndex i, std::unique_ptr<Behavior> b) {
    behaviors_[i].push_back(std::move(b));
  }

  /// Largest diameter over all agents; defines the interaction radius and
  /// the uniform-grid box size. O(n).
  double LargestDiameter() const;

  /// Bounding box of all agent centers.
  AABBd Bounds() const;

  /// Total cell volume (conserved across divisions; used by tests).
  double TotalVolume() const;

  /// Next uid that will be assigned (checkpointing).
  AgentUid next_uid() const { return next_uid_; }

  /// Replace the whole population with restored state (checkpoint load).
  /// All vectors must have equal length; behaviors reset to empty lists.
  /// Throws std::invalid_argument on inconsistent sizes.
  void RestorePopulation(std::vector<Double3> positions,
                         std::vector<double> diameters,
                         std::vector<double> volumes,
                         std::vector<double> adherences,
                         std::vector<double> densities,
                         std::vector<Double3> tractor_forces,
                         std::vector<AgentUid> uids, AgentUid next_uid);

 private:
  void AppendRow(NewAgentSpec&& spec);
  void RemoveRowSwap(AgentIndex idx);

  std::vector<Double3> positions_;
  std::vector<double> diameters_;
  std::vector<double> volumes_;
  std::vector<double> adherences_;
  std::vector<double> densities_;
  std::vector<Double3> tractor_forces_;
  std::vector<AgentUid> uids_;
  std::vector<std::vector<std::unique_ptr<Behavior>>> behaviors_;

  AgentUid next_uid_ = 0;

  // The deferred queues are the only state behaviors mutate concurrently
  // (PushDeferredAgent/PushDeferredRemoval from parallel chunks); everything
  // else is stable while an operation runs. unique_ptr so the manager (and
  // Simulation) stays movable; clang -Wthread-safety tracks the capability
  // through the smart pointer.
  std::unique_ptr<Mutex> deferred_mutex_ = std::make_unique<Mutex>();
  std::vector<std::pair<AgentIndex, NewAgentSpec>> deferred_new_
      BIOSIM_GUARDED_BY(deferred_mutex_);
  std::vector<AgentIndex> deferred_removals_ BIOSIM_GUARDED_BY(deferred_mutex_);
};

}  // namespace biosim

#endif  // BIOSIM_CORE_RESOURCE_MANAGER_H_
