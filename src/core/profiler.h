// Per-operation wall-clock profile of the simulation loop.
//
// This is what regenerates the paper's Fig. 3 (runtime profile of the cell
// division benchmark): each scheduler operation accumulates its time here
// and ToString() renders the percentage breakdown. Every entry keeps a full
// latency histogram (core/histogram.h), so min/max/p95 per operation come
// for free; the observability layer (src/obs/metrics.h) absorbs these
// entries into the unified metrics registry.
#ifndef BIOSIM_CORE_PROFILER_H_
#define BIOSIM_CORE_PROFILER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "core/histogram.h"

namespace biosim {

class OpProfile {
 public:
  struct Entry {
    std::string name;
    Histogram hist;

    double total_ms() const { return hist.sum(); }
    uint64_t calls() const { return hist.count(); }
  };

  /// Accumulate `ms` under `name` (entries keep first-seen order). O(1)
  /// amortized: a hash index sits alongside the first-seen-order storage.
  void Add(const std::string& name, double ms) { Hist(name)->Add(ms); }

  /// The per-sample histogram sink for `name`, created on first use. The
  /// pointer stays valid for the profile's lifetime (entries live in a
  /// deque), so it can be handed to a ScopedTimer.
  Histogram* Hist(const std::string& name) {
    auto it = index_.find(name);
    if (it == index_.end()) {
      it = index_.emplace(name, entries_.size()).first;
      entries_.push_back(Entry{name, {}});
    }
    return &entries_[it->second].hist;
  }

  double TotalMs(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0.0 : entries_[it->second].hist.sum();
  }

  double GrandTotalMs() const {
    double t = 0.0;
    for (const auto& e : entries_) {
      t += e.total_ms();
    }
    return t;
  }

  const std::deque<Entry>& entries() const { return entries_; }

  const Entry* Find(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
  }

  void Reset() {
    entries_.clear();
    index_.clear();
  }

  /// Render a Fig. 3-style breakdown table (now with per-step percentiles).
  std::string ToString() const {
    double total = GrandTotalMs();
    std::string out;
    out +=
        "operation                     time_ms      share     p50_ms     "
        "p95_ms     max_ms\n";
    char line[160];
    for (const auto& e : entries_) {
      double pct = total > 0.0 ? 100.0 * e.total_ms() / total : 0.0;
      snprintf(line, sizeof(line),
               "%-28s %9.2f    %6.2f%% %10.3f %10.3f %10.3f\n",
               e.name.c_str(), e.total_ms(), pct, e.hist.Percentile(0.5),
               e.hist.Percentile(0.95), e.hist.max());
      out += line;
    }
    snprintf(line, sizeof(line), "%-28s %9.2f    100.00%%\n", "TOTAL", total);
    out += line;
    return out;
  }

 private:
  std::deque<Entry> entries_;  // deque: stable Entry/Histogram addresses
  // Lookup index only — reports iterate entries_ (first-seen order), never
  // this map, so hash order cannot leak into any artifact.
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_PROFILER_H_
