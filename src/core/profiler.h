// Per-operation wall-clock profile of the simulation loop.
//
// This is what regenerates the paper's Fig. 3 (runtime profile of the cell
// division benchmark): each scheduler operation accumulates its time here
// and ToString() renders the percentage breakdown.
#ifndef BIOSIM_CORE_PROFILER_H_
#define BIOSIM_CORE_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace biosim {

class OpProfile {
 public:
  struct Entry {
    std::string name;
    double total_ms = 0.0;
    uint64_t calls = 0;
  };

  /// Accumulate `ms` under `name` (entries keep first-seen order).
  void Add(const std::string& name, double ms) {
    for (auto& e : entries_) {
      if (e.name == name) {
        e.total_ms += ms;
        e.calls += 1;
        return;
      }
    }
    entries_.push_back({name, ms, 1});
  }

  double TotalMs(const std::string& name) const {
    for (const auto& e : entries_) {
      if (e.name == name) {
        return e.total_ms;
      }
    }
    return 0.0;
  }

  double GrandTotalMs() const {
    double t = 0.0;
    for (const auto& e : entries_) {
      t += e.total_ms;
    }
    return t;
  }

  const std::vector<Entry>& entries() const { return entries_; }

  void Reset() { entries_.clear(); }

  /// Render a Fig. 3-style breakdown table.
  std::string ToString() const {
    double total = GrandTotalMs();
    std::string out;
    out += "operation                     time_ms      share\n";
    char line[128];
    for (const auto& e : entries_) {
      double pct = total > 0.0 ? 100.0 * e.total_ms / total : 0.0;
      snprintf(line, sizeof(line), "%-28s %9.2f    %6.2f%%\n", e.name.c_str(),
               e.total_ms, pct);
      out += line;
    }
    snprintf(line, sizeof(line), "%-28s %9.2f    100.00%%\n", "TOTAL", total);
    out += line;
    return out;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_PROFILER_H_
