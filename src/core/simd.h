// Portable SIMD value types for the CPU hot loops (docs/perf.md).
//
// The idiom follows arbor's simd layer: a fixed-width value type
// `Vec<T, W>` with explicit load/store (including masked tails), fma,
// compare-to-mask and blend, plus a `W = 1` instantiation so every call
// site compiles — and can be forced to run — scalar. Unlike arbor we do
// not write intrinsics: every operation is a plain per-lane loop over a
// lane array, and the *translation unit* that instantiates a kernel is
// compiled with the target ISA's flags (see src/physics/CMakeLists.txt).
// The compiler turns the lane loops into vector instructions; the types
// only pin down widths, alignment, and lane-exact semantics. That keeps
// one implementation for every backend, makes the scalar fallback the
// definition (not a parallel code path that can drift), and leaves the
// differential tests in tests/core/simd_test.cc meaningful at any width.
//
// Semantics, per lane:
//   * arithmetic and Sqrt are the IEEE-754 operations of T — bit-exact
//     against the scalar expression, NaN/Inf/denormals included;
//   * Fma is std::fma (single rounding); on FMA hardware it compiles to
//     the fused instruction, elsewhere to the correctly-rounded libm
//     call, so results are identical across ISAs;
//   * Min/Max are `b < a ? b : a` / `a < b ? b : a` (NaN in either
//     operand selects the first operand, like the x86 min/max
//     instructions);
//   * comparisons are IEEE (NaN compares false), producing a Mask<W>;
//   * ReduceAdd sums lanes strictly left to right — a fixed, documented
//     order, so reductions are deterministic for a given width.
//
// Width selection: kernels are instantiated per ISA in separate TUs and
// picked at runtime (physics/simd_kernel_dispatch.h). The BIOSIM_SIMD
// environment variable narrows the choice for tests and triage:
// `native` (or unset) uses the widest kernel the CPU supports, `scalar`
// forces the W = 1 instantiation; anything else throws.
#ifndef BIOSIM_CORE_SIMD_H_
#define BIOSIM_CORE_SIMD_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace biosim::simd {

// Every lane loop must inline into the kernel that is compiled with the
// target ISA's flags; an out-of-line copy would be emitted as a weak
// symbol, and the linker could then fold instantiations from TUs built
// for different ISAs into one.
#if defined(__GNUC__) || defined(__clang__)
#define BIOSIM_SIMD_INLINE inline __attribute__((always_inline))
#else
#define BIOSIM_SIMD_INLINE inline
#endif

/// Alignment of the kernels' SoA scratch arrays: one cache line, which
/// also covers the widest vector register in current use (AVX-512).
inline constexpr size_t kAlignment = 64;

/// Lane count the per-ISA kernel TUs instantiate for `T`: sized for
/// 256-bit registers (AVX2; also two NEON registers), the widest ISA the
/// dispatch currently targets.
template <typename T>
inline constexpr int kNativeLanes = 1;
template <>
inline constexpr int kNativeLanes<double> = 4;
template <>
inline constexpr int kNativeLanes<float> = 8;

/// Per-lane boolean result of a comparison; input to Select.
template <int W>
struct Mask {
  static_assert(W >= 1, "Mask needs at least one lane");

  bool lane[W];

  static BIOSIM_SIMD_INLINE Mask None() {
    Mask m;
    for (int i = 0; i < W; ++i) {
      m.lane[i] = false;
    }
    return m;
  }

  BIOSIM_SIMD_INLINE bool AnyTrue() const {
    bool any = false;
    for (int i = 0; i < W; ++i) {
      any = any || lane[i];
    }
    return any;
  }

  BIOSIM_SIMD_INLINE bool AllTrue() const {
    bool all = true;
    for (int i = 0; i < W; ++i) {
      all = all && lane[i];
    }
    return all;
  }

  BIOSIM_SIMD_INLINE int CountTrue() const {
    int count = 0;
    for (int i = 0; i < W; ++i) {
      count += lane[i] ? 1 : 0;
    }
    return count;
  }
};

template <int W>
BIOSIM_SIMD_INLINE Mask<W> And(const Mask<W>& a, const Mask<W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) {
    m.lane[i] = a.lane[i] && b.lane[i];
  }
  return m;
}

template <int W>
BIOSIM_SIMD_INLINE Mask<W> Or(const Mask<W>& a, const Mask<W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) {
    m.lane[i] = a.lane[i] || b.lane[i];
  }
  return m;
}

template <int W>
BIOSIM_SIMD_INLINE Mask<W> Not(const Mask<W>& a) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) {
    m.lane[i] = !a.lane[i];
  }
  return m;
}

/// W lanes of T. A plain aggregate: trivially copyable, no implicit
/// conversions, every operation spelled out.
template <typename T, int W>
struct Vec {
  static_assert(W >= 1, "Vec needs at least one lane");

  T lane[W];

  static BIOSIM_SIMD_INLINE Vec Broadcast(T v) {
    Vec r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = v;
    }
    return r;
  }

  static BIOSIM_SIMD_INLINE Vec Zero() { return Broadcast(T{0}); }

  /// Load W contiguous lanes. No alignment requirement, but the kernels
  /// only ever pass pointers into kAlignment-aligned scratch.
  static BIOSIM_SIMD_INLINE Vec Load(const T* p) {
    Vec r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = p[i];
    }
    return r;
  }

  /// Masked tail load: the first `n` lanes from `p`, remaining lanes
  /// zero. `n` must be in [0, W]; `p` is read exactly `n` times, so a
  /// buffer of `n` elements is sufficient.
  static BIOSIM_SIMD_INLINE Vec LoadN(const T* p, int n) {
    Vec r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = i < n ? p[i] : T{0};
    }
    return r;
  }

  BIOSIM_SIMD_INLINE void Store(T* p) const {
    for (int i = 0; i < W; ++i) {
      p[i] = lane[i];
    }
  }

  /// Masked tail store: writes exactly the first `n` lanes; `p[n..]` is
  /// never touched. `n` must be in [0, W].
  BIOSIM_SIMD_INLINE void StoreN(T* p, int n) const {
    for (int i = 0; i < W; ++i) {
      if (i < n) {
        p[i] = lane[i];
      }
    }
  }

  BIOSIM_SIMD_INLINE Vec operator+(const Vec& o) const {
    Vec r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = lane[i] + o.lane[i];
    }
    return r;
  }

  BIOSIM_SIMD_INLINE Vec operator-(const Vec& o) const {
    Vec r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = lane[i] - o.lane[i];
    }
    return r;
  }

  BIOSIM_SIMD_INLINE Vec operator*(const Vec& o) const {
    Vec r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = lane[i] * o.lane[i];
    }
    return r;
  }

  BIOSIM_SIMD_INLINE Vec operator/(const Vec& o) const {
    Vec r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = lane[i] / o.lane[i];
    }
    return r;
  }

  BIOSIM_SIMD_INLINE Vec operator-() const {
    Vec r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = -lane[i];
    }
    return r;
  }

  /// Per-lane static_cast<U> (e.g. FP32 contributions widened into the
  /// FP64 accumulator).
  template <typename U>
  BIOSIM_SIMD_INLINE Vec<U, W> ConvertTo() const {
    Vec<U, W> r;
    for (int i = 0; i < W; ++i) {
      r.lane[i] = static_cast<U>(lane[i]);
    }
    return r;
  }
};

template <typename T, int W>
BIOSIM_SIMD_INLINE Vec<T, W> Fma(const Vec<T, W>& a, const Vec<T, W>& b,
                                 const Vec<T, W>& c) {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) {
    r.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
  }
  return r;
}

template <typename T, int W>
BIOSIM_SIMD_INLINE Vec<T, W> Sqrt(const Vec<T, W>& a) {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) {
    r.lane[i] = std::sqrt(a.lane[i]);
  }
  return r;
}

template <typename T, int W>
BIOSIM_SIMD_INLINE Vec<T, W> Min(const Vec<T, W>& a, const Vec<T, W>& b) {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) {
    r.lane[i] = b.lane[i] < a.lane[i] ? b.lane[i] : a.lane[i];
  }
  return r;
}

template <typename T, int W>
BIOSIM_SIMD_INLINE Vec<T, W> Max(const Vec<T, W>& a, const Vec<T, W>& b) {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) {
    r.lane[i] = a.lane[i] < b.lane[i] ? b.lane[i] : a.lane[i];
  }
  return r;
}

template <typename T, int W>
BIOSIM_SIMD_INLINE Mask<W> Lt(const Vec<T, W>& a, const Vec<T, W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) {
    m.lane[i] = a.lane[i] < b.lane[i];
  }
  return m;
}

template <typename T, int W>
BIOSIM_SIMD_INLINE Mask<W> Le(const Vec<T, W>& a, const Vec<T, W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) {
    m.lane[i] = a.lane[i] <= b.lane[i];
  }
  return m;
}

template <typename T, int W>
BIOSIM_SIMD_INLINE Mask<W> Gt(const Vec<T, W>& a, const Vec<T, W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) {
    m.lane[i] = a.lane[i] > b.lane[i];
  }
  return m;
}

template <typename T, int W>
BIOSIM_SIMD_INLINE Mask<W> Ge(const Vec<T, W>& a, const Vec<T, W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) {
    m.lane[i] = a.lane[i] >= b.lane[i];
  }
  return m;
}

template <typename T, int W>
BIOSIM_SIMD_INLINE Mask<W> Eq(const Vec<T, W>& a, const Vec<T, W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) {
    m.lane[i] = a.lane[i] == b.lane[i];
  }
  return m;
}

/// Blend: lane i of the result is t.lane[i] where m, else f.lane[i].
template <typename T, int W>
BIOSIM_SIMD_INLINE Vec<T, W> Select(const Mask<W>& m, const Vec<T, W>& t,
                                    const Vec<T, W>& f) {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) {
    r.lane[i] = m.lane[i] ? t.lane[i] : f.lane[i];
  }
  return r;
}

/// Horizontal sum in strict lane order: ((lane0 + lane1) + lane2) + ...
/// The order is part of the determinism contract — it makes the kernel's
/// result a function of (inputs, W) only, never of how the compiler
/// would prefer to tree-reduce.
template <typename T, int W>
BIOSIM_SIMD_INLINE T ReduceAdd(const Vec<T, W>& a) {
  T sum = a.lane[0];
  for (int i = 1; i < W; ++i) {
    sum += a.lane[i];
  }
  return sum;
}

/// Width override for tests and triage (docs/determinism.md).
enum class WidthMode : uint8_t {
  kNative,  // widest kernel the CPU supports (the default)
  kScalar,  // force the W = 1 instantiation
};

/// Parse BIOSIM_SIMD: unset/empty/"native" -> kNative, "scalar" ->
/// kScalar, anything else throws (typos must not silently change which
/// kernel a determinism run exercised).
inline WidthMode WidthModeFromEnv() {
  const char* v = std::getenv("BIOSIM_SIMD");
  if (v == nullptr || v[0] == '\0' || std::strcmp(v, "native") == 0) {
    return WidthMode::kNative;
  }
  if (std::strcmp(v, "scalar") == 0) {
    return WidthMode::kScalar;
  }
  throw std::invalid_argument(
      std::string("BIOSIM_SIMD must be 'scalar' or 'native', got '") + v +
      "'");
}

/// Runtime ISA probe for the kernel dispatch. Compile-time support for
/// the AVX2 TU is a separate question (BIOSIM_SIMD_HAS_AVX2_TU).
inline bool HasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace biosim::simd

#endif  // BIOSIM_CORE_SIMD_H_
