// Chunked data-parallel primitives for the CPU execution engine.
//
// BioDynaMo parallelizes its operations with OpenMP; we do the same when
// OpenMP is available and fall back to a plain serial loop otherwise, so the
// library builds on any toolchain. All loops are deterministic: reductions
// combine per-chunk partials in chunk order.
//
// Concurrency contract (enforced statically — docs/static-analysis.md):
// these are the ONLY sanctioned parallel primitives in sim code. Raw
// `#pragma omp ... reduction(...)` clauses and atomic float accumulation are
// rejected by biosim-lint (`fp-omp-reduction`) because their combine order
// depends on thread scheduling; ParallelReduce is the deterministic
// replacement. Shared state mutated inside a ParallelFor(Chunks) body must
// be guarded (core/analysis.h BIOSIM_GUARDED_BY + Mutex) or be provably
// per-chunk/per-thread; the TSan build mode (`BIOSIM_SANITIZE=thread
// scripts/check.sh`) checks this dynamically.
#ifndef BIOSIM_CORE_THREAD_POOL_H_
#define BIOSIM_CORE_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/analysis.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace biosim {

/// Execution policy for engine operations; mirrors the paper's serial vs
/// multithreaded benchmark variants.
enum class ExecMode : uint8_t {
  kSerial,
  kParallel,
};

inline uint32_t HardwareThreads() {
#ifdef _OPENMP
  return static_cast<uint32_t>(omp_get_max_threads());
#else
  return 1;
#endif
}

/// Set the worker count for subsequent kParallel loops; 0 keeps the runtime
/// default.
inline void SetNumThreads(uint32_t n) {
#ifdef _OPENMP
  if (n > 0) {
    omp_set_num_threads(static_cast<int>(n));
  }
#else
  (void)n;
#endif
}

/// Run `fn(i)` for every i in [0, n).
template <typename F>
void ParallelFor(ExecMode mode, size_t n, F&& fn) {
  if (mode == ExecMode::kParallel) {
#ifdef _OPENMP
    // `token` re-publishes the end-of-region barrier to TSan (see
    // core/analysis.h); the split parallel/for form gives each worker a
    // spot to release after its share of iterations. Identical static
    // chunking to the combined `parallel for` pragma.
    char token = 0;
#pragma omp parallel
    {
#pragma omp for schedule(static) nowait
      for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
        fn(static_cast<size_t>(i));
      }
      TsanRelease(&token);
    }
    TsanAcquire(&token);
    return;
#endif
  }
  for (size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

/// Run `fn(begin, end)` over contiguous chunks of [0, n). Useful when the
/// body wants per-chunk scratch state (e.g. the uniform grid builder).
template <typename F>
void ParallelForChunks(ExecMode mode, size_t n, F&& fn) {
  if (mode == ExecMode::kParallel) {
#ifdef _OPENMP
    char token = 0;
#pragma omp parallel
    {
      size_t nthreads = static_cast<size_t>(omp_get_num_threads());
      size_t tid = static_cast<size_t>(omp_get_thread_num());
      size_t chunk = (n + nthreads - 1) / nthreads;
      size_t begin = tid * chunk;
      size_t end = begin + chunk < n ? begin + chunk : n;
      if (begin < end) {
        fn(begin, end);
      }
      TsanRelease(&token);
    }
    TsanAcquire(&token);
    return;
#endif
  }
  if (n > 0) {
    fn(size_t{0}, n);
  }
}

/// Deterministic parallel reduction: `fn(i)` values combined with `combine`,
/// partials merged in chunk order so the result is independent of scheduling.
template <typename T, typename F, typename C>
T ParallelReduce(ExecMode mode, size_t n, T init, F&& fn, C&& combine) {
  if (mode == ExecMode::kParallel) {
#ifdef _OPENMP
    int nthreads = omp_get_max_threads();
    std::vector<T> partials(static_cast<size_t>(nthreads), init);
    char token = 0;
#pragma omp parallel
    {
      size_t tid = static_cast<size_t>(omp_get_thread_num());
      T local = init;
#pragma omp for schedule(static) nowait
      for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
        local = combine(local, fn(static_cast<size_t>(i)));
      }
      partials[tid] = local;
      TsanRelease(&token);
    }
    // The acquire also orders the workers' partials[] stores before the
    // chunk-ordered merge below.
    TsanAcquire(&token);
    T result = init;
    for (const T& p : partials) {
      result = combine(result, p);
    }
    return result;
#endif
  }
  T result = init;
  for (size_t i = 0; i < n; ++i) {
    result = combine(result, fn(i));
  }
  return result;
}

/// A small static task graph for overlapping independent scheduler ops
/// (cf. exafmm's include/thread.h tasking idiom). Nodes are appended in a
/// fixed order and may only depend on already-added nodes, so the graph is
/// acyclic by construction and has one deterministic topological order: the
/// insertion order.
///
/// Run(kSerial) executes the bodies in insertion order on the calling
/// thread — bitwise identical to inlining them. Run(kParallel) executes in
/// dependency waves: every node whose dependencies have completed runs on
/// its own std::thread, and the join at the end of each wave is the only
/// synchronization. std::thread creation/join gives clean happens-before
/// edges (visible to TSan without annotations), and node bodies are free to
/// open their own OpenMP regions — each native thread forms its own team.
///
/// Determinism contract (docs/determinism.md): the graph introduces no new
/// floating-point combine order — each node body runs unchanged, exactly
/// once — so overlapping is bitwise-neutral PROVIDED concurrent nodes touch
/// disjoint state. That disjointness is the caller's contract (e.g.
/// mechanics writes positions/grid while diffusion writes concentration
/// fields, with the deposit merge already retired before the fork).
class TaskGraph {
 public:
  using TaskFn = std::function<void()>;

  /// Append a node; `deps` lists node ids returned by earlier AddNode
  /// calls. Returns the new node's id.
  size_t AddNode(std::string name, TaskFn fn, std::vector<size_t> deps = {}) {
    const size_t id = nodes_.size();
    for (size_t d : deps) {
      if (d >= id) {
        throw std::invalid_argument("TaskGraph: node '" + name +
                                    "' depends on a node not yet added");
      }
    }
    nodes_.push_back(Node{std::move(name), std::move(fn), std::move(deps)});
    return id;
  }

  size_t size() const { return nodes_.size(); }

  /// Run every node exactly once, then clear the graph. If bodies throw,
  /// the in-flight wave still drains (no node is abandoned mid-run), no
  /// further wave starts, and the lowest-id exception is rethrown.
  void Run(ExecMode mode) {
    const size_t n = nodes_.size();
    if (mode != ExecMode::kParallel || n <= 1) {
      for (Node& node : nodes_) {
        node.fn();
      }
      nodes_.clear();
      return;
    }
    std::vector<std::exception_ptr> errors(n);
    std::vector<char> done(n, 0);
    size_t completed = 0;
    bool failed = false;
    while (completed < n && !failed) {
      // Deps always point at earlier nodes, so the first unfinished node is
      // always ready — the wave is never empty and the loop cannot stall.
      std::vector<size_t> wave;
      for (size_t i = 0; i < n; ++i) {
        if (done[i]) {
          continue;
        }
        bool ready = true;
        for (size_t d : nodes_[i].deps) {
          ready = ready && done[d] != 0;
        }
        if (ready) {
          wave.push_back(i);
        }
      }
      auto run_one = [&](size_t i) {
        try {
          nodes_[i].fn();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      };
      std::vector<std::thread> workers;
      workers.reserve(wave.size() - 1);
      for (size_t k = 1; k < wave.size(); ++k) {
        workers.emplace_back(run_one, wave[k]);
      }
      run_one(wave[0]);  // the calling thread takes the first ready node
      for (std::thread& t : workers) {
        t.join();
      }
      for (size_t i : wave) {
        done[i] = 1;
        ++completed;
        failed = failed || errors[i] != nullptr;
      }
    }
    nodes_.clear();
    for (size_t i = 0; i < n; ++i) {
      if (errors[i] != nullptr) {
        std::rethrow_exception(errors[i]);
      }
    }
  }

 private:
  struct Node {
    std::string name;
    TaskFn fn;
    std::vector<size_t> deps;
  };

  std::vector<Node> nodes_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_THREAD_POOL_H_
