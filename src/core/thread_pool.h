// Chunked data-parallel primitives for the CPU execution engine.
//
// BioDynaMo parallelizes its operations with OpenMP; we do the same when
// OpenMP is available and fall back to a plain serial loop otherwise, so the
// library builds on any toolchain. All loops are deterministic: reductions
// combine per-chunk partials in chunk order.
//
// Concurrency contract (enforced statically — docs/static-analysis.md):
// these are the ONLY sanctioned parallel primitives in sim code. Raw
// `#pragma omp ... reduction(...)` clauses and atomic float accumulation are
// rejected by biosim-lint (`fp-omp-reduction`) because their combine order
// depends on thread scheduling; ParallelReduce is the deterministic
// replacement. Shared state mutated inside a ParallelFor(Chunks) body must
// be guarded (core/analysis.h BIOSIM_GUARDED_BY + Mutex) or be provably
// per-chunk/per-thread; the TSan build mode (`BIOSIM_SANITIZE=thread
// scripts/check.sh`) checks this dynamically.
#ifndef BIOSIM_CORE_THREAD_POOL_H_
#define BIOSIM_CORE_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/analysis.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace biosim {

/// Execution policy for engine operations; mirrors the paper's serial vs
/// multithreaded benchmark variants.
enum class ExecMode : uint8_t {
  kSerial,
  kParallel,
};

inline uint32_t HardwareThreads() {
#ifdef _OPENMP
  return static_cast<uint32_t>(omp_get_max_threads());
#else
  return 1;
#endif
}

/// Set the worker count for subsequent kParallel loops; 0 keeps the runtime
/// default.
inline void SetNumThreads(uint32_t n) {
#ifdef _OPENMP
  if (n > 0) {
    omp_set_num_threads(static_cast<int>(n));
  }
#else
  (void)n;
#endif
}

/// Run `fn(i)` for every i in [0, n).
template <typename F>
void ParallelFor(ExecMode mode, size_t n, F&& fn) {
  if (mode == ExecMode::kParallel) {
#ifdef _OPENMP
    // `token` re-publishes the end-of-region barrier to TSan (see
    // core/analysis.h); the split parallel/for form gives each worker a
    // spot to release after its share of iterations. Identical static
    // chunking to the combined `parallel for` pragma.
    char token = 0;
#pragma omp parallel
    {
#pragma omp for schedule(static) nowait
      for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
        fn(static_cast<size_t>(i));
      }
      TsanRelease(&token);
    }
    TsanAcquire(&token);
    return;
#endif
  }
  for (size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

/// Run `fn(begin, end)` over contiguous chunks of [0, n). Useful when the
/// body wants per-chunk scratch state (e.g. the uniform grid builder).
template <typename F>
void ParallelForChunks(ExecMode mode, size_t n, F&& fn) {
  if (mode == ExecMode::kParallel) {
#ifdef _OPENMP
    char token = 0;
#pragma omp parallel
    {
      size_t nthreads = static_cast<size_t>(omp_get_num_threads());
      size_t tid = static_cast<size_t>(omp_get_thread_num());
      size_t chunk = (n + nthreads - 1) / nthreads;
      size_t begin = tid * chunk;
      size_t end = begin + chunk < n ? begin + chunk : n;
      if (begin < end) {
        fn(begin, end);
      }
      TsanRelease(&token);
    }
    TsanAcquire(&token);
    return;
#endif
  }
  if (n > 0) {
    fn(size_t{0}, n);
  }
}

/// Deterministic parallel reduction: `fn(i)` values combined with `combine`,
/// partials merged in chunk order so the result is independent of scheduling.
template <typename T, typename F, typename C>
T ParallelReduce(ExecMode mode, size_t n, T init, F&& fn, C&& combine) {
  if (mode == ExecMode::kParallel) {
#ifdef _OPENMP
    int nthreads = omp_get_max_threads();
    std::vector<T> partials(static_cast<size_t>(nthreads), init);
    char token = 0;
#pragma omp parallel
    {
      size_t tid = static_cast<size_t>(omp_get_thread_num());
      T local = init;
#pragma omp for schedule(static) nowait
      for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
        local = combine(local, fn(static_cast<size_t>(i)));
      }
      partials[tid] = local;
      TsanRelease(&token);
    }
    // The acquire also orders the workers' partials[] stores before the
    // chunk-ordered merge below.
    TsanAcquire(&token);
    T result = init;
    for (const T& p : partials) {
      result = combine(result, p);
    }
    return result;
#endif
  }
  T result = init;
  for (size_t i = 0; i < n; ++i) {
    result = combine(result, fn(i));
  }
  return result;
}

}  // namespace biosim

#endif  // BIOSIM_CORE_THREAD_POOL_H_
