// Capacity-managed, cache-line-aligned scratch storage.
//
// The fused force kernel re-gathers its candidate block into scratch
// arrays for every box. `std::vector::resize` is the wrong tool for that
// scratch twice over: growth value-initializes every element the gather
// is about to overwrite anyway, and the allocation has no alignment
// guarantee beyond alignof(T) — the SIMD kernels want their SoA
// component arrays on 64-byte boundaries (simd::kAlignment).
//
// AlignedBuffer<T> fixes both: EnsureCapacity(n) returns a pointer to at
// least n elements of aligned, *uninitialized* storage. No constructors
// run on growth; contents are preserved only while the capacity does not
// change (the gather overwrites its prefix every box, so nothing is
// copied on growth either). Restricted to trivial T so raw byte storage
// is a valid object representation (C++20 implicit-lifetime rules).
#ifndef BIOSIM_CORE_ALIGNED_BUFFER_H_
#define BIOSIM_CORE_ALIGNED_BUFFER_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "core/simd.h"

namespace biosim {

template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "AlignedBuffer hands out uninitialized storage; only "
                "trivial element types are sound");

 public:
  AlignedBuffer() = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        capacity_(std::exchange(o.capacity_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      Release();
      data_ = std::exchange(o.data_, nullptr);
      capacity_ = std::exchange(o.capacity_, 0);
    }
    return *this;
  }
  ~AlignedBuffer() { Release(); }

  /// Storage for at least `n` elements, aligned to simd::kAlignment.
  /// Growth is geometric (so per-box EnsureCapacity calls amortize to
  /// O(1) allocations) and *discards* previous contents; when `n` fits
  /// the current capacity the pointer and contents are unchanged.
  T* EnsureCapacity(size_t n) {
    if (n > capacity_) {
      size_t want = capacity_ * 2;
      if (want < n) {
        want = n;
      }
      if (want < kMinCapacity) {
        want = kMinCapacity;
      }
      Release();
      data_ = static_cast<T*>(::operator new(
          want * sizeof(T), std::align_val_t{simd::kAlignment}));
      capacity_ = want;
    }
    return data_;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t capacity() const { return capacity_; }

 private:
  static constexpr size_t kMinCapacity = simd::kAlignment / sizeof(T) > 0
                                             ? simd::kAlignment / sizeof(T)
                                             : 1;

  void Release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{simd::kAlignment});
      data_ = nullptr;
      capacity_ = 0;
    }
  }

  T* data_ = nullptr;
  size_t capacity_ = 0;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_ALIGNED_BUFFER_H_
