// Wall-clock timing utilities used by the scheduler profiler and benches.
#ifndef BIOSIM_CORE_TIMER_H_
#define BIOSIM_CORE_TIMER_H_

#include <chrono>
#include <cstdint>

#include "core/histogram.h"

namespace biosim {

/// Monotonic wall-clock stopwatch with millisecond/microsecond readouts.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMs() const { return ElapsedSeconds() * 1e3; }
  double ElapsedUs() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed milliseconds to a sink on destruction. Two sink
/// flavors: a bare accumulator (`double*`) for one-off measurements, or a
/// Histogram — the scheduler's form, which keeps the full per-sample
/// distribution so min/max/p95 per operation come for free
/// (OpProfile::Hist hands out the histogram of a named operation).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink_ms) : sink_(sink_ms) {}
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {}
  ~ScopedTimer() {
    double ms = timer_.ElapsedMs();
    if (sink_ != nullptr) {
      *sink_ += ms;
    }
    if (hist_ != nullptr) {
      hist_->Add(ms);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_ = nullptr;
  Histogram* hist_ = nullptr;
  Timer timer_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_TIMER_H_
