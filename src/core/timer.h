// Wall-clock timing utilities used by the scheduler profiler and benches.
#ifndef BIOSIM_CORE_TIMER_H_
#define BIOSIM_CORE_TIMER_H_

#include <chrono>
#include <cstdint>

namespace biosim {

/// Monotonic wall-clock stopwatch with millisecond/microsecond readouts.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMs() const { return ElapsedSeconds() * 1e3; }
  double ElapsedUs() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed milliseconds to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink_ms) : sink_(sink_ms) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedMs(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  Timer timer_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_TIMER_H_
