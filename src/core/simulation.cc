#include "core/simulation.h"

#include <algorithm>
#include <utility>

#include "core/analysis.h"
#include "core/behaviors/grow_divide.h"
#include "core/cell.h"
#include "core/sim_context.h"
#include "core/state_hash.h"
#include "core/timer.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "spatial/uniform_grid.h"
#include "spatial/zorder_sort.h"

namespace biosim {

// Defined here rather than in a sim_context.cc so the engine layer (which
// already links biosim_diffusion) owns the dependency on DiffusionGrid.
void SimContext::DepositSubstance(const Double3& pos, double amount) {
  if (diffusion_grid == nullptr) {
    return;
  }
  if (deposit_sink != nullptr) {
    deposit_sink->push_back({pos, amount});
    return;
  }
  // Direct-apply fallback for serial use without an installed sink; this is
  // one of the two sanctioned call sites of the raw field write.
  diffusion_grid->IncreaseConcentrationBy(pos, amount);  // biosim-lint: allow(direct-deposit)
}

Simulation::Simulation(Param param)
    : param_(param),
      env_(std::make_unique<UniformGridEnvironment>()),
      backend_(std::make_unique<CpuMechanicsBackend>()) {
  param_.Validate();
  SetNumThreads(param_.num_threads);
}

Simulation::~Simulation() = default;

void Simulation::SetEnvironment(std::unique_ptr<Environment> env) {
  env_ = std::move(env);
}

void Simulation::SetMechanicsBackend(std::unique_ptr<MechanicsBackend> backend) {
  backend_ = std::move(backend);
}

void Simulation::AddDiffusionGrid(std::unique_ptr<DiffusionGrid> grid) {
  diffusion_grids_.push_back(std::move(grid));
}

DiffusionGrid* Simulation::diffusion_grid() {
  return diffusion_grids_.empty() ? nullptr : diffusion_grids_.front().get();
}

DiffusionGrid* Simulation::diffusion_grid(const std::string& substance) {
  for (auto& g : diffusion_grids_) {
    if (g->substance_name() == substance) {
      return g.get();
    }
  }
  return nullptr;
}

AgentIndex Simulation::AddCell(const Double3& position, double diameter) {
  NewAgentSpec spec;
  spec.position = position;
  spec.diameter = diameter;
  spec.adherence = param_.default_adherence;
  spec.density = param_.default_density;
  return rm_.AddAgent(std::move(spec));
}

void Simulation::Create3DCellGrid(size_t cells_per_dim, double spacing,
                                  double diameter, double divide_threshold,
                                  double growth_rate) {
  rm_.Reserve(rm_.size() + cells_per_dim * cells_per_dim * cells_per_dim);
  for (size_t x = 0; x < cells_per_dim; ++x) {
    for (size_t y = 0; y < cells_per_dim; ++y) {
      for (size_t z = 0; z < cells_per_dim; ++z) {
        Double3 pos{param_.min_bound + (static_cast<double>(x) + 0.5) * spacing,
                    param_.min_bound + (static_cast<double>(y) + 0.5) * spacing,
                    param_.min_bound + (static_cast<double>(z) + 0.5) * spacing};
        AgentIndex idx = AddCell(pos, diameter);
        rm_.AttachBehavior(
            idx, std::make_unique<GrowDivide>(divide_threshold, growth_rate));
      }
    }
  }
}

void Simulation::CreateRandomCells(size_t count, double diameter) {
  Random rng(param_.random_seed);
  rm_.Reserve(rm_.size() + count);
  for (size_t i = 0; i < count; ++i) {
    AddCell(rng.UniformInCube(param_.min_bound, param_.max_bound), diameter);
  }
}

void Simulation::RunBehaviors() {
  size_t n = rm_.size();

  // Deferred structural changes make parallel execution safe; the commit
  // phase re-sorts them by mother row, so the outcome is thread-count
  // independent (each agent's RNG stream is keyed by uid and step). Chunked
  // so each worker emits one trace span covering its contiguous range —
  // the per-worker tracks in the timeline come from here.
  //
  // Substance deposits are buffered per chunk and applied below in chunk
  // order. Chunks are contiguous ascending agent ranges, so the merged
  // sequence is the global agent-index order no matter how many workers ran
  // — the concentration field receives the same FP additions in the same
  // order at any thread count (docs/determinism.md).
  Mutex deposit_mutex;
  std::vector<std::pair<size_t, std::vector<PendingDeposit>>> deposit_chunks;
  ParallelForChunks(mode_, n, [&](size_t begin, size_t end) {
    TRACE_SCOPE("behaviors chunk");
    SimContext ctx(param_, rm_, step_);
    ctx.diffusion_grid = diffusion_grid();
    std::vector<PendingDeposit> deposits;
    ctx.deposit_sink = &deposits;
    for (size_t i = begin; i < end; ++i) {
      if (rm_.behaviors_of(i).empty()) {
        continue;
      }
      Cell cell(rm_, i);
      for (const auto& b : rm_.behaviors_of(i)) {
        b->Run(cell, ctx);
      }
    }
    if (!deposits.empty()) {
      MutexLock lock(deposit_mutex);
      deposit_chunks.emplace_back(begin, std::move(deposits));
    }
  });

  if (!deposit_chunks.empty()) {
    std::sort(deposit_chunks.begin(), deposit_chunks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    DiffusionGrid* grid = diffusion_grid();
    for (const auto& [begin, deposits] : deposit_chunks) {
      (void)begin;
      for (const PendingDeposit& d : deposits) {
        // The serial chunk-ordered merge: the other sanctioned raw-write
        // site (docs/determinism.md).
        grid->IncreaseConcentrationBy(d.position, d.amount);  // biosim-lint: allow(direct-deposit)
      }
    }
  }
}

uint64_t Simulation::StateHash() const {
  uint64_t h = HashBytes(&step_, sizeof(step_));
  h = HashPopulation(rm_, h);
  for (const auto& g : diffusion_grids_) {
    h = HashDoubles(g->raw(), h);
  }
  return h;
}

void Simulation::Simulate(uint64_t steps) {
  for (uint64_t s = 0; s < steps; ++s) {
    TRACE_SCOPE("step");
    {
      TRACE_SCOPE("cell behaviors");
      PERF_SCOPE("cell behaviors");
      ScopedTimer t(profile_.Hist("cell behaviors"));
      RunBehaviors();
    }
    {
      TRACE_SCOPE("commit");
      PERF_SCOPE("commit");
      ScopedTimer t(profile_.Hist("commit"));
      rm_.CommitStructuralChanges();
    }
    if (param_.zorder_cadence > 0 && !rm_.empty() &&
        step_ % param_.zorder_cadence == 0) {
      // Host-side Improvement II: periodically re-permute the SoA rows into
      // Z-order so the force pass streams memory-adjacent neighbors. The
      // permutation is a pure function of the positions (stable sort on
      // Morton keys), so it is identical at any thread count; quantization
      // uses the interaction radius — the uniform grid's box size — so the
      // curve orders agents box-by-box.
      TRACE_SCOPE("z-order sort");
      PERF_SCOPE("z-order sort");
      ScopedTimer t(profile_.Hist("z-order sort"));
      double cell = rm_.LargestDiameter() + param_.interaction_radius_margin;
      SortAgentsByZOrder(rm_, cell, mode_);
    }
    {
      TRACE_SCOPE("neighborhood update");
      PERF_SCOPE("neighborhood update");
      ScopedTimer t(profile_.Hist("neighborhood update"));
      env_->Update(rm_, param_, mode_);
    }
    {
      TRACE_SCOPE("mechanical forces");
      PERF_SCOPE("mechanical forces");
      ScopedTimer t(profile_.Hist("mechanical forces"));
      backend_->Step(rm_, *env_, param_, mode_, &profile_);
    }
    if (!diffusion_grids_.empty()) {
      TRACE_SCOPE("diffusion");
      PERF_SCOPE("diffusion");
      ScopedTimer t(profile_.Hist("diffusion"));
      for (auto& g : diffusion_grids_) {
        g->Step(param_.simulation_time_step, mode_);
      }
    }
    ++step_;
  }
}

}  // namespace biosim
