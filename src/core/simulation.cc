#include "core/simulation.h"

#include <algorithm>
#include <utility>

#include "core/analysis.h"
#include "core/behaviors/grow_divide.h"
#include "core/cell.h"
#include "core/sim_context.h"
#include "core/state_hash.h"
#include "core/timer.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "spatial/uniform_grid.h"
#include "spatial/zorder_sort.h"

namespace biosim {

// Defined here rather than in a sim_context.cc so the engine layer (which
// already links biosim_diffusion) owns the dependency on DiffusionGrid.
void SimContext::DepositSubstance(const Double3& pos, double amount) {
  DepositSubstance(pos, amount, diffusion_grid);
}

void SimContext::DepositSubstance(const Double3& pos, double amount,
                                  DiffusionGrid* grid) {
  if (grid == nullptr) {
    return;
  }
  if (deposit_sink != nullptr) {
    deposit_sink->push_back({pos, amount, grid});
    return;
  }
  // Direct-apply fallback for serial use without an installed sink; this is
  // one of the two sanctioned call sites of the raw field write.
  grid->IncreaseConcentrationBy(pos, amount);  // biosim-lint: allow(direct-deposit)
}

DiffusionGrid* SimContext::FindSubstance(const std::string& name) const {
  if (diffusion_grids == nullptr) {
    return nullptr;
  }
  for (const auto& g : *diffusion_grids) {
    if (g->substance_name() == name) {
      return g.get();
    }
  }
  return nullptr;
}

Simulation::Simulation(Param param)
    : param_(param),
      env_(std::make_unique<UniformGridEnvironment>()),
      backend_(std::make_unique<CpuMechanicsBackend>()) {
  param_.Validate();
  SetNumThreads(param_.num_threads);
}

Simulation::~Simulation() = default;

void Simulation::SetEnvironment(std::unique_ptr<Environment> env) {
  env_ = std::move(env);
}

void Simulation::SetMechanicsBackend(std::unique_ptr<MechanicsBackend> backend) {
  backend_ = std::move(backend);
}

void Simulation::AddDiffusionGrid(std::unique_ptr<DiffusionGrid> grid) {
  diffusion_grids_.push_back(std::move(grid));
}

DiffusionGrid* Simulation::diffusion_grid() {
  return diffusion_grids_.empty() ? nullptr : diffusion_grids_.front().get();
}

DiffusionGrid* Simulation::diffusion_grid(const std::string& substance) {
  for (auto& g : diffusion_grids_) {
    if (g->substance_name() == substance) {
      return g.get();
    }
  }
  return nullptr;
}

AgentIndex Simulation::AddCell(const Double3& position, double diameter) {
  NewAgentSpec spec;
  spec.position = position;
  spec.diameter = diameter;
  spec.adherence = param_.default_adherence;
  spec.density = param_.default_density;
  return rm_.AddAgent(std::move(spec));
}

void Simulation::Create3DCellGrid(size_t cells_per_dim, double spacing,
                                  double diameter, double divide_threshold,
                                  double growth_rate) {
  rm_.Reserve(rm_.size() + cells_per_dim * cells_per_dim * cells_per_dim);
  for (size_t x = 0; x < cells_per_dim; ++x) {
    for (size_t y = 0; y < cells_per_dim; ++y) {
      for (size_t z = 0; z < cells_per_dim; ++z) {
        Double3 pos{param_.min_bound + (static_cast<double>(x) + 0.5) * spacing,
                    param_.min_bound + (static_cast<double>(y) + 0.5) * spacing,
                    param_.min_bound + (static_cast<double>(z) + 0.5) * spacing};
        AgentIndex idx = AddCell(pos, diameter);
        rm_.AttachBehavior(
            idx, std::make_unique<GrowDivide>(divide_threshold, growth_rate));
      }
    }
  }
}

void Simulation::CreateRandomCells(size_t count, double diameter) {
  // Each call gets its own seed-derived stream; a second fill used to reuse
  // the first call's stream and stack every new cell onto an existing one.
  // Call 0 keeps the historical positions byte-identical.
  const uint64_t call = random_cells_calls_++;
  Random rng(call == 0 ? param_.random_seed
                       : SplitMix64::Mix(param_.random_seed + call));
  rm_.Reserve(rm_.size() + count);
  for (size_t i = 0; i < count; ++i) {
    AddCell(rng.UniformInCube(param_.min_bound, param_.max_bound), diameter);
  }
}

void Simulation::RunBehaviors() {
  size_t n = rm_.size();

  // Deferred structural changes make parallel execution safe; the commit
  // phase re-sorts them by mother row, so the outcome is thread-count
  // independent (each agent's RNG stream is keyed by uid and step). Chunked
  // so each worker emits one trace span covering its contiguous range —
  // the per-worker tracks in the timeline come from here.
  //
  // Substance deposits are buffered per chunk and applied below in chunk
  // order. Chunks are contiguous ascending agent ranges, so the merged
  // sequence is the global agent-index order no matter how many workers ran
  // — the concentration field receives the same FP additions in the same
  // order at any thread count (docs/determinism.md).
  Mutex deposit_mutex;
  std::vector<std::pair<size_t, std::vector<PendingDeposit>>> deposit_chunks;
  ParallelForChunks(mode_, n, [&](size_t begin, size_t end) {
    TRACE_SCOPE("behaviors chunk");
    SimContext ctx(param_, rm_, step_);
    ctx.diffusion_grid = diffusion_grid();
    ctx.diffusion_grids = &diffusion_grids_;
    std::vector<PendingDeposit> deposits;
    ctx.deposit_sink = &deposits;
    for (size_t i = begin; i < end; ++i) {
      if (rm_.behaviors_of(i).empty()) {
        continue;
      }
      Cell cell(rm_, i);
      for (const auto& b : rm_.behaviors_of(i)) {
        b->Run(cell, ctx);
      }
    }
    if (!deposits.empty()) {
      MutexLock lock(deposit_mutex);
      deposit_chunks.emplace_back(begin, std::move(deposits));
    }
  });

  if (!deposit_chunks.empty()) {
    std::sort(deposit_chunks.begin(), deposit_chunks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [begin, deposits] : deposit_chunks) {
      (void)begin;
      for (const PendingDeposit& d : deposits) {
        // The serial chunk-ordered merge: the other sanctioned raw-write
        // site (docs/determinism.md). Each deposit carries its target grid
        // (the old code collapsed every substance into the first grid), and
        // each grid still receives its own deposits in global agent-index
        // order — a subsequence of an ordered stream stays ordered.
        d.grid->IncreaseConcentrationBy(d.position, d.amount);  // biosim-lint: allow(direct-deposit)
      }
    }
  }
}

namespace {

// TraceScope keeps the name pointer, so per-shard track names must be
// literals with static storage; shards beyond the table share the last name
// (display-only — the simulation itself has no shard-count limit).
const char* ShardTraceName(size_t k) {
  static constexpr const char* kNames[] = {
      "shard 0 behaviors",  "shard 1 behaviors",  "shard 2 behaviors",
      "shard 3 behaviors",  "shard 4 behaviors",  "shard 5 behaviors",
      "shard 6 behaviors",  "shard 7 behaviors",  "shard 8 behaviors",
      "shard 9 behaviors",  "shard 10 behaviors", "shard 11 behaviors",
      "shard 12 behaviors", "shard 13 behaviors", "shard 14 behaviors",
      "shard 15+ behaviors"};
  constexpr size_t kLast = sizeof(kNames) / sizeof(kNames[0]) - 1;
  return kNames[k < kLast ? k : kLast];
}

}  // namespace

void Simulation::RunBehaviorsSharded() {
  const uint32_t num_shards = shard_runtime_->shards();

  // A deposit tagged with the row that emitted it. Owned rows are disjoint
  // across shards and each shard walks its rows ascending, so a global
  // stable sort on the row reconstructs the exact apply sequence of the
  // unsharded pass: ascending agent row, behavior order within a row
  // (docs/determinism.md, docs/sharding.md).
  struct TaggedDeposit {
    int32_t row;
    PendingDeposit deposit;
  };
  Mutex deposit_mutex;
  std::vector<TaggedDeposit> tagged;

  BIOSIM_SHARD_SCOPE_BEGIN();
  ParallelFor(mode_, num_shards, [&](size_t k) {
    TRACE_SCOPE(ShardTraceName(k));
    SimContext ctx(param_, rm_, step_);
    ctx.diffusion_grid = diffusion_grid();
    ctx.diffusion_grids = &diffusion_grids_;
    std::vector<PendingDeposit> sink;
    ctx.deposit_sink = &sink;
    std::vector<TaggedDeposit> local;
    for (int32_t row : shard_runtime_->owned_rows(static_cast<uint32_t>(k))) {
      const auto i = static_cast<size_t>(row);
      if (rm_.behaviors_of(i).empty()) {
        continue;
      }
      const size_t mark = sink.size();
      Cell cell(rm_, i);
      for (const auto& b : rm_.behaviors_of(i)) {
        b->Run(cell, ctx);
      }
      for (size_t d = mark; d < sink.size(); ++d) {
        local.push_back({row, sink[d]});
      }
    }
    if (!local.empty()) {
      MutexLock lock(deposit_mutex);
      tagged.insert(tagged.end(), local.begin(), local.end());
    }
  });
  BIOSIM_SHARD_SCOPE_END();

  if (!tagged.empty()) {
    std::stable_sort(tagged.begin(), tagged.end(),
                     [](const TaggedDeposit& a, const TaggedDeposit& b) {
                       return a.row < b.row;
                     });
    for (const TaggedDeposit& t : tagged) {
      // Row-ordered serial merge — the sharded twin of RunBehaviors' chunk
      // merge, same sanctioned raw-write site (docs/determinism.md).
      t.deposit.grid->IncreaseConcentrationBy(t.deposit.position, t.deposit.amount);  // biosim-lint: allow(direct-deposit)
    }
  }
}

void Simulation::RunShardedOps() {
  if (!rm_.empty()) {
    {
      // Partition B: commit / z-order may have moved, added or permuted
      // rows; ownership and the halo protocol need the post-commit
      // positions.
      TRACE_SCOPE("partition");
      PERF_SCOPE("partition");
      ScopedTimer t(profile_.Hist("partition"));
      shard_runtime_->Repartition(rm_, param_);
    }
    {
      TRACE_SCOPE("halo exchange");
      PERF_SCOPE("halo exchange");
      ScopedTimer t(profile_.Hist("halo exchange"));
      shard_runtime_->ExchangeHalos(rm_, mode_);
    }
    {
      // The sharded counterpart of "neighborhood update": per-shard
      // occupancy-compacted CSRs instead of the one global grid.
      TRACE_SCOPE("shard grids");
      PERF_SCOPE("shard grids");
      ScopedTimer t(profile_.Hist("shard grids"));
      shard_runtime_->UpdateGrids(rm_, mode_);
    }
    {
      TRACE_SCOPE("mechanical forces");
      PERF_SCOPE("mechanical forces");
      ScopedTimer t(profile_.Hist("mechanical forces"));
      auto* cpu = dynamic_cast<CpuMechanicsBackend*>(backend_.get());
      if (cpu == nullptr) {
        throw std::invalid_argument(
            "Simulation: num_shards > 0 requires the CPU mechanics backend "
            "(the sharded force pass drives the fused CSR kernel directly)");
      }
      MechanicalForcesOp& op = cpu->mutable_op();
      op.ComputeDisplacementsSharded(
          rm_, shard_runtime_->ForceInputs(),
          shard_runtime_->geometry().interaction_radius,
          shard_runtime_->geometry().box_length, param_, mode_);
      op.ApplyDisplacements(rm_, param_, mode_);
    }
  }
  if (!diffusion_grids_.empty()) {
    TRACE_SCOPE("diffusion");
    PERF_SCOPE("diffusion");
    ScopedTimer t(profile_.Hist("diffusion"));
    for (auto& g : diffusion_grids_) {
      g->Step(param_.simulation_time_step, mode_);
    }
  }
}

uint64_t Simulation::StateHash() const {
  uint64_t h = HashBytes(&step_, sizeof(step_));
  h = HashPopulation(rm_, h);
  for (const auto& g : diffusion_grids_) {
    h = HashDoubles(g->raw(), h);
  }
  return h;
}

void Simulation::Simulate(uint64_t steps) {
  if (param_.num_shards > 0) {
    if (!shard_runtime_ || shard_runtime_->shards() != param_.num_shards) {
      shard_runtime_ = std::make_unique<ShardRuntime>(param_.num_shards,
                                                      param_.shard_balance);
    }
    for (uint64_t s = 0; s < steps; ++s) {
      TRACE_SCOPE("step");
      const bool have_agents = !rm_.empty();
      if (have_agents) {
        // Partition A: ownership for the behaviors pass, derived from the
        // positions the behaviors will read.
        TRACE_SCOPE("partition");
        PERF_SCOPE("partition");
        ScopedTimer t(profile_.Hist("partition"));
        shard_runtime_->Repartition(rm_, param_);
      }
      {
        TRACE_SCOPE("cell behaviors");
        PERF_SCOPE("cell behaviors");
        ScopedTimer t(profile_.Hist("cell behaviors"));
        if (have_agents) {
          RunBehaviorsSharded();
        }
      }
      {
        TRACE_SCOPE("commit");
        PERF_SCOPE("commit");
        ScopedTimer t(profile_.Hist("commit"));
        rm_.CommitStructuralChanges();
      }
      if (param_.zorder_cadence > 0 && !rm_.empty() &&
          step_ % param_.zorder_cadence == 0) {
        TRACE_SCOPE("z-order sort");
        PERF_SCOPE("z-order sort");
        ScopedTimer t(profile_.Hist("z-order sort"));
        double cell = rm_.LargestDiameter() + param_.interaction_radius_margin;
        SortAgentsByZOrder(rm_, cell, mode_);
      }
      RunShardedOps();
      ++step_;
    }
    return;
  }
  const bool overlap = param_.overlap_ops && !diffusion_grids_.empty();
  if (overlap) {
    // Pre-create every op histogram the overlapped nodes will touch:
    // OpProfile::Hist mutates its name->index map on first use, and the
    // diffusion node runs on a spawned thread. Creating the entries here —
    // before any fork — makes the later lookups read-only. (The deque
    // storage keeps Histogram addresses stable.)
    profile_.Hist("z-order sort");
    profile_.Hist("neighborhood update");
    profile_.Hist("mechanical forces");
    profile_.Hist("diffusion");
  }
  for (uint64_t s = 0; s < steps; ++s) {
    TRACE_SCOPE("step");
    {
      TRACE_SCOPE("cell behaviors");
      PERF_SCOPE("cell behaviors");
      ScopedTimer t(profile_.Hist("cell behaviors"));
      RunBehaviors();
    }
    {
      TRACE_SCOPE("commit");
      PERF_SCOPE("commit");
      ScopedTimer t(profile_.Hist("commit"));
      rm_.CommitStructuralChanges();
    }
    if (overlap) {
      RunOverlappedOps();
      ++step_;
      continue;
    }
    if (param_.zorder_cadence > 0 && !rm_.empty() &&
        step_ % param_.zorder_cadence == 0) {
      // Host-side Improvement II: periodically re-permute the SoA rows into
      // Z-order so the force pass streams memory-adjacent neighbors. The
      // permutation is a pure function of the positions (stable sort on
      // Morton keys), so it is identical at any thread count; quantization
      // uses the interaction radius — the uniform grid's box size — so the
      // curve orders agents box-by-box.
      TRACE_SCOPE("z-order sort");
      PERF_SCOPE("z-order sort");
      ScopedTimer t(profile_.Hist("z-order sort"));
      double cell = rm_.LargestDiameter() + param_.interaction_radius_margin;
      SortAgentsByZOrder(rm_, cell, mode_);
    }
    {
      TRACE_SCOPE("neighborhood update");
      PERF_SCOPE("neighborhood update");
      ScopedTimer t(profile_.Hist("neighborhood update"));
      env_->Update(rm_, param_, mode_);
    }
    {
      TRACE_SCOPE("mechanical forces");
      PERF_SCOPE("mechanical forces");
      ScopedTimer t(profile_.Hist("mechanical forces"));
      backend_->Step(rm_, *env_, param_, mode_, &profile_);
    }
    if (!diffusion_grids_.empty()) {
      TRACE_SCOPE("diffusion");
      PERF_SCOPE("diffusion");
      ScopedTimer t(profile_.Hist("diffusion"));
      for (auto& g : diffusion_grids_) {
        g->Step(param_.simulation_time_step, mode_);
      }
    }
    ++step_;
  }
}

void Simulation::RunOverlappedOps() {
  // One combined perf scope on the calling thread: PerfSession counters are
  // per-opening-thread and not safe to nest from spawned threads, so while
  // overlapped the per-op hardware attribution collapses into this scope
  // (param.h documents the trade). Trace scopes ARE per-thread-safe and stay
  // inside the node bodies — the timeline shows the two ops as overlapping
  // tracks. Mechanics touches positions + the spatial index; diffusion
  // touches only the concentration fields (the behaviors pass's deposit
  // merge retired before this fork) — disjoint state, so overlap is
  // bitwise-neutral (docs/determinism.md).
  PERF_SCOPE("mechanics+diffusion");
  // On a single hardware thread overlap cannot win — the two node bodies
  // would time-slice one core while paying a thread spawn per step — so run
  // the graph serially there. Bitwise-identical either way (TaskGraph
  // contract), purely a cost decision.
  const ExecMode graph_mode =
      HardwareThreads() > 1 ? mode_ : ExecMode::kSerial;
  TaskGraph graph;
  graph.AddNode("mechanics", [this] {
    // A fresh native thread starts from the global OpenMP ICVs, not the
    // main thread's — re-apply the configured width before any parallel
    // region.
    SetNumThreads(param_.num_threads);
    if (param_.zorder_cadence > 0 && !rm_.empty() &&
        step_ % param_.zorder_cadence == 0) {
      TRACE_SCOPE("z-order sort");
      ScopedTimer t(profile_.Hist("z-order sort"));
      double cell = rm_.LargestDiameter() + param_.interaction_radius_margin;
      SortAgentsByZOrder(rm_, cell, mode_);
    }
    {
      TRACE_SCOPE("neighborhood update");
      ScopedTimer t(profile_.Hist("neighborhood update"));
      env_->Update(rm_, param_, mode_);
    }
    {
      TRACE_SCOPE("mechanical forces");
      ScopedTimer t(profile_.Hist("mechanical forces"));
      backend_->Step(rm_, *env_, param_, mode_, &profile_);
    }
  });
  graph.AddNode("diffusion", [this] {
    SetNumThreads(param_.num_threads);
    TRACE_SCOPE("diffusion");
    ScopedTimer t(profile_.Hist("diffusion"));
    for (auto& g : diffusion_grids_) {
      g->Step(param_.simulation_time_step, mode_);
    }
  });
  graph.Run(graph_mode);
}

}  // namespace biosim
