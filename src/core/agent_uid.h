// Stable agent identifiers.
//
// Agents live in structs-of-arrays storage whose row indices change on
// defragmentation and Z-order sorting, so anything that must survive across
// steps (RNG streams, model bookkeeping) keys off the AgentUid instead.
#ifndef BIOSIM_CORE_AGENT_UID_H_
#define BIOSIM_CORE_AGENT_UID_H_

#include <cstddef>
#include <cstdint>

namespace biosim {

using AgentUid = uint64_t;

inline constexpr AgentUid kInvalidUid = ~AgentUid{0};

/// Row index into the ResourceManager's SoA arrays; only valid until the next
/// structural change (commit / sort).
using AgentIndex = size_t;

}  // namespace biosim

#endif  // BIOSIM_CORE_AGENT_UID_H_
