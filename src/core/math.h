// Small fixed-size vector math used throughout the engine.
//
// The engine stores agent state in structs-of-arrays (see resource_manager.h),
// so Real3 is deliberately a trivially-copyable POD aggregate: it is the unit
// that gets packed into contiguous x/y/z arrays and shipped to the device
// buffers byte-for-byte.
#ifndef BIOSIM_CORE_MATH_H_
#define BIOSIM_CORE_MATH_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <ostream>

namespace biosim {

/// 3-component vector templated on precision. `T` is `double` on the host
/// engine and `float` in the FP32 GPU pipeline (paper Improvement I).
template <typename T>
struct Real3 {
  T x{0}, y{0}, z{0};

  constexpr T& operator[](size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](size_t i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Real3 operator+(const Real3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Real3 operator-(const Real3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Real3 operator*(T s) const { return {x * s, y * s, z * s}; }
  constexpr Real3 operator/(T s) const { return {x / s, y / s, z / s}; }
  constexpr Real3 operator-() const { return {-x, -y, -z}; }

  Real3& operator+=(const Real3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Real3& operator-=(const Real3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Real3& operator*=(T s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Real3& o) const = default;

  constexpr T Dot(const Real3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Real3 Cross(const Real3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr T SquaredNorm() const { return Dot(*this); }
  T Norm() const { return std::sqrt(SquaredNorm()); }

  /// Unit vector in the same direction; the zero vector maps to zero
  /// (callers in the force pipeline guard the degenerate case themselves).
  Real3 Normalized() const {
    T n = Norm();
    return n > T{0} ? *this / n : Real3{};
  }

  template <typename U>
  constexpr Real3<U> As() const {
    return {static_cast<U>(x), static_cast<U>(y), static_cast<U>(z)};
  }
};

template <typename T>
constexpr Real3<T> operator*(T s, const Real3<T>& v) {
  return v * s;
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const Real3<T>& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

using Double3 = Real3<double>;
using Float3 = Real3<float>;
using Int3 = Real3<int32_t>;

template <typename T>
T SquaredDistance(const Real3<T>& a, const Real3<T>& b) {
  return (a - b).SquaredNorm();
}

template <typename T>
T Distance(const Real3<T>& a, const Real3<T>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Axis-aligned bounding box; the uniform grid and the kd-tree both anchor
/// their spatial decomposition to the simulation AABB.
template <typename T>
struct AABB {
  Real3<T> min{std::numeric_limits<T>::max(), std::numeric_limits<T>::max(),
               std::numeric_limits<T>::max()};
  Real3<T> max{std::numeric_limits<T>::lowest(),
               std::numeric_limits<T>::lowest(),
               std::numeric_limits<T>::lowest()};

  void Extend(const Real3<T>& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    min.z = std::min(min.z, p.z);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
    max.z = std::max(max.z, p.z);
  }

  /// Grow to cover another box (named distinctly so brace-init point
  /// arguments to Extend stay unambiguous).
  void Merge(const AABB& o) {
    Extend(o.min);
    Extend(o.max);
  }

  bool Contains(const Real3<T>& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }

  bool Valid() const { return min.x <= max.x && min.y <= max.y && min.z <= max.z; }

  Real3<T> Size() const { return max - min; }
  Real3<T> Center() const { return (min + max) * T{0.5}; }

  /// Squared distance from `p` to the box (0 when inside); used by the
  /// kd-tree radius query to prune subtrees.
  T SquaredDistanceTo(const Real3<T>& p) const {
    T d2{0};
    for (size_t i = 0; i < 3; ++i) {
      T v = p[i];
      if (v < min[i]) {
        T d = min[i] - v;
        d2 += d * d;
      } else if (v > max[i]) {
        T d = v - max[i];
        d2 += d * d;
      }
    }
    return d2;
  }
};

using AABBd = AABB<double>;

namespace math {

constexpr double kPi = 3.14159265358979323846;
constexpr double kEpsilon = 1e-9;

/// Volume of a sphere with the given diameter.
inline double SphereVolume(double diameter) {
  double r = diameter / 2.0;
  return 4.0 / 3.0 * kPi * r * r * r;
}

/// Diameter of a sphere with the given volume (inverse of SphereVolume).
inline double SphereDiameter(double volume) {
  return 2.0 * std::cbrt(volume * 3.0 / (4.0 * kPi));
}

template <typename T>
T Clamp(T v, T lo, T hi) {
  return std::max(lo, std::min(hi, v));
}

/// Clamp the norm of `v` to at most `max_norm` (paper: the final displacement
/// vector length is limited by an upper bound).
template <typename T>
Real3<T> ClampNorm(const Real3<T>& v, T max_norm) {
  T n2 = v.SquaredNorm();
  if (n2 <= max_norm * max_norm || n2 == T{0}) {
    return v;
  }
  return v * (max_norm / std::sqrt(n2));
}

inline bool AlmostEqual(double a, double b, double tol = 1e-9) {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace math
}  // namespace biosim

#endif  // BIOSIM_CORE_MATH_H_
