// Per-step execution context handed to behaviors.
//
// Bundles everything a behavior may touch besides its own agent: the
// parameters, a deterministic per-agent RNG, and the deferred structural
// change queues. Passing a context rather than a global Simulation keeps
// behaviors testable in isolation.
#ifndef BIOSIM_CORE_SIM_CONTEXT_H_
#define BIOSIM_CORE_SIM_CONTEXT_H_

#include <cstdint>

#include "core/param.h"
#include "core/random.h"
#include "core/resource_manager.h"

namespace biosim {

class DiffusionGrid;

class SimContext {
 public:
  SimContext(const Param& param, ResourceManager& rm, uint64_t step)
      : param_(param), rm_(rm), step_(step) {}

  const Param& param() const { return param_; }
  ResourceManager& rm() { return rm_; }
  uint64_t step() const { return step_; }

  /// RNG stream that depends only on (seed, agent uid, step): results are
  /// reproducible across thread counts and iteration orders.
  Random RandomFor(AgentUid uid) const {
    return Random::ForStream(param_.random_seed, uid, step_);
  }

  /// Extracellular substance grid, if the model registered one (may be
  /// nullptr; set by the Simulation before behaviors run).
  DiffusionGrid* diffusion_grid = nullptr;

 private:
  const Param& param_;
  ResourceManager& rm_;
  uint64_t step_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_SIM_CONTEXT_H_
