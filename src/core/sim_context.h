// Per-step execution context handed to behaviors.
//
// Bundles everything a behavior may touch besides its own agent: the
// parameters, a deterministic per-agent RNG, and the deferred structural
// change queues. Passing a context rather than a global Simulation keeps
// behaviors testable in isolation.
#ifndef BIOSIM_CORE_SIM_CONTEXT_H_
#define BIOSIM_CORE_SIM_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/math.h"
#include "core/param.h"
#include "core/random.h"
#include "core/resource_manager.h"

namespace biosim {

class DiffusionGrid;

/// A substance deposit requested by a behavior, to be applied after the
/// (possibly parallel) behaviors pass. Carries its target grid: deposits
/// buffered for different substances must not be collapsed into one field
/// (the pre-fix merge routed every deposit into the *first* grid).
struct PendingDeposit {
  Double3 position;
  double amount;
  DiffusionGrid* grid = nullptr;
};

class SimContext {
 public:
  SimContext(const Param& param, ResourceManager& rm, uint64_t step)
      : param_(param), rm_(rm), step_(step) {}

  const Param& param() const { return param_; }
  ResourceManager& rm() { return rm_; }
  uint64_t step() const { return step_; }

  /// RNG stream that depends only on (seed, agent uid, step): results are
  /// reproducible across thread counts and iteration orders.
  Random RandomFor(AgentUid uid) const {
    return Random::ForStream(param_.random_seed, uid, step_);
  }

  /// Deposit `amount` of the context's default substance (the first grid)
  /// into the voxel containing `pos`. When a deposit sink is installed
  /// (Simulation::RunBehaviors does this), the deposit is buffered and
  /// applied after the behaviors pass in agent-index order — the same order
  /// at any thread count, so the concentration field stays bitwise
  /// reproducible. Without a sink (direct serial use, unit tests) the
  /// deposit applies immediately. No-op when no diffusion grid is attached.
  void DepositSubstance(const Double3& pos, double amount);

  /// Deposit into an explicit grid (resolve named substances with
  /// FindSubstance); same buffering contract as above. No-op when `grid` is
  /// nullptr, matching a grid-less context.
  void DepositSubstance(const Double3& pos, double amount,
                        DiffusionGrid* grid);

  /// The registered grid for `name`, or nullptr when absent (or when the
  /// context has no grid list installed).
  DiffusionGrid* FindSubstance(const std::string& name) const;

  /// Extracellular substance grid, if the model registered one (may be
  /// nullptr; set by the Simulation before behaviors run). Reads
  /// (GetConcentration / GetGradient) are safe from parallel behaviors; for
  /// writes use DepositSubstance — IncreaseConcentrationBy is not safe
  /// against concurrent callers and would make the sum order (and therefore
  /// the field bits) depend on thread scheduling.
  DiffusionGrid* diffusion_grid = nullptr;

  /// Every registered substance grid (set by the Simulation alongside
  /// diffusion_grid); backs FindSubstance for name-routed deposits. May be
  /// nullptr for contexts built without a Simulation (unit tests).
  const std::vector<std::unique_ptr<DiffusionGrid>>* diffusion_grids = nullptr;

  /// Deferred-deposit sink (owned by the caller running the behaviors pass;
  /// one per worker chunk). Installed/cleared by Simulation::RunBehaviors.
  std::vector<PendingDeposit>* deposit_sink = nullptr;

 private:
  const Param& param_;
  ResourceManager& rm_;
  uint64_t step_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_SIM_CONTEXT_H_
