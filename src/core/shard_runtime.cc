#include "core/shard_runtime.h"

#include <algorithm>

namespace biosim {

namespace {

// Halo message tags: the direction the payload travels. Shard k's ghosts
// arrive on exactly these two channels, so even when both neighbors are the
// same shard (K == 2 on a torus) the messages stay distinguishable.
constexpr int kTagToUpper = 0;  // sender's last-plane rows -> shard above
constexpr int kTagToLower = 1;  // sender's first-plane rows -> shard below

}  // namespace

ShardRuntime::ShardRuntime(uint32_t shards, ShardBalance balance)
    : shards_(shards),
      balance_(balance),
      comm_(shards),
      grids_(shards),
      owned_rows_(shards),
      members_(shards),
      ghosts_received_(shards, 0) {}

void ShardRuntime::Repartition(const ResourceManager& rm, const Param& param) {
  geometry_ = GridGeometry::Derive(rm, param);
  const int32_t planes = geometry_.num_boxes_axis.z;
  const size_t n = rm.size();
  const auto& positions = rm.positions();

  row_plane_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Only the z bin matters for ownership.
    int32_t z = static_cast<int32_t>(
        std::floor((positions[i].z - geometry_.grid_min.z) *
                   geometry_.inv_box_length));
    row_plane_[i] = std::clamp(z, 0, planes - 1);
  }

  std::vector<uint64_t> plane_load;
  if (balance_ == ShardBalance::kAdaptive) {
    plane_load.assign(static_cast<size_t>(planes), 0);
    for (size_t i = 0; i < n; ++i) {
      ++plane_load[static_cast<size_t>(row_plane_[i])];
    }
  }
  partition_ = ShardPartition::Split(shards_, planes, balance_, plane_load);

  for (auto& rows : owned_rows_) {
    rows.clear();
  }
  // Ascending row order within each shard falls out of the forward scan.
  const auto& uids = rm.uids();
  uint64_t migrations = 0;
  const bool rows_comparable = prev_owner_.size() == n;
  for (size_t i = 0; i < n; ++i) {
    const int32_t owner = partition_.OwnerOfPlane(row_plane_[i]);
    owned_rows_[static_cast<size_t>(owner)].push_back(
        static_cast<int32_t>(i));
    if (rows_comparable && prev_uids_[i] == uids[i] &&
        prev_owner_[i] != owner) {
      ++migrations;
    }
  }
  last_migrations_ = migrations;
  prev_owner_.resize(n);
  for (uint32_t k = 0; k < shards_; ++k) {
    for (int32_t r : owned_rows_[k]) {
      prev_owner_[static_cast<size_t>(r)] = static_cast<int32_t>(k);
    }
  }
  prev_uids_.assign(uids.begin(), uids.end());
}

void ShardRuntime::ExchangeHalos(const ResourceManager& rm, ExecMode mode) {
  (void)rm;
  const int32_t k32 = static_cast<int32_t>(shards_);
  const bool torus = geometry_.torus;

  // Post phase: every shard ships its two face planes. The ParallelFor join
  // below is the protocol barrier between post and drain.
  ParallelFor(mode, shards_, [&](size_t sk) {
    const auto k = static_cast<uint32_t>(sk);
    if (shards_ == 1) {
      return;  // Torus wrap lands on the own window; no ghosts exist.
    }
    const int32_t first = partition_.first_plane(k);
    const int32_t last = partition_.end_plane(k) - 1;
    std::vector<int32_t> first_rows;
    std::vector<int32_t> last_rows;
    for (int32_t r : owned_rows_[k]) {
      const int32_t z = row_plane_[static_cast<size_t>(r)];
      if (z == first) {
        first_rows.push_back(r);
      }
      if (z == last) {
        last_rows.push_back(r);  // first == last when the shard owns 1 plane
      }
    }
    const int32_t up = (static_cast<int32_t>(k) + 1) % k32;
    const int32_t down = (static_cast<int32_t>(k) - 1 + k32) % k32;
    if (torus || static_cast<int32_t>(k) + 1 < k32) {
      comm_.Send<int32_t>(k, static_cast<uint32_t>(up), kTagToUpper,
                          std::move(last_rows));
    }
    if (torus || k > 0) {
      comm_.Send<int32_t>(k, static_cast<uint32_t>(down), kTagToLower,
                          std::move(first_rows));
    }
  });

  // Drain phase: ghosts := sorted, deduplicated union of the two inbound
  // face planes; members := owned ∪ ghosts (disjoint except the K == 2
  // torus, where both neighbors are the same shard and the wrap can deliver
  // a row twice — unique() restores canonical membership).
  ParallelFor(mode, shards_, [&](size_t sk) {
    const auto k = static_cast<uint32_t>(sk);
    std::vector<int32_t> ghosts;
    if (shards_ > 1) {
      const int32_t up = (static_cast<int32_t>(k) + 1) % k32;
      const int32_t down = (static_cast<int32_t>(k) - 1 + k32) % k32;
      if (torus || static_cast<int32_t>(k) + 1 < k32) {
        auto from_up = comm_.Recv<int32_t>(static_cast<uint32_t>(up), k,
                                           kTagToLower);
        ghosts.insert(ghosts.end(), from_up.begin(), from_up.end());
      }
      if (torus || k > 0) {
        auto from_down = comm_.Recv<int32_t>(static_cast<uint32_t>(down), k,
                                             kTagToUpper);
        ghosts.insert(ghosts.end(), from_down.begin(), from_down.end());
      }
      std::sort(ghosts.begin(), ghosts.end());
      ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
      // A ghost dropped here would silently truncate a neighborhood; count
      // before merging so shard/<k>/ghosts_shipped audits the full traffic.
      ghosts_received_[k] = ghosts.size();
    } else {
      ghosts_received_[k] = 0;
    }
    auto& members = members_[k];
    members.clear();
    members.reserve(owned_rows_[k].size() + ghosts.size());
    std::merge(owned_rows_[k].begin(), owned_rows_[k].end(), ghosts.begin(),
               ghosts.end(), std::back_inserter(members));
    members.erase(std::unique(members.begin(), members.end()), members.end());
  });
}

void ShardRuntime::UpdateGrids(const ResourceManager& rm, ExecMode mode) {
  bool reconfigure = !grids_configured_ ||
                     !geometry_.SameLattice(configured_geometry_) ||
                     configured_begin_ != partition_.plane_begin;
  if (reconfigure) {
    for (uint32_t k = 0; k < shards_; ++k) {
      grids_[k].Configure(geometry_, partition_.first_plane(k),
                          partition_.end_plane(k));
    }
    grids_configured_ = true;
    configured_geometry_ = geometry_;
    configured_begin_ = partition_.plane_begin;
  }
  const Double3* positions = rm.positions().data();
  ParallelFor(mode, shards_, [&](size_t k) {
    grids_[k].Update(members_[k], positions);
  });
}

std::vector<ShardForceInput> ShardRuntime::ForceInputs() const {
  std::vector<ShardForceInput> inputs(shards_);
  for (uint32_t k = 0; k < shards_; ++k) {
    inputs[k].view = grids_[k].View();
    inputs[k].boxes = grids_[k].owned_boxes().data();
    inputs[k].num_boxes = grids_[k].owned_boxes().size();
  }
  return inputs;
}

}  // namespace biosim
