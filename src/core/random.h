// Deterministic, parallel-safe random number generation.
//
// Agent-based models must be reproducible run-to-run regardless of the number
// of worker threads, so the engine uses counter-based generation: every agent
// event derives its stream from (seed, agent id, event counter) instead of
// sharing one mutable generator. The core generator is SplitMix64, which is
// statistically solid for simulation purposes and trivially seedable.
#ifndef BIOSIM_CORE_RANDOM_H_
#define BIOSIM_CORE_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "core/math.h"

namespace biosim {

/// SplitMix64: one multiply-xor-shift chain per draw. Passes BigCrush when
/// used as a 64-bit mixer; period 2^64.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Stateless mix of an arbitrary 64-bit value; used to derive independent
  /// per-agent streams.
  static uint64_t Mix(uint64_t v) {
    SplitMix64 g(v);
    return g.NextU64();
  }

 private:
  uint64_t state_;
};

/// Simulation-facing RNG with the distributions the engine needs.
class Random {
 public:
  explicit Random(uint64_t seed = 42) : gen_(seed) {}

  /// Derive an independent stream for (agent, timestep) events so that the
  /// simulation outcome does not depend on agent iteration order.
  static Random ForStream(uint64_t seed, uint64_t stream, uint64_t counter) {
    uint64_t s = SplitMix64::Mix(seed ^ (stream * 0xD1B54A32D192ED03ull));
    return Random(SplitMix64::Mix(s ^ (counter * 0x8CB92BA72F3D8DD7ull)));
  }

  uint64_t NextU64() { return gen_.NextU64(); }

  /// Uniform double in [0, 1).
  double Uniform() {
    // 53 random mantissa bits.
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n) {
    // Lemire's multiply-shift rejection-free mapping is fine here: the bias
    // for n << 2^64 is far below statistical noise in these models.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  /// Standard normal via Box-Muller (no cached second value: keeps the
  /// generator stateless w.r.t. distribution mix).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = 1.0 - Uniform();  // avoid log(0)
    double u2 = Uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * math::kPi * u2);
  }

  /// Uniform point inside an axis-aligned box.
  Double3 UniformInBox(const Double3& min, const Double3& max) {
    return {Uniform(min.x, max.x), Uniform(min.y, max.y), Uniform(min.z, max.z)};
  }

  /// Uniform point inside the cube [lo, hi)^3.
  Double3 UniformInCube(double lo, double hi) {
    return {Uniform(lo, hi), Uniform(lo, hi), Uniform(lo, hi)};
  }

  /// Uniform direction on the unit sphere (Marsaglia rejection).
  Double3 UnitVector() {
    while (true) {
      double a = Uniform(-1.0, 1.0);
      double b = Uniform(-1.0, 1.0);
      double s = a * a + b * b;
      if (s >= 1.0 || s == 0.0) {
        continue;
      }
      double t = 2.0 * std::sqrt(1.0 - s);
      return {a * t, b * t, 1.0 - 2.0 * s};
    }
  }

 private:
  SplitMix64 gen_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_RANDOM_H_
