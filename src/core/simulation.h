// Simulation: the public façade that ties the engine together.
//
// Owns the parameters, the SoA agent storage, the spatial environment, the
// mechanics backend, and optional diffusion grids, and runs the per-step
// pipeline:
//
//   1. "cell behaviors"       -- run every agent's behaviors (proliferation)
//   2. "commit"               -- apply deferred divisions / removals
//   3. "neighborhood update"  -- rebuild the environment (kd-tree / grid)
//   4. "mechanical forces"    -- backend step (CPU or GPU offload)
//   5. "diffusion"            -- advance extracellular substances
//
// Every operation's wall time is accumulated in profile(), which is exactly
// the data behind the paper's Fig. 3.
#ifndef BIOSIM_CORE_SIMULATION_H_
#define BIOSIM_CORE_SIMULATION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/param.h"
#include "core/profiler.h"
#include "core/resource_manager.h"
#include "core/shard_runtime.h"
#include "core/thread_pool.h"
#include "diffusion/diffusion_grid.h"
#include "physics/mechanics_backend.h"
#include "spatial/environment.h"

namespace biosim {

class Simulation {
 public:
  /// Constructs with a uniform-grid environment and the CPU backend; both
  /// are replaceable before (or between) Simulate() calls.
  explicit Simulation(Param param);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  Simulation(Simulation&&) = default;
  Simulation& operator=(Simulation&&) = default;

  // --- wiring -----------------------------------------------------------
  Param& param() { return param_; }
  const Param& param() const { return param_; }
  ResourceManager& rm() { return rm_; }
  const ResourceManager& rm() const { return rm_; }

  void SetEnvironment(std::unique_ptr<Environment> env);
  Environment& environment() { return *env_; }

  void SetMechanicsBackend(std::unique_ptr<MechanicsBackend> backend);
  MechanicsBackend& mechanics_backend() { return *backend_; }

  void AddDiffusionGrid(std::unique_ptr<DiffusionGrid> grid);
  /// First registered grid, or the one with the given substance name;
  /// nullptr if absent.
  DiffusionGrid* diffusion_grid();
  DiffusionGrid* diffusion_grid(const std::string& substance);
  size_t diffusion_grid_count() const { return diffusion_grids_.size(); }

  /// Serial vs multithreaded execution of all engine operations (the paper's
  /// "serial" vs "N threads" variants).
  void SetExecMode(ExecMode mode) { mode_ = mode; }
  ExecMode exec_mode() const { return mode_; }

  // --- population helpers ------------------------------------------------
  /// Create one agent; returns a Cell view valid until the next structural
  /// change.
  AgentIndex AddCell(const Double3& position, double diameter);

  /// The paper's benchmark A initial condition: `cells_per_dim`^3 cells of
  /// equal volume on a regular 3D lattice with the given spacing, each with
  /// a GrowDivide behavior.
  void Create3DCellGrid(size_t cells_per_dim, double spacing, double diameter,
                        double divide_threshold, double growth_rate);

  /// The paper's benchmark B initial condition: `count` cells uniformly
  /// random in the simulation cube. With
  /// param.simulation_max_displacement == 0 the density stays constant.
  void CreateRandomCells(size_t count, double diameter);

  // --- execution ----------------------------------------------------------
  /// Advance `steps` timesteps through the full pipeline.
  void Simulate(uint64_t steps);

  uint64_t step() const { return step_; }
  /// Set the simulation clock, e.g. when resuming from a checkpoint.
  /// Behavior RNG streams mix the step index (SimContext::RandomFor), so a
  /// resumed run only reproduces the uninterrupted one if it continues at
  /// the step the checkpoint was taken.
  void SetStep(uint64_t step) { step_ = step; }
  OpProfile& profile() { return profile_; }

  /// Bitwise fingerprint of the mutable simulation state: step counter, the
  /// full agent population (core/state_hash.h) and every diffusion field.
  /// Two runs of the same seeded config are deterministic iff their per-step
  /// hash sequences are identical (docs/determinism.md).
  uint64_t StateHash() const;

  /// The shard runtime driving the sharded pipeline, or nullptr when
  /// param.num_shards == 0 or before the first sharded step (observability
  /// reads per-shard stats through this).
  const ShardRuntime* shard_runtime() const { return shard_runtime_.get(); }

 private:
  void RunBehaviors();
  /// Behaviors pass of the sharded pipeline: each shard runs its owned rows
  /// (ascending); substance deposits are tagged with their row and merged
  /// globally in row order — the exact sequence the unsharded pass applies.
  void RunBehaviorsSharded();
  /// One full sharded step after the behaviors+commit phases: partition,
  /// halo exchange, per-shard grids, sharded force pass, diffusion.
  void RunShardedOps();
  /// The post-commit ops of one step as a two-node task graph: mechanics
  /// (z-order sort, environment update, force step — positions and grid)
  /// overlapped with diffusion (concentration fields). Used instead of the
  /// serial op sequence when param_.overlap_ops is set and a diffusion grid
  /// exists; bitwise-identical results (docs/determinism.md).
  void RunOverlappedOps();

  Param param_;
  ResourceManager rm_;
  std::unique_ptr<Environment> env_;
  std::unique_ptr<MechanicsBackend> backend_;
  std::vector<std::unique_ptr<DiffusionGrid>> diffusion_grids_;
  ExecMode mode_ = ExecMode::kParallel;
  uint64_t step_ = 0;
  /// CreateRandomCells invocations so far: folded into the RNG seed so
  /// repeated fills draw fresh positions (call 0 keeps the historical
  /// stream byte-identical).
  uint64_t random_cells_calls_ = 0;
  std::unique_ptr<ShardRuntime> shard_runtime_;
  OpProfile profile_;
};

}  // namespace biosim

#endif  // BIOSIM_CORE_SIMULATION_H_
