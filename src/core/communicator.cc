#include "core/communicator.h"

namespace biosim {

void Communicator::Barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const uint64_t phase = barrier_phase_;
  if (++barrier_arrived_ == ranks_) {
    barrier_arrived_ = 0;
    ++barrier_phase_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_phase_ != phase; });
}

}  // namespace biosim
