// Bitwise state fingerprints for determinism checks.
//
// The determinism harness (docs/determinism.md) compares runs by hashing the
// raw bytes of the simulation state: two runs are bitwise identical iff their
// per-step hash sequences match. FNV-1a over the IEEE-754 bytes is exact for
// this purpose — any single-ULP divergence changes the hash — and cheap
// enough to compute every step.
//
// Caveat: hashing bytes means -0.0 and +0.0 (and different NaN payloads)
// hash differently even though they compare equal. That is intentional:
// "bitwise identical" is the contract being enforced.
#ifndef BIOSIM_CORE_STATE_HASH_H_
#define BIOSIM_CORE_STATE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/math.h"

namespace biosim {

class ResourceManager;

inline constexpr uint64_t kFnv1aOffset = 14695981039346656037ull;

/// FNV-1a over `len` raw bytes, chained through `h`.
uint64_t HashBytes(const void* data, size_t len, uint64_t h = kFnv1aOffset);

uint64_t HashDoubles(const std::vector<double>& v, uint64_t h = kFnv1aOffset);
uint64_t HashVec3s(const std::vector<Double3>& v, uint64_t h = kFnv1aOffset);

/// Fingerprint of the full agent population: positions, diameters, volumes,
/// adherences, densities, tractor forces and uids, chained through `h`.
uint64_t HashPopulation(const ResourceManager& rm, uint64_t h = kFnv1aOffset);

}  // namespace biosim

#endif  // BIOSIM_CORE_STATE_HASH_H_
