#include "core/resource_manager.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace biosim {

void ResourceManager::Reserve(size_t n) {
  positions_.reserve(n);
  diameters_.reserve(n);
  volumes_.reserve(n);
  adherences_.reserve(n);
  densities_.reserve(n);
  tractor_forces_.reserve(n);
  uids_.reserve(n);
  behaviors_.reserve(n);
}

void ResourceManager::AppendRow(NewAgentSpec&& spec) {
  positions_.push_back(spec.position);
  diameters_.push_back(spec.diameter);
  volumes_.push_back(math::SphereVolume(spec.diameter));
  adherences_.push_back(spec.adherence);
  densities_.push_back(spec.density);
  tractor_forces_.push_back(spec.tractor_force);
  uids_.push_back(next_uid_++);
  behaviors_.push_back(std::move(spec.behaviors));
}

AgentIndex ResourceManager::AddAgent(NewAgentSpec spec) {
  AppendRow(std::move(spec));
  return positions_.size() - 1;
}

void ResourceManager::PushDeferredAgent(AgentIndex mother, NewAgentSpec spec) {
  MutexLock lock(*deferred_mutex_);
  deferred_new_.emplace_back(mother, std::move(spec));
}

void ResourceManager::PushDeferredRemoval(AgentIndex idx) {
  MutexLock lock(*deferred_mutex_);
  deferred_removals_.push_back(idx);
}

void ResourceManager::RemoveRowSwap(AgentIndex idx) {
  size_t last = positions_.size() - 1;
  if (idx != last) {
    positions_[idx] = positions_[last];
    diameters_[idx] = diameters_[last];
    volumes_[idx] = volumes_[last];
    adherences_[idx] = adherences_[last];
    densities_[idx] = densities_[last];
    tractor_forces_[idx] = tractor_forces_[last];
    uids_[idx] = uids_[last];
    behaviors_[idx] = std::move(behaviors_[last]);
  }
  positions_.pop_back();
  diameters_.pop_back();
  volumes_.pop_back();
  adherences_.pop_back();
  densities_.pop_back();
  tractor_forces_.pop_back();
  uids_.pop_back();
  behaviors_.pop_back();
}

size_t ResourceManager::CommitStructuralChanges() {
  // Commit runs single-threaded between operations, so the lock is never
  // contended; holding it anyway keeps the guarded-by contract on the
  // deferred queues unconditional (and checkable by clang -Wthread-safety
  // and TSan) instead of relying on the scheduling convention.
  MutexLock lock(*deferred_mutex_);
  size_t changes = deferred_new_.size() + deferred_removals_.size();

  // Removals first, from highest row to lowest so swap-with-last never moves
  // a row that is itself scheduled for removal into an already-processed
  // slot.
  std::sort(deferred_removals_.begin(), deferred_removals_.end());
  deferred_removals_.erase(
      std::unique(deferred_removals_.begin(), deferred_removals_.end()),
      deferred_removals_.end());
  for (auto it = deferred_removals_.rbegin(); it != deferred_removals_.rend();
       ++it) {
    assert(*it < positions_.size());
    RemoveRowSwap(*it);
  }
  deferred_removals_.clear();

  // Insertions ordered by mother row so the result (including assigned UIDs)
  // is identical for serial and parallel behavior execution.
  std::stable_sort(deferred_new_.begin(), deferred_new_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [mother, spec] : deferred_new_) {
    (void)mother;
    AppendRow(std::move(spec));
  }
  deferred_new_.clear();

  return changes;
}

void ResourceManager::ApplyPermutation(const std::vector<AgentIndex>& perm) {
  assert(perm.size() == positions_.size());
  size_t n = perm.size();

  auto permute = [&](auto& vec) {
    using V = std::remove_reference_t<decltype(vec)>;
    V out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(vec[perm[i]]));
    }
    vec = std::move(out);
  };

  permute(positions_);
  permute(diameters_);
  permute(volumes_);
  permute(adherences_);
  permute(densities_);
  permute(tractor_forces_);
  permute(uids_);
  permute(behaviors_);
}

double ResourceManager::LargestDiameter() const {
  double d = 0.0;
  for (double v : diameters_) {
    d = std::max(d, v);
  }
  return d;
}

AABBd ResourceManager::Bounds() const {
  AABBd box;
  for (const auto& p : positions_) {
    box.Extend(p);
  }
  return box;
}

void ResourceManager::RestorePopulation(
    std::vector<Double3> positions, std::vector<double> diameters,
    std::vector<double> volumes, std::vector<double> adherences,
    std::vector<double> densities, std::vector<Double3> tractor_forces,
    std::vector<AgentUid> uids, AgentUid next_uid) {
  size_t n = positions.size();
  if (diameters.size() != n || volumes.size() != n || adherences.size() != n ||
      densities.size() != n || tractor_forces.size() != n ||
      uids.size() != n) {
    throw std::invalid_argument(
        "RestorePopulation: attribute arrays have inconsistent sizes");
  }
  positions_ = std::move(positions);
  diameters_ = std::move(diameters);
  volumes_ = std::move(volumes);
  adherences_ = std::move(adherences);
  densities_ = std::move(densities);
  tractor_forces_ = std::move(tractor_forces);
  uids_ = std::move(uids);
  behaviors_.clear();
  behaviors_.resize(n);
  next_uid_ = next_uid;
  MutexLock lock(*deferred_mutex_);
  deferred_new_.clear();
  deferred_removals_.clear();
}

double ResourceManager::TotalVolume() const {
  double v = 0.0;
  for (double x : volumes_) {
    v += x;
  }
  return v;
}

}  // namespace biosim
