// GPU device descriptions for the execution simulator.
//
// The two presets are the cards of the paper's Table I. The headline numbers
// (FP32/FP64 peak, memory bandwidth, DRAM size) are copied from that table;
// microarchitectural constants (SM count, L2 geometry, latencies) come from
// the public specifications of the respective chips. The timing model in
// timing.h consumes only what is listed here — there are no per-benchmark
// fudge factors.
#ifndef BIOSIM_GPUSIM_DEVICE_SPEC_H_
#define BIOSIM_GPUSIM_DEVICE_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace biosim::gpusim {

struct DeviceSpec {
  std::string name;

  // --- execution ---------------------------------------------------------
  int num_sms = 28;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  /// Peak arithmetic throughput (GFLOP/s).
  double fp32_gflops = 11340.0;
  double fp64_gflops = 354.0;

  // --- memory hierarchy ---------------------------------------------------
  /// Device DRAM (GDDR/HBM) size and bandwidth.
  size_t dram_bytes = 11ull << 30;
  double dram_bandwidth_gbps = 484.0;
  /// Modeled L2 bandwidth; NVIDIA L2s deliver roughly 3-5x DRAM bandwidth.
  double l2_bandwidth_gbps = 1900.0;
  size_t l2_capacity_bytes = 2816ull * 1024;  // 2.75 MiB on GP102
  int l2_line_bytes = 128;
  int l2_associativity = 16;
  /// Per-SM L1/texture cache. Blocks execute sequentially in the simulator,
  /// which approximates one SM's view of its own block stream, so a single
  /// L1 of per-SM size sits in front of the shared L2.
  size_t l1_capacity_bytes = 48ull * 1024;
  int l1_associativity = 4;
  /// Aggregate L1 bandwidth (all SMs): ~128 B/cycle/SM.
  double l1_bandwidth_gbps = 5400.0;
  /// Shared memory (per block limit and modeled aggregate bandwidth).
  size_t shared_mem_per_block = 48ull * 1024;
  double shared_bandwidth_gbps = 8000.0;

  // --- overheads -----------------------------------------------------------
  /// Fixed cost per kernel launch (µs); covers driver + dispatch.
  double launch_overhead_us = 5.0;
  /// Global-memory latency (ns) and the memory-level parallelism one
  /// thread sustains (outstanding loads). Together with the resident-thread
  /// limit these bound how well long dependent-load chains (linked-list
  /// walks!) can be hidden: t_latency = ceil(threads/resident) *
  /// (per-thread memory ops / mlp) * latency. This is the term the paper's
  /// "serial loop over the neighborhood" stresses and dynamic parallelism
  /// relieves.
  double mem_latency_ns = 350.0;
  double mem_level_parallelism = 4.0;
  int max_threads_per_sm = 2048;

  /// LSU occupancy per global-memory transaction (ns): each 128 B
  /// transaction occupies an SM's load/store pipeline for a few cycles
  /// (issue + replay), regardless of whether the data comes from L1, L2 or
  /// DRAM. ~2.5 cycles at ~1.5 GHz. This is what makes scattered,
  /// many-transaction kernels slower than their byte counts alone suggest.
  double lsu_transaction_ns = 1.6;
  /// Cost of one *serialized* atomic update (ns). Conflicting atomics from
  /// the lanes of a warp are serialized by the hardware (shared-memory
  /// atomics replay on the SM LSU, a few cycles per conflicting lane);
  /// non-conflicting ones proceed at full rate and are charged as ordinary
  /// memory traffic.
  double atomic_serialize_ns = 5.0;
  /// How many serialized-atomic chains the chip can work on concurrently:
  /// one per SM (each SM serializes its own replays).
  int atomic_parallelism() const { return num_sms; }

  // --- host link ------------------------------------------------------------
  /// PCIe 3.0 x16 effective bandwidth and per-transfer latency.
  double pcie_bandwidth_gbps = 12.0;
  double pcie_latency_us = 10.0;

  /// Consumer Pascal card of the paper's system A.
  static DeviceSpec GTX1080Ti() {
    DeviceSpec s;
    s.name = "NVIDIA GTX 1080 Ti";
    s.num_sms = 28;
    s.fp32_gflops = 11340.0;  // Table I: 11.34 TFLOPS
    s.fp64_gflops = 354.0;    // Table I: 0.354 TFLOPS (1/32 rate)
    s.dram_bytes = 11ull << 30;
    s.dram_bandwidth_gbps = 484.0;  // Table I
    s.l2_bandwidth_gbps = 1900.0;
    s.l2_capacity_bytes = 2816ull * 1024;
    return s;
  }

  /// Datacenter Volta card of the paper's system B.
  static DeviceSpec TeslaV100() {
    DeviceSpec s;
    s.name = "NVIDIA Tesla V100";
    s.num_sms = 80;
    s.fp32_gflops = 15700.0;  // Table I: 15.7 TFLOPS
    s.fp64_gflops = 7800.0;   // Table I: 7.8 TFLOPS (1/2 rate)
    s.dram_bytes = 32ull << 30;
    s.dram_bandwidth_gbps = 900.0;  // Table I: HBM2
    s.l2_bandwidth_gbps = 3200.0;
    s.l2_capacity_bytes = 6ull * 1024 * 1024;
    s.l1_capacity_bytes = 128ull * 1024;  // Volta unified L1
    s.l1_bandwidth_gbps = 14000.0;
    return s;
  }
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_DEVICE_SPEC_H_
