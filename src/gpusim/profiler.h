// nvprof-substitute: aggregate and render per-kernel profiles of a Device.
//
// Produces the metrics the paper extracts from nvprof: per-kernel time,
// FLOPs, DRAM/L2 traffic, arithmetic intensity, achieved GFLOP/s, and the
// L2-read fraction used in the Fig. 12 roofline discussion.
#ifndef BIOSIM_GPUSIM_PROFILER_H_
#define BIOSIM_GPUSIM_PROFILER_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gpusim/device.h"

namespace biosim::gpusim {

/// Counters of all launches of one kernel name, summed.
struct AggregatedKernel : KernelStats {
  size_t launches = 0;
};

class ProfileReport {
 public:
  /// Aggregate the device's launch history by kernel name (first-launch
  /// order preserved). One map lookup per launch: try_emplace either finds
  /// the existing slot or claims the next index in the same probe.
  explicit ProfileReport(const Device& dev) {
    for (const KernelStats& k : dev.history()) {
      auto [it, inserted] = index_.try_emplace(k.name, kernels_.size());
      if (inserted) {
        AggregatedKernel agg;
        agg.name = k.name;
        agg.grid_dim = k.grid_dim;
        agg.block_dim = k.block_dim;
        agg.meter_stride = k.meter_stride;
        agg.sim_start_ms = k.sim_start_ms;  // first launch's offset
        kernels_.push_back(agg);
      }
      AggregatedKernel& agg = kernels_[it->second];
      agg.Accumulate(k);
      agg.launches += 1;
    }
  }

  const std::vector<AggregatedKernel>& kernels() const { return kernels_; }

  const AggregatedKernel* Find(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &kernels_[it->second];
  }

  std::string ToString() const {
    std::string out =
        "kernel                          launches   time_ms  comp_ms   mem_ms"
        "   lsu_ms  atom_ms   GFLOP/s   AI(flop/B)   dram_MB    L2hit_MB   "
        "L1hit_MB   L2read%   simd_eff\n";
    char line[256];
    for (const auto& k : kernels_) {
      snprintf(line, sizeof(line),
               "%-30s %8zu %9.3f %8.3f %8.3f %8.3f %8.3f %9.1f %12.3f %9.2f "
               "%11.2f %10.2f %8.1f%% %10.2f\n",
               k.name.c_str(), k.launches, k.total_ms, k.compute_ms,
               k.memory_ms, k.lsu_ms, k.atomic_ms, k.AchievedGflops(),
               k.ArithmeticIntensity(),
               static_cast<double>(k.DramBytes()) / 1e6,
               static_cast<double>(k.L2HitBytes()) / 1e6,
               static_cast<double>(k.L1HitBytes()) / 1e6,
               100.0 * k.L2ReadHitFraction(), k.SimdEfficiency());
      out += line;
    }
    return out;
  }

 private:
  std::vector<AggregatedKernel> kernels_;
  std::map<std::string, size_t> index_;
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_PROFILER_H_
