// Batched per-warp access streams for the metered SIMT path.
//
// Lanes used to bucket every global access into per-instruction
// vector-of-vectors rebuilt for every warp — one heap round-trip per memory
// instruction plus a gather pass at flush. The batched design appends
// {addr, bytes} records into one flat per-warp buffer (SoA: address and
// byte-count planes) laid out as fixed 32-slot rows keyed by (kind, seq),
// so records land *pre-grouped* in lane order as the lanes run: the
// coalescer + cache accounting consume each row in place with zero sorting
// and zero copying at the instruction-group boundary (WarpTracker::Flush).
// Row iteration order — reads by seq ascending, then writes, then atomics;
// lane order within a row — is exactly the order the memory model consumed
// before, which keeps the counters *byte-identical* across the refactor
// (see tests/gpusim/golden_counters_test.cc for the pinned counters). All
// buffers retain their capacity across warps, so the steady-state hot path
// never allocates.
#ifndef BIOSIM_GPUSIM_ACCESS_STREAM_H_
#define BIOSIM_GPUSIM_ACCESS_STREAM_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "gpusim/kernel_stats.h"

namespace biosim::gpusim {

/// Access kinds in consumption order — do not reorder.
enum class StreamKind : uint8_t { kRead = 0, kWrite = 1, kAtomic = 2 };

/// One warp's metered global accesses, pre-grouped by (kind, seq).
class WarpAccessStream {
 public:
  static constexpr size_t kWarpSize = 32;
  static constexpr size_t kKinds = 3;

  /// Forget the previous warp's records. Only the rows actually used are
  /// reset, so a warp with few memory instructions pays for little.
  void Clear() {
    for (size_t k = 0; k < kKinds; ++k) {
      std::fill(counts_[k].begin(), counts_[k].begin() + used_rows_[k],
                uint8_t{0});
      used_rows_[k] = 0;
    }
  }

  /// Record one lane access. Lanes call in execution order and each lane
  /// visits a given (kind, seq) at most once, so a row holds at most one
  /// record per lane — 32 slots always suffice.
  void Append(StreamKind kind, uint32_t seq, uint64_t addr, uint32_t bytes) {
    const size_t k = static_cast<size_t>(kind);
    if (seq >= counts_[k].size()) [[unlikely]] {
      Grow(k, seq);
    }
    used_rows_[k] = std::max(used_rows_[k], static_cast<size_t>(seq) + 1);
    uint8_t& count = counts_[k][seq];
    assert(count < kWarpSize && "more than one record per lane and seq");
    const size_t slot = static_cast<size_t>(seq) * kWarpSize + count;
    addrs_[k][slot] = addr;
    bytes_[k][slot] = bytes;
    ++count;
  }

  /// Rows in use for a kind (max recorded seq + 1).
  size_t rows(size_t kind) const { return used_rows_[kind]; }
  /// Lane records in row (kind, seq).
  size_t count(size_t kind, size_t seq) const { return counts_[kind][seq]; }
  /// The row's address plane, in lane order. Callers may permute it after
  /// the row has been consumed (the atomic-conflict scan sorts in place).
  uint64_t* addr_row(size_t kind, size_t seq) {
    return addrs_[kind].data() + seq * kWarpSize;
  }
  const uint32_t* bytes_row(size_t kind, size_t seq) const {
    return bytes_[kind].data() + seq * kWarpSize;
  }

 private:
  void Grow(size_t kind, uint32_t seq) {
    const size_t rows = static_cast<size_t>(seq) + 1;
    counts_[kind].resize(rows, 0);
    addrs_[kind].resize(rows * kWarpSize);
    bytes_[kind].resize(rows * kWarpSize);
  }

  std::vector<uint64_t> addrs_[kKinds];  // rows * 32, lane order within row
  std::vector<uint32_t> bytes_[kKinds];
  std::vector<uint8_t> counts_[kKinds];  // records per row
  size_t used_rows_[kKinds] = {};
};

/// Deferred metering output of a contiguous block range (the block-parallel
/// execution mode). Blocks coalesce their warp streams in parallel — the
/// integer counters land in `stats`, which is order-independent (pure sums
/// and maxes) — while the order-*dependent* part, the L1/L2 probes, is
/// buffered as packed line transactions and replayed through the shared
/// cache hierarchy strictly in block order. That replay rule is what keeps
/// the parallel mode byte-identical to serial execution at any worker
/// count.
struct MeterBuffer {
  /// (line_index << 1) | is_write, in the exact order the serial engine
  /// would have probed the caches.
  std::vector<uint64_t> line_entries;
  /// Counter-only shard: integer counters accumulated by this block range
  /// (timing fields stay zero; the launch fills them after the merge).
  KernelStats stats;
  /// Per-shard coalescer scratch. The MemoryModel's own scratch vector is
  /// shared state — concurrent chunks must each coalesce into their own
  /// buffer (MemoryModel::CoalesceInto).
  std::vector<uint64_t> coalesce_scratch;
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_ACCESS_STREAM_H_
