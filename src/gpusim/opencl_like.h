// OpenCL-flavored front-end over the SIMT simulator (see cuda_like.h for
// the rationale). Speaks the OpenCL vocabulary: buffers created from a
// context, kernels enqueued on a command queue with an NDRange of
// global/local work sizes, work-groups and work-items.
#ifndef BIOSIM_GPUSIM_OPENCL_LIKE_H_
#define BIOSIM_GPUSIM_OPENCL_LIKE_H_

#include <cassert>
#include <string>
#include <utility>

#include "gpusim/device.h"

namespace biosim::gpusim::opencl {

/// clCreateContext + clCreateCommandQueue analog.
class CommandQueue {
 public:
  explicit CommandQueue(DeviceSpec spec) : dev_(std::move(spec)) {}

  Device& device() { return dev_; }
  const Device& device() const { return dev_; }

  template <typename T>
  DeviceBuffer<T> CreateBuffer(size_t n) {
    return dev_.Alloc<T>(n);
  }

  template <typename T>
  void EnqueueWriteBuffer(DeviceBuffer<T>& dst, std::span<const T> src) {
    dev_.CopyToDevice(dst, src);
  }

  template <typename T>
  void EnqueueReadBuffer(std::span<T> dst, const DeviceBuffer<T>& src) {
    dev_.CopyFromDevice(dst, src);
  }

  /// clEnqueueNDRangeKernel analog: `global_size` work-items in work-groups
  /// of `local_size`. global_size is rounded up to a multiple of local_size
  /// (as required by OpenCL <2.0); kernels guard the tail themselves.
  /// `block_parallel_safe` asserts the work-groups are independent (see
  /// LaunchConfig) so the device may execute them concurrently in
  /// block-parallel mode.
  KernelStats EnqueueNDRangeKernel(
      const std::string& name, size_t global_size, size_t local_size,
      const std::function<void(BlockCtx&)>& kernel,
      bool block_parallel_safe = false) {
    assert(local_size >= 1);
    size_t groups = (global_size + local_size - 1) / local_size;
    return dev_.Launch({name, groups, local_size, block_parallel_safe},
                       kernel);
  }

 private:
  Device dev_;
};

/// OpenCL work-item vocabulary over the Lane API, so kernel bodies written
/// for the CUDA front-end read naturally under OpenCL review too:
/// get_global_id(t) == blockIdx.x * blockDim.x + threadIdx.x.
inline size_t get_global_id(const Lane& t) { return t.gtid(); }
inline size_t get_local_id(const Lane& t) { return t.lane(); }
inline size_t get_group_id(const Lane& t) { return t.block(); }
inline size_t get_local_size(const Lane& t) { return t.block_dim(); }

}  // namespace biosim::gpusim::opencl

#endif  // BIOSIM_GPUSIM_OPENCL_LIKE_H_
