#include "gpusim/sanitizer.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace biosim::gpusim {

const char* ToString(AccessKind k) {
  switch (k) {
    case AccessKind::kRead:
      return "Read";
    case AccessKind::kWrite:
      return "Write";
    case AccessKind::kAtomic:
      return "Atomic";
  }
  return "?";
}

const char* ToString(MemSpace s) {
  return s == MemSpace::kGlobal ? "global" : "shared";
}

const char* ToString(HazardKind k) {
  switch (k) {
    case HazardKind::kSharedRace:
      return "shared-memory race";
    case HazardKind::kGlobalRace:
      return "global-memory race";
    case HazardKind::kOutOfBounds:
      return "out-of-bounds access";
    case HazardKind::kUninitializedRead:
      return "uninitialized read";
    case HazardKind::kSharedOverflow:
      return "shared-memory overflow";
    case HazardKind::kBarrierDivergence:
      return "barrier-count divergence";
    case HazardKind::kSharedAllocDivergence:
      return "shared-allocation divergence";
  }
  return "?";
}

const char* ToolOf(HazardKind k) {
  switch (k) {
    case HazardKind::kSharedRace:
    case HazardKind::kGlobalRace:
      return "RACECHECK";
    case HazardKind::kOutOfBounds:
    case HazardKind::kUninitializedRead:
    case HazardKind::kSharedOverflow:
      return "MEMCHECK";
    case HazardKind::kBarrierDivergence:
    case HazardKind::kSharedAllocDivergence:
      return "SYNCCHECK";
  }
  return "?";
}

std::string Hazard::ToString() const {
  char buf[512];
  switch (kind) {
    case HazardKind::kSharedRace:
    case HazardKind::kGlobalRace:
      snprintf(buf, sizeof(buf),
               "ERROR: %s between %s access by lane %zu (block %zu, phase "
               "%zu) and %s access by lane %zu (block %zu, phase %zu) at %s "
               "address 0x%" PRIx64 " (%u bytes) in kernel %s",
               biosim::gpusim::ToString(kind),
               biosim::gpusim::ToString(other_access), other_lane,
               other_block, other_phase, biosim::gpusim::ToString(access),
               lane, block, phase, biosim::gpusim::ToString(space), addr,
               bytes, kernel.c_str());
      break;
    case HazardKind::kOutOfBounds:
    case HazardKind::kUninitializedRead:
      snprintf(buf, sizeof(buf),
               "ERROR: %s: %s of %u bytes at %s address 0x%" PRIx64
               " by lane %zu (block %zu, phase %zu) in kernel %s%s%s",
               biosim::gpusim::ToString(kind),
               biosim::gpusim::ToString(access), bytes,
               biosim::gpusim::ToString(space), addr, lane, block, phase,
               kernel.c_str(), detail.empty() ? "" : " — ", detail.c_str());
      break;
    case HazardKind::kSharedOverflow:
    case HazardKind::kBarrierDivergence:
    case HazardKind::kSharedAllocDivergence:
      snprintf(buf, sizeof(buf), "ERROR: %s in kernel %s: %s",
               biosim::gpusim::ToString(kind), kernel.c_str(),
               detail.c_str());
      break;
  }
  return buf;
}

uint64_t SanitizerReport::CountTool(const char* tool) const {
  uint64_t n = 0;
  for (size_t k = 0; k < kNumHazardKinds; ++k) {
    if (std::strcmp(ToolOf(static_cast<HazardKind>(k)), tool) == 0) {
      n += counts_[k];
    }
  }
  return n;
}

std::string SanitizerReport::ToString() const {
  std::string out = "========= SANITIZER (simulated compute-sanitizer)\n";
  for (const Hazard& h : hazards_) {
    out += "========= [";
    out += ToolOf(h.kind);
    out += "] ";
    out += h.ToString();
    out += "\n";
  }
  if (dropped_ > 0) {
    out += "========= (" + std::to_string(dropped_) +
           " further hazards counted but not recorded)\n";
  }
  if (tracking_overflow_) {
    out +=
        "========= WARNING: racecheck address tracking saturated; some "
        "races may be missed\n";
  }
  char line[160];
  snprintf(line, sizeof(line),
           "========= SANITIZER SUMMARY: %" PRIu64
           " hazards (%" PRIu64 " racecheck, %" PRIu64 " memcheck, %" PRIu64
           " synccheck)\n",
           total_, CountTool("RACECHECK"), CountTool("MEMCHECK"),
           CountTool("SYNCCHECK"));
  out += line;
  return out;
}

void Sanitizer::BeginLaunch(const std::string& name, size_t grid_dim,
                            size_t block_dim) {
  kernel_ = name;
  grid_dim_ = grid_dim;
  block_dim_ = block_dim;
  hazards_before_launch_ = report_.total();
  global_addrs_.clear();
  shared_addrs_.clear();
  blocks_.clear();
  blocks_.reserve(grid_dim);
  oob_reported_.clear();
  uninit_reported_.clear();
  shared_overflow_reported_ = false;
}

void Sanitizer::BeginBlock(size_t block) {
  (void)block;
  shared_addrs_.clear();
}

void Sanitizer::BeginPhase() { shared_addrs_.clear(); }

void Sanitizer::EndBlock(size_t block, size_t phases, uint64_t shared_bytes,
                         size_t shared_allocs) {
  (void)block;
  blocks_.push_back({phases, shared_bytes, shared_allocs});
}

uint64_t Sanitizer::EndLaunch() {
  if (config_.synccheck && blocks_.size() > 1) {
    const BlockSummary& ref = blocks_[0];
    for (size_t b = 1; b < blocks_.size(); ++b) {
      if (blocks_[b].phases != ref.phases) {
        Hazard h;
        h.kind = HazardKind::kBarrierDivergence;
        h.kernel = kernel_;
        h.block = b;
        h.detail = "block 0 ran " + std::to_string(ref.phases) +
                   " barrier intervals, block " + std::to_string(b) +
                   " ran " + std::to_string(blocks_[b].phases);
        AddHazard(std::move(h));
        break;  // one representative hazard per launch
      }
    }
    for (size_t b = 1; b < blocks_.size(); ++b) {
      if (blocks_[b].shared_bytes != ref.shared_bytes ||
          blocks_[b].shared_allocs != ref.shared_allocs) {
        Hazard h;
        h.kind = HazardKind::kSharedAllocDivergence;
        h.kernel = kernel_;
        h.block = b;
        h.detail = "block 0 made " + std::to_string(ref.shared_allocs) +
                   " shared allocations (" + std::to_string(ref.shared_bytes) +
                   " bytes), block " + std::to_string(b) + " made " +
                   std::to_string(blocks_[b].shared_allocs) + " (" +
                   std::to_string(blocks_[b].shared_bytes) + " bytes)";
        AddHazard(std::move(h));
        break;
      }
    }
  }
  return report_.total() - hazards_before_launch_;
}

void Sanitizer::Track(std::unordered_map<uint64_t, AddrState>* map,
                      HazardKind race_kind, MemSpace space, AccessKind kind,
                      size_t block, size_t lane, size_t phase, uint64_t addr,
                      uint32_t bytes) {
  if (map->size() >= config_.max_tracked_addresses &&
      map->find(addr) == map->end()) {
    report_.NoteTrackingOverflow();
    return;
  }
  AddrState& st = (*map)[addr];
  AccessRecord rec;
  rec.block = static_cast<uint32_t>(block);
  rec.lane = static_cast<uint16_t>(lane);
  rec.phase = static_cast<uint16_t>(std::min<size_t>(phase, 0xFFFF));
  rec.kind = kind;

  if (!st.reported) {
    for (size_t i = 0; i < st.count; ++i) {
      if (Races(st.recs[i], rec)) {
        Hazard h;
        h.kind = race_kind;
        h.kernel = kernel_;
        h.space = space;
        h.addr = addr;
        h.bytes = bytes;
        h.block = block;
        h.lane = lane;
        h.phase = phase;
        h.access = kind;
        h.other_block = st.recs[i].block;
        h.other_lane = st.recs[i].lane;
        h.other_phase = st.recs[i].phase;
        h.other_access = st.recs[i].kind;
        AddHazard(std::move(h));
        st.reported = true;  // one hazard per address (per interval/launch)
        break;
      }
    }
  }

  for (size_t i = 0; i < st.count; ++i) {
    const AccessRecord& r = st.recs[i];
    if (r.block == rec.block && r.lane == rec.lane && r.phase == rec.phase &&
        r.kind == rec.kind) {
      return;  // identical accessor already stored
    }
  }
  if (st.count < AddrState::kRecs) {
    st.recs[st.count++] = rec;
  } else if (kind == AccessKind::kWrite) {
    // Keep writes visible: they are what future accesses race against.
    st.recs[AddrState::kRecs - 1] = rec;
  }
}

void Sanitizer::OnAccess(MemSpace space, AccessKind kind, size_t block,
                         size_t lane, size_t phase, uint64_t addr,
                         uint32_t bytes) {
  if (!config_.racecheck) {
    return;
  }
  if (space == MemSpace::kShared) {
    Track(&shared_addrs_, HazardKind::kSharedRace, space, kind, block, lane,
          phase, addr, bytes);
  } else {
    Track(&global_addrs_, HazardKind::kGlobalRace, space, kind, block, lane,
          phase, addr, bytes);
  }
}

void Sanitizer::OnOutOfBounds(MemSpace space, AccessKind kind, size_t block,
                              size_t lane, size_t phase, uint64_t base_addr,
                              size_t index, size_t size, uint32_t bytes) {
  if (!config_.memcheck) {
    return;
  }
  uint64_t addr = base_addr + static_cast<uint64_t>(index) * bytes;
  if (!oob_reported_.insert(addr).second) {
    return;
  }
  Hazard h;
  h.kind = HazardKind::kOutOfBounds;
  h.kernel = kernel_;
  h.space = space;
  h.addr = addr;
  h.bytes = bytes;
  h.block = block;
  h.lane = lane;
  h.phase = phase;
  h.access = kind;
  h.detail = "index " + std::to_string(index) + " beyond buffer of " +
             std::to_string(size) + " elements";
  AddHazard(std::move(h));
}

void Sanitizer::OnUninitializedRead(MemSpace space, AccessKind kind,
                                    size_t block, size_t lane, size_t phase,
                                    uint64_t addr, uint32_t bytes) {
  if (!config_.memcheck) {
    return;
  }
  if (!uninit_reported_.insert(addr).second) {
    return;
  }
  Hazard h;
  h.kind = HazardKind::kUninitializedRead;
  h.kernel = kernel_;
  h.space = space;
  h.addr = addr;
  h.bytes = bytes;
  h.block = block;
  h.lane = lane;
  h.phase = phase;
  h.access = kind;
  h.detail = space == MemSpace::kShared
                 ? "shared memory is uninitialized on real hardware (the "
                   "simulator zero-fills it)"
                 : "no device store, H2D copy or host write initialized "
                   "this element";
  AddHazard(std::move(h));
}

void Sanitizer::OnSharedOverflow(size_t block, uint64_t requested_bytes,
                                 uint64_t used_bytes, uint64_t limit_bytes) {
  if (!config_.memcheck || shared_overflow_reported_) {
    return;
  }
  shared_overflow_reported_ = true;
  Hazard h;
  h.kind = HazardKind::kSharedOverflow;
  h.kernel = kernel_;
  h.space = MemSpace::kShared;
  h.block = block;
  h.detail = "allocation of " + std::to_string(requested_bytes) +
             " bytes with " + std::to_string(used_bytes) +
             " already in use exceeds the " + std::to_string(limit_bytes) +
             " bytes/block limit (block " + std::to_string(block) + ")";
  AddHazard(std::move(h));
}

}  // namespace biosim::gpusim
