// Global-memory traffic model: per-warp coalescing in front of a simulated
// L2 in front of DRAM byte counters.
//
// The SIMT engine hands this model the addresses each warp accesses per
// memory instruction. Addresses are merged into cache-line transactions
// (the coalescer), each transaction probes the L2, and misses count as DRAM
// traffic. This chain is what makes the paper's improvements measurable:
// FP32 halves the requested bytes, Z-order sorting makes warp-neighbor
// addresses share lines (fewer transactions) and repeat lines across warps
// (more L2 hits).
#ifndef BIOSIM_GPUSIM_MEMORY_MODEL_H_
#define BIOSIM_GPUSIM_MEMORY_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/kernel_stats.h"
#include "gpusim/l2_cache.h"

namespace biosim::gpusim {

/// One lane's access within a memory instruction.
struct LaneAccess {
  uint64_t addr;
  uint32_t bytes;
};

class MemoryModel {
 public:
  explicit MemoryModel(const DeviceSpec& spec)
      : line_bytes_(static_cast<uint64_t>(spec.l2_line_bytes)),
        l1_(spec.l1_capacity_bytes, spec.l2_line_bytes, spec.l1_associativity),
        l2_(spec.l2_capacity_bytes, spec.l2_line_bytes, spec.l2_associativity) {}

  /// Process one warp-wide memory instruction: coalesce the lane accesses
  /// into line transactions and run them through the L2. Counters land in
  /// `stats` (unscaled; the engine scales for sampling at the end).
  void AccessWarp(const std::vector<LaneAccess>& accesses, bool write,
                  KernelStats* stats) {
    uint64_t requested = 0;
    lines_.clear();
    for (const LaneAccess& a : accesses) {
      requested += a.bytes;
      uint64_t first = a.addr / line_bytes_;
      uint64_t last = (a.addr + a.bytes - 1) / line_bytes_;
      for (uint64_t line = first; line <= last; ++line) {
        lines_.push_back(line);
      }
    }
    std::sort(lines_.begin(), lines_.end());
    lines_.erase(std::unique(lines_.begin(), lines_.end()), lines_.end());

    if (write) {
      stats->requested_write_bytes += requested;
      stats->write_transactions += lines_.size();
    } else {
      stats->requested_read_bytes += requested;
      stats->read_transactions += lines_.size();
    }

    for (uint64_t line : lines_) {
      uint64_t bytes = line_bytes_;
      // L1 first (per-SM cache; the block-sequential execution order makes
      // one L1 a faithful stand-in for each SM's view of its blocks).
      if (l1_.Access(line * line_bytes_)) {
        (write ? stats->l1_write_hit_bytes : stats->l1_read_hit_bytes) += bytes;
        continue;
      }
      bool hit = l2_.Access(line * line_bytes_);
      if (write) {
        (hit ? stats->l2_write_hit_bytes : stats->dram_write_bytes) += bytes;
      } else {
        (hit ? stats->l2_read_hit_bytes : stats->dram_read_bytes) += bytes;
      }
    }
  }

  /// Cold caches (between kernels of different benchmarks; within one
  /// simulation step the L2 legitimately stays warm across kernels).
  void ResetCache() {
    l1_.Reset();
    l2_.Reset();
  }

 private:
  uint64_t line_bytes_;
  L2Cache l1_;  // same structure, per-SM capacity
  L2Cache l2_;
  std::vector<uint64_t> lines_;  // scratch, reused across calls
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_MEMORY_MODEL_H_
