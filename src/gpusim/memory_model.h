// Global-memory traffic model: per-warp coalescing in front of a simulated
// L2 in front of DRAM byte counters.
//
// The SIMT engine hands this model the addresses each warp accesses per
// memory instruction. Addresses are merged into cache-line transactions
// (the coalescer), each transaction probes the L2, and misses count as DRAM
// traffic. This chain is what makes the paper's improvements measurable:
// FP32 halves the requested bytes, Z-order sorting makes warp-neighbor
// addresses share lines (fewer transactions) and repeat lines across warps
// (more L2 hits).
#ifndef BIOSIM_GPUSIM_MEMORY_MODEL_H_
#define BIOSIM_GPUSIM_MEMORY_MODEL_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/kernel_stats.h"
#include "gpusim/l2_cache.h"

namespace biosim::gpusim {

/// One lane's access within a memory instruction.
struct LaneAccess {
  uint64_t addr;
  uint32_t bytes;
};

class MemoryModel {
 public:
  explicit MemoryModel(const DeviceSpec& spec)
      : line_bytes_(static_cast<uint64_t>(spec.l2_line_bytes)),
        line_shift_(LineShift(line_bytes_)),
        l1_(spec.l1_capacity_bytes, spec.l2_line_bytes, spec.l1_associativity),
        l2_(spec.l2_capacity_bytes, spec.l2_line_bytes, spec.l2_associativity) {}

  /// Process one warp-wide memory instruction: coalesce the lane accesses
  /// into line transactions and run them through the L2. Counters land in
  /// `stats` (unscaled; the engine scales for sampling at the end).
  void AccessWarp(const std::vector<LaneAccess>& accesses, bool write,
                  KernelStats* stats) {
    AccessWarp(accesses.data(), accesses.size(), write, stats);
  }
  void AccessWarp(const LaneAccess* accesses, size_t n, bool write,
                  KernelStats* stats) {
    const std::vector<uint64_t>& lines = Coalesce(accesses, n, write, stats);
    ProbeLines(lines.data(), lines.size(), write, stats);
  }

  /// Coalescer half of AccessWarp: merge the lane accesses of one warp
  /// instruction into unique line transactions, accounting the requested
  /// bytes and transaction count. Returns the line indices (a reference to
  /// internal scratch — valid until the next Coalesce call). The caller
  /// either probes them immediately (ProbeLines) or buffers them for an
  /// in-order replay (the block-parallel mode).
  const std::vector<uint64_t>& Coalesce(const LaneAccess* accesses, size_t n,
                                        bool write, KernelStats* stats) {
    CoalesceImpl(
        &lines_, n, [accesses](size_t i) { return accesses[i].addr; },
        [accesses](size_t i) { return accesses[i].bytes; }, write, stats);
    return lines_;
  }
  /// Same, over the access stream's SoA planes (access_stream.h).
  const std::vector<uint64_t>& Coalesce(const uint64_t* addrs,
                                        const uint32_t* bytes, size_t n,
                                        bool write, KernelStats* stats) {
    CoalesceImpl(
        &lines_, n, [addrs](size_t i) { return addrs[i]; },
        [bytes](size_t i) { return bytes[i]; }, write, stats);
    return lines_;
  }
  /// Coalesce into caller-owned scratch. The coalescer is pure apart from
  /// its output vector, so threads sharing one MemoryModel may run it
  /// concurrently as long as each brings its own scratch — the
  /// block-parallel shards do (MeterBuffer::coalesce_scratch). The member
  /// scratch stays reserved for the serial path.
  void CoalesceInto(std::vector<uint64_t>* out, const uint64_t* addrs,
                    const uint32_t* bytes, size_t n, bool write,
                    KernelStats* stats) const {
    CoalesceImpl(
        out, n, [addrs](size_t i) { return addrs[i]; },
        [bytes](size_t i) { return bytes[i]; }, write, stats);
  }

  /// Cache half of AccessWarp: run line transactions through L1 then L2,
  /// attributing each line's bytes to its service level. Order-dependent
  /// (the caches are stateful LRU) — callers must present transactions in
  /// program order.
  void ProbeLines(const uint64_t* lines, size_t n, bool write,
                  KernelStats* stats) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t line = lines[i];
      uint64_t bytes = line_bytes_;
      // L1 first (per-SM cache; the block-sequential execution order makes
      // one L1 a faithful stand-in for each SM's view of its blocks).
      if (l1_.Access(line * line_bytes_)) {
        (write ? stats->l1_write_hit_bytes : stats->l1_read_hit_bytes) += bytes;
        continue;
      }
      bool hit = l2_.Access(line * line_bytes_);
      if (write) {
        (hit ? stats->l2_write_hit_bytes : stats->dram_write_bytes) += bytes;
      } else {
        (hit ? stats->l2_read_hit_bytes : stats->dram_read_bytes) += bytes;
      }
    }
  }

  /// Cold caches (between kernels of different benchmarks; within one
  /// simulation step the L2 legitimately stays warm across kernels).
  void ResetCache() {
    l1_.Reset();
    l2_.Reset();
  }

 private:
  template <typename AddrAt, typename BytesAt>
  void CoalesceImpl(std::vector<uint64_t>* out, size_t n, AddrAt addr_at,
                    BytesAt bytes_at, bool write, KernelStats* stats) const {
    std::vector<uint64_t>& lines = *out;
    uint64_t requested = 0;
    lines.clear();
    bool sorted = true;
    uint64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t addr = addr_at(i);
      const uint32_t bytes = bytes_at(i);
      requested += bytes;
      // Lines are a power of two wide; the shift keeps this per-access
      // hot loop free of hardware divisions.
      uint64_t first = addr >> line_shift_;
      uint64_t last = (addr + bytes - 1) >> line_shift_;
      for (uint64_t line = first; line <= last; ++line) {
        // Lanes usually touch consecutive addresses (that is the point of
        // coalescing), so the expanded line list is almost always already
        // non-decreasing — dedup adjacent runs on the fly and keep the sort
        // for the scattered case only. Output is identical: sorted unique.
        if (line == prev && !lines.empty()) {
          continue;
        }
        sorted &= lines.empty() || line > prev;
        lines.push_back(line);
        prev = line;
      }
    }
    if (!sorted) {
      std::sort(lines.begin(), lines.end());
      lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    }

    if (write) {
      stats->requested_write_bytes += requested;
      stats->write_transactions += lines.size();
    } else {
      stats->requested_read_bytes += requested;
      stats->read_transactions += lines.size();
    }
  }

  static int LineShift(uint64_t line_bytes) {
    assert(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0 &&
           "cache line size must be a power of two");
    int shift = 0;
    while ((uint64_t{1} << shift) < line_bytes) {
      ++shift;
    }
    return shift;
  }

  uint64_t line_bytes_;
  int line_shift_;
  L2Cache l1_;  // same structure, per-SM capacity
  L2Cache l2_;
  std::vector<uint64_t> lines_;  // scratch, reused across calls
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_MEMORY_MODEL_H_
