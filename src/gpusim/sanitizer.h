// GPU sanitizer: compute-sanitizer-style hazard analysis for the SIMT
// simulator (racecheck / memcheck / synccheck).
//
// The simulator executes kernels sequentially and deterministically, which
// *masks* the hazards a real GPU would hit: data races resolve in program
// order, out-of-bounds accesses are guarded only by asserts that vanish
// under NDEBUG, and shared memory arrives zero-initialized even though
// CUDA/OpenCL shared memory is garbage. This opt-in analysis layer
// (Device::EnableSanitizer) observes every Lane access and every barrier
// interval — independent of the warp-metering stride — and reports three
// hazard classes, named after the compute-sanitizer tools that would catch
// them on real hardware:
//
//   racecheck  -- two different threads touch the same shared- or
//                 global-memory address, at least one access a non-atomic
//                 write, with no barrier ordering them. Shared hazards are
//                 intra-block within one barrier interval; global hazards
//                 additionally cover any two blocks of the launch (blocks
//                 are never ordered within a launch).
//   memcheck   -- out-of-bounds indices on DeviceBuffer / SharedArray
//                 (diagnosed even in Release builds; the faulting access is
//                 suppressed so execution continues), reads of elements
//                 that no device store, H2D copy, or host write ever
//                 initialized, and shared-memory over-allocation.
//   synccheck  -- blocks of one launch disagree on the number of barrier
//                 intervals or on their shared-memory allocations, i.e.
//                 block-dependent control flow around __syncthreads().
//
// Hazards accumulate in a structured SanitizerReport that tests assert on
// and `biosim_run --sanitize` renders as a compute-sanitizer-style text
// report. See docs/sanitizer.md for the full hazard model.
#ifndef BIOSIM_GPUSIM_SANITIZER_H_
#define BIOSIM_GPUSIM_SANITIZER_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace biosim::gpusim {

enum class AccessKind : uint8_t { kRead, kWrite, kAtomic };
enum class MemSpace : uint8_t { kGlobal, kShared };

enum class HazardKind : uint8_t {
  kSharedRace,            // racecheck
  kGlobalRace,            // racecheck
  kOutOfBounds,           // memcheck
  kUninitializedRead,     // memcheck
  kSharedOverflow,        // memcheck
  kBarrierDivergence,     // synccheck
  kSharedAllocDivergence  // synccheck
};
inline constexpr size_t kNumHazardKinds = 7;

const char* ToString(AccessKind k);
const char* ToString(MemSpace s);
const char* ToString(HazardKind k);
/// The compute-sanitizer tool that reports this hazard class on real
/// hardware: "RACECHECK", "MEMCHECK" or "SYNCCHECK".
const char* ToolOf(HazardKind k);

/// One detected hazard, with everything a test (or a human) needs to find
/// the offending access: kernel, block, lane(s), address, access kinds and
/// the barrier interval ("phase") it was first seen in.
struct Hazard {
  HazardKind kind = HazardKind::kGlobalRace;
  std::string kernel;
  MemSpace space = MemSpace::kGlobal;
  uint64_t addr = 0;
  uint32_t bytes = 0;
  // The access that completed the hazard (memcheck: the faulting access).
  size_t block = 0;
  size_t lane = 0;
  size_t phase = 0;
  AccessKind access = AccessKind::kRead;
  // Racecheck only: the earlier conflicting access.
  size_t other_block = 0;
  size_t other_lane = 0;
  size_t other_phase = 0;
  AccessKind other_access = AccessKind::kRead;
  // Human-readable specifics (index vs capacity, per-block counts, ...).
  std::string detail;

  std::string ToString() const;
};

struct SanitizerConfig {
  bool racecheck = true;
  bool memcheck = true;
  bool synccheck = true;
  /// Hazards beyond this many are counted but not stored.
  size_t max_hazards = 256;
  /// Racecheck address-tracking bound per launch; once exceeded, new
  /// addresses are not tracked (noted in the report as possible misses).
  size_t max_tracked_addresses = size_t{1} << 22;
};

/// Accumulated hazards across all launches since EnableSanitizer (or the
/// last Clear).
class SanitizerReport {
 public:
  void Add(Hazard h, size_t max_hazards) {
    counts_[static_cast<size_t>(h.kind)] += 1;
    total_ += 1;
    if (hazards_.size() < max_hazards) {
      hazards_.push_back(std::move(h));
    } else {
      dropped_ += 1;
    }
  }

  const std::vector<Hazard>& hazards() const { return hazards_; }
  uint64_t total() const { return total_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t Count(HazardKind k) const {
    return counts_[static_cast<size_t>(k)];
  }
  /// Hazards attributable to one compute-sanitizer tool.
  uint64_t CountTool(const char* tool) const;
  bool clean() const { return total_ == 0; }
  void NoteTrackingOverflow() { tracking_overflow_ = true; }
  bool tracking_overflow() const { return tracking_overflow_; }

  void Clear() {
    hazards_.clear();
    counts_.fill(0);
    total_ = 0;
    dropped_ = 0;
    tracking_overflow_ = false;
  }

  /// compute-sanitizer-style text report ("========= ERROR: ..." lines plus
  /// a summary), or a one-line clean summary.
  std::string ToString() const;

 private:
  std::vector<Hazard> hazards_;
  std::array<uint64_t, kNumHazardKinds> counts_{};
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
  bool tracking_overflow_ = false;
};

/// Per-buffer initialization shadow (memcheck's never-written-read model).
/// Device stores and H2D copies mark elements; host access through the raw
/// pointer conservatively marks the whole buffer (the sanitizer cannot see
/// what the host does with it).
class BufferShadow {
 public:
  explicit BufferShadow(size_t elems) : written_(elems, false) {}

  void MarkAll() { all_ = true; }
  void Mark(size_t i) {
    if (!all_ && i < written_.size()) {
      written_[i] = true;
    }
  }
  void MarkPrefix(size_t n) {
    for (size_t i = 0, e = std::min(n, written_.size()); i < e; ++i) {
      written_[i] = true;
    }
  }
  bool IsWritten(size_t i) const {
    return all_ || (i < written_.size() && written_[i]);
  }

 private:
  std::vector<bool> written_;
  bool all_ = false;
};

/// The analysis engine. Owned by Device (EnableSanitizer); driven by
/// Device::Launch and the Lane/BlockCtx access paths. All hooks are cheap
/// no-ops for the hazard-free case except the per-access race bookkeeping.
class Sanitizer {
 public:
  explicit Sanitizer(SanitizerConfig config) : config_(config) {}

  const SanitizerConfig& config() const { return config_; }
  SanitizerReport& report() { return report_; }
  const SanitizerReport& report() const { return report_; }

  // --- launch lifecycle (driven by Device::Launch / BlockCtx) ------------
  void BeginLaunch(const std::string& name, size_t grid_dim,
                   size_t block_dim);
  /// Finalize synccheck for the launch; returns the hazards it added.
  uint64_t EndLaunch();
  void BeginBlock(size_t block);
  void EndBlock(size_t block, size_t phases, uint64_t shared_bytes,
                size_t shared_allocs);
  /// A new barrier interval starts in the current block.
  void BeginPhase();

  // --- access hooks (lane-level; called for every access, metered or not)
  void OnAccess(MemSpace space, AccessKind kind, size_t block, size_t lane,
                size_t phase, uint64_t addr, uint32_t bytes);
  void OnOutOfBounds(MemSpace space, AccessKind kind, size_t block,
                     size_t lane, size_t phase, uint64_t base_addr,
                     size_t index, size_t size, uint32_t bytes);
  void OnUninitializedRead(MemSpace space, AccessKind kind, size_t block,
                           size_t lane, size_t phase, uint64_t addr,
                           uint32_t bytes);
  void OnSharedOverflow(size_t block, uint64_t requested_bytes,
                        uint64_t used_bytes, uint64_t limit_bytes);

  bool memcheck_enabled() const { return config_.memcheck; }

 private:
  struct AccessRecord {
    uint32_t block = 0;
    uint16_t lane = 0;
    uint16_t phase = 0;
    AccessKind kind = AccessKind::kRead;
  };
  /// Per-address racecheck state: up to kRecs distinct accessors. The cap
  /// trades exhaustiveness for memory; read-mostly addresses saturate
  /// quickly but a later conflicting write still races against any stored
  /// record, so write-involved hazards are caught in practice.
  struct AddrState {
    static constexpr size_t kRecs = 6;
    std::array<AccessRecord, kRecs> recs;
    uint8_t count = 0;
    bool reported = false;
  };

  /// True if the two accesses can race: different threads, no barrier
  /// ordering (same block + different phase), and at least one non-atomic
  /// write (the issue's — and racecheck's — hazard definition).
  static bool Races(const AccessRecord& a, const AccessRecord& b) {
    if (a.block == b.block && a.lane == b.lane) {
      return false;  // same thread: program order
    }
    if (a.block == b.block && a.phase != b.phase) {
      return false;  // same block, different interval: barrier-ordered
    }
    return a.kind == AccessKind::kWrite || b.kind == AccessKind::kWrite;
  }

  void Track(std::unordered_map<uint64_t, AddrState>* map,
             HazardKind race_kind, MemSpace space, AccessKind kind,
             size_t block, size_t lane, size_t phase, uint64_t addr,
             uint32_t bytes);
  void AddHazard(Hazard h) { report_.Add(std::move(h), config_.max_hazards); }

  SanitizerConfig config_;
  SanitizerReport report_;

  // --- per-launch state --------------------------------------------------
  struct BlockSummary {
    size_t phases = 0;
    uint64_t shared_bytes = 0;
    size_t shared_allocs = 0;
  };
  std::string kernel_;
  size_t grid_dim_ = 0;
  size_t block_dim_ = 0;
  uint64_t hazards_before_launch_ = 0;
  std::unordered_map<uint64_t, AddrState> global_addrs_;
  std::unordered_map<uint64_t, AddrState> shared_addrs_;  // current interval
  std::vector<BlockSummary> blocks_;
  std::unordered_set<uint64_t> oob_reported_;
  std::unordered_set<uint64_t> uninit_reported_;
  bool shared_overflow_reported_ = false;
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_SANITIZER_H_
