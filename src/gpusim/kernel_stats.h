// Per-kernel hardware counters and the derived timing breakdown.
//
// These are the quantities nvprof reports for a real kernel and everything
// the timing model needs: work (FLOPs by precision), traffic (DRAM / L2 /
// shared bytes and transactions), contention (atomic serialization), and
// control efficiency (SIMD lane utilization).
#ifndef BIOSIM_GPUSIM_KERNEL_STATS_H_
#define BIOSIM_GPUSIM_KERNEL_STATS_H_

#include <cstdint>
#include <string>

namespace biosim::gpusim {

struct KernelStats {
  std::string name;
  size_t grid_dim = 0;
  size_t block_dim = 0;

  // --- work ---------------------------------------------------------------
  uint64_t fp32_flops = 0;
  uint64_t fp64_flops = 0;

  // --- global memory traffic (post-coalescing, line granularity) ----------
  uint64_t read_transactions = 0;
  uint64_t write_transactions = 0;
  uint64_t dram_read_bytes = 0;   // L2 read misses
  uint64_t dram_write_bytes = 0;  // L2 write misses
  uint64_t l2_read_hit_bytes = 0;
  uint64_t l2_write_hit_bytes = 0;
  uint64_t l1_read_hit_bytes = 0;
  uint64_t l1_write_hit_bytes = 0;
  /// Bytes the lanes actually requested (pre-coalescing); the ratio
  /// requested/transferred measures coalescing quality.
  uint64_t requested_read_bytes = 0;
  uint64_t requested_write_bytes = 0;

  // --- on-chip traffic -----------------------------------------------------
  uint64_t shared_bytes = 0;

  // --- atomics -------------------------------------------------------------
  uint64_t atomic_ops = 0;
  /// Extra serialized steps caused by address conflicts inside warps: a warp
  /// whose k active lanes update the same address contributes k-1.
  uint64_t atomic_serialized = 0;

  // --- control flow ----------------------------------------------------------
  /// Sum over lanes of issued ops, and 32 * max-lane-ops summed over warps;
  /// their ratio is the SIMD efficiency (1.0 = no divergence, no idle lanes).
  uint64_t lane_ops_sum = 0;
  uint64_t warp_ops_slots = 0;

  /// Longest per-lane chain of global memory operations observed in any
  /// warp — a proxy for the deepest dependent-load chain (the latency-bound
  /// term's input). Not scaled by sampling (it is a maximum).
  uint64_t max_lane_mem_ops = 0;
  /// Total launched threads (grid_dim * block_dim), for the wave count.
  uint64_t total_threads = 0;

  /// Warp-sampling stride the counters were collected with; counters above
  /// are already scaled back to full-population estimates.
  int meter_stride = 1;

  /// Hazards the sanitizer attributed to this launch (0 when the sanitizer
  /// is disabled). Never scaled: sanitizer hooks observe every warp
  /// regardless of the metering stride.
  uint64_t sanitizer_hazards = 0;

  /// Offset of this launch on the device's kernel clock (ms; the cumulative
  /// total_ms of all prior launches). Set by Device::Launch so the
  /// observability layer can reconstruct a virtual GPU timeline from the
  /// launch history (obs/gpu_trace.h). Not a hardware counter: excluded
  /// from Accumulate.
  double sim_start_ms = 0.0;

  // --- derived timing (filled by the timing model) ----------------------
  double compute_ms = 0.0;
  double memory_ms = 0.0;
  double lsu_ms = 0.0;
  double latency_ms = 0.0;
  double atomic_ms = 0.0;
  double launch_ms = 0.0;
  double total_ms = 0.0;

  // --- derived metrics ---------------------------------------------------
  double SimdEfficiency() const {
    return warp_ops_slots == 0
               ? 1.0
               : static_cast<double>(lane_ops_sum) /
                     static_cast<double>(warp_ops_slots);
  }
  uint64_t TotalFlops() const { return fp32_flops + fp64_flops; }
  uint64_t DramBytes() const { return dram_read_bytes + dram_write_bytes; }
  uint64_t L2HitBytes() const { return l2_read_hit_bytes + l2_write_hit_bytes; }
  uint64_t L1HitBytes() const { return l1_read_hit_bytes + l1_write_hit_bytes; }
  /// The paper's Fig. 12 metric: L2 reads relative to total (L2 + HBM) reads.
  double L2ReadHitFraction() const {
    uint64_t total = l2_read_hit_bytes + dram_read_bytes;
    return total == 0 ? 0.0
                      : static_cast<double>(l2_read_hit_bytes) /
                            static_cast<double>(total);
  }
  /// FLOPs per byte of DRAM traffic (roofline x-axis).
  double ArithmeticIntensity() const {
    uint64_t b = DramBytes();
    return b == 0 ? 0.0
                  : static_cast<double>(TotalFlops()) / static_cast<double>(b);
  }
  /// Achieved GFLOP/s (roofline y-axis).
  double AchievedGflops() const {
    return total_ms <= 0.0 ? 0.0
                           : static_cast<double>(TotalFlops()) / (total_ms * 1e6);
  }

  /// Merge counters of another launch of the same kernel.
  void Accumulate(const KernelStats& o);
};

/// Host<->device transfer accounting.
struct TransferStats {
  uint64_t h2d_bytes = 0;
  uint64_t d2h_bytes = 0;
  uint64_t h2d_count = 0;
  uint64_t d2h_count = 0;
  double h2d_ms = 0.0;
  double d2h_ms = 0.0;
  double TotalMs() const { return h2d_ms + d2h_ms; }
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_KERNEL_STATS_H_
