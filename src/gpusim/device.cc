#include "gpusim/device.h"

#include <algorithm>

#include "core/thread_pool.h"

namespace biosim::gpusim {

void WarpTracker::ConsumeGroup(MemoryModel* mem, KernelStats* stats,
                               MeterBuffer* defer, bool write,
                               const uint64_t* addrs, const uint32_t* bytes,
                               size_t n) {
  if (defer == nullptr) {
    const std::vector<uint64_t>& lines =
        mem->Coalesce(addrs, bytes, n, write, stats);
    mem->ProbeLines(lines.data(), lines.size(), write, stats);
  } else {
    // Deferred (block-parallel) path: chunks run concurrently against one
    // MemoryModel, so coalesce into the shard's own scratch — the member
    // scratch inside Coalesce() is shared state.
    mem->CoalesceInto(&defer->coalesce_scratch, addrs, bytes, n, write,
                      stats);
    for (uint64_t line : defer->coalesce_scratch) {
      defer->line_entries.push_back((line << 1) |
                                    static_cast<uint64_t>(write));
    }
  }
}

void WarpTracker::Flush(MemoryModel* mem, KernelStats* stats,
                        MeterBuffer* defer) {
  if (!metered_) {
    return;
  }

  // The stream is pre-grouped: walk the (kind, seq) rows in the legacy
  // consumption order — read seqs ascending, then write seqs, then atomic
  // seqs; lane order within a row — feeding each row to the coalescer in
  // place.
  for (size_t kind = 0; kind < WarpAccessStream::kKinds; ++kind) {
    const bool atomic = kind == static_cast<size_t>(StreamKind::kAtomic);
    const bool write = kind != static_cast<size_t>(StreamKind::kRead);
    const size_t rows = stream_.rows(kind);
    for (size_t seq = 0; seq < rows; ++seq) {
      const size_t n = stream_.count(kind, seq);
      if (n == 0) {
        continue;
      }
      uint64_t* addrs = stream_.addr_row(kind, seq);
      // Atomics charge their traffic like writes.
      ConsumeGroup(mem, stats, defer, write, addrs,
                   stream_.bytes_row(kind, seq), n);
      if (!atomic) {
        continue;
      }
      // Atomic serialization: k lanes updating the same address serialize
      // into k steps, k-1 of which are stalls. The row has been consumed,
      // so the in-place sort is safe.
      stats->atomic_ops += n;
      std::sort(addrs, addrs + n);
      size_t i = 0;
      while (i < n) {
        size_t j = i;
        while (j < n && addrs[j] == addrs[i]) {
          ++j;
        }
        stats->atomic_serialized += (j - i) - 1;
        i = j;
      }
    }
  }

  // Divergence: a warp issues in lockstep, so the warp occupies
  // 32 * max(lane ops) issue slots while only sum(lane ops) do useful work.
  uint64_t max_ops = 0;
  uint64_t sum_ops = 0;
  for (uint64_t ops : lane_ops_) {
    max_ops = std::max(max_ops, ops);
    sum_ops += ops;
  }
  if (max_ops > 0) {
    stats->lane_ops_sum += sum_ops;
    stats->warp_ops_slots += 32 * max_ops;
  }
  uint64_t max_mem = 0;
  for (uint64_t ops : lane_mem_ops_) {
    max_mem = std::max(max_mem, ops);
  }
  stats->max_lane_mem_ops = std::max(stats->max_lane_mem_ops, max_mem);
}

KernelStats Device::Launch(const LaunchConfig& cfg,
                           const std::function<void(BlockCtx&)>& kernel) {
  KernelStats raw;
  raw.name = cfg.name;
  raw.grid_dim = cfg.grid_dim;
  raw.block_dim = cfg.block_dim;
  raw.total_threads = static_cast<uint64_t>(cfg.grid_dim) * cfg.block_dim;
  raw.meter_stride = stride_;
  assert(cfg.block_dim >= 1 &&
         cfg.block_dim <= static_cast<size_t>(spec_.max_threads_per_block));

  if (sanitizer_) {
    sanitizer_->BeginLaunch(cfg.name, cfg.grid_dim, cfg.block_dim);
  }
  // The block-parallel engine requires independent blocks (the kernel's
  // contract via block_parallel_safe) and whole-launch metering state that
  // shards cleanly: the sanitizer's race detector and the warp-sampling
  // counter are both stateful across blocks, so those launches stay on the
  // block-sequential engine.
  const bool parallel = block_parallel_ && cfg.block_parallel_safe &&
                        sanitizer_ == nullptr && stride_ == 1 &&
                        cfg.grid_dim > 1;
  if (parallel) {
    LaunchBlocksParallel(cfg, kernel, &raw);
  } else {
    size_t warp_counter = 0;
    for (size_t b = 0; b < cfg.grid_dim; ++b) {
      BlockCtx ctx(b, cfg.block_dim, cfg.grid_dim, &spec_, &mem_, &raw,
                   &warp_counter, stride_, sanitizer_.get());
      if (sanitizer_) {
        sanitizer_->BeginBlock(b);
      }
      kernel(ctx);
      if (sanitizer_) {
        sanitizer_->EndBlock(b, ctx.phases_run_, ctx.shared_used_,
                             ctx.arena_.size());
      }
    }
  }

  // Scale sampled counters back to full-population estimates.
  if (stride_ > 1) {
    uint64_t s = static_cast<uint64_t>(stride_);
    raw.fp32_flops *= s;
    raw.fp64_flops *= s;
    raw.read_transactions *= s;
    raw.write_transactions *= s;
    raw.dram_read_bytes *= s;
    raw.dram_write_bytes *= s;
    raw.l2_read_hit_bytes *= s;
    raw.l2_write_hit_bytes *= s;
    raw.l1_read_hit_bytes *= s;
    raw.l1_write_hit_bytes *= s;
    raw.requested_read_bytes *= s;
    raw.requested_write_bytes *= s;
    raw.shared_bytes *= s;
    raw.atomic_ops *= s;
    raw.atomic_serialized *= s;
    raw.lane_ops_sum *= s;
    raw.warp_ops_slots *= s;
  }

  if (sanitizer_) {
    raw.sanitizer_hazards = sanitizer_->EndLaunch();
  }

  ApplyTimingModel(spec_, &raw);
  raw.sim_start_ms = kernel_ms_;
  kernel_ms_ += raw.total_ms;
  history_.push_back(raw);
  return raw;
}

void Device::LaunchBlocksParallel(
    const LaunchConfig& cfg, const std::function<void(BlockCtx&)>& kernel,
    KernelStats* raw) {
  // Contiguous block chunks, one shard each. The chunk count only sets the
  // parallel grain — the merge below is chunk-count-invariant, so any
  // worker count (including 1) produces the same counters.
  const size_t workers = std::max<size_t>(1, HardwareThreads());
  const size_t n_chunks = std::min(cfg.grid_dim, workers);
  const size_t chunk = (cfg.grid_dim + n_chunks - 1) / n_chunks;
  std::vector<MeterBuffer> shards(n_chunks);
  ParallelFor(ExecMode::kParallel, n_chunks, [&](size_t c) {
    MeterBuffer& shard = shards[c];
    const size_t begin = c * chunk;
    const size_t end = std::min(cfg.grid_dim, begin + chunk);
    size_t warp_counter = 0;  // stride is 1 on this path: every warp meters
    for (size_t b = begin; b < end; ++b) {
      BlockCtx ctx(b, cfg.block_dim, cfg.grid_dim, &spec_, &mem_,
                   &shard.stats, &warp_counter, /*stride=*/1,
                   /*san=*/nullptr, &shard);
      kernel(ctx);
    }
  });
  // Deterministic merge. The caches are the only cross-block metering
  // state, so the buffered line transactions replay through L1/L2 strictly
  // in block order (chunks are contiguous ranges: shard order IS block
  // order) — the exact probe sequence the block-sequential engine would
  // have issued. The shards' remaining counters are order-independent sums
  // (and one max), folded in chunk order.
  for (MeterBuffer& shard : shards) {
    for (uint64_t entry : shard.line_entries) {
      const uint64_t line = entry >> 1;
      mem_.ProbeLines(&line, 1, /*write=*/(entry & 1) != 0, raw);
    }
    raw->Accumulate(shard.stats);
  }
}

KernelStats Device::AddModeledKernel(const std::string& name,
                                     uint64_t read_bytes,
                                     uint64_t write_bytes,
                                     uint64_t fp32_flops) {
  KernelStats st;
  st.name = name;
  st.meter_stride = 1;
  st.fp32_flops = fp32_flops;
  uint64_t line = static_cast<uint64_t>(spec_.l2_line_bytes);
  st.read_transactions = (read_bytes + line - 1) / line;
  st.write_transactions = (write_bytes + line - 1) / line;
  // Streaming working sets exceed the caches: charge everything to DRAM.
  st.dram_read_bytes = read_bytes;
  st.dram_write_bytes = write_bytes;
  st.requested_read_bytes = read_bytes;
  st.requested_write_bytes = write_bytes;
  st.lane_ops_sum = 1;
  st.warp_ops_slots = 1;  // coalesced: no divergence
  ApplyTimingModel(spec_, &st);
  st.sim_start_ms = kernel_ms_;
  kernel_ms_ += st.total_ms;
  history_.push_back(st);
  return st;
}

void KernelStats::Accumulate(const KernelStats& o) {
  fp32_flops += o.fp32_flops;
  fp64_flops += o.fp64_flops;
  read_transactions += o.read_transactions;
  write_transactions += o.write_transactions;
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  l2_read_hit_bytes += o.l2_read_hit_bytes;
  l2_write_hit_bytes += o.l2_write_hit_bytes;
  l1_read_hit_bytes += o.l1_read_hit_bytes;
  l1_write_hit_bytes += o.l1_write_hit_bytes;
  requested_read_bytes += o.requested_read_bytes;
  requested_write_bytes += o.requested_write_bytes;
  shared_bytes += o.shared_bytes;
  atomic_ops += o.atomic_ops;
  atomic_serialized += o.atomic_serialized;
  lane_ops_sum += o.lane_ops_sum;
  warp_ops_slots += o.warp_ops_slots;
  max_lane_mem_ops = std::max(max_lane_mem_ops, o.max_lane_mem_ops);
  sanitizer_hazards += o.sanitizer_hazards;
  total_threads += o.total_threads;
  compute_ms += o.compute_ms;
  memory_ms += o.memory_ms;
  lsu_ms += o.lsu_ms;
  atomic_ms += o.atomic_ms;
  launch_ms += o.launch_ms;
  total_ms += o.total_ms;
}

}  // namespace biosim::gpusim
