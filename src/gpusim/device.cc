#include "gpusim/device.h"

#include <algorithm>

namespace biosim::gpusim {

void WarpTracker::Flush(MemoryModel* mem, KernelStats* stats) {
  if (!metered_) {
    return;
  }

  for (const auto& site : read_sites_) {
    if (!site.empty()) {
      mem->AccessWarp(site, /*write=*/false, stats);
    }
  }
  for (const auto& site : write_sites_) {
    if (!site.empty()) {
      mem->AccessWarp(site, /*write=*/true, stats);
    }
  }

  // Atomics: charge the traffic like writes and count warp-internal address
  // conflicts — k lanes updating the same address serialize into k steps,
  // k-1 of which are stalls.
  for (const auto& site : atomic_sites_) {
    if (site.empty()) {
      continue;
    }
    mem->AccessWarp(site, /*write=*/true, stats);
    stats->atomic_ops += site.size();
    // Count per-address multiplicity.
    std::vector<uint64_t> addrs;
    addrs.reserve(site.size());
    for (const auto& a : site) {
      addrs.push_back(a.addr);
    }
    std::sort(addrs.begin(), addrs.end());
    size_t i = 0;
    while (i < addrs.size()) {
      size_t j = i;
      while (j < addrs.size() && addrs[j] == addrs[i]) {
        ++j;
      }
      stats->atomic_serialized += (j - i) - 1;
      i = j;
    }
  }

  // Divergence: a warp issues in lockstep, so the warp occupies
  // 32 * max(lane ops) issue slots while only sum(lane ops) do useful work.
  uint64_t max_ops = 0;
  uint64_t sum_ops = 0;
  for (uint64_t ops : lane_ops_) {
    max_ops = std::max(max_ops, ops);
    sum_ops += ops;
  }
  if (max_ops > 0) {
    stats->lane_ops_sum += sum_ops;
    stats->warp_ops_slots += 32 * max_ops;
  }
  uint64_t max_mem = 0;
  for (uint64_t ops : lane_mem_ops_) {
    max_mem = std::max(max_mem, ops);
  }
  stats->max_lane_mem_ops = std::max(stats->max_lane_mem_ops, max_mem);
}

KernelStats Device::Launch(const LaunchConfig& cfg,
                           const std::function<void(BlockCtx&)>& kernel) {
  KernelStats raw;
  raw.name = cfg.name;
  raw.grid_dim = cfg.grid_dim;
  raw.block_dim = cfg.block_dim;
  raw.total_threads = static_cast<uint64_t>(cfg.grid_dim) * cfg.block_dim;
  raw.meter_stride = stride_;
  assert(cfg.block_dim >= 1 &&
         cfg.block_dim <= static_cast<size_t>(spec_.max_threads_per_block));

  if (sanitizer_) {
    sanitizer_->BeginLaunch(cfg.name, cfg.grid_dim, cfg.block_dim);
  }
  size_t warp_counter = 0;
  for (size_t b = 0; b < cfg.grid_dim; ++b) {
    BlockCtx ctx(b, cfg.block_dim, cfg.grid_dim, &spec_, &mem_, &raw,
                 &warp_counter, stride_, sanitizer_.get());
    if (sanitizer_) {
      sanitizer_->BeginBlock(b);
    }
    kernel(ctx);
    if (sanitizer_) {
      sanitizer_->EndBlock(b, ctx.phases_run_, ctx.shared_used_,
                           ctx.arena_.size());
    }
  }

  // Scale sampled counters back to full-population estimates.
  if (stride_ > 1) {
    uint64_t s = static_cast<uint64_t>(stride_);
    raw.fp32_flops *= s;
    raw.fp64_flops *= s;
    raw.read_transactions *= s;
    raw.write_transactions *= s;
    raw.dram_read_bytes *= s;
    raw.dram_write_bytes *= s;
    raw.l2_read_hit_bytes *= s;
    raw.l2_write_hit_bytes *= s;
    raw.l1_read_hit_bytes *= s;
    raw.l1_write_hit_bytes *= s;
    raw.requested_read_bytes *= s;
    raw.requested_write_bytes *= s;
    raw.shared_bytes *= s;
    raw.atomic_ops *= s;
    raw.atomic_serialized *= s;
    raw.lane_ops_sum *= s;
    raw.warp_ops_slots *= s;
  }

  if (sanitizer_) {
    raw.sanitizer_hazards = sanitizer_->EndLaunch();
  }

  ApplyTimingModel(spec_, &raw);
  kernel_ms_ += raw.total_ms;
  history_.push_back(raw);
  return raw;
}

KernelStats Device::AddModeledKernel(const std::string& name,
                                     uint64_t read_bytes,
                                     uint64_t write_bytes,
                                     uint64_t fp32_flops) {
  KernelStats st;
  st.name = name;
  st.meter_stride = 1;
  st.fp32_flops = fp32_flops;
  uint64_t line = static_cast<uint64_t>(spec_.l2_line_bytes);
  st.read_transactions = (read_bytes + line - 1) / line;
  st.write_transactions = (write_bytes + line - 1) / line;
  // Streaming working sets exceed the caches: charge everything to DRAM.
  st.dram_read_bytes = read_bytes;
  st.dram_write_bytes = write_bytes;
  st.requested_read_bytes = read_bytes;
  st.requested_write_bytes = write_bytes;
  st.lane_ops_sum = 1;
  st.warp_ops_slots = 1;  // coalesced: no divergence
  ApplyTimingModel(spec_, &st);
  kernel_ms_ += st.total_ms;
  history_.push_back(st);
  return st;
}

void KernelStats::Accumulate(const KernelStats& o) {
  fp32_flops += o.fp32_flops;
  fp64_flops += o.fp64_flops;
  read_transactions += o.read_transactions;
  write_transactions += o.write_transactions;
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  l2_read_hit_bytes += o.l2_read_hit_bytes;
  l2_write_hit_bytes += o.l2_write_hit_bytes;
  l1_read_hit_bytes += o.l1_read_hit_bytes;
  l1_write_hit_bytes += o.l1_write_hit_bytes;
  requested_read_bytes += o.requested_read_bytes;
  requested_write_bytes += o.requested_write_bytes;
  shared_bytes += o.shared_bytes;
  atomic_ops += o.atomic_ops;
  atomic_serialized += o.atomic_serialized;
  lane_ops_sum += o.lane_ops_sum;
  warp_ops_slots += o.warp_ops_slots;
  max_lane_mem_ops = std::max(max_lane_mem_ops, o.max_lane_mem_ops);
  sanitizer_hazards += o.sanitizer_hazards;
  total_threads += o.total_threads;
  compute_ms += o.compute_ms;
  memory_ms += o.memory_ms;
  lsu_ms += o.lsu_ms;
  atomic_ms += o.atomic_ms;
  launch_ms += o.launch_ms;
  total_ms += o.total_ms;
}

}  // namespace biosim::gpusim
