// CUDA-flavored front-end over the SIMT simulator.
//
// The paper implements its kernels twice — CUDA and OpenCL — to cover all
// GPU vendors. Both runtimes drive the same hardware, so here they are two
// thin, API-faithful adapters over one engine: this one speaks
// grid/block/thread and cudaMemcpy, opencl_like.h speaks
// NDRange/workgroup/work-item and command queues. The kernel bodies
// themselves (src/gpu/mech_kernel.h) are shared, exactly like a .cu/.cl pair
// generated from one source.
#ifndef BIOSIM_GPUSIM_CUDA_LIKE_H_
#define BIOSIM_GPUSIM_CUDA_LIKE_H_

#include <string>
#include <utility>

#include "gpusim/device.h"

namespace biosim::gpusim::cuda {

/// CUDA runtime analog: owns one device ("context") and exposes the
/// malloc / memcpy / launch vocabulary.
class Runtime {
 public:
  explicit Runtime(DeviceSpec spec) : dev_(std::move(spec)) {}

  Device& device() { return dev_; }
  const Device& device() const { return dev_; }

  template <typename T>
  DeviceBuffer<T> Malloc(size_t n) {
    return dev_.Alloc<T>(n);
  }

  template <typename T>
  void MemcpyHostToDevice(DeviceBuffer<T>& dst, std::span<const T> src) {
    dev_.CopyToDevice(dst, src);
  }

  template <typename T>
  void MemcpyDeviceToHost(std::span<T> dst, const DeviceBuffer<T>& src) {
    dev_.CopyFromDevice(dst, src);
  }

  /// kernel<<<grid_dim, block_dim>>>(...) analog. `block_parallel_safe`
  /// asserts the kernel's blocks are independent (see LaunchConfig) so the
  /// device may execute them concurrently in block-parallel mode.
  KernelStats LaunchKernel(const std::string& name, size_t grid_dim,
                           size_t block_dim,
                           const std::function<void(BlockCtx&)>& kernel,
                           bool block_parallel_safe = false) {
    return dev_.Launch({name, grid_dim, block_dim, block_parallel_safe},
                       kernel);
  }

  /// Blocks-for-n helper: ceil(n / block_dim).
  static size_t BlocksFor(size_t n, size_t block_dim) {
    return (n + block_dim - 1) / block_dim;
  }

 private:
  Device dev_;
};

}  // namespace biosim::gpusim::cuda

#endif  // BIOSIM_GPUSIM_CUDA_LIKE_H_
