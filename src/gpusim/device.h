// SIMT execution simulator: functional GPU kernels with hardware counters.
//
// This is the repository's CUDA/OpenCL substitute (see DESIGN.md §1). Device
// code is written as C++ lambdas against the Lane API below and *actually
// executes* — outputs are real and tested against the CPU reference. While
// executing, every global access flows through a per-warp coalescer and a
// simulated L2 (memory_model.h), FLOPs and divergence are counted per warp,
// and the analytic model (timing.h) converts the counters into kernel time
// for the configured DeviceSpec.
//
// Execution model: blocks run sequentially (deterministically); within a
// block, lanes of a warp run the body one after another but are *accounted*
// as lockstep SIMT — the i-th global access of each lane in a warp forms one
// memory instruction for coalescing, and per-lane op imbalance is charged as
// divergence. Barrier semantics use the standard loop-fission translation:
// one for_each_lane() region is the code between two __syncthreads().
//
//   dev.Launch({"my_kernel", blocks, 256}, [&](BlockCtx& blk) {
//     auto cache = blk.shared<float>(256);                 // __shared__
//     blk.for_each_lane([&](Lane& t) {                     // phase 1
//       cache.st(t, t.lane(), t.ld(input, t.gtid()));
//     });                                                  // __syncthreads()
//     blk.for_each_lane([&](Lane& t) {                     // phase 2
//       ...
//     });
//   });
#ifndef BIOSIM_GPUSIM_DEVICE_H_
#define BIOSIM_GPUSIM_DEVICE_H_

#include <cassert>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpusim/access_stream.h"
#include "gpusim/device_spec.h"
#include "gpusim/kernel_stats.h"
#include "gpusim/memory_model.h"
#include "gpusim/sanitizer.h"
#include "gpusim/timing.h"

namespace biosim::gpusim {

class Device;
class BlockCtx;
class Lane;

/// Typed device allocation. Storage lives host-side (this is a simulator)
/// but is addressed through a device-global address space so the cache
/// simulation sees realistic addresses. Obtain via Device::Alloc.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  uint64_t addr(size_t i) const { return base_ + i * sizeof(T); }

  /// Direct host access — the simulator equivalent of unified memory; tests
  /// use it, kernels must go through Lane::ld/st so traffic is metered.
  /// Mutable access conservatively marks the buffer initialized for the
  /// sanitizer's never-written-read check (it cannot see host writes).
  T* data() {
    if (shadow_) {
      shadow_->MarkAll();
    }
    return storage_.data();
  }
  const T* data() const { return storage_.data(); }
  T& operator[](size_t i) {
    if (shadow_) {
      shadow_->Mark(i);
    }
    return storage_[i];
  }
  const T& operator[](size_t i) const { return storage_[i]; }

 private:
  friend class Device;
  friend class Lane;
  std::vector<T> storage_;
  uint64_t base_ = 0;
  /// Element initialization shadow; only allocated while the device has a
  /// memcheck-enabled sanitizer attached (see Device::Alloc).
  std::shared_ptr<BufferShadow> shadow_;
};

/// Tracks one warp's accounting while its lanes execute. Global accesses
/// append to one flat pre-grouped stream (access_stream.h); Flush walks the
/// (kind, seq) rows in the exact legacy order (reads by seq, then writes,
/// then atomics; lane order within a group) and feeds each row to the
/// coalescer in place. All buffers retain their capacity across warps, so
/// the steady-state hot path never allocates.
class WarpTracker {
 public:
  void Reset(bool metered, size_t active_lanes) {
    metered_ = metered;
    active_lanes_ = active_lanes;
    stream_.Clear();
    std::fill(std::begin(lane_ops_), std::end(lane_ops_), uint64_t{0});
    std::fill(std::begin(lane_mem_ops_), std::end(lane_mem_ops_),
              uint64_t{0});
  }

  bool metered() const { return metered_; }

  void RecordRead(size_t seq, uint64_t addr, uint32_t bytes) {
    stream_.Append(StreamKind::kRead, static_cast<uint32_t>(seq), addr,
                   bytes);
  }
  void RecordWrite(size_t seq, uint64_t addr, uint32_t bytes) {
    stream_.Append(StreamKind::kWrite, static_cast<uint32_t>(seq), addr,
                   bytes);
  }
  void RecordAtomic(size_t seq, uint64_t addr, uint32_t bytes) {
    stream_.Append(StreamKind::kAtomic, static_cast<uint32_t>(seq), addr,
                   bytes);
  }
  void AddLaneOps(size_t warp_lane, uint64_t n) { lane_ops_[warp_lane] += n; }
  void AddLaneMemOp(size_t warp_lane) { lane_mem_ops_[warp_lane] += 1; }

  /// Consume this warp's access stream: coalesce every instruction group
  /// and either probe the caches immediately (defer == nullptr, the serial
  /// engine) or buffer the line transactions into `defer` for an in-block-
  /// order replay (the block-parallel engine). Divergence and atomic
  /// accounting land in `stats` either way.
  void Flush(MemoryModel* mem, KernelStats* stats,
             MeterBuffer* defer = nullptr);

 private:
  /// Feed one coalesced instruction group to the caches or the buffer.
  void ConsumeGroup(MemoryModel* mem, KernelStats* stats, MeterBuffer* defer,
                    bool write, const uint64_t* addrs, const uint32_t* bytes,
                    size_t n);

  bool metered_ = false;
  size_t active_lanes_ = 32;
  WarpAccessStream stream_;
  uint64_t lane_ops_[32] = {};
  uint64_t lane_mem_ops_[32] = {};
};

/// Shared-memory array handle (per block). Addresses live in a per-block
/// "shared" address space used only for atomic-conflict detection.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(T* data, size_t n, uint64_t base,
              BufferShadow* shadow = nullptr)
      : data_(data), n_(n), base_(base), shadow_(shadow) {}
  size_t size() const { return n_; }
  uint64_t addr(size_t i) const { return base_ + i * sizeof(T); }
  T* raw() { return data_; }

 private:
  friend class Lane;
  T* data_ = nullptr;
  size_t n_ = 0;
  uint64_t base_ = 0;
  BufferShadow* shadow_ = nullptr;  // owned by the BlockCtx; block lifetime
};

/// The view device code gets of one thread (CUDA thread / OpenCL work-item).
class Lane {
 public:
  size_t lane() const { return lane_; }            // threadIdx.x
  size_t block() const { return block_; }          // blockIdx.x
  size_t block_dim() const { return block_dim_; }  // blockDim.x
  size_t grid_dim() const { return grid_dim_; }    // gridDim.x
  size_t gtid() const { return block_ * block_dim_ + lane_; }

  /// Account `n` floating-point operations (single precision).
  void flops32(uint64_t n) { Ops(n, &fp32_); }
  /// Account `n` floating-point operations (double precision).
  void flops64(uint64_t n) { Ops(n, &fp64_); }

  /// Metered global load.
  template <typename T>
  T ld(const DeviceBuffer<T>& b, size_t i) {
    if (san_ != nullptr) [[unlikely]] {
      if (i >= b.size()) {
        san_->OnOutOfBounds(MemSpace::kGlobal, AccessKind::kRead, block_,
                            lane_, phase_, b.base_, i, b.size(), sizeof(T));
        ++read_seq_;  // keep coalescing sequence aligned across lanes
        return T{};
      }
      if (b.shadow_ && !b.shadow_->IsWritten(i)) {
        san_->OnUninitializedRead(MemSpace::kGlobal, AccessKind::kRead,
                                  block_, lane_, phase_, b.addr(i),
                                  sizeof(T));
      }
      san_->OnAccess(MemSpace::kGlobal, AccessKind::kRead, block_, lane_,
                     phase_, b.addr(i), sizeof(T));
    }
    assert(i < b.size());
    if (wt_->metered()) {
      wt_->RecordRead(read_seq_, b.addr(i), sizeof(T));
      wt_->AddLaneOps(lane_ & 31, 1);
      wt_->AddLaneMemOp(lane_ & 31);
    }
    ++read_seq_;
    return b.storage_.data()[i];
  }

  /// Metered global store.
  template <typename T>
  void st(DeviceBuffer<T>& b, size_t i, T v) {
    if (san_ != nullptr) [[unlikely]] {
      if (i >= b.size()) {
        san_->OnOutOfBounds(MemSpace::kGlobal, AccessKind::kWrite, block_,
                            lane_, phase_, b.base_, i, b.size(), sizeof(T));
        ++write_seq_;
        return;  // suppress the wild store so execution can continue
      }
      if (b.shadow_) {
        b.shadow_->Mark(i);
      }
      san_->OnAccess(MemSpace::kGlobal, AccessKind::kWrite, block_, lane_,
                     phase_, b.addr(i), sizeof(T));
    }
    assert(i < b.size());
    if (wt_->metered()) {
      wt_->RecordWrite(write_seq_, b.addr(i), sizeof(T));
      wt_->AddLaneOps(lane_ & 31, 1);
      wt_->AddLaneMemOp(lane_ & 31);
    }
    ++write_seq_;
    b.storage_.data()[i] = v;
  }

  /// Global atomic add; returns the old value.
  template <typename T>
  T atomic_add(DeviceBuffer<T>& b, size_t i, T v) {
    if (san_ != nullptr) [[unlikely]] {
      if (!SanCheckAtomic(b, i, sizeof(T))) {
        return T{};
      }
    }
    T old = b.storage_.data()[i];
    b.storage_.data()[i] = old + v;
    RecordAtomicSite(b.addr(i), sizeof(T), /*counts_as_mem_op=*/true);
    return old;
  }

  /// Global atomic exchange; returns the old value. (The uniform-grid build
  /// kernel's linked-list push is exactly this, Section IV-A.)
  template <typename T>
  T atomic_exch(DeviceBuffer<T>& b, size_t i, T v) {
    if (san_ != nullptr) [[unlikely]] {
      if (!SanCheckAtomic(b, i, sizeof(T))) {
        return T{};
      }
    }
    T old = b.storage_.data()[i];
    b.storage_.data()[i] = v;
    RecordAtomicSite(b.addr(i), sizeof(T), /*counts_as_mem_op=*/true);
    return old;
  }

  /// Shared-memory load/store: on-chip, so only bytes are charged (no L2 /
  /// DRAM involvement).
  template <typename T>
  T shared_ld(const SharedArray<T>& s, size_t i) {
    if (san_ != nullptr) [[unlikely]] {
      if (i >= s.size()) {
        san_->OnOutOfBounds(MemSpace::kShared, AccessKind::kRead, block_,
                            lane_, phase_, s.base_, i, s.size(), sizeof(T));
        return T{};
      }
      if (s.shadow_ && !s.shadow_->IsWritten(i)) {
        san_->OnUninitializedRead(MemSpace::kShared, AccessKind::kRead,
                                  block_, lane_, phase_, s.addr(i),
                                  sizeof(T));
      }
      san_->OnAccess(MemSpace::kShared, AccessKind::kRead, block_, lane_,
                     phase_, s.addr(i), sizeof(T));
    }
    assert(i < s.size());
    SharedTraffic(sizeof(T));
    return s.data_[i];
  }
  template <typename T>
  void shared_st(SharedArray<T>& s, size_t i, T v) {
    if (san_ != nullptr) [[unlikely]] {
      if (i >= s.size()) {
        san_->OnOutOfBounds(MemSpace::kShared, AccessKind::kWrite, block_,
                            lane_, phase_, s.base_, i, s.size(), sizeof(T));
        return;
      }
      if (s.shadow_) {
        s.shadow_->Mark(i);
      }
      san_->OnAccess(MemSpace::kShared, AccessKind::kWrite, block_, lane_,
                     phase_, s.addr(i), sizeof(T));
    }
    assert(i < s.size());
    SharedTraffic(sizeof(T));
    s.data_[i] = v;
  }

  /// Shared-memory atomic add (the Improvement III append counter). Returns
  /// the old value; warp-internal address conflicts serialize.
  template <typename T>
  T atomic_add_shared(SharedArray<T>& s, size_t i, T v) {
    if (san_ != nullptr) [[unlikely]] {
      if (i >= s.size()) {
        san_->OnOutOfBounds(MemSpace::kShared, AccessKind::kAtomic, block_,
                            lane_, phase_, s.base_, i, s.size(), sizeof(T));
        return T{};
      }
      if (s.shadow_ && !s.shadow_->IsWritten(i)) {
        // The RMW reads the old value; shared memory is garbage on real
        // hardware even though the simulator zero-fills it.
        san_->OnUninitializedRead(MemSpace::kShared, AccessKind::kAtomic,
                                  block_, lane_, phase_, s.addr(i),
                                  sizeof(T));
      }
      if (s.shadow_) {
        s.shadow_->Mark(i);
      }
      san_->OnAccess(MemSpace::kShared, AccessKind::kAtomic, block_, lane_,
                     phase_, s.addr(i), sizeof(T));
    }
    T old = s.data_[i];
    s.data_[i] = old + v;
    // On-chip atomic: serializes but is not a global-latency memory op.
    RecordAtomicSite(s.addr(i), sizeof(T), /*counts_as_mem_op=*/false);
    return old;
  }

 private:
  friend class BlockCtx;
  Lane(size_t lane, size_t block, size_t block_dim, size_t grid_dim,
       WarpTracker* wt, KernelStats* raw, Sanitizer* san, size_t phase)
      : lane_(lane),
        block_(block),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        wt_(wt),
        raw_(raw),
        san_(san),
        phase_(phase) {}

  /// Sanitizer path shared by the global atomics: OOB (suppressing the
  /// access), uninit-RMW-read, and race bookkeeping. Returns false when the
  /// access was suppressed.
  template <typename T>
  bool SanCheckAtomic(DeviceBuffer<T>& b, size_t i, uint32_t bytes) {
    if (i >= b.size()) {
      san_->OnOutOfBounds(MemSpace::kGlobal, AccessKind::kAtomic, block_,
                          lane_, phase_, b.base_, i, b.size(), bytes);
      ++atomic_seq_;
      return false;
    }
    if (b.shadow_ && !b.shadow_->IsWritten(i)) {
      san_->OnUninitializedRead(MemSpace::kGlobal, AccessKind::kAtomic,
                                block_, lane_, phase_, b.addr(i), bytes);
    }
    if (b.shadow_) {
      b.shadow_->Mark(i);
    }
    san_->OnAccess(MemSpace::kGlobal, AccessKind::kAtomic, block_, lane_,
                   phase_, b.addr(i), bytes);
    return true;
  }

  void Ops(uint64_t n, uint64_t* counter) {
    if (wt_->metered()) {
      *counter += n;
      wt_->AddLaneOps(lane_ & 31, n);
    }
  }

  void RecordAtomicSite(uint64_t addr, uint32_t bytes,
                        bool counts_as_mem_op) {
    if (wt_->metered()) {
      wt_->RecordAtomic(atomic_seq_, addr, bytes);
      wt_->AddLaneOps(lane_ & 31, 1);
      // Global atomics round-trip to L2/DRAM, so they extend the per-lane
      // dependent-memory-op chain; shared atomics stay on-chip.
      if (counts_as_mem_op) {
        wt_->AddLaneMemOp(lane_ & 31);
      }
    }
    ++atomic_seq_;
  }

  void SharedTraffic(uint32_t bytes) {
    if (wt_->metered()) {
      raw_->shared_bytes += bytes;
      wt_->AddLaneOps(lane_ & 31, 1);
    }
  }

  size_t lane_, block_, block_dim_, grid_dim_;
  WarpTracker* wt_;
  KernelStats* raw_;
  Sanitizer* san_ = nullptr;  // non-owning; null unless EnableSanitizer
  size_t phase_ = 0;          // barrier interval this lane is executing in
  size_t read_seq_ = 0;
  size_t write_seq_ = 0;
  size_t atomic_seq_ = 0;
  uint64_t fp32_ = 0;
  uint64_t fp64_ = 0;

  void CommitFlops() {
    raw_->fp32_flops += fp32_;
    raw_->fp64_flops += fp64_;
  }
};

/// The view device code gets of one thread block (CUDA block / OpenCL
/// workgroup).
class BlockCtx {
 public:
  size_t block() const { return block_; }
  size_t block_dim() const { return block_dim_; }
  size_t grid_dim() const { return grid_dim_; }

  /// Allocate a __shared__ array (zero-initialized by the simulator — note
  /// that real shared memory is *not*; the sanitizer's never-written check
  /// models the hardware behavior). Exceeding the per-block shared limit
  /// asserts, or — with a sanitizer attached — reports a structured
  /// shared-overflow hazard and continues (host memory backs the arena).
  template <typename T>
  SharedArray<T> shared(size_t n) {
    size_t bytes = n * sizeof(T);
    bool fits = shared_used_ + bytes <= spec_->shared_mem_per_block;
    if (!fits && san_ != nullptr) {
      san_->OnSharedOverflow(block_, bytes, shared_used_,
                             spec_->shared_mem_per_block);
    }
    assert((fits || san_ != nullptr) && "exceeds shared memory per block");
    arena_.push_back(std::make_unique<char[]>(bytes));
    std::memset(arena_.back().get(), 0, bytes);
    auto* p = reinterpret_cast<T*>(arena_.back().get());
    BufferShadow* shadow = nullptr;
    if (san_ != nullptr && san_->memcheck_enabled()) {
      shared_shadows_.push_back(std::make_unique<BufferShadow>(n));
      shadow = shared_shadows_.back().get();
    }
    SharedArray<T> s(p, n, kSharedBase + shared_used_, shadow);
    shared_used_ += bytes;
    return s;
  }

  /// Run `body(Lane&)` for every thread of the block; the end of the call is
  /// a block-wide barrier (__syncthreads()).
  template <typename F>
  void for_each_lane(F&& body) {
    if (san_ != nullptr) {
      san_->BeginPhase();
    }
    size_t phase = phases_run_++;
    for (size_t w0 = 0; w0 < block_dim_; w0 += 32) {
      size_t lanes = std::min<size_t>(32, block_dim_ - w0);
      bool metered = (warp_counter_++ % static_cast<size_t>(stride_)) == 0;
      wt_.Reset(metered, lanes);
      for (size_t l = 0; l < lanes; ++l) {
        Lane t(w0 + l, block_, block_dim_, grid_dim_, &wt_, raw_, san_,
               phase);
        body(t);
        t.CommitFlops();
      }
      wt_.Flush(mem_, raw_, defer_);
    }
  }

 private:
  friend class Device;
  static constexpr uint64_t kSharedBase = 1ull << 62;  // disjoint from global

  BlockCtx(size_t block, size_t block_dim, size_t grid_dim,
           const DeviceSpec* spec, MemoryModel* mem, KernelStats* raw,
           size_t* warp_counter, int stride, Sanitizer* san,
           MeterBuffer* defer = nullptr)
      : block_(block),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        spec_(spec),
        mem_(mem),
        raw_(raw),
        warp_counter_(*warp_counter),
        stride_(stride),
        warp_counter_ref_(warp_counter),
        san_(san),
        defer_(defer) {}

  ~BlockCtx() { *warp_counter_ref_ = warp_counter_; }

  size_t block_, block_dim_, grid_dim_;
  const DeviceSpec* spec_;
  MemoryModel* mem_;
  KernelStats* raw_;
  size_t warp_counter_;
  int stride_;
  size_t* warp_counter_ref_;
  Sanitizer* san_;
  MeterBuffer* defer_;  // non-null only on the block-parallel path
  WarpTracker wt_;
  size_t shared_used_ = 0;
  size_t phases_run_ = 0;  // barrier intervals executed (synccheck input)
  std::vector<std::unique_ptr<char[]>> arena_;
  std::vector<std::unique_ptr<BufferShadow>> shared_shadows_;
};

struct LaunchConfig {
  std::string name;
  size_t grid_dim = 1;   // blocks
  size_t block_dim = 1;  // threads per block
  /// Kernel contract: blocks neither communicate nor overlap writes through
  /// global memory, so the device may execute them concurrently when block-
  /// parallel mode is on (Device::SetBlockParallel). Kernels with cross-
  /// block coupling — ug_build's atomicExch linked-list push, the radix-
  /// sort passes — must leave this false and always run block-sequentially.
  bool block_parallel_safe = false;
};

/// A simulated GPU. Owns the address space, the memory model, the simulated
/// clock, and the per-kernel profile.
class Device {
 public:
  explicit Device(DeviceSpec spec)
      : spec_(std::move(spec)), mem_(SampledSpec(spec_, 1)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Warp-sampling stride: 1 = meter every warp (exact), k = meter every
  /// k-th warp and scale (the L2 capacity seen by the sampled stream is
  /// scaled down by k so hit rates stay representative). Call before any
  /// Launch.
  void SetMeterStride(int stride) {
    assert(stride >= 1);
    stride_ = stride;
    mem_ = MemoryModel(SampledSpec(spec_, stride));
  }
  int meter_stride() const { return stride_; }

  /// Block-parallel execution: run the blocks of launches flagged
  /// block_parallel_safe concurrently on the host thread pool
  /// (core/thread_pool.h). Metering stays *byte-identical* to the
  /// block-sequential engine at any worker count: blocks are partitioned
  /// into contiguous chunks, each chunk accumulates the order-independent
  /// integer counters into a private shard and buffers its coalesced line
  /// transactions, and the launch then replays the transactions through the
  /// shared L1/L2 strictly in block order before folding the shards in
  /// chunk order. Launches that attach a sanitizer or sample warps
  /// (meter_stride > 1) fall back to the sequential engine — both are
  /// stateful across blocks in ways a shard cannot capture.
  void SetBlockParallel(bool on) { block_parallel_ = on; }
  bool block_parallel() const { return block_parallel_; }

  /// Attach the compute-sanitizer-style analysis layer (sanitizer.h). Every
  /// subsequent Launch is checked; hazards accumulate in
  /// sanitizer()->report(). Call before Alloc for full memcheck coverage —
  /// buffers allocated earlier are bounds-checked but not tracked for
  /// never-written reads. Returns the sanitizer for configuration/report
  /// access.
  Sanitizer* EnableSanitizer(SanitizerConfig config = {}) {
    sanitizer_ = std::make_unique<Sanitizer>(config);
    return sanitizer_.get();
  }
  Sanitizer* sanitizer() { return sanitizer_.get(); }
  const Sanitizer* sanitizer() const { return sanitizer_.get(); }

  /// Allocate a device buffer of `n` elements.
  template <typename T>
  DeviceBuffer<T> Alloc(size_t n) {
    DeviceBuffer<T> b;
    b.storage_.resize(n);
    b.base_ = next_addr_;
    if (sanitizer_ && sanitizer_->memcheck_enabled()) {
      b.shadow_ = std::make_shared<BufferShadow>(n);
    }
    size_t bytes = (n * sizeof(T) + 255) / 256 * 256;
    next_addr_ += bytes;
    allocated_bytes_ += bytes;
    assert(allocated_bytes_ <= spec_.dram_bytes && "device out of memory");
    return b;
  }

  /// Host -> device copy (metered: PCIe time on the simulated clock).
  template <typename T>
  void CopyToDevice(DeviceBuffer<T>& dst, std::span<const T> src) {
    assert(src.size() <= dst.size());
    std::memcpy(dst.storage_.data(), src.data(), src.size() * sizeof(T));
    if (dst.shadow_) {
      dst.shadow_->MarkPrefix(src.size());
    }
    uint64_t bytes = src.size() * sizeof(T);
    transfers_.h2d_bytes += bytes;
    transfers_.h2d_count += 1;
    transfers_.h2d_ms += TransferMs(spec_, bytes);
  }

  /// Device -> host copy (metered).
  template <typename T>
  void CopyFromDevice(std::span<T> dst, const DeviceBuffer<T>& src) {
    assert(dst.size() <= src.size());
    std::memcpy(dst.data(), src.storage_.data(), dst.size() * sizeof(T));
    uint64_t bytes = dst.size() * sizeof(T);
    transfers_.d2h_bytes += bytes;
    transfers_.d2h_count += 1;
    transfers_.d2h_ms += TransferMs(spec_, bytes);
  }

  /// Execute a kernel and return its stats (also appended to the profile
  /// and the simulated clock).
  KernelStats Launch(const LaunchConfig& cfg,
                     const std::function<void(BlockCtx&)>& kernel);

  /// Account a library kernel (e.g. a vendor sort) by its streaming traffic
  /// without executing it through the SIMT engine: `read_bytes` and
  /// `write_bytes` are assumed perfectly coalesced. Advances the simulated
  /// clock and appears in the profile like any launch.
  KernelStats AddModeledKernel(const std::string& name, uint64_t read_bytes,
                               uint64_t write_bytes, uint64_t fp32_flops = 0);

  /// Drop cache state between independent experiments.
  void ResetCache() { mem_.ResetCache(); }

  /// Simulated elapsed GPU time: kernels + transfers.
  double ElapsedMs() const { return kernel_ms_ + transfers_.TotalMs(); }
  double KernelMs() const { return kernel_ms_; }
  const TransferStats& transfers() const { return transfers_; }
  void ResetClock() {
    kernel_ms_ = 0.0;
    transfers_ = {};
    history_.clear();
  }

  /// Per-launch history (the nvprof substitute reads this).
  const std::vector<KernelStats>& history() const { return history_; }

 private:
  /// Block-parallel engine behind Launch (device.cc).
  void LaunchBlocksParallel(const LaunchConfig& cfg,
                            const std::function<void(BlockCtx&)>& kernel,
                            KernelStats* raw);

  static DeviceSpec SampledSpec(const DeviceSpec& spec, int stride) {
    DeviceSpec s = spec;
    s.l2_capacity_bytes =
        std::max<size_t>(spec.l2_capacity_bytes / static_cast<size_t>(stride),
                         static_cast<size_t>(spec.l2_line_bytes) * 64);
    s.l1_capacity_bytes =
        std::max<size_t>(spec.l1_capacity_bytes / static_cast<size_t>(stride),
                         static_cast<size_t>(spec.l2_line_bytes) * 16);
    return s;
  }

  DeviceSpec spec_;
  MemoryModel mem_;
  std::unique_ptr<Sanitizer> sanitizer_;
  int stride_ = 1;
  bool block_parallel_ = false;
  uint64_t next_addr_ = 1ull << 20;
  uint64_t allocated_bytes_ = 0;
  TransferStats transfers_;
  double kernel_ms_ = 0.0;
  std::vector<KernelStats> history_;
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_DEVICE_H_
