// Analytic timing model: hardware counters -> milliseconds.
//
// A GPU kernel with enough parallelism to hide latency is limited by
// whichever pipe saturates first, so
//
//   t_total = t_launch + max(t_compute, t_memory, t_lsu) + t_atomic
//
//   t_compute = fp32/peak32 + fp64/peak64, divided by the SIMD efficiency
//               (divergent or idle lanes burn issue slots without output)
//   t_memory  = dram/dram_bw + l2_hits/l2_bw + l1_hits/l1_bw + sh/sh_bw
//   t_lsu     = transactions * per-transaction LSU occupancy / num SMs
//   t_latency = waves * (deepest per-thread load chain / MLP) * latency
//               (linked-list walks cannot be hidden once every resident
//                warp is itself stuck on a dependent load)
//   t_atomic  = serialized conflicts * atomic cost / atomic parallelism
//
// All parameters come from DeviceSpec (Table I plus public chip specs); no
// experiment-specific constants. Absolute numbers are approximations; the
// ratios between kernel variants — which is what the paper's figures are
// about — are driven by the measured counters.
#ifndef BIOSIM_GPUSIM_TIMING_H_
#define BIOSIM_GPUSIM_TIMING_H_

#include <algorithm>
#include <cmath>

#include "gpusim/device_spec.h"
#include "gpusim/kernel_stats.h"

namespace biosim::gpusim {

/// Fill the timing fields of `stats` from its counters.
inline void ApplyTimingModel(const DeviceSpec& spec, KernelStats* stats) {
  double eff = std::max(stats->SimdEfficiency(), 0.01);

  double compute_s =
      (static_cast<double>(stats->fp32_flops) / (spec.fp32_gflops * 1e9) +
       static_cast<double>(stats->fp64_flops) / (spec.fp64_gflops * 1e9)) /
      eff;

  double memory_s =
      static_cast<double>(stats->DramBytes()) / (spec.dram_bandwidth_gbps * 1e9) +
      static_cast<double>(stats->L2HitBytes()) / (spec.l2_bandwidth_gbps * 1e9) +
      static_cast<double>(stats->L1HitBytes()) / (spec.l1_bandwidth_gbps * 1e9) +
      static_cast<double>(stats->shared_bytes) / (spec.shared_bandwidth_gbps * 1e9);

  // Not scaled by SIMD efficiency: a warp's memory instruction issues once
  // regardless of how many lanes are active, and divergence-induced replays
  // are already visible as extra transactions.
  double lsu_s = static_cast<double>(stats->read_transactions +
                                     stats->write_transactions) *
                 (spec.lsu_transaction_ns * 1e-9) /
                 static_cast<double>(spec.num_sms);

  double resident = static_cast<double>(spec.num_sms) *
                    static_cast<double>(spec.max_threads_per_sm);
  double waves =
      stats->total_threads == 0
          ? 1.0
          : std::ceil(static_cast<double>(stats->total_threads) / resident);
  double latency_s = waves *
                     (static_cast<double>(stats->max_lane_mem_ops) /
                      spec.mem_level_parallelism) *
                     (spec.mem_latency_ns * 1e-9);

  double atomic_s = static_cast<double>(stats->atomic_serialized) *
                    (spec.atomic_serialize_ns * 1e-9) /
                    static_cast<double>(spec.atomic_parallelism());

  stats->compute_ms = compute_s * 1e3;
  stats->memory_ms = memory_s * 1e3;
  stats->lsu_ms = lsu_s * 1e3;
  stats->latency_ms = latency_s * 1e3;
  stats->atomic_ms = atomic_s * 1e3;
  stats->launch_ms = spec.launch_overhead_us * 1e-3;
  stats->total_ms = stats->launch_ms +
                    std::max({stats->compute_ms, stats->memory_ms,
                              stats->lsu_ms, stats->latency_ms}) +
                    stats->atomic_ms;
}

/// Host<->device transfer time for `bytes` over PCIe.
inline double TransferMs(const DeviceSpec& spec, uint64_t bytes) {
  return spec.pcie_latency_us * 1e-3 +
         static_cast<double>(bytes) / (spec.pcie_bandwidth_gbps * 1e9) * 1e3;
}

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_TIMING_H_
