// Set-associative L2 cache simulation at cache-line granularity.
//
// The GPU L2 sits between all SMs and DRAM; whether a 128-byte transaction
// hits in it is the difference between the paper's sorted (Improvement II)
// and unsorted kernels, so this is simulated faithfully (real tags, LRU)
// rather than approximated with a hit-rate knob.
#ifndef BIOSIM_GPUSIM_L2_CACHE_H_
#define BIOSIM_GPUSIM_L2_CACHE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace biosim::gpusim {

class L2Cache {
 public:
  L2Cache(size_t capacity_bytes, int line_bytes, int associativity)
      : line_bytes_(static_cast<uint64_t>(line_bytes)),
        ways_(static_cast<size_t>(associativity)) {
    assert(line_bytes > 0 && (line_bytes_ & (line_bytes_ - 1)) == 0 &&
           "cache line size must be a power of two");
    while ((uint64_t{1} << line_shift_) < line_bytes_) {
      ++line_shift_;
    }
    num_sets_ = capacity_bytes / (line_bytes_ * ways_);
    if (num_sets_ == 0) {
      num_sets_ = 1;
    }
    sets_.assign(num_sets_ * ways_, kInvalid);
    stamps_.assign(num_sets_ * ways_, 0);
  }

  /// Probe (and fill on miss) the line containing `addr`; true on hit.
  bool Access(uint64_t addr) {
    uint64_t line = addr >> line_shift_;
    size_t set = static_cast<size_t>(line % num_sets_);
    uint64_t* tags = &sets_[set * ways_];
    uint64_t* st = &stamps_[set * ways_];
    ++clock_;

    size_t victim = 0;
    uint64_t oldest = ~uint64_t{0};
    for (size_t w = 0; w < ways_; ++w) {
      if (tags[w] == line) {
        st[w] = clock_;
        return true;
      }
      if (st[w] < oldest) {
        oldest = st[w];
        victim = w;
      }
    }
    tags[victim] = line;
    st[victim] = clock_;
    return false;
  }

  void Reset() {
    std::fill(sets_.begin(), sets_.end(), kInvalid);
    std::fill(stamps_.begin(), stamps_.end(), uint64_t{0});
    clock_ = 0;
  }

  size_t num_sets() const { return num_sets_; }
  size_t ways() const { return ways_; }

 private:
  static constexpr uint64_t kInvalid = ~uint64_t{0};
  uint64_t line_bytes_;
  int line_shift_ = 0;
  size_t ways_;
  size_t num_sets_;
  std::vector<uint64_t> sets_;    // line tags, [set][way]
  std::vector<uint64_t> stamps_;  // LRU stamps
  uint64_t clock_ = 0;
};

}  // namespace biosim::gpusim

#endif  // BIOSIM_GPUSIM_L2_CACHE_H_
