#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstring>

#include <fcntl.h>

#if defined(__unix__) || defined(__APPLE__)
#define BIOSIM_FLIGHT_SIGNALS 1
#include <signal.h>
#include <unistd.h>
#else
#include <io.h>
#endif

namespace biosim::obs {

namespace {

// The recorder owning the process-wide handlers. Written only from the
// main thread (InstallSignalHandlers); read from the handler. sig_atomic_t
// semantics are not enough for a pointer, so use the usual lock-free atomic.
std::atomic<FlightRecorder*> g_current{nullptr};

#ifdef BIOSIM_FLIGHT_SIGNALS

constexpr int kSignals[] = {SIGSEGV, SIGABRT,
#ifdef SIGBUS
                            SIGBUS,
#endif
};
constexpr size_t kNumSignals = sizeof(kSignals) / sizeof(kSignals[0]);
struct sigaction g_previous[kNumSignals];

/// write(2) a whole buffer; async-signal-safe. Returns false on error.
bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = write(fd, data, len);
    if (n < 0) {
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void CrashHandler(int signo) {
  FlightRecorder* rec = g_current.load(std::memory_order_relaxed);
  if (rec != nullptr) {
    rec->UninstallSignalHandlers();  // sigaction is async-signal-safe
    const char* path = rec->signal_path();
    int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      rec->WriteToFd(fd, "signal", signo);
      close(fd);
    }
  }
  // Re-raise with the default disposition so the exit status (and core
  // dump, where enabled) look exactly like an uninstrumented crash.
  signal(signo, SIG_DFL);
  raise(signo);
}

#else

bool WriteAll(int fd, const char* data, size_t len) {
  return _write(fd, data, static_cast<unsigned>(len)) ==
         static_cast<int>(len);
}

#endif  // BIOSIM_FLIGHT_SIGNALS

/// Append a decimal rendering of `v` to buf; async-signal-safe (no stdio).
size_t FormatU64(uint64_t v, char* out) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  for (size_t i = 0; i < n; ++i) {
    out[i] = tmp[n - 1 - i];
  }
  return n;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

FlightRecorder::~FlightRecorder() { UninstallSignalHandlers(); }

FlightRecorder* FlightRecorder::current() {
  return g_current.load(std::memory_order_relaxed);
}

void FlightRecorder::RecordStep(const StepRecord& r) {
  Slot& slot = slots_[head_];
  head_ = (head_ + 1) % slots_.size();
  ++recorded_;

  char* p = slot.buf;
  // Reserve room for the closing brace so truncation below cannot lose it.
  size_t cap = kSlotBytes - 2;
  size_t len = 0;
  auto emit = [&](const char* fmt, auto... args) {
    if (len >= cap) {
      return;
    }
    int n = std::snprintf(p + len, cap - len, fmt, args...);
    if (n < 0) {
      return;
    }
    // On overflow keep the slot at the last complete field: snprintf
    // truncates mid-field, so roll back rather than keep a torn suffix.
    if (static_cast<size_t>(n) >= cap - len) {
      len = cap;
      return;
    }
    len += static_cast<size_t>(n);
  };

  emit("{\"step\": %llu, \"state_hash\": \"%016llx\", \"agents\": %llu, "
       "\"substances\": %llu, \"wall_ms\": %.3f",
       static_cast<unsigned long long>(r.step),
       static_cast<unsigned long long>(r.state_hash),
       static_cast<unsigned long long>(r.agents),
       static_cast<unsigned long long>(r.substances), r.wall_ms);
  size_t complete = len;
  if (!r.op_ms.empty()) {
    emit(", \"ops\": {");
    bool first = true;
    for (const auto& [name, ms] : r.op_ms) {
      emit("%s\"%s\": %.3f", first ? "" : ", ", name, ms);
      first = false;
    }
    emit("}");
    if (len >= cap) {
      len = complete;  // ops block did not fit; drop it whole
    } else {
      complete = len;
    }
  }
  if (r.has_counters) {
    emit(", \"counters\": {\"cycles\": %llu, \"instructions\": %llu, "
         "\"llc_misses\": %llu, \"branch_misses\": %llu}",
         static_cast<unsigned long long>(r.counters.cycles),
         static_cast<unsigned long long>(r.counters.instructions),
         static_cast<unsigned long long>(r.counters.llc_misses),
         static_cast<unsigned long long>(r.counters.branch_misses));
    if (len >= cap) {
      len = complete;
    } else {
      complete = len;
    }
  }
  if (r.shards > 0) {
    emit(", \"shards\": %llu, \"shard_ghosts\": %llu, "
         "\"shard_migrations\": %llu",
         static_cast<unsigned long long>(r.shards),
         static_cast<unsigned long long>(r.shard_ghosts),
         static_cast<unsigned long long>(r.shard_migrations));
    if (len >= cap) {
      len = complete;
    }
  }
  p[len++] = '}';
  slot.len = len;
}

bool FlightRecorder::InstallSignalHandlers(const std::string& path) {
#ifdef BIOSIM_FLIGHT_SIGNALS
  FlightRecorder* prev = g_current.load(std::memory_order_relaxed);
  if (prev != nullptr && prev != this) {
    prev->handlers_installed_ = false;  // displaced; do not double-restore
  }
  std::snprintf(signal_path_, sizeof(signal_path_), "%s", path.c_str());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashHandler;
  sigemptyset(&sa.sa_mask);
  // SA_NODEFER is not needed: the dump path re-raises with SIG_DFL.
  sa.sa_flags = 0;
  for (size_t i = 0; i < kNumSignals; ++i) {
    sigaction(kSignals[i], &sa,
              handlers_installed_ || prev != nullptr ? nullptr
                                                     : &g_previous[i]);
  }
  handlers_installed_ = true;
  g_current.store(this, std::memory_order_release);
  return true;
#else
  (void)path;
  return false;
#endif
}

void FlightRecorder::UninstallSignalHandlers() {
#ifdef BIOSIM_FLIGHT_SIGNALS
  if (!handlers_installed_) {
    return;
  }
  for (size_t i = 0; i < kNumSignals; ++i) {
    sigaction(kSignals[i], &g_previous[i], nullptr);
  }
  handlers_installed_ = false;
  g_current.store(nullptr, std::memory_order_release);
#endif
}

bool FlightRecorder::WriteToFd(int fd, const char* reason, int signo) const {
  char head[256];
  size_t n = 0;
  auto lit = [&](const char* s) {
    size_t l = std::strlen(s);
    if (n + l < sizeof(head)) {
      std::memcpy(head + n, s, l);
      n += l;
    }
  };
  lit("{\"flight_recorder_version\": 1, \"reason\": \"");
  lit(reason);
  lit("\"");
  if (signo >= 0) {
    lit(", \"signal\": ");
    n += FormatU64(static_cast<uint64_t>(signo), head + n);
  }
  lit(", \"recorded_steps\": ");
  n += FormatU64(recorded_, head + n);
  lit(", \"steps\": [\n");
  bool ok = WriteAll(fd, head, n);

  // Oldest-to-newest: head_ is the oldest slot once the ring has wrapped.
  size_t held = recorded_ < slots_.size() ? static_cast<size_t>(recorded_)
                                          : slots_.size();
  size_t start = recorded_ < slots_.size() ? 0 : head_;
  for (size_t i = 0; i < held; ++i) {
    const Slot& s = slots_[(start + i) % slots_.size()];
    if (i > 0) {
      ok = WriteAll(fd, ",\n", 2) && ok;
    }
    ok = WriteAll(fd, s.buf, s.len) && ok;
  }
  ok = WriteAll(fd, "\n]}\n", 4) && ok;
  return ok;
}

bool FlightRecorder::Dump(const std::string& path, const char* reason,
                          const json::Value* context) const {
  if (context == nullptr) {
    int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return false;
    }
    bool ok = WriteToFd(fd, reason, -1);
#ifdef BIOSIM_FLIGHT_SIGNALS
    close(fd);
#else
    _close(fd);
#endif
    return ok;
  }
  // With context we are on a normal (non-signal) path, so the convenient
  // route is fine: render the ring through the same formatter, then parse
  // and re-emit with the context attached.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string body;
  {
    // Format into memory by writing to a temp rendering of the ring.
    char head[256];
    int n = std::snprintf(
        head, sizeof(head),
        "{\"flight_recorder_version\": 1, \"reason\": \"%s\", "
        "\"recorded_steps\": %llu, \"steps\": [\n",
        reason, static_cast<unsigned long long>(recorded_));
    body.append(head, static_cast<size_t>(n));
    size_t held = recorded_ < slots_.size() ? static_cast<size_t>(recorded_)
                                            : slots_.size();
    size_t start = recorded_ < slots_.size() ? 0 : head_;
    for (size_t i = 0; i < held; ++i) {
      const Slot& s = slots_[(start + i) % slots_.size()];
      if (i > 0) {
        body += ",\n";
      }
      body.append(s.buf, s.len);
    }
    body += "\n], \"context\": ";
    body += context->Dump(0);
    body += "}\n";
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace biosim::obs
