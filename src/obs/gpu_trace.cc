#include "obs/gpu_trace.h"

#include <cstdio>

#include "gpusim/device.h"

namespace biosim::obs {

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

size_t AppendDeviceTimeline(const gpusim::Device& dev, TraceSession* session,
                            const std::string& track) {
  size_t n = 0;
  for (const gpusim::KernelStats& k : dev.history()) {
    std::vector<std::pair<std::string, std::string>> args;
    args.emplace_back("grid_dim", std::to_string(k.grid_dim));
    args.emplace_back("block_dim", std::to_string(k.block_dim));
    args.emplace_back("simd_efficiency", Fmt("%.3f", k.SimdEfficiency()));
    args.emplace_back("dram_bytes",
                      std::to_string(k.DramBytes()));
    args.emplace_back("l2_read_hit_pct",
                      Fmt("%.1f", 100.0 * k.L2ReadHitFraction()));
    args.emplace_back("flops", std::to_string(k.TotalFlops()));
    args.emplace_back(
        "transactions",
        std::to_string(k.read_transactions + k.write_transactions));
    args.emplace_back("atomic_serialized",
                      std::to_string(k.atomic_serialized));
    args.emplace_back("compute_ms", Fmt("%.4f", k.compute_ms));
    args.emplace_back("memory_ms", Fmt("%.4f", k.memory_ms));
    args.emplace_back("meter_stride", std::to_string(k.meter_stride));
    session->AddVirtualSpan(track, k.name, k.sim_start_ms * 1e3,
                            k.total_ms * 1e3, std::move(args));
    ++n;
  }
  return n;
}

}  // namespace biosim::obs
