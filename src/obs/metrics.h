// Unified metrics registry: named counters, gauges and histograms behind
// one interface, with JSON dumps and per-step JSON-lines snapshots.
//
// This absorbs the quantities that used to live in disconnected ad-hoc
// structs — OpProfile operation times, gpusim KernelStats aggregates and
// memory-model transaction counters, transfer accounting, diffusion-grid
// state, thread-pool configuration — so every consumer (biosim_run --json,
// the figure benches, tests) reads the same names from the same place.
//
// Kinds and merge semantics (exercised by tests/obs/metrics_test.cc):
//   counter    monotonic uint64; Merge adds.
//   gauge      last-written double; Merge overwrites with the source's
//              value iff the source ever set it.
//   histogram  full distribution (core/histogram.h: count/sum/min/max,
//              p50/p95); Merge combines distributions.
//
// Metric names are slash-scoped by convention: "op/mechanical forces/ms",
// "gpusim/kernel/mech_v2/dram_bytes", "diffusion/substance/total_amount".
#ifndef BIOSIM_OBS_METRICS_H_
#define BIOSIM_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/histogram.h"
#include "obs/json.h"

namespace biosim {
class OpProfile;
class DiffusionGrid;
class UniformGridEnvironment;
}  // namespace biosim

namespace biosim::gpusim {
class Device;
}  // namespace biosim::gpusim

namespace biosim::obs {

class PerfSession;

class Counter {
 public:
  void Add(uint64_t n = 1) { v_ += n; }
  /// Overwrite with an externally maintained cumulative value (how the
  /// collectors absorb counters that live elsewhere).
  void Set(uint64_t v) { v_ = v; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

class Gauge {
 public:
  void Set(double v) {
    v_ = v;
    set_ = true;
  }
  double value() const { return v_; }
  bool ever_set() const { return set_; }

 private:
  double v_ = 0.0;
  bool set_ = false;
};

class MetricsRegistry {
 public:
  /// Named instrument access, created on first use. Pointers stay valid for
  /// the registry's lifetime. Re-requesting a name with a different kind is
  /// a programming error (asserted).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Combine `o` into this registry (see the kind table above). Metrics
  /// absent here are created.
  void Merge(const MetricsRegistry& o);

  size_t size() const { return metrics_.size(); }
  void Reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, mean, p50, p95}}} — name-sorted within each section so
  /// the serialized form is byte-stable regardless of registration order.
  json::Value ToJson() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Metric {
    std::string name;
    Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram hist;
  };

  Metric* GetOrCreate(const std::string& name, Kind kind);

  std::deque<Metric> metrics_;  // first-seen order; stable addresses
  std::unordered_map<std::string, size_t> index_;
};

/// Append one JSON object per snapshot to a file — the per-step time-series
/// emission mode (biosim_run --metrics=FILE --metrics-every=N).
class MetricsJsonlWriter {
 public:
  explicit MetricsJsonlWriter(const std::string& path);
  bool ok() const { return out_.good(); }
  /// One line: {"step": N, ...registry dump}.
  bool WriteSnapshot(uint64_t step, const MetricsRegistry& registry);

 private:
  std::ofstream out_;
};

// --- collectors -------------------------------------------------------------
// Each collector reads one subsystem's native accounting into the registry
// under a stable name prefix. They Set cumulative values, so re-collecting
// into a fresh registry per snapshot is idempotent.

/// Scheduler operation times: "op/<name>/ms" histograms (per-step samples)
/// plus "op/<name>/calls" counters.
void CollectOpProfile(const OpProfile& profile, MetricsRegistry* reg);

/// Simulated-GPU accounting, aggregated per kernel name:
/// "gpusim/kernel/<name>/{launches,time_ms,flops,dram_bytes,l2_hit_bytes,
/// read_transactions,write_transactions,atomic_ops,simd_efficiency,...}"
/// plus device-wide transfer counters and the simulated clock.
void CollectDevice(const gpusim::Device& dev, MetricsRegistry* reg);

/// Diffusion grid state: "diffusion/<substance>/{voxels,total_amount,
/// max_concentration,dropped_deposits}".
void CollectDiffusionGrid(const DiffusionGrid& grid, MetricsRegistry* reg);

/// Uniform-grid maintenance counters: "grid/{full_rebuilds,
/// incremental_updates,rebinned_agents,boxes}". Shows whether the
/// incremental path (Param::incremental_grid) is actually engaging and how
/// much re-binning it does.
void CollectUniformGrid(const UniformGridEnvironment& env,
                        MetricsRegistry* reg);

/// Host execution environment: "runtime/hardware_threads" (machine
/// concurrency), "runtime/worker_threads" (threads the run actually uses;
/// defaults to the OpenMP worker count when not passed), "runtime/openmp"
/// (0/1).
void CollectRuntime(MetricsRegistry* reg, int worker_threads = 0);

/// Per-op hardware-counter totals from an installed PerfSession:
/// "perf/<op>/{cycles,instructions,llc_misses,branch_misses,ipc}" plus
/// "perf/available" (0/1). No-op gauges-wise when `session` is null.
void CollectPerfSession(const PerfSession* session, MetricsRegistry* reg);

/// One spatial shard's per-step accounting, copied out of the engine's
/// ShardRuntime by the caller (plain data: obs does not link the engine).
struct ShardObsStats {
  uint64_t owned_agents = 0;
  uint64_t ghosts_shipped = 0;
  int32_t first_plane = 0;
  int32_t end_plane = 0;
};

/// Sharded-pipeline state: per-shard "shard/<k>/{owned_agents,
/// ghosts_shipped,planes}" counters plus domain-wide "shard/count",
/// "shard/migrations" and the load-imbalance gauges
/// "shard/load_imbalance_max" / "shard/load_imbalance_mean" (per-shard
/// owned count over the perfectly balanced share; 1.0 = ideal). No-op when
/// `shards` is empty (unsharded run).
void CollectShards(const std::vector<ShardObsStats>& shards,
                   uint64_t migrations, MetricsRegistry* reg);

}  // namespace biosim::obs

#endif  // BIOSIM_OBS_METRICS_H_
