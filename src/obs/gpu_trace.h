// Virtual GPU timeline: reconstruct per-kernel trace spans from a
// gpusim::Device's launch history.
//
// The simulated device has no host threads — its "time" is the analytic
// model's kernel clock. Each launch in Device::history() becomes one span
// on a virtual track (its own process in the trace viewer), positioned at
// the launch's simulated-clock offset and carrying the nvprof-style
// counters as span args: grid/block dims, SIMD efficiency, DRAM bytes, L2
// read hit %, divergence, atomic serialization. Loading the exported file
// in Perfetto therefore shows the CPU scheduler and the simulated GPU
// timeline side by side.
#ifndef BIOSIM_OBS_GPU_TRACE_H_
#define BIOSIM_OBS_GPU_TRACE_H_

#include <string>

#include "obs/trace.h"

namespace biosim::gpusim {
class Device;
}  // namespace biosim::gpusim

namespace biosim::obs {

/// Append one span per launch of `dev` to `session` on the virtual track
/// `track` (simulated kernel clock, microseconds). Returns the number of
/// spans added.
size_t AppendDeviceTimeline(const gpusim::Device& dev, TraceSession* session,
                            const std::string& track = "gpu kernels");

}  // namespace biosim::obs

#endif  // BIOSIM_OBS_GPU_TRACE_H_
