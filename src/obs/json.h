// Minimal JSON document model: build, serialize, parse.
//
// The observability layer's single JSON implementation — the trace
// exporter, the metrics registry, the run reports, and the benches all
// serialize through this instead of hand-rolled fprintf, and the tests
// parse their own output back to validate it. Objects preserve insertion
// order so reports diff cleanly across runs.
//
// Deliberately small: UTF-8 passthrough, no comments, doubles for all
// numbers (integers round-trip exactly up to 2^53, far beyond any counter
// we report per run).
#ifndef BIOSIM_OBS_JSON_H_
#define BIOSIM_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace biosim::obs::json {

class Value;
using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(double d) : kind_(Kind::kNumber), num_(d) {}  // NOLINT
  Value(int i) : kind_(Kind::kNumber), num_(i) {}  // NOLINT
  Value(int64_t i)  // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Value(uint64_t u)  // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  Value(unsigned int u)  // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT

  static Value MakeArray() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value MakeObject() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  const std::string& AsString() const { return str_; }
  const Array& items() const { return arr_; }
  const std::vector<Member>& members() const { return obj_; }

  /// Array append (the value must be an array).
  void Append(Value v) { arr_.push_back(std::move(v)); }
  size_t size() const { return is_array() ? arr_.size() : obj_.size(); }
  const Value& operator[](size_t i) const { return arr_[i]; }

  /// Object set: appends or overwrites in place (the value must be an
  /// object). Returns a reference to the stored value for chaining.
  Value& Set(const std::string& key, Value v);
  /// Object lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Serialize. indent = 0 emits one line; otherwise pretty-prints with the
  /// given indent width.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  std::vector<Member> obj_;
};

/// Parse a JSON document. Returns nullptr and fills `error` (if non-null)
/// with an offset-tagged message on malformed input; trailing non-space
/// characters are an error.
std::unique_ptr<Value> Parse(const std::string& text,
                             std::string* error = nullptr);

/// Escape a string the way Dump does (exported for streaming writers).
std::string Escape(const std::string& s);

}  // namespace biosim::obs::json

#endif  // BIOSIM_OBS_JSON_H_
