#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace biosim::obs {

std::atomic<TraceSession*> TraceSession::current_{nullptr};

namespace {

// Thread-local cache of (session id, buffer): re-registration only happens
// when a new session is installed, so steady-state Record is lock-free.
// Keyed by a unique id, not the session address — a new session allocated
// where a destroyed one lived must not inherit its stale buffer pointer.
struct TlsSlot {
  uint64_t session_id = 0;
  void* buf = nullptr;
};
thread_local TlsSlot tls_slot;

std::atomic<uint64_t> next_session_id{1};

}  // namespace

TraceSession::TraceSession(size_t events_per_thread)
    : id_(next_session_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<size_t>(events_per_thread, 16)) {}

TraceSession::~TraceSession() {
  // Never leave a dangling current session behind.
  TraceSession* self = this;
  current_.compare_exchange_strong(self, nullptr);
}

TraceSession::ThreadBuf* TraceSession::BufForThisThread() {
  if (tls_slot.session_id == id_) {
    return static_cast<ThreadBuf*>(tls_slot.buf);
  }
  MutexLock lock(mu_);
  auto buf = std::make_unique<ThreadBuf>();
  buf->ring.reserve(capacity_);
  buf->label = threads_.empty()
                   ? "main"
                   : "worker " + std::to_string(threads_.size());
  threads_.push_back(std::move(buf));
  tls_slot.session_id = id_;
  tls_slot.buf = threads_.back().get();
  return threads_.back().get();
}

void TraceSession::Record(const char* name, uint64_t start_ns,
                          uint64_t dur_ns) {
  ThreadBuf* buf = BufForThisThread();
  TraceEvent ev{name, start_ns, dur_ns};
  if (buf->ring.size() < capacity_) {
    buf->ring.push_back(ev);
  } else {
    buf->ring[buf->head] = ev;  // wrap: overwrite the oldest
  }
  buf->head = (buf->head + 1) % capacity_;
  buf->recorded += 1;
}

const char* TraceSession::Intern(const std::string& name) {
  MutexLock lock(mu_);
  interned_.push_back(std::make_unique<std::string>(name));
  return interned_.back()->c_str();
}

void TraceSession::AddVirtualSpan(
    const std::string& track, const std::string& name, double start_us,
    double dur_us, std::vector<std::pair<std::string, std::string>> args) {
  MutexLock lock(mu_);
  size_t idx = 0;
  for (; idx < virtual_tracks_.size(); ++idx) {
    if (virtual_tracks_[idx] == track) {
      break;
    }
  }
  if (idx == virtual_tracks_.size()) {
    virtual_tracks_.push_back(track);
  }
  virtual_events_.push_back({idx, name, start_us, dur_us, std::move(args)});
}

uint64_t TraceSession::dropped() const {
  MutexLock lock(mu_);
  uint64_t n = 0;
  for (const auto& t : threads_) {
    n += t->recorded - t->ring.size();
  }
  return n;
}

size_t TraceSession::event_count() const {
  MutexLock lock(mu_);
  size_t n = virtual_events_.size();
  for (const auto& t : threads_) {
    n += t->ring.size();
  }
  return n;
}

std::string TraceSession::ToChromeJson() const {
  MutexLock lock(mu_);
  constexpr int kHostPid = 1;
  constexpr int kVirtualPid = 2;

  json::Value events = json::Value::MakeArray();
  auto meta = [&events](const char* what, int pid, int tid,
                        const std::string& name) {
    json::Value m = json::Value::MakeObject();
    m.Set("name", what);
    m.Set("ph", "M");
    m.Set("pid", pid);
    if (tid >= 0) {
      m.Set("tid", tid);
    }
    json::Value args = json::Value::MakeObject();
    args.Set("name", name);
    m.Set("args", std::move(args));
    events.Append(std::move(m));
  };

  meta("process_name", kHostPid, -1, "host");
  if (!virtual_events_.empty()) {
    meta("process_name", kVirtualPid, -1, "gpusim (virtual time)");
  }

  // Host tracks: tid = registration order; events sorted by start so the
  // document is deterministic (the ring may have wrapped).
  for (size_t tid = 0; tid < threads_.size(); ++tid) {
    const ThreadBuf& buf = *threads_[tid];
    meta("thread_name", kHostPid, static_cast<int>(tid), buf.label);
    std::vector<TraceEvent> sorted(buf.ring.begin(), buf.ring.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.start_ns < b.start_ns;
              });
    for (const TraceEvent& ev : sorted) {
      json::Value e = json::Value::MakeObject();
      e.Set("name", ev.name);
      e.Set("ph", "X");
      e.Set("pid", kHostPid);
      e.Set("tid", static_cast<int>(tid));
      e.Set("ts", static_cast<double>(ev.start_ns) / 1e3);  // µs
      e.Set("dur", static_cast<double>(ev.dur_ns) / 1e3);
      events.Append(std::move(e));
    }
  }

  // Virtual tracks, after the host tids.
  const int vbase = static_cast<int>(threads_.size());
  for (size_t i = 0; i < virtual_tracks_.size(); ++i) {
    meta("thread_name", kVirtualPid, vbase + static_cast<int>(i),
         virtual_tracks_[i]);
  }
  std::vector<const VirtualEvent*> vsorted;
  vsorted.reserve(virtual_events_.size());
  for (const VirtualEvent& ev : virtual_events_) {
    vsorted.push_back(&ev);
  }
  std::stable_sort(vsorted.begin(), vsorted.end(),
                   [](const VirtualEvent* a, const VirtualEvent* b) {
                     return a->start_us < b->start_us;
                   });
  for (const VirtualEvent* ev : vsorted) {
    json::Value e = json::Value::MakeObject();
    e.Set("name", ev->name);
    e.Set("ph", "X");
    e.Set("pid", kVirtualPid);
    e.Set("tid", vbase + static_cast<int>(ev->track));
    e.Set("ts", ev->start_us);
    e.Set("dur", ev->dur_us);
    if (!ev->args.empty()) {
      json::Value args = json::Value::MakeObject();
      for (const auto& [k, v] : ev->args) {
        args.Set(k, v);
      }
      e.Set("args", std::move(args));
    }
    events.Append(std::move(e));
  }

  json::Value doc = json::Value::MakeObject();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  uint64_t dropped = 0;
  for (const auto& t : threads_) {
    dropped += t->recorded - t->ring.size();
  }
  json::Value other = json::Value::MakeObject();
  other.Set("dropped_events", dropped);
  doc.Set("otherData", std::move(other));
  return doc.Dump(0);
}

bool TraceSession::WriteChromeJson(const std::string& path) const {
  std::string body = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  bool ok = written == body.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace biosim::obs
