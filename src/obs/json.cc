#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace biosim::obs::json {

Value& Value::Set(const std::string& key, Value v) {
  for (auto& m : obj_) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return obj_.back().second;
}

const Value* Value::Find(const std::string& key) const {
  for (const auto& m : obj_) {
    if (m.first == key) {
      return &m.second;
    }
  }
  return nullptr;
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the least-bad echo
    *out += "null";
    return;
  }
  // Integers (the common case for counters) print without an exponent or
  // trailing zeros; everything else gets round-trippable precision.
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%.0f", d);
    *out += buf;
    return;
  }
  char buf[40];
  snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void Indent(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      AppendNumber(out, num_);
      return;
    case Kind::kString:
      out->push_back('"');
      *out += Escape(str_);
      out->push_back('"');
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
          if (indent == 0) {
            out->push_back(' ');
          }
        }
        Indent(out, indent, depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) {
        Indent(out, indent, depth);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
          if (indent == 0) {
            out->push_back(' ');
          }
        }
        Indent(out, indent, depth + 1);
        out->push_back('"');
        *out += Escape(obj_[i].first);
        *out += "\": ";
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) {
        Indent(out, indent, depth);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::unique_ptr<Value> Run(std::string* error) {
    Value v;
    if (!ParseValue(&v)) {
      Report(error);
      return nullptr;
    }
    SkipSpace();
    if (pos_ != s_.size()) {
      err_ = "trailing characters after document";
      Report(error);
      return nullptr;
    }
    return std::make_unique<Value>(std::move(v));
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) {
      err_ = std::string("expected '") + lit + "'";
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      err_ = "expected string";
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          break;
        }
        char e = s_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              err_ = "truncated \\u escape";
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                err_ = "bad \\u escape";
                return false;
              }
            }
            // Encode the BMP code point as UTF-8 (surrogate pairs outside
            // our own output; treat them as two 3-byte sequences).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            err_ = "bad escape character";
            return false;
        }
      } else {
        *out += c;
      }
    }
    err_ = "unterminated string";
    return false;
  }

  bool ParseValue(Value* out) {
    SkipSpace();
    if (pos_ >= s_.size()) {
      err_ = "unexpected end of input";
      return false;
    }
    char c = s_[pos_];
    if (c == 'n') {
      if (!Literal("null")) return false;
      *out = Value();
      return true;
    }
    if (c == 't') {
      if (!Literal("true")) return false;
      *out = Value(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false")) return false;
      *out = Value(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos_;
      *out = Value::MakeArray();
      SkipSpace();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Value item;
        if (!ParseValue(&item)) return false;
        out->Append(std::move(item));
        SkipSpace();
        if (pos_ >= s_.size()) {
          err_ = "unterminated array";
          return false;
        }
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        err_ = "expected ',' or ']'";
        return false;
      }
    }
    if (c == '{') {
      ++pos_;
      *out = Value::MakeObject();
      SkipSpace();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          err_ = "expected ':'";
          return false;
        }
        ++pos_;
        Value item;
        if (!ParseValue(&item)) return false;
        out->Set(key, std::move(item));
        SkipSpace();
        if (pos_ >= s_.size()) {
          err_ = "unterminated object";
          return false;
        }
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        err_ = "expected ',' or '}'";
        return false;
      }
    }
    // Number.
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    double d = std::strtod(start, &end);
    if (end == start) {
      err_ = "expected value";
      return false;
    }
    pos_ += static_cast<size_t>(end - start);
    *out = Value(d);
    return true;
  }

  void Report(std::string* error) const {
    if (error != nullptr) {
      *error = err_ + " at offset " + std::to_string(pos_);
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::unique_ptr<Value> Parse(const std::string& text, std::string* error) {
  return Parser(text).Run(error);
}

}  // namespace biosim::obs::json
