// Machine-readable run reports: one versioned JSON document per run.
//
// Every tool that used to hand-roll its own serializer — biosim_run, the
// figure benches, BENCH_gpusim.json — now emits this shape:
//
//   {
//     "report_version": 1,           // bumped on breaking schema changes
//     "tool": "<producer>",          // e.g. "biosim_run", "bench_fig8"
//     "environment": { compiler, build flags, openmp, threads },
//     ... producer sections: "config", "summary", "metrics", "results" ...
//   }
//
// Version policy (docs/observability.md): additive fields are allowed
// within a version; removing or re-typing a field bumps report_version.
#ifndef BIOSIM_OBS_REPORT_H_
#define BIOSIM_OBS_REPORT_H_

#include <string>

#include "obs/json.h"

namespace biosim::obs {

/// Current report schema version.
inline constexpr int kReportVersion = 1;

/// Compiler / build / runtime facts, for reproducing a measurement.
json::Value EnvironmentJson();

/// A report skeleton: report_version + tool + environment. Producers add
/// their own sections and Dump it.
json::Value MakeRunReport(const std::string& tool);

/// Write `report` to `path` (pretty-printed, trailing newline). Returns
/// false on I/O failure.
bool WriteReportFile(const json::Value& report, const std::string& path);

}  // namespace biosim::obs

#endif  // BIOSIM_OBS_REPORT_H_
