// Machine-readable run reports: one versioned JSON document per run.
//
// Every tool that used to hand-roll its own serializer — biosim_run, the
// figure benches, BENCH_gpusim.json — now emits this shape:
//
//   {
//     "report_version": 2,           // bumped on breaking schema changes
//     "tool": "<producer>",          // e.g. "biosim_run", "bench_fig8"
//     "environment": { compiler, build flags, openmp, threads },
//     ... producer sections: "config", "summary", "metrics", "results",
//     ...                    "perf_counters", "roofline" ...
//   }
//
// Version policy (docs/observability.md): additive fields are allowed
// within a version; removing or re-typing a field bumps report_version.
//
// v1 → v2 (this layer's history):
//   - environment.hardware_threads changed meaning: v1 reported the OpenMP
//     worker count (ambiguous — BENCH_cpu.json said 1 for parallel runs);
//     v2 reports the machine's hardware concurrency and adds
//     environment.worker_threads for the count actually used.
//   - new optional producer sections: "perf_counters" (per-op hardware
//     counter deltas from obs/perf_counters.h) and "roofline" (measured vs
//     analytical-model join from roofline/cpu_roofline.h).
// Readers must accept both versions; IsSupportedReportVersion is the
// gate (scripts/validate_obs.py applies the same policy to artifacts).
#ifndef BIOSIM_OBS_REPORT_H_
#define BIOSIM_OBS_REPORT_H_

#include <string>

#include "obs/json.h"

namespace biosim::obs {

/// Current report schema version (written by MakeRunReport).
inline constexpr int kReportVersion = 2;
/// Oldest version readers still accept.
inline constexpr int kMinSupportedReportVersion = 1;

/// True for versions a reader of this build must accept.
inline constexpr bool IsSupportedReportVersion(int v) {
  return v >= kMinSupportedReportVersion && v <= kReportVersion;
}

/// Reads "report_version" from a parsed report; returns -1 when the field
/// is missing or not a number (pre-versioning documents).
int ReportVersionOf(const json::Value& report);

/// Compiler / build / runtime facts, for reproducing a measurement.
/// `worker_threads` is the number of threads the producer actually uses
/// (0 = unknown/not applicable, field omitted); hardware_threads is always
/// the machine's concurrency.
json::Value EnvironmentJson(int worker_threads = 0);

/// A report skeleton: report_version + tool + environment. Producers add
/// their own sections and Dump it.
json::Value MakeRunReport(const std::string& tool, int worker_threads = 0);

/// Write `report` to `path` (pretty-printed, trailing newline). Returns
/// false on I/O failure.
bool WriteReportFile(const json::Value& report, const std::string& path);

}  // namespace biosim::obs

#endif  // BIOSIM_OBS_REPORT_H_
