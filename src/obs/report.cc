#include "obs/report.h"

#include <cstdio>
#include <thread>

#include "core/thread_pool.h"

namespace biosim::obs {

int ReportVersionOf(const json::Value& report) {
  const json::Value* v = report.Find("report_version");
  if (v == nullptr || !v->is_number()) {
    return -1;
  }
  return static_cast<int>(v->AsDouble());
}

json::Value EnvironmentJson(int worker_threads) {
  json::Value env = json::Value::MakeObject();
#if defined(__clang__)
  env.Set("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  env.Set("compiler", "gcc " + std::to_string(__GNUC__) + "." +
                          std::to_string(__GNUC_MINOR__) + "." +
                          std::to_string(__GNUC_PATCHLEVEL__));
#else
  env.Set("compiler", "unknown");
#endif
#ifdef NDEBUG
  env.Set("assertions", false);
#else
  env.Set("assertions", true);
#endif
#ifdef _OPENMP
  env.Set("openmp", true);
#else
  env.Set("openmp", false);
#endif
  // v2: hardware_threads is the machine, worker_threads what we use.
  // (v1 conflated the two by reporting omp_get_max_threads here.)
  unsigned hw = std::thread::hardware_concurrency();
  env.Set("hardware_threads",
          static_cast<uint64_t>(hw > 0 ? hw : HardwareThreads()));
  env.Set("worker_threads",
          static_cast<uint64_t>(worker_threads > 0 ? worker_threads
                                                   : HardwareThreads()));
  env.Set("cxx_standard", static_cast<int64_t>(__cplusplus));
  return env;
}

json::Value MakeRunReport(const std::string& tool, int worker_threads) {
  json::Value report = json::Value::MakeObject();
  report.Set("report_version", kReportVersion);
  report.Set("tool", tool);
  report.Set("environment", EnvironmentJson(worker_threads));
  return report;
}

bool WriteReportFile(const json::Value& report, const std::string& path) {
  std::string body = report.Dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  bool ok = written == body.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace biosim::obs
