#include "obs/report.h"

#include <cstdio>

#include "core/thread_pool.h"

namespace biosim::obs {

json::Value EnvironmentJson() {
  json::Value env = json::Value::MakeObject();
#if defined(__clang__)
  env.Set("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  env.Set("compiler", "gcc " + std::to_string(__GNUC__) + "." +
                          std::to_string(__GNUC_MINOR__) + "." +
                          std::to_string(__GNUC_PATCHLEVEL__));
#else
  env.Set("compiler", "unknown");
#endif
#ifdef NDEBUG
  env.Set("assertions", false);
#else
  env.Set("assertions", true);
#endif
#ifdef _OPENMP
  env.Set("openmp", true);
#else
  env.Set("openmp", false);
#endif
  env.Set("hardware_threads", static_cast<uint64_t>(HardwareThreads()));
  env.Set("cxx_standard", static_cast<int64_t>(__cplusplus));
  return env;
}

json::Value MakeRunReport(const std::string& tool) {
  json::Value report = json::Value::MakeObject();
  report.Set("report_version", kReportVersion);
  report.Set("tool", tool);
  report.Set("environment", EnvironmentJson());
  return report;
}

bool WriteReportFile(const json::Value& report, const std::string& path) {
  std::string body = report.Dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  bool ok = written == body.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace biosim::obs
