// Structured tracing: scoped spans into per-thread ring buffers, exported
// as Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Design constraints, in order:
//
//   1. Zero overhead when off. TRACE_SCOPE compiles to one relaxed atomic
//      load and a branch on a nullptr session — no mutex, no allocation,
//      no clock read. This is asserted by tests/obs/overhead_test.cc and
//      bench/micro/bench_micro_trace.cc.
//   2. Low overhead when on. Each thread records into its own fixed-size
//      ring buffer (registered once per thread under a mutex, then
//      lock-free); a full ring overwrites the oldest events and counts the
//      drops rather than blocking the simulation.
//   3. One track per host thread. Events carry the recording thread's
//      registration-order tid; the exporter emits thread_name metadata so
//      Perfetto labels the scheduler thread and each worker.
//
// Virtual tracks — timelines that did not run on a host thread, like the
// simulated GPU reconstructed from gpusim::Device launch history
// (obs/gpu_trace.h) — are added after the run via AddVirtualSpan and
// rendered as a separate process so their (simulated) clock is visually
// distinct from the host wall clock.
//
// Usage:
//   obs::TraceSession session;
//   obs::TraceSession::SetCurrent(&session);   // tracing on
//   { TRACE_SCOPE("mechanical_pairs"); ... }   // a span on this thread
//   obs::TraceSession::SetCurrent(nullptr);    // tracing off
//   session.WriteChromeJson("trace.json");
#ifndef BIOSIM_OBS_TRACE_H_
#define BIOSIM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis.h"

namespace biosim::obs {

/// One completed span ("X" phase in the Chrome trace format). `name` must
/// point at storage that outlives the session — string literals, or strings
/// interned via TraceSession::Intern.
struct TraceEvent {
  const char* name;
  uint64_t start_ns;  // since session epoch
  uint64_t dur_ns;
};

class TraceSession {
 public:
  /// `events_per_thread` bounds each thread's ring buffer (and therefore
  /// memory: 24 B/event). The default holds ~2.6M spans across 10 threads.
  explicit TraceSession(size_t events_per_thread = 1 << 18);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The process-wide active session, or nullptr when tracing is off. A
  /// relaxed atomic load: this is the TRACE_SCOPE fast path.
  static TraceSession* current() {
    return current_.load(std::memory_order_relaxed);
  }
  /// Install (or, with nullptr, remove) the active session. Not meant to be
  /// toggled mid-span; call between simulation phases.
  static void SetCurrent(TraceSession* session) {
    current_.store(session, std::memory_order_release);
  }

  /// Nanoseconds since the session epoch (steady clock).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Record a completed span on the calling thread's track.
  void Record(const char* name, uint64_t start_ns, uint64_t dur_ns);

  /// Copy `name` into session-lifetime storage (for span names built at
  /// runtime; literals don't need it).
  const char* Intern(const std::string& name);

  /// Append a span to a named virtual track (e.g. the simulated GPU).
  /// Timestamps are microseconds on the track's own clock; `args` become
  /// the span's args object in the trace (shown in the Perfetto side
  /// panel). Not thread-safe; call after the traced run.
  void AddVirtualSpan(
      const std::string& track, const std::string& name, double start_us,
      double dur_us,
      std::vector<std::pair<std::string, std::string>> args = {});

  /// Total events dropped because a ring buffer wrapped.
  uint64_t dropped() const;
  /// Events currently held (all threads + virtual tracks).
  size_t event_count() const;

  /// Serialize as a Chrome trace-event document ({"traceEvents": [...]}).
  /// Host tracks go to pid 1 ("host"), virtual tracks to pid 2
  /// ("gpusim (virtual time)"); events within a track are sorted by start.
  std::string ToChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

 private:
  struct ThreadBuf {
    std::vector<TraceEvent> ring;
    size_t head = 0;        // next write slot
    uint64_t recorded = 0;  // total Record calls
    std::string label;
  };

  struct VirtualEvent {
    size_t track;  // index into virtual_tracks_
    std::string name;
    double start_us;
    double dur_us;
    std::vector<std::pair<std::string, std::string>> args;
  };

  ThreadBuf* BufForThisThread();

  static std::atomic<TraceSession*> current_;

  uint64_t id_;  // process-unique; keys the thread-local buffer cache
  std::chrono::steady_clock::time_point epoch_;
  size_t capacity_;

  // Registration, interning and virtual tracks go through mu_; the ThreadBuf
  // contents themselves are single-writer by construction (each buffer is
  // only ever written by its registering thread) and read by the exporter
  // after the traced run. The BIOSIM_GUARDED_BY annotations make the lock
  // discipline a compile-time check under clang -Wthread-safety
  // (docs/static-analysis.md).
  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> threads_ BIOSIM_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<std::string>> interned_ BIOSIM_GUARDED_BY(mu_);
  std::vector<std::string> virtual_tracks_ BIOSIM_GUARDED_BY(mu_);
  std::vector<VirtualEvent> virtual_events_ BIOSIM_GUARDED_BY(mu_);
};

/// RAII span: records [construction, destruction) on the current session.
/// `name` must outlive the session (string literal in practice).
class TraceScope {
 public:
  explicit TraceScope(const char* name)
      : session_(TraceSession::current()), name_(name) {
    if (session_ != nullptr) {
      start_ = session_->NowNs();
    }
  }
  ~TraceScope() {
    if (session_ != nullptr) {
      session_->Record(name_, start_, session_->NowNs() - start_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceSession* session_;
  const char* name_;
  uint64_t start_ = 0;
};

}  // namespace biosim::obs

#define BIOSIM_TRACE_CONCAT2(a, b) a##b
#define BIOSIM_TRACE_CONCAT(a, b) BIOSIM_TRACE_CONCAT2(a, b)
/// Span covering the enclosing scope; `name` must be a string literal (or
/// otherwise outlive the session).
#define TRACE_SCOPE(name) \
  ::biosim::obs::TraceScope BIOSIM_TRACE_CONCAT(trace_scope_, __LINE__)(name)

#endif  // BIOSIM_OBS_TRACE_H_
