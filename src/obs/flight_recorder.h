// Crash flight recorder: a fixed-size ring of the last N step summaries,
// dumped as JSON when the process dies abnormally (SIGSEGV/SIGABRT/SIGBUS)
// or when a determinism self-check diverges — so a failed CI job or a
// long-run crash leaves a postmortem artifact instead of nothing.
//
// Async-signal-safety is the design driver: each RecordStep call formats
// its summary into a preallocated fixed-width slot *at record time* (snprintf
// on the hot-but-safe path), so the signal handler only has to open(2) the
// configured path and write(2) preformatted bytes plus constant framing.
// No allocation, no locks, no stdio in the handler. The handler then
// restores the default disposition and re-raises, preserving the crash's
// exit status and core dump.
//
// A recorder records nothing and costs nothing unless the runner wires it
// (biosim_run --flight-recorder FILE); one recorder at a time may own the
// process-wide signal handlers.
//
// Dump shape (flight_recorder_version 1):
//
//   {
//     "flight_recorder_version": 1,
//     "reason": "signal" | "determinism-divergence" | "manual",
//     "signal": 11,                  // signal dumps only
//     "recorded_steps": 123,         // total RecordStep calls
//     "steps": [ {step summary}, ... oldest to newest, at most N ],
//     "context": { ... }             // optional, non-signal dumps only
//   }
//
// Each step summary: {"step": S, "state_hash": "%016x", "agents": A,
// "substances": D, "wall_ms": W, "ops": {name: ms...}, "counters":
// {"cycles": C, "instructions": I, "llc_misses": L, "branch_misses": B}}
// (the counters object appears only when hardware counters were available).
#ifndef BIOSIM_OBS_FLIGHT_RECORDER_H_
#define BIOSIM_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/perf_counters.h"

namespace biosim::obs {

class FlightRecorder {
 public:
  /// Bytes per preformatted ring slot; summaries that would overflow are
  /// truncated at the last complete field (the line stays valid JSON).
  static constexpr size_t kSlotBytes = 1024;

  struct StepRecord {
    uint64_t step = 0;
    uint64_t state_hash = 0;
    uint64_t agents = 0;
    uint64_t substances = 0;
    double wall_ms = 0.0;
    /// Per-op wall-clock deltas for this step, pipeline order.
    std::vector<std::pair<const char*, double>> op_ms;
    /// Per-step hardware-counter delta; recorded only when set.
    bool has_counters = false;
    CounterSample counters;
    /// Sharded-pipeline summary (docs/sharding.md); recorded only when
    /// shards > 0: shard count, halo ghosts shipped this step, and agents
    /// that changed owner.
    uint64_t shards = 0;
    uint64_t shard_ghosts = 0;
    uint64_t shard_migrations = 0;
  };

  /// `capacity` is N, the number of most-recent steps retained.
  explicit FlightRecorder(size_t capacity = 64);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  size_t capacity() const { return slots_.size(); }
  /// Total RecordStep calls (>= held steps once the ring wraps).
  uint64_t recorded_steps() const { return recorded_; }

  /// Preformat `r` into the next ring slot (overwrites the oldest).
  void RecordStep(const StepRecord& r);

  /// Install process-wide SIGSEGV/SIGABRT/SIGBUS handlers that dump this
  /// recorder to `path` and re-raise. Only one recorder may hold the
  /// handlers; a second installer displaces the first. Returns false when
  /// signal handling is unsupported on the platform.
  bool InstallSignalHandlers(const std::string& path);
  /// Restore the previous dispositions (no-op if not installed).
  void UninstallSignalHandlers();

  /// The recorder currently owning the signal handlers, or nullptr.
  static FlightRecorder* current();

  /// Dump destination configured by InstallSignalHandlers (handler use).
  const char* signal_path() const { return signal_path_; }

  /// Normal-path dump (divergence reports, tests): same document as the
  /// signal path plus an optional "context" object. Returns false on I/O
  /// failure.
  bool Dump(const std::string& path, const char* reason,
            const json::Value* context = nullptr) const;

  /// Async-signal-safe core: write the full document to an open fd using
  /// only write(2). `signo` < 0 omits the "signal" field. Exposed for the
  /// handler and for tests; returns false if any write failed.
  bool WriteToFd(int fd, const char* reason, int signo) const;

 private:
  struct Slot {
    char buf[kSlotBytes];
    size_t len = 0;
  };

  std::vector<Slot> slots_;
  size_t head_ = 0;       // next write index
  uint64_t recorded_ = 0;
  char signal_path_[512] = {0};
  bool handlers_installed_ = false;
};

}  // namespace biosim::obs

#endif  // BIOSIM_OBS_FLIGHT_RECORDER_H_
