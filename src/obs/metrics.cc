#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>
#include <vector>

#include "core/profiler.h"
#include "core/thread_pool.h"
#include "diffusion/diffusion_grid.h"
#include "gpusim/device.h"
#include "spatial/uniform_grid.h"
#include "gpusim/profiler.h"
#include "obs/perf_counters.h"

namespace biosim::obs {

MetricsRegistry::Metric* MetricsRegistry::GetOrCreate(const std::string& name,
                                                      Kind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    it = index_.emplace(name, metrics_.size()).first;
    metrics_.push_back(Metric{name, kind, {}, {}, {}});
  }
  Metric* m = &metrics_[it->second];
  assert(m->kind == kind && "metric re-registered with a different kind");
  return m;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return &GetOrCreate(name, Kind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &GetOrCreate(name, Kind::kGauge)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return &GetOrCreate(name, Kind::kHistogram)->hist;
}

void MetricsRegistry::Merge(const MetricsRegistry& o) {
  for (const Metric& m : o.metrics_) {
    Metric* mine = GetOrCreate(m.name, m.kind);
    switch (m.kind) {
      case Kind::kCounter:
        mine->counter.Add(m.counter.value());
        break;
      case Kind::kGauge:
        if (m.gauge.ever_set()) {
          mine->gauge.Set(m.gauge.value());
        }
        break;
      case Kind::kHistogram:
        mine->hist.Merge(m.hist);
        break;
    }
  }
}

void MetricsRegistry::Reset() {
  metrics_.clear();
  index_.clear();
}

json::Value MetricsRegistry::ToJson() const {
  json::Value counters = json::Value::MakeObject();
  json::Value gauges = json::Value::MakeObject();
  json::Value hists = json::Value::MakeObject();
  // metrics_ is first-registration-ordered, which depends on which collector
  // ran first; emit name-sorted so report and JSONL artifacts are
  // byte-stable across runs and refactors of collection order.
  std::vector<const Metric*> sorted;
  sorted.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    sorted.push_back(&m);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Metric* a, const Metric* b) { return a->name < b->name; });
  for (const Metric* mp : sorted) {
    const Metric& m = *mp;
    switch (m.kind) {
      case Kind::kCounter:
        counters.Set(m.name, m.counter.value());
        break;
      case Kind::kGauge:
        gauges.Set(m.name, m.gauge.value());
        break;
      case Kind::kHistogram: {
        json::Value h = json::Value::MakeObject();
        h.Set("count", m.hist.count());
        h.Set("sum", m.hist.sum());
        h.Set("min", m.hist.min());
        h.Set("max", m.hist.max());
        h.Set("mean", m.hist.mean());
        h.Set("p50", m.hist.Percentile(0.5));
        h.Set("p95", m.hist.Percentile(0.95));
        hists.Set(m.name, std::move(h));
        break;
      }
    }
  }
  json::Value out = json::Value::MakeObject();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(hists));
  return out;
}

MetricsJsonlWriter::MetricsJsonlWriter(const std::string& path)
    : out_(path) {}

bool MetricsJsonlWriter::WriteSnapshot(uint64_t step,
                                       const MetricsRegistry& registry) {
  if (!out_.good()) {
    return false;
  }
  json::Value line = json::Value::MakeObject();
  line.Set("step", step);
  json::Value dump = registry.ToJson();
  for (auto& m : dump.members()) {
    line.Set(m.first, m.second);
  }
  out_ << line.Dump(0) << "\n";
  out_.flush();
  return out_.good();
}

// --- collectors -------------------------------------------------------------

void CollectOpProfile(const OpProfile& profile, MetricsRegistry* reg) {
  for (const OpProfile::Entry& e : profile.entries()) {
    reg->GetHistogram("op/" + e.name + "/ms")->Merge(e.hist);
    reg->GetCounter("op/" + e.name + "/calls")->Set(e.calls());
  }
}

void CollectDevice(const gpusim::Device& dev, MetricsRegistry* reg) {
  gpusim::ProfileReport report(dev);
  for (const gpusim::AggregatedKernel& k : report.kernels()) {
    const std::string p = "gpusim/kernel/" + k.name + "/";
    reg->GetCounter(p + "launches")->Set(k.launches);
    reg->GetGauge(p + "time_ms")->Set(k.total_ms);
    reg->GetCounter(p + "flops")->Set(k.TotalFlops());
    reg->GetCounter(p + "dram_bytes")->Set(k.DramBytes());
    reg->GetCounter(p + "l2_hit_bytes")->Set(k.L2HitBytes());
    reg->GetCounter(p + "l1_hit_bytes")->Set(k.L1HitBytes());
    reg->GetCounter(p + "read_transactions")->Set(k.read_transactions);
    reg->GetCounter(p + "write_transactions")->Set(k.write_transactions);
    reg->GetCounter(p + "atomic_ops")->Set(k.atomic_ops);
    reg->GetCounter(p + "atomic_serialized")->Set(k.atomic_serialized);
    reg->GetCounter(p + "shared_bytes")->Set(k.shared_bytes);
    reg->GetGauge(p + "simd_efficiency")->Set(k.SimdEfficiency());
    reg->GetGauge(p + "l2_read_hit_fraction")->Set(k.L2ReadHitFraction());
    reg->GetGauge(p + "arithmetic_intensity")->Set(k.ArithmeticIntensity());
    reg->GetGauge(p + "achieved_gflops")->Set(k.AchievedGflops());
  }
  const gpusim::TransferStats& t = dev.transfers();
  reg->GetCounter("gpusim/transfers/h2d_bytes")->Set(t.h2d_bytes);
  reg->GetCounter("gpusim/transfers/d2h_bytes")->Set(t.d2h_bytes);
  reg->GetCounter("gpusim/transfers/h2d_count")->Set(t.h2d_count);
  reg->GetCounter("gpusim/transfers/d2h_count")->Set(t.d2h_count);
  reg->GetGauge("gpusim/transfers/h2d_ms")->Set(t.h2d_ms);
  reg->GetGauge("gpusim/transfers/d2h_ms")->Set(t.d2h_ms);
  reg->GetGauge("gpusim/device/kernel_ms")->Set(dev.KernelMs());
  reg->GetGauge("gpusim/device/elapsed_ms")->Set(dev.ElapsedMs());
  reg->GetCounter("gpusim/device/launches")->Set(dev.history().size());
  reg->GetGauge("gpusim/device/meter_stride")
      ->Set(static_cast<double>(dev.meter_stride()));
}

void CollectDiffusionGrid(const DiffusionGrid& grid, MetricsRegistry* reg) {
  const std::string p = "diffusion/" + grid.substance_name() + "/";
  reg->GetCounter(p + "voxels")->Set(grid.num_voxels());
  reg->GetGauge(p + "total_amount")->Set(grid.TotalAmount());
  reg->GetGauge(p + "max_concentration")->Set(grid.MaxConcentration());
  reg->GetCounter(p + "dropped_deposits")->Set(grid.dropped_deposits());
}

void CollectUniformGrid(const UniformGridEnvironment& env,
                        MetricsRegistry* reg) {
  const UniformGridEnvironment::UpdateStats& st = env.update_stats();
  reg->GetCounter("grid/full_rebuilds")->Set(st.full_rebuilds);
  reg->GetCounter("grid/incremental_updates")->Set(st.incremental_updates);
  reg->GetCounter("grid/rebinned_agents")->Set(st.rebinned_agents);
  const Int3& nb = env.num_boxes_axis();
  reg->GetCounter("grid/boxes")
      ->Set(static_cast<uint64_t>(nb.x) * static_cast<uint64_t>(nb.y) *
            static_cast<uint64_t>(nb.z));
}

void CollectRuntime(MetricsRegistry* reg, int worker_threads) {
  unsigned hw = std::thread::hardware_concurrency();
  reg->GetGauge("runtime/hardware_threads")
      ->Set(static_cast<double>(hw > 0 ? static_cast<int>(hw)
                                       : HardwareThreads()));
  reg->GetGauge("runtime/worker_threads")
      ->Set(static_cast<double>(worker_threads > 0 ? worker_threads
                                                   : HardwareThreads()));
#ifdef _OPENMP
  reg->GetGauge("runtime/openmp")->Set(1.0);
#else
  reg->GetGauge("runtime/openmp")->Set(0.0);
#endif
}

void CollectShards(const std::vector<ShardObsStats>& shards,
                   uint64_t migrations, MetricsRegistry* reg) {
  if (shards.empty()) {
    return;
  }
  uint64_t total_owned = 0;
  uint64_t max_owned = 0;
  for (size_t k = 0; k < shards.size(); ++k) {
    const ShardObsStats& s = shards[k];
    const std::string prefix = "shard/" + std::to_string(k) + "/";
    reg->GetCounter(prefix + "owned_agents")->Set(s.owned_agents);
    reg->GetCounter(prefix + "ghosts_shipped")->Set(s.ghosts_shipped);
    reg->GetCounter(prefix + "planes")
        ->Set(static_cast<uint64_t>(s.end_plane - s.first_plane));
    total_owned += s.owned_agents;
    max_owned = std::max(max_owned, s.owned_agents);
  }
  reg->GetCounter("shard/count")->Set(shards.size());
  reg->GetCounter("shard/migrations")->Set(migrations);
  // Imbalance relative to the perfectly balanced share: the slowest shard
  // bounds the step, so max/share is the wall-clock overhead factor the
  // partitioner owes (kAdaptive exists to pull this toward 1.0).
  const double share =
      total_owned > 0
          ? static_cast<double>(total_owned) / static_cast<double>(shards.size())
          : 0.0;
  double mean_dev = 0.0;
  if (share > 0.0) {
    for (const ShardObsStats& s : shards) {
      mean_dev += std::abs(static_cast<double>(s.owned_agents) - share);
    }
    mean_dev /= share * static_cast<double>(shards.size());
  }
  reg->GetGauge("shard/load_imbalance_max")
      ->Set(share > 0.0 ? static_cast<double>(max_owned) / share : 1.0);
  // Mean relative deviation from the balanced share (0 = perfectly even).
  reg->GetGauge("shard/load_imbalance_mean")->Set(mean_dev);
}

void CollectPerfSession(const PerfSession* session, MetricsRegistry* reg) {
  if (session == nullptr) {
    return;
  }
  reg->GetGauge("perf/available")->Set(session->available() ? 1.0 : 0.0);
  if (!session->available()) {
    return;
  }
  for (const PerfSession::OpEntry& e : session->entries()) {
    const std::string prefix = "perf/" + e.name + "/";
    reg->GetGauge(prefix + "cycles")
        ->Set(static_cast<double>(e.total.cycles));
    reg->GetGauge(prefix + "instructions")
        ->Set(static_cast<double>(e.total.instructions));
    if (session->has_llc_misses()) {
      reg->GetGauge(prefix + "llc_misses")
          ->Set(static_cast<double>(e.total.llc_misses));
    }
    if (session->has_branch_misses()) {
      reg->GetGauge(prefix + "branch_misses")
          ->Set(static_cast<double>(e.total.branch_misses));
    }
    reg->GetGauge(prefix + "ipc")->Set(e.total.Ipc());
  }
}

}  // namespace biosim::obs
