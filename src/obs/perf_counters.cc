#include "obs/perf_counters.h"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#if __has_include(<linux/perf_event.h>)
#define BIOSIM_PERF_BACKEND 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif
#endif

namespace biosim::obs {

std::atomic<PerfSession*> PerfSession::current_{nullptr};

namespace {

/// True when the environment forces the null backend.
bool ForcedOff() {
  const char* v = std::getenv("BIOSIM_PERF");
  return v != nullptr && std::strcmp(v, "off") == 0;
}

#ifdef BIOSIM_PERF_BACKEND

int PerfEventOpen(perf_event_attr* attr, int group_fd) {
  // pid=0, cpu=-1: count this thread, on any CPU it runs on.
  return static_cast<int>(syscall(SYS_perf_event_open, attr, 0, -1, group_fd,
                                  0));
}

perf_event_attr MakeAttr(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  // Counting user-space only keeps the group openable at
  // perf_event_paranoid <= 2 (the common distro default); kernel-side
  // cycles are not interesting for the simulation loop anyway.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  attr.disabled = 0;
  return attr;
}

const char* ErrnoName(int err) {
  switch (err) {
    case EACCES:
      return "EACCES (perf_event_paranoid?)";
    case EPERM:
      return "EPERM (perf_event_paranoid?)";
    case ENOSYS:
      return "ENOSYS (no perf_event_open)";
    case ENOENT:
      return "ENOENT (event unsupported)";
    case ENODEV:
      return "ENODEV (no PMU)";
    default:
      return std::strerror(err);
  }
}

#endif  // BIOSIM_PERF_BACKEND

}  // namespace

PerfSession::PerfSession() {
  if (ForcedOff()) {
    reason_ = "disabled by BIOSIM_PERF=off";
    return;
  }
#ifdef BIOSIM_PERF_BACKEND
  // Leader: CPU cycles. If this one cannot open, nothing hardware-side can.
  perf_event_attr cycles =
      MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fds_[0] = PerfEventOpen(&cycles, -1);
  if (fds_[0] < 0) {
    reason_ = std::string("perf_event_open: ") + ErrnoName(errno);
    return;
  }
  // Members join the leader's group so one read() snapshots all of them
  // atomically. Instructions must open for IPC to mean anything; LLC and
  // branch misses are optional (absent on some virtualized PMUs) and the
  // task clock is a software event, which always schedules.
  perf_event_attr instr =
      MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fds_[1] = PerfEventOpen(&instr, fds_[0]);
  if (fds_[1] < 0) {
    reason_ = std::string("perf_event_open(instructions): ") +
              ErrnoName(errno);
    close(fds_[0]);
    fds_[0] = -1;
    return;
  }
  perf_event_attr llc = MakeAttr(PERF_TYPE_HARDWARE,
                                 PERF_COUNT_HW_CACHE_MISSES);
  fds_[2] = PerfEventOpen(&llc, fds_[0]);
  has_llc_ = fds_[2] >= 0;
  perf_event_attr branch =
      MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
  fds_[3] = PerfEventOpen(&branch, fds_[0]);
  has_branch_ = fds_[3] >= 0;
  perf_event_attr clock =
      MakeAttr(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
  fds_[4] = PerfEventOpen(&clock, fds_[0]);

  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  available_ = true;
#else
  reason_ = "perf_event_open not supported on this platform";
#endif
}

PerfSession::~PerfSession() {
#ifdef BIOSIM_PERF_BACKEND
  for (int& fd : fds_) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
#endif
}

CounterSample PerfSession::Read() const {
  CounterSample s;
#ifdef BIOSIM_PERF_BACKEND
  if (!available_) {
    return s;
  }
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr] in
  // group-join order (only successfully opened members are in the group).
  uint64_t buf[3 + 5] = {0};
  ssize_t n = read(fds_[0], buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(uint64_t))) {
    return s;
  }
  s.time_enabled_ns = buf[1];
  s.time_running_ns = buf[2];
  size_t slot = 3;
  uint64_t nr = buf[0];
  auto next = [&]() -> uint64_t { return slot - 3 < nr ? buf[slot++] : 0; };
  s.cycles = next();
  s.instructions = next();
  if (has_llc_) {
    s.llc_misses = next();
  }
  if (has_branch_) {
    s.branch_misses = next();
  }
  if (fds_[4] >= 0) {
    s.task_clock_ns = next();
  }
#endif
  return s;
}

void PerfSession::Accumulate(const char* name, const CounterSample& delta) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    it = index_.emplace(name, entries_.size()).first;
    entries_.push_back(OpEntry{name, {}, 0});
  }
  OpEntry& e = entries_[it->second];
  e.total.Accumulate(delta);
  ++e.samples;
}

const PerfSession::OpEntry* PerfSession::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

json::Value PerfSession::ToJson() const {
  json::Value v = json::Value::MakeObject();
  v.Set("available", available_);
  if (!available_) {
    v.Set("reason", reason_);
    return v;
  }
  v.Set("events", [&] {
    json::Value ev = json::Value::MakeObject();
    ev.Set("cycles", true);
    ev.Set("instructions", true);
    ev.Set("llc_misses", has_llc_);
    ev.Set("branch_misses", has_branch_);
    ev.Set("task_clock", fds_[4] >= 0);
    return ev;
  }());
  json::Value ops = json::Value::MakeObject();
  for (const OpEntry& e : entries_) {
    json::Value o = json::Value::MakeObject();
    o.Set("samples", e.samples);
    o.Set("cycles", e.total.cycles);
    o.Set("instructions", e.total.instructions);
    if (has_llc_) {
      o.Set("llc_misses", e.total.llc_misses);
    }
    if (has_branch_) {
      o.Set("branch_misses", e.total.branch_misses);
    }
    o.Set("task_clock_ns", e.total.task_clock_ns);
    o.Set("ipc", e.total.Ipc());
    o.Set("effective_ghz", e.total.EffectiveGhz());
    o.Set("running_fraction", e.total.RunningFraction());
    ops.Set(e.name, std::move(o));
  }
  v.Set("ops", std::move(ops));
  return v;
}

}  // namespace biosim::obs
