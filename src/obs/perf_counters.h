// Hardware performance-counter sampling for the scheduler's per-op spans.
//
// A PerfSession owns one perf_event_open group — cycles (leader),
// instructions, LLC misses, branch misses, plus the task-clock software
// event — opened for the calling (scheduler) thread and read atomically as
// a group at span boundaries. PERF_SCOPE("op") mirrors TRACE_SCOPE: the
// delta between the group read at construction and at destruction is
// accumulated under the op name, so the run report can state what the
// hardware actually did per scheduler operation, next to the wall clock.
//
// Design constraints, in order (same contract as obs/trace.h):
//
//   1. Zero overhead when off. PERF_SCOPE compiles to one relaxed atomic
//      load and a branch on a nullptr session — no syscall, no read.
//   2. Graceful degradation. perf_event_open is Linux-only and gated by
//      /proc/sys/kernel/perf_event_paranoid (and seccomp in many
//      containers). Whenever the group cannot be opened — wrong OS, ENOSYS,
//      EACCES/EPERM, missing PMU events — the session stays alive and
//      reports `available: false` with a reason; reads return zero deltas
//      and nothing ever crashes. BIOSIM_PERF=off forces this null backend
//      (used by tests and for A/B-ing the sampling overhead itself).
//   3. Honest numbers. Group reads carry time_enabled/time_running so
//      multiplexed counters are visible as such (scaled values are
//      reported alongside the raw running fraction, never silently).
//
// Scope of measurement: the group counts the thread that constructed the
// session (plus nothing else), which is the scheduler thread. Under
// ExecMode::kParallel that thread is one OpenMP worker among N doing ~1/N
// of the work, so per-op counters are a per-worker sample, not a machine
// total; serial runs are covered exactly. docs/observability.md discusses
// reading both.
#ifndef BIOSIM_OBS_PERF_COUNTERS_H_
#define BIOSIM_OBS_PERF_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "obs/json.h"

namespace biosim::obs {

/// One group read (cumulative since enable) or a difference of two reads.
/// All zeros when the backend is unavailable.
struct CounterSample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t task_clock_ns = 0;
  /// Group scheduling times, for multiplexing detection: running < enabled
  /// means the PMU was oversubscribed and the raw counts cover only the
  /// running fraction.
  uint64_t time_enabled_ns = 0;
  uint64_t time_running_ns = 0;

  CounterSample operator-(const CounterSample& o) const {
    auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
    CounterSample d;
    d.cycles = sub(cycles, o.cycles);
    d.instructions = sub(instructions, o.instructions);
    d.llc_misses = sub(llc_misses, o.llc_misses);
    d.branch_misses = sub(branch_misses, o.branch_misses);
    d.task_clock_ns = sub(task_clock_ns, o.task_clock_ns);
    d.time_enabled_ns = sub(time_enabled_ns, o.time_enabled_ns);
    d.time_running_ns = sub(time_running_ns, o.time_running_ns);
    return d;
  }

  void Accumulate(const CounterSample& d) {
    cycles += d.cycles;
    instructions += d.instructions;
    llc_misses += d.llc_misses;
    branch_misses += d.branch_misses;
    task_clock_ns += d.task_clock_ns;
    time_enabled_ns += d.time_enabled_ns;
    time_running_ns += d.time_running_ns;
  }

  double Ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  /// Mean clock while the thread was on-CPU, in GHz.
  double EffectiveGhz() const {
    return task_clock_ns > 0 ? static_cast<double>(cycles) /
                                   static_cast<double>(task_clock_ns)
                             : 0.0;
  }
  /// Fraction of the enabled time the group was actually counting (1.0 =
  /// no multiplexing).
  double RunningFraction() const {
    return time_enabled_ns > 0 ? static_cast<double>(time_running_ns) /
                                     static_cast<double>(time_enabled_ns)
                               : 1.0;
  }
};

/// Per-op accumulation of counter deltas, installed like a TraceSession.
/// Not thread-safe by design: only the scheduler thread records (the group
/// counts only that thread, so cross-thread records would be meaningless).
class PerfSession {
 public:
  /// Opens the counter group for the calling thread. On any failure the
  /// session is still fully usable but available() is false.
  PerfSession();
  ~PerfSession();

  PerfSession(const PerfSession&) = delete;
  PerfSession& operator=(const PerfSession&) = delete;

  static PerfSession* current() {
    return current_.load(std::memory_order_relaxed);
  }
  static void SetCurrent(PerfSession* session) {
    current_.store(session, std::memory_order_release);
  }

  /// True when the hardware group opened; false on non-Linux builds, under
  /// restrictive perf_event_paranoid, or with BIOSIM_PERF=off.
  bool available() const { return available_; }
  /// Human-readable cause when !available() ("perf_event_open: EACCES
  /// (perf_event_paranoid?)", "disabled by BIOSIM_PERF=off", ...).
  const std::string& unavailable_reason() const { return reason_; }
  /// Which optional events opened (cycles/instructions always accompany an
  /// available group; LLC or branch counters may be missing on some PMUs).
  bool has_llc_misses() const { return has_llc_; }
  bool has_branch_misses() const { return has_branch_; }

  /// Cumulative group read since session construction; zeros when
  /// unavailable.
  CounterSample Read() const;

  /// Add a delta under `name` (created on first use, first-seen order).
  void Accumulate(const char* name, const CounterSample& delta);

  struct OpEntry {
    std::string name;
    CounterSample total;
    uint64_t samples = 0;
  };
  const std::deque<OpEntry>& entries() const { return entries_; }
  const OpEntry* Find(const std::string& name) const;

  /// The report-v2 "perf_counters" section: availability plus the per-op
  /// table of raw deltas and derived rates (ipc, effective GHz, running
  /// fraction). Op keys are emitted in first-seen (pipeline) order.
  json::Value ToJson() const;

 private:
  static std::atomic<PerfSession*> current_;

  // Leader fd plus member fds, in CounterSample field order; -1 = not open.
  // Opaque ints so the header stays OS-neutral.
  int fds_[5] = {-1, -1, -1, -1, -1};
  bool available_ = false;
  bool has_llc_ = false;
  bool has_branch_ = false;
  std::string reason_;

  std::deque<OpEntry> entries_;  // stable addresses, first-seen order
  std::unordered_map<std::string, size_t> index_;
};

/// RAII per-op sampling scope: group-read at construction and destruction,
/// accumulate the delta under `name` (a string literal in practice).
class PerfScope {
 public:
  explicit PerfScope(const char* name)
      : session_(PerfSession::current()), name_(name) {
    if (session_ != nullptr && session_->available()) {
      start_ = session_->Read();
    }
  }
  ~PerfScope() {
    if (session_ != nullptr && session_->available()) {
      session_->Accumulate(name_, session_->Read() - start_);
    }
  }

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  PerfSession* session_;
  const char* name_;
  CounterSample start_;
};

}  // namespace biosim::obs

#define BIOSIM_PERF_CONCAT2(a, b) a##b
#define BIOSIM_PERF_CONCAT(a, b) BIOSIM_PERF_CONCAT2(a, b)
/// Hardware-counter span covering the enclosing scope; pairs with
/// TRACE_SCOPE on the scheduler's operations.
#define PERF_SCOPE(name) \
  ::biosim::obs::PerfScope BIOSIM_PERF_CONCAT(perf_scope_, __LINE__)(name)

#endif  // BIOSIM_OBS_PERF_COUNTERS_H_
