// CPU-side roofline join: measured hardware counters vs the analytical
// machine model, per scheduler op.
//
// src/roofline/ert.h places kernels on the fig12 plot using *modeled*
// FLOP/byte (interaction_force.h's kForceFlops accounting) and the
// simulated device's ceilings. This header supplies the measured column:
// given an op's wall clock, its model work (flops/bytes from the same
// accounting), and the per-op counter deltas from obs/perf_counters.h, it
// derives
//
//   measured.gflops          model flops over measured seconds — the
//                            "achieved" y-coordinate, fig12 convention
//   measured.ipc             instructions / cycles
//   measured.bytes_per_cycle DRAM traffic per cycle (LLC misses x 64 B)
//   measured.ai              model flops / measured DRAM bytes
//   model.ai                 model flops / model bytes
//   ai_vs_model              measured.ai / model.ai — >1 means the cache
//                            absorbed traffic the model charges to DRAM
//                            (e.g. the Z-order permutation working), <1
//                            means extra traffic the model does not see.
//
// Counter caveats propagate: entries without counters emit the model side
// only, and LLC-dependent fields are omitted when the PMU lacks the event.
#ifndef BIOSIM_ROOFLINE_CPU_ROOFLINE_H_
#define BIOSIM_ROOFLINE_CPU_ROOFLINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/perf_counters.h"
#include "roofline/ert.h"

namespace biosim::roofline {

/// Cache-line granularity used to convert LLC misses to DRAM bytes.
inline constexpr uint64_t kCacheLineBytes = 64;

/// Model DRAM bytes per force evaluation: two positions (3 doubles each)
/// plus two diameters, the machine-model accounting used for fig12's
/// analytical x-coordinate. 24*2 + 8*2 = 64.
inline constexpr uint64_t kModelBytesPerForceEval = 64;

/// One scheduler op's inputs to the join. `model_flops`/`model_bytes` are
/// zero when no analytical accounting exists for the op (counters are
/// still reported; the model columns are omitted).
struct OpMeasurement {
  std::string name;
  double wall_ms = 0.0;
  uint64_t model_flops = 0;
  uint64_t model_bytes = 0;
  bool has_counters = false;
  bool has_llc = false;
  obs::CounterSample counters;  // per-op delta, not cumulative
};

/// Convenience: the mechanical-forces op's model work from its evaluation
/// count (kForceFlops / kModelBytesPerForceEval per evaluation).
OpMeasurement ForceOpMeasurement(double wall_ms, uint64_t force_evaluations);

/// The report-v2 "roofline" section: one entry per op, model and measured
/// columns as described above. Ops appear in input order.
obs::json::Value MeasuredRooflineJson(const std::vector<OpMeasurement>& ops);

/// Places measured ops on the fig12 plot: one RooflinePoint per op that
/// has both a model and measured data, using measured AI when LLC misses
/// are available and the model AI otherwise. Feed to
/// EmpiricalRoofline::Table next to the analytical points.
std::vector<RooflinePoint> MeasuredPoints(
    const std::vector<OpMeasurement>& ops);

}  // namespace biosim::roofline

#endif  // BIOSIM_ROOFLINE_CPU_ROOFLINE_H_
