#include "roofline/ert.h"

#include <algorithm>
#include <cstdio>

#include "gpusim/device.h"

namespace biosim::roofline {

namespace {

/// ERT-style streaming kernel: each thread loads one element, applies
/// `flops_per_elem` fused multiply-adds, stores the result. AI is then
/// flops_per_elem / (2 * sizeof(T)) when the working set streams from DRAM.
template <typename T>
double RunStream(gpusim::Device& dev, size_t n, int flops_per_elem) {
  auto buf = dev.Alloc<T>(n);
  auto out = dev.Alloc<T>(n);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<T>(i % 97) * static_cast<T>(0.01);
  }
  dev.ResetCache();
  double before = dev.KernelMs();
  dev.Launch(
      {"ert_stream", (n + 255) / 256, 256}, [&](gpusim::BlockCtx& blk) {
        blk.for_each_lane([&](gpusim::Lane& t) {
          size_t i = t.gtid();
          if (i >= n) {
            return;
          }
          T v = t.ld(buf, i);
          T acc = v;
          for (int k = 0; k < flops_per_elem / 2; ++k) {
            acc = acc * static_cast<T>(1.0000001) + v;  // FMA = 2 FLOPs
          }
          if constexpr (std::is_same_v<T, float>) {
            t.flops32(static_cast<uint64_t>(flops_per_elem));
          } else {
            t.flops64(static_cast<uint64_t>(flops_per_elem));
          }
          t.st(out, i, acc);
        });
      });
  return dev.KernelMs() - before;
}

}  // namespace

EmpiricalRoofline::EmpiricalRoofline(gpusim::DeviceSpec spec,
                                     size_t working_set_bytes)
    : spec_(std::move(spec)), working_set_bytes_(working_set_bytes) {}

RooflineCeilings EmpiricalRoofline::Measure() {
  RooflineCeilings c;
  points_.clear();

  size_t n = working_set_bytes_ / sizeof(float);

  // Sweep FLOPs per element from pure streaming to compute-saturating, like
  // ERT's unrolled FMA ladder.
  for (int flops : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}) {
    gpusim::Device dev(spec_);
    dev.SetMeterStride(16);  // the stream is uniform; sampling is exact here
    double ms = RunStream<float>(dev, n, flops);
    double total_flops = static_cast<double>(n) * flops;
    double bytes = static_cast<double>(n) * 2 * sizeof(float);  // ld + st
    RooflinePoint pt;
    pt.label = "ert_fp32_" + std::to_string(flops);
    pt.arithmetic_intensity = total_flops / bytes;
    pt.gflops = total_flops / (ms * 1e6);
    points_.push_back(pt);

    c.fp32_peak_gflops = std::max(c.fp32_peak_gflops, pt.gflops);
    c.dram_bandwidth_gbps =
        std::max(c.dram_bandwidth_gbps, pt.gflops / pt.arithmetic_intensity);
  }

  // FP64 compute roof from one high-intensity double run.
  {
    gpusim::Device dev(spec_);
    dev.SetMeterStride(16);
    size_t nd = working_set_bytes_ / sizeof(double);
    double ms = RunStream<double>(dev, nd, 2048);
    c.fp64_peak_gflops = static_cast<double>(nd) * 2048 / (ms * 1e6);
  }

  c.l2_bandwidth_gbps = spec_.l2_bandwidth_gbps;  // not separable by streaming
  return c;
}

std::string EmpiricalRoofline::Table(
    const RooflineCeilings& ceilings,
    const std::vector<RooflinePoint>& kernels) {
  std::string out;
  char line[256];
  snprintf(line, sizeof(line),
           "empirical ceilings: FP32 peak %.0f GFLOP/s, FP64 peak %.0f "
           "GFLOP/s, DRAM %.0f GB/s\n",
           ceilings.fp32_peak_gflops, ceilings.fp64_peak_gflops,
           ceilings.dram_bandwidth_gbps);
  out += line;
  out +=
      "kernel                      AI(flop/B)   GFLOP/s   attainable   "
      "%of_roof\n";
  for (const auto& k : kernels) {
    double roof = ceilings.Attainable(k.arithmetic_intensity);
    snprintf(line, sizeof(line), "%-26s %11.3f %9.1f %12.1f %9.1f%%\n",
             k.label.c_str(), k.arithmetic_intensity, k.gflops, roof,
             roof > 0 ? 100.0 * k.gflops / roof : 0.0);
    out += line;
  }
  return out;
}

}  // namespace biosim::roofline
