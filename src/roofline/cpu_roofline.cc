#include "roofline/cpu_roofline.h"

#include <utility>

#include "physics/interaction_force.h"

namespace biosim::roofline {

OpMeasurement ForceOpMeasurement(double wall_ms,
                                 uint64_t force_evaluations) {
  OpMeasurement m;
  m.name = "mechanical forces";
  m.wall_ms = wall_ms;
  m.model_flops = force_evaluations * static_cast<uint64_t>(kForceFlops);
  m.model_bytes = force_evaluations * kModelBytesPerForceEval;
  return m;
}

obs::json::Value MeasuredRooflineJson(const std::vector<OpMeasurement>& ops) {
  using obs::json::Value;
  Value section = Value::MakeObject();
  section.Set("flop_accounting",
              "machine-model flops (interaction_force.h), measured time "
              "and traffic");
  section.Set("cache_line_bytes", kCacheLineBytes);
  Value table = Value::MakeObject();
  for (const OpMeasurement& op : ops) {
    Value row = Value::MakeObject();
    row.Set("wall_ms", op.wall_ms);
    double wall_s = op.wall_ms / 1e3;
    bool has_model = op.model_flops > 0;
    if (has_model) {
      Value model = Value::MakeObject();
      model.Set("flops", op.model_flops);
      model.Set("bytes", op.model_bytes);
      if (op.model_bytes > 0) {
        model.Set("ai", static_cast<double>(op.model_flops) /
                            static_cast<double>(op.model_bytes));
      }
      row.Set("model", std::move(model));
    }
    if (op.has_counters) {
      Value meas = Value::MakeObject();
      meas.Set("ipc", op.counters.Ipc());
      meas.Set("effective_ghz", op.counters.EffectiveGhz());
      if (has_model && wall_s > 0) {
        meas.Set("gflops",
                 static_cast<double>(op.model_flops) / wall_s / 1e9);
      }
      if (op.has_llc) {
        uint64_t dram_bytes = op.counters.llc_misses * kCacheLineBytes;
        meas.Set("dram_bytes", dram_bytes);
        if (op.counters.cycles > 0) {
          meas.Set("bytes_per_cycle",
                   static_cast<double>(dram_bytes) /
                       static_cast<double>(op.counters.cycles));
        }
        if (has_model && dram_bytes > 0) {
          double measured_ai = static_cast<double>(op.model_flops) /
                               static_cast<double>(dram_bytes);
          meas.Set("ai", measured_ai);
          if (op.model_bytes > 0) {
            double model_ai = static_cast<double>(op.model_flops) /
                              static_cast<double>(op.model_bytes);
            meas.Set("ai_vs_model", measured_ai / model_ai);
          }
        }
      }
      row.Set("measured", std::move(meas));
    }
    table.Set(op.name, std::move(row));
  }
  section.Set("ops", std::move(table));
  return section;
}

std::vector<RooflinePoint> MeasuredPoints(
    const std::vector<OpMeasurement>& ops) {
  std::vector<RooflinePoint> points;
  for (const OpMeasurement& op : ops) {
    if (op.model_flops == 0 || op.wall_ms <= 0) {
      continue;
    }
    RooflinePoint p;
    p.label = op.name + " (measured)";
    double wall_s = op.wall_ms / 1e3;
    p.gflops = static_cast<double>(op.model_flops) / wall_s / 1e9;
    uint64_t dram_bytes =
        op.has_counters && op.has_llc ? op.counters.llc_misses *
                                            kCacheLineBytes
                                      : op.model_bytes;
    if (dram_bytes == 0) {
      continue;
    }
    p.arithmetic_intensity = static_cast<double>(op.model_flops) /
                             static_cast<double>(dram_bytes);
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace biosim::roofline
