// Empirical Roofline Tool (ERT) equivalent for the simulated device.
//
// The paper generates Fig. 12 with ERT: synthetic kernels of controlled
// arithmetic intensity are run on the machine to find the *empirical*
// compute ceiling and memory-bandwidth ceilings, then the application
// kernels are placed on the plot via their nvprof-measured AI and GFLOP/s.
// This class does the same against the SIMT simulator: streaming FMA
// kernels at a sweep of FLOPs-per-byte run through the full coalescer/L2/
// timing pipeline, establishing the ceilings that the mech kernels are then
// plotted against.
#ifndef BIOSIM_ROOFLINE_ERT_H_
#define BIOSIM_ROOFLINE_ERT_H_

#include <string>
#include <vector>

#include "gpusim/device_spec.h"

namespace biosim::roofline {

struct RooflinePoint {
  std::string label;
  double arithmetic_intensity = 0.0;  // FLOP per DRAM byte
  double gflops = 0.0;                // achieved
};

struct RooflineCeilings {
  double fp32_peak_gflops = 0.0;      // empirical compute roof
  double fp64_peak_gflops = 0.0;
  double dram_bandwidth_gbps = 0.0;   // empirical HBM/GDDR roof
  double l2_bandwidth_gbps = 0.0;

  /// Attainable FP32 performance at a given arithmetic intensity.
  double Attainable(double ai) const {
    double mem_bound = ai * dram_bandwidth_gbps;
    return mem_bound < fp32_peak_gflops ? mem_bound : fp32_peak_gflops;
  }
};

class EmpiricalRoofline {
 public:
  /// `working_set_bytes` sizes the streaming buffers (must exceed L2 to
  /// measure DRAM, not cache).
  explicit EmpiricalRoofline(gpusim::DeviceSpec spec,
                             size_t working_set_bytes = 64ull << 20);

  /// Run the microkernel sweep; returns the empirical ceilings.
  RooflineCeilings Measure();

  /// The sweep's raw points (one per trial intensity), for plotting.
  const std::vector<RooflinePoint>& sweep_points() const { return points_; }

  /// Render a gnuplot-ready table: ceilings plus the given kernel points.
  static std::string Table(const RooflineCeilings& ceilings,
                           const std::vector<RooflinePoint>& kernels);

 private:
  gpusim::DeviceSpec spec_;
  size_t working_set_bytes_;
  std::vector<RooflinePoint> points_;
};

}  // namespace biosim::roofline

#endif  // BIOSIM_ROOFLINE_ERT_H_
