#include "app/runner.h"

#include <cmath>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/export.h"
#include "core/timer.h"
#include "core/timeseries.h"
#include "gpu/gpu_mechanical_op.h"
#include "spatial/null_environment.h"

namespace biosim::app {

namespace {

double SpaceForDensity(size_t agents, double radius, double n) {
  double sphere = 4.0 / 3.0 * math::kPi * radius * radius * radius;
  return std::cbrt(static_cast<double>(agents) * sphere / n);
}

}  // namespace

std::unique_ptr<Simulation> BuildSimulation(const RunConfig& cfg) {
  cfg.Validate();

  Param param;
  param.random_seed = cfg.seed;
  param.simulation_time_step = cfg.timestep;
  param.simulation_max_displacement = cfg.max_displacement;
  param.min_bound = 0.0;
  param.max_bound = cfg.max_bound;
  if (cfg.boundary == "torus") {
    param.boundary_mode = BoundaryMode::kTorus;
  } else if (cfg.boundary == "open") {
    param.bound_space = false;
  }
  if (cfg.model_type == "random_cloud") {
    // Size the cube for the requested density (benchmark-B style).
    param.max_bound =
        SpaceForDensity(cfg.agents, cfg.diameter / 2.0 * 2.0, cfg.density);
  }

  auto sim = std::make_unique<Simulation>(param);

  if (cfg.model_type == "cell_division") {
    sim->Create3DCellGrid(cfg.cells_per_dim, cfg.divide_threshold,
                          cfg.diameter, cfg.divide_threshold,
                          cfg.growth_rate);
  } else {
    sim->CreateRandomCells(cfg.agents, cfg.diameter);
  }

  if (cfg.backend_type == "gpu") {
    gpusim::DeviceSpec spec = cfg.gpu_device == "v100"
                                  ? gpusim::DeviceSpec::TeslaV100()
                                  : gpusim::DeviceSpec::GTX1080Ti();
    gpu::GpuMechanicsOptions opts =
        gpu::GpuMechanicsOptions::Version(cfg.gpu_version, std::move(spec));
    opts.meter_stride = cfg.meter_stride;
    opts.parallel_blocks = cfg.parallel_blocks;
    opts.sanitize = cfg.sanitize;
    opts.racy_grid_build = cfg.racy_grid_build;
    sim->SetEnvironment(std::make_unique<NullEnvironment>());
    sim->SetMechanicsBackend(std::make_unique<gpu::GpuMechanicalOp>(opts));
  }
  return sim;
}

RunSummary ExecuteRun(const RunConfig& cfg) {
  auto sim = BuildSimulation(cfg);

  TimeSeriesRecorder recorder;
  recorder.AddMetric("population", metrics::PopulationSize);
  recorder.AddMetric("mean_diameter", metrics::MeanDiameter);
  recorder.AddMetric("total_volume", metrics::TotalVolume);

  RunSummary summary;
  summary.initial_agents = sim->rm().size();

  Timer t;
  for (uint64_t s = 0; s < cfg.steps; ++s) {
    recorder.Record(*sim);
    sim->Simulate(1);
  }
  recorder.Record(*sim);
  summary.wall_ms = t.ElapsedMs();
  summary.final_agents = sim->rm().size();
  summary.profile = sim->profile().ToString();
  if (auto* gpu_op =
          dynamic_cast<gpu::GpuMechanicalOp*>(&sim->mechanics_backend())) {
    summary.gpu_simulated_ms = gpu_op->SimulatedMs();
    if (const gpusim::Sanitizer* san = gpu_op->device().sanitizer()) {
      summary.sanitizer_hazards = san->report().total();
      summary.sanitizer_report = san->report().ToString();
    }
  }

  auto require = [](bool ok, const std::string& what) {
    if (!ok) {
      throw std::runtime_error("failed to write " + what);
    }
  };
  if (!cfg.timeseries_path.empty()) {
    require(recorder.WriteCsv(cfg.timeseries_path), cfg.timeseries_path);
  }
  if (!cfg.vtk_path.empty()) {
    require(ExportCellsVtk(sim->rm(), cfg.vtk_path), cfg.vtk_path);
  }
  if (!cfg.csv_path.empty()) {
    require(ExportCellsCsv(sim->rm(), cfg.csv_path), cfg.csv_path);
  }
  if (!cfg.checkpoint_path.empty()) {
    require(SaveCheckpoint(sim->rm(), cfg.checkpoint_path),
            cfg.checkpoint_path);
  }
  return summary;
}

}  // namespace biosim::app
