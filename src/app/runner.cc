#include "app/runner.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include <memory>
#include <vector>

#include "core/behaviors/secretion.h"
#include "core/checkpoint.h"
#include "core/export.h"
#include "core/timer.h"
#include "core/timeseries.h"
#include "gpu/gpu_mechanical_op.h"
#include "obs/flight_recorder.h"
#include "obs/gpu_trace.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "roofline/cpu_roofline.h"
#include "spatial/null_environment.h"
#include "spatial/uniform_grid.h"

namespace biosim::app {

namespace {

double SpaceForDensity(size_t agents, double radius, double n) {
  double sphere = 4.0 / 3.0 * math::kPi * radius * radius * radius;
  return std::cbrt(static_cast<double>(agents) * sphere / n);
}

/// Echo the effective configuration into the run report, so a report is
/// self-describing without the .ini file next to it.
obs::json::Value ConfigJson(const RunConfig& cfg) {
  obs::json::Value v = obs::json::Value::MakeObject();
  v.Set("steps", cfg.steps);
  v.Set("seed", cfg.seed);
  v.Set("max_bound", cfg.max_bound);
  v.Set("timestep", cfg.timestep);
  v.Set("max_displacement", cfg.max_displacement);
  v.Set("boundary", cfg.boundary);
  v.Set("threads", cfg.num_threads);
  v.Set("cpu_fast_path", cfg.cpu_fast_path);
  v.Set("simd", cfg.simd);
  v.Set("precision", cfg.precision);
  v.Set("zorder_every", cfg.zorder_every);
  v.Set("incremental_grid", cfg.incremental_grid);
  v.Set("overlap_ops", cfg.overlap_ops);
  if (cfg.shards > 0) {
    v.Set("shards", cfg.shards);
    v.Set("shard_balance", cfg.shard_balance);
  }
  v.Set("model_type", cfg.model_type);
  if (cfg.model_type == "cell_division") {
    v.Set("cells_per_dim", cfg.cells_per_dim);
    v.Set("divide_threshold", cfg.divide_threshold);
    v.Set("growth_rate", cfg.growth_rate);
  } else {
    v.Set("agents", cfg.agents);
    v.Set("density", cfg.density);
  }
  v.Set("diameter", cfg.diameter);
  if (cfg.substance_resolution > 0) {
    v.Set("substance_resolution", cfg.substance_resolution);
    v.Set("substance_diffusion", cfg.substance_diffusion);
    v.Set("substance_decay", cfg.substance_decay);
    v.Set("secretion_rate", cfg.secretion_rate);
  }
  v.Set("backend_type", cfg.backend_type);
  if (cfg.backend_type == "gpu") {
    v.Set("gpu_version", cfg.gpu_version);
    v.Set("gpu_device", cfg.gpu_device);
    v.Set("meter_stride", cfg.meter_stride);
    v.Set("parallel_blocks", cfg.parallel_blocks);
    v.Set("sanitize", cfg.sanitize);
    v.Set("racy_grid_build", cfg.racy_grid_build);
  }
  return v;
}

/// The worker count a run actually uses (0 in the config means hardware
/// concurrency), for environment.worker_threads.
int ResolvedWorkerThreads(const RunConfig& cfg) {
  return cfg.num_threads > 0 ? static_cast<int>(cfg.num_threads)
                             : HardwareThreads();
}

/// Per-step op wall-time deltas against a previous snapshot of the
/// cumulative profile. Names point into the profile's stable deque storage.
std::vector<std::pair<const char*, double>> OpDeltas(
    const OpProfile& profile, std::vector<double>* prev_totals) {
  std::vector<std::pair<const char*, double>> deltas;
  const auto& entries = profile.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    double prev = i < prev_totals->size() ? (*prev_totals)[i] : 0.0;
    deltas.emplace_back(entries[i].name.c_str(),
                        entries[i].total_ms() - prev);
  }
  prev_totals->resize(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    (*prev_totals)[i] = entries[i].total_ms();
  }
  return deltas;
}

/// Build the flight-recorder summary for the step just completed.
obs::FlightRecorder::StepRecord MakeStepRecord(
    const Simulation& sim, double step_wall_ms,
    std::vector<double>* prev_totals, const obs::CounterSample* delta) {
  obs::FlightRecorder::StepRecord rec;
  rec.step = sim.step();
  rec.state_hash = sim.StateHash();
  rec.agents = sim.rm().size();
  rec.substances = sim.diffusion_grid_count();
  rec.wall_ms = step_wall_ms;
  rec.op_ms = OpDeltas(const_cast<Simulation&>(sim).profile(), prev_totals);
  if (delta != nullptr) {
    rec.has_counters = true;
    rec.counters = *delta;
  }
  if (const ShardRuntime* srt = sim.shard_runtime()) {
    rec.shards = srt->shards();
    if (srt->ghosts_received().size() == srt->shards()) {
      for (uint64_t g : srt->ghosts_received()) {
        rec.shard_ghosts += g;
      }
    }
    rec.shard_migrations = srt->last_migrations();
  }
  return rec;
}

/// Test hook: BIOSIM_INJECT_DIVERGENCE=<step> makes VerifyDeterminism
/// report a fabricated hash mismatch at that step of the last comparison
/// run, exercising the real exit-3 + flight-dump path without needing a
/// genuinely nondeterministic build. Returns -1 when unset.
int64_t InjectedDivergenceStep() {
  const char* v = std::getenv("BIOSIM_INJECT_DIVERGENCE");
  return v != nullptr ? std::atoll(v) : -1;
}

}  // namespace

std::unique_ptr<Simulation> BuildSimulation(const RunConfig& cfg) {
  cfg.Validate();

  Param param;
  param.random_seed = cfg.seed;
  param.num_threads = cfg.num_threads;
  param.cpu_fast_path = cfg.cpu_fast_path;
  param.cpu_simd = cfg.simd;
  param.precision =
      cfg.precision == "fp32" ? Precision::kFp32 : Precision::kFp64;
  param.zorder_cadence = static_cast<uint32_t>(cfg.zorder_every);
  param.incremental_grid = cfg.incremental_grid;
  param.overlap_ops = cfg.overlap_ops;
  param.num_shards = cfg.shards;
  param.shard_balance = cfg.shard_balance == "adaptive"
                            ? ShardBalance::kAdaptive
                            : ShardBalance::kStatic;
  param.simulation_time_step = cfg.timestep;
  param.simulation_max_displacement = cfg.max_displacement;
  param.min_bound = 0.0;
  param.max_bound = cfg.max_bound;
  if (cfg.boundary == "torus") {
    param.boundary_mode = BoundaryMode::kTorus;
  } else if (cfg.boundary == "open") {
    param.bound_space = false;
  }
  if (cfg.model_type == "random_cloud") {
    // Size the cube for the requested density (benchmark-B style).
    param.max_bound =
        SpaceForDensity(cfg.agents, cfg.diameter / 2.0 * 2.0, cfg.density);
  }

  auto sim = std::make_unique<Simulation>(param);

  if (cfg.model_type == "cell_division") {
    sim->Create3DCellGrid(cfg.cells_per_dim, cfg.divide_threshold,
                          cfg.diameter, cfg.divide_threshold,
                          cfg.growth_rate);
  } else {
    sim->CreateRandomCells(cfg.agents, cfg.diameter);
  }

  if (cfg.substance_resolution > 0) {
    // One extracellular substance spanning the (possibly density-derived)
    // simulation cube; gives overlap_ops a diffusion op to run against.
    sim->AddDiffusionGrid(std::make_unique<DiffusionGrid>(
        "oxygen", sim->param().min_bound, sim->param().max_bound,
        cfg.substance_resolution, cfg.substance_diffusion,
        cfg.substance_decay));
    if (cfg.secretion_rate != 0.0) {
      for (size_t i = 0; i < sim->rm().size(); ++i) {
        sim->rm().AttachBehavior(static_cast<AgentIndex>(i),
                                 std::make_unique<Secretion>(
                                     "oxygen", cfg.secretion_rate));
      }
    }
  }

  if (cfg.backend_type == "gpu") {
    gpusim::DeviceSpec spec = cfg.gpu_device == "v100"
                                  ? gpusim::DeviceSpec::TeslaV100()
                                  : gpusim::DeviceSpec::GTX1080Ti();
    gpu::GpuMechanicsOptions opts =
        gpu::GpuMechanicsOptions::Version(cfg.gpu_version, std::move(spec));
    opts.meter_stride = cfg.meter_stride;
    opts.parallel_blocks = cfg.parallel_blocks;
    opts.sanitize = cfg.sanitize;
    opts.racy_grid_build = cfg.racy_grid_build;
    sim->SetEnvironment(std::make_unique<NullEnvironment>());
    sim->SetMechanicsBackend(std::make_unique<gpu::GpuMechanicalOp>(opts));
  }
  return sim;
}

DeterminismReport VerifyDeterminism(const RunConfig& cfg) {
  cfg.Validate();

  auto hash_trajectory = [](const RunConfig& run_cfg) {
    auto sim = BuildSimulation(run_cfg);
    std::vector<uint64_t> hashes;
    hashes.reserve(run_cfg.steps + 1);
    hashes.push_back(sim->StateHash());
    for (uint64_t s = 0; s < run_cfg.steps; ++s) {
      sim->Simulate(1);
      hashes.push_back(sim->StateHash());
    }
    return hashes;
  };

  // Reference, a same-config repeat (catches run-to-run scheduling
  // nondeterminism), and a single-thread run (catches any dependence on the
  // worker count; skipped when the configured count already is 1).
  std::vector<RunConfig> runs{cfg, cfg};
  if (cfg.num_threads != 1) {
    RunConfig serial = cfg;
    serial.num_threads = 1;
    runs.push_back(serial);
  }
  // Sharded configs additionally verify against the unsharded pipeline —
  // the sharding determinism contract promises bitwise-identical hashes for
  // ANY shard count, including zero (docs/sharding.md).
  if (cfg.shards > 0) {
    RunConfig unsharded = cfg;
    unsharded.shards = 0;
    runs.push_back(unsharded);
    RunConfig resharded = cfg;
    resharded.shards = cfg.shards == 1 ? 2 : cfg.shards / 2;
    runs.push_back(resharded);
  }

  int64_t inject_step = InjectedDivergenceStep();

  DeterminismReport report;
  report.runs = static_cast<int>(runs.size());
  std::vector<uint64_t> reference = hash_trajectory(runs[0]);
  report.deterministic = true;
  report.final_hash = reference.back();
  for (size_t r = 1; r < runs.size(); ++r) {
    // Comparison runs step incrementally against the reference so a
    // divergence stops the run at the offending step — which is exactly
    // when the flight-recorder ring still ends at that step.
    auto sim = BuildSimulation(runs[r]);
    std::unique_ptr<obs::FlightRecorder> flight;
    std::vector<double> prev_totals;
    if (!cfg.flight_recorder_path.empty()) {
      flight = std::make_unique<obs::FlightRecorder>(
          static_cast<size_t>(cfg.flight_recorder_depth));
    }
    for (size_t s = 0; s < reference.size(); ++s) {
      Timer step_timer;
      if (s > 0) {
        sim->Simulate(1);
      }
      uint64_t hash = sim->StateHash();
      if (inject_step >= 0 && r + 1 == runs.size() &&
          s == static_cast<size_t>(inject_step)) {
        hash ^= 1;  // fabricated single-bit divergence (test hook)
      }
      if (flight != nullptr) {
        obs::FlightRecorder::StepRecord rec = MakeStepRecord(
            *sim, s > 0 ? step_timer.ElapsedMs() : 0.0, &prev_totals,
            nullptr);
        rec.state_hash = hash;
        flight->RecordStep(rec);
      }
      if (hash != reference[s]) {
        report.deterministic = false;
        report.first_divergent_step = s;
        if (flight != nullptr) {
          obs::json::Value ctx = obs::json::Value::MakeObject();
          ctx.Set("run", static_cast<uint64_t>(r));
          ctx.Set("runs", static_cast<uint64_t>(runs.size()));
          ctx.Set("worker_threads",
                  static_cast<uint64_t>(runs[r].num_threads));
          ctx.Set("first_divergent_step", static_cast<uint64_t>(s));
          char hex[17];
          std::snprintf(hex, sizeof(hex), "%016llx",
                        static_cast<unsigned long long>(reference[s]));
          ctx.Set("expected_hash", hex);
          std::snprintf(hex, sizeof(hex), "%016llx",
                        static_cast<unsigned long long>(hash));
          ctx.Set("actual_hash", hex);
          flight->Dump(cfg.flight_recorder_path, "determinism-divergence",
                       &ctx);
        }
        return report;
      }
    }
  }
  return report;
}

RunSummary ExecuteRun(const RunConfig& cfg) {
  auto sim = BuildSimulation(cfg);

  TimeSeriesRecorder recorder;
  recorder.AddMetric("population", metrics::PopulationSize);
  recorder.AddMetric("mean_diameter", metrics::MeanDiameter);
  recorder.AddMetric("total_volume", metrics::TotalVolume);

  RunSummary summary;
  summary.initial_agents = sim->rm().size();

  auto require = [](bool ok, const std::string& what) {
    if (!ok) {
      throw std::runtime_error("failed to write " + what);
    }
  };

  auto* gpu_op =
      dynamic_cast<gpu::GpuMechanicalOp*>(&sim->mechanics_backend());
  auto* cpu_backend =
      dynamic_cast<CpuMechanicsBackend*>(&sim->mechanics_backend());

  std::unique_ptr<obs::PerfSession> perf;

  // Everything observability reads comes from the subsystems' cumulative
  // accounting, so a snapshot is just a fresh registry filled on demand.
  auto collect = [&](obs::MetricsRegistry* reg) {
    obs::CollectOpProfile(sim->profile(), reg);
    if (gpu_op != nullptr) {
      obs::CollectDevice(gpu_op->device(), reg);
    }
    if (DiffusionGrid* grid = sim->diffusion_grid()) {
      obs::CollectDiffusionGrid(*grid, reg);
    }
    if (const auto* ug = dynamic_cast<const UniformGridEnvironment*>(
            &sim->environment())) {
      obs::CollectUniformGrid(*ug, reg);
    }
    obs::CollectRuntime(reg, ResolvedWorkerThreads(cfg));
    if (perf != nullptr) {
      obs::CollectPerfSession(perf.get(), reg);
    }
    const ShardRuntime* srt = sim->shard_runtime();
    if (srt != nullptr && srt->partition().shards == srt->shards()) {
      // Copy into the obs-layer POD: obs does not link the engine.
      std::vector<obs::ShardObsStats> stats(srt->shards());
      const bool have_ghosts =
          srt->ghosts_received().size() == srt->shards();
      for (uint32_t k = 0; k < srt->shards(); ++k) {
        stats[k].owned_agents = srt->owned_rows(k).size();
        stats[k].ghosts_shipped = have_ghosts ? srt->ghosts_received()[k] : 0;
        stats[k].first_plane = srt->partition().first_plane(k);
        stats[k].end_plane = srt->partition().end_plane(k);
      }
      obs::CollectShards(stats, srt->last_migrations(), reg);
    }
  };

  std::unique_ptr<obs::MetricsJsonlWriter> metrics_out;
  if (!cfg.metrics_path.empty()) {
    metrics_out = std::make_unique<obs::MetricsJsonlWriter>(cfg.metrics_path);
    require(metrics_out->ok(), cfg.metrics_path);
  }

  // Tracing covers exactly the stepped run; installed only when requested,
  // so the default path keeps TRACE_SCOPE on its nullptr fast path.
  std::unique_ptr<obs::TraceSession> trace;
  if (!cfg.trace_path.empty()) {
    trace = std::make_unique<obs::TraceSession>();
    obs::TraceSession::SetCurrent(trace.get());
  }

  // Hardware counters mirror tracing: opt-in, installed for exactly the
  // stepped run, harmless when the syscall is unavailable (the session
  // then reports available: false and PERF_SCOPE reads nothing).
  if (cfg.perf_counters) {
    perf = std::make_unique<obs::PerfSession>();
    obs::PerfSession::SetCurrent(perf.get());
  }

  // The flight recorder keeps the last-N-step ring and owns the crash
  // handlers for the duration of the run.
  std::unique_ptr<obs::FlightRecorder> flight;
  std::vector<double> flight_prev_totals;
  if (!cfg.flight_recorder_path.empty()) {
    flight = std::make_unique<obs::FlightRecorder>(
        static_cast<size_t>(cfg.flight_recorder_depth));
    flight->InstallSignalHandlers(cfg.flight_recorder_path);
  }

  // Cumulative force evaluations for the roofline join (CPU backend's
  // counter is per-call, so accumulate across steps).
  uint64_t force_evaluations = 0;

  Timer t;
  double last_heartbeat_ms = 0.0;
  for (uint64_t s = 0; s < cfg.steps; ++s) {
    recorder.Record(*sim);
    obs::CounterSample perf_before;
    if (flight != nullptr && perf != nullptr && perf->available()) {
      perf_before = perf->Read();
    }
    Timer step_timer;
    sim->Simulate(1);
    if (cpu_backend != nullptr) {
      force_evaluations += cpu_backend->last_force_evaluations();
    }
    if (flight != nullptr) {
      obs::CounterSample delta;
      bool have_delta = perf != nullptr && perf->available();
      if (have_delta) {
        delta = perf->Read() - perf_before;
      }
      flight->RecordStep(MakeStepRecord(*sim, step_timer.ElapsedMs(),
                                        &flight_prev_totals,
                                        have_delta ? &delta : nullptr));
    }
    if (metrics_out != nullptr &&
        ((s + 1) % cfg.metrics_every == 0 || s + 1 == cfg.steps)) {
      obs::MetricsRegistry snapshot;
      collect(&snapshot);
      require(metrics_out->WriteSnapshot(s + 1, snapshot), cfg.metrics_path);
    }
    if (cfg.progress_seconds > 0.0) {
      double elapsed_ms = t.ElapsedMs();
      if (elapsed_ms - last_heartbeat_ms >= cfg.progress_seconds * 1e3 ||
          s + 1 == cfg.steps) {
        last_heartbeat_ms = elapsed_ms;
        double done = static_cast<double>(s + 1);
        double steps_per_sec = done / (elapsed_ms / 1e3);
        double eta_s = elapsed_ms > 0.0
                           ? (static_cast<double>(cfg.steps) - done) /
                                 steps_per_sec
                           : 0.0;
        std::fprintf(stderr,
                     "[biosim] step %llu/%llu  %.1f steps/s  eta %.1fs  "
                     "agents %zu  hash %08llx\n",
                     static_cast<unsigned long long>(s + 1),
                     static_cast<unsigned long long>(cfg.steps),
                     steps_per_sec, eta_s, sim->rm().size(),
                     static_cast<unsigned long long>(sim->StateHash() >>
                                                     32));
      }
    }
  }
  recorder.Record(*sim);
  summary.wall_ms = t.ElapsedMs();
  if (trace != nullptr) {
    obs::TraceSession::SetCurrent(nullptr);
  }
  if (perf != nullptr) {
    obs::PerfSession::SetCurrent(nullptr);
  }
  summary.final_agents = sim->rm().size();
  summary.profile = sim->profile().ToString();
  if (gpu_op != nullptr) {
    summary.gpu_simulated_ms = gpu_op->SimulatedMs();
    if (const gpusim::Sanitizer* san = gpu_op->device().sanitizer()) {
      summary.sanitizer_hazards = san->report().total();
      summary.sanitizer_report = san->report().ToString();
    }
  }

  if (trace != nullptr) {
    if (gpu_op != nullptr) {
      obs::AppendDeviceTimeline(gpu_op->device(), trace.get());
    }
    summary.trace_events = trace->event_count();
    summary.trace_dropped = trace->dropped();
    require(trace->WriteChromeJson(cfg.trace_path), cfg.trace_path);
  }

  // The run report is always built (biosim_run --json prints it); the file
  // is only written when configured.
  {
    obs::MetricsRegistry final_metrics;
    collect(&final_metrics);
    obs::json::Value report =
        obs::MakeRunReport("biosim_run", ResolvedWorkerThreads(cfg));
    report.Set("config", ConfigJson(cfg));
    obs::json::Value s = obs::json::Value::MakeObject();
    s.Set("steps", cfg.steps);
    s.Set("initial_agents", summary.initial_agents);
    s.Set("final_agents", summary.final_agents);
    s.Set("wall_ms", summary.wall_ms);
    if (gpu_op != nullptr) {
      s.Set("gpu_simulated_ms", summary.gpu_simulated_ms);
    }
    if (cfg.sanitize) {
      s.Set("sanitizer_hazards", summary.sanitizer_hazards);
    }
    if (trace != nullptr) {
      obs::json::Value tr = obs::json::Value::MakeObject();
      tr.Set("path", cfg.trace_path);
      tr.Set("events", summary.trace_events);
      tr.Set("dropped", summary.trace_dropped);
      s.Set("trace", std::move(tr));
    }
    report.Set("summary", std::move(s));
    report.Set("metrics", final_metrics.ToJson());
    if (perf != nullptr) {
      report.Set("perf_counters", perf->ToJson());
      // Roofline join: the measured column for fig12, model accounting
      // from the physics layer, traffic from the LLC-miss counter. Only
      // the CPU backend has the evaluation-count accounting.
      if (cpu_backend != nullptr) {
        std::vector<roofline::OpMeasurement> ops;
        roofline::OpMeasurement force = roofline::ForceOpMeasurement(
            sim->profile().TotalMs("mechanical forces"), force_evaluations);
        if (perf->available()) {
          if (const obs::PerfSession::OpEntry* e =
                  perf->Find("mechanical forces")) {
            force.has_counters = true;
            force.has_llc = perf->has_llc_misses();
            force.counters = e->total;
          }
        }
        ops.push_back(std::move(force));
        report.Set("roofline", roofline::MeasuredRooflineJson(ops));
      }
    }
    summary.report_json = report.Dump(2);
    if (!cfg.report_path.empty()) {
      require(obs::WriteReportFile(report, cfg.report_path), cfg.report_path);
    }
  }

  if (flight != nullptr) {
    flight->UninstallSignalHandlers();
  }

  if (!cfg.timeseries_path.empty()) {
    require(recorder.WriteCsv(cfg.timeseries_path), cfg.timeseries_path);
  }
  if (!cfg.vtk_path.empty()) {
    require(ExportCellsVtk(sim->rm(), cfg.vtk_path), cfg.vtk_path);
  }
  if (!cfg.csv_path.empty()) {
    require(ExportCellsCsv(sim->rm(), cfg.csv_path), cfg.csv_path);
  }
  if (!cfg.checkpoint_path.empty()) {
    require(SaveCheckpoint(sim->rm(), cfg.checkpoint_path),
            cfg.checkpoint_path);
  }
  return summary;
}

}  // namespace biosim::app
