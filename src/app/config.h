// Run configuration: a small INI-style format driving the biosim_run tool.
//
//   [simulation]
//   steps = 100
//   seed = 42
//   max_bound = 1000
//   timestep = 0.01
//   boundary = clamp              ; clamp | torus | open
//   threads = 0                   ; CPU workers; 0 = hardware concurrency
//   cpu_fast_path = true          ; fused CSR force kernel (docs/perf.md)
//   simd = false                  ; vectorize the fused kernel (docs/perf.md)
//   precision = fp64              ; fp64 | fp32 force-kernel pair math
//   zorder_every = 0              ; re-sort agents into Z-order every N steps
//   incremental_grid = true       ; patch the uniform grid instead of rebuilding
//   overlap_ops = false           ; overlap mechanics and diffusion (CPU only)
//   shards = 0                    ; spatial domain shards (docs/sharding.md); 0=off
//   shard_balance = static        ; static | adaptive plane-range sizing
//
//   [model]
//   type = cell_division          ; cell_division | random_cloud
//   cells_per_dim = 16            ; cell_division
//   agents = 10000                ; random_cloud
//   density = 27                  ; random_cloud (sizes the space)
//   diameter = 8
//   divide_threshold = 16
//   growth_rate = 40000
//   substance_resolution = 0      ; attach an "oxygen" grid with res^3 voxels (0=off)
//   substance_diffusion = 50      ; D in µm²/h
//   substance_decay = 0           ; mu in 1/h
//   secretion_rate = 0            ; per-agent Secretion("oxygen", rate); 0=off
//
//   [backend]
//   type = cpu                    ; cpu | gpu
//   gpu_version = 2               ; 0..4
//   gpu_device = 1080ti           ; 1080ti | v100
//   meter_stride = 8
//   parallel_blocks = false       ; host-parallel block execution (exact)
//   sanitize = false              ; GPU sanitizer (racecheck/memcheck/synccheck)
//   racy_grid_build = false       ; diagnostic: seed a known racy kernel
//
//   [output]
//   timeseries = out.csv
//   vtk = final.vtk
//   csv = final.csv
//   checkpoint = final.ckpt
//   trace = trace.json            ; Chrome/Perfetto trace of the run
//   metrics = metrics.jsonl       ; per-step metrics snapshots (JSON lines)
//   metrics_every = 1             ; snapshot cadence in steps
//   report = report.json          ; machine-readable run report
//   perf_counters = false         ; per-op hardware counters in the report
//   flight_recorder = crash.json  ; postmortem ring dump destination
//   flight_recorder_depth = 64    ; last-N steps kept in the ring
//   progress = 0                  ; stderr heartbeat every N seconds (0=off)
//
// Lines starting with '#' or ';' are comments; keys are section-scoped.
// Unknown sections/keys are errors (typos should not be silent).
#ifndef BIOSIM_APP_CONFIG_H_
#define BIOSIM_APP_CONFIG_H_

#include <cstdint>
#include <string>

namespace biosim::app {

struct RunConfig {
  // [simulation]
  uint64_t steps = 10;
  uint64_t seed = 42;
  double max_bound = 1000.0;
  double timestep = 0.01;
  double max_displacement = 3.0;
  std::string boundary = "clamp";  // clamp | torus | open
  /// CPU worker threads for parallel engine operations; 0 = hardware
  /// concurrency. Overridable via --threads and the BIOSIM_THREADS env var
  /// (the CI determinism sweep varies this; results must not depend on it).
  uint32_t num_threads = 0;
  /// Fused CSR force kernel on the uniform-grid CPU path (docs/perf.md);
  /// bitwise-identical to the generic callback path, so disabling it only
  /// trades speed. Ignored by the GPU backend.
  bool cpu_fast_path = true;
  /// Vectorize the fused force kernel (docs/perf.md). Opt-in: the vector
  /// kernel FMA-contracts the distance computation, so results are only
  /// tolerance-equal to the scalar reference (cpu_simd parity row), though
  /// still bitwise reproducible run-to-run, across thread counts and
  /// across vector widths. Requires cpu_fast_path; CPU backend only.
  bool simd = false;
  /// Pair-math precision of the CPU force kernel: "fp64" (default) or
  /// "fp32" (the paper's Improvement I on the host; implies the vectorized
  /// kernel and the cpu_fp32 parity bound). CPU backend only — the GPU
  /// ladder has its own FP32 versions.
  std::string precision = "fp64";
  /// Re-sort agents into Z-order every N steps on the CPU pipeline
  /// (0 = never). Cache-locality knob; permutes rows uid-stably.
  uint64_t zorder_every = 0;
  /// Maintain the uniform grid incrementally: re-bin only agents that
  /// crossed a box boundary, falling back to a full rebuild whenever the
  /// grid shape/bounds/population changed. Byte-identical results
  /// (Param::incremental_grid) — the knob only trades speed, kept here so
  /// the CI determinism sweep can exercise both paths.
  bool incremental_grid = true;
  /// Overlap mechanics and diffusion as a two-node task graph
  /// (Param::overlap_ops). CPU backend only; bitwise-neutral; no-op
  /// without a substance grid.
  bool overlap_ops = false;
  /// Spatial domain shards along the grid's z-planes (Param::num_shards,
  /// docs/sharding.md). 0 disables. StateHash is bitwise-identical for any
  /// shard count (the CI shard sweep enforces it). CPU backend only;
  /// requires cpu_fast_path; mutually exclusive with overlap_ops.
  uint32_t shards = 0;
  /// Plane-range sizing when shards > 0: "static" (equal plane counts) or
  /// "adaptive" (greedy split over the per-plane agent histogram).
  std::string shard_balance = "static";

  // [model]
  std::string model_type = "cell_division";
  size_t cells_per_dim = 8;       // cell_division
  size_t agents = 10000;          // random_cloud
  double density = 27.0;          // random_cloud
  double diameter = 8.0;
  double divide_threshold = 16.0;
  double growth_rate = 40000.0;
  /// Attach one "oxygen" DiffusionGrid with this resolution per axis
  /// (0 disables — the historical default: no substances). Needed to give
  /// overlap_ops a diffusion op to overlap from the CLI.
  size_t substance_resolution = 0;
  /// Diffusion coefficient D (µm²/h) of the attached substance.
  double substance_diffusion = 50.0;
  /// Decay constant mu (1/h) of the attached substance.
  double substance_decay = 0.0;
  /// If nonzero, attach Secretion("oxygen", rate) to every initial agent
  /// (concentration units per hour; negative = consumption). Requires
  /// substance_resolution > 0.
  double secretion_rate = 0.0;

  // [backend]
  std::string backend_type = "cpu";
  int gpu_version = 2;
  std::string gpu_device = "1080ti";
  int meter_stride = 8;
  /// Execute the blocks of block-independent kernels in parallel on the
  /// host; counters stay byte-identical to the serial engine (see
  /// GpuMechanicsOptions::parallel_blocks).
  bool parallel_blocks = false;
  /// Run every GPU launch under the compute-sanitizer-style analysis layer
  /// (gpusim/sanitizer.h); biosim_run exits non-zero if hazards are found.
  bool sanitize = false;
  /// Diagnostic: build the uniform grid with the deliberately racy kernel
  /// variant so a sanitized run has something to find (sanitizer
  /// validation; see GpuMechanicsOptions::racy_grid_build).
  bool racy_grid_build = false;

  // [output]
  std::string timeseries_path;
  std::string vtk_path;
  std::string csv_path;
  std::string checkpoint_path;
  /// Chrome-trace-event JSON timeline (host spans + virtual GPU tracks);
  /// empty disables tracing entirely (zero hot-loop overhead).
  std::string trace_path;
  /// JSON-lines file of per-step metrics snapshots; empty disables.
  std::string metrics_path;
  /// Snapshot cadence: write a metrics line every N steps (and always after
  /// the final step). Must be >= 1.
  uint64_t metrics_every = 1;
  /// Versioned machine-readable run report (obs/report.h); empty disables.
  std::string report_path;
  /// Sample per-op hardware counters (obs/perf_counters.h) and add the
  /// "perf_counters" + "roofline" report sections. Off by default (the
  /// hot loop keeps PERF_SCOPE on its nullptr fast path); degrades to
  /// `available: false` where perf_event_open is forbidden.
  bool perf_counters = false;
  /// Crash flight recorder (obs/flight_recorder.h): dump the last-N-step
  /// ring to this path on SIGSEGV/SIGABRT/SIGBUS or on a determinism
  /// divergence. Empty disables (no handlers installed).
  std::string flight_recorder_path;
  /// Ring capacity in steps for the flight recorder.
  uint64_t flight_recorder_depth = 64;
  /// Print a heartbeat (step, steps/s, ETA, StateHash prefix) to stderr
  /// every N seconds. 0 disables. Fractional seconds allowed (tests).
  double progress_seconds = 0.0;

  /// Throw std::invalid_argument on out-of-range values.
  void Validate() const;
};

/// Parse from file / from text. Throw std::runtime_error with a line-number
/// message on syntax errors or unknown keys.
RunConfig ParseConfigFile(const std::string& path);
RunConfig ParseConfigString(const std::string& text);

}  // namespace biosim::app

#endif  // BIOSIM_APP_CONFIG_H_
