// Configured-run driver: build a Simulation from a RunConfig, run it,
// produce the requested outputs. The biosim_run tool is a thin main()
// around this so the behavior is unit-testable.
#ifndef BIOSIM_APP_RUNNER_H_
#define BIOSIM_APP_RUNNER_H_

#include <memory>
#include <string>

#include "app/config.h"
#include "core/simulation.h"

namespace biosim::app {

/// Construct the configured simulation (population + backend), not yet run.
std::unique_ptr<Simulation> BuildSimulation(const RunConfig& cfg);

struct RunSummary {
  size_t initial_agents = 0;
  size_t final_agents = 0;
  double wall_ms = 0.0;
  /// Simulated device time if the backend is the GPU offload, else 0.
  double gpu_simulated_ms = 0.0;
  std::string profile;  // OpProfile::ToString()
  /// GPU sanitizer results (cfg.sanitize only): total hazard count and the
  /// compute-sanitizer-style text report.
  uint64_t sanitizer_hazards = 0;
  std::string sanitizer_report;
  /// The versioned machine-readable run report (obs/report.h), serialized.
  /// Always populated; also written to cfg.report_path when set, and printed
  /// verbatim by `biosim_run --json`.
  std::string report_json;
  /// Span count / drop count of the trace session (cfg.trace_path only).
  uint64_t trace_events = 0;
  uint64_t trace_dropped = 0;
};

/// Build, simulate cfg.steps, write the configured outputs. Throws on
/// config errors; returns the summary on success.
RunSummary ExecuteRun(const RunConfig& cfg);

/// Result of a determinism self-check (docs/determinism.md).
struct DeterminismReport {
  /// All compared runs produced identical per-step state hashes.
  bool deterministic = false;
  /// First step whose hashes diverged (only valid when !deterministic).
  uint64_t first_divergent_step = 0;
  /// Final state hash of the reference run.
  uint64_t final_hash = 0;
  /// Number of runs compared (>= 2; includes a forced single-thread run
  /// when the configured thread count is not 1).
  int runs = 0;
};

/// Run cfg's scenario multiple times from scratch — twice at the configured
/// thread count, plus once single-threaded — hashing the full state after
/// every step, and compare the hash sequences bitwise. Outputs configured in
/// cfg are NOT written (the check is side-effect free).
DeterminismReport VerifyDeterminism(const RunConfig& cfg);

}  // namespace biosim::app

#endif  // BIOSIM_APP_RUNNER_H_
