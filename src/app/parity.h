// Cross-backend parity harness (docs/determinism.md).
//
// Runs one seeded scenario through every neighbor-search / mechanics backend
// combination the engine ships — kd-tree, uniform grid serial, uniform grid
// parallel, the fused CSR fast path (serial and parallel), the spatially
// sharded pipeline (cpu_sharded: two shards with halo exchange,
// docs/sharding.md), the vectorized fused kernel (cpu_simd, and its FP32
// precision mode cpu_fp32), and the GPU version ladder v0..v3 — and
// compares each trajectory against the uniform-grid serial reference (which
// pins the fast path *off*, so the cpu_fast rows prove fused == legacy):
//
//   * backends that owe *bitwise* equality (uniform grid parallel, the
//     fused fast path — same FP operations in the same order at any worker
//     count — and the sharded pipeline, whose merge discipline makes the
//     shard count invisible) are compared by their per-step state-hash
//     sequences;
//   * backends that legitimately alter individual FP operations
//     (kd-tree traversal order; the SIMD kernel's FMA-contracted
//     distances; host/GPU FP32 kernels) are compared by the final
//     per-agent positions, keyed by uid, against a documented tolerance
//     bound.
//
// Both tools/biosim_parity.cc and tests/integration/parity_test.cc are thin
// wrappers around RunParity, so CI and local runs enforce the same bounds.
#ifndef BIOSIM_APP_PARITY_H_
#define BIOSIM_APP_PARITY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace biosim::app {

/// The seeded scenario every backend runs: `agents` random cells of
/// `diameter` in a [0, space]^3 cube (benchmark-B layout, no behaviors, no
/// diffusion — positions are the compared state), stepped `steps` times.
struct ParityScenario {
  size_t agents = 300;
  double space = 50.0;
  double diameter = 10.0;
  uint64_t seed = 77;
  uint64_t steps = 5;
};

/// One backend's comparison against the uniform-grid serial reference.
struct ParityResult {
  std::string backend;
  /// True when the backend owes bitwise-identical state (pass requires
  /// hashes_equal); false when only the tolerance bound is owed.
  bool bitwise_required = false;
  /// Allowed max |Δ position component| vs the reference (tolerance
  /// backends; 0 for bitwise backends).
  double tolerance = 0.0;
  /// Measured max |Δ position component| over all agents, keyed by uid.
  double max_abs_delta = 0.0;
  /// Per-step state-hash sequence identical to the reference's.
  bool hashes_equal = false;
  /// State hash after the final step.
  uint64_t final_hash = 0;
  bool pass = false;
};

struct ParityReport {
  ParityScenario scenario;
  /// First entry is the uniform-grid serial reference itself.
  std::vector<ParityResult> results;
  bool all_pass = false;
  /// Human-readable table, one backend per line.
  std::string ToString() const;
};

/// Run the scenario through all backends and bound the divergence. Never
/// throws on divergence — inspect all_pass / per-result pass.
ParityReport RunParity(const ParityScenario& scenario);

}  // namespace biosim::app

#endif  // BIOSIM_APP_PARITY_H_
